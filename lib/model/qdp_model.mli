(** Calibrated per-kernel cost model driving seq/par kernel dispatch.

    ROADMAP item 5: instead of the single hard-coded MAC cutoff
    ([Mat.par_mac_cutoff]), each instrumented kernel gets a linear
    cost model [seconds ~ a + b * MACs] (plus an allocation rate)
    fitted separately for its sequential and parallel paths from
    {!Qdp_obs.Calib} samples — either a short startup self-benchmark
    ([Qdp_linalg.Tune]) or a recorded [BENCH_calib.json] history.  The
    per-kernel crossover (the MAC count where the parallel fit starts
    to win) replaces the fixed cutoff at every dispatch site; when no
    model is installed every site falls back to its old deterministic
    cutoff, so behaviour without calibration is unchanged.

    Dispatch decisions only pick {e which} path runs.  Every kernel
    path produces bit-identical floats, so installing a model (or a
    wrong model) can never change results — only wall-clock. *)

(** {1 Overflow-safe MAC estimates}

    Dense-kernel MAC counts are products of up to four dimensions;
    [1 lsl 16] qubit-ish dimensions overflow native ints long before
    they overflow floats.  All dispatch sites and the model itself
    work in float MACs. *)

val macs2 : int -> int -> float
val macs3 : int -> int -> int -> float
val macs4 : int -> int -> int -> int -> float

(** {1 Fits} *)

type fit = {
  f_a : float;  (** seconds per call at zero MACs (fixed overhead) *)
  f_b : float;  (** seconds per MAC *)
  f_alloc : float;  (** minor GC words per MAC (through-origin fit) *)
  f_n : int;  (** samples behind the fit *)
  f_r2 : float;  (** coefficient of determination of the (a, b) fit *)
}

(** One observation: kernel name, path tag (["seq"] / ["par"]), MACs,
    seconds, minor allocation words. *)
type obs = {
  o_kernel : string;
  o_path : string;
  o_macs : float;
  o_seconds : float;
  o_minor : float;
}

type kernel = {
  k_name : string;
  k_seq : fit option;
  k_par : fit option;
  k_seq_seconds : float;  (** total measured seconds behind [k_seq] *)
  k_par_seconds : float;
}

type t = { m_jobs : int; m_kernels : kernel list }

(** [fit_samples obs] least-squares fit of seconds against MACs over
    [(macs, seconds, minor_words)] triples.  Needs at least two
    samples with distinct MAC counts; slopes and intercept are clamped
    to [>= 0.] (a negative slope is measurement noise, and a model
    that predicts negative time would produce nonsense crossovers). *)
val fit_samples : (float * float * float) list -> fit option

(** [crossover ~seq ~par] is the MAC count beyond which the parallel
    fit predicts less wall-clock than the sequential one; [None] when
    the parallel path never wins (its per-MAC cost is no better). *)
val crossover : seq:fit -> par:fit -> float option

val kernel_crossover : kernel -> float option

(** [of_observations ~jobs obs] groups observations by kernel (first
    seen order) and fits both paths of each. *)
val of_observations : jobs:int -> obs list -> t

(** [of_calib ~jobs views] builds observations from live
    {!Qdp_obs.Calib} kernel views (one observation per raw sample). *)
val of_calib : jobs:int -> Qdp_obs.Calib.kernel_view list -> t

(** [load_file path] reads a recorded [BENCH_calib.json]; samples
    without a ["path"] field (histories predating the tag) count as
    sequential. *)
val load_file : string -> (t, string) result

(** {1 Installation and dispatch} *)

(** [install m] makes [m] the process-wide model consulted by
    {!decide}; [clear] removes it (all sites back to their static
    fallback). *)
val install : t -> unit

val clear : unit -> unit
val current : unit -> t option

(** Test hook: force every {!decide} to one path regardless of any
    installed model.  [force None] restores normal behaviour. *)
val force : [ `Seq | `Par ] option -> unit

val forced : unit -> [ `Seq | `Par ] option

(** [decide ~kernel ~macs ~default] is [true] when the call should
    take its parallel path: the forced override if set, else the
    installed model's crossover for [kernel], else [default] (the call
    site's static-cutoff fallback). *)
val decide : kernel:string -> macs:float -> default:bool -> bool

(** {1 BENCH_model.json} *)

(** Fixed-shape artifact: top-level [{"jobs":..,"cost_model":[...]}],
    one entry per kernel with [seq] / [par] fit blocks (zeros when a
    path has no fit), [crossover_macs] ([-1] = parallel never wins)
    and the predicted parallel speedup at a fixed probe size.  The CI
    shape gate diffs the key skeleton across runs and job counts. *)
val to_json : t -> string

val write_json : t -> string -> unit
