(* Calibrated per-kernel cost model: linear fits of seconds against
   MACs for the sequential and parallel path of each instrumented
   kernel, a per-kernel crossover derived from the two fits, and a
   process-wide installed model consulted by the dispatch sites.  See
   qdp_model.mli for the contract; the key invariant is that dispatch
   only ever selects between bit-identical paths. *)

module Json = Qdp_obs.Json

(* -- overflow-safe MAC estimates ----------------------------------- *)

let macs2 a b = float_of_int a *. float_of_int b
let macs3 a b c = macs2 a b *. float_of_int c
let macs4 a b c d = macs3 a b c *. float_of_int d

(* -- fits ----------------------------------------------------------- *)

type fit = {
  f_a : float;
  f_b : float;
  f_alloc : float;
  f_n : int;
  f_r2 : float;
}

type obs = {
  o_kernel : string;
  o_path : string;
  o_macs : float;
  o_seconds : float;
  o_minor : float;
}

type kernel = {
  k_name : string;
  k_seq : fit option;
  k_par : fit option;
  k_seq_seconds : float;
  k_par_seconds : float;
}

type t = { m_jobs : int; m_kernels : kernel list }

let fit_samples samples =
  let n = List.length samples in
  if n < 2 then None
  else begin
    let nf = float_of_int n in
    let sx = ref 0. and sy = ref 0. in
    List.iter
      (fun (x, y, _) ->
        sx := !sx +. x;
        sy := !sy +. y)
      samples;
    let mx = !sx /. nf and my = !sy /. nf in
    let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
    let sxw = ref 0. and sx2 = ref 0. in
    List.iter
      (fun (x, y, w) ->
        let dx = x -. mx and dy = y -. my in
        sxx := !sxx +. (dx *. dx);
        sxy := !sxy +. (dx *. dy);
        syy := !syy +. (dy *. dy);
        sxw := !sxw +. (x *. w);
        sx2 := !sx2 +. (x *. x))
      samples;
    if !sxx <= 0. then None (* all samples at one MAC count: no slope *)
    else begin
      let b = !sxy /. !sxx in
      let a = my -. (b *. mx) in
      let r2 =
        if !syy <= 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy)
      in
      let alloc = if !sx2 > 0. then Float.max 0. (!sxw /. !sx2) else 0. in
      Some
        {
          f_a = Float.max 0. a;
          f_b = Float.max 0. b;
          f_alloc = alloc;
          f_n = n;
          f_r2 = r2;
        }
    end
  end

let crossover ~seq ~par =
  if par.f_b >= seq.f_b then None
  else
    Some (Float.max 0. ((par.f_a -. seq.f_a) /. (seq.f_b -. par.f_b)))

let kernel_crossover k =
  match (k.k_seq, k.k_par) with
  | Some seq, Some par -> crossover ~seq ~par
  | _ -> None

(* -- building a model from observations ----------------------------- *)

let of_observations ~jobs obs =
  let order = ref [] in
  let tbl : (string, (float * float * float) list ref * (float * float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun o ->
      let seqs, pars =
        match Hashtbl.find_opt tbl o.o_kernel with
        | Some cell -> cell
        | None ->
            let cell = (ref [], ref []) in
            Hashtbl.add tbl o.o_kernel cell;
            order := o.o_kernel :: !order;
            cell
      in
      let bucket = if o.o_path = "par" then pars else seqs in
      bucket := (o.o_macs, o.o_seconds, o.o_minor) :: !bucket)
    obs;
  let kernels =
    List.rev_map
      (fun name ->
        let seqs, pars = Hashtbl.find tbl name in
        let total l = List.fold_left (fun acc (_, s, _) -> acc +. s) 0. l in
        {
          k_name = name;
          k_seq = fit_samples !seqs;
          k_par = fit_samples !pars;
          k_seq_seconds = total !seqs;
          k_par_seconds = total !pars;
        })
      !order
  in
  { m_jobs = jobs; m_kernels = kernels }

let of_calib ~jobs views =
  of_observations ~jobs
    (List.concat_map
       (fun v ->
         List.map
           (fun s ->
             {
               o_kernel = v.Qdp_obs.Calib.k_name;
               o_path = s.Qdp_obs.Calib.s_path;
               o_macs = s.Qdp_obs.Calib.s_macs;
               o_seconds = s.Qdp_obs.Calib.s_seconds;
               o_minor = s.Qdp_obs.Calib.s_minor_words;
             })
           v.Qdp_obs.Calib.k_samples)
       views)

let load_file path =
  let read () =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match read () with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.parse text with
      | exception Json.Parse_error msg ->
          Error (path ^ ": JSON parse error at " ^ msg)
      | j -> (
          match Json.member "calibration" j with
          | None -> Error (path ^ ": no \"calibration\" key")
          | Some entries ->
              let obs =
                List.concat_map
                  (fun entry ->
                    match Json.member "kernel" entry with
                    | Some (Json.String name) ->
                        let samples =
                          match Json.member "samples" entry with
                          | Some v -> Json.to_list v
                          | None -> []
                        in
                        List.filter_map
                          (fun s ->
                            let num k =
                              match Json.member k s with
                              | Some v -> Json.num_opt v
                              | None -> None
                            in
                            let path_tag =
                              match Json.member "path" s with
                              | Some (Json.String p) -> p
                              | _ -> "seq"
                            in
                            match (num "macs", num "seconds") with
                            | Some m, Some sec ->
                                Some
                                  {
                                    o_kernel = name;
                                    o_path = path_tag;
                                    o_macs = m;
                                    o_seconds = sec;
                                    o_minor =
                                      Option.value ~default:0.
                                        (num "minor_words");
                                  }
                            | _ -> None)
                          samples
                    | _ -> [])
                  (Json.to_list entries)
              in
              let jobs =
                match Json.member "jobs" j with
                | Some v ->
                    Option.value ~default:1
                      (Option.map int_of_float (Json.num_opt v))
                | None -> 1
              in
              Ok (of_observations ~jobs obs)))

(* -- installed model and dispatch ----------------------------------- *)

(* The hot path ([decide]) is one atomic load plus a hashtable probe,
   and the table is immutable after [install] builds it. *)
type lookup = { l_model : t; l_cross : (string, float option) Hashtbl.t }

let installed : lookup option Atomic.t = Atomic.make None
let forced_path : [ `Seq | `Par ] option Atomic.t = Atomic.make None

let install m =
  let tbl = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace tbl k.k_name (kernel_crossover k)) m.m_kernels;
  Atomic.set installed (Some { l_model = m; l_cross = tbl })

let clear () = Atomic.set installed None
let current () = Option.map (fun l -> l.l_model) (Atomic.get installed)
let force p = Atomic.set forced_path p
let forced () = Atomic.get forced_path

let decide ~kernel ~macs ~default =
  match Atomic.get forced_path with
  | Some `Seq -> false
  | Some `Par -> true
  | None -> (
      match Atomic.get installed with
      | None -> default
      | Some l -> (
          match Hashtbl.find_opt l.l_cross kernel with
          | None -> default
          | Some None -> false
          | Some (Some c) -> macs >= c))

(* -- BENCH_model.json ----------------------------------------------- *)

(* Predicted speedup probe: evaluated at a fixed MAC count so the
   value is comparable across runs. *)
let speedup_probe_macs = 1e6

let predict fit macs = fit.f_a +. (fit.f_b *. macs)

let json_of_fit name fit total =
  let f = Option.value fit ~default:{ f_a = 0.; f_b = 0.; f_alloc = 0.; f_n = 0; f_r2 = 0. } in
  Printf.sprintf
    "\"%s\":{\"samples\":%d,\"a_s\":%s,\"b_s_per_mac\":%s,\"alloc_w_per_mac\":%s,\"r2\":%s,\"total_s\":%s}"
    name f.f_n (Json.float f.f_a) (Json.float f.f_b) (Json.float f.f_alloc)
    (Json.float f.f_r2) (Json.float total)

let to_json m =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"jobs\":%d,\n\"cost_model\":[" m.m_jobs);
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string buf ",\n";
      let cross =
        match kernel_crossover k with Some c -> c | None -> -1.
      in
      let speedup =
        match (k.k_seq, k.k_par) with
        | Some seq, Some par ->
            let p = predict par speedup_probe_macs in
            if p > 0. then predict seq speedup_probe_macs /. p else 0.
        | _ -> 0.
      in
      Buffer.add_string buf
        (Printf.sprintf "{\"kernel\":%s,%s,%s,\"crossover_macs\":%s,\"par_speedup_at_1e6_macs\":%s}"
           (Json.str k.k_name)
           (json_of_fit "seq" k.k_seq k.k_seq_seconds)
           (json_of_fit "par" k.k_par k.k_par_seconds)
           (Json.float cross) (Json.float speedup)))
    m.m_kernels;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write_json m path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json m))
