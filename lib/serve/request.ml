(* The verification service's wire model: a JSON-encoded request to
   evaluate one registered protocol on its demo instances, optionally
   under a fault plan, plus the canonical key the shared cache and the
   load generator's verdict digest are keyed on.  See request.mli. *)

module Json = Qdp_obs.Json
module Registry = Qdp_core.Registry

type fault = {
  f_kind : string; (* Qdp_faults.Plan.kind name *)
  f_strength : float;
  f_turn : int option; (* 1-based schedule entry, None = all turns *)
  f_trials : int;
}

type t = {
  rq_protocol : string; (* registry id *)
  rq_spec : Registry.spec;
  rq_fault : fault option;
}

let topology_name = function
  | Registry.Star -> "star"
  | Registry.Path -> "path"
  | Registry.Cycle -> "cycle"
  | Registry.Grid -> "grid"

let topology_of_name = function
  | "star" -> Some Registry.Star
  | "path" -> Some Registry.Path
  | "cycle" -> Some Registry.Cycle
  | "grid" -> Some Registry.Grid
  | _ -> None

let make ?fault ?(spec = Registry.default_spec) protocol =
  { rq_protocol = protocol; rq_spec = spec; rq_fault = fault }

(* --- canonical key --- *)

(* One line, fixed field order, every spec field spelled out: equal
   keys iff the evaluations are interchangeable.  This is what the
   cache deduplicates on and what the load digest folds over. *)
let key r =
  let s = r.rq_spec in
  let base =
    Printf.sprintf "%s seed=%d n=%d r=%d t=%d d=%d reps=%s topo=%s"
      r.rq_protocol s.Registry.seed s.Registry.n s.Registry.r s.Registry.t
      s.Registry.d
      (match s.Registry.repetitions with
      | None -> "default"
      | Some k -> string_of_int k)
      (topology_name s.Registry.topology)
  in
  match r.rq_fault with
  | None -> base
  | Some f ->
      Printf.sprintf "%s fault=%s p=%.6g turn=%s trials=%d" base f.f_kind
        f.f_strength
        (match f.f_turn with None -> "all" | Some t -> string_of_int t)
        f.f_trials

(* --- JSON encoding --- *)

let to_json r =
  let s = r.rq_spec in
  let b = Buffer.create 160 in
  Buffer.add_string b "{";
  Buffer.add_string b (Printf.sprintf "\"protocol\":%s" (Json.str r.rq_protocol));
  Buffer.add_string b
    (Printf.sprintf ",\"seed\":%d,\"n\":%d,\"r\":%d,\"t\":%d,\"d\":%d"
       s.Registry.seed s.Registry.n s.Registry.r s.Registry.t s.Registry.d);
  (match s.Registry.repetitions with
  | None -> ()
  | Some k -> Buffer.add_string b (Printf.sprintf ",\"repetitions\":%d" k));
  Buffer.add_string b
    (Printf.sprintf ",\"topology\":%s"
       (Json.str (topology_name s.Registry.topology)));
  (match r.rq_fault with
  | None -> ()
  | Some f ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"fault\":{\"kind\":%s,\"strength\":%s,\"trials\":%d"
           (Json.str f.f_kind) (Json.float f.f_strength) f.f_trials);
      (match f.f_turn with
      | None -> ()
      | Some t -> Buffer.add_string b (Printf.sprintf ",\"turn\":%d" t));
      Buffer.add_string b "}");
  Buffer.add_string b "}";
  Buffer.contents b

(* --- JSON decoding --- *)

let int_field ?default obj name =
  match Json.member name obj with
  | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))

let ( let* ) = Result.bind

let fault_of_json j =
  match Json.member "fault" j with
  | None -> Ok None
  | Some fj ->
      let* kind =
        match Json.member "kind" fj with
        | Some (Json.String k) -> (
            match Qdp_faults.Plan.of_name k with
            | Some _ -> Ok k
            | None -> Error (Printf.sprintf "unknown fault kind %S" k))
        | _ -> Error "fault needs a string \"kind\""
      in
      let* strength =
        match Json.member "strength" fj with
        | Some (Json.Num p) when p >= 0. && p <= 1. -> Ok p
        | Some _ -> Error "fault \"strength\" must be a number in [0,1]"
        | None -> Error "missing fault \"strength\""
      in
      let* trials = int_field ~default:20 fj "trials" in
      let* () =
        if trials >= 1 && trials <= 10_000 then Ok ()
        else Error "fault \"trials\" must be in [1,10000]"
      in
      let* turn =
        match Json.member "turn" fj with
        | None -> Ok None
        | Some (Json.Num f) when Float.is_integer f && f >= 1. ->
            Ok (Some (int_of_float f))
        | Some _ -> Error "fault \"turn\" must be a positive integer"
      in
      Ok (Some { f_kind = kind; f_strength = strength; f_turn = turn; f_trials = trials })

let of_json j =
  let d = Registry.default_spec in
  let* protocol =
    match Json.member "protocol" j with
    | Some (Json.String p) -> Ok p
    | Some _ -> Error "field \"protocol\" must be a string"
    | None -> Error "missing field \"protocol\""
  in
  let* seed = int_field ~default:d.Registry.seed j "seed" in
  let* n = int_field ~default:d.Registry.n j "n" in
  let* r = int_field ~default:d.Registry.r j "r" in
  let* t = int_field ~default:d.Registry.t j "t" in
  let* dd = int_field ~default:d.Registry.d j "d" in
  let* () =
    if n >= 1 && n <= 4096 && r >= 1 && t >= 1 && dd >= 0 then Ok ()
    else Error "spec fields out of range"
  in
  let* repetitions =
    match Json.member "repetitions" j with
    | None -> Ok None
    | Some (Json.Num f) when Float.is_integer f && f >= 1. ->
        Ok (Some (int_of_float f))
    | Some _ -> Error "field \"repetitions\" must be a positive integer"
  in
  let* topology =
    match Json.member "topology" j with
    | None -> Ok d.Registry.topology
    | Some (Json.String s) -> (
        match topology_of_name s with
        | Some topo -> Ok topo
        | None -> Error (Printf.sprintf "unknown topology %S" s))
    | Some _ -> Error "field \"topology\" must be a string"
  in
  let* fault = fault_of_json j in
  Ok
    {
      rq_protocol = protocol;
      rq_spec = { Registry.seed; n; r; t; d = dd; repetitions; topology };
      rq_fault = fault;
    }

let of_string s =
  match Json.parse s with
  | j -> of_json j
  | exception Json.Parse_error msg -> Error ("malformed JSON: " ^ msg)
