(** Deterministic request evaluation — the single code path behind
    both the server and the load generator's [--direct] mode.

    Every random stream derives from the request's own [seed] (never
    from server state, arrival order or the wall clock), so a request
    maps to exactly one response byte string.  That property is what
    the end-to-end determinism check rides on: the verdict digest of a
    [qdp load] run against a live server must equal the digest of
    evaluating the same requests directly.

    Plain requests run {!Qdp_core.Registry.evaluate_demo} (exact
    analytic evaluation of the entry's yes and no demo instances).
    Faulted requests run the entry's
    {!Qdp_core.Registry.fault_suite} cases for the requested number of
    Monte-Carlo trials under the requested
    {!Qdp_faults.Plan.kind}/strength, with the sweep's RNG discipline
    and [Reject_on_timeout] recovery. *)

(** [run r] is [Ok response_json] or [Error reason] (unknown protocol,
    no fault-aware realization, or an evaluation exception — the
    server maps [Error] to a [Reject] frame without dying). *)
val run : Request.t -> (string, string) result

(** [run_string s] parses [s] as a request first; parse and validation
    failures come back as [Error]. *)
val run_string : string -> (string, string) result
