(* Bounded LRU map: Hashtbl for O(1) lookup plus an intrusive doubly
   linked recency list, most-recent at the head.  Generalizes the
   Fingerprint verdict memo (which evicts an arbitrary binding at
   capacity) into the shared request cache of the verification
   service: eviction order matters there, because a load generator
   cycling a working set larger than the capacity would otherwise
   thrash on arbitrary evictions.

   Single-domain use only (the serve event loop); no internal lock. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option; (* most recently used *)
  mutable tail : ('k, 'v) node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let length t = Hashtbl.length t.table
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses

let is_head t n = match t.head with Some h -> h == n | None -> false

(* Detach [n] from the recency list (it must be in it). *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some n ->
      t.hits <- t.hits + 1;
      if not (is_head t n) then begin
        unlink t n;
        push_front t n
      end;
      Some n.value

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      n.value <- v;
      if not (is_head t n) then begin
        unlink t n;
        push_front t n
      end
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n

(* Recency order, most recent first — test/debug introspection. *)
let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head
