(* Minimal blocking client for the verification service: connect,
   send Request frames, read Reply/Reject frames.  Used by `qdp load`
   and the serve test suite; a session holds one socket and one
   incremental frame reader. *)

module Frame = Qdp_dist.Frame

type t = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  mutable closed : bool;
}

let connect path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Frame.reader (); closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let fd t = t.fd

let send t ~id payload = Frame.write t.fd (Frame.Request { id; payload })

(* Sends raw bytes — the test suite's malformed-frame injector. *)
let send_raw t bytes =
  let b = Bytes.unsafe_of_string bytes in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write t.fd b !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

type event =
  [ `Reply of int * string  (* id, response JSON *)
  | `Reject of int * string  (* id, reason JSON *)
  | `Eof ]

let scratch = Bytes.create 65536

(* Blocks until one whole Reply/Reject frame (or EOF) arrives.  Other
   frame kinds from the server would be a protocol violation and are
   skipped. *)
let rec next_event t : event =
  match Frame.next t.reader with
  | `Msg (Frame.Reply { id; payload }) -> `Reply (id, payload)
  | `Msg (Frame.Reject { id; reason }) -> `Reject (id, reason)
  | `Msg _ -> next_event t
  | `Corrupt -> next_event t
  | `More -> (
      match Unix.read t.fd scratch 0 (Bytes.length scratch) with
      | 0 -> `Eof
      | n ->
          Frame.feed t.reader scratch n;
          next_event t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next_event t
      | exception
          Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          `Eof)

(* One synchronous round-trip. *)
let rpc t ~id payload =
  send t ~id payload;
  next_event t
