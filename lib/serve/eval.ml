(* The one evaluation function behind the verification service: maps a
   validated {!Request.t} to a response JSON string, deterministically
   — every RNG below derives from the request's own seed, never from
   server state, the wall clock or arrival order.  The server and the
   load generator's [--direct] mode share this code path, which is
   what makes the end-to-end determinism check (`qdp load` digest ==
   direct digest) meaningful. *)

module Json = Qdp_obs.Json
module Registry = Qdp_core.Registry
module Plan = Qdp_faults.Plan
module Runtime = Qdp_network.Runtime

let obs_evals = Qdp_obs.Metrics.counter "serve.evals"
let obs_eval_seconds = Qdp_obs.Metrics.histogram "serve.eval.seconds"

(* --- plain analytic evaluation --- *)

let instance_json (ev : Qdp_core.Dqma.evaluation) =
  Printf.sprintf
    "{\"honest_accept\":%s,\"best_attack\":%s,\"best_attack_name\":%s,\"meets_spec\":%b}"
    (Json.float ev.Qdp_core.Dqma.honest_accept)
    (Json.float ev.Qdp_core.Dqma.best_attack)
    (Json.str ev.Qdp_core.Dqma.best_attack_name)
    ev.Qdp_core.Dqma.meets_spec

let plain r entry =
  let name, yes, no, costs = Registry.evaluate_demo r.Request.rq_spec entry in
  let ok =
    yes.Qdp_core.Dqma.meets_spec && no.Qdp_core.Dqma.meets_spec
  in
  Printf.sprintf
    "{\"protocol\":%s,\"name\":%s,\"mode\":\"plain\",\"yes\":%s,\"no\":%s,\"costs\":{\"local_proof_qubits\":%d,\"total_proof_qubits\":%d,\"local_message_qubits\":%d,\"total_message_qubits\":%d,\"rounds\":%d},\"ok\":%b}"
    (Json.str r.Request.rq_protocol)
    (Json.str name) (instance_json yes) (instance_json no)
    costs.Qdp_core.Report.local_proof_qubits
    costs.Qdp_core.Report.total_proof_qubits
    costs.Qdp_core.Report.local_message_qubits
    costs.Qdp_core.Report.total_message_qubits
    costs.Qdp_core.Report.rounds ok

(* --- sampled evaluation under a fault plan --- *)

(* Same RNG discipline as the fault sweep: every stream derives from
   (request seed, side, case index) so the response depends only on
   the request. *)
let fault_case_rate ~seed ~fault ~side ~ci (case : Registry.fault_case) =
  let proto_st = Random.State.make [| seed; 0x5e7e; side; ci; 0 |] in
  let fault_st = Random.State.make [| seed; 0x5e7e; side; ci; 1 |] in
  let env =
    match Plan.of_name fault.Request.f_kind with
    | Some kind ->
        Plan.env ?turn:fault.Request.f_turn kind
          ~strength:fault.Request.f_strength ~st:fault_st
    | None -> assert false (* validated by Request.of_json *)
  in
  let hits = ref 0 and errors = ref 0 and injected = ref 0 in
  for _ = 1 to fault.Request.f_trials do
    let o =
      Plan.execute Plan.Reject_on_timeout (fun () -> case.Registry.fc_run proto_st env)
    in
    if o.Plan.accepted then incr hits;
    errors := !errors + o.Plan.protocol_errors;
    injected := !injected + o.Plan.injected
  done;
  ( case.Registry.fc_strategy,
    float_of_int !hits /. float_of_int fault.Request.f_trials,
    !errors,
    !injected )

let measures_json ms =
  "["
  ^ String.concat ","
      (List.map
         (fun (strategy, rate, errors, injected) ->
           Printf.sprintf
             "{\"strategy\":%s,\"accept\":%s,\"protocol_errors\":%d,\"injected\":%d}"
             (Json.str strategy) (Json.float rate) errors injected)
         ms)
  ^ "]"

let faulted r entry fault =
  match Registry.fault_suite r.Request.rq_spec entry with
  | None ->
      Error
        (Printf.sprintf "protocol %S has no fault-aware realization"
           r.Request.rq_protocol)
  | Some suite ->
      let seed = r.Request.rq_spec.Registry.seed in
      let side tag cases =
        List.mapi (fun ci c -> fault_case_rate ~seed ~fault ~side:tag ~ci c) cases
      in
      let yes = side 0 suite.Registry.fs_yes in
      let no = side 1 suite.Registry.fs_no in
      let best_no =
        List.fold_left (fun a (_, rate, _, _) -> Float.max a rate) 0. no
      in
      let analytic_no =
        List.fold_left
          (fun a (c : Registry.fault_case) -> Float.max a c.Registry.fc_analytic)
          0. suite.Registry.fs_no
      in
      (* Faults may only help the prover by the statistical slack the
         sweep also allows; this is the invariant `qdp faults` gates
         on, reported per request here. *)
      let sound = best_no <= analytic_no +. 0.12 in
      Ok
        (Printf.sprintf
           "{\"protocol\":%s,\"name\":%s,\"mode\":\"faulted\",\"fault\":{\"kind\":%s,\"strength\":%s,\"turn\":%s,\"trials\":%d},\"yes\":%s,\"no\":%s,\"best_no_accept\":%s,\"analytic_no_accept\":%s,\"sound\":%b}"
           (Json.str r.Request.rq_protocol)
           (Json.str suite.Registry.fs_name)
           (Json.str fault.Request.f_kind)
           (Json.float fault.Request.f_strength)
           (match fault.Request.f_turn with
           | None -> "null"
           | Some t -> string_of_int t)
           fault.Request.f_trials (measures_json yes) (measures_json no)
           (Json.float best_no) (Json.float analytic_no) sound)

(* --- entry point --- *)

let run (r : Request.t) : (string, string) result =
  Qdp_obs.Metrics.incr obs_evals;
  let t0 = Qdp_obs.Clock.now () in
  let result =
    Qdp_obs.Prof.section "serve.eval"
    @@ fun () ->
    match Registry.find r.Request.rq_protocol with
    | None -> Error (Printf.sprintf "unknown protocol %S" r.Request.rq_protocol)
    | Some entry -> (
        match r.Request.rq_fault with
        | None -> ( try Ok (plain r entry) with e -> Error (Printexc.to_string e))
        | Some fault -> (
            try faulted r entry fault with e -> Error (Printexc.to_string e)))
  in
  Qdp_obs.Metrics.observe obs_eval_seconds (Qdp_obs.Clock.now () -. t0);
  result

let run_string s =
  match Request.of_string s with
  | Error msg -> Error msg
  | Ok r -> run r
