(** Bounded LRU map behind the verification service's shared
    request/verdict cache — the Fingerprint memo's bounded-Hashtbl
    idea with a real recency order, so a working set larger than the
    capacity evicts oldest-first instead of thrashing on arbitrary
    bindings.

    Single-domain use only (the serve event loop owns it); there is no
    internal lock. *)

type ('k, 'v) t

(** @raise Invalid_argument on capacity < 1. *)
val create : int -> ('k, 'v) t

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

(** Cache-effectiveness counters, bumped by {!find}. *)
val hits : ('k, 'v) t -> int

val misses : ('k, 'v) t -> int

(** [find t k] returns the cached value and marks it most recently
    used. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [add t k v] inserts or overwrites; a new binding at capacity
    evicts the least recently used one. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** Keys in recency order, most recent first. *)
val keys : ('k, 'v) t -> 'k list
