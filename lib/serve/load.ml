(* The load generator behind `qdp load`: N client sessions against a
   running daemon, paced at a target aggregate request rate, with
   latency percentiles, throughput and a determinism digest at the
   end.

   Determinism discipline: the request mix is a pure function of the
   seed, overload rejects are retried until every request in the mix
   has a real response, and the digest folds over the *sorted set* of
   (canonical key, response) pairs — so scheduling, interleaving and
   transient overload never change it.  The same digest computed by
   [direct] (no server, straight through Eval) must match: that is the
   end-to-end determinism check CI runs. *)

module Json = Qdp_obs.Json
module Registry = Qdp_core.Registry

type config = {
  socket : string;
  clients : int;
  rps : float;  (* aggregate target request rate *)
  duration : float;  (* seconds of paced sending *)
  seed : int;  (* selects the request mix *)
}

let default_config =
  {
    socket = Server.default_config.Server.socket_path;
    clients = 4;
    rps = 50.;
    duration = 5.;
    seed = 42;
  }

type result = {
  lr_clients : int;
  lr_rps_target : float;
  lr_duration_s : float;
  lr_sent : int;
  lr_replies : int;
  lr_overloads : int;  (* overload rejects; each one was retried *)
  lr_errors : int;  (* structured non-overload rejects *)
  lr_throughput_rps : float;
  lr_p50_s : float;
  lr_p99_s : float;
  lr_mean_s : float;
  lr_max_s : float;
  lr_cache_keys : int;  (* distinct canonical keys exercised *)
  lr_digest : string;
}

(* --- request mix --- *)

(* A deterministic function of the seed and the registry: every
   conformance entry as a plain request (two parameter points each),
   plus a faulted request for every entry with a fault-aware
   realization.  Small trial counts keep single evaluations fast
   enough that the loop, not the evaluator, sets the pace. *)
let mix ?(seed = 42) () =
  let spec = { Registry.default_spec with Registry.seed } in
  let plain =
    List.concat_map
      (fun id ->
        [
          Request.make ~spec id;
          Request.make ~spec:{ spec with Registry.n = spec.Registry.n / 2 } id;
        ])
      (Registry.ids ())
  in
  let faulted =
    List.filter_map
      (fun e ->
        match Registry.fault_suite spec e with
        | None -> None
        | Some suite ->
            Some
              (Request.make
                 ~fault:
                   {
                     Request.f_kind = "drop";
                     f_strength = 0.1;
                     f_turn = None;
                     f_trials = 5;
                   }
                 ~spec suite.Registry.fs_id))
      (Registry.all ())
  in
  plain @ faulted

(* --- digest --- *)

(* CRC-32 over the sorted set of "key\n=>response\n" lines: insensitive
   to arrival order and to how many times a key was served. *)
let digest pairs =
  let lines =
    List.sort_uniq compare
      (List.map (fun (k, v) -> k ^ "\n=>" ^ v ^ "\n") pairs)
  in
  let crc = Qdp_dist.Frame.crc32 (String.concat "" lines) in
  Printf.sprintf "%08lx" crc

(* [direct cfg] evaluates the mix straight through Eval — the digest
   reference the server run is compared against. *)
let direct ?(config = default_config) () =
  List.map
    (fun r ->
      let response =
        match Eval.run r with
        | Ok s -> s
        | Error msg ->
            Printf.sprintf "{\"error\":\"eval_error\",\"detail\":%s}"
              (Json.str msg)
      in
      (Request.key r, response))
    (mix ~seed:config.seed ())

let direct_digest ?config () = digest (direct ?config ())

(* --- pacing --- *)

(* Pure pacing schedule, shared by the send gate and the select
   timeout so the two can never disagree (the old inline copies
   drifted once, pinning select to a zero timeout and busy-spinning
   the loop).  The k-th request may leave at [t_start + k/rps]. *)
let next_send_at ~t_start ~rps ~sent =
  t_start +. (float_of_int sent /. rps)

let send_due ~t_start ~rps ~sent ~now =
  now >= next_send_at ~t_start ~rps ~sent

let pace_timeout ~t_start ~rps ~sent ~now =
  max 0. (next_send_at ~t_start ~rps ~sent -. now)

(* --- the paced loop --- *)

type slot = {
  client : Client.t;
  mutable busy : (int * Request.t * float) option; (* id, request, send time *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let is_overload reason =
  match Json.parse reason with
  | j -> (
      match Json.member "error" j with
      | Some (Json.String "overload") -> true
      | _ -> false)
  | exception Json.Parse_error _ -> false

let run ?(config = default_config) () =
  if config.clients < 1 then invalid_arg "Load.run: clients must be >= 1";
  if config.rps <= 0. then invalid_arg "Load.run: rps must be positive";
  let requests = mix ~seed:config.seed () in
  let n_mix = List.length requests in
  let mix_arr = Array.of_list requests in
  let total = max n_mix (int_of_float (config.rps *. config.duration)) in
  (* Work list: every request index that still needs a real response.
     Overload rejects push their request back here. *)
  let work = Queue.create () in
  for i = 0 to total - 1 do
    Queue.push mix_arr.(i mod n_mix) work
  done;
  let slots =
    Array.init config.clients (fun _ ->
        { client = Client.connect config.socket; busy = None })
  in
  Fun.protect
    ~finally:(fun () -> Array.iter (fun s -> Client.close s.client) slots)
  @@ fun () ->
  let t_start = Qdp_obs.Clock.now () in
  let latencies = ref [] in
  let pairs = ref [] in
  let sent = ref 0 and replies = ref 0 and overloads = ref 0 and errors = ref 0 in
  let next_id = ref 1 in
  let in_flight () =
    Array.exists (fun s -> s.busy <> None) slots
  in
  let deadline = t_start +. config.duration in
  (* Hard stop: even if the server wedges, the loop ends. *)
  let grace = deadline +. 30. in
  let finished = ref false in
  while not !finished do
    let now = Qdp_obs.Clock.now () in
    let due = send_due ~t_start ~rps:config.rps ~sent:!sent ~now in
    (if due && now < deadline && not (Queue.is_empty work) then
       match
         Array.find_opt (fun s -> s.busy = None) slots
       with
       | None -> () (* every client busy: backpressure, wait for replies *)
       | Some slot ->
           let r = Queue.pop work in
           let id = !next_id in
           incr next_id;
           incr sent;
           Client.send slot.client ~id (Request.to_json r);
           slot.busy <- Some (id, r, Qdp_obs.Clock.now ()));
    (* Reap whatever is readable. *)
    let busy_fds =
      Array.to_list slots
      |> List.filter_map (fun s ->
             if s.busy <> None then Some (Client.fd s.client) else None)
    in
    (if busy_fds <> [] then
       let timeout =
         if Queue.is_empty work then 0.05
         else pace_timeout ~t_start ~rps:config.rps ~sent:!sent ~now
       in
       match Unix.select busy_fds [] [] (Float.min timeout 0.05) with
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
       | readable, _, _ ->
           Array.iter
             (fun slot ->
               match slot.busy with
               | Some (id, r, t_send) when List.memq (Client.fd slot.client) readable
                 -> (
                   match Client.next_event slot.client with
                   | `Reply (rid, response) when rid = id ->
                       slot.busy <- None;
                       incr replies;
                       latencies := (Qdp_obs.Clock.now () -. t_send) :: !latencies;
                       pairs := (Request.key r, response) :: !pairs
                   | `Reject (rid, reason) when rid = id && is_overload reason ->
                       (* structured backpressure: retry the request *)
                       slot.busy <- None;
                       incr overloads;
                       Queue.push r work
                   | `Reject (rid, reason) when rid = id ->
                       slot.busy <- None;
                       incr errors;
                       latencies := (Qdp_obs.Clock.now () -. t_send) :: !latencies;
                       pairs := (Request.key r, reason) :: !pairs
                   | `Reply _ | `Reject _ ->
                       (* stale correlation id: session out of sync *)
                       slot.busy <- None;
                       incr errors
                   | `Eof ->
                       slot.busy <- None;
                       incr errors)
               | _ -> ())
             slots);
    let now = Qdp_obs.Clock.now () in
    if now >= grace then finished := true
    else if now >= deadline then
      if Queue.is_empty work && not (in_flight ()) then finished := true
      else
        (* After the send window closes, still-queued work (requeued
           overloads) must get its response for the digest to be
           complete — drain it without pacing. *)
        match Array.find_opt (fun s -> s.busy = None) slots with
        | Some slot when not (Queue.is_empty work) ->
            let r = Queue.pop work in
            let id = !next_id in
            incr next_id;
            incr sent;
            Client.send slot.client ~id (Request.to_json r);
            slot.busy <- Some (id, r, Qdp_obs.Clock.now ())
        | Some _ | None -> ()
  done;
  let duration_s = Qdp_obs.Clock.now () -. t_start in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let n_lat = Array.length lat in
  let mean =
    if n_lat = 0 then 0.
    else Array.fold_left ( +. ) 0. lat /. float_of_int n_lat
  in
  let keys = List.sort_uniq compare (List.map fst !pairs) in
  {
    lr_clients = config.clients;
    lr_rps_target = config.rps;
    lr_duration_s = duration_s;
    lr_sent = !sent;
    lr_replies = !replies;
    lr_overloads = !overloads;
    lr_errors = !errors;
    lr_throughput_rps =
      (if duration_s > 0. then float_of_int !replies /. duration_s else 0.);
    lr_p50_s = percentile lat 0.50;
    lr_p99_s = percentile lat 0.99;
    lr_mean_s = mean;
    lr_max_s = (if n_lat = 0 then 0. else lat.(n_lat - 1));
    lr_cache_keys = List.length keys;
    lr_digest = digest !pairs;
  }

(* --- BENCH_serve.json --- *)

(* Fixed key set and order: the CI shape check diffs the key skeleton
   of two runs, so only the measured values may vary. *)
let to_json r =
  String.concat ""
    [
      "{\n";
      Printf.sprintf "  \"clients\": %d,\n" r.lr_clients;
      Printf.sprintf "  \"rps_target\": %s,\n" (Json.float r.lr_rps_target);
      Printf.sprintf "  \"duration_s\": %s,\n" (Json.float r.lr_duration_s);
      Printf.sprintf "  \"sent\": %d,\n" r.lr_sent;
      Printf.sprintf "  \"replies\": %d,\n" r.lr_replies;
      Printf.sprintf "  \"overload_rejects\": %d,\n" r.lr_overloads;
      Printf.sprintf "  \"errors\": %d,\n" r.lr_errors;
      Printf.sprintf "  \"throughput_rps\": %s,\n" (Json.float r.lr_throughput_rps);
      "  \"latency_s\": {";
      Printf.sprintf "\"p50\": %s, " (Json.float r.lr_p50_s);
      Printf.sprintf "\"p99\": %s, " (Json.float r.lr_p99_s);
      Printf.sprintf "\"mean\": %s, " (Json.float r.lr_mean_s);
      Printf.sprintf "\"max\": %s},\n" (Json.float r.lr_max_s);
      Printf.sprintf "  \"distinct_keys\": %d,\n" r.lr_cache_keys;
      Printf.sprintf "  \"verdict_digest\": %s\n" (Json.str r.lr_digest);
      "}\n";
    ]
