(** The always-on verification daemon behind [qdp serve]: a
    single-domain [select] event loop over a Unix-domain socket
    speaking [Qdp_dist.Frame] ([Request]/[Reply]/[Reject]).

    Behaviors, in the order a request meets them:

    - {b Admission control}: at most [queue_limit] requests queue;
      beyond that the server answers immediately with a structured
      [{"error":"overload",...}] Reject instead of building unbounded
      backlog.  Session count is bounded by [max_sessions] the same
      way.
    - {b Batching}: each loop iteration evaluates up to [batch_max]
      queued requests, deduplicated by canonical {!Request.key} — one
      evaluation fans out to every waiter with the same key.
    - {b Shared cache}: a bounded {!Lru} maps request keys to response
      bytes across sessions (the Fingerprint memo generalized).
    - {b Session isolation}: a malformed or truncated frame, an
      unparsable request or a mid-request disconnect affects only its
      own session; the loop answers with a structured Reject (or frees
      the session) and keeps serving everyone else.
    - {b Graceful drain}: SIGTERM/SIGINT stop accept and reads, finish
      every queued evaluation, flush every output buffer, then return.
      Previous signal dispositions are restored on exit. *)

type config = {
  socket_path : string;
  queue_limit : int;  (** admission control: max queued requests *)
  cache_capacity : int;  (** shared LRU response cache entries *)
  batch_max : int;  (** max requests evaluated per loop iteration *)
  max_sessions : int;
}

(** [/tmp/qdp-serve.sock], queue 64, cache 512, batch 16,
    sessions 64. *)
val default_config : config

(** [run ()] binds the socket (unlinking a stale one) and serves until
    a drain signal; blocks the calling domain.  Instrumented with
    [serve.*] metrics and [Prof] sections throughout. *)
val run : ?config:config -> unit -> unit
