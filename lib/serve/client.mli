(** Blocking client for the verification service — the counterpart of
    {!Server}, used by [qdp load] and the tests. *)

type t

(** [connect path] opens a session to the daemon's Unix-domain
    socket.  Raises [Unix.Unix_error] when the daemon is not up. *)
val connect : string -> t

val close : t -> unit

(** The underlying socket, for callers multiplexing with [select]. *)
val fd : t -> Unix.file_descr

(** [send t ~id payload] frames and writes one request; [id] is
    echoed on the matching response. *)
val send : t -> id:int -> string -> unit

(** [send_raw t bytes] writes arbitrary bytes — the test suite's
    malformed-frame injector. *)
val send_raw : t -> string -> unit

type event =
  [ `Reply of int * string  (** id, response JSON *)
  | `Reject of int * string  (** id, reason JSON *)
  | `Eof ]

(** [next_event t] blocks until one whole response frame (or EOF)
    arrives. *)
val next_event : t -> event

(** [rpc t ~id payload] is [send] then [next_event] — one synchronous
    round-trip. *)
val rpc : t -> id:int -> string -> event
