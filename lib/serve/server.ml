(* The always-on verification daemon behind `qdp serve`: a
   single-domain [Unix.select] event loop over a Unix-domain listen
   socket.  Concurrency is I/O-level — many sessions multiplexed, each
   with its own frame reader and output buffer — while evaluation
   itself stays sequential and deterministic (see eval.ml).

   Request lifecycle: Frame.Request arrives on a session; admission
   control either queues it (bounded queue) or answers immediately
   with a structured overload Reject.  Each loop iteration drains up
   to [batch_max] queued requests as one batch: requests are parsed,
   deduplicated by canonical key against the shared LRU cache and
   against each other (one evaluation fans out to every waiter), and
   the responses are buffered per session for flushing when the peer
   is writable.

   Shutdown: SIGTERM/SIGINT set the drain flag.  A draining server
   closes the listen socket and stops reading request bytes, but
   finishes every already-queued evaluation and flushes every output
   buffer before returning — in-flight work is never dropped. *)

module Frame = Qdp_dist.Frame

type config = {
  socket_path : string;
  queue_limit : int;  (** admission control: max queued requests *)
  cache_capacity : int;  (** shared LRU response cache entries *)
  batch_max : int;  (** max requests evaluated per loop iteration *)
  max_sessions : int;
}

let default_config =
  {
    socket_path = "/tmp/qdp-serve.sock";
    queue_limit = 64;
    cache_capacity = 512;
    batch_max = 16;
    max_sessions = 64;
  }

(* --- metrics --- *)

let obs_requests = Qdp_obs.Metrics.counter "serve.requests"
let obs_replies = Qdp_obs.Metrics.counter "serve.replies"
let obs_reject_overload = Qdp_obs.Metrics.counter "serve.rejects.overload"
let obs_reject_bad = Qdp_obs.Metrics.counter "serve.rejects.bad"
let obs_cache_hits = Qdp_obs.Metrics.counter "serve.cache.hits"
let obs_sessions = Qdp_obs.Metrics.gauge "serve.sessions"
let obs_latency = Qdp_obs.Metrics.histogram "serve.request.seconds"

(* --- sessions --- *)

type session = {
  sid : int;
  fd : Unix.file_descr;
  reader : Frame.reader;
  mutable pending : string;  (* bytes not yet accepted by the peer *)
  mutable sent : int;  (* prefix of [pending] already written *)
  mutable alive : bool;
}

type queued = {
  q_session : session;
  q_id : int;  (* client correlation id *)
  q_payload : string;
  q_arrival : float;
}

let enqueue_out s msg =
  if s.alive then begin
    let bytes = Frame.encode msg in
    if s.sent > 0 then begin
      s.pending <- String.sub s.pending s.sent (String.length s.pending - s.sent);
      s.sent <- 0
    end;
    s.pending <- s.pending ^ bytes
  end

let reply s ~id ~arrival payload =
  Qdp_obs.Metrics.incr obs_replies;
  Qdp_obs.Metrics.observe obs_latency (Qdp_obs.Clock.now () -. arrival);
  enqueue_out s (Frame.Reply { id; payload })

let reject ?(counter = obs_reject_bad) s ~id reason =
  Qdp_obs.Metrics.incr counter;
  enqueue_out s (Frame.Reject { id; reason })

let error_json kind detail =
  Printf.sprintf "{\"error\":%s,\"detail\":%s}" (Qdp_obs.Json.str kind)
    (Qdp_obs.Json.str detail)

(* --- the event loop --- *)

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  sessions : (int, session) Hashtbl.t;
  queue : queued Queue.t;
  cache : (string, string) Lru.t;
  draining : bool ref;
  mutable next_sid : int;
  mutable accepting : bool;
}

let close_session st s =
  if s.alive then begin
    s.alive <- false;
    Hashtbl.remove st.sessions s.sid;
    Qdp_obs.Metrics.set obs_sessions (float_of_int (Hashtbl.length st.sessions));
    try Unix.close s.fd with Unix.Unix_error _ -> ()
  end

let accept_new st =
  match Unix.accept ~cloexec:true st.listen_fd with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | fd, _ ->
      if Hashtbl.length st.sessions >= st.cfg.max_sessions then
        (* structured reject, then hang up: the client sees why *)
        let s =
          { sid = -1; fd; reader = Frame.reader (); pending = ""; sent = 0; alive = true }
        in
        begin
          (try
             Frame.write fd
               (Frame.Reject
                  { id = 0; reason = error_json "overload" "session limit reached" })
           with Unix.Unix_error _ -> ());
          s.alive <- false;
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
      else begin
        Unix.set_nonblock fd;
        let sid = st.next_sid in
        st.next_sid <- sid + 1;
        let s =
          { sid; fd; reader = Frame.reader (); pending = ""; sent = 0; alive = true }
        in
        Hashtbl.replace st.sessions sid s;
        Qdp_obs.Metrics.set obs_sessions (float_of_int (Hashtbl.length st.sessions))
      end

(* Admit or reject every complete frame currently buffered on [s]. *)
let drain_frames st s =
  let rec go () =
    match Frame.next s.reader with
    | `More -> ()
    | `Corrupt ->
        (* The framing is lost but the session is not: answer with a
           structured reject and resynchronize on the next magic. *)
        reject s ~id:0 (error_json "bad_frame" "frame failed validation");
        go ()
    | `Msg (Frame.Request { id; payload }) ->
        Qdp_obs.Metrics.incr obs_requests;
        if Queue.length st.queue >= st.cfg.queue_limit then
          reject ~counter:obs_reject_overload s ~id
            (error_json "overload"
               (Printf.sprintf "queue full (%d queued, limit %d)"
                  (Queue.length st.queue) st.cfg.queue_limit))
        else
          Queue.push
            {
              q_session = s;
              q_id = id;
              q_payload = payload;
              q_arrival = Qdp_obs.Clock.now ();
            }
            st.queue;
        go ()
    | `Msg _ ->
        reject s ~id:0 (error_json "bad_request" "expected a Request frame");
        go ()
  in
  go ()

let scratch = Bytes.create 65536

let read_session st s =
  match Unix.read s.fd scratch 0 (Bytes.length scratch) with
  | 0 -> close_session st s (* orderly EOF: mid-request disconnect frees it *)
  | n ->
      Frame.feed s.reader scratch n;
      drain_frames st s
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
    ->
      close_session st s

let flush_session st s =
  let len = String.length s.pending - s.sent in
  if len > 0 then
    match
      Unix.write_substring s.fd s.pending s.sent len
    with
    | n ->
        s.sent <- s.sent + n;
        if s.sent = String.length s.pending then begin
          s.pending <- "";
          s.sent <- 0
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      ->
        close_session st s

(* One batch: pop up to [batch_max] requests, evaluate each distinct
   canonical key once (cache first, then batch-local dedup), fan the
   response out to every waiter. *)
let process_batch st =
  if not (Queue.is_empty st.queue) then begin
    Qdp_obs.Prof.section "serve.batch" @@ fun () ->
    let batch_results : (string, (string, string) result) Hashtbl.t =
      Hashtbl.create 8
    in
    let n = min st.cfg.batch_max (Queue.length st.queue) in
    for _ = 1 to n do
      let q = Queue.pop st.queue in
      if q.q_session.alive then begin
        match Request.of_string q.q_payload with
        | Error msg ->
            reject q.q_session ~id:q.q_id (error_json "bad_request" msg)
        | Ok r -> (
            let key = Request.key r in
            let result =
              match Lru.find st.cache key with
              | Some cached ->
                  Qdp_obs.Metrics.incr obs_cache_hits;
                  Ok cached
              | None -> (
                  match Hashtbl.find_opt batch_results key with
                  | Some res -> res
                  | None ->
                      let res = Eval.run r in
                      (match res with
                      | Ok response -> Lru.add st.cache key response
                      | Error _ -> ());
                      Hashtbl.replace batch_results key res;
                      res)
            in
            match result with
            | Ok response -> reply q.q_session ~id:q.q_id ~arrival:q.q_arrival response
            | Error msg ->
                reject q.q_session ~id:q.q_id (error_json "eval_error" msg))
      end
    done
  end

(* A drained server has nothing queued and nothing buffered. *)
let quiescent st =
  Queue.is_empty st.queue
  && Hashtbl.fold
       (fun _ s acc -> acc && String.length s.pending - s.sent = 0)
       st.sessions true

let stop_accepting st =
  if st.accepting then begin
    st.accepting <- false;
    (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink st.cfg.socket_path with Unix.Unix_error _ -> ()
  end

let run ?(config = default_config) () =
  (* A dead client must surface as EPIPE on write, not kill the
     process. *)
  let prev_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let draining = ref false in
  let handle = Sys.Signal_handle (fun _ -> draining := true) in
  let prev_term = Sys.signal Sys.sigterm handle in
  let prev_int = Sys.signal Sys.sigint handle in
  (match Unix.lstat config.socket_path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink config.socket_path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let st =
    {
      cfg = config;
      listen_fd;
      sessions = Hashtbl.create 32;
      queue = Queue.create ();
      cache = Lru.create config.cache_capacity;
      draining;
      next_sid = 0;
      accepting = true;
    }
  in
  let finally () =
    stop_accepting st;
    Hashtbl.iter (fun _ s -> try Unix.close s.fd with Unix.Unix_error _ -> ())
      st.sessions;
    Hashtbl.reset st.sessions;
    Sys.set_signal Sys.sigpipe prev_pipe;
    Sys.set_signal Sys.sigterm prev_term;
    Sys.set_signal Sys.sigint prev_int
  in
  Fun.protect ~finally @@ fun () ->
  let continue = ref true in
  while !continue do
    (* Drain discipline: stop accepting and stop reading, but finish
       queued evaluations and flush buffered responses first. *)
    if !draining then stop_accepting st;
    if !draining && quiescent st then continue := false
    else begin
      let read_fds =
        (if st.accepting && not !draining then [ st.listen_fd ] else [])
        @
        if !draining then []
        else Hashtbl.fold (fun _ s acc -> s.fd :: acc) st.sessions []
      in
      let write_fds =
        Hashtbl.fold
          (fun _ s acc ->
            if String.length s.pending - s.sent > 0 then s.fd :: acc else acc)
          st.sessions []
      in
      (* Never select-sleep while work is queued; otherwise nap
         briefly so drain signals are noticed promptly. *)
      let timeout = if Queue.is_empty st.queue then 0.1 else 0. in
      match Unix.select read_fds write_fds [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
          if st.accepting && List.memq st.listen_fd readable then
            accept_new st;
          let by_fd fd =
            Hashtbl.fold
              (fun _ s acc -> if s.fd == fd then Some s else acc)
              st.sessions None
          in
          List.iter
            (fun fd ->
              if fd != st.listen_fd then
                match by_fd fd with
                | Some s -> read_session st s
                | None -> ())
            readable;
          process_batch st;
          List.iter
            (fun fd ->
              match by_fd fd with Some s -> flush_session st s | None -> ())
            writable;
          (* Responses generated this iteration should not wait for
             the next select round-trip if the peer is writable. *)
          Hashtbl.iter
            (fun _ s ->
              if String.length s.pending - s.sent > 0 then flush_session st s)
            st.sessions
    end
  done
