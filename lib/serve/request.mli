(** Wire model of one verification request: which registered protocol
    to evaluate, at which {!Qdp_core.Registry.spec} parameters, and
    optionally under which fault plan.  Requests travel as JSON
    payloads inside [Qdp_dist.Frame.Request] frames; {!key} is the
    canonical identity the server's shared cache deduplicates on and
    the load generator's verdict digest folds over. *)

type fault = {
  f_kind : string;  (** a {!Qdp_faults.Plan.kind} name *)
  f_strength : float;  (** in [0, 1] *)
  f_turn : int option;
      (** 1-based turn-schedule target; [None] = every turn *)
  f_trials : int;  (** Monte-Carlo executions per strategy *)
}

type t = {
  rq_protocol : string;  (** registry id, e.g. ["eq"] *)
  rq_spec : Qdp_core.Registry.spec;
  rq_fault : fault option;
}

(** [make ?fault ?spec id] (spec defaults to
    {!Qdp_core.Registry.default_spec}). *)
val make : ?fault:fault -> ?spec:Qdp_core.Registry.spec -> string -> t

(** Canonical one-line key: equal keys iff the evaluations are
    interchangeable. *)
val key : t -> string

val topology_name : Qdp_core.Registry.topology -> string
val topology_of_name : string -> Qdp_core.Registry.topology option

(** Round-trip JSON codec.  {!of_json} validates: unknown fault kinds,
    out-of-range spec fields and wrong field types are [Error]s, and
    absent optional fields take the registry defaults. *)
val to_json : t -> string

val of_json : Qdp_obs.Json.t -> (t, string) result

(** @return [Error] on malformed JSON as well. *)
val of_string : string -> (t, string) result
