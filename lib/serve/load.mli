(** The load generator behind [qdp load]: paced concurrent requests
    against a running daemon, latency percentiles, throughput, and a
    scheduling-insensitive verdict digest.

    The digest folds CRC-32 over the {e sorted set} of (canonical
    request key, response) pairs; overload rejects are retried until
    every request in the mix has a real response.  Because evaluation
    is deterministic (see {!Eval}), the digest of a server run equals
    {!direct_digest} of the same seed — the end-to-end determinism
    check CI enforces. *)

type config = {
  socket : string;
  clients : int;  (** concurrent sessions, one in-flight request each *)
  rps : float;  (** aggregate target request rate *)
  duration : float;  (** seconds of paced sending *)
  seed : int;  (** selects the request mix *)
}

(** Server's default socket, 4 clients, 50 rps, 5 s, seed 42. *)
val default_config : config

type result = {
  lr_clients : int;
  lr_rps_target : float;
  lr_duration_s : float;
  lr_sent : int;
  lr_replies : int;
  lr_overloads : int;  (** overload rejects; each one was retried *)
  lr_errors : int;  (** structured non-overload rejects *)
  lr_throughput_rps : float;
  lr_p50_s : float;
  lr_p99_s : float;
  lr_mean_s : float;
  lr_max_s : float;
  lr_cache_keys : int;  (** distinct canonical keys exercised *)
  lr_digest : string;
}

(** [mix ~seed ()] is the deterministic request mix: every registry
    entry at two parameter points, plus a faulted request per
    fault-capable entry. *)
val mix : ?seed:int -> unit -> Request.t list

(** Digest of (key, response) pairs — sorted, deduplicated, CRC-32,
    rendered as 8 hex digits. *)
val digest : (string * string) list -> string

(** Pure pacing schedule: the [sent]-th request may leave at
    [t_start + sent/rps].  Shared by the send gate and the select
    timeout; pure in [now] so tests drive it with a stepped fake
    clock ({!Qdp_obs.Clock.set_source}). *)
val next_send_at : t_start:float -> rps:float -> sent:int -> float

val send_due : t_start:float -> rps:float -> sent:int -> now:float -> bool

(** Seconds until the next send slot, clamped at [0.]. *)
val pace_timeout : t_start:float -> rps:float -> sent:int -> now:float -> float

(** [direct ()] evaluates the mix without a server. *)
val direct : ?config:config -> unit -> (string * string) list

val direct_digest : ?config:config -> unit -> string

(** [run ()] drives a live daemon.  Raises [Unix.Unix_error] when the
    socket is not accepting, [Invalid_argument] on a nonsensical
    config. *)
val run : ?config:config -> unit -> result

(** Fixed-shape JSON for [BENCH_serve.json]: the key skeleton is
    byte-stable across runs, only measured values vary. *)
val to_json : result -> string
