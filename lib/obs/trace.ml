(* Span tracing with a bounded ring-buffer sink.  A span records the
   wall-clock interval of one dynamic region (an attack search, a
   runtime round, a kernel call) together with nesting information and
   key/value attributes.  Spans are recorded on exit, so in the buffer
   children precede their parent; consumers reconstruct the tree from
   [parent] ids or by sorting on start time. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;
  parent : int;  (* -1 for a root span *)
  name : string;
  depth : int;
  start_s : float;  (* seconds since the trace epoch *)
  dur_s : float;
  attrs : (string * value) list;
}

let epoch = ref (Clock.now ())
let default_capacity = 8192
let buf = ref (Array.make default_capacity (None : span option))
let write = ref 0
let stored = ref 0
let dropped_spans = ref 0

(* Guards the ring state above ([epoch], [buf], [write], [stored],
   [dropped_spans]): spans complete concurrently on pool domains.  Ids
   are allocated atomically outside the lock, and the open-span stack
   is domain-local — nesting is a per-domain notion (a span opened on
   a worker is a root of that worker's tree, not a child of whatever
   the submitting domain had open). *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let next_id = Atomic.make 0
let stack_key = Domain.DLS.new_key (fun () -> ref ([] : int list))

let clear () =
  locked @@ fun () ->
  Array.fill !buf 0 (Array.length !buf) None;
  write := 0;
  stored := 0;
  dropped_spans := 0;
  Domain.DLS.get stack_key := [];
  epoch := Clock.now ()

let set_capacity n =
  if n < 1 then invalid_arg "Qdp_obs.Trace.set_capacity: n >= 1";
  locked (fun () -> buf := Array.make n None);
  clear ()

let capacity () = locked (fun () -> Array.length !buf)
let dropped () = locked (fun () -> !dropped_spans)

let record sp =
  locked @@ fun () ->
  let b = !buf in
  let n = Array.length b in
  if !stored = n then incr dropped_spans else incr stored;
  b.(!write) <- Some sp;
  write := (!write + 1) mod n

(* Oldest-first contents of the ring buffer; call with [lock] held. *)
let contents_unlocked () =
  let b = !buf in
  let n = Array.length b in
  let first = if !stored = n then !write else 0 in
  List.init !stored (fun i ->
      match b.((first + i) mod n) with
      | Some sp -> sp
      | None -> assert false)

let spans () = locked contents_unlocked

(* Spans plus the drop counter under one lock acquisition, so
   exporters reading from a live multi-domain run see a consistent
   pair. *)
let snapshot () = locked (fun () -> (contents_unlocked (), !dropped_spans))

let with_span ?attrs name f =
  if not (Control.on ()) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 + 1 in
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> -1 | p :: _ -> p in
    let depth = List.length !stack in
    stack := id :: !stack;
    let t0 = Clock.now () in
    let finish () =
      let dur = Float.max 0. (Clock.now () -. t0) in
      (match !stack with
      | s :: rest when s = id -> stack := rest
      | other ->
          (* an exception unwound past intermediate spans; drop down to
             below our frame rather than corrupting the stack *)
          let rec pop = function
            | s :: rest when s <> id -> pop rest
            | _ :: rest -> rest
            | [] -> []
          in
          stack := pop other);
      let attrs = match attrs with None -> [] | Some mk -> mk () in
      record { id; parent; name; depth; start_s = t0 -. !epoch; dur_s = dur; attrs }
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* --- exporters --- *)

let json_of_value = function
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> Json.float f
  | Str s -> Json.str s

let json_of_attrs attrs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Json.str k ^ ":" ^ json_of_value v) attrs)
  ^ "}"

let json_of_span sp =
  Printf.sprintf
    "{\"id\":%d,\"parent\":%d,\"name\":%s,\"depth\":%d,\"start_s\":%s,\"dur_s\":%s,\"attrs\":%s}"
    sp.id sp.parent (Json.str sp.name) sp.depth (Json.float sp.start_s)
    (Json.float sp.dur_s) (json_of_attrs sp.attrs)

let to_jsonl () =
  String.concat "" (List.map (fun sp -> json_of_span sp ^ "\n") (spans ()))

let write_jsonl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ()))

let pp_value fmt = function
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%.6g" f
  | Str s -> Format.pp_print_string fmt s

let pp_duration fmt d =
  if d >= 1. then Format.fprintf fmt "%.3fs" d
  else if d >= 1e-3 then Format.fprintf fmt "%.3fms" (d *. 1e3)
  else Format.fprintf fmt "%.1fus" (d *. 1e6)

(* Pretty tree: spans sorted by start time (a parent starts no later
   than its children, with registration-id as the tiebreak) and
   indented by recorded depth. *)
let pp fmt () =
  let spans, dropped = snapshot () in
  let sorted =
    List.sort
      (fun a b ->
        match Float.compare a.start_s b.start_s with
        | 0 -> compare a.id b.id
        | c -> c)
      spans
  in
  List.iter
    (fun sp ->
      Format.fprintf fmt "%s%-40s %a" (String.make (2 * sp.depth) ' ') sp.name
        pp_duration sp.dur_s;
      List.iter (fun (k, v) -> Format.fprintf fmt " %s=%a" k pp_value v) sp.attrs;
      Format.pp_print_newline fmt ())
    sorted;
  if dropped > 0 then
    Format.fprintf fmt "(+%d spans dropped by the ring buffer)@\n" dropped
