(** Named counters, gauges and log-scale histograms.

    All handles are registered in a process-global registry keyed by
    name; registering the same name twice returns the same handle (and
    raises [Invalid_argument] if the kinds disagree).  Updates are
    no-ops while observability is disabled (see {!Qdp_obs.set_enabled}),
    costing one branch, so handles can be created unconditionally at
    module initialisation. *)

type counter
type gauge
type histogram

(** [counter name] registers (or retrieves) the counter [name]. *)
val counter : string -> counter

(** [gauge name] registers (or retrieves) the gauge [name]. *)
val gauge : string -> gauge

(** [histogram ?base name] registers (or retrieves) a log-scale
    histogram with buckets at powers of [base] (default [2.]). *)
val histogram : ?base:float -> string -> histogram

(** [incr ?by c] adds [by] (default 1) to [c] when enabled. *)
val incr : ?by:int -> counter -> unit

(** [set g v] stores [v] in [g] when enabled. *)
val set : gauge -> float -> unit

(** [set_max g v] stores [v] in [g] if it exceeds the current value
    (or if [g] was never set) — a high-watermark gauge. *)
val set_max : gauge -> float -> unit

(** [observe h v] records one observation of [v] in [h] when
    enabled. *)
val observe : histogram -> float -> unit

(** [time h f] runs [f ()], recording its wall-clock duration in
    seconds into [h]; exactly [f ()] when disabled.  Exceptions are
    timed and re-raised. *)
val time : histogram -> (unit -> 'a) -> 'a

(** Immutable view of one histogram at snapshot time. *)
type hview = {
  h_base : float;
  h_count : int;
  h_sum : float;
  h_min : float;  (** [nan] when empty *)
  h_max : float;  (** [nan] when empty *)
  h_buckets : (int * int) list;
      (** [(exponent, count)] for non-empty buckets: values in
          [base^e, base^(e+1)) land in exponent [e]; the synthetic
          exponent [-61] collects non-positive observations *)
}

type view = Counter_v of int | Gauge_v of float | Histogram_v of hview

(** A point-in-time copy of the registry, in registration order. *)
type snapshot = (string * view) list

val snapshot : unit -> snapshot

(** [reset ()] zeroes every registered metric (registrations are
    kept). *)
val reset : unit -> unit

val names : snapshot -> string list
val find : snapshot -> string -> view option

(** [to_json s] renders [{"metrics":[...]}]. *)
val to_json : snapshot -> string

(** [to_csv s] renders [name,kind,value,count,sum,min,max] rows. *)
val to_csv : snapshot -> string

val write_json : string -> snapshot -> unit
val write_csv : string -> snapshot -> unit
