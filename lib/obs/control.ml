(* Global on/off switch for all observability.  Every metric update and
   span entry checks this single atomic bool first, so with the switch
   off the instrumented hot paths pay one load + branch (from any
   domain) and closures passed to the recording functions are never
   evaluated. *)

let enabled = Atomic.make false
let on () = Atomic.get enabled
let set b = Atomic.set enabled b
