(* Global on/off switch for all observability.  Every metric update and
   span entry checks this single mutable bool first, so with the switch
   off the instrumented hot paths pay one load + branch and closures
   passed to the recording functions are never evaluated. *)

let enabled = ref false
let on () = !enabled
let set b = enabled := b
