(* Live progress heartbeats for long grids.  A call site opens a
   handle with the number of work units it expects, ticks it from
   wherever the units complete (including pool domains), and the
   module emits at most one line per configured interval — to stderr
   by default — as human text or single-line JSON.  When the profiler
   is on, each heartbeat carries the per-domain busy time accumulated
   since the handle was opened, i.e. live utilization of the grid
   itself.  Everything is inert until [set_enabled true]; a tick on a
   disabled handle is one atomic load. *)

type format = Human | Json

let enabled_flag = Atomic.make false
let on () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Configuration and emission are guarded by one mutex; heartbeats are
   rare (>= the interval apart) so contention is irrelevant. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let interval = ref 1.0
let fmt = ref Human

let default_sink line =
  prerr_string line;
  prerr_newline ()

let sink = ref default_sink

let configure ?interval_s ?format ?emit () =
  locked @@ fun () ->
  (match interval_s with
  | Some s when s >= 0. -> interval := s
  | Some _ -> invalid_arg "Qdp_obs.Progress.configure: interval_s >= 0."
  | None -> ());
  (match format with Some f -> fmt := f | None -> ());
  match emit with Some f -> sink := f | None -> ()

type t = {
  p_label : string;
  p_total : int;  (* 0 = unknown *)
  p_t0 : float;
  p_done : int Atomic.t;
  (* last emission time; CAS'd so concurrent ticks elect one emitter *)
  p_last : float Atomic.t;
  (* per-domain busy seconds at open time, to report utilization of
     this grid rather than of the whole profile *)
  p_busy0 : (int * float) list;
}

let busy_now () =
  List.map
    (fun d -> (d.Prof.dom_id, d.Prof.dom_busy_s))
    (Prof.domain_stats ())

let start ?(total = 0) label =
  let t0 = if on () then Clock.now () else 0. in
  {
    p_label = label;
    p_total = total;
    p_t0 = t0;
    p_done = Atomic.make 0;
    p_last = Atomic.make t0;
    p_busy0 = (if on () && Prof.on () then busy_now () else []);
  }

let grid_busy t =
  if not (Prof.on ()) then []
  else
    List.map
      (fun (id, b) ->
        let b0 =
          match List.assoc_opt id t.p_busy0 with Some b0 -> b0 | None -> 0.
        in
        (id, Float.max 0. (b -. b0)))
      (busy_now ())

let render t ~now ~final =
  let done_ = Atomic.get t.p_done in
  let elapsed = Float.max 0. (now -. t.p_t0) in
  let eta =
    if (not final) && t.p_total > 0 && done_ > 0 && done_ < t.p_total then
      Some (elapsed *. float_of_int (t.p_total - done_) /. float_of_int done_)
    else None
  in
  let busy = grid_busy t in
  match locked (fun () -> !fmt) with
  | Json ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf
        (Printf.sprintf "{\"progress\":%s,\"done\":%d" (Json.str t.p_label)
           done_);
      if t.p_total > 0 then
        Buffer.add_string buf (Printf.sprintf ",\"total\":%d" t.p_total);
      Buffer.add_string buf
        (Printf.sprintf ",\"elapsed_s\":%s" (Json.float elapsed));
      (match eta with
      | Some e -> Buffer.add_string buf (Printf.sprintf ",\"eta_s\":%s" (Json.float e))
      | None -> ());
      if final then Buffer.add_string buf ",\"done_flag\":true";
      if busy <> [] then begin
        Buffer.add_string buf ",\"domains\":[";
        List.iteri
          (fun i (id, b) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "{\"id\":%d,\"busy_s\":%s}" id (Json.float b)))
          busy;
        Buffer.add_char buf ']'
      end;
      Buffer.add_char buf '}';
      Buffer.contents buf
  | Human ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf ("qdp: " ^ t.p_label ^ " ");
      if t.p_total > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%d/%d (%.1f%%)" done_ t.p_total
             (100. *. float_of_int done_ /. float_of_int t.p_total))
      else Buffer.add_string buf (string_of_int done_);
      Buffer.add_string buf (Printf.sprintf " elapsed %.1fs" elapsed);
      (match eta with
      | Some e -> Buffer.add_string buf (Printf.sprintf " eta %.1fs" e)
      | None -> ());
      if final then Buffer.add_string buf " done";
      if busy <> [] then begin
        let total_busy = List.fold_left (fun s (_, b) -> s +. b) 0. busy in
        Buffer.add_string buf
          (Printf.sprintf " util %.2fx/%d"
             (if elapsed > 0. then total_busy /. elapsed else 0.)
             (List.length busy));
        List.iter
          (fun (id, b) ->
            Buffer.add_string buf
              (Printf.sprintf " d%d=%.0f%%" id
                 (if elapsed > 0. then 100. *. b /. elapsed else 0.)))
          busy
      end;
      Buffer.contents buf

let emit t ~now ~final =
  let line = render t ~now ~final in
  locked (fun () -> !sink line)

let step ?(by = 1) t =
  if on () then begin
    ignore (Atomic.fetch_and_add t.p_done by);
    let now = Clock.now () in
    let last = Atomic.get t.p_last in
    let iv = locked (fun () -> !interval) in
    if now -. last >= iv && Atomic.compare_and_set t.p_last last now then
      emit t ~now ~final:false
  end

let finish t = if on () then emit t ~now:(Clock.now ()) ~final:true
