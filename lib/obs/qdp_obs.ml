(* Qdp_obs — observability for the qdp protocol engines: a metrics
   registry (counters / gauges / log-scale histograms with JSON and
   CSV exporters) and span tracing with a ring-buffer sink.  All
   instrumentation is inert until [set_enabled true]; call sites pay a
   single branch, and attribute/label closures are only evaluated
   while the switch is on. *)

module Clock = Clock
module Metrics = Metrics
module Trace = Trace
module Prof = Prof
module Progress = Progress
module Calib = Calib
module Perf_diff = Perf_diff
module Json = Json

let enabled () = Control.on ()
let set_enabled b = Control.set b

let with_enabled b f =
  let prev = Control.on () in
  Control.set b;
  Fun.protect ~finally:(fun () -> Control.set prev) f
