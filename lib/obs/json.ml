(* Minimal JSON emission and parsing (no external dependency): string
   escaping and float rendering shared by the metrics and trace
   exporters, plus the small recursive-descent parser that the
   perf-diff comparator uses to read the BENCH_*.json artifacts back
   in. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""

(* JSON has no NaN/Infinity literals; map them to null. *)
let float f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "null"

(* --- parsing --- *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_error pos msg =
  raise (Parse_error (Printf.sprintf "offset %d: %s" pos msg))

(* Recursive-descent parser over the whole input string.  Covers the
   JSON subset our exporters emit (and standard escapes, so files we
   did not write still load); numbers are lexed against the RFC 8259
   grammar and only then converted with [float_of_string]. *)
let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else parse_error !pos (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      v
    end
    else parse_error !pos (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    (* Strict: exactly four [0-9a-fA-F] digits.  [int_of_string "0x…"]
       would also accept underscores and signs. *)
    if !pos + 4 > n then parse_error !pos "truncated \\u escape";
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> parse_error !pos (Printf.sprintf "bad hex digit %C" c)
    in
    let v = ref 0 in
    for i = 0 to 3 do
      v := (!v lsl 4) lor digit s.[!pos + i]
    done;
    pos := !pos + 4;
    !v
  in
  let utf8_add buf cp =
    (* Minimal UTF-8 encoder for decoded \u escapes. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_unicode_escape buf =
    (* Called just past "\u".  A high surrogate must be followed by a
       "\uXXXX" low surrogate; the pair decodes to one supplementary
       code point.  Lone or inverted surrogates are rejected. *)
    let hi = parse_hex4 () in
    if hi >= 0xd800 && hi <= 0xdbff then begin
      if
        not
          (!pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
      then parse_error !pos "high surrogate not followed by \\u escape";
      pos := !pos + 2;
      let lo = parse_hex4 () in
      if not (lo >= 0xdc00 && lo <= 0xdfff) then
        parse_error (!pos - 4)
          (Printf.sprintf "invalid low surrogate \\u%04x" lo);
      utf8_add buf
        (0x10000 + (((hi - 0xd800) lsl 10) lor (lo - 0xdc00)))
    end
    else if hi >= 0xdc00 && hi <= 0xdfff then
      parse_error (!pos - 4) (Printf.sprintf "lone low surrogate \\u%04x" hi)
    else utf8_add buf hi
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then parse_error !pos "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then parse_error !pos "truncated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
              incr pos;
              parse_unicode_escape buf
          | c -> parse_error !pos (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    (* Lexed against the RFC 8259 grammar — an optional minus, then
       "0" or a nonzero digit followed by digits, an optional
       ".digits" fraction and an optional signed exponent — rather
       than delegated to [float_of_string_opt], which also accepts
       OCaml float literals that are not JSON: leading [+], leading
       zeros, a bare trailing or leading dot ([+1], [01], [1.],
       [.5]), hex floats and [_] separators. *)
    let start = !pos in
    let is_digit c = c >= '0' && c <= '9' in
    let digits1 what =
      if not (!pos < n && is_digit s.[!pos]) then
        parse_error !pos (Printf.sprintf "expected digit in %s" what);
      while !pos < n && is_digit s.[!pos] do
        incr pos
      done
    in
    if !pos < n && s.[!pos] = '-' then incr pos;
    (* int part: 0, or a nonzero digit followed by digits — 01 is two
       tokens and surfaces as trailing garbage / a container error *)
    (match if !pos < n then Some s.[!pos] else None with
    | Some '0' -> incr pos
    | Some c when is_digit c -> digits1 "number"
    | _ -> parse_error start "bad number");
    if !pos < n && s.[!pos] = '.' then begin
      incr pos;
      digits1 "fraction"
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      incr pos;
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then incr pos;
      digits1 "exponent"
    end;
    let lit = String.sub s start (!pos - start) in
    match float_of_string_opt lit with
    | Some f -> f
    | None -> parse_error start (Printf.sprintf "bad number %S" lit)
  in
  (* Nesting bound: the parser recurses per container level, so a
     hostile input like 100k '['s would otherwise blow the OCaml
     stack rather than raise a catchable [Parse_error]. *)
  let max_depth = 512 in
  let rec parse_value depth =
    skip_ws ();
    if depth > max_depth then parse_error !pos "nesting too deep";
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> parse_error !pos "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            (k, v)
          in
          let rec members acc =
            let kv = member () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members (kv :: acc)
            | Some '}' ->
                incr pos;
                List.rev (kv :: acc)
            | _ -> parse_error !pos "expected , or } in object"
          in
          Obj (members [])
        end
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then parse_error !pos "trailing garbage after value";
  v

(* --- accessors used by the perf-diff comparator --- *)

let member name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let to_list = function Arr xs -> xs | _ -> []

let num_opt = function
  | Num f -> Some f
  | _ -> None

let string_opt = function
  | String s -> Some s
  | _ -> None
