(** Kernel calibration sampling for the cost model.

    {!sample} wraps one kernel invocation and records its nominal MAC
    count together with measured wall seconds, GC-allocation words
    (minor/major, calling domain only) and the dispatch path that ran
    (["seq"] or ["par"]).  Per-kernel totals and a tail window of the
    {e most recent} {!max_samples} raw samples are exported by
    {!to_json}/{!write_json} as [BENCH_calib.json], the input data for
    the {!Qdp_model} kernel cost model — a tail window rather than a
    head capture, so fits see steady-state calls instead of the
    cold-start prefix.

    Own switch, same zero-cost discipline as {!Prof}: one atomic-load
    branch per call while disabled. *)

type sample = {
  s_macs : float;
  s_seconds : float;
  s_minor_words : float;
  s_major_words : float;
  s_path : string;  (** ["seq"] or ["par"] — the path that actually ran *)
}

type kernel_view = {
  k_name : string;
  k_calls : int;
  k_macs : float;
  k_seconds : float;
  k_minor_words : float;
  k_major_words : float;
  k_samples : sample list;  (** oldest first *)
}

(** Raw samples kept per kernel (the tail window size); totals keep
    accumulating past it. *)
val max_samples : int

val on : unit -> bool
val set_enabled : bool -> unit

(** [sample ~kernel ~macs ?path f] runs [f] and records one
    observation for [kernel].  [macs] is the nominal
    multiply-accumulate count of the call (complex MACs for the dense
    kernels); [path] (default ["seq"]) tags which dispatch path
    executed, so the cost model can fit the two paths separately.
    Exception-safe; when the switch is off this is exactly [f ()]. *)
val sample : kernel:string -> macs:float -> ?path:string -> (unit -> 'a) -> 'a

(** Per-kernel views in first-seen order. *)
val kernels : unit -> kernel_view list

val reset : unit -> unit

(** [{"calibration":[{"kernel":...,"calls":...,"total_macs":...,
    "total_seconds":...,"ns_per_mac":...,...,"samples":[...]},...]}] *)
val to_json : unit -> string

val write_json : string -> unit
