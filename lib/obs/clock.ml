(* Wall clock in seconds with a monotonic clamp: [Unix.gettimeofday]
   can step backwards under NTP adjustment, which would produce
   negative span durations, so [now] never returns a value smaller
   than the previous reading. *)

let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t < !last then !last
  else begin
    last := t;
    t
  end
