(* Wall clock in seconds with a monotonic clamp: [Unix.gettimeofday]
   can step backwards under NTP adjustment, which would produce
   negative span durations, so [now] never returns a value smaller
   than a previously observed one.  The clamp is a CAS loop over an
   atomic so concurrent domains can neither tear the stored maximum
   nor pin another domain's reading backwards. *)

let last = Atomic.make neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()
