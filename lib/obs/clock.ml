(* Wall clock in seconds with a monotonic clamp: [Unix.gettimeofday]
   can step backwards under NTP adjustment, which would produce
   negative span durations and misfired (or never-firing) deadlines,
   so [now] never returns a value smaller than a previously observed
   one.  The clamp is a CAS loop over an atomic so concurrent domains
   can neither tear the stored maximum nor pin another domain's
   reading backwards.

   Everything that measures elapsed wall time in this codebase —
   spans, profiles, progress heartbeats, shard deadlines, backoff
   wakeups, [Runtime.run_turns] execution deadlines — must read the
   clock through [now], never through raw [Unix.gettimeofday]. *)

let last = Atomic.make neg_infinity

(* The time source is swappable so tests can drive the clamp (and the
   deadline logic built on it) with a stepped fake clock.  Plain
   [ref]: the only writer is the test harness, before concurrency. *)
let source : (unit -> float) ref = ref Unix.gettimeofday

let now () =
  let t = !source () in
  let rec clamp () =
    let prev = Atomic.get last in
    if t <= prev then prev
    else if Atomic.compare_and_set last prev t then t
    else clamp ()
  in
  clamp ()

let set_source f =
  (match f with
  | Some f -> source := f
  | None -> source := Unix.gettimeofday);
  (* Reset the clamp so a fake clock far in the future cannot pin the
     restored system clock (and vice versa).  Test-only hook: the
     monotonic guarantee holds within one source, not across a swap. *)
  Atomic.set last neg_infinity
