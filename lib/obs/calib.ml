(* Kernel calibration sampling: per-call (MAC-count, seconds,
   allocated-words, dispatch-path) observations for the dense kernels,
   exported to BENCH_calib.json as the raw data behind the ROADMAP
   item-5 cost model.  Shares the profiler switch discipline: its own
   atomic on/off flag, one branch per call while disabled.

   Per-kernel totals are unbounded; raw samples live in a fixed-size
   ring so a long run cannot grow memory without bound.  The ring
   keeps the *last* [max_samples] observations — a tail window — so a
   fitted model sees steady-state calls, not the cold-start prefix
   (JIT-warm caches, first-touch page faults, lazy pool spawn all land
   in the first calls). *)

type sample = {
  s_macs : float;
  s_seconds : float;
  s_minor_words : float;
  s_major_words : float;
  s_path : string;  (* "seq" | "par": the dispatch path that actually ran *)
}

type kernel_view = {
  k_name : string;
  k_calls : int;
  k_macs : float;
  k_seconds : float;
  k_minor_words : float;
  k_major_words : float;
  k_samples : sample list;  (* oldest first *)
}

type kstat = {
  mutable calls : int;
  mutable macs : float;
  mutable seconds : float;
  mutable minor_words : float;
  mutable major_words : float;
  ring : sample array;  (* tail window, written at [next] *)
  mutable next : int;
  mutable kept : int;
}

let max_samples = 512

let dummy_sample =
  { s_macs = 0.; s_seconds = 0.; s_minor_words = 0.; s_major_words = 0.; s_path = "seq" }

let enabled_flag = Atomic.make false
let on () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

(* Guarded by [lock]; [order] keeps kernels in first-seen order. *)
let table : (string, kstat) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let reset () =
  locked @@ fun () ->
  Hashtbl.reset table;
  order := []

let sample ~kernel ~macs ?(path = "seq") f =
  if not (on ()) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    let t0 = Clock.now () in
    let finish () =
      let dt = Float.max 0. (Clock.now () -. t0) in
      let g1 = Gc.quick_stat () in
      let minor = Float.max 0. (g1.Gc.minor_words -. g0.Gc.minor_words) in
      let major = Float.max 0. (g1.Gc.major_words -. g0.Gc.major_words) in
      locked @@ fun () ->
      let k =
        match Hashtbl.find_opt table kernel with
        | Some k -> k
        | None ->
            let k =
              {
                calls = 0;
                macs = 0.;
                seconds = 0.;
                minor_words = 0.;
                major_words = 0.;
                ring = Array.make max_samples dummy_sample;
                next = 0;
                kept = 0;
              }
            in
            Hashtbl.add table kernel k;
            order := kernel :: !order;
            k
      in
      k.calls <- k.calls + 1;
      k.macs <- k.macs +. macs;
      k.seconds <- k.seconds +. dt;
      k.minor_words <- k.minor_words +. minor;
      k.major_words <- k.major_words +. major;
      k.ring.(k.next) <-
        {
          s_macs = macs;
          s_seconds = dt;
          s_minor_words = minor;
          s_major_words = major;
          s_path = path;
        };
      k.next <- (k.next + 1) mod max_samples;
      if k.kept < max_samples then k.kept <- k.kept + 1
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* Oldest-first window: before the ring wraps the window starts at 0,
   after it wraps the oldest surviving sample sits at the write
   cursor. *)
let window k =
  let start = if k.kept < max_samples then 0 else k.next in
  List.init k.kept (fun i -> k.ring.((start + i) mod max_samples))

let kernels () =
  locked @@ fun () ->
  List.rev_map
    (fun name ->
      let k = Hashtbl.find table name in
      {
        k_name = name;
        k_calls = k.calls;
        k_macs = k.macs;
        k_seconds = k.seconds;
        k_minor_words = k.minor_words;
        k_major_words = k.major_words;
        k_samples = window k;
      })
    !order

let json_of_sample s =
  Printf.sprintf
    "{\"macs\":%s,\"seconds\":%s,\"minor_words\":%s,\"major_words\":%s,\"path\":%s}"
    (Json.float s.s_macs) (Json.float s.s_seconds)
    (Json.float s.s_minor_words)
    (Json.float s.s_major_words)
    (Json.str s.s_path)

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"calibration\":[";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string buf ",\n";
      let ns_per_mac =
        if k.k_macs > 0. then 1e9 *. k.k_seconds /. k.k_macs else 0.
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"kernel\":%s,\"calls\":%d,\"total_macs\":%s,\"total_seconds\":%s,\"ns_per_mac\":%s,\"minor_words\":%s,\"major_words\":%s,\"samples\":["
           (Json.str k.k_name) k.k_calls (Json.float k.k_macs)
           (Json.float k.k_seconds) (Json.float ns_per_mac)
           (Json.float k.k_minor_words)
           (Json.float k.k_major_words));
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (json_of_sample s))
        k.k_samples;
      Buffer.add_string buf "]}")
    (kernels ());
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))
