(* Kernel calibration sampling: per-call (MAC-count, seconds,
   allocated-words) observations for the dense kernels, exported to
   BENCH_calib.json as the raw data behind the ROADMAP item-5 cost
   model.  Shares the profiler switch discipline: its own atomic
   on/off flag, one branch per call while disabled.

   Per-kernel totals are unbounded; the per-sample list is capped so a
   long run cannot grow memory without bound — totals keep
   accumulating after the cap, only the raw samples stop. *)

type sample = {
  s_macs : float;
  s_seconds : float;
  s_minor_words : float;
  s_major_words : float;
}

type kernel_view = {
  k_name : string;
  k_calls : int;
  k_macs : float;
  k_seconds : float;
  k_minor_words : float;
  k_major_words : float;
  k_samples : sample list;  (* oldest first *)
}

type kstat = {
  mutable calls : int;
  mutable macs : float;
  mutable seconds : float;
  mutable minor_words : float;
  mutable major_words : float;
  mutable samples : sample list;  (* newest first *)
  mutable kept : int;
}

let max_samples = 512

let enabled_flag = Atomic.make false
let on () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

(* Guarded by [lock]; [order] keeps kernels in first-seen order. *)
let table : (string, kstat) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let reset () =
  locked @@ fun () ->
  Hashtbl.reset table;
  order := []

let sample ~kernel ~macs f =
  if not (on ()) then f ()
  else begin
    let g0 = Gc.quick_stat () in
    let t0 = Clock.now () in
    let finish () =
      let dt = Float.max 0. (Clock.now () -. t0) in
      let g1 = Gc.quick_stat () in
      let minor = Float.max 0. (g1.Gc.minor_words -. g0.Gc.minor_words) in
      let major = Float.max 0. (g1.Gc.major_words -. g0.Gc.major_words) in
      locked @@ fun () ->
      let k =
        match Hashtbl.find_opt table kernel with
        | Some k -> k
        | None ->
            let k =
              {
                calls = 0;
                macs = 0.;
                seconds = 0.;
                minor_words = 0.;
                major_words = 0.;
                samples = [];
                kept = 0;
              }
            in
            Hashtbl.add table kernel k;
            order := kernel :: !order;
            k
      in
      k.calls <- k.calls + 1;
      k.macs <- k.macs +. macs;
      k.seconds <- k.seconds +. dt;
      k.minor_words <- k.minor_words +. minor;
      k.major_words <- k.major_words +. major;
      if k.kept < max_samples then begin
        k.samples <-
          {
            s_macs = macs;
            s_seconds = dt;
            s_minor_words = minor;
            s_major_words = major;
          }
          :: k.samples;
        k.kept <- k.kept + 1
      end
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let kernels () =
  locked @@ fun () ->
  List.rev_map
    (fun name ->
      let k = Hashtbl.find table name in
      {
        k_name = name;
        k_calls = k.calls;
        k_macs = k.macs;
        k_seconds = k.seconds;
        k_minor_words = k.minor_words;
        k_major_words = k.major_words;
        k_samples = List.rev k.samples;
      })
    !order

let json_of_sample s =
  Printf.sprintf
    "{\"macs\":%s,\"seconds\":%s,\"minor_words\":%s,\"major_words\":%s}"
    (Json.float s.s_macs) (Json.float s.s_seconds)
    (Json.float s.s_minor_words)
    (Json.float s.s_major_words)

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"calibration\":[";
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string buf ",\n";
      let ns_per_mac =
        if k.k_macs > 0. then 1e9 *. k.k_seconds /. k.k_macs else 0.
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"kernel\":%s,\"calls\":%d,\"total_macs\":%s,\"total_seconds\":%s,\"ns_per_mac\":%s,\"minor_words\":%s,\"major_words\":%s,\"samples\":["
           (Json.str k.k_name) k.k_calls (Json.float k.k_macs)
           (Json.float k.k_seconds) (Json.float ns_per_mac)
           (Json.float k.k_minor_words)
           (Json.float k.k_major_words));
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (json_of_sample s))
        k.k_samples;
      Buffer.add_string buf "]}")
    (kernels ());
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))
