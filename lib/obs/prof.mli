(** Scoped profiler: section timing, GC-allocation attribution and
    pool busy/idle accounting.

    {!section} opens a nestable region; on exit the wall-clock delta
    and the [Gc.quick_stat] deltas (minor/major/promoted words,
    compactions) are added to the aggregate for the region's {e path}
    — the "/"-joined chain of enclosing section names on the current
    domain, e.g. ["xval/eq/runtime/perm_accept"].  Aggregates are
    queried as a flat profile ({!flat}), a caller→callee attribution
    tree ({!tree}), or raw entries ({!entries}).

    The profiler has its own switch ({!set_enabled}, the [--profile]
    flag), independent of the metrics/trace switch: while disabled
    every hook costs a single atomic load and records nothing.

    Like [Trace], nesting is per domain: a section entered inside a
    [Qdp_par] pool task roots a new tree on that worker domain, while
    chunks the submitting domain executes itself (the pool is
    caller-helps) keep their full path prefix.  GC deltas are
    per-domain too — a section covering a parallel region attributes
    only the calling domain's allocation to itself; allocation on the
    workers lands in the sections those workers open.

    The recording hooks themselves allocate a small constant amount
    per call (two [Gc.quick_stat] records and a closure) which is
    included in the enclosing section's delta; it is ~100 words per
    call and does not grow with the work profiled. *)

(** Current state of the profiler switch. *)
val on : unit -> bool

val set_enabled : bool -> unit

(** [section name f] runs [f] inside a profiled region called [name]
    (which should not contain ['/']).  Exception-safe: the region is
    recorded even when [f] raises.  When the profiler is off this is
    exactly [f ()]. *)
val section : string -> (unit -> 'a) -> 'a

(** {2 Pool hooks}

    Called by [Qdp_par]; exposed so alternative schedulers could feed
    the same accounting. *)

(** [task f] runs one unit of pool work and adds its wall time to the
    executing domain's busy total. *)
val task : (unit -> 'a) -> 'a

(** [region f] runs a whole parallel region; the outermost region on
    each domain contributes its wall time to the region-wall total
    that {!pp_domains} reports idle time against.  Nested regions are
    not double-counted. *)
val region : (unit -> 'a) -> 'a

(** {2 Snapshots} *)

type entry = {
  e_path : string;
  e_calls : int;
  e_wall_s : float;
  e_minor_words : float;
  e_major_words : float;
  e_promoted_words : float;
  e_compactions : int;
}

type domain_stat = { dom_id : int; dom_busy_s : float; dom_tasks : int }

type node = {
  n_path : string;
  n_name : string;  (** last path segment *)
  n_calls : int;
  n_wall_s : float;
  n_self_s : float;  (** wall minus direct children, clamped at 0 *)
  n_minor_words : float;
  n_major_words : float;
  n_promoted_words : float;
  n_compactions : int;
  n_children : node list;
}

type row = {
  r_name : string;
  r_calls : int;
  r_wall_s : float;
  r_self_s : float;
  r_minor_words : float;
  r_major_words : float;
}

(** Raw per-path aggregates in first-recorded order. *)
val entries : unit -> entry list

(** Per-domain busy time and task count for pool work, in
    first-recorded order.  Empty when no parallel region ran. *)
val domain_stats : unit -> domain_stat list

(** [(count, wall_s)] of outermost parallel regions: the denominator
    for per-domain utilization. *)
val regions : unit -> int * float

(** Attribution forest reconstructed from the path table. *)
val tree : unit -> node list

(** Flat profile: tree nodes aggregated by section name, sorted by
    self time (descending). *)
val flat : unit -> row list

(** Clears all aggregates, domain stats and region totals. *)
val reset : unit -> unit

(** {2 Reports} *)

val pp_flat : Format.formatter -> unit -> unit
val pp_tree : Format.formatter -> unit -> unit
val pp_domains : Format.formatter -> unit -> unit

(** Flat profile + attribution tree + domain busy/idle split. *)
val report : Format.formatter -> unit -> unit

(** One JSON object: [{"sections":[...],"domains":[...],"regions":{...}}]. *)
val to_json : unit -> string
