(** Span tracing with a bounded ring-buffer sink.

    [with_span name f] times the execution of [f ()] and records a
    span carrying the wall-clock interval, the nesting depth and
    parent span, and (lazily built) attributes.  When observability is
    disabled it is exactly [f ()].  Spans are recorded on exit, so in
    buffer order children precede their parent; {!pp} and the JSONL
    export carry enough structure ([id]/[parent]/[depth]) to rebuild
    the tree. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;
  parent : int;  (** [-1] for a root span *)
  name : string;
  depth : int;
  start_s : float;  (** seconds since the trace epoch *)
  dur_s : float;
  attrs : (string * value) list;
}

(** [with_span ?attrs name f] runs [f] inside a span.  [attrs] is a
    closure so attribute construction costs nothing when tracing is
    off; it is evaluated once, on span exit.  Exceptions are recorded
    and re-raised. *)
val with_span : ?attrs:(unit -> (string * value) list) -> string -> (unit -> 'a) -> 'a

(** Oldest-first contents of the ring buffer. *)
val spans : unit -> span list

(** Number of spans evicted since the last {!clear}/{!set_capacity}. *)
val dropped : unit -> int

(** [(spans, dropped)] under a single lock acquisition: use this in
    exporters reading from a live multi-domain run, where calling
    {!spans} and {!dropped} separately could observe inconsistent
    pairs. *)
val snapshot : unit -> span list * int

val capacity : unit -> int

(** [set_capacity n] replaces the sink with an empty ring of size [n]. *)
val set_capacity : int -> unit

(** [clear ()] empties the sink and restarts the trace epoch. *)
val clear : unit -> unit

(** Pretty tree of the buffered spans, indented by depth. *)
val pp : Format.formatter -> unit -> unit

(** One JSON object per line, one line per span, oldest first. *)
val to_jsonl : unit -> string

val write_jsonl : string -> unit
