(** Noise-aware comparison of two performance artifacts: the engine
    behind [qdp perf diff OLD.json NEW.json] and the CI perf gate.

    Understands the four JSON shapes the repo exports and reduces
    each to flat metrics:
    - [BENCH_perf.json] — every [*_s] timing field of every group and
      kernel entry;
    - [BENCH_calib.json] — [ns_per_mac] per calibrated kernel;
    - [BENCH_obs.json] — the mean of every [*.seconds] histogram in
      the metrics snapshot;
    - [BENCH_model.json] — the fitted marginal cost of each kernel's
      seq/par path as [ns_per_mac].

    A metric pair is {e below the floor} (never flagged) when both
    sides measured less than [min_seconds] of runtime; otherwise it is
    a regression when [new/old > 1 + t] and an improvement when
    [new/old < 1 / (1 + t)], where [t] is the group's threshold
    (multiplicatively symmetric noise band). *)

type metric = {
  m_key : string;
  m_group : string;
  m_value : float;
  m_seconds : float;  (** magnitude used for the min-runtime floor *)
}

type verdict = Regression | Improvement | Within_noise | Below_floor

type cmp = {
  c_key : string;
  c_group : string;
  c_old : float;
  c_new : float;
  c_ratio : float;
  c_threshold : float;
  c_verdict : verdict;
}

type config = {
  threshold : float;  (** default relative noise band, e.g. [0.25] *)
  group_thresholds : (string * float) list;  (** per-group overrides *)
  min_seconds : float;  (** min-runtime floor *)
}

(** [{threshold = 0.25; group_thresholds = []; min_seconds = 0.005}] *)
val default_config : config

(** Metrics of a parsed artifact; auto-detects the shape.
    @raise Failure on an unrecognized shape. *)
val metrics_of_json : Json.t -> metric list

(** @raise Failure on malformed JSON or an unrecognized shape. *)
val metrics_of_string : string -> metric list

(** Reads and extracts a file.
    @raise Failure on malformed contents, [Sys_error] on IO. *)
val load : string -> metric list

type result = {
  compared : cmp list;  (** keys present on both sides, in OLD order *)
  only_old : string list;
  only_new : string list;
}

val diff : config -> old_:metric list -> new_:metric list -> result

(** Number of [Regression] verdicts — the perf gate fails when
    positive. *)
val regressions : result -> int

val pp_report : Format.formatter -> result -> unit

(** A BENCH_perf group whose parallel path measurably lost to its own
    sequential baseline — a dispatch bug (the effective-jobs clamp
    should have degraded it to the sequential path), not noise. *)
type slowdown = {
  s_group : string;
  s_sequential : float;
  s_parallel : float;
  s_ratio : float;  (** [parallel_s / sequential_s] *)
}

(** [slowdowns config j] checks a single BENCH_perf-shaped artifact:
    every group where [parallel_s > sequential_s * (1 + t)] (the
    group's threshold) and at least one side clears the [min_seconds]
    floor.  Returns [[]] on artifacts without a [groups] array. *)
val slowdowns : config -> Json.t -> slowdown list

(** [slowdowns_of_file config path] reads, parses and checks.
    @raise Failure on malformed JSON, [Sys_error] on IO. *)
val slowdowns_of_file : config -> string -> slowdown list
