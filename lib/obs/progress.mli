(** Live progress heartbeats for long grids.

    A grid opens a handle with {!start}, ticks it with {!step} as work
    units complete (from any domain), and closes it with {!finish}.
    At most one line per configured interval is emitted — to stderr by
    default — as human text or single-line JSON, with completed/total
    counts, elapsed time and an ETA, plus per-domain busy time for the
    grid when the profiler ({!Prof}) is also on.

    Inert until {!set_enabled} (the [--progress] flag): a tick on a
    disabled module is a single atomic load, and nothing is ever
    written. *)

type format = Human | Json

val on : unit -> bool
val set_enabled : bool -> unit

(** [configure ?interval_s ?format ?emit ()] sets the minimum seconds
    between heartbeats (default [1.0]; [0.] = every tick), the line
    format (default [Human]) and the line consumer (default: write to
    stderr).  Unset options keep their current value.
    @raise Invalid_argument on a negative interval. *)
val configure :
  ?interval_s:float -> ?format:format -> ?emit:(string -> unit) -> unit -> unit

type t

(** [start ?total label] opens a grid named [label] expecting [total]
    work units ([0] or omitted = unknown, no ETA). *)
val start : ?total:int -> string -> t

(** [step ?by t] marks [by] (default 1) units complete and emits a
    heartbeat when the interval has elapsed since the last one.  Safe
    to call from pool domains. *)
val step : ?by:int -> t -> unit

(** Emits a final heartbeat for [t] marked as done. *)
val finish : t -> unit
