(** Observability for the qdp protocol engines.

    {!Metrics} is a process-global registry of named counters, gauges
    and log-scale histograms with snapshot/reset and JSON + CSV
    exporters.  {!Trace} records nested wall-clock spans into a ring
    buffer with a pretty-printer and JSONL export.

    Everything is inert until {!set_enabled}[ true]: updates cost one
    branch and closures passed to the recording functions are never
    evaluated, so instrumented hot paths are unaffected in normal
    runs.

    Both sinks are safe to feed from concurrent domains (the engines
    parallelize over [Qdp_par]): counters and span ids are atomic,
    multi-field updates and the trace ring take an internal mutex, and
    span nesting is tracked per domain — a span opened on a pool
    worker is a root span of that worker, not a child of whatever the
    submitting domain had open. *)

module Metrics = Metrics
module Trace = Trace

(** Scoped profiler: section wall/GC attribution, pool busy/idle
    accounting.  Own switch ([--profile]), same zero-cost discipline. *)
module Prof = Prof

(** Live progress heartbeats for long grids ([--progress]). *)
module Progress = Progress

(** Kernel calibration sampling ([BENCH_calib.json]). *)
module Calib = Calib

(** Noise-aware comparator behind [qdp perf diff] and the CI perf
    gate. *)
module Perf_diff = Perf_diff

(** Minimal JSON emission and parsing shared by the exporters and the
    comparator. *)
module Json = Json

(** Current state of the global switch. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** [with_enabled b f] runs [f] with the switch forced to [b],
    restoring the previous state afterwards (exception-safe). *)
val with_enabled : bool -> (unit -> 'a) -> 'a
