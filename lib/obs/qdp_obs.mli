(** Observability for the qdp protocol engines.

    {!Metrics} is a process-global registry of named counters, gauges
    and log-scale histograms with snapshot/reset and JSON + CSV
    exporters.  {!Trace} records nested wall-clock spans into a ring
    buffer with a pretty-printer and JSONL export.

    Everything is inert until {!set_enabled}[ true]: updates cost one
    branch and closures passed to the recording functions are never
    evaluated, so instrumented hot paths are unaffected in normal
    runs.

    Both sinks are safe to feed from concurrent domains (the engines
    parallelize over [Qdp_par]): counters and span ids are atomic,
    multi-field updates and the trace ring take an internal mutex, and
    span nesting is tracked per domain — a span opened on a pool
    worker is a root span of that worker, not a child of whatever the
    submitting domain had open. *)

(** The one wall clock every elapsed-time measurement must read.
    {!Clock.now} is [Unix.gettimeofday] behind a monotonic clamp: a
    backwards NTP step can never produce a negative duration, a
    misfired deadline, or a deadline that hangs because its reference
    point lies in the future.  Spans, profiles, shard supervision
    ([Qdp_dist]) and execution deadlines
    ([Qdp_network.Runtime.run_turns]) all go through it. *)
module Clock : sig
  (** Seconds since the epoch, clamped to be non-decreasing across
      every domain of the process. *)
  val now : unit -> float

  (** [set_source (Some f)] swaps the underlying time source — a test
      hook for driving deadline logic with a stepped fake clock;
      [set_source None] restores [Unix.gettimeofday].  Either call
      resets the monotonic clamp, so the non-decreasing guarantee
      holds within one source, not across a swap. *)
  val set_source : (unit -> float) option -> unit
end

module Metrics = Metrics
module Trace = Trace

(** Scoped profiler: section wall/GC attribution, pool busy/idle
    accounting.  Own switch ([--profile]), same zero-cost discipline. *)
module Prof = Prof

(** Live progress heartbeats for long grids ([--progress]). *)
module Progress = Progress

(** Kernel calibration sampling ([BENCH_calib.json]). *)
module Calib = Calib

(** Noise-aware comparator behind [qdp perf diff] and the CI perf
    gate. *)
module Perf_diff = Perf_diff

(** Minimal JSON emission and parsing shared by the exporters and the
    comparator. *)
module Json = Json

(** Current state of the global switch. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** [with_enabled b f] runs [f] with the switch forced to [b],
    restoring the previous state afterwards (exception-safe). *)
val with_enabled : bool -> (unit -> 'a) -> 'a
