(* Noise-aware comparison of two performance artifacts.  Understands
   the four JSON shapes the repo exports — BENCH_perf.json (groups +
   kernels), BENCH_calib.json (per-kernel calibration),
   BENCH_obs.json (metrics snapshot with *.seconds histograms) and
   BENCH_model.json (fitted per-kernel cost model) — and
   reduces each to a flat list of (key, group, value, seconds)
   metrics.  The comparator then applies a per-group relative
   threshold and a min-runtime floor: measurements too small to time
   reliably are never flagged, and a change only counts as a
   regression/improvement when the new/old ratio leaves the
   [1/(1+t), 1+t] noise band. *)

type metric = {
  m_key : string;
  m_group : string;
  m_value : float;
  (* magnitude in seconds used for the min-runtime floor; for
     ratio-style values (ns_per_mac, histogram means) this is the
     total measured seconds behind the value *)
  m_seconds : float;
}

type verdict = Regression | Improvement | Within_noise | Below_floor

type cmp = {
  c_key : string;
  c_group : string;
  c_old : float;
  c_new : float;
  c_ratio : float;
  c_threshold : float;
  c_verdict : verdict;
}

type config = {
  threshold : float;
  group_thresholds : (string * float) list;
  min_seconds : float;
}

let default_config =
  { threshold = 0.25; group_thresholds = []; min_seconds = 0.005 }

(* --- extraction --- *)

let num_field obj name =
  match Json.member name obj with Some v -> Json.num_opt v | None -> None

let str_field obj name =
  match Json.member name obj with Some v -> Json.string_opt v | None -> None

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

(* BENCH_perf.json: {"groups":[{"group":g,"sequential_s":..,
   "parallel_s":..,"speedup":..}],"kernels":[{"kernel":k,"naive_s":..,
   "batched_s":..,...}]}.  Every *_s field becomes a metric; the
   value itself is the floor magnitude. *)
let of_perf j =
  let of_items items ~name_field ~prefix =
    List.concat_map
      (fun item ->
        match str_field item name_field with
        | None -> []
        | Some g ->
            let fields =
              match item with Json.Obj kvs -> kvs | _ -> []
            in
            List.filter_map
              (fun (k, v) ->
                match Json.num_opt v with
                | Some f when ends_with ~suffix:"_s" k ->
                    Some
                      {
                        m_key = prefix ^ g ^ "." ^ k;
                        m_group = prefix ^ g;
                        m_value = f;
                        m_seconds = f;
                      }
                | _ -> None)
              fields)
      items
  in
  let groups =
    match Json.member "groups" j with Some v -> Json.to_list v | None -> []
  in
  let kernels =
    match Json.member "kernels" j with Some v -> Json.to_list v | None -> []
  in
  of_items groups ~name_field:"group" ~prefix:""
  @ of_items kernels ~name_field:"kernel" ~prefix:"kernel."

(* BENCH_calib.json: ns_per_mac per kernel, floored on the total
   measured seconds behind it. *)
let of_calib j =
  let items =
    match Json.member "calibration" j with
    | Some v -> Json.to_list v
    | None -> []
  in
  List.filter_map
    (fun item ->
      match
        ( str_field item "kernel",
          num_field item "ns_per_mac",
          num_field item "total_seconds" )
      with
      | Some k, Some v, Some s when v > 0. ->
          Some
            {
              m_key = k ^ ".ns_per_mac";
              m_group = k;
              m_value = v;
              m_seconds = s;
            }
      | _ -> None)
    items

(* BENCH_obs.json: mean of every *.seconds histogram in the metrics
   snapshot, floored on the histogram sum. *)
let of_obs j =
  let metrics =
    match Json.member "metrics_snapshot" j with
    | Some snap -> (
        match Json.member "metrics" snap with
        | Some v -> Json.to_list v
        | None -> [])
    | None -> []
  in
  List.filter_map
    (fun item ->
      match
        ( str_field item "name",
          num_field item "count",
          num_field item "sum" )
      with
      | Some name, Some count, Some sum
        when ends_with ~suffix:".seconds" name && count > 0. ->
          Some
            {
              m_key = name ^ ".mean";
              m_group = String.sub name 0 (String.length name - 8);
              m_value = sum /. count;
              m_seconds = sum;
            }
      | _ -> None)
    metrics

(* BENCH_model.json: the fitted per-path marginal cost (b, seconds
   per MAC) of every kernel as ns_per_mac, floored on the total
   measured seconds behind the fit.  Intercepts and crossovers are
   derived quantities — diffing the slopes catches the same
   regressions without double-counting. *)
let of_model j =
  let items =
    match Json.member "cost_model" j with
    | Some v -> Json.to_list v
    | None -> []
  in
  List.concat_map
    (fun item ->
      match str_field item "kernel" with
      | None -> []
      | Some k ->
          List.filter_map
            (fun path ->
              match Json.member path item with
              | None -> None
              | Some fit -> (
                  match
                    (num_field fit "b_s_per_mac", num_field fit "total_s")
                  with
                  | Some b, Some s when b > 0. ->
                      Some
                        {
                          m_key = k ^ "." ^ path ^ ".ns_per_mac";
                          m_group = k;
                          m_value = 1e9 *. b;
                          m_seconds = s;
                        }
                  | _ -> None))
            [ "seq"; "par" ])
    items

let metrics_of_json j =
  match
    (Json.member "groups" j, Json.member "calibration" j,
     Json.member "metrics_snapshot" j, Json.member "cost_model" j)
  with
  | Some _, _, _, _ -> of_perf j
  | None, Some _, _, _ -> of_calib j
  | None, None, Some _, _ -> of_obs j
  | None, None, None, Some _ -> of_model j
  | None, None, None, None ->
      failwith
        "unrecognized performance artifact: expected one of the \
         BENCH_perf.json / BENCH_calib.json / BENCH_obs.json / \
         BENCH_model.json shapes"

let metrics_of_string s =
  match Json.parse s with
  | j -> metrics_of_json j
  | exception Json.Parse_error msg -> failwith ("JSON parse error at " ^ msg)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = metrics_of_string (read_file path)

(* --- comparison --- *)

type result = {
  compared : cmp list;
  only_old : string list;
  only_new : string list;
}

let threshold_for config group =
  match List.assoc_opt group config.group_thresholds with
  | Some t -> t
  | None -> config.threshold

let diff config ~old_ ~new_ =
  let new_tbl = Hashtbl.create 32 in
  List.iter (fun m -> Hashtbl.replace new_tbl m.m_key m) new_;
  let old_keys = Hashtbl.create 32 in
  List.iter (fun m -> Hashtbl.replace old_keys m.m_key ()) old_;
  let compared =
    List.filter_map
      (fun om ->
        match Hashtbl.find_opt new_tbl om.m_key with
        | None -> None
        | Some nm ->
            let t = threshold_for config om.m_group in
            let ratio =
              if om.m_value > 0. then nm.m_value /. om.m_value
              else if nm.m_value > 0. then infinity
              else 1.
            in
            let verdict =
              if
                om.m_seconds < config.min_seconds
                && nm.m_seconds < config.min_seconds
              then Below_floor
              else if ratio > 1. +. t then Regression
              else if ratio < 1. /. (1. +. t) then Improvement
              else Within_noise
            in
            Some
              {
                c_key = om.m_key;
                c_group = om.m_group;
                c_old = om.m_value;
                c_new = nm.m_value;
                c_ratio = ratio;
                c_threshold = t;
                c_verdict = verdict;
              })
      old_
  in
  let only_old =
    List.filter_map
      (fun m -> if Hashtbl.mem new_tbl m.m_key then None else Some m.m_key)
      old_
  in
  let only_new =
    List.filter_map
      (fun m -> if Hashtbl.mem old_keys m.m_key then None else Some m.m_key)
      new_
  in
  { compared; only_old; only_new }

let regressions r =
  List.length (List.filter (fun c -> c.c_verdict = Regression) r.compared)

(* --- parallel no-slowdown self-check --- *)

(* A BENCH_perf group where the parallel path measurably loses to the
   sequential one is a dispatch bug, not noise: with the
   effective-jobs clamp, oversubscribed or unprofitable grids must
   degrade to the sequential path, so [parallel_s] can never sit above
   [sequential_s] by more than the noise band.  This is a property of
   a single artifact (the NEW one), unlike [diff] which needs a
   baseline. *)

type slowdown = {
  s_group : string;
  s_sequential : float;
  s_parallel : float;
  s_ratio : float;
}

let slowdowns config j =
  let groups =
    match Json.member "groups" j with Some v -> Json.to_list v | None -> []
  in
  List.filter_map
    (fun item ->
      match
        ( str_field item "group",
          num_field item "sequential_s",
          num_field item "parallel_s" )
      with
      | Some g, Some seq, Some par ->
          if
            (seq >= config.min_seconds || par >= config.min_seconds)
            && par > seq *. (1. +. threshold_for config g)
          then
            Some
              {
                s_group = g;
                s_sequential = seq;
                s_parallel = par;
                s_ratio = (if seq > 0. then par /. seq else infinity);
              }
          else None
      | _ -> None)
    groups

let slowdowns_of_file config path =
  match Json.parse (read_file path) with
  | j -> slowdowns config j
  | exception Json.Parse_error msg -> failwith ("JSON parse error at " ^ msg)

let verdict_label = function
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Within_noise -> "ok"
  | Below_floor -> "below floor"

let pp_report fmt r =
  Format.fprintf fmt "%-44s %12s %12s %8s  %s@\n" "metric" "old" "new"
    "ratio" "verdict";
  List.iter
    (fun c ->
      Format.fprintf fmt "%-44s %12.6g %12.6g %8s  %s@\n" c.c_key c.c_old
        c.c_new
        (if Float.is_finite c.c_ratio then
           Printf.sprintf "%.3fx" c.c_ratio
         else "inf")
        (verdict_label c.c_verdict))
    r.compared;
  List.iter
    (fun k -> Format.fprintf fmt "%-44s only in OLD@\n" k)
    r.only_old;
  List.iter
    (fun k -> Format.fprintf fmt "%-44s only in NEW@\n" k)
    r.only_new;
  let count v =
    List.length (List.filter (fun c -> c.c_verdict = v) r.compared)
  in
  Format.fprintf fmt
    "%d compared: %d regression(s), %d improvement(s), %d within noise, %d \
     below floor@\n"
    (List.length r.compared) (count Regression) (count Improvement)
    (count Within_noise) (count Below_floor)
