(* Scoped profiler: nestable sections recording wall time and GC
   allocation deltas, aggregated per section *path* (the "/"-joined
   chain of enclosing section names on the current domain), plus
   busy/idle accounting for the Qdp_par pool domains.  The profiler
   has its own switch, independent of the metrics/trace switch, so
   [--profile] can be combined freely with [--metrics]/[--trace];
   every hook is a single atomic-load branch while disabled.

   Nesting is per domain, like Trace: a section entered inside a pool
   task roots a new tree on that worker domain.  The caller-helps
   scheduler means chunks executed by the submitting domain keep their
   full path prefix while chunks executed by workers appear as worker
   roots — both aggregate under their own path and the report shows
   the union. *)

type agg = {
  mutable calls : int;
  mutable wall_s : float;
  mutable minor_words : float;
  mutable major_words : float;
  mutable promoted_words : float;
  mutable compactions : int;
}

type dom = { mutable busy_s : float; mutable tasks : int }

let enabled_flag = Atomic.make false
let on () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

(* All of the following are guarded by [lock].  [order] keeps paths in
   first-recorded order so reports are stable run to run. *)
let table : (string, agg) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []
let domains : (int, dom) Hashtbl.t = Hashtbl.create 8
let dom_order : int list ref = ref []
let region_wall = ref 0.
let region_count = ref 0

(* Stack of enclosing section paths, innermost first; domain-local. *)
let stack_key = Domain.DLS.new_key (fun () -> ref ([] : string list))

(* Depth of nested [region] calls on this domain: only the outermost
   one contributes wall time, so nested parallel regions (an inner
   parallel_for inside a pool task) are not double-counted. *)
let region_depth_key = Domain.DLS.new_key (fun () -> ref 0)

let reset () =
  locked (fun () ->
      Hashtbl.reset table;
      order := [];
      Hashtbl.reset domains;
      dom_order := [];
      region_wall := 0.;
      region_count := 0);
  Domain.DLS.get stack_key := []

(* Called with [lock] held. *)
let agg_of path =
  match Hashtbl.find_opt table path with
  | Some a -> a
  | None ->
      let a =
        {
          calls = 0;
          wall_s = 0.;
          minor_words = 0.;
          major_words = 0.;
          promoted_words = 0.;
          compactions = 0;
        }
      in
      Hashtbl.add table path a;
      order := path :: !order;
      a

let section name f =
  if not (on ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let path =
      match !stack with [] -> name | parent :: _ -> parent ^ "/" ^ name
    in
    stack := path :: !stack;
    let g0 = Gc.quick_stat () in
    let t0 = Clock.now () in
    let finish () =
      let dt = Float.max 0. (Clock.now () -. t0) in
      let g1 = Gc.quick_stat () in
      (match !stack with
      | p :: rest when String.equal p path -> stack := rest
      | other ->
          (* an exception unwound past intermediate sections; pop down
             to below our frame rather than corrupting the stack *)
          let rec pop = function
            | p :: rest when not (String.equal p path) -> pop rest
            | _ :: rest -> rest
            | [] -> []
          in
          stack := pop other);
      locked @@ fun () ->
      let a = agg_of path in
      a.calls <- a.calls + 1;
      a.wall_s <- a.wall_s +. dt;
      a.minor_words <-
        a.minor_words +. Float.max 0. (g1.Gc.minor_words -. g0.Gc.minor_words);
      a.major_words <-
        a.major_words +. Float.max 0. (g1.Gc.major_words -. g0.Gc.major_words);
      a.promoted_words <-
        a.promoted_words
        +. Float.max 0. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
      a.compactions <-
        a.compactions + max 0 (g1.Gc.compactions - g0.Gc.compactions)
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

(* --- pool hooks (called from Qdp_par) --- *)

let task f =
  if not (on ()) then f ()
  else begin
    let t0 = Clock.now () in
    let finish () =
      let dt = Float.max 0. (Clock.now () -. t0) in
      let id = (Domain.self () :> int) in
      locked @@ fun () ->
      let d =
        match Hashtbl.find_opt domains id with
        | Some d -> d
        | None ->
            let d = { busy_s = 0.; tasks = 0 } in
            Hashtbl.add domains id d;
            dom_order := id :: !dom_order;
            d
      in
      d.busy_s <- d.busy_s +. dt;
      d.tasks <- d.tasks + 1
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let region f =
  if not (on ()) then f ()
  else begin
    let depth = Domain.DLS.get region_depth_key in
    if !depth > 0 then begin
      incr depth;
      Fun.protect ~finally:(fun () -> decr depth) f
    end
    else begin
      incr depth;
      let t0 = Clock.now () in
      Fun.protect
        ~finally:(fun () ->
          decr depth;
          let dt = Float.max 0. (Clock.now () -. t0) in
          locked (fun () ->
              region_wall := !region_wall +. dt;
              incr region_count))
        f
    end
  end

(* --- snapshots --- *)

type entry = {
  e_path : string;
  e_calls : int;
  e_wall_s : float;
  e_minor_words : float;
  e_major_words : float;
  e_promoted_words : float;
  e_compactions : int;
}

type domain_stat = { dom_id : int; dom_busy_s : float; dom_tasks : int }

let entries () =
  locked @@ fun () ->
  List.rev_map
    (fun path ->
      let a = Hashtbl.find table path in
      {
        e_path = path;
        e_calls = a.calls;
        e_wall_s = a.wall_s;
        e_minor_words = a.minor_words;
        e_major_words = a.major_words;
        e_promoted_words = a.promoted_words;
        e_compactions = a.compactions;
      })
    !order

let domain_stats () =
  locked @@ fun () ->
  List.rev_map
    (fun id ->
      let d = Hashtbl.find domains id in
      { dom_id = id; dom_busy_s = d.busy_s; dom_tasks = d.tasks })
    !dom_order

let regions () = locked (fun () -> (!region_count, !region_wall))

(* --- attribution tree --- *)

type node = {
  n_path : string;
  n_name : string;
  n_calls : int;
  n_wall_s : float;
  n_self_s : float;
  n_minor_words : float;
  n_major_words : float;
  n_promoted_words : float;
  n_compactions : int;
  n_children : node list;
}

let parent_path path =
  match String.rindex_opt path '/' with
  | None -> None
  | Some i -> Some (String.sub path 0 i)

let leaf_name path =
  match String.rindex_opt path '/' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

(* Build forests from the flat path table: a path is a child of the
   longest recorded prefix; paths whose parent was never recorded (a
   section rooted on a pool domain, or a snapshot taken while the
   parent is still open) become roots.  Self time is total minus the
   recorded time of direct children, clamped at zero because a child
   total can exceed a still-open parent's recorded total. *)
let tree () =
  let es = entries () in
  let children = Hashtbl.create 32 in
  let recorded = Hashtbl.create 32 in
  List.iter (fun e -> Hashtbl.replace recorded e.e_path ()) es;
  let roots = ref [] in
  List.iter
    (fun e ->
      match parent_path e.e_path with
      | Some p when Hashtbl.mem recorded p ->
          let prev =
            match Hashtbl.find_opt children p with Some l -> l | None -> []
          in
          Hashtbl.replace children p (e :: prev)
      | _ -> roots := e :: !roots)
    es;
  let rec build e =
    let kids =
      match Hashtbl.find_opt children e.e_path with
      | Some l -> List.rev_map build l
      | None -> []
    in
    let child_wall = List.fold_left (fun s k -> s +. k.n_wall_s) 0. kids in
    {
      n_path = e.e_path;
      n_name = leaf_name e.e_path;
      n_calls = e.e_calls;
      n_wall_s = e.e_wall_s;
      n_self_s = Float.max 0. (e.e_wall_s -. child_wall);
      n_minor_words = e.e_minor_words;
      n_major_words = e.e_major_words;
      n_promoted_words = e.e_promoted_words;
      n_compactions = e.e_compactions;
      n_children = kids;
    }
  in
  List.rev_map build !roots

(* --- flat profile --- *)

type row = {
  r_name : string;
  r_calls : int;
  r_wall_s : float;
  r_self_s : float;
  r_minor_words : float;
  r_major_words : float;
}

(* Aggregate tree nodes by section name (last path segment) across
   every path they appear under, sorted by self time. *)
let flat () =
  let acc : (string, row ref) Hashtbl.t = Hashtbl.create 32 in
  let names = ref [] in
  let rec visit nd =
    (match Hashtbl.find_opt acc nd.n_name with
    | Some r ->
        r :=
          {
            !r with
            r_calls = !r.r_calls + nd.n_calls;
            r_wall_s = !r.r_wall_s +. nd.n_wall_s;
            r_self_s = !r.r_self_s +. nd.n_self_s;
            r_minor_words = !r.r_minor_words +. nd.n_minor_words;
            r_major_words = !r.r_major_words +. nd.n_major_words;
          }
    | None ->
        Hashtbl.add acc nd.n_name
          (ref
             {
               r_name = nd.n_name;
               r_calls = nd.n_calls;
               r_wall_s = nd.n_wall_s;
               r_self_s = nd.n_self_s;
               r_minor_words = nd.n_minor_words;
               r_major_words = nd.n_major_words;
             });
        names := nd.n_name :: !names);
    List.iter visit nd.n_children
  in
  List.iter visit (tree ());
  let rows = List.rev_map (fun n -> !(Hashtbl.find acc n)) !names in
  List.sort (fun a b -> Float.compare b.r_self_s a.r_self_s) rows

(* --- reports --- *)

let pp_words fmt w =
  if w >= 1e9 then Format.fprintf fmt "%.2fGw" (w /. 1e9)
  else if w >= 1e6 then Format.fprintf fmt "%.2fMw" (w /. 1e6)
  else if w >= 1e3 then Format.fprintf fmt "%.1fkw" (w /. 1e3)
  else Format.fprintf fmt "%.0fw" w

let pp_duration fmt d =
  if d >= 1. then Format.fprintf fmt "%.3fs" d
  else if d >= 1e-3 then Format.fprintf fmt "%.3fms" (d *. 1e3)
  else Format.fprintf fmt "%.1fus" (d *. 1e6)

let pp_domains fmt () =
  let stats = domain_stats () in
  let nregions, wall = regions () in
  if stats = [] then
    Format.fprintf fmt "domains: no parallel regions recorded (jobs = 1?)@\n"
  else begin
    Format.fprintf fmt "domains (%d parallel region%s, region wall %a):@\n"
      nregions
      (if nregions = 1 then "" else "s")
      pp_duration wall;
    List.iter
      (fun d ->
        let idle = Float.max 0. (wall -. d.dom_busy_s) in
        let util = if wall > 0. then 100. *. d.dom_busy_s /. wall else 0. in
        Format.fprintf fmt "  domain %-3d busy %a (%.1f%%)  idle %a  %d tasks@\n"
          d.dom_id pp_duration d.dom_busy_s util pp_duration idle d.dom_tasks)
      stats
  end

let pp_flat fmt () =
  let rows = flat () in
  Format.fprintf fmt "flat profile (by self time):@\n";
  Format.fprintf fmt "  %-28s %10s %12s %12s %10s@\n" "section" "calls"
    "total" "self" "alloc";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-28s %10d %12s %12s %10s@\n" r.r_name r.r_calls
        (Format.asprintf "%a" pp_duration r.r_wall_s)
        (Format.asprintf "%a" pp_duration r.r_self_s)
        (Format.asprintf "%a" pp_words (r.r_minor_words +. r.r_major_words)))
    rows

let pp_tree fmt () =
  Format.fprintf fmt "attribution tree:@\n";
  let rec walk depth nd =
    Format.fprintf fmt "  %s%-*s %6d calls  %s  self %s  alloc %s@\n"
      (String.make (2 * depth) ' ')
      (max 1 (30 - (2 * depth)))
      nd.n_name nd.n_calls
      (Format.asprintf "%a" pp_duration nd.n_wall_s)
      (Format.asprintf "%a" pp_duration nd.n_self_s)
      (Format.asprintf "%a" pp_words (nd.n_minor_words +. nd.n_major_words));
    List.iter (walk (depth + 1)) nd.n_children
  in
  List.iter (walk 0) (tree ())

let report fmt () =
  let es = entries () in
  if es = [] then Format.fprintf fmt "profile: no sections recorded@\n"
  else begin
    Format.fprintf fmt "profile: %d section path%s@\n" (List.length es)
      (if List.length es = 1 then "" else "s");
    pp_flat fmt ();
    pp_tree fmt ();
    pp_domains fmt ()
  end

let to_json () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"sections\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"path\":%s,\"calls\":%d,\"wall_s\":%s,\"minor_words\":%s,\"major_words\":%s,\"promoted_words\":%s,\"compactions\":%d}"
           (Json.str e.e_path) e.e_calls (Json.float e.e_wall_s)
           (Json.float e.e_minor_words)
           (Json.float e.e_major_words)
           (Json.float e.e_promoted_words)
           e.e_compactions))
    (entries ());
  Buffer.add_string buf "],\"domains\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"id\":%d,\"busy_s\":%s,\"tasks\":%d}" d.dom_id
           (Json.float d.dom_busy_s) d.dom_tasks))
    (domain_stats ());
  let nregions, wall = regions () in
  Buffer.add_string buf
    (Printf.sprintf "],\"regions\":{\"count\":%d,\"wall_s\":%s}}" nregions
       (Json.float wall));
  Buffer.contents buf
