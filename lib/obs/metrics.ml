(* Process-global metrics registry: named counters, gauges and
   log-scale histograms, safe to update from any domain now that the
   engines fan work out over the Qdp_par pool.  Counters are a single
   atomic fetch-and-add; gauge and histogram updates (multi-field) and
   registry registration hold [lock].  Every update is still guarded
   by the global {!Control} switch first, so disabled runs pay one
   branch (an atomic load) per call site and never touch the lock. *)

type counter = { count : int Atomic.t }
type gauge = { mutable value : float; mutable touched : bool }

(* Log-scale histogram: bucket 0 holds non-positive observations,
   bucket [e - min_exp + 1] holds values in [base^e, base^(e+1)).
   Exponents are clamped into [min_exp, max_exp], which with base 2
   spans ~1e-18 .. ~1e12 — wide enough for both acceptance
   probabilities and kernel timings in seconds. *)
let min_exp = -60
let max_exp = 40

type histogram = {
  base : float;
  inv_log_base : float;
  buckets : int array;
  mutable sum : float;
  mutable observations : int;
  mutable vmin : float;
  mutable vmax : float;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

(* registration order, for stable export *)
let order : string list ref = ref []

(* Guards [registry]/[order] and every multi-field mutation (gauges,
   histograms, snapshots, reset). *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let register name mk describe =
  locked @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some m -> (
      match describe m with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Qdp_obs.Metrics: %S already registered with another kind" name))
  | None ->
      let m, v = mk () in
      Hashtbl.add registry name m;
      order := name :: !order;
      v

let counter name =
  register name
    (fun () ->
      let c = { count = Atomic.make 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () ->
      let g = { value = 0.; touched = false } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram ?(base = 2.) name =
  if base <= 1. then invalid_arg "Qdp_obs.Metrics.histogram: base > 1";
  register name
    (fun () ->
      let h =
        {
          base;
          inv_log_base = 1. /. Float.log base;
          buckets = Array.make (max_exp - min_exp + 2) 0;
          sum = 0.;
          observations = 0;
          vmin = infinity;
          vmax = neg_infinity;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let incr ?(by = 1) c =
  if Control.on () then ignore (Atomic.fetch_and_add c.count by)

let set g v =
  if Control.on () then
    locked @@ fun () ->
    g.value <- v;
    g.touched <- true

let set_max g v =
  if Control.on () then
    locked @@ fun () ->
    if (not g.touched) || v > g.value then begin
      g.value <- v;
      g.touched <- true
    end

let bucket_index h v =
  if v <= 0. then 0
  else begin
    let e = int_of_float (Float.floor (Float.log v *. h.inv_log_base)) in
    let e = if e < min_exp then min_exp else if e > max_exp then max_exp else e in
    e - min_exp + 1
  end

let observe h v =
  if Control.on () then begin
    let i = bucket_index h v in
    locked @@ fun () ->
    h.buckets.(i) <- h.buckets.(i) + 1;
    h.sum <- h.sum +. v;
    h.observations <- h.observations + 1;
    if v < h.vmin then h.vmin <- v;
    if v > h.vmax then h.vmax <- v
  end

(* [time h f] runs [f ()] and records its wall-clock duration in
   seconds into [h]; when observability is off it is exactly [f ()]. *)
let time h f =
  if not (Control.on ()) then f ()
  else begin
    let t0 = Clock.now () in
    match f () with
    | v ->
        observe h (Clock.now () -. t0);
        v
    | exception e ->
        observe h (Clock.now () -. t0);
        raise e
  end

(* --- snapshots --- *)

type hview = {
  h_base : float;
  h_count : int;
  h_sum : float;
  h_min : float;  (** [nan] when empty *)
  h_max : float;  (** [nan] when empty *)
  h_buckets : (int * int) list;
      (** (exponent, count) for non-empty buckets; exponent
          [min_exp - 1] is the "non-positive values" bucket *)
}

type view = Counter_v of int | Gauge_v of float | Histogram_v of hview

type snapshot = (string * view) list

let view_of = function
  | Counter c -> Counter_v (Atomic.get c.count)
  | Gauge g -> Gauge_v g.value
  | Histogram h ->
      let buckets = ref [] in
      for i = Array.length h.buckets - 1 downto 0 do
        if h.buckets.(i) > 0 then
          buckets := (i + min_exp - 1, h.buckets.(i)) :: !buckets
      done;
      Histogram_v
        {
          h_base = h.base;
          h_count = h.observations;
          h_sum = h.sum;
          h_min = (if h.observations = 0 then Float.nan else h.vmin);
          h_max = (if h.observations = 0 then Float.nan else h.vmax);
          h_buckets = !buckets;
        }

let snapshot () =
  locked @@ fun () ->
  List.rev_map (fun name -> (name, view_of (Hashtbl.find registry name))) !order

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> Atomic.set c.count 0
      | Gauge g ->
          g.value <- 0.;
          g.touched <- false
      | Histogram h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.sum <- 0.;
          h.observations <- 0;
          h.vmin <- infinity;
          h.vmax <- neg_infinity)
    registry

let names s = List.map fst s
let find s name = List.assoc_opt name s

(* --- exporters --- *)

let json_of_view name v =
  match v with
  | Counter_v c ->
      Printf.sprintf "{\"name\":%s,\"kind\":\"counter\",\"value\":%d}"
        (Json.str name) c
  | Gauge_v g ->
      Printf.sprintf "{\"name\":%s,\"kind\":\"gauge\",\"value\":%s}"
        (Json.str name) (Json.float g)
  | Histogram_v h ->
      let buckets =
        String.concat ","
          (List.map (fun (e, c) -> Printf.sprintf "[%d,%d]" e c) h.h_buckets)
      in
      Printf.sprintf
        "{\"name\":%s,\"kind\":\"histogram\",\"base\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"buckets\":[%s]}"
        (Json.str name) (Json.float h.h_base) h.h_count (Json.float h.h_sum)
        (Json.float h.h_min) (Json.float h.h_max) buckets

let to_json s =
  "{\"metrics\":[\n"
  ^ String.concat ",\n" (List.map (fun (n, v) -> json_of_view n v) s)
  ^ "\n]}\n"

let csv_float f = if Float.is_finite f then Printf.sprintf "%.17g" f else ""

let to_csv s =
  let row (name, v) =
    match v with
    | Counter_v c -> Printf.sprintf "%s,counter,%d,,,," name c
    | Gauge_v g -> Printf.sprintf "%s,gauge,%s,,,," name (csv_float g)
    | Histogram_v h ->
        Printf.sprintf "%s,histogram,,%d,%s,%s,%s" name h.h_count
          (csv_float h.h_sum) (csv_float h.h_min) (csv_float h.h_max)
  in
  String.concat "\n" ("name,kind,value,count,sum,min,max" :: List.map row s)
  ^ "\n"

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_json path s = write_file path (to_json s)
let write_csv path s = write_file path (to_csv s)
