(* A column batch stores [count] vectors of dimension [dim] row-major
   by vector index: entry (g, c) lives at [g * count + c], so one "row"
   holds entry [g] of every column contiguously.  Linear maps applied
   to all columns therefore move whole rows (blits and fused
   multiply-adds over [count] floats), and the Gram kernel streams the
   batch once per output tile instead of once per output entry. *)

type t = { dim : int; count : int; re : float array; im : float array }

let create dim count =
  if dim < 0 || count <= 0 then invalid_arg "Batch.create: bad shape";
  { dim; count; re = Array.make (dim * count) 0.; im = Array.make (dim * count) 0. }

let dim b = b.dim
let count b = b.count
let raw_re b = b.re
let raw_im b = b.im

let get b g c =
  { Complex.re = b.re.((g * b.count) + c); im = b.im.((g * b.count) + c) }

let set b g c z =
  b.re.((g * b.count) + c) <- z.Complex.re;
  b.im.((g * b.count) + c) <- z.Complex.im

let init dim count f =
  let b = create dim count in
  for g = 0 to dim - 1 do
    for c = 0 to count - 1 do
      set b g c (f g c)
    done
  done;
  b

let copy b = { b with re = Array.copy b.re; im = Array.copy b.im }

let of_cols cols =
  let n = Array.length cols in
  if n = 0 then invalid_arg "Batch.of_cols: empty";
  let d = Vec.dim cols.(0) in
  Array.iter
    (fun v ->
      if Vec.dim v <> d then invalid_arg "Batch.of_cols: ragged columns")
    cols;
  let b = create d n in
  for c = 0 to n - 1 do
    let vr = Vec.raw_re cols.(c) and vi = Vec.raw_im cols.(c) in
    for g = 0 to d - 1 do
      b.re.((g * n) + c) <- vr.(g);
      b.im.((g * n) + c) <- vi.(g)
    done
  done;
  b

let col b c =
  if c < 0 || c >= b.count then invalid_arg "Batch.col: column out of range";
  let v = Vec.create b.dim in
  let vr = Vec.raw_re v and vi = Vec.raw_im v in
  for g = 0 to b.dim - 1 do
    vr.(g) <- b.re.((g * b.count) + c);
    vi.(g) <- b.im.((g * b.count) + c)
  done;
  v

let scale_real_inplace alpha b =
  for k = 0 to Array.length b.re - 1 do
    b.re.(k) <- alpha *. b.re.(k);
    b.im.(k) <- alpha *. b.im.(k)
  done

let equal ?(eps = 1e-9) a b =
  a.dim = b.dim && a.count = b.count
  &&
  let ok = ref true in
  for k = 0 to Array.length a.re - 1 do
    if
      Float.abs (a.re.(k) -. b.re.(k)) > eps
      || Float.abs (a.im.(k) -. b.im.(k)) > eps
    then ok := false
  done;
  !ok

let apply_into m ~src ~dst =
  if Mat.cols m <> src.dim || Mat.rows m <> dst.dim then
    invalid_arg "Batch.apply_into: shape mismatch";
  if src.count <> dst.count then
    invalid_arg "Batch.apply_into: column count mismatch";
  Qdp_obs.Prof.section "batch.apply_into" @@ fun () ->
  Qdp_obs.Calib.sample ~kernel:"batch.apply_into"
    ~macs:
      (float_of_int (Mat.rows m) *. float_of_int (Mat.cols m)
      *. float_of_int src.count)
  @@ fun () ->
  let n = src.count in
  let mr = Mat.raw_re m and mi = Mat.raw_im m in
  let sr = src.re and si = src.im in
  let dr = dst.re and di = dst.im in
  let cols = Mat.cols m in
  for i = 0 to dst.dim - 1 do
    let drow = i * n in
    Array.fill dr drow n 0.;
    Array.fill di drow n 0.;
    let mrow = i * cols in
    for j = 0 to cols - 1 do
      let ar = mr.(mrow + j) and ai = mi.(mrow + j) in
      if ar <> 0. || ai <> 0. then begin
        let srow = j * n in
        for c = 0 to n - 1 do
          let br = sr.(srow + c) and bi = si.(srow + c) in
          dr.(drow + c) <- dr.(drow + c) +. (ar *. br) -. (ai *. bi);
          di.(drow + c) <- di.(drow + c) +. (ar *. bi) +. (ai *. br)
        done
      end
    done
  done

let is_real b =
  let ok = ref true in
  let im = b.im in
  for k = 0 to Array.length im - 1 do
    if im.(k) <> 0. then ok := false
  done;
  !ok

(* Tile width of the Gram kernel: each task owns [gram_tile] output
   rows and streams the whole batch once, so the per-cell accumulation
   runs over the vector index in ascending order whatever the tile
   owner — bit-identical at every job count. *)
let gram_tile = 32

let gram a =
  let n = a.count and d = a.dim in
  Qdp_obs.Prof.section "batch.gram" @@ fun () ->
  (* computed upper triangle only: d MACs per (i, j <= i) cell *)
  Qdp_obs.Calib.sample ~kernel:"batch.gram"
    ~macs:(float_of_int d *. float_of_int n *. float_of_int (n + 1) /. 2.)
  @@ fun () ->
  let g = Mat.create n n in
  let gr = Mat.raw_re g and gi = Mat.raw_im g in
  let ar = a.re and ai = a.im in
  let real = is_real a in
  let tiles = (n + gram_tile - 1) / gram_tile in
  let tile t =
    let i0 = t * gram_tile and i1 = min n ((t + 1) * gram_tile) - 1 in
    if real then
      for v = 0 to d - 1 do
        let row = v * n in
        for i = i0 to i1 do
          let x = ar.(row + i) in
          if x <> 0. then begin
            let out = i * n in
            for j = i to n - 1 do
              gr.(out + j) <- gr.(out + j) +. (x *. ar.(row + j))
            done
          end
        done
      done
    else
      for v = 0 to d - 1 do
        let row = v * n in
        for i = i0 to i1 do
          let xr = ar.(row + i) and xi = ai.(row + i) in
          if xr <> 0. || xi <> 0. then begin
            let out = i * n in
            for j = i to n - 1 do
              let yr = ar.(row + j) and yi = ai.(row + j) in
              (* conj x * y *)
              gr.(out + j) <- gr.(out + j) +. (xr *. yr) +. (xi *. yi);
              gi.(out + j) <- gi.(out + j) +. (xr *. yi) -. (xi *. yr)
            done
          end
        done
      done
  in
  if Mat.par_profitable ~macs:(d * n * n) then Qdp_par.parallel_for 0 tiles tile
  else
    for t = 0 to tiles - 1 do
      tile t
    done;
  (* Hermitian mirror: the strict lower triangle is the conjugate of
     the computed upper triangle. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      gr.((j * n) + i) <- gr.((i * n) + j);
      gi.((j * n) + i) <- -.gi.((i * n) + j)
    done
  done;
  g
