(* A column batch stores [count] vectors of dimension [dim] row-major
   by vector index: entry (g, c) lives at [g * count + c], so one "row"
   holds entry [g] of every column contiguously.  Linear maps applied
   to all columns therefore move whole rows (blits and fused
   multiply-adds over [count] floats), and the Gram kernel streams the
   batch once per output tile instead of once per output entry.

   Storage is unboxed Bigarray float64 (shared [Mat.farr] type); the
   hot kernels use unchecked accesses with bounds derived from the
   shapes that sized the buffers, and keep the exact per-cell
   accumulation order of the original float-array code. *)

type t = { dim : int; count : int; re : Mat.farr; im : Mat.farr }

(* Monomorphic access primitives (see the note in mat.ml: an alias of
   the polymorphic external boxes every float). *)
external uget : Mat.farr -> int -> float = "%caml_ba_unsafe_ref_1"
external uset : Mat.farr -> int -> float -> unit = "%caml_ba_unsafe_set_1"

let fcreate n : Mat.farr =
  let a = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0.;
  a

let create dim count =
  if dim < 0 || count <= 0 then invalid_arg "Batch.create: bad shape";
  { dim; count; re = fcreate (dim * count); im = fcreate (dim * count) }

let dim b = b.dim
let count b = b.count
let raw_re b = b.re
let raw_im b = b.im

let get b g c =
  { Complex.re = b.re.{(g * b.count) + c}; im = b.im.{(g * b.count) + c} }

let set b g c z =
  b.re.{(g * b.count) + c} <- z.Complex.re;
  b.im.{(g * b.count) + c} <- z.Complex.im

let init dim count f =
  let b = create dim count in
  for g = 0 to dim - 1 do
    for c = 0 to count - 1 do
      set b g c (f g c)
    done
  done;
  b

let copy b =
  let c = create b.dim b.count in
  Bigarray.Array1.blit b.re c.re;
  Bigarray.Array1.blit b.im c.im;
  c

let blit_row src sg dst dg =
  let n = src.count in
  if n <> dst.count then invalid_arg "Batch.blit_row: column count mismatch";
  let sbase = sg * n and dbase = dg * n in
  for c = 0 to n - 1 do
    uset dst.re (dbase + c) (uget src.re (sbase + c));
    uset dst.im (dbase + c) (uget src.im (sbase + c))
  done

let accumulate_row src sg dst dg =
  let n = src.count in
  if n <> dst.count then invalid_arg "Batch.accumulate_row: column count mismatch";
  let sbase = sg * n and dbase = dg * n in
  for c = 0 to n - 1 do
    uset dst.re (dbase + c) (uget dst.re (dbase + c) +. uget src.re (sbase + c));
    uset dst.im (dbase + c) (uget dst.im (dbase + c) +. uget src.im (sbase + c))
  done

let of_cols cols =
  let n = Array.length cols in
  if n = 0 then invalid_arg "Batch.of_cols: empty";
  let d = Vec.dim cols.(0) in
  Array.iter
    (fun v ->
      if Vec.dim v <> d then invalid_arg "Batch.of_cols: ragged columns")
    cols;
  let b = create d n in
  for c = 0 to n - 1 do
    let vr = Vec.raw_re cols.(c) and vi = Vec.raw_im cols.(c) in
    for g = 0 to d - 1 do
      b.re.{(g * n) + c} <- vr.(g);
      b.im.{(g * n) + c} <- vi.(g)
    done
  done;
  b

let col b c =
  if c < 0 || c >= b.count then invalid_arg "Batch.col: column out of range";
  let v = Vec.create b.dim in
  let vr = Vec.raw_re v and vi = Vec.raw_im v in
  for g = 0 to b.dim - 1 do
    vr.(g) <- b.re.{(g * b.count) + c};
    vi.(g) <- b.im.{(g * b.count) + c}
  done;
  v

let scale_real_inplace alpha b =
  for k = 0 to (b.dim * b.count) - 1 do
    uset b.re k (alpha *. uget b.re k);
    uset b.im k (alpha *. uget b.im k)
  done

let equal ?(eps = 1e-9) a b =
  a.dim = b.dim && a.count = b.count
  &&
  let ok = ref true in
  for k = 0 to (a.dim * a.count) - 1 do
    if
      Float.abs (uget a.re k -. uget b.re k) > eps
      || Float.abs (uget a.im k -. uget b.im k) > eps
    then ok := false
  done;
  !ok

let fill_row_zero b g =
  let base = g * b.count in
  for c = 0 to b.count - 1 do
    uset b.re (base + c) 0.;
    uset b.im (base + c) 0.
  done

let apply_into m ~src ~dst =
  if Mat.cols m <> src.dim || Mat.rows m <> dst.dim then
    invalid_arg "Batch.apply_into: shape mismatch";
  if src.count <> dst.count then
    invalid_arg "Batch.apply_into: column count mismatch";
  let macs = Qdp_model.macs3 (Mat.rows m) (Mat.cols m) src.count in
  let par =
    Qdp_model.decide ~kernel:"batch.apply_into" ~macs
      ~default:(Mat.par_profitable ~macs)
  in
  Qdp_obs.Prof.section "batch.apply_into" @@ fun () ->
  Qdp_obs.Calib.sample ~kernel:"batch.apply_into" ~macs ~path:(Mat.path_tag par)
  @@ fun () ->
  let n = src.count in
  let mr = Mat.raw_re m and mi = Mat.raw_im m in
  let sr = src.re and si = src.im in
  let dr = dst.re and di = dst.im in
  let cols = Mat.cols m in
  (* Each output row is written by exactly one task and accumulated in
     ascending [j] — identical floats on either dispatch path. *)
  let row i =
    let drow = i * n in
    fill_row_zero dst i;
    let mrow = i * cols in
    for j = 0 to cols - 1 do
      let ar = uget mr (mrow + j) and ai = uget mi (mrow + j) in
      if ar <> 0. || ai <> 0. then begin
        let srow = j * n in
        for c = 0 to n - 1 do
          let br = uget sr (srow + c) and bi = uget si (srow + c) in
          uset dr (drow + c) (uget dr (drow + c) +. (ar *. br) -. (ai *. bi));
          uset di (drow + c) (uget di (drow + c) +. (ar *. bi) +. (ai *. br))
        done
      end
    done
  in
  if par then Qdp_par.parallel_for 0 dst.dim row
  else
    for i = 0 to dst.dim - 1 do
      row i
    done

let is_real b =
  let ok = ref true in
  let im = b.im in
  for k = 0 to (b.dim * b.count) - 1 do
    if uget im k <> 0. then ok := false
  done;
  !ok

(* Tile width of the Gram kernel: each task owns [gram_tile] output
   rows and streams the whole batch once, so the per-cell accumulation
   runs over the vector index in ascending order whatever the tile
   owner — bit-identical at every job count. *)
let gram_tile = 32

let gram a =
  let n = a.count and d = a.dim in
  (* computed upper triangle only: d MACs per (i, j <= i) cell *)
  let macs = Qdp_model.macs2 d n *. float_of_int (n + 1) /. 2. in
  let par =
    Qdp_model.decide ~kernel:"batch.gram" ~macs
      ~default:(Mat.par_profitable ~macs:(Qdp_model.macs3 d n n))
  in
  Qdp_obs.Prof.section "batch.gram" @@ fun () ->
  Qdp_obs.Calib.sample ~kernel:"batch.gram" ~macs ~path:(Mat.path_tag par)
  @@ fun () ->
  let g = Mat.create n n in
  let gr = Mat.raw_re g and gi = Mat.raw_im g in
  let ar = a.re and ai = a.im in
  let real = is_real a in
  let tiles = (n + gram_tile - 1) / gram_tile in
  (* Register-blocked micro-kernel: two output rows per pass over a
     batch row, halving the loads of the streamed [y] values.  A cell
     (i, j) is still updated at most once per vector index [v], in
     ascending [v], with the same zero-skip per (v, row) as the scalar
     code — the floats cannot differ, only the memory traffic does. *)
  let tile t =
    let i0 = t * gram_tile and i1 = min n ((t + 1) * gram_tile) - 1 in
    if real then
      for v = 0 to d - 1 do
        let row = v * n in
        let i = ref i0 in
        while !i < i1 do
          let ia = !i and ib = !i + 1 in
          let xa = uget ar (row + ia) and xb = uget ar (row + ib) in
          let outa = ia * n and outb = ib * n in
          if xa <> 0. then begin
            if xb <> 0. then begin
              uset gr (outa + ia) (uget gr (outa + ia) +. (xa *. xa));
              for j = ib to n - 1 do
                let y = uget ar (row + j) in
                uset gr (outa + j) (uget gr (outa + j) +. (xa *. y));
                uset gr (outb + j) (uget gr (outb + j) +. (xb *. y))
              done
            end
            else
              for j = ia to n - 1 do
                uset gr (outa + j) (uget gr (outa + j) +. (xa *. uget ar (row + j)))
              done
          end
          else if xb <> 0. then
            for j = ib to n - 1 do
              uset gr (outb + j) (uget gr (outb + j) +. (xb *. uget ar (row + j)))
            done;
          i := !i + 2
        done;
        if !i = i1 then begin
          let x = uget ar (row + i1) in
          if x <> 0. then begin
            let out = i1 * n in
            for j = i1 to n - 1 do
              uset gr (out + j) (uget gr (out + j) +. (x *. uget ar (row + j)))
            done
          end
        end
      done
    else
      for v = 0 to d - 1 do
        let row = v * n in
        for i = i0 to i1 do
          let xr = uget ar (row + i) and xi = uget ai (row + i) in
          if xr <> 0. || xi <> 0. then begin
            let out = i * n in
            for j = i to n - 1 do
              let yr = uget ar (row + j) and yi = uget ai (row + j) in
              (* conj x * y *)
              uset gr (out + j) (uget gr (out + j) +. (xr *. yr) +. (xi *. yi));
              uset gi (out + j) (uget gi (out + j) +. (xr *. yi) -. (xi *. yr))
            done
          end
        done
      done
  in
  if par then Qdp_par.parallel_for 0 tiles tile
  else
    for t = 0 to tiles - 1 do
      tile t
    done;
  (* Hermitian mirror: the strict lower triangle is the conjugate of
     the computed upper triangle. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      gr.{(j * n) + i} <- gr.{(i * n) + j};
      gi.{(j * n) + i} <- -.gi.{(i * n) + j}
    done
  done;
  g
