(* Dense complex matrices on unboxed Bigarray storage (float64,
   C layout): one contiguous buffer per component, no per-element
   boxing and no bounds checks in the GEMM-shaped kernels (the loop
   bounds below are derived from the dimensions that size the
   buffers).  Every kernel keeps the per-cell accumulation order of
   the original float-array implementation — ascending contraction
   index, zero-skip per entry — so results are bit-identical to the
   pre-Bigarray code and across every dispatch path. *)

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Monomorphic redeclarations of the Bigarray access primitives: an
   alias of the polymorphic external would go through a generic
   closure and box every float, an order of magnitude per load.
   Pinned to [farr] these compile to direct unboxed moves. *)
external uget : farr -> int -> float = "%caml_ba_unsafe_ref_1"
external uset : farr -> int -> float -> unit = "%caml_ba_unsafe_set_1"

let fcreate n : farr =
  let a = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout n in
  Bigarray.Array1.fill a 0.;
  a

type t = { rows : int; cols : int; re : farr; im : farr }

let create rows cols =
  { rows; cols; re = fcreate (rows * cols); im = fcreate (rows * cols) }

let rows m = m.rows
let cols m = m.cols

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.{(i * n) + i} <- 1.
  done;
  m

let get m i j = { Complex.re = m.re.{(i * m.cols) + j}; im = m.im.{(i * m.cols) + j} }

let set m i j z =
  m.re.{(i * m.cols) + j} <- z.Complex.re;
  m.im.{(i * m.cols) + j} <- z.Complex.im

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m =
  let c = create m.rows m.cols in
  Bigarray.Array1.blit m.re c.re;
  Bigarray.Array1.blit m.im c.im;
  c

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: shape mismatch";
  let m = create a.rows a.cols in
  for k = 0 to (a.rows * a.cols) - 1 do
    uset m.re k (uget a.re k +. uget b.re k);
    uset m.im k (uget a.im k +. uget b.im k)
  done;
  m

let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.sub: shape mismatch";
  let m = create a.rows a.cols in
  for k = 0 to (a.rows * a.cols) - 1 do
    uset m.re k (uget a.re k -. uget b.re k);
    uset m.im k (uget a.im k -. uget b.im k)
  done;
  m

let scale z a =
  let zr = z.Complex.re and zi = z.Complex.im in
  let m = create a.rows a.cols in
  for k = 0 to (a.rows * a.cols) - 1 do
    let ar = uget a.re k and ai = uget a.im k in
    uset m.re k ((zr *. ar) -. (zi *. ai));
    uset m.im k ((zr *. ai) +. (zi *. ar))
  done;
  m

let par_mac_cutoff = 1 lsl 16

let par_profitable ~macs =
  macs >= float_of_int (par_mac_cutoff * Qdp_par.effective_jobs ())

(* The Calib path tag records what actually executes: a parallel
   decision on a one-core clamp still runs sequentially. *)
let path_tag par = if par && Qdp_par.effective_jobs () > 1 then "par" else "seq"

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: shape mismatch";
  let macs = Qdp_model.macs3 a.rows a.cols b.cols in
  let par = Qdp_model.decide ~kernel:"mat.mul" ~macs ~default:(par_profitable ~macs) in
  Qdp_obs.Calib.sample ~kernel:"mat.mul" ~macs ~path:(path_tag par) @@ fun () ->
  let m = create a.rows b.cols in
  let are = a.re and aim = a.im and bre = b.re and bim = b.im in
  let mre = m.re and mim = m.im in
  let acols = a.cols and bcols = b.cols in
  let row i =
    let abase = i * acols and obase = i * bcols in
    for k = 0 to acols - 1 do
      let ar = uget are (abase + k) and ai = uget aim (abase + k) in
      if ar <> 0. || ai <> 0. then begin
        let bbase = k * bcols in
        for j = 0 to bcols - 1 do
          let br = uget bre (bbase + j) and bi = uget bim (bbase + j) in
          let idx = obase + j in
          uset mre idx (uget mre idx +. (ar *. br) -. (ai *. bi));
          uset mim idx (uget mim idx +. (ar *. bi) +. (ai *. br))
        done
      end
    done
  in
  if par then Qdp_par.parallel_for 0 a.rows row
  else
    for i = 0 to a.rows - 1 do
      row i
    done;
  m

let apply_into m v ~dst =
  if m.cols <> Vec.dim v then invalid_arg "Mat.apply_into: shape mismatch";
  if m.rows <> Vec.dim dst then invalid_arg "Mat.apply_into: dst dimension";
  let vr = Vec.raw_re v and vi = Vec.raw_im v in
  let outr = Vec.raw_re dst and outi = Vec.raw_im dst in
  let mre = m.re and mim = m.im in
  for i = 0 to m.rows - 1 do
    let sr = ref 0. and si = ref 0. in
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      let ar = uget mre (base + j) and ai = uget mim (base + j) in
      sr := !sr +. (ar *. Array.unsafe_get vr j) -. (ai *. Array.unsafe_get vi j);
      si := !si +. (ar *. Array.unsafe_get vi j) +. (ai *. Array.unsafe_get vr j)
    done;
    outr.(i) <- !sr;
    outi.(i) <- !si
  done

let apply m v =
  let out = Vec.create m.rows in
  apply_into m v ~dst:out;
  out

let adjoint m = init m.cols m.rows (fun i j -> Cx.conj (get m j i))
let transpose m = init m.cols m.rows (fun i j -> get m j i)
let conj m = init m.rows m.cols (fun i j -> Cx.conj (get m i j))

let trace m =
  if m.rows <> m.cols then invalid_arg "Mat.trace: not square";
  let sr = ref 0. and si = ref 0. in
  for i = 0 to m.rows - 1 do
    sr := !sr +. m.re.{(i * m.cols) + i};
    si := !si +. m.im.{(i * m.cols) + i}
  done;
  { Complex.re = !sr; im = !si }

let tensor a b =
  (* Float MACs: four dimensions multiplied in native ints can wrap
     negative for huge requests and silently defeat the guard. *)
  let macs = Qdp_model.macs4 a.rows a.cols b.rows b.cols in
  let par =
    Qdp_model.decide ~kernel:"mat.tensor" ~macs ~default:(par_profitable ~macs)
  in
  Qdp_obs.Calib.sample ~kernel:"mat.tensor" ~macs ~path:(path_tag par)
  @@ fun () ->
  let m = create (a.rows * b.rows) (a.cols * b.cols) in
  let are = a.re and aim = a.im and bre = b.re and bim = b.im in
  let mre = m.re and mim = m.im in
  let mcols = m.cols in
  let row_block ia =
    for ja = 0 to a.cols - 1 do
      let ar = uget are ((ia * a.cols) + ja) and ai = uget aim ((ia * a.cols) + ja) in
      if ar <> 0. || ai <> 0. then
        for ib = 0 to b.rows - 1 do
          for jb = 0 to b.cols - 1 do
            let br = uget bre ((ib * b.cols) + jb) and bi = uget bim ((ib * b.cols) + jb) in
            let i = (ia * b.rows) + ib and j = (ja * b.cols) + jb in
            let idx = (i * mcols) + j in
            uset mre idx ((ar *. br) -. (ai *. bi));
            uset mim idx ((ar *. bi) +. (ai *. br))
          done
        done
    done
  in
  if par then Qdp_par.parallel_for 0 a.rows row_block
  else
    for ia = 0 to a.rows - 1 do
      row_block ia
    done;
  m

let tensor_list = function
  | [] -> invalid_arg "Mat.tensor_list: empty list"
  | m :: ms -> List.fold_left tensor m ms

let outer a b =
  init (Vec.dim a) (Vec.dim b) (fun i j -> Cx.mul (Vec.get a i) (Cx.conj (Vec.get b j)))

let of_vec v = outer v v

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to (a.rows * a.cols) - 1 do
    if
      Float.abs (uget a.re k -. uget b.re k) > eps
      || Float.abs (uget a.im k -. uget b.im k) > eps
    then ok := false
  done;
  !ok

let is_hermitian ?(eps = 1e-9) m = m.rows = m.cols && equal ~eps m (adjoint m)

let is_unitary ?(eps = 1e-9) m =
  m.rows = m.cols && equal ~eps (mul m (adjoint m)) (identity m.rows)

let frobenius_norm m =
  let s = ref 0. in
  for k = 0 to (m.rows * m.cols) - 1 do
    let re = uget m.re k and im = uget m.im k in
    s := !s +. (re *. re) +. (im *. im)
  done;
  Float.sqrt !s

let pp fmt m =
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@[[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt ",@ ";
      Cx.pp fmt (get m i j)
    done;
    Format.fprintf fmt "]@]@\n"
  done

(* Partial quadratic forms on one tensor factor of a bilinear form
   G on C^{big * sub}: both run as two GEMM-shaped passes (contract the
   right index with v, then the left index with conj v) over the raw
   storage, so they cost O(n^2 * f) instead of the naive
   O(n^2 * f^2) boxed-complex quadruple loop (n = rows, f = the
   contracted factor's dimension). *)

(* out[i, i'] = sum_{j, j'} conj v_j * G[(i sub + j), (i' sub + j')] * v_j' *)
let quad_minor g v =
  let n = g.rows in
  if g.cols <> n then invalid_arg "Mat.quad_minor: not square";
  let sub = Vec.dim v in
  if sub <= 0 || n mod sub <> 0 then invalid_arg "Mat.quad_minor: bad factor";
  let big = n / sub in
  let vr = Vec.raw_re v and vi = Vec.raw_im v in
  let gre = g.re and gim = g.im in
  (* t[r, i'] = sum_j' G[r, i' sub + j'] * v_j' *)
  let tre = Array.make (n * big) 0. and tim = Array.make (n * big) 0. in
  for r = 0 to n - 1 do
    let grow = r * n in
    for i' = 0 to big - 1 do
      let base = grow + (i' * sub) in
      let sr = ref 0. and si = ref 0. in
      for j' = 0 to sub - 1 do
        let ar = uget gre (base + j') and ai = uget gim (base + j') in
        sr := !sr +. (ar *. vr.(j')) -. (ai *. vi.(j'));
        si := !si +. (ar *. vi.(j')) +. (ai *. vr.(j'))
      done;
      tre.((r * big) + i') <- !sr;
      tim.((r * big) + i') <- !si
    done
  done;
  (* out[i, i'] = sum_j conj v_j * t[(i sub + j), i'] *)
  let out = create big big in
  for i = 0 to big - 1 do
    for i' = 0 to big - 1 do
      let sr = ref 0. and si = ref 0. in
      for j = 0 to sub - 1 do
        let k = ((((i * sub) + j) * big) + i') in
        let br = tre.(k) and bi = tim.(k) in
        sr := !sr +. (vr.(j) *. br) +. (vi.(j) *. bi);
        si := !si +. (vr.(j) *. bi) -. (vi.(j) *. br)
      done;
      out.re.{(i * big) + i'} <- !sr;
      out.im.{(i * big) + i'} <- !si
    done
  done;
  out

(* out[j, j'] = sum_{i, i'} conj u_i * G[(i sub + j), (i' sub + j')] * u_i' *)
let quad_major g u =
  let n = g.rows in
  if g.cols <> n then invalid_arg "Mat.quad_major: not square";
  let big = Vec.dim u in
  if big <= 0 || n mod big <> 0 then invalid_arg "Mat.quad_major: bad factor";
  let sub = n / big in
  let ur = Vec.raw_re u and ui = Vec.raw_im u in
  let gre = g.re and gim = g.im in
  (* t[r, j'] = sum_i' G[r, i' sub + j'] * u_i' *)
  let tre = Array.make (n * sub) 0. and tim = Array.make (n * sub) 0. in
  for r = 0 to n - 1 do
    let grow = r * n in
    for j' = 0 to sub - 1 do
      let sr = ref 0. and si = ref 0. in
      for i' = 0 to big - 1 do
        let k = grow + (i' * sub) + j' in
        let ar = uget gre k and ai = uget gim k in
        sr := !sr +. (ar *. ur.(i')) -. (ai *. ui.(i'));
        si := !si +. (ar *. ui.(i')) +. (ai *. ur.(i'))
      done;
      tre.((r * sub) + j') <- !sr;
      tim.((r * sub) + j') <- !si
    done
  done;
  (* out[j, j'] = sum_i conj u_i * t[(i sub + j), j'] *)
  let out = create sub sub in
  for j = 0 to sub - 1 do
    for j' = 0 to sub - 1 do
      let sr = ref 0. and si = ref 0. in
      for i = 0 to big - 1 do
        let k = ((((i * sub) + j) * sub) + j') in
        let br = tre.(k) and bi = tim.(k) in
        sr := !sr +. (ur.(i) *. br) +. (ui.(i) *. bi);
        si := !si +. (ur.(i) *. bi) -. (ui.(i) *. br)
      done;
      out.re.{(j * sub) + j'} <- !sr;
      out.im.{(j * sub) + j'} <- !si
    done
  done;
  out

let raw_re m = m.re
let raw_im m = m.im

let swap_gate d =
  init (d * d) (d * d) (fun i j ->
      let i1 = i / d and i2 = i mod d in
      let j1 = j / d and j2 = j mod d in
      if i1 = j2 && i2 = j1 then Cx.one else Cx.zero)
