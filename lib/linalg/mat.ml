type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  { rows; cols; re = Array.make (rows * cols) 0.; im = Array.make (rows * cols) 0. }

let rows m = m.rows
let cols m = m.cols

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.((i * n) + i) <- 1.
  done;
  m

let get m i j = { Complex.re = m.re.((i * m.cols) + j); im = m.im.((i * m.cols) + j) }

let set m i j z =
  m.re.((i * m.cols) + j) <- z.Complex.re;
  m.im.((i * m.cols) + j) <- z.Complex.im

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: shape mismatch";
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- a.re.(k) +. b.re.(k);
    m.im.(k) <- a.im.(k) +. b.im.(k)
  done;
  m

let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.sub: shape mismatch";
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- a.re.(k) -. b.re.(k);
    m.im.(k) <- a.im.(k) -. b.im.(k)
  done;
  m

let scale z a =
  let zr = z.Complex.re and zi = z.Complex.im in
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- (zr *. a.re.(k)) -. (zi *. a.im.(k));
    m.im.(k) <- (zr *. a.im.(k)) +. (zi *. a.re.(k))
  done;
  m

let par_mac_cutoff = 1 lsl 16

let par_profitable ~macs =
  macs >= par_mac_cutoff * Qdp_par.effective_jobs ()

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: shape mismatch";
  Qdp_obs.Calib.sample ~kernel:"mat.mul"
    ~macs:
      (float_of_int a.rows *. float_of_int a.cols *. float_of_int b.cols)
  @@ fun () ->
  let m = create a.rows b.cols in
  let row i =
    for k = 0 to a.cols - 1 do
      let ar = a.re.((i * a.cols) + k) and ai = a.im.((i * a.cols) + k) in
      if ar <> 0. || ai <> 0. then
        for j = 0 to b.cols - 1 do
          let br = b.re.((k * b.cols) + j) and bi = b.im.((k * b.cols) + j) in
          let idx = (i * b.cols) + j in
          m.re.(idx) <- m.re.(idx) +. (ar *. br) -. (ai *. bi);
          m.im.(idx) <- m.im.(idx) +. (ar *. bi) +. (ai *. br)
        done
    done
  in
  if par_profitable ~macs:(a.rows * a.cols * b.cols) then
    Qdp_par.parallel_for 0 a.rows row
  else
    for i = 0 to a.rows - 1 do
      row i
    done;
  m

let apply_into m v ~dst =
  if m.cols <> Vec.dim v then invalid_arg "Mat.apply_into: shape mismatch";
  if m.rows <> Vec.dim dst then invalid_arg "Mat.apply_into: dst dimension";
  let vr = Vec.raw_re v and vi = Vec.raw_im v in
  let outr = Vec.raw_re dst and outi = Vec.raw_im dst in
  for i = 0 to m.rows - 1 do
    let sr = ref 0. and si = ref 0. in
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      let ar = m.re.(base + j) and ai = m.im.(base + j) in
      sr := !sr +. (ar *. vr.(j)) -. (ai *. vi.(j));
      si := !si +. (ar *. vi.(j)) +. (ai *. vr.(j))
    done;
    outr.(i) <- !sr;
    outi.(i) <- !si
  done

let apply m v =
  let out = Vec.create m.rows in
  apply_into m v ~dst:out;
  out

let adjoint m = init m.cols m.rows (fun i j -> Cx.conj (get m j i))
let transpose m = init m.cols m.rows (fun i j -> get m j i)
let conj m = init m.rows m.cols (fun i j -> Cx.conj (get m i j))

let trace m =
  if m.rows <> m.cols then invalid_arg "Mat.trace: not square";
  let sr = ref 0. and si = ref 0. in
  for i = 0 to m.rows - 1 do
    sr := !sr +. m.re.((i * m.cols) + i);
    si := !si +. m.im.((i * m.cols) + i)
  done;
  { Complex.re = !sr; im = !si }

let tensor a b =
  let m = create (a.rows * b.rows) (a.cols * b.cols) in
  let row_block ia =
    for ja = 0 to a.cols - 1 do
      let ar = a.re.((ia * a.cols) + ja) and ai = a.im.((ia * a.cols) + ja) in
      if ar <> 0. || ai <> 0. then
        for ib = 0 to b.rows - 1 do
          for jb = 0 to b.cols - 1 do
            let br = b.re.((ib * b.cols) + jb) and bi = b.im.((ib * b.cols) + jb) in
            let i = (ia * b.rows) + ib and j = (ja * b.cols) + jb in
            let idx = (i * m.cols) + j in
            m.re.(idx) <- (ar *. br) -. (ai *. bi);
            m.im.(idx) <- (ar *. bi) +. (ai *. br)
          done
        done
    done
  in
  if par_profitable ~macs:(a.rows * a.cols * b.rows * b.cols) then
    Qdp_par.parallel_for 0 a.rows row_block
  else
    for ia = 0 to a.rows - 1 do
      row_block ia
    done;
  m

let tensor_list = function
  | [] -> invalid_arg "Mat.tensor_list: empty list"
  | m :: ms -> List.fold_left tensor m ms

let outer a b =
  init (Vec.dim a) (Vec.dim b) (fun i j -> Cx.mul (Vec.get a i) (Cx.conj (Vec.get b j)))

let of_vec v = outer v v

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length a.re - 1 do
    if Float.abs (a.re.(k) -. b.re.(k)) > eps || Float.abs (a.im.(k) -. b.im.(k)) > eps
    then ok := false
  done;
  !ok

let is_hermitian ?(eps = 1e-9) m = m.rows = m.cols && equal ~eps m (adjoint m)

let is_unitary ?(eps = 1e-9) m =
  m.rows = m.cols && equal ~eps (mul m (adjoint m)) (identity m.rows)

let frobenius_norm m =
  let s = ref 0. in
  for k = 0 to Array.length m.re - 1 do
    s := !s +. (m.re.(k) *. m.re.(k)) +. (m.im.(k) *. m.im.(k))
  done;
  Float.sqrt !s

let pp fmt m =
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@[[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt ",@ ";
      Cx.pp fmt (get m i j)
    done;
    Format.fprintf fmt "]@]@\n"
  done

(* Partial quadratic forms on one tensor factor of a bilinear form
   G on C^{big * sub}: both run as two GEMM-shaped passes (contract the
   right index with v, then the left index with conj v) over the raw
   float arrays, so they cost O(n^2 * f) instead of the naive
   O(n^2 * f^2) boxed-complex quadruple loop (n = rows, f = the
   contracted factor's dimension). *)

(* out[i, i'] = sum_{j, j'} conj v_j * G[(i sub + j), (i' sub + j')] * v_j' *)
let quad_minor g v =
  let n = g.rows in
  if g.cols <> n then invalid_arg "Mat.quad_minor: not square";
  let sub = Vec.dim v in
  if sub <= 0 || n mod sub <> 0 then invalid_arg "Mat.quad_minor: bad factor";
  let big = n / sub in
  let vr = Vec.raw_re v and vi = Vec.raw_im v in
  (* t[r, i'] = sum_j' G[r, i' sub + j'] * v_j' *)
  let tre = Array.make (n * big) 0. and tim = Array.make (n * big) 0. in
  for r = 0 to n - 1 do
    let grow = r * n in
    for i' = 0 to big - 1 do
      let base = grow + (i' * sub) in
      let sr = ref 0. and si = ref 0. in
      for j' = 0 to sub - 1 do
        let ar = g.re.(base + j') and ai = g.im.(base + j') in
        sr := !sr +. (ar *. vr.(j')) -. (ai *. vi.(j'));
        si := !si +. (ar *. vi.(j')) +. (ai *. vr.(j'))
      done;
      tre.((r * big) + i') <- !sr;
      tim.((r * big) + i') <- !si
    done
  done;
  (* out[i, i'] = sum_j conj v_j * t[(i sub + j), i'] *)
  let out = create big big in
  for i = 0 to big - 1 do
    for i' = 0 to big - 1 do
      let sr = ref 0. and si = ref 0. in
      for j = 0 to sub - 1 do
        let k = ((((i * sub) + j) * big) + i') in
        let br = tre.(k) and bi = tim.(k) in
        sr := !sr +. (vr.(j) *. br) +. (vi.(j) *. bi);
        si := !si +. (vr.(j) *. bi) -. (vi.(j) *. br)
      done;
      out.re.((i * big) + i') <- !sr;
      out.im.((i * big) + i') <- !si
    done
  done;
  out

(* out[j, j'] = sum_{i, i'} conj u_i * G[(i sub + j), (i' sub + j')] * u_i' *)
let quad_major g u =
  let n = g.rows in
  if g.cols <> n then invalid_arg "Mat.quad_major: not square";
  let big = Vec.dim u in
  if big <= 0 || n mod big <> 0 then invalid_arg "Mat.quad_major: bad factor";
  let sub = n / big in
  let ur = Vec.raw_re u and ui = Vec.raw_im u in
  (* t[r, j'] = sum_i' G[r, i' sub + j'] * u_i' *)
  let tre = Array.make (n * sub) 0. and tim = Array.make (n * sub) 0. in
  for r = 0 to n - 1 do
    let grow = r * n in
    for j' = 0 to sub - 1 do
      let sr = ref 0. and si = ref 0. in
      for i' = 0 to big - 1 do
        let k = grow + (i' * sub) + j' in
        let ar = g.re.(k) and ai = g.im.(k) in
        sr := !sr +. (ar *. ur.(i')) -. (ai *. ui.(i'));
        si := !si +. (ar *. ui.(i')) +. (ai *. ur.(i'))
      done;
      tre.((r * sub) + j') <- !sr;
      tim.((r * sub) + j') <- !si
    done
  done;
  (* out[j, j'] = sum_i conj u_i * t[(i sub + j), j'] *)
  let out = create sub sub in
  for j = 0 to sub - 1 do
    for j' = 0 to sub - 1 do
      let sr = ref 0. and si = ref 0. in
      for i = 0 to big - 1 do
        let k = ((((i * sub) + j) * sub) + j') in
        let br = tre.(k) and bi = tim.(k) in
        sr := !sr +. (ur.(i) *. br) +. (ui.(i) *. bi);
        si := !si +. (ur.(i) *. bi) -. (ui.(i) *. br)
      done;
      out.re.((j * sub) + j') <- !sr;
      out.im.((j * sub) + j') <- !si
    done
  done;
  out

let raw_re m = m.re
let raw_im m = m.im

let swap_gate d =
  init (d * d) (d * d) (fun i j ->
      let i1 = i / d and i2 = i mod d in
      let j1 = j / d and j2 = j mod d in
      if i1 = j2 && i2 = j1 then Cx.one else Cx.zero)
