type t = { rows : int; cols : int; re : float array; im : float array }

let create rows cols =
  { rows; cols; re = Array.make (rows * cols) 0.; im = Array.make (rows * cols) 0. }

let rows m = m.rows
let cols m = m.cols

let identity n =
  let m = create n n in
  for i = 0 to n - 1 do
    m.re.((i * n) + i) <- 1.
  done;
  m

let get m i j = { Complex.re = m.re.((i * m.cols) + j); im = m.im.((i * m.cols) + j) }

let set m i j z =
  m.re.((i * m.cols) + j) <- z.Complex.re;
  m.im.((i * m.cols) + j) <- z.Complex.im

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      set m i j (f i j)
    done
  done;
  m

let copy m = { m with re = Array.copy m.re; im = Array.copy m.im }

let add a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.add: shape mismatch";
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- a.re.(k) +. b.re.(k);
    m.im.(k) <- a.im.(k) +. b.im.(k)
  done;
  m

let sub a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.sub: shape mismatch";
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- a.re.(k) -. b.re.(k);
    m.im.(k) <- a.im.(k) -. b.im.(k)
  done;
  m

let scale z a =
  let zr = z.Complex.re and zi = z.Complex.im in
  let m = create a.rows a.cols in
  for k = 0 to Array.length a.re - 1 do
    m.re.(k) <- (zr *. a.re.(k)) -. (zi *. a.im.(k));
    m.im.(k) <- (zr *. a.im.(k)) +. (zi *. a.re.(k))
  done;
  m

(* Dense kernels go row-parallel past this many scalar
   multiply-accumulates: below it the pool's scheduling overhead beats
   the arithmetic.  Each outer index owns a disjoint slice of the
   result and the per-cell accumulation order is unchanged, so the
   floats are bit-identical at any job count. *)
let par_cutoff = 1 lsl 16

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: shape mismatch";
  let m = create a.rows b.cols in
  let row i =
    for k = 0 to a.cols - 1 do
      let ar = a.re.((i * a.cols) + k) and ai = a.im.((i * a.cols) + k) in
      if ar <> 0. || ai <> 0. then
        for j = 0 to b.cols - 1 do
          let br = b.re.((k * b.cols) + j) and bi = b.im.((k * b.cols) + j) in
          let idx = (i * b.cols) + j in
          m.re.(idx) <- m.re.(idx) +. (ar *. br) -. (ai *. bi);
          m.im.(idx) <- m.im.(idx) +. (ar *. bi) +. (ai *. br)
        done
    done
  in
  if a.rows * a.cols * b.cols >= par_cutoff then
    Qdp_par.parallel_for 0 a.rows row
  else
    for i = 0 to a.rows - 1 do
      row i
    done;
  m

let apply m v =
  if m.cols <> Vec.dim v then invalid_arg "Mat.apply: shape mismatch";
  let vr = Vec.raw_re v and vi = Vec.raw_im v in
  let out = Vec.create m.rows in
  let outr = Vec.raw_re out and outi = Vec.raw_im out in
  for i = 0 to m.rows - 1 do
    let sr = ref 0. and si = ref 0. in
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      let ar = m.re.(base + j) and ai = m.im.(base + j) in
      sr := !sr +. (ar *. vr.(j)) -. (ai *. vi.(j));
      si := !si +. (ar *. vi.(j)) +. (ai *. vr.(j))
    done;
    outr.(i) <- !sr;
    outi.(i) <- !si
  done;
  out

let adjoint m = init m.cols m.rows (fun i j -> Cx.conj (get m j i))
let transpose m = init m.cols m.rows (fun i j -> get m j i)
let conj m = init m.rows m.cols (fun i j -> Cx.conj (get m i j))

let trace m =
  if m.rows <> m.cols then invalid_arg "Mat.trace: not square";
  let sr = ref 0. and si = ref 0. in
  for i = 0 to m.rows - 1 do
    sr := !sr +. m.re.((i * m.cols) + i);
    si := !si +. m.im.((i * m.cols) + i)
  done;
  { Complex.re = !sr; im = !si }

let tensor a b =
  let m = create (a.rows * b.rows) (a.cols * b.cols) in
  let row_block ia =
    for ja = 0 to a.cols - 1 do
      let ar = a.re.((ia * a.cols) + ja) and ai = a.im.((ia * a.cols) + ja) in
      if ar <> 0. || ai <> 0. then
        for ib = 0 to b.rows - 1 do
          for jb = 0 to b.cols - 1 do
            let br = b.re.((ib * b.cols) + jb) and bi = b.im.((ib * b.cols) + jb) in
            let i = (ia * b.rows) + ib and j = (ja * b.cols) + jb in
            let idx = (i * m.cols) + j in
            m.re.(idx) <- (ar *. br) -. (ai *. bi);
            m.im.(idx) <- (ar *. bi) +. (ai *. br)
          done
        done
    done
  in
  if a.rows * a.cols * b.rows * b.cols >= par_cutoff then
    Qdp_par.parallel_for 0 a.rows row_block
  else
    for ia = 0 to a.rows - 1 do
      row_block ia
    done;
  m

let tensor_list = function
  | [] -> invalid_arg "Mat.tensor_list: empty list"
  | m :: ms -> List.fold_left tensor m ms

let outer a b =
  init (Vec.dim a) (Vec.dim b) (fun i j -> Cx.mul (Vec.get a i) (Cx.conj (Vec.get b j)))

let of_vec v = outer v v

let equal ?(eps = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for k = 0 to Array.length a.re - 1 do
    if Float.abs (a.re.(k) -. b.re.(k)) > eps || Float.abs (a.im.(k) -. b.im.(k)) > eps
    then ok := false
  done;
  !ok

let is_hermitian ?(eps = 1e-9) m = m.rows = m.cols && equal ~eps m (adjoint m)

let is_unitary ?(eps = 1e-9) m =
  m.rows = m.cols && equal ~eps (mul m (adjoint m)) (identity m.rows)

let frobenius_norm m =
  let s = ref 0. in
  for k = 0 to Array.length m.re - 1 do
    s := !s +. (m.re.(k) *. m.re.(k)) +. (m.im.(k) *. m.im.(k))
  done;
  Float.sqrt !s

let pp fmt m =
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "@[[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf fmt ",@ ";
      Cx.pp fmt (get m i j)
    done;
    Format.fprintf fmt "]@]@\n"
  done

let swap_gate d =
  init (d * d) (d * d) (fun i j ->
      let i1 = i / d and i2 = i mod d in
      let j1 = j / d and j2 = j mod d in
      if i1 = j2 && i2 = j1 then Cx.one else Cx.zero)
