(* Cyclic Jacobi eigensolver.  The working representation keeps the
   matrix [a] (mutated toward diagonal form) and the accumulated
   rotation matrix [v] with eigenvectors as rows of [v] at the end. *)

let off_diagonal_norm a n =
  let s = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      s := !s +. (2. *. a.(i).(j) *. a.(i).(j))
    done
  done;
  Float.sqrt !s

let jacobi_rotate a v n p q =
  let apq = a.(p).(q) in
  if Float.abs apq > 0. then begin
    let theta = (a.(q).(q) -. a.(p).(p)) /. (2. *. apq) in
    let t =
      let sign = if theta >= 0. then 1. else -1. in
      sign /. (Float.abs theta +. Float.sqrt ((theta *. theta) +. 1.))
    in
    let c = 1. /. Float.sqrt ((t *. t) +. 1.) in
    let s = t *. c in
    let tau = s /. (1. +. c) in
    let app = a.(p).(p) and aqq = a.(q).(q) in
    a.(p).(p) <- app -. (t *. apq);
    a.(q).(q) <- aqq +. (t *. apq);
    a.(p).(q) <- 0.;
    a.(q).(p) <- 0.;
    for k = 0 to n - 1 do
      if k <> p && k <> q then begin
        let akp = a.(k).(p) and akq = a.(k).(q) in
        a.(k).(p) <- akp -. (s *. (akq +. (tau *. akp)));
        a.(p).(k) <- a.(k).(p);
        a.(k).(q) <- akq +. (s *. (akp -. (tau *. akq)));
        a.(q).(k) <- a.(k).(q)
      end
    done;
    for k = 0 to n - 1 do
      let vpk = v.(p).(k) and vqk = v.(q).(k) in
      v.(p).(k) <- vpk -. (s *. (vqk +. (tau *. vpk)));
      v.(q).(k) <- vqk +. (s *. (vpk -. (tau *. vqk)))
    done
  end

let symmetric_seconds = Qdp_obs.Metrics.histogram "kernel.eig_symmetric.seconds"
let hermitian_seconds = Qdp_obs.Metrics.histogram "kernel.eig_hermitian.seconds"

let symmetric a0 =
  Qdp_obs.Metrics.time symmetric_seconds @@ fun () ->
  let n = Array.length a0 in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Eig.symmetric: not square")
    a0;
  let a = Array.map Array.copy a0 in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.)) in
  let tol = 1e-13 *. Float.max 1. (off_diagonal_norm a n) in
  let max_sweeps = 100 in
  let sweep = ref 0 in
  while off_diagonal_norm a n > tol && !sweep < max_sweeps do
    incr sweep;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        jacobi_rotate a v n p q
      done
    done
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare a.(i).(i) a.(j).(j)) order;
  let evals = Array.map (fun i -> a.(i).(i)) order in
  let evecs = Array.map (fun i -> Array.copy v.(i)) order in
  (evals, evecs)

(* Hermitian H = A + iB embeds in the real symmetric [[A, -B]; [B, A]];
   every eigenvalue of H appears twice, with real eigenvectors (u; v)
   and (-v; u) both mapping to the complex eigenvector u + iv.  We
   recover an orthonormal complex basis by greedy Gram-Schmidt over the
   embedded eigenvectors in spectral order. *)
let hermitian m =
  Qdp_obs.Metrics.time hermitian_seconds @@ fun () ->
  let n = Mat.rows m in
  if n <> Mat.cols m then invalid_arg "Eig.hermitian: not square";
  let big =
    Array.init (2 * n) (fun i ->
        Array.init (2 * n) (fun j ->
            let z i' j' = Mat.get m i' j' in
            if i < n && j < n then (z i j).Complex.re
            else if i < n then -.(z i (j - n)).Complex.im
            else if j < n then (z (i - n) j).Complex.im
            else (z (i - n) (j - n)).Complex.re))
  in
  let evals2, evecs2 = symmetric big in
  let accepted = ref [] in
  let accepted_vals = ref [] in
  let count = ref 0 in
  let k = ref 0 in
  while !count < n && !k < 2 * n do
    let row = evecs2.(!k) in
    let cand = Vec.init n (fun j -> { Complex.re = row.(j); im = row.(n + j) }) in
    let resid = Vec.copy cand in
    List.iter
      (fun u ->
        let c = Vec.dot u resid in
        Vec.axpy ~alpha:(Cx.neg c) u resid)
      !accepted;
    if Vec.norm resid > 1e-7 then begin
      accepted := !accepted @ [ Vec.normalize resid ];
      accepted_vals := !accepted_vals @ [ evals2.(!k) ];
      incr count
    end;
    incr k
  done;
  if !count < n then failwith "Eig.hermitian: failed to extract a full eigenbasis";
  let evals = Array.of_list !accepted_vals in
  let vecs = Array.of_list !accepted in
  let v = Mat.init n n (fun i j -> Vec.get vecs.(j) i) in
  (evals, v)

let eigenvalues_hermitian m = fst (hermitian m)

let func_hermitian f m =
  let evals, v = hermitian m in
  let n = Mat.rows m in
  let d =
    Mat.init n n (fun i j -> if i = j then Cx.re (f evals.(i)) else Cx.zero)
  in
  Mat.mul (Mat.mul v d) (Mat.adjoint v)

let sqrt_psd m = func_hermitian (fun x -> Float.sqrt (Float.max 0. x)) m
