(** Column batches: [count] complex vectors of dimension [dim] stored
    together, row-major by vector index (entry [(g, c)] of the batch is
    entry [g] of column [c] and lives next to the other columns' entry
    [g]).

    The layout is chosen for the simulator's batched pipelines: a
    linear map applied to every column at once moves contiguous rows
    ([Array.blit] gathers, fused multiply-adds over [count] floats),
    and the Gram kernel {!gram} streams the batch once per output tile
    with the result tile hot in cache, instead of re-reading two full
    vectors per output entry. *)

type t

(** [create dim count] is the all-zero batch of [count] columns of
    dimension [dim].
    @raise Invalid_argument on negative [dim] or non-positive
    [count]. *)
val create : int -> int -> t

(** [dim b] / [count b] are the column dimension and the number of
    columns. *)
val dim : t -> int

val count : t -> int

(** [get b g c] / [set b g c z] access entry [g] of column [c]. *)
val get : t -> int -> int -> Cx.t

val set : t -> int -> int -> Cx.t -> unit

(** [init dim count f] builds the batch with entry [(g, c)] equal to
    [f g c]. *)
val init : int -> int -> (int -> int -> Cx.t) -> t

(** [copy b] is a fresh batch equal to [b]. *)
val copy : t -> t

(** [of_cols vs] packs an array of equal-dimension vectors as columns.
    @raise Invalid_argument on an empty array or ragged dimensions. *)
val of_cols : Vec.t array -> t

(** [col b c] extracts column [c] as a fresh vector. *)
val col : t -> int -> Vec.t

(** [scale_real_inplace alpha b] multiplies every entry by the real
    scalar [alpha], in place. *)
val scale_real_inplace : float -> t -> unit

(** [equal ?eps a b] holds when shapes match and entries agree within
    [eps] (default [1e-9]). *)
val equal : ?eps:float -> t -> t -> bool

(** [blit_row src g dst g'] copies row [g] of [src] (entry [g] of
    every column) over row [g'] of [dst]; [accumulate_row] adds it
    instead.  The allocation-free primitives behind the batched
    simulator's index remaps and fused symmetrizer.
    @raise Invalid_argument on column-count mismatch. *)
val blit_row : t -> int -> t -> int -> unit

val accumulate_row : t -> int -> t -> int -> unit

(** [apply_into m ~src ~dst] overwrites [dst] with [m] applied to every
    column of [src] — a GEMM over the batch that allocates nothing, so
    pipelines can ping-pong between two reusable buffers.  [src] and
    [dst] must be distinct batches.  Dispatches sequential or
    row-parallel via the {!Qdp_model} cost model (static cutoff
    fallback); each output row has a single writer and a fixed
    accumulation order, so the floats are identical either way.
    @raise Invalid_argument on shape or column-count mismatch. *)
val apply_into : Mat.t -> src:t -> dst:t -> unit

(** [is_real b] holds when every imaginary part is exactly [0.] — the
    common case for fingerprint-derived pipelines, where {!gram} takes
    a 4x cheaper all-real path. *)
val is_real : t -> bool

(** [gram a] is the Hermitian Gram matrix [a^dagger a]: entry [(i, j)]
    equals [Vec.dot (col a i) (col a j)].  Only the upper triangle is
    accumulated (half the multiply-accumulates) and mirrored; the
    accumulation per entry runs over the vector index in ascending
    order, and parallel tiles own disjoint output rows, so the result
    is bit-identical at every [--jobs] value.  Dispatch is decided by
    the {!Qdp_model} cost model when one is installed, else by the
    static [Mat.par_mac_cutoff] fallback. *)
val gram : t -> Mat.t

(** Direct access to the underlying storage (entry [(g, c)] at
    [g * count + c]).  Mutating these mutates the batch. *)
val raw_re : t -> Mat.farr

val raw_im : t -> Mat.farr
