(** Dense complex matrices, row-major, on unboxed [Bigarray] storage
    (float64, C layout).

    These back the density-operator side of the quantum simulator:
    partial traces, operator algebra, projectors, and the distance
    measures in {!Qdp_quantum.Distance} are all computed on values of
    this type. *)

(** The storage type shared by {!Mat} and {!Batch}: one contiguous
    unboxed float64 buffer per complex component. *)
type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

(** [create r c] is the [r x c] zero matrix. *)
val create : int -> int -> t

(** [rows m] / [cols m] are the dimensions. *)
val rows : t -> int

val cols : t -> int

(** [identity n] is the [n x n] identity. *)
val identity : int -> t

(** [init r c f] builds the matrix with entry [(i, j)] equal to
    [f i j]. *)
val init : int -> int -> (int -> int -> Cx.t) -> t

(** [get m i j] / [set m i j z] access entry [(i, j)]. *)
val get : t -> int -> int -> Cx.t

val set : t -> int -> int -> Cx.t -> unit

(** [copy m] is a fresh matrix equal to [m]. *)
val copy : t -> t

(** [add], [sub] are entrywise; [scale z m] multiplies by a scalar. *)
val add : t -> t -> t

val sub : t -> t -> t
val scale : Cx.t -> t -> t

(** Static parallelism threshold for the dense kernels, in scalar
    multiply-accumulates: a kernel whose MAC count meets the cutoff
    goes row-parallel on the [Qdp_par] pool, below it the pool's
    scheduling overhead beats the arithmetic and it stays on the
    calling domain.  This constant (2{^16}) is the deterministic
    {e fallback}: when a {!Qdp_model} cost model is installed, each
    dispatch site asks the model's fitted per-kernel crossover
    instead.  Parallel slices own disjoint output rows and keep the
    per-cell accumulation order, so the floats are bit-identical at
    any job count either side of the cutoff. *)
val par_mac_cutoff : int

(** [par_profitable ~macs] is the static fallback decision for a
    dense kernel of [macs] (float, overflow-safe) multiply-accumulates:
    true when every {e effective} worker ([Qdp_par.effective_jobs])
    would get at least {!par_mac_cutoff} MACs of arithmetic.  A grid
    too small to amortize fan-out over the actual pool stays
    sequential — same floats either way. *)
val par_profitable : macs:float -> bool

(** [path_tag par] is the {!Qdp_obs.Calib} path label for a dispatch
    decision: ["par"] only when the decision is parallel {e and} the
    effective pool has more than one domain (a clamped pool runs the
    sequential loop whatever was decided). *)
val path_tag : bool -> string

(** [mul a b] is the matrix product. *)
val mul : t -> t -> t

(** [apply m v] is the matrix-vector product [m v]. *)
val apply : t -> Vec.t -> Vec.t

(** [apply_into m v ~dst] overwrites [dst] with [m v] without
    allocating — the hot-loop form of {!apply} ([v] and [dst] must be
    distinct vectors).
    @raise Invalid_argument on dimension mismatch. *)
val apply_into : t -> Vec.t -> dst:Vec.t -> unit

(** [adjoint m] is the conjugate transpose. *)
val adjoint : t -> t

(** [transpose m] is the plain transpose. *)
val transpose : t -> t

(** [conj m] is the entrywise conjugate. *)
val conj : t -> t

(** [trace m] is the sum of diagonal entries (square matrices). *)
val trace : t -> Cx.t

(** [tensor a b] is the Kronecker product. *)
val tensor : t -> t -> t

(** [tensor_list ms] folds {!tensor} over a non-empty list. *)
val tensor_list : t list -> t

(** [outer a b] is [|a><b|]: entry [(i, j)] equals [a_i * conj b_j]. *)
val outer : Vec.t -> Vec.t -> t

(** [of_vec v] is the rank-one projector [|v><v|] for a unit vector, or
    more generally [|v><v|] without normalization. *)
val of_vec : Vec.t -> t

(** [is_hermitian ?eps m] checks [m = m^dagger] entrywise. *)
val is_hermitian : ?eps:float -> t -> bool

(** [is_unitary ?eps m] checks [m m^dagger = I] entrywise. *)
val is_unitary : ?eps:float -> t -> bool

(** [equal ?eps a b] is entrywise comparison within [eps]. *)
val equal : ?eps:float -> t -> t -> bool

(** [frobenius_norm m] is [sqrt (sum |m_ij|^2)]. *)
val frobenius_norm : t -> float

(** [pp] prints rows on separate lines. *)
val pp : Format.formatter -> t -> unit

(** [swap_gate d] is the unitary on [C^d (x) C^d] exchanging the two
    factors. *)
val swap_gate : int -> t

(** Partial quadratic forms on a bilinear form [g] over
    [C^big (x) C^sub] (rows and columns indexed [i * sub + j]).  Both
    contract one tensor factor against a fixed vector in two
    GEMM-shaped unboxed passes — O(rows^2 * factor) instead of the
    naive O(rows^2 * factor^2) — and power the alternating eigenproblem
    ascents of the split-proof and product-pair attack optimizers. *)

(** [quad_minor g v] is the [big x big] matrix with entry [(i, i')]
    equal to [sum_{j j'} conj v_j * g[(i sub + j), (i' sub + j')] *
    v_j'] where [sub = Vec.dim v].
    @raise Invalid_argument unless [g] is square with [Vec.dim v]
    dividing its size. *)
val quad_minor : t -> Vec.t -> t

(** [quad_major g u] is the [sub x sub] matrix with entry [(j, j')]
    equal to [sum_{i i'} conj u_i * g[(i sub + j), (i' sub + j')] *
    u_i'] where [big = Vec.dim u] and [sub = rows g / big].
    @raise Invalid_argument unless [g] is square with [Vec.dim u]
    dividing its size. *)
val quad_major : t -> Vec.t -> t

(** Direct access to the underlying row-major storage (entry [(i, j)]
    at [i * cols + j]); used by the batched simulator kernels.
    Mutating these mutates the matrix. *)
val raw_re : t -> farr

val raw_im : t -> farr
