(** Startup self-benchmark for the {!Qdp_model} kernel cost model.

    {!calibrate} times the dense kernels ([mat.mul], [mat.tensor],
    [batch.gram], [batch.apply_into]) over a small deterministic size
    ladder with dispatch forced first sequential then parallel, and
    fits a {!Qdp_model.t} from the measurements — tens of milliseconds
    of wall clock.  On a host whose effective pool is one domain the
    parallel pass is skipped (it would run the identical sequential
    loops and duplicate the population under a second label), leaving
    every crossover at "never": exactly right for that host.

    Grid kernels ([grid.*]) are not probed — their work unit is a
    caller-supplied closure; their fits come from recorded
    [BENCH_calib.json] histories instead. *)

val calibrate : unit -> Qdp_model.t

(** [autotune ()] is [calibrate] followed by {!Qdp_model.install}. *)
val autotune : unit -> Qdp_model.t
