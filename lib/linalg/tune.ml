(* Startup self-benchmark for the Qdp_model cost model: time each
   dense kernel over a small size ladder with dispatch forced to the
   sequential and then the parallel path, fit both, install.  Probes
   use deterministic synthetic data (an LCG, no Random dependency) and
   adapt repetition counts to the clock so the whole calibration stays
   in the tens-of-milliseconds range on a warm host.

   Grid kernels ("grid.*") are not probed: their unit of work is a
   caller-supplied trial, which a synthetic benchmark cannot
   represent.  Their fits come from recorded BENCH_calib.json
   histories (qdp --model FILE). *)

(* Deterministic fill in [-0.5, 0.5), dense (no zeros to skip) so the
   probes time the full-MAC path. *)
let lcg_float state =
  state := ((!state * 25214903917) + 11) land 0x3FFFFFFFFFFF;
  float_of_int ((!state lsr 16) land 0xFFFFF) /. 1048576. -. 0.5

let fill_mat rows cols seed =
  let st = ref seed in
  Mat.init rows cols (fun _ _ ->
      { Complex.re = lcg_float st; im = lcg_float st })

let fill_batch dim count seed =
  let st = ref seed in
  Batch.init dim count (fun _ _ -> { Complex.re = lcg_float st; im = 0. })

(* One timed measurement: per-call (seconds, minor words), repetitions
   grown until the sample is at least [min_s] of wall clock. *)
let min_probe_s = 3e-4
let max_reps = 64

let time_call f =
  ignore (f ());
  (* warm: first call pays page faults and lazy pool spawn *)
  let rec go reps =
    let g0 = Gc.quick_stat () in
    let t0 = Qdp_obs.Clock.now () in
    for _ = 1 to reps do
      ignore (f ())
    done;
    let dt = Float.max 0. (Qdp_obs.Clock.now () -. t0) in
    let g1 = Gc.quick_stat () in
    if dt < min_probe_s && reps < max_reps then go (min max_reps (reps * 4))
    else
      let n = float_of_int reps in
      (dt /. n, Float.max 0. (g1.Gc.minor_words -. g0.Gc.minor_words) /. n)
  in
  go 1

type probe = { p_kernel : string; p_macs : float; p_run : unit -> unit }

let probes () =
  let mul =
    List.map
      (fun n ->
        let a = fill_mat n n 1 and b = fill_mat n n 2 in
        {
          p_kernel = "mat.mul";
          p_macs = Qdp_model.macs3 n n n;
          p_run = (fun () -> ignore (Mat.mul a b));
        })
      [ 16; 32; 64; 96 ]
  in
  let tensor =
    List.map
      (fun (na, nb) ->
        let a = fill_mat na na 3 and b = fill_mat nb nb 4 in
        {
          p_kernel = "mat.tensor";
          p_macs = Qdp_model.macs4 na na nb nb;
          p_run = (fun () -> ignore (Mat.tensor a b));
        })
      [ (8, 8); (12, 12); (16, 16); (16, 32) ]
  in
  let gram =
    List.map
      (fun (d, n) ->
        let b = fill_batch d n 5 in
        {
          p_kernel = "batch.gram";
          p_macs = Qdp_model.macs2 d n *. float_of_int (n + 1) /. 2.;
          p_run = (fun () -> ignore (Batch.gram b));
        })
      [ (256, 16); (512, 32); (1024, 48); (1024, 64) ]
  in
  let apply =
    List.map
      (fun (m, c) ->
        let op = fill_mat m m 6 in
        let src = fill_batch m c 7 and dst = Batch.create m c in
        {
          p_kernel = "batch.apply_into";
          p_macs = Qdp_model.macs3 m m c;
          p_run = (fun () -> Batch.apply_into op ~src ~dst);
        })
      [ (8, 32); (16, 64); (32, 128); (64, 128) ]
  in
  mul @ tensor @ gram @ apply

(* Two observations per (probe, path): the fit gets a noise estimate
   at every ladder point, not just across points. *)
let obs_per_probe = 2

let calibrate () =
  let saved = Qdp_model.forced () in
  Fun.protect ~finally:(fun () -> Qdp_model.force saved) @@ fun () ->
  let ps = probes () in
  let measure path tag =
    Qdp_model.force (Some path);
    List.concat_map
      (fun p ->
        List.init obs_per_probe (fun _ ->
            let seconds, minor = time_call p.p_run in
            {
              Qdp_model.o_kernel = p.p_kernel;
              o_path = tag;
              o_macs = p.p_macs;
              o_seconds = seconds;
              o_minor = minor;
            }))
      ps
  in
  let seq_obs = measure `Seq "seq" in
  (* A clamped one-domain pool runs the same sequential loops whatever
     the decision; tag what actually executes so the fit does not see
     the same population twice under two labels. *)
  let par_tag = if Qdp_par.effective_jobs () > 1 then "par" else "seq" in
  let par_obs = if par_tag = "par" then measure `Par "par" else [] in
  Qdp_model.of_observations
    ~jobs:(Qdp_par.effective_jobs ())
    (seq_obs @ par_obs)

let autotune () =
  let m = calibrate () in
  Qdp_model.install m;
  m
