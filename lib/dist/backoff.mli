(** Seeded exponential backoff with jitter and a capped attempt budget.

    One retry discipline shared by every layer that re-runs failed
    work: the fault-plan recovery loop ([Qdp_faults.Plan], which
    retries in-process with zero delay) and the multi-process
    coordinator ([Qdp_dist], which delays shard reassignment after a
    worker crash so a flapping worker pool is not hammered).  Keeping
    one policy type means the two loops cannot drift on attempt
    accounting or delay math.

    Delays never touch the caller's experiment RNG: jitter draws come
    from whatever [Random.State.t] the caller dedicates to the policy,
    and a policy with [jitter = 0.] (or zero delays) draws nothing at
    all, so retry behaviour cannot perturb sampled results. *)

type policy = {
  base_s : float;  (** delay after the first failed attempt, seconds *)
  factor : float;  (** multiplier applied per further failure *)
  max_delay_s : float;  (** cap on any single delay *)
  jitter : float;
      (** relative jitter in [0, 1]: a computed delay [d] becomes
          uniform in [d * (1 - jitter), d * (1 + jitter)] *)
  max_attempts : int;  (** total attempts, including the first *)
}

(** 25 ms base, doubling to a 500 ms cap, 50% jitter, 4 attempts —
    the coordinator's shard-reassignment policy. *)
val default : policy

(** [immediate ~max_attempts] retries [max_attempts - 1] times with no
    delay and no RNG consumption: the in-process recovery policy.
    @raise Invalid_argument on [max_attempts < 1]. *)
val immediate : max_attempts:int -> policy

(** [delay p ~st ~attempt] is the delay (seconds) to wait after failed
    attempt number [attempt] (1-based).  Draws from [st] only when the
    computed delay is positive and [p.jitter > 0.]. *)
val delay : policy -> st:Random.State.t -> attempt:int -> float

(** [run ?st ?sleep ?on_retry p ~retry_if f] calls [f ~attempt] with
    [attempt = 1, 2, ...] while [retry_if] accepts the result and the
    attempt budget is not exhausted; returns the last result.  Before
    each re-attempt it reports [on_retry ~attempt ~delay_s] (attempt =
    the one that just failed) and then [sleep delay_s] (default
    [Unix.sleepf]; pass [ignore] to busy-retry).  [st] is required
    only when the policy can produce a jittered positive delay. *)
val run :
  ?st:Random.State.t ->
  ?sleep:(float -> unit) ->
  ?on_retry:(attempt:int -> delay_s:float -> unit) ->
  policy ->
  retry_if:('a -> bool) ->
  (attempt:int -> 'a) ->
  'a
