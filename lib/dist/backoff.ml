(* Shared retry discipline: see backoff.mli.  The delay math draws
   jitter from a caller-supplied RNG state so experiment streams are
   never consumed; zero-delay policies draw nothing at all, which the
   fault-plan recovery loop relies on for byte-identical sweeps. *)

type policy = {
  base_s : float;
  factor : float;
  max_delay_s : float;
  jitter : float;
  max_attempts : int;
}

let default =
  { base_s = 0.025; factor = 2.0; max_delay_s = 0.5; jitter = 0.5;
    max_attempts = 4 }

let immediate ~max_attempts =
  if max_attempts < 1 then
    invalid_arg "Backoff.immediate: need at least one attempt";
  { base_s = 0.0; factor = 1.0; max_delay_s = 0.0; jitter = 0.0;
    max_attempts }

let delay p ~st ~attempt =
  let a = max 1 attempt in
  let d =
    min p.max_delay_s (p.base_s *. (p.factor ** float_of_int (a - 1)))
  in
  if d <= 0.0 then 0.0
  else if p.jitter <= 0.0 then d
  else begin
    (* uniform in [d * (1 - jitter), d * (1 + jitter)] *)
    let spread = d *. p.jitter in
    let lo = d -. spread in
    lo +. Random.State.float st (2.0 *. spread)
  end

let no_jitter_delay p ~attempt =
  let a = max 1 attempt in
  min p.max_delay_s (p.base_s *. (p.factor ** float_of_int (a - 1)))

let run ?st ?(sleep = Unix.sleepf) ?(on_retry = fun ~attempt:_ ~delay_s:_ -> ())
    p ~retry_if f =
  let rec go attempt =
    let r = f ~attempt in
    if attempt >= p.max_attempts || not (retry_if r) then r
    else begin
      let d =
        match st with
        | Some st -> delay p ~st ~attempt
        | None ->
            let d = no_jitter_delay p ~attempt in
            if d > 0.0 && p.jitter > 0.0 then
              invalid_arg
                "Backoff.run: policy has jittered delays but no ~st";
            d
      in
      on_retry ~attempt ~delay_s:d;
      if d > 0.0 then sleep d;
      go (attempt + 1)
    end
  in
  go 1
