(* Wire framing for the multi-process coordinator: see frame.mli. *)

type msg =
  | Task of { shard : int; attempt : int }
  | Ack of { shard : int; attempt : int }
  | Result of { shard : int; attempt : int; payload : string }
  | Failed of { shard : int; attempt : int; reason : string }
  | Stop
  | Request of { id : int; payload : string }
  | Reply of { id : int; payload : string }
  | Reject of { id : int; reason : string }

(* -- CRC-32 (IEEE, reflected), table-based -------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32_sub s pos len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let crc32 s = crc32_sub s 0 (String.length s)

(* -- encoding ------------------------------------------------------- *)

let magic = "QDF1"

(* Payloads are marshalled shard results; 256 MiB is far beyond any
   legitimate frame and bounds what a corrupt length field can make the
   reader buffer. *)
let max_payload = 1 lsl 28

let kind_byte = function
  | Task _ -> '\001'
  | Ack _ -> '\002'
  | Result _ -> '\003'
  | Failed _ -> '\004'
  | Stop -> '\005'
  | Request _ -> '\006'
  | Reply _ -> '\007'
  | Reject _ -> '\008'

let fields = function
  | Task { shard; attempt } | Ack { shard; attempt } -> (shard, attempt, "")
  | Result { shard; attempt; payload } -> (shard, attempt, payload)
  | Failed { shard; attempt; reason } -> (shard, attempt, reason)
  | Stop -> (0, 0, "")
  | Request { id; payload } | Reply { id; payload } -> (id, 0, payload)
  | Reject { id; reason } -> (id, 0, reason)

let encode msg =
  let shard, attempt, payload = fields msg in
  let plen = String.length payload in
  let b = Buffer.create (21 + plen) in
  Buffer.add_string b magic;
  Buffer.add_char b (kind_byte msg);
  Buffer.add_int32_be b (Int32.of_int shard);
  Buffer.add_int32_be b (Int32.of_int attempt);
  Buffer.add_int32_be b (Int32.of_int plen);
  Buffer.add_string b payload;
  let body = Buffer.contents b in
  (* CRC covers kind..payload (everything after the magic). *)
  let crc = crc32_sub body 4 (String.length body - 4) in
  let out = Buffer.create (String.length body + 4) in
  Buffer.add_string out body;
  Buffer.add_int32_be out crc;
  Buffer.contents out

let write fd msg =
  let s = Bytes.unsafe_of_string (encode msg) in
  let len = Bytes.length s in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* -- incremental decoding ------------------------------------------- *)

type reader = { mutable buf : Buffer.t }

let reader () = { buf = Buffer.create 4096 }

let feed r bytes len = Buffer.add_subbytes r.buf bytes 0 len

(* Drops the first [n] bytes of the reader's buffer. *)
let consume r n =
  let s = Buffer.contents r.buf in
  let rest = String.sub s n (String.length s - n) in
  r.buf <- Buffer.create (max 4096 (String.length rest));
  Buffer.add_string r.buf rest

let get_i32 s pos =
  Int32.to_int (String.get_int32_be s pos)

let decode_kind c shard attempt payload =
  match c with
  | '\001' -> Some (Task { shard; attempt })
  | '\002' -> Some (Ack { shard; attempt })
  | '\003' -> Some (Result { shard; attempt; payload })
  | '\004' -> Some (Failed { shard; attempt; reason = payload })
  | '\005' -> Some Stop
  | '\006' -> Some (Request { id = shard; payload })
  | '\007' -> Some (Reply { id = shard; payload })
  | '\008' -> Some (Reject { id = shard; reason = payload })
  | _ -> None

let next r =
  let s = Buffer.contents r.buf in
  let have = String.length s in
  if have < 17 then
    (* Shorter than any header: corrupt only if the prefix already
       contradicts the magic. *)
    if have > 0 && not (String.sub s 0 (min have 4) = String.sub magic 0 (min have 4))
    then begin
      consume r have;
      `Corrupt
    end
    else `More
  else if String.sub s 0 4 <> magic then begin
    consume r have;
    `Corrupt
  end
  else begin
    let plen = get_i32 s 13 in
    if plen < 0 || plen > max_payload then begin
      consume r have;
      `Corrupt
    end
    else if have < 17 + plen + 4 then `More
    else begin
      let total = 17 + plen + 4 in
      let stored = String.get_int32_be s (17 + plen) in
      let computed = crc32_sub s 4 (13 + plen) in
      if stored <> computed then begin
        consume r have;
        `Corrupt
      end
      else begin
        let shard = get_i32 s 5 in
        let attempt = get_i32 s 9 in
        let payload = String.sub s 17 plen in
        match decode_kind s.[4] shard attempt payload with
        | Some msg ->
            consume r total;
            `Msg msg
        | None ->
            consume r have;
            `Corrupt
      end
    end
  end
