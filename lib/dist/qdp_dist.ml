(* Multi-process coordinator/worker sharding: see qdp_dist.mli.

   Forking strategy: workers are forked per region, *after* the shard
   closure exists, so children execute it straight from inherited
   (copy-on-write) memory and only marshalled results cross the pipe.
   Any worker that began computing a shard either returns its result
   or is killed — crash, hang and corruption detection all terminate
   the process — so no live worker ever holds a partially-consumed
   copy of a shard's RNG state, and every re-attempt starts from a
   fresh copy-on-write snapshot.  A shard whose closure raises is
   recomputed in the coordinator so the original exception surfaces
   with sequential semantics. *)

module Backoff = Backoff
module Frame = Frame
module Metrics = Qdp_obs.Metrics

(* -- configuration -------------------------------------------------- *)

(* 0 = unresolved; setters win over the environment, workers resolve
   the env lazily so the CLI can run before first use. *)

let env_int name ~default ~lo =
  match Sys.getenv_opt name with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= lo -> v
      | Some _ | None -> default)
  | None -> default

let env_float name ~default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v -> v
      | None -> default)
  | None -> default

let workers_cfg : int option ref = ref None

let workers () =
  match !workers_cfg with
  | Some w -> w
  | None ->
      let w = env_int "QDP_WORKERS" ~default:0 ~lo:0 in
      workers_cfg := Some w;
      w

let set_workers n =
  if n < 0 then invalid_arg "Qdp_dist.set_workers: need n >= 0";
  workers_cfg := Some n

let shard_timeout_cfg : float option ref = ref None

let shard_timeout () =
  match !shard_timeout_cfg with
  | Some t -> t
  | None ->
      let t = env_float "QDP_DIST_TIMEOUT" ~default:30.0 in
      shard_timeout_cfg := Some t;
      t

let set_shard_timeout t = shard_timeout_cfg := Some t

let max_attempts_cfg : int option ref = ref None

let max_attempts () =
  match !max_attempts_cfg with
  | Some n -> n
  | None ->
      let n = env_int "QDP_DIST_RETRIES" ~default:4 ~lo:1 in
      max_attempts_cfg := Some n;
      n

let set_max_attempts n =
  if n < 1 then invalid_arg "Qdp_dist.set_max_attempts: need n >= 1";
  max_attempts_cfg := Some n

let respawn_cfg : int option ref = ref None

let respawn_budget () =
  match !respawn_cfg with
  | Some n -> n
  | None ->
      let n = env_int "QDP_DIST_RESPAWNS" ~default:(-1) ~lo:(-1) in
      respawn_cfg := Some n;
      n

let set_respawn_budget n = respawn_cfg := Some (max (-1) n)

let chaos_cfg : float option ref = ref None

let chaos () =
  match !chaos_cfg with
  | Some p -> p
  | None ->
      let p = env_float "QDP_CHAOS" ~default:0.0 in
      let p = if p < 0.0 || p > 1.0 then 0.0 else p in
      chaos_cfg := Some p;
      p

let set_chaos p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Qdp_dist.set_chaos: need 0 <= p <= 1";
  chaos_cfg := Some p

let chaos_seed_cfg : int option ref = ref None

let chaos_seed () =
  match !chaos_seed_cfg with
  | Some s -> s
  | None ->
      let s = env_int "QDP_CHAOS_SEED" ~default:42 ~lo:min_int in
      chaos_seed_cfg := Some s;
      s

let set_chaos_seed s = chaos_seed_cfg := Some s

(* -- observability -------------------------------------------------- *)

let c_tasks = Metrics.counter "dist.tasks"
let c_results = Metrics.counter "dist.results"
let c_retries = Metrics.counter "dist.retries"
let c_crashes = Metrics.counter "dist.crashes"
let c_hangs = Metrics.counter "dist.hangs"
let c_corrupt = Metrics.counter "dist.corrupt"
let c_duplicates = Metrics.counter "dist.duplicates"
let c_respawns = Metrics.counter "dist.respawns"
let c_degraded = Metrics.counter "dist.degraded"
let c_fallbacks = Metrics.counter "dist.fallbacks"

type report = {
  rp_label : string;
  rp_workers : int;
  rp_shards : int;
  rp_from_workers : int;
  rp_in_process : int;
  rp_retries : int;
  rp_crashes : int;
  rp_hangs : int;
  rp_corrupt : int;
  rp_duplicates : int;
  rp_respawns : int;
  rp_degraded : int;
  rp_fallback : bool;
}

let last_report_ref : report option ref = ref None
let last_report () = !last_report_ref

(* -- chaos schedule ------------------------------------------------- *)

(* Keyed on (seed, shard, attempt) — never on worker identity or wall
   time — so the set of injected events, and with it every retry and
   degradation count, is a pure function of the configuration. *)
type chaos_event = Crash | Hang | Corrupt_frame | Corrupt_payload

let chaos_event ~seed ~shard ~attempt ~p =
  if p <= 0.0 then None
  else begin
    let st = Random.State.make [| seed; shard; attempt; 0x6368616f |] in
    if Random.State.float st 1.0 >= p then None
    else
      match Random.State.int st 4 with
      | 0 -> Some Crash
      | 1 -> Some Hang
      | 2 -> Some Corrupt_frame
      | _ -> Some Corrupt_payload
  end

(* -- worker (child) side -------------------------------------------- *)

let write_raw fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    match Unix.write fd b !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let counter_deltas before after =
  let value snap name =
    match Metrics.find snap name with
    | Some (Metrics.Counter_v v) -> Some v
    | _ -> None
  in
  List.filter_map
    (fun (name, view) ->
      match view with
      | Metrics.Counter_v v ->
          let b = Option.value ~default:0 (value before name) in
          if v <> b then Some (name, v - b) else None
      | _ -> None)
    after

(* Runs the shard, shipping [Qdp_obs] counter increments alongside the
   result so the coordinator's metrics see the work done in children. *)
let shard_payload f shard =
  if Qdp_obs.enabled () then begin
    let before = Metrics.snapshot () in
    let r = f shard in
    let after = Metrics.snapshot () in
    Marshal.to_string (r, counter_deltas before after) []
  end
  else Marshal.to_string (f shard, ([] : (string * int) list)) []

(* Never returns.  Exit discipline: always [Unix._exit] — a normal
   exit would run the parent's [at_exit] hooks (domain joins, buffer
   flushes) against state the child does not own. *)
let worker_main ~f ~task_r ~res_w =
  (try
     (* The pool must never start in a child, nested regions must not
        fork, and only the coordinator heartbeats. *)
     Qdp_par.set_jobs 1;
     workers_cfg := Some 0;
     Qdp_obs.Progress.set_enabled false;
     Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
     let p = chaos () and seed = chaos_seed () in
     let reader = Frame.reader () in
     let buf = Bytes.create 65536 in
     let rec read_msg () =
       match Frame.next reader with
       | `Msg m -> Some m
       | `Corrupt -> None
       | `More -> (
           match Unix.read task_r buf 0 (Bytes.length buf) with
           | 0 -> None
           | n ->
               Frame.feed reader buf n;
               read_msg ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_msg ())
     in
     let rec loop () =
       match read_msg () with
       | None | Some Frame.Stop -> ()
       | Some
           (Frame.Ack _ | Frame.Result _ | Frame.Failed _ | Frame.Request _
           | Frame.Reply _ | Frame.Reject _) ->
           loop ()
       | Some (Frame.Task { shard; attempt }) -> (
           match chaos_event ~seed ~shard ~attempt ~p with
           | Some Crash ->
               (* die before acknowledging: pure crash *)
               Unix._exit 3
           | ev -> (
               Frame.write res_w (Frame.Ack { shard; attempt });
               match ev with
               | Some Crash -> assert false
               | Some Hang ->
                   (* miss the shard deadline; the coordinator kills
                      us.  The cap only bounds a run with detection
                      disabled. *)
                   Unix.sleepf 120.0;
                   Unix._exit 4
               | Some Corrupt_frame ->
                   (* a frame whose CRC no longer matches its bytes:
                      exercises the checksum detector.  The stream is
                      broken after this, so wait for the kill. *)
                   let raw =
                     Bytes.of_string
                       (Frame.encode
                          (Frame.Result { shard; attempt; payload = "XX" }))
                   in
                   Bytes.set raw 17
                     (Char.chr (Char.code (Bytes.get raw 17) lxor 0xFF));
                   write_raw res_w (Bytes.to_string raw);
                   Unix.sleepf 120.0;
                   Unix._exit 4
               | Some Corrupt_payload ->
                   (* CRC-valid frame, garbage inside: exercises the
                      unmarshal detector.  Never flip bytes of a real
                      marshalled value — that could decode to a wrong
                      but well-formed result. *)
                   Frame.write res_w
                     (Frame.Result { shard; attempt; payload = "CHAOSJUNK" });
                   loop ()
               | None ->
                   (match shard_payload f shard with
                   | payload ->
                       Frame.write res_w (Frame.Result { shard; attempt; payload })
                   | exception e ->
                       Frame.write res_w
                         (Frame.Failed
                            { shard; attempt; reason = Printexc.to_string e }));
                   loop ()))
     in
     loop ()
   with _ -> ());
  Unix._exit 0

(* -- coordinator (parent) side -------------------------------------- *)

type worker = {
  w_pid : int;
  w_to : Unix.file_descr;
  w_from : Unix.file_descr;
  w_reader : Frame.reader;
  mutable w_busy : (int * int * float) option;  (* shard, attempt, sent *)
  mutable w_alive : bool;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let rec waitpid_retry flags pid =
  match Unix.waitpid flags pid with
  | r -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry flags pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> (pid, Unix.WEXITED 0)

(* Forks one worker.  [close_in_child] lists the coordinator-side fds
   of every other live worker: a child inheriting them would keep a
   sibling's pipe open past that sibling's death and defeat EOF
   detection. *)
let fork_worker ~f ~close_in_child =
  let task_r, task_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      List.iter close_quiet close_in_child;
      close_quiet task_w;
      close_quiet res_r;
      worker_main ~f ~task_r ~res_w
  | pid ->
      close_quiet task_r;
      close_quiet res_w;
      {
        w_pid = pid;
        w_to = task_w;
        w_from = res_r;
        w_reader = Frame.reader ();
        w_busy = None;
        w_alive = true;
      }
  | exception e ->
      close_quiet task_r;
      close_quiet task_w;
      close_quiet res_r;
      close_quiet res_w;
      raise e

(* Mutable per-region bookkeeping; folded into a {!report} at exit. *)
type region_stats = {
  mutable s_from_workers : int;
  mutable s_in_process : int;
  mutable s_retries : int;
  mutable s_crashes : int;
  mutable s_hangs : int;
  mutable s_corrupt : int;
  mutable s_duplicates : int;
  mutable s_respawns : int;
  mutable s_degraded : int;
}

let coordinator ~label ~n ~(f : int -> 'r) nworkers : 'r array =
  let timeout = shard_timeout () in
  let maxatt = max_attempts () in
  let budget = respawn_budget () in
  let policy = { Backoff.default with max_attempts = maxatt } in
  (* Jitter RNG local to the coordinator: retry timing must never
     consume experiment randomness. *)
  let brng = Random.State.make [| 0x716470; chaos_seed () |] in
  let results : 'r option array = Array.make n None in
  let attempts = Array.make n 0 in
  let ready : int Queue.t = Queue.create () in
  for i = 0 to n - 1 do
    Queue.push i ready
  done;
  let delayed : (float * int) list ref = ref [] in
  let degraded : int list ref = ref [] in
  let outstanding = ref n in
  let stats =
    {
      s_from_workers = 0;
      s_in_process = 0;
      s_retries = 0;
      s_crashes = 0;
      s_hangs = 0;
      s_corrupt = 0;
      s_duplicates = 0;
      s_respawns = 0;
      s_degraded = 0;
    }
  in
  let prog = Qdp_obs.Progress.start ~total:n ("dist/" ^ label) in
  let pool : worker list ref = ref [] in
  let alive () = List.filter (fun w -> w.w_alive) !pool in
  let coordinator_fds () =
    List.concat_map (fun w -> [ w.w_to; w.w_from ]) (alive ())
  in
  let spawn () =
    match fork_worker ~f ~close_in_child:(coordinator_fds ()) with
    | w ->
        pool := w :: !pool;
        true
    | exception _ -> false
  in
  let degrade shard =
    degraded := shard :: !degraded;
    stats.s_degraded <- stats.s_degraded + 1;
    Metrics.incr c_degraded;
    decr outstanding
  in
  let fail_shard shard =
    if attempts.(shard) >= maxatt then degrade shard
    else begin
      stats.s_retries <- stats.s_retries + 1;
      Metrics.incr c_retries;
      let d = Backoff.delay policy ~st:brng ~attempt:attempts.(shard) in
      delayed := (Qdp_obs.Clock.now () +. d, shard) :: !delayed
    end
  in
  (* Kills a worker, failing its in-flight shard.  All three failure
     detectors funnel here, which is what keeps the RNG-state
     invariant: a worker that may have touched a shard never survives
     to receive that shard again. *)
  let kill_worker w =
    if w.w_alive then begin
      w.w_alive <- false;
      close_quiet w.w_to;
      close_quiet w.w_from;
      (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (waitpid_retry [] w.w_pid);
      match w.w_busy with
      | Some (shard, _, _) ->
          w.w_busy <- None;
          fail_shard shard
      | None -> ()
    end
  in
  let maybe_respawn () =
    if
      !outstanding > 0
      && List.length (alive ()) < nworkers
      && (budget < 0 || stats.s_respawns < budget)
    then
      if spawn () then begin
        stats.s_respawns <- stats.s_respawns + 1;
        Metrics.incr c_respawns
      end
  in
  let complete w shard r deltas =
    match results.(shard) with
    | Some _ ->
        stats.s_duplicates <- stats.s_duplicates + 1;
        Metrics.incr c_duplicates;
        (match w.w_busy with
        | Some (s, _, _) when s = shard -> w.w_busy <- None
        | _ -> ())
    | None ->
        results.(shard) <- Some r;
        List.iter
          (fun (name, by) -> Metrics.incr ~by (Metrics.counter name))
          deltas;
        stats.s_from_workers <- stats.s_from_workers + 1;
        Metrics.incr c_results;
        decr outstanding;
        Qdp_obs.Progress.step prog;
        (match w.w_busy with
        | Some (s, _, _) when s = shard -> w.w_busy <- None
        | _ -> ())
  in
  let on_corrupt w =
    stats.s_corrupt <- stats.s_corrupt + 1;
    Metrics.incr c_corrupt;
    kill_worker w;
    maybe_respawn ()
  in
  let on_msg w = function
    | Frame.Ack _ | Frame.Stop | Frame.Task _ | Frame.Request _
    | Frame.Reply _ | Frame.Reject _ ->
        ()
    | Frame.Result { shard; attempt = _; payload } -> (
        if shard < 0 || shard >= n then on_corrupt w
        else
          match (Marshal.from_string payload 0 : 'r * (string * int) list) with
          | r, deltas -> complete w shard r deltas
          | exception _ -> on_corrupt w)
    | Frame.Failed { shard; attempt = _; reason = _ } -> (
        (* Deterministic failure inside [f]: recompute in-process so
           the original exception propagates as it would have
           sequentially.  Only honoured for the shard this worker
           actually holds — anything else is protocol noise. *)
        match w.w_busy with
        | Some (s, _, _) when s = shard && results.(shard) = None ->
            w.w_busy <- None;
            degrade shard
        | _ -> ())
  in
  let rec drain w =
    if w.w_alive then
      match Frame.next w.w_reader with
      | `More -> ()
      | `Corrupt -> on_corrupt w
      | `Msg m ->
          on_msg w m;
          drain w
  in
  let buf = Bytes.create 65536 in
  (* Reads whatever the pipe holds; [`Eof] means the peer is gone. *)
  let read_once w =
    match Unix.read w.w_from buf 0 (Bytes.length buf) with
    | 0 -> `Eof
    | nread ->
        Frame.feed w.w_reader buf nread;
        `Data
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Data
    | exception Unix.Unix_error (_, _, _) -> `Eof
  in
  (* A dead worker's pipe may still hold completed results — drain
     them before charging it with the in-flight shard. *)
  let on_dead w =
    if w.w_alive then begin
      let rec slurp () =
        match read_once w with `Data -> slurp () | `Eof -> ()
      in
      slurp ();
      drain w;
      if w.w_alive then begin
        stats.s_crashes <- stats.s_crashes + 1;
        Metrics.incr c_crashes;
        kill_worker w;
        maybe_respawn ()
      end
    end
  in
  let send_task w shard =
    attempts.(shard) <- attempts.(shard) + 1;
    let att = attempts.(shard) in
    match Frame.write w.w_to (Frame.Task { shard; attempt = att }) with
    | () ->
        w.w_busy <- Some (shard, att, Qdp_obs.Clock.now ());
        Metrics.incr c_tasks
    | exception Unix.Unix_error (_, _, _) ->
        (* Dead before the task arrived: charge a crash, retry the
           shard elsewhere. *)
        w.w_busy <- Some (shard, att, Qdp_obs.Clock.now ());
        stats.s_crashes <- stats.s_crashes + 1;
        Metrics.incr c_crashes;
        kill_worker w;
        maybe_respawn ()
  in
  let old_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      (match old_sigpipe with
      | Some b -> ( try Sys.set_signal Sys.sigpipe b with _ -> ())
      | None -> ());
      List.iter
        (fun w ->
          if w.w_alive then begin
            w.w_alive <- false;
            (try Frame.write w.w_to Frame.Stop with _ -> ());
            close_quiet w.w_to;
            close_quiet w.w_from;
            (match w.w_busy with
            | Some _ -> ( try Unix.kill w.w_pid Sys.sigkill with _ -> ())
            | None -> ());
            ignore (waitpid_retry [] w.w_pid)
          end)
        !pool)
    (fun () ->
      for _ = 1 to nworkers do
        ignore (spawn ())
      done;
      while !outstanding > 0 && alive () <> [] do
        (* Monotonic-clamped: a backwards NTP step must not revive an
           expired backoff entry or stretch a shard deadline. *)
        let now = Qdp_obs.Clock.now () in
        (* promote delayed shards whose backoff has elapsed *)
        let due, still = List.partition (fun (t, _) -> t <= now) !delayed in
        delayed := still;
        List.iter (fun (_, s) -> Queue.push s ready) due;
        (* hand work to idle workers *)
        List.iter
          (fun w ->
            if w.w_alive && w.w_busy = None && not (Queue.is_empty ready)
            then send_task w (Queue.pop ready))
          (alive ());
        (* hang detection *)
        List.iter
          (fun w ->
            match w.w_busy with
            | Some (_, _, t0) when timeout > 0.0 && now -. t0 > timeout ->
                stats.s_hangs <- stats.s_hangs + 1;
                Metrics.incr c_hangs;
                kill_worker w;
                maybe_respawn ()
            | _ -> ())
          (alive ());
        let fds = List.map (fun w -> w.w_from) (alive ()) in
        if fds <> [] then begin
          let next_due =
            List.fold_left (fun acc (t, _) -> min acc t) infinity !delayed
          in
          let wait =
            let cap = 0.25 in
            let until_due = max 0.005 (next_due -. now) in
            min cap (if next_due = infinity then cap else until_due)
          in
          let readable =
            match Unix.select fds [] [] wait with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
          in
          List.iter
            (fun w ->
              if w.w_alive && List.memq w.w_from readable then
                match read_once w with
                | `Data -> drain w
                | `Eof -> on_dead w)
            (alive ());
          (* catch silent deaths select cannot see *)
          List.iter
            (fun w ->
              if w.w_alive then
                match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
                | 0, _ -> ()
                | _ -> on_dead w
                | exception Unix.Unix_error (Unix.ECHILD, _, _) -> on_dead w)
            (alive ())
        end
      done;
      (* nobody left to ask: everything still open degrades *)
      if !outstanding > 0 then begin
        let due = List.map snd !delayed in
        delayed := [];
        List.iter (fun s -> Queue.push s ready) due;
        while not (Queue.is_empty ready) do
          degrade (Queue.pop ready)
        done
      end;
      assert (!outstanding = 0));
  (* Degraded shards run here, in index order, workers already gone:
     an [f] that raises does so exactly as the sequential run would. *)
  List.iter
    (fun shard ->
      results.(shard) <- Some (f shard);
      stats.s_in_process <- stats.s_in_process + 1;
      Qdp_obs.Progress.step prog)
    (List.sort compare !degraded);
  Qdp_obs.Progress.finish prog;
  assert (stats.s_from_workers + stats.s_in_process = n);
  last_report_ref :=
    Some
      {
        rp_label = label;
        rp_workers = nworkers;
        rp_shards = n;
        rp_from_workers = stats.s_from_workers;
        rp_in_process = stats.s_in_process;
        rp_retries = stats.s_retries;
        rp_crashes = stats.s_crashes;
        rp_hangs = stats.s_hangs;
        rp_corrupt = stats.s_corrupt;
        rp_duplicates = stats.s_duplicates;
        rp_respawns = stats.s_respawns;
        rp_degraded = stats.s_degraded;
        rp_fallback = false;
      };
  Array.map (function Some r -> r | None -> assert false) results

(* -- public entry points -------------------------------------------- *)

(* Guards nested regions: a shard closure that itself calls
   [map_shards] (xval shards calling [monte_carlo_hits]) must run the
   inner grid in-process. *)
let region_depth = ref 0

let in_process ~n f =
  Qdp_par.parallel_map_array ~chunk:1 f (Array.init n (fun i -> i))

let fallback_report ~label ~n =
  last_report_ref :=
    Some
      {
        rp_label = label;
        rp_workers = 0;
        rp_shards = n;
        rp_from_workers = 0;
        rp_in_process = n;
        rp_retries = 0;
        rp_crashes = 0;
        rp_hangs = 0;
        rp_corrupt = 0;
        rp_duplicates = 0;
        rp_respawns = 0;
        rp_degraded = 0;
        rp_fallback = true;
      }

let map_shards ?(label = "shards") ~n f =
  if n <= 0 then [||]
  else begin
    let w = workers () in
    let forkable =
      w > 0 && n > 1 && !region_depth = 0 && not (Qdp_par.pool_started ())
    in
    incr region_depth;
    Fun.protect
      ~finally:(fun () -> decr region_depth)
      (fun () ->
        if not forkable then begin
          if w > 0 then begin
            Metrics.incr c_fallbacks;
            fallback_report ~label ~n
          end;
          in_process ~n f
        end
        else
          Qdp_obs.Trace.with_span ("dist/" ^ label) (fun () ->
              match coordinator ~label ~n ~f (min w n) with
              | r -> r
              | exception Failure _ when not (Qdp_par.pool_started ()) ->
                  (* lost the fork-vs-domain race *)
                  Metrics.incr c_fallbacks;
                  fallback_report ~label ~n;
                  in_process ~n f))
  end

let monte_carlo_hits ?label ~st ~trials f =
  if trials <= 0 then 0
  else begin
    let mc = Qdp_par.mc_chunk in
    let nchunks = (trials + mc - 1) / mc in
    (* Same split discipline as [Qdp_par.monte_carlo_hits]: chunk
       states peel off [st] in chunk order on the caller, so [st]
       advances identically whatever executes the chunks. *)
    let states = Array.make nchunks st in
    for k = 0 to nchunks - 1 do
      states.(k) <- Random.State.split st
    done;
    let chunk k =
      let b = k * mc in
      let e = min trials (b + mc) in
      let s = states.(k) in
      let h = ref 0 in
      for _ = b + 1 to e do
        if f s then incr h
      done;
      !h
    in
    (* The cost model only gates the in-process path: with worker
       processes configured, sharding policy belongs to [map_shards]
       (fork guards, chaos, degradation) and stays as-is. *)
    let par =
      Qdp_model.decide ~kernel:"grid.monte_carlo" ~macs:(float_of_int trials)
        ~default:true
    in
    let hits =
      if (not par) && workers () = 0 then Array.init nchunks chunk
      else
        let label = match label with Some l -> l ^ "/mc" | None -> "mc" in
        map_shards ~label ~n:nchunks chunk
    in
    Array.fold_left ( + ) 0 hits
  end
