(** Length-prefixed binary framing for coordinator <-> worker pipes.

    Every message is one frame:

    {v
    "QDF1" (4B) | kind (1B) | shard (4B BE) | attempt (4B BE)
                | len (4B BE) | payload (len B) | crc32 (4B BE)
    v}

    The CRC-32 (IEEE, reflected, same polynomial as zlib) covers the
    bytes from [kind] through the payload, so a flipped bit anywhere in
    the framed message — header fields included — surfaces as
    [`Corrupt] rather than a wrong result.  The magic lets a reader
    resynchronize detection after garbage: anything not starting with
    ["QDF1"] is corrupt by definition. *)

type msg =
  | Task of { shard : int; attempt : int }
      (** coordinator -> worker: compute this shard *)
  | Ack of { shard : int; attempt : int }
      (** worker -> coordinator: shard accepted, computation started *)
  | Result of { shard : int; attempt : int; payload : string }
      (** worker -> coordinator: marshalled result bytes *)
  | Failed of { shard : int; attempt : int; reason : string }
      (** worker -> coordinator: the shard closure raised *)
  | Stop  (** coordinator -> worker: exit cleanly *)
  | Request of { id : int; payload : string }
      (** client -> server ([Qdp_serve]): evaluate the JSON-encoded
          request; [id] is a client-chosen correlation id echoed on
          the response (carried in the shard field) *)
  | Reply of { id : int; payload : string }
      (** server -> client: JSON-encoded evaluation result *)
  | Reject of { id : int; reason : string }
      (** server -> client: JSON-encoded structured rejection
          (overload, malformed request, evaluation error) *)

(** [crc32 s] is the IEEE CRC-32 of [s]
    ([crc32 "123456789" = 0xCBF43926]). *)
val crc32 : string -> int32

(** [encode msg] is the complete frame for [msg]. *)
val encode : msg -> string

(** [write fd msg] writes the frame, retrying on [EINTR] and partial
    writes.  Raises [Unix.Unix_error] (e.g. [EPIPE]) on a dead peer. *)
val write : Unix.file_descr -> msg -> unit

(** Incremental decoder over a byte stream.  One reader per pipe. *)
type reader

val reader : unit -> reader

(** [feed r bytes len] appends the first [len] bytes of [bytes] to the
    reader's buffer. *)
val feed : reader -> bytes -> int -> unit

(** [next r] extracts the next complete frame, if any.  [`More] means
    the buffer holds only a frame prefix; [`Corrupt] means the buffer
    head failed validation (bad magic, unknown kind, oversized length,
    or CRC mismatch) — the reader discards the broken frame's bytes,
    but the stream framing is lost, so callers should treat the peer
    as compromised and kill it rather than keep reading. *)
val next : reader -> [ `Msg of msg | `More | `Corrupt ]
