(** Fault-tolerant multi-process sharding for the parallel grids.

    {!map_shards} fans a pure indexed computation out over forked
    worker processes: the coordinator forks [workers ()] children
    (which inherit the shard closure — nothing but results crosses the
    pipe), hands out shards over length-prefixed CRC-checked frames
    ({!Frame}), and supervises them with per-shard deadlines, bounded
    retries with exponential backoff + jitter ({!Backoff}), and
    deterministic reassignment.  A worker that crashes, hangs past the
    shard deadline, or returns a corrupt frame is killed and replaced;
    a shard that exhausts its attempt budget is computed in-process.
    When the process pool cannot be used at all — [workers () = 0],
    the [Qdp_par] domain pool already started (OCaml 5 forbids [fork]
    after a domain spawn), nested inside another region, or every
    respawn budget spent — the call degrades to
    [Qdp_par.parallel_map_array] over the same indices.

    {2 Determinism contract}

    Shard [i] must be a self-seeded pure function of [i] (every wired
    call site derives per-shard RNG state from the shard index, PR 4's
    seed-splitting).  The coordinator stores results by shard index,
    so the output array — and, through it, every downstream artifact —
    is byte-identical to the [--jobs 1 --workers 0] run no matter
    which workers die, in what order shards are retried, or what the
    chaos mode injects.  Chaos events are keyed on
    [(chaos seed, shard, attempt)], never on worker identity or time,
    so event {e counts} are reproducible too.

    Every transition is visible when observability is on: [dist.*]
    counters (tasks, results, retries, crashes, hangs, corrupt frames,
    duplicates, respawns, degraded shards, in-process fallbacks), a
    span per region, and [Progress] heartbeats per completed shard. *)

module Backoff = Backoff
module Frame = Frame

(** {2 Configuration}

    Each knob resolves lazily from its environment variable on first
    read; the setters (the CLI flags) win over the environment. *)

(** Worker-process budget.  [QDP_WORKERS]; default [0] = disabled
    (in-process execution). *)
val workers : unit -> int

(** @raise Invalid_argument on [n < 0]. *)
val set_workers : int -> unit

(** Per-shard deadline in seconds before a busy worker is declared
    hung and killed.  [QDP_DIST_TIMEOUT]; default [30.]; [<= 0]
    disables hang detection. *)
val shard_timeout : unit -> float

val set_shard_timeout : float -> unit

(** Attempt budget per shard (including the first try) before the
    shard degrades to in-process computation.  [QDP_DIST_RETRIES];
    default [4]. *)
val max_attempts : unit -> int

(** @raise Invalid_argument on [n < 1]. *)
val set_max_attempts : int -> unit

(** Worker-respawn budget per region: [-1] (default) = unbounded —
    safe, since total work is already bounded by
    [shards * max_attempts] — or a cap after which the region runs
    with the surviving workers (possibly none: full degradation).
    [QDP_DIST_RESPAWNS]. *)
val respawn_budget : unit -> int

val set_respawn_budget : int -> unit

(** Chaos injection probability in [0, 1].  [QDP_CHAOS]; default [0.].
    With probability [p] {e per shard attempt} (decided from
    [(chaos_seed, shard, attempt)]) the worker crashes before
    acknowledging, hangs after acknowledging, or replies with a
    corrupt frame — exercising every recovery path while the final
    output stays byte-identical. *)
val chaos : unit -> float

(** @raise Invalid_argument unless [0. <= p <= 1.]. *)
val set_chaos : float -> unit

(** Seed for the chaos schedule.  [QDP_CHAOS_SEED]; default [42]. *)
val chaos_seed : unit -> int

val set_chaos_seed : int -> unit

(** {2 Execution} *)

(** Shard accounting for the most recent {!map_shards} region. *)
type report = {
  rp_label : string;
  rp_workers : int;  (** workers actually forked (0 = in-process) *)
  rp_shards : int;
  rp_from_workers : int;  (** shards answered over the pipe *)
  rp_in_process : int;  (** shards computed by the coordinator *)
  rp_retries : int;  (** shard reassignments after a failure *)
  rp_crashes : int;  (** workers that died mid-shard *)
  rp_hangs : int;  (** workers killed for missing a deadline *)
  rp_corrupt : int;  (** corrupt frames detected (CRC/decode) *)
  rp_duplicates : int;  (** late results for already-done shards *)
  rp_respawns : int;  (** replacement workers forked *)
  rp_degraded : int;  (** shards past their attempt budget *)
  rp_fallback : bool;  (** whole region ran in-process *)
}

(** Report for the last completed {!map_shards} call on this domain,
    if any — a test/diagnostics hook. *)
val last_report : unit -> report option

(** [map_shards ?label ~n f] is [Array.init n f] computed under the
    supervision scheme above.  [f] must be pure, self-seeded per
    index, and its results marshalable plain data (no closures).
    Exceptions raised by [f] keep sequential semantics: the failing
    shard is re-run in-process so the original exception propagates.
    In-process execution (fallback or [workers () = 0]) delegates to
    [Qdp_par.parallel_map_array ~chunk:1], byte-identical to the
    pre-dist call sites. *)
val map_shards : ?label:string -> n:int -> (int -> 'r) -> 'r array

(** Drop-in for [Qdp_par.monte_carlo_hits]: same chunking, same
    in-chunk-order state splitting off [st] (so [st] advances
    identically), with the chunk evaluations sharded over worker
    processes.  Byte-identical results — and caller state — at every
    [--jobs]/[--workers] combination. *)
val monte_carlo_hits :
  ?label:string ->
  st:Random.State.t ->
  trials:int ->
  (Random.State.t -> bool) ->
  int
