open Qdp_linalg
open Qdp_codes

type t = { code : Linear_code.t }

let make code = { code }

(* [standard] is deterministic in (seed, n), and attack searches /
   repeated instance builds call it with the same few keys over and
   over — memoize the constructed family.  The table is tiny (a code
   per distinct key); a size cap bounds pathological sweeps. *)
let cache_hits = Qdp_obs.Metrics.counter "fingerprint.cache.hits"
let cache_misses = Qdp_obs.Metrics.counter "fingerprint.cache.misses"
let standard_cache : (int * int, t) Hashtbl.t = Hashtbl.create 64
let standard_cache_limit = 512

let standard ~seed ~n =
  let key = (seed, n) in
  match Hashtbl.find_opt standard_cache key with
  | Some fp ->
      Qdp_obs.Metrics.incr cache_hits;
      fp
  | None ->
      Qdp_obs.Metrics.incr cache_misses;
      let fp = { code = Linear_code.random ~seed ~n ~m:(8 * n) } in
      if Hashtbl.length standard_cache >= standard_cache_limit then
        Hashtbl.reset standard_cache;
      Hashtbl.add standard_cache key fp;
      fp

let code fp = fp.code
let input_bits fp = Linear_code.message_length fp.code
let dim fp = 2 * Linear_code.block_length fp.code

let ceil_log2 d =
  let rec bits acc k = if k <= 1 then acc else bits (acc + 1) ((k + 1) / 2) in
  bits 0 d

let qubits fp = ceil_log2 (dim fp)
let qubits_of_n n = ceil_log2 (2 * 8 * n)

let state fp x =
  if Gf2.length x <> input_bits fp then invalid_arg "Fingerprint.state: length";
  let m = Linear_code.block_length fp.code in
  let cw = Linear_code.encode fp.code x in
  let amp = 1. /. Float.sqrt (float_of_int m) in
  let v = Vec.create (2 * m) in
  for i = 0 to m - 1 do
    let bit = if Gf2.get cw i then 1 else 0 in
    Vec.set v ((2 * i) + bit) (Cx.re amp)
  done;
  v

let overlap fp x y =
  let m = Linear_code.block_length fp.code in
  let d =
    Gf2.hamming_distance (Linear_code.encode fp.code x)
      (Linear_code.encode fp.code y)
  in
  1. -. (float_of_int d /. float_of_int m)

let accept_prob fp y psi =
  if Vec.dim psi <> dim fp then invalid_arg "Fingerprint.accept_prob: dim";
  Cx.norm2 (Vec.dot (state fp y) psi)

let bot_state fp = Vec.basis (dim fp) 1
