open Qdp_linalg
open Qdp_codes

type t = { code : Linear_code.t }

let make code = { code }

(* [standard] is deterministic in (seed, n), and attack searches /
   repeated instance builds call it with the same few keys over and
   over — memoize the constructed family.  The table is shared across
   domains, so every lookup/insert holds [cache_lock]; the code
   construction itself runs unlocked (two domains racing on a fresh
   key both build the same code, and the loser adopts the winner's
   copy).  At the size cap one arbitrary binding is evicted, not the
   whole table, so hot keys survive a sweep over many cold ones. *)
let cache_hits = Qdp_obs.Metrics.counter "fingerprint.cache.hits"
let cache_misses = Qdp_obs.Metrics.counter "fingerprint.cache.misses"
let cache_lock = Mutex.create ()
let standard_cache : (int * int, t) Hashtbl.t = Hashtbl.create 64
let standard_cache_limit = 512

let evict_one () =
  match Hashtbl.fold (fun k _ _ -> Some k) standard_cache None with
  | Some k -> Hashtbl.remove standard_cache k
  | None -> ()

let standard ~seed ~n =
  let key = (seed, n) in
  Mutex.lock cache_lock;
  match Hashtbl.find_opt standard_cache key with
  | Some fp ->
      Mutex.unlock cache_lock;
      Qdp_obs.Metrics.incr cache_hits;
      fp
  | None ->
      Mutex.unlock cache_lock;
      Qdp_obs.Metrics.incr cache_misses;
      let fp = { code = Linear_code.random ~seed ~n ~m:(8 * n) } in
      Mutex.lock cache_lock;
      let fp =
        match Hashtbl.find_opt standard_cache key with
        | Some racing_winner -> racing_winner
        | None ->
            if Hashtbl.length standard_cache >= standard_cache_limit then
              evict_one ();
            Hashtbl.add standard_cache key fp;
            fp
      in
      Mutex.unlock cache_lock;
      fp

let code fp = fp.code
let input_bits fp = Linear_code.message_length fp.code
let dim fp = 2 * Linear_code.block_length fp.code

let ceil_log2 d =
  let rec bits acc k = if k <= 1 then acc else bits (acc + 1) ((k + 1) / 2) in
  bits 0 d

let qubits fp = ceil_log2 (dim fp)
let qubits_of_n n = ceil_log2 (2 * 8 * n)

let state fp x =
  if Gf2.length x <> input_bits fp then invalid_arg "Fingerprint.state: length";
  let m = Linear_code.block_length fp.code in
  let cw = Linear_code.encode fp.code x in
  let amp = 1. /. Float.sqrt (float_of_int m) in
  let v = Vec.create (2 * m) in
  for i = 0 to m - 1 do
    let bit = if Gf2.get cw i then 1 else 0 in
    Vec.set v ((2 * i) + bit) (Cx.re amp)
  done;
  v

let overlap fp x y =
  let m = Linear_code.block_length fp.code in
  let d =
    Gf2.hamming_distance (Linear_code.encode fp.code x)
      (Linear_code.encode fp.code y)
  in
  1. -. (float_of_int d /. float_of_int m)

let accept_prob fp y psi =
  if Vec.dim psi <> dim fp then invalid_arg "Fingerprint.accept_prob: dim";
  Cx.norm2 (Vec.dot (state fp y) psi)

let bot_state fp = Vec.basis (dim fp) 1
