(** Quantum fingerprints (Buhrman-Cleve-Watrous-de Wolf) and the
    one-way EQ protocol [pi] of Section 2.2.1.

    The fingerprint of [x] under a code [E] of block length [m] is
    [|h_x> = (1/sqrt m) sum_i |i>|E(x)_i>], a state of [ceil(log m) + 1]
    qubits.  Distinct inputs have overlap [<h_x|h_y> = 1 - d_H(Ex, Ey)/m
    <= 1 - delta], so the one-way protocol — Alice sends [|h_x>], Bob
    measures [{|h_y><h_y|, I - |h_y><h_y|}] — accepts [x = y] with
    probability 1 and [x <> y] with probability at most [(1 - delta)^2].

    States live in dimension [2 m] (index (x) bit), which need not be a
    power of two; the product-proof simulator works with arbitrary
    dimensions, and {!qubits} reports the qubit cost charged to the
    protocol. *)

open Qdp_linalg
open Qdp_codes

type t

(** [make code] builds a fingerprint family from a linear code. *)
val make : Linear_code.t -> t

(** [standard ~seed ~n] is the default family for [n]-bit inputs: a
    seeded random systematic code of rate 1/8 ([m = 8 n]), whose
    relative distance concentrates near 1/2 so the single-measurement
    soundness error [(1 - delta)^2] is ~1/4.

    Construction is memoized per [(seed, n)] — repeated instance
    builds in attack searches hit a process-wide cache (observable via
    the [fingerprint.cache.hits]/[fingerprint.cache.misses]
    counters).  The cache is mutex-guarded and safe to hit from
    concurrent domains; at capacity it evicts one binding at a time,
    so hot keys survive sweeps over many cold ones. *)
val standard : seed:int -> n:int -> t

(** [code fp] is the underlying code. *)
val code : t -> Linear_code.t

(** [input_bits fp] is [n]; [dim fp] is the state dimension [2 m]. *)
val input_bits : t -> int

val dim : t -> int

(** [qubits fp] is the proof-size accounting: [ceil (log2 (2 m))]. *)
val qubits : t -> int

(** [qubits_of_n n] is [qubits (standard ~seed ~n)] computed without
    materializing the code — used by cost-accounting sweeps over very
    large [n]. *)
val qubits_of_n : int -> int

(** [state fp x] is [|h_x>].
    @raise Invalid_argument if [Gf2.length x <> input_bits fp]. *)
val state : t -> Gf2.t -> Vec.t

(** [overlap fp x y] is [<h_x|h_y> = 1 - d_H(Ex, Ey)/m], computed
    directly from the codewords. *)
val overlap : t -> Gf2.t -> Gf2.t -> float

(** [accept_prob fp y psi] is the probability that Bob's measurement
    for input [y] accepts the (unit) state [psi]: [|<h_y|psi>|^2]. *)
val accept_prob : t -> Gf2.t -> Vec.t -> float

(** [bot_state fp] is the distinguished [|bot>] state the GT protocol
    sends when the claimed index is 0 (empty prefixes).  Only equality
    of two [|bot>] states is ever tested, so any fixed unit vector
    works; we use basis state 1. *)
val bot_state : t -> Vec.t
