(** Exact state-vector simulator over named quantum registers.

    This is the reference simulator of the repository: a single global
    pure state over all proof registers of a protocol run, on which
    arbitrary (including entangled) proofs, controlled swaps,
    symmetric-subspace projections and measurements are exact.  It is
    limited to ~20 qubits total, which covers paths of length up to ~5
    with toy fingerprints — enough to validate the scalable
    product-proof simulator and to exercise dQMA soundness against
    entangled proofs.

    Registers are named; qubit 0 of the first register is the most
    significant bit of the basis-state index. *)

open Qdp_linalg

(** A register layout: an ordered list of named registers with widths
    in qubits. *)
type layout

type t

(** [layout regs] builds a layout.
    @raise Invalid_argument on duplicate names or non-positive
    widths. *)
val layout : (string * int) list -> layout

(** [layout_registers l] lists the (name, width) pairs in order. *)
val layout_registers : layout -> (string * int) list

(** [total_qubits l] is the sum of widths. *)
val total_qubits : layout -> int

(** [zero l] is [|0...0>]. *)
val zero : layout -> t

(** [product l states] initializes each named register with the given
    pure state (dimension [2^width]); unnamed registers start in
    [|0...0>].
    @raise Invalid_argument on dimension mismatch. *)
val product : layout -> (string * Vec.t) list -> t

(** [of_global l v] wraps a full state vector of dimension
    [2^(total_qubits l)] — used to install entangled proofs. *)
val of_global : layout -> Vec.t -> t

(** [get_layout s] / [dim s] / [global_vector s]. *)
val get_layout : t -> layout

val dim : t -> int
val global_vector : t -> Vec.t

(** [register_width s name] is the width of the named register.
    @raise Invalid_argument naming the unknown register and the
    layout's registers if absent — as does every operation below that
    takes register names. *)
val register_width : t -> string -> int

(** [norm2 s] is the squared norm of the global state (1 for
    normalized states, less after an unnormalized projection). *)
val norm2 : t -> float

(** [normalize s] rescales to unit norm.
    @raise Invalid_argument on (numerically) zero states. *)
val normalize : t -> t

(** [inner a b] is the global inner product [<a|b>]. *)
val inner : t -> t -> Cx.t

(** [apply_on s names m] applies the operator [m] (of dimension
    [2^k x 2^k] where [k] is the summed width of [names]) to the
    concatenation of the named registers, identity elsewhere.  [m] need
    not be unitary (projectors are applied the same way). *)
val apply_on : t -> string list -> Mat.t -> t

(** [permute_registers s names pi] applies the permutation unitary
    [U_pi] to the listed equal-width registers:
    slot [l] of the result holds the previous contents of slot
    [pi^{-1} l]. *)
val permute_registers : t -> string array -> int array -> t

(** [swap_registers s a b] exchanges the contents of two equal-width
    registers. *)
val swap_registers : t -> string -> string -> t

(** [controlled_swap s ~control a b] applies a swap of [a] and [b]
    controlled on the 1-qubit register [control]. *)
val controlled_swap : t -> control:string -> string -> string -> t

(** [project_sym s names] applies the symmetric-subspace projector
    [(1/k!) sum_pi U_pi] over the listed equal-width registers,
    returning the (generally unnormalized) projected state.  Its
    squared norm is the permutation-test acceptance probability. *)
val project_sym : t -> string list -> t

(** [prob_of_outcome s name v] is the probability that measuring
    register [name] in the computational basis yields [v]. *)
val prob_of_outcome : t -> string -> int -> float

(** [measure st s name] samples a computational-basis outcome of the
    named register and returns it with the collapsed, renormalized
    state. *)
val measure : Random.State.t -> t -> string -> int * t

(** [reduced_density s names] is the reduced density matrix of the
    listed registers (partial trace over everything else), of dimension
    [2^k x 2^k]. *)
val reduced_density : t -> string list -> Mat.t

(** {2 Batched execution}

    A batch is [count] global states over the same layout pushed
    through the circuit together — the map proof [->] final state is
    linear, so running all basis proofs as one [2^total x count]
    column batch replaces [count] full circuit passes (and their
    per-pass temporaries) with one blocked sweep of blits and batched
    GEMMs.  Every kernel computes each output cell with a fixed
    accumulation order, so results are bit-identical at every [--jobs]
    value. *)

type batch

(** [batch_of_global l b] wraps a column batch of dimension
    [2^(total_qubits l)] — each column an (arbitrary, possibly
    entangled) global state.
    @raise Invalid_argument on dimension mismatch. *)
val batch_of_global : layout -> Batch.t -> batch

(** [batch_of_states l states] packs single states over layout [l] as
    the columns of a batch.
    @raise Invalid_argument on an empty list or a layout mismatch. *)
val batch_of_states : layout -> t list -> batch

(** [batch_layout b] / [batch_data b] / [batch_count b] expose the
    layout, the underlying column batch, and the column count. *)
val batch_layout : batch -> layout

val batch_data : batch -> Batch.t
val batch_count : batch -> int

(** [batch_column b c] extracts column [c] as a single state. *)
val batch_column : batch -> int -> t

(** [apply_on_batch b names m] is {!apply_on} on every column at once:
    rows of the batch are gathered per rest-subspace value into a
    reused [2^k x count] scratch pair and multiplied as one GEMM. *)
val apply_on_batch : batch -> string list -> Mat.t -> batch

(** [permute_registers_batch b names pi] is {!permute_registers} on
    every column (contiguous row blits). *)
val permute_registers_batch : batch -> string array -> int array -> batch

(** [controlled_swap_batch b ~control a b'] is {!controlled_swap} on
    every column. *)
val controlled_swap_batch : batch -> control:string -> string -> string -> batch

(** [project_sym_batch b names] is {!project_sym} on every column,
    fused: all [k!] permutations accumulate into a single output batch
    instead of materializing [k!] full-dimension temporaries. *)
val project_sym_batch : batch -> string list -> batch
