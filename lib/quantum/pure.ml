open Qdp_linalg

type layout = {
  names : string array;
  widths : int array;
  offsets : int array;
  total : int;
}

type t = { lay : layout; vec : Vec.t }

let layout regs =
  let n = List.length regs in
  let names = Array.make n "" and widths = Array.make n 0 in
  List.iteri
    (fun i (name, w) ->
      if w <= 0 then invalid_arg "Pure.layout: non-positive width";
      names.(i) <- name;
      widths.(i) <- w)
    regs;
  let tbl = Hashtbl.create n in
  Array.iter
    (fun name ->
      if Hashtbl.mem tbl name then invalid_arg "Pure.layout: duplicate register";
      Hashtbl.add tbl name ())
    names;
  let offsets = Array.make n 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- !acc;
    acc := !acc + widths.(i)
  done;
  { names; widths; offsets; total = !acc }

let layout_registers l =
  Array.to_list (Array.mapi (fun i name -> (name, l.widths.(i))) l.names)

let total_qubits l = l.total

let index_of_name l name =
  let rec find i =
    if i >= Array.length l.names then
      invalid_arg
        (Printf.sprintf "Pure: unknown register %S (layout has %s)" name
           (String.concat ", "
              (Array.to_list (Array.map (Printf.sprintf "%S") l.names))))
    else if String.equal l.names.(i) name then i
    else find (i + 1)
  in
  find 0

(* Global qubit positions (0 = most significant) of a register. *)
let positions_of_register l i =
  List.init l.widths.(i) (fun k -> l.offsets.(i) + k)

let positions_of_names l names =
  List.concat_map (fun n -> positions_of_register l (index_of_name l n)) names

let zero l = { lay = l; vec = Vec.basis (1 lsl l.total) 0 }

let product l states =
  let n = Array.length l.names in
  let parts =
    Array.to_list
      (Array.init n (fun i ->
           match List.assoc_opt l.names.(i) states with
           | None -> Vec.basis (1 lsl l.widths.(i)) 0
           | Some v ->
               if Vec.dim v <> 1 lsl l.widths.(i) then
                 invalid_arg
                   (Printf.sprintf "Pure.product: register %s expects dim %d"
                      l.names.(i)
                      (1 lsl l.widths.(i)));
               v))
  in
  List.iter
    (fun (name, _) ->
      if not (Array.exists (String.equal name) l.names) then
        invalid_arg (Printf.sprintf "Pure.product: unknown register %s" name))
    states;
  { lay = l; vec = Vec.tensor_list parts }

let of_global l v =
  if Vec.dim v <> 1 lsl l.total then invalid_arg "Pure.of_global: dimension";
  { lay = l; vec = v }

let get_layout s = s.lay
let dim s = Vec.dim s.vec
let global_vector s = s.vec
let register_width s name = s.lay.widths.(index_of_name s.lay name)

let norm2 s =
  let n = Vec.norm s.vec in
  n *. n

let normalize s = { s with vec = Vec.normalize s.vec }
let inner a b = Vec.dot a.vec b.vec

(* Scatter/gather between a packed sub-value over selected qubit
   positions (listed most-significant-first) and global indices. *)
let bit_of_position total p = 1 lsl (total - 1 - p)

let scatter total positions =
  let k = List.length positions in
  let masks = Array.of_list (List.map (bit_of_position total) positions) in
  fun value ->
    let g = ref 0 in
    for t = 0 to k - 1 do
      if (value lsr (k - 1 - t)) land 1 = 1 then g := !g lor masks.(t)
    done;
    !g

let rest_positions total positions =
  let selected = Array.make total false in
  List.iter (fun p -> selected.(p) <- true) positions;
  List.filter (fun p -> not selected.(p)) (List.init total (fun p -> p))

(* Shared shape of the single-state and batched local-operator
   kernels: the scatter tables for the selected positions and their
   complement. *)
let local_op_tables lay positions k m =
  if Mat.rows m <> 1 lsl k || Mat.cols m <> 1 lsl k then
    invalid_arg "Pure.apply_on: operator dimension mismatch";
  let total = lay.total in
  let sel_scatter = scatter total positions in
  let rest = rest_positions total positions in
  let rest_scatter = scatter total rest in
  let subdim = 1 lsl k in
  let sel_index = Array.init subdim sel_scatter in
  (sel_index, rest_scatter, subdim, 1 lsl List.length rest)

let apply_on s names m =
  let positions = positions_of_names s.lay names in
  let k = List.length positions in
  let sel_index, rest_scatter, subdim, restdim =
    local_op_tables s.lay positions k m
  in
  let out = Vec.create (Vec.dim s.vec) in
  (* One gather buffer and one result buffer, reused across every
     rest-subspace iteration — the kernel allocates nothing inside the
     loop. *)
  let sub = Vec.create subdim and res = Vec.create subdim in
  let vr = Vec.raw_re s.vec and vi = Vec.raw_im s.vec in
  let outr = Vec.raw_re out and outi = Vec.raw_im out in
  let subr = Vec.raw_re sub and subi = Vec.raw_im sub in
  let resr = Vec.raw_re res and resi = Vec.raw_im res in
  for rv = 0 to restdim - 1 do
    let base = rest_scatter rv in
    for a = 0 to subdim - 1 do
      let g = base lor sel_index.(a) in
      subr.(a) <- vr.(g);
      subi.(a) <- vi.(g)
    done;
    Mat.apply_into m sub ~dst:res;
    for a = 0 to subdim - 1 do
      let g = base lor sel_index.(a) in
      outr.(g) <- resr.(a);
      outi.(g) <- resi.(a)
    done
  done;
  { s with vec = out }

(* Field extraction for a register: value and a writer. *)
let field_mask_shift l i =
  let w = l.widths.(i) in
  let shift = l.total - l.offsets.(i) - w in
  (((1 lsl w) - 1) lsl shift, shift)

(* Equal-width register slots to permute: their field masks/shifts,
   validated once.  [perm_index_map] turns a permutation of the slots
   into the allocation-free global-index map [g -> g']: slot [slot] of
   the image holds the field read from slot [inv pi slot]. *)
let perm_slots l names =
  let idxs = Array.map (index_of_name l) names in
  let w0 = l.widths.(idxs.(0)) in
  Array.iter
    (fun i ->
      if l.widths.(i) <> w0 then
        invalid_arg "Pure.permute_registers: width mismatch")
    idxs;
  Array.map (field_mask_shift l) idxs

let perm_index_map ms pi =
  let k = Array.length ms in
  if Array.length pi <> k then invalid_arg "Pure.permute_registers: perm size";
  let inv = Symmetric.inverse pi in
  let clear_mask = Array.fold_left (fun acc (m, _) -> acc lor m) 0 ms |> lnot in
  fun g ->
    let g' = ref (g land clear_mask) in
    for slot = 0 to k - 1 do
      let m_src, sh_src = ms.(inv.(slot)) in
      let _, sh_dst = ms.(slot) in
      g' := !g' lor (((g land m_src) lsr sh_src) lsl sh_dst)
    done;
    !g'

let permute_registers s names pi =
  let map = perm_index_map (perm_slots s.lay names) pi in
  let out = Vec.create (Vec.dim s.vec) in
  let vr = Vec.raw_re s.vec and vi = Vec.raw_im s.vec in
  let outr = Vec.raw_re out and outi = Vec.raw_im out in
  for g = 0 to Vec.dim s.vec - 1 do
    let g' = map g in
    outr.(g') <- vr.(g);
    outi.(g') <- vi.(g)
  done;
  { s with vec = out }

let swap_registers s a b = permute_registers s [| a; b |] [| 1; 0 |]

let cswap_index_map l ~control a b =
  let ci = index_of_name l control in
  if l.widths.(ci) <> 1 then invalid_arg "Pure.controlled_swap: control width";
  let cmask, _ = field_mask_shift l ci in
  let ia = index_of_name l a and ib = index_of_name l b in
  if l.widths.(ia) <> l.widths.(ib) then
    invalid_arg "Pure.controlled_swap: width mismatch";
  let ma, sha = field_mask_shift l ia in
  let mb, shb = field_mask_shift l ib in
  fun g ->
    if g land cmask = 0 then g
    else
      let fa = (g land ma) lsr sha and fb = (g land mb) lsr shb in
      g land lnot (ma lor mb) lor (fb lsl sha) lor (fa lsl shb)

let controlled_swap s ~control a b =
  let map = cswap_index_map s.lay ~control a b in
  let out = Vec.create (Vec.dim s.vec) in
  let vr = Vec.raw_re s.vec and vi = Vec.raw_im s.vec in
  let outr = Vec.raw_re out and outi = Vec.raw_im out in
  for g = 0 to Vec.dim s.vec - 1 do
    let g' = map g in
    outr.(g') <- vr.(g);
    outi.(g') <- vi.(g)
  done;
  { s with vec = out }

(* Fused symmetrizer: all k! permutations accumulate straight into one
   output vector — no per-permutation full-dimension temporaries. *)
let project_sym s names =
  let arr = Array.of_list names in
  let ms = perm_slots s.lay arr in
  let perms = Symmetric.permutations (Array.length arr) in
  let fact = float_of_int (List.length perms) in
  let acc = Vec.create (Vec.dim s.vec) in
  let vr = Vec.raw_re s.vec and vi = Vec.raw_im s.vec in
  let accr = Vec.raw_re acc and acci = Vec.raw_im acc in
  List.iter
    (fun pi ->
      let map = perm_index_map ms pi in
      for g = 0 to Vec.dim s.vec - 1 do
        let g' = map g in
        accr.(g') <- accr.(g') +. vr.(g);
        acci.(g') <- acci.(g') +. vi.(g)
      done)
    perms;
  Vec.scale_inplace (Cx.re (1. /. fact)) acc;
  { s with vec = acc }

let outcome_probabilities s name =
  let l = s.lay in
  let i = index_of_name l name in
  let m, sh = field_mask_shift l i in
  let probs = Array.make (1 lsl l.widths.(i)) 0. in
  let vr = Vec.raw_re s.vec and vi = Vec.raw_im s.vec in
  for g = 0 to Vec.dim s.vec - 1 do
    let v = (g land m) lsr sh in
    probs.(v) <- probs.(v) +. (vr.(g) *. vr.(g)) +. (vi.(g) *. vi.(g))
  done;
  probs

let prob_of_outcome s name v =
  let probs = outcome_probabilities s name in
  if v < 0 || v >= Array.length probs then 0. else probs.(v)

let measure st s name =
  let probs = outcome_probabilities s name in
  let total = Array.fold_left ( +. ) 0. probs in
  if total <= 0. then invalid_arg "Pure.measure: zero state";
  let x = Random.State.float st total in
  let outcome = ref (Array.length probs - 1) in
  let acc = ref 0. in
  (try
     Array.iteri
       (fun v p ->
         acc := !acc +. p;
         if !acc >= x then begin
           outcome := v;
           raise Exit
         end)
       probs
   with Exit -> ());
  let l = s.lay in
  let i = index_of_name l name in
  let m, sh = field_mask_shift l i in
  let out = Vec.create (Vec.dim s.vec) in
  let vr = Vec.raw_re s.vec and vi = Vec.raw_im s.vec in
  let outr = Vec.raw_re out and outi = Vec.raw_im out in
  for g = 0 to Vec.dim s.vec - 1 do
    if (g land m) lsr sh = !outcome then begin
      outr.(g) <- vr.(g);
      outi.(g) <- vi.(g)
    end
  done;
  (!outcome, normalize { s with vec = out })

(* ------------------------------------------------------------------ *)
(* Batched execution: a [2^total x count] column batch pushed through  *)
(* the same circuit in one blocked sweep.  The batch layout keeps      *)
(* entry [g] of every column contiguous, so every index remap is an    *)
(* [Array.blit] of [count] floats and the local-operator kernel is a   *)
(* GEMM over a reused [subdim x count] scratch pair.  All kernels      *)
(* compute each output cell with a fixed accumulation order, so the    *)
(* results are bit-identical at every job count.                       *)
(* ------------------------------------------------------------------ *)

type batch = { blay : layout; data : Batch.t }

let batch_of_global l b =
  if Batch.dim b <> 1 lsl l.total then invalid_arg "Pure.batch_of_global: dimension";
  { blay = l; data = b }

let batch_of_states l states =
  match states with
  | [] -> invalid_arg "Pure.batch_of_states: empty"
  | s0 :: rest ->
      List.iter
        (fun s ->
          if s.lay != l && s.lay <> l then
            invalid_arg "Pure.batch_of_states: layout mismatch")
        (s0 :: rest);
      {
        blay = l;
        data = Batch.of_cols (Array.of_list (List.map global_vector states));
      }

let batch_layout b = b.blay
let batch_data b = b.data
let batch_count b = Batch.count b.data
let batch_column b c = { lay = b.blay; vec = Batch.col b.data c }

(* Remap rows of the batch along an index map [g -> g']; the map must
   be injective (a permutation of the basis), as for register
   permutations and controlled swaps. *)
let remap_batch b map =
  let count = Batch.count b.data in
  let dim = Batch.dim b.data in
  let out = Batch.create dim count in
  for g = 0 to dim - 1 do
    Batch.blit_row b.data g out (map g)
  done;
  { b with data = out }

let apply_on_batch b names m =
  let positions = positions_of_names b.blay names in
  let k = List.length positions in
  let sel_index, rest_scatter, subdim, restdim =
    local_op_tables b.blay positions k m
  in
  let count = Batch.count b.data in
  let dim = Batch.dim b.data in
  let out = Batch.create dim count in
  let sub = Batch.create subdim count and res = Batch.create subdim count in
  for rv = 0 to restdim - 1 do
    let base = rest_scatter rv in
    for a = 0 to subdim - 1 do
      Batch.blit_row b.data (base lor sel_index.(a)) sub a
    done;
    Batch.apply_into m ~src:sub ~dst:res;
    for a = 0 to subdim - 1 do
      Batch.blit_row res a out (base lor sel_index.(a))
    done
  done;
  { b with data = out }

let permute_registers_batch b names pi =
  remap_batch b (perm_index_map (perm_slots b.blay names) pi)

let controlled_swap_batch b ~control x y =
  remap_batch b (cswap_index_map b.blay ~control x y)

(* Fused batched symmetrizer: every permutation accumulates row-adds
   into the single output batch. *)
let project_sym_batch b names =
  let arr = Array.of_list names in
  let ms = perm_slots b.blay arr in
  let perms = Symmetric.permutations (Array.length arr) in
  let fact = float_of_int (List.length perms) in
  let count = Batch.count b.data in
  let dim = Batch.dim b.data in
  let acc = Batch.create dim count in
  List.iter
    (fun pi ->
      let map = perm_index_map ms pi in
      for g = 0 to dim - 1 do
        Batch.accumulate_row b.data g acc (map g)
      done)
    perms;
  Batch.scale_real_inplace (1. /. fact) acc;
  { b with data = acc }

let reduced_density s names =
  let total = s.lay.total in
  let positions = positions_of_names s.lay names in
  let k = List.length positions in
  let sel_scatter = scatter total positions in
  let rest = rest_positions total positions in
  let rest_scatter = scatter total rest in
  let subdim = 1 lsl k in
  let sel_index = Array.init subdim sel_scatter in
  let rho = Mat.create subdim subdim in
  let vr = Vec.raw_re s.vec and vi = Vec.raw_im s.vec in
  for rv = 0 to (1 lsl List.length rest) - 1 do
    let base = rest_scatter rv in
    for a = 0 to subdim - 1 do
      let ga = base lor sel_index.(a) in
      let ar = vr.(ga) and ai = vi.(ga) in
      if ar <> 0. || ai <> 0. then
        for b = 0 to subdim - 1 do
          let gb = base lor sel_index.(b) in
          let br = vr.(gb) and bi = vi.(gb) in
          (* rho[a,b] += psi_a * conj psi_b *)
          let prev = Mat.get rho a b in
          Mat.set rho a b
            (Cx.add prev
               {
                 Complex.re = (ar *. br) +. (ai *. bi);
                 im = (ai *. br) -. (ar *. bi);
               })
        done
    done
  done;
  rho
