open Qdp_linalg

let check_dim ~d ~k n =
  let expected =
    int_of_float (Float.round (Float.pow (float_of_int d) (float_of_int k)))
  in
  if n <> expected then invalid_arg "Permutation_test: dimension mismatch"

(* The executed test kernels live in [Qdp_core.Sim] (perm_accept /
   path_accept / swap_accept) and are instrumented there; the analytic
   helpers here are exercised only by the unit tests, so they carry no
   metrics. *)

let accept_prob_pure ~d ~k psi =
  check_dim ~d ~k (Vec.dim psi);
  let p = Symmetric.apply_projector ~d ~k psi in
  let n = Vec.norm p in
  n *. n

let accept_prob_density ~d ~k rho =
  check_dim ~d ~k (Mat.rows rho);
  let proj = Symmetric.projector ~d ~k in
  (Mat.trace (Mat.mul proj rho)).Complex.re

let accept_prob_product states =
  let arr = Array.of_list states in
  let k = Array.length arr in
  if k = 0 then invalid_arg "Permutation_test.accept_prob_product: empty";
  let overlaps =
    Array.init k (fun i -> Array.init k (fun j -> Vec.dot arr.(i) arr.(j)))
  in
  let perms = Symmetric.permutations k in
  let acc = ref Cx.zero in
  List.iter
    (fun pi ->
      let inv = Symmetric.inverse pi in
      let prod = ref Cx.one in
      for l = 0 to k - 1 do
        prod := Cx.mul !prod overlaps.(l).(inv.(l))
      done;
      acc := Cx.add !acc !prod)
    perms;
  (Cx.scale (1. /. float_of_int (List.length perms)) !acc).Complex.re

let post_accept_pure ~d ~k psi =
  check_dim ~d ~k (Vec.dim psi);
  let p = Symmetric.apply_projector ~d ~k psi in
  if Vec.norm p <= 1e-12 then
    invalid_arg "Permutation_test.post_accept_pure: zero acceptance";
  Vec.normalize p

let pairwise_distance_bound eps = (2. *. Float.sqrt eps) +. eps
