open Qdp_linalg

let pair_dim psi =
  let n = Vec.dim psi in
  let d = int_of_float (Float.round (Float.sqrt (float_of_int n))) in
  if d * d <> n then invalid_arg "Swap_test: state is not on C^d (x) C^d";
  d

let accept_prob_product a b =
  if Vec.dim a <> Vec.dim b then invalid_arg "Swap_test: dimension mismatch";
  let ov = Cx.norm2 (Vec.dot a b) in
  (1. +. ov) /. 2.

let apply_sym psi =
  let d = pair_dim psi in
  let swapped = Mat.apply (Mat.swap_gate d) psi in
  Vec.scale (Cx.re 0.5) (Vec.add psi swapped)

let accept_prob_pure psi =
  let p = apply_sym psi in
  let n = Vec.norm p in
  n *. n

let accept_prob_density rho =
  let n = Mat.rows rho in
  let d = int_of_float (Float.round (Float.sqrt (float_of_int n))) in
  if d * d <> n then invalid_arg "Swap_test: density not on C^d (x) C^d";
  let sym =
    Mat.scale (Cx.re 0.5) (Mat.add (Mat.identity n) (Mat.swap_gate d))
  in
  (Mat.trace (Mat.mul sym rho)).Complex.re

let post_accept_pure psi =
  let p = apply_sym psi in
  if Vec.norm p <= 1e-12 then
    invalid_arg "Swap_test.post_accept_pure: zero acceptance";
  Vec.normalize p

let circuit_accept_prob psi =
  let d = pair_dim psi in
  let n = Vec.dim psi in
  let h_anc = Mat.tensor Gates.hadamard (Mat.identity n) in
  let circuit = Mat.mul h_anc (Mat.mul (Gates.cswap d) h_anc) in
  let full = Vec.tensor (Vec.basis 2 0) psi in
  let out = Mat.apply circuit full in
  (* probability that the ancilla (most significant factor) reads 0 *)
  let p = ref 0. in
  for k = 0 to n - 1 do
    p := !p +. Cx.norm2 (Vec.get out k)
  done;
  !p
