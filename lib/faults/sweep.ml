open Qdp_core
open Qdp_network

type config = {
  seed : int;
  trials : int;
  grid : float list;
  recovery : Plan.recovery;
  protocols : string list option;
  kinds : Plan.kind list option;
  turn : int option;
  spec : Registry.spec;
}

let default_grid ?(points = 11) ?(max_strength = 0.5) () =
  if points < 2 then invalid_arg "Sweep.default_grid: need >= 2 points";
  List.init points (fun i ->
      max_strength *. float_of_int i /. float_of_int (points - 1))

let default ~seed =
  {
    seed;
    trials = 200;
    grid = default_grid ();
    recovery = Plan.Reject_on_timeout;
    protocols = None;
    kinds = None;
    turn = None;
    spec = { Registry.default_spec with seed };
  }

type measure = {
  m_rate : Runtime.interval;
  m_strategy : string;
  m_errors : int;
  m_injected : int;
}

type point = {
  pt_strength : float;
  pt_completeness : measure option;
  pt_soundness : measure option;
  pt_sound : bool;
}

type curve = {
  cv_kind : Plan.kind;
  cv_points : point list;
  cv_monotone : bool;
  cv_sound : bool;
}

type proto = {
  pr_id : string;
  pr_name : string;
  pr_quantum_links : bool;
  pr_completeness_analytic : float;
  pr_soundness_bound : float;
  pr_curves : curve list;
}

type t = {
  sw_seed : int;
  sw_trials : int;
  sw_recovery : Plan.recovery;
  sw_turn : int option;
  sw_grid : float list;
  sw_protocols : proto list;
  sw_soundness_violations : int;
  sw_monotonicity_violations : int;
}

let violations sw = sw.sw_soundness_violations + sw.sw_monotonicity_violations

let obs_points = Qdp_obs.Metrics.counter "faults.points"
let obs_violations = Qdp_obs.Metrics.counter "faults.soundness_violations"

(* Statistical slack: a soundness observation only counts as a
   violation when the whole Wilson interval sits above the analytic
   bound. *)
let eps = 1e-9

let index_of x xs =
  let rec go i = function
    | [] -> -1
    | y :: ys -> if y = x then i else go (i + 1) ys
  in
  go 0 xs

(* Every RNG below derives from (seed, registry index, kind index,
   grid index, side, case index) so reruns are bit-identical and
   filtering protocols or kinds never shifts the seeds of what is
   still swept. *)
let case_measure cfg ~ids:(pi, ki, xi, side, ci) kind p
    (case : Registry.fault_case) =
  let proto_st = Random.State.make [| cfg.seed; pi; ki; xi; side; ci; 0 |] in
  let fault_st = Random.State.make [| cfg.seed; pi; ki; xi; side; ci; 1 |] in
  let env = Plan.env ?turn:cfg.turn kind ~strength:p ~st:fault_st in
  let hits = ref 0 and errors = ref 0 and injected = ref 0 in
  for _ = 1 to cfg.trials do
    let o = Plan.execute cfg.recovery (fun () -> case.fc_run proto_st env) in
    if o.accepted then incr hits;
    errors := !errors + o.protocol_errors;
    injected := !injected + o.injected
  done;
  {
    m_rate = Runtime.wilson ~hits:!hits ~trials:cfg.trials ();
    m_strategy = case.fc_strategy;
    m_errors = !errors;
    m_injected = !injected;
  }

let best_measure = function
  | [] -> None
  | m :: ms ->
      Some
        (List.fold_left
           (fun a b -> if b.m_rate.Runtime.point > a.m_rate.Runtime.point then b else a)
           m ms)

let sweep_point cfg ~ids:(pi, ki, xi) kind p (suite : Registry.fault_suite)
    ~bound =
  Qdp_obs.Metrics.incr obs_points;
  let completeness =
    match suite.fs_yes with
    | [] -> None
    | c :: _ -> Some (case_measure cfg ~ids:(pi, ki, xi, 0, 0) kind p c)
  in
  let soundness =
    best_measure
      (List.mapi
         (fun ci c -> case_measure cfg ~ids:(pi, ki, xi, 1, ci) kind p c)
         suite.fs_no)
  in
  let sound =
    match soundness with
    | None -> true
    | Some m -> m.m_rate.Runtime.lower <= bound +. eps
  in
  if not sound then Qdp_obs.Metrics.incr obs_violations;
  { pt_strength = p; pt_completeness = completeness;
    pt_soundness = soundness; pt_sound = sound }

(* Completeness must decay monotonically (up to overlapping confidence
   intervals): a later point whose whole interval sits above an earlier
   point's interval breaks the curve. *)
let monotone points =
  let rec go = function
    | ({ pt_completeness = Some a; _ } as _x)
      :: ({ pt_completeness = Some b; _ } as y) :: rest ->
        if b.m_rate.Runtime.lower > a.m_rate.Runtime.upper +. eps then false
        else go (y :: rest)
    | _ :: rest -> go rest
    | [] -> true
  in
  go points

let sweep_entry cfg ~pi entry =
  match Registry.fault_suite cfg.spec entry with
  | None -> None
  | Some suite ->
      Qdp_obs.Trace.with_span "faults.protocol"
        ~attrs:(fun () -> [ ("id", Qdp_obs.Trace.Str suite.fs_id) ])
      @@ fun () ->
      Qdp_obs.Prof.section suite.fs_id @@ fun () ->
      let bound =
        List.fold_left (fun acc c -> Float.max acc c.Registry.fc_analytic) 0.
          suite.fs_no
      in
      let completeness_analytic =
        match suite.fs_yes with
        | [] -> 0.
        | c :: _ -> c.Registry.fc_analytic
      in
      let kinds =
        match cfg.kinds with
        | None -> Plan.applicable ~quantum_links:suite.fs_quantum_links
        | Some ks ->
            List.filter
              (fun k ->
                List.mem k
                  (Plan.applicable ~quantum_links:suite.fs_quantum_links))
              ks
      in
      (* The kinds x strengths grid is embarrassingly parallel: every
         point re-seeds from its stable (protocol, kind, grid, side,
         case) indices (see [case_measure]), so measuring the
         flattened grid on the pool and regrouping into per-kind
         curves is bit-identical to the sequential double loop. *)
      let flat =
        Array.of_list
          (List.concat_map
             (fun kind ->
               let ki = index_of kind Plan.all in
               List.mapi (fun xi p -> (kind, ki, xi, p)) cfg.grid)
             kinds)
      in
      let progress =
        Qdp_obs.Progress.start ~total:(Array.length flat)
          ("faults/" ^ suite.fs_id)
      in
      let eval i =
        let kind, ki, xi, p = flat.(i) in
        let pt = sweep_point cfg ~ids:(pi, ki, xi) kind p suite ~bound in
        Qdp_obs.Progress.step progress;
        pt
      in
      let par =
        Qdp_model.decide ~kernel:"grid.sweep"
          ~macs:(float_of_int (Array.length flat))
          ~default:true
      in
      let measured =
        if (not par) && Qdp_dist.workers () = 0 then
          Array.init (Array.length flat) eval
        else
          Qdp_dist.map_shards
            ~label:("faults/" ^ suite.fs_id)
            ~n:(Array.length flat) eval
      in
      Qdp_obs.Progress.finish progress;
      let npoints = List.length cfg.grid in
      let curves =
        List.mapi
          (fun k kind ->
            let points =
              Array.to_list (Array.sub measured (k * npoints) npoints)
            in
            {
              cv_kind = kind;
              cv_points = points;
              cv_monotone = monotone points;
              cv_sound = List.for_all (fun pt -> pt.pt_sound) points;
            })
          kinds
      in
      Some
        {
          pr_id = suite.fs_id;
          pr_name = suite.fs_name;
          pr_quantum_links = suite.fs_quantum_links;
          pr_completeness_analytic = completeness_analytic;
          pr_soundness_bound = bound;
          pr_curves = curves;
        }

let run cfg =
  Qdp_obs.Trace.with_span "faults.sweep" @@ fun () ->
  Qdp_obs.Prof.section "fault_sweep" @@ fun () ->
  let entries = Registry.all () in
  let selected pi entry =
    let id = (Registry.info entry).Registry.info_id in
    ignore pi;
    match cfg.protocols with
    | None -> true
    | Some ids -> List.mem id ids
  in
  let protos =
    List.concat
      (List.mapi
         (fun pi entry ->
           if selected pi entry then
             match sweep_entry cfg ~pi entry with
             | Some p -> [ p ]
             | None -> []
           else [])
         entries)
  in
  let count f =
    List.fold_left
      (fun acc pr ->
        List.fold_left (fun acc cv -> acc + f cv) acc pr.pr_curves)
      0 protos
  in
  {
    sw_seed = cfg.seed;
    sw_trials = cfg.trials;
    sw_recovery = cfg.recovery;
    sw_turn = cfg.turn;
    sw_grid = cfg.grid;
    sw_protocols = protos;
    sw_soundness_violations =
      count (fun cv ->
          List.length (List.filter (fun pt -> not pt.pt_sound) cv.cv_points));
    sw_monotonicity_violations =
      count (fun cv -> if cv.cv_monotone then 0 else 1);
  }

(* ------------------------------------------------------------------ *)
(* Deterministic JSON                                                  *)
(* ------------------------------------------------------------------ *)

let fl x = Printf.sprintf "%.6f" x

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_measure name m =
  Printf.sprintf
    "\"%s\":{\"strategy\":\"%s\",\"rate\":%s,\"lower\":%s,\"upper\":%s,\"protocol_errors\":%d,\"injected\":%d}"
    name (escape m.m_strategy) (fl m.m_rate.Runtime.point)
    (fl m.m_rate.Runtime.lower) (fl m.m_rate.Runtime.upper) m.m_errors
    m.m_injected

let json_point pt =
  let fields =
    [ Printf.sprintf "\"p\":%s" (fl pt.pt_strength) ]
    @ (match pt.pt_completeness with
      | None -> []
      | Some m -> [ json_measure "completeness" m ])
    @ (match pt.pt_soundness with
      | None -> []
      | Some m -> [ json_measure "soundness" m ])
    @ [ Printf.sprintf "\"sound\":%b" pt.pt_sound ]
  in
  "{" ^ String.concat "," fields ^ "}"

let json_curve cv =
  Printf.sprintf
    "{\"kind\":\"%s\",\"monotone\":%b,\"sound\":%b,\"points\":[%s]}"
    (Plan.name cv.cv_kind) cv.cv_monotone cv.cv_sound
    (String.concat "," (List.map json_point cv.cv_points))

let json_proto pr =
  Printf.sprintf
    "{\"id\":\"%s\",\"name\":\"%s\",\"quantum_links\":%b,\"completeness_analytic\":%s,\"soundness_bound\":%s,\"curves\":[%s]}"
    (escape pr.pr_id) (escape pr.pr_name) pr.pr_quantum_links
    (fl pr.pr_completeness_analytic)
    (fl pr.pr_soundness_bound)
    (String.concat "," (List.map json_curve pr.pr_curves))

let to_json sw =
  let turn_field =
    match sw.sw_turn with
    | None -> ""
    | Some t -> Printf.sprintf "\"turn\":%d," t
  in
  Printf.sprintf
    "{\"seed\":%d,\"trials\":%d,\"recovery\":\"%s\",%s\"grid\":[%s],\"protocols\":[%s],\"soundness_violations\":%d,\"monotonicity_violations\":%d}\n"
    sw.sw_seed sw.sw_trials
    (escape (Plan.recovery_name sw.sw_recovery))
    turn_field
    (String.concat "," (List.map fl sw.sw_grid))
    (String.concat "," (List.map json_proto sw.sw_protocols))
    sw.sw_soundness_violations sw.sw_monotonicity_violations

let write_json path sw =
  let oc = open_out path in
  output_string oc (to_json sw);
  close_out oc

let pp_summary ppf sw =
  Format.fprintf ppf "fault sweep: seed %d, %d trials/point, recovery %s%s@,"
    sw.sw_seed sw.sw_trials
    (Plan.recovery_name sw.sw_recovery)
    (match sw.sw_turn with
    | None -> ""
    | Some t -> Printf.sprintf ", turn %d" t);
  List.iter
    (fun pr ->
      Format.fprintf ppf "@,%s (%s links, soundness bound %.4f):@," pr.pr_id
        (if pr.pr_quantum_links then "quantum" else "classical")
        pr.pr_soundness_bound;
      List.iter
        (fun cv ->
          let c_ends =
            match
              ( (List.hd cv.cv_points).pt_completeness,
                (List.hd (List.rev cv.cv_points)).pt_completeness )
            with
            | Some a, Some b ->
                Format.asprintf "completeness %.3f -> %.3f"
                  a.m_rate.Runtime.point b.m_rate.Runtime.point
            | _ -> "no completeness case"
          in
          Format.fprintf ppf "  %-11s %s%s%s@," (Plan.name cv.cv_kind) c_ends
            (if cv.cv_monotone then "" else "  NON-MONOTONE")
            (if cv.cv_sound then "" else "  SOUNDNESS VIOLATION"))
        pr.pr_curves)
    sw.sw_protocols;
  Format.fprintf ppf "@,%d soundness violation(s), %d monotonicity warning(s)@,"
    sw.sw_soundness_violations sw.sw_monotonicity_violations
