open Qdp_linalg
open Qdp_quantum

type t =
  | Depolarize of float
  | Dephase of float
  | Kraus of Mat.t list
  | Mix of float * t * t

let depolarize p =
  if p < 0. || p > 1. then invalid_arg "Noise.depolarize: p not in [0,1]";
  Depolarize p

let dephase p =
  if p < 0. || p > 1. then invalid_arg "Noise.dephase: p not in [0,1]";
  Dephase p

let of_channel ch = Kraus (Channel.kraus ch)

let mix p a b =
  if p < 0. || p > 1. then invalid_arg "Noise.mix: p not in [0,1]";
  Mix (p, a, b)

let rec name = function
  | Depolarize p -> Printf.sprintf "depolarize(%g)" p
  | Dephase p -> Printf.sprintf "dephase(%g)" p
  | Kraus ops -> Printf.sprintf "kraus(%d)" (List.length ops)
  | Mix (p, a, b) -> Printf.sprintf "mix(%g, %s, %s)" p (name a) (name b)

(* Sample a computational-basis index with probability |v_i|^2 / |v|^2. *)
let sample_basis st v =
  let re = Vec.raw_re v and im = Vec.raw_im v in
  let d = Array.length re in
  let total = ref 0. in
  for i = 0 to d - 1 do
    total := !total +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i))
  done;
  if !total <= 0. then invalid_arg "Noise.sample_basis: zero vector";
  let u = Random.State.float st !total in
  let acc = ref 0. and hit = ref (d - 1) in
  (try
     for i = 0 to d - 1 do
       acc := !acc +. (re.(i) *. re.(i)) +. (im.(i) *. im.(i));
       if u < !acc then begin
         hit := i;
         raise Exit
       end
     done
   with Exit -> ());
  !hit

(* One quantum trajectory of a Kraus decomposition on a pure state:
   branch [i] is taken with probability ||K_i v||^2 (normalized over the
   branches, so sub-normalized inputs are handled), and the
   post-selected state is renormalized. *)
let kraus_trajectory st ops v =
  let branches = List.map (fun k -> Mat.apply k v) ops in
  let weights = List.map (fun w -> let n = Vec.norm w in n *. n) branches in
  let total = List.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Noise.apply: Kraus branches annihilate state";
  let u = Random.State.float st total in
  let rec pick acc bs ws =
    match (bs, ws) with
    | [ b ], _ -> b
    | b :: bs, w :: ws -> if u < acc +. w then b else pick (acc +. w) bs ws
    | _ -> assert false
  in
  Vec.normalize (pick 0. branches weights)

let rec apply t st v =
  match t with
  | Depolarize p ->
      if Random.State.float st 1. < p then
        let d = Vec.dim v in
        Vec.basis d (Random.State.int st d)
      else v
  | Dephase p ->
      if Random.State.float st 1. < p then
        Vec.basis (Vec.dim v) (sample_basis st v)
      else v
  | Kraus ops -> kraus_trajectory st ops v
  | Mix (p, a, b) ->
      if Random.State.float st 1. < p then apply a st v else apply b st v

(* The completely-depolarizing channel rho -> tr(rho) I/d, as the d^2
   Kraus operators (1/sqrt d) |j><k|. *)
let replace_uniform d =
  let s = Cx.re (1. /. Float.sqrt (float_of_int d)) in
  let ops = ref [] in
  for j = d - 1 downto 0 do
    for k = d - 1 downto 0 do
      let m = Mat.create d d in
      Mat.set m j k s;
      ops := m :: !ops
    done
  done;
  Channel.of_kraus !ops

let rec to_channel ~dim = function
  | Depolarize p -> Channel.mix p (replace_uniform dim) (Channel.identity dim)
  | Dephase p -> Channel.mix p (Channel.dephase dim) (Channel.identity dim)
  | Kraus ops -> Channel.of_kraus ops
  | Mix (p, a, b) ->
      Channel.mix p (to_channel ~dim a) (to_channel ~dim b)
