(** Link noise as sampled quantum trajectories.

    The paper's soundness analyses survive channel noise for free: a
    CPTP map applied to a forwarded proof register composes with the
    (arbitrary) prover strategy into another valid strategy, and the
    trace distance contracts under channels (Fact 4) — so noise can
    only *lower* a cheating prover's acceptance, never raise it above
    the noiseless soundness bound.  This module realizes such noise on
    the pure-state payloads of the sampled backends by Monte-Carlo
    trajectory unwinding: each application samples one Kraus branch
    with the Born weights, so averaging over runs reproduces the
    channel exactly ({!to_channel} gives the density-matrix semantics
    the test suite validates against). *)

open Qdp_linalg
open Qdp_quantum

(** A noise model; built by the smart constructors below. *)
type t =
  | Depolarize of float
      (** w.p. [p] replace the register with a uniformly random
          computational basis state *)
  | Dephase of float
      (** w.p. [p] measure in the computational basis and forward the
          post-measurement state *)
  | Kraus of Mat.t list  (** sample a branch of an explicit Kraus family *)
  | Mix of float * t * t  (** apply the first model w.p. [p] *)

(** @raise Invalid_argument when [p] is outside [0,1]. *)
val depolarize : float -> t

(** @raise Invalid_argument when [p] is outside [0,1]. *)
val dephase : float -> t

(** [of_channel ch] samples trajectories of an arbitrary channel. *)
val of_channel : Channel.t -> t

(** [mix p a b] applies [a] w.p. [p], [b] otherwise.
    @raise Invalid_argument when [p] is outside [0,1]. *)
val mix : float -> t -> t -> t

(** A short display name, e.g. ["depolarize(0.1)"]. *)
val name : t -> string

(** [apply t st v] is one sampled trajectory of [t] on the (normalized)
    register [v]; the result is normalized.  Shaped to plug directly
    into {!Qdp_core.Fault_env.make}'s [qnoise]. *)
val apply : t -> Random.State.t -> Vec.t -> Vec.t

(** [to_channel ~dim t] is the exact CPTP map whose trajectory average
    {!apply} realizes on [dim]-dimensional registers — the validation
    target for the property tests. *)
val to_channel : dim:int -> t -> Channel.t
