open Qdp_network
open Qdp_core

type kind =
  | Drop
  | Duplicate
  | Flip
  | Depolarize
  | Dephase
  | Mixed
  | Crash
  | Omission
  | Babble

let all =
  [ Drop; Duplicate; Flip; Depolarize; Dephase; Mixed; Crash; Omission; Babble ]

let name = function
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Flip -> "flip"
  | Depolarize -> "depolarize"
  | Dephase -> "dephase"
  | Mixed -> "mixed"
  | Crash -> "crash"
  | Omission -> "omission"
  | Babble -> "babble"

let of_name s = List.find_opt (fun k -> name k = s) all

let applicable ~quantum_links =
  List.filter
    (fun k ->
      match k with
      | Flip -> not quantum_links
      | Depolarize | Dephase | Mixed -> quantum_links
      | Drop | Duplicate | Crash | Omission | Babble -> true)
    all

(* The node the per-node fault models target: node 1 exists in every
   realized topology (paths have >= 2 nodes, the star's node 1 is a
   leaf terminal). *)
let victim = 1

let spec ?turn kind ~strength:p =
  let link l = { Fault.none with default_link = l; turn } in
  let node m = { Fault.none with nodes = [ (victim, m) ]; turn } in
  match kind with
  | Drop -> link { Fault.perfect_link with drop = p }
  | Duplicate -> link { Fault.perfect_link with duplicate = p }
  (* payload corruption: the per-delivery probability lives in the
     noise model itself, so every forwarded register passes through a
     strength-p channel (corrupt = 1) *)
  | Flip -> link { Fault.perfect_link with corrupt = p }
  | Depolarize | Dephase | Mixed ->
      link { Fault.perfect_link with corrupt = 1. }
  | Crash -> node (Fault.Crash { from_round = 1; prob = p })
  | Omission -> node (Fault.Omit p)
  | Babble -> node (Fault.Babble p)

let noise kind ~strength:p =
  match kind with
  | Depolarize -> Some (Noise.depolarize p)
  | Dephase -> Some (Noise.dephase p)
  | Mixed -> Some (Noise.mix 0.5 (Noise.depolarize p) (Noise.dephase p))
  | Babble ->
      (* a babbled extra copy on a quantum link carries a fully
         scrambled register *)
      Some (Noise.depolarize 1.)
  | Drop | Duplicate | Flip | Crash | Omission -> None

let env ?turn kind ~strength ~st =
  let qnoise =
    Option.map (fun n -> Noise.apply n) (noise kind ~strength)
  in
  Fault_env.make ?qnoise ~st (spec ?turn kind ~strength)

(* ------------------------------------------------------------------ *)
(* Recovery semantics                                                  *)
(* ------------------------------------------------------------------ *)

type recovery =
  | Reject_on_timeout
  | Degraded_verdict
  | Retry of int

let recovery_name = function
  | Reject_on_timeout -> "reject-on-timeout"
  | Degraded_verdict -> "degraded-verdict"
  | Retry k -> Printf.sprintf "retry(%d)" k

type outcome = {
  accepted : bool;
  attempts : int;
  protocol_errors : int;
  injected : int;
  down : int list;
}

let obs_runs = Qdp_obs.Metrics.counter "faults.runs"
let obs_injected = Qdp_obs.Metrics.counter "faults.injected"
let obs_errors = Qdp_obs.Metrics.counter "faults.protocol_errors"
let obs_retries = Qdp_obs.Metrics.counter "faults.retries"
let obs_timeouts = Qdp_obs.Metrics.counter "faults.timeouts"

let strict_accept verdicts (stats : Runtime.stats) =
  stats.down = []
  && Array.for_all (fun v -> v = Runtime.Accept) verdicts

let degraded_accept verdicts (stats : Runtime.stats) =
  let up = ref 0 and ok = ref true in
  Array.iteri
    (fun i v ->
      if not (List.mem i stats.down) then begin
        incr up;
        if v <> Runtime.Accept then ok := false
      end)
    verdicts;
  !up > 0 && !ok

let attempt ~accept_of run =
  Qdp_obs.Metrics.incr obs_runs;
  match run () with
  | verdicts, (stats : Runtime.stats) ->
      let injected =
        match stats.faults with
        | Some c -> Fault.total_injected c
        | None -> 0
      in
      Qdp_obs.Metrics.incr obs_injected ~by:injected;
      (accept_of verdicts stats, injected, 0, stats.down)
  | exception Runtime.Protocol_error _ ->
      (* a babbling or corrupted node broke the protocol contract:
         report, count, reject — never abort the sweep *)
      Qdp_obs.Metrics.incr obs_errors;
      (false, 0, 1, [])
  | exception Runtime.Deadline_exceeded _ ->
      (* timeout-as-reject: an overrun execution is a detected error —
         reject it, count it, and let a [Retry] plan re-run it *)
      Qdp_obs.Metrics.incr obs_timeouts;
      (false, 0, 1, [])

let execute recovery run =
  match recovery with
  | Reject_on_timeout ->
      let accepted, injected, errors, down =
        attempt ~accept_of:strict_accept run
      in
      { accepted; attempts = 1; protocol_errors = errors; injected; down }
  | Degraded_verdict ->
      let accepted, injected, errors, down =
        attempt ~accept_of:degraded_accept run
      in
      { accepted; attempts = 1; protocol_errors = errors; injected; down }
  | Retry budget ->
      (* Soundness-preserving retry: an attempt is re-run only when a
         fault was *detected* (injected events or a protocol error) —
         the verdict itself never triggers a retry, so the decision
         rule composes with any prover strategy.  The loop is the
         shared [Qdp_dist.Backoff] discipline with the [immediate]
         policy: same attempt accounting as the coordinator's shard
         retries, zero delay and zero RNG consumption, so sweep
         results stay byte-identical. *)
      let acc_attempts = ref 0 in
      let acc_injected = ref 0 in
      let acc_errors = ref 0 in
      let policy = Qdp_dist.Backoff.immediate ~max_attempts:(max 0 budget + 1) in
      let accepted, _, _, down =
        Qdp_dist.Backoff.run ~sleep:(fun _ -> ())
          ~on_retry:(fun ~attempt:_ ~delay_s:_ ->
            Qdp_obs.Metrics.incr obs_retries)
          policy
          ~retry_if:(fun (_, injected, errors, _) ->
            injected > 0 || errors > 0)
          (fun ~attempt:_ ->
            let ((_, injected, errors, _) as r) =
              attempt ~accept_of:strict_accept run
            in
            incr acc_attempts;
            acc_injected := !acc_injected + injected;
            acc_errors := !acc_errors + errors;
            r)
      in
      {
        accepted;
        attempts = !acc_attempts;
        protocol_errors = !acc_errors;
        injected = !acc_injected;
        down;
      }
