(** Declarative fault plans and recovery semantics.

    A {!kind} names one axis of the fault model at a scalar strength
    [p]; {!env} compiles (kind, strength) into the
    {!Qdp_core.Fault_env.t} the protocol backends execute under.
    {!execute} wraps one such execution in a {!recovery} discipline and
    reports what happened — including structured
    {!Qdp_network.Runtime.Protocol_error}s, which are recorded and
    turned into rejections rather than aborting a sweep. *)

open Qdp_core
open Qdp_network

(** The fault axes the sweep explores.  [Flip] (classical payload bit
    flips) applies only to classical-link backends; [Depolarize],
    [Dephase] and [Mixed] (the even {!Noise.mix} of both) only to
    quantum-link backends; the rest are payload-agnostic. *)
type kind =
  | Drop  (** link loses each message w.p. [p] *)
  | Duplicate  (** link delivers each message twice w.p. [p] *)
  | Flip  (** classical payload corrupted w.p. [p] *)
  | Depolarize  (** strength-[p] depolarizing channel on every link use *)
  | Dephase  (** strength-[p] dephasing channel on every link use *)
  | Mixed  (** even mixture of the two channels above *)
  | Crash  (** node 1 crash-stops from round 1 w.p. [p] *)
  | Omission  (** node 1 loses each outgoing message w.p. [p] *)
  | Babble  (** node 1 emits an extra corrupted copy w.p. [p] *)

val all : kind list
val name : kind -> string
val of_name : string -> kind option

(** The kinds meaningful for an entry, keyed by
    {!Qdp_core.Registry.fault_suite}'s [fs_quantum_links]. *)
val applicable : quantum_links:bool -> kind list

(** [spec ?turn kind ~strength] is the payload-agnostic injection
    plan.  [turn] scopes delivery-time injection to one 1-based entry
    of the runtime's turn schedule ([Fault.spec.turn]) — on one-shot
    protocols the verifier block is entry 2, so a plan targeting any
    other turn is inert there. *)
val spec : ?turn:int -> kind -> strength:float -> Fault.spec

(** [noise kind ~strength] is the register noise model the kind carries
    ([None] for purely classical kinds). *)
val noise : kind -> strength:float -> Noise.t option

(** [env ?turn kind ~strength ~st] compiles the full fault
    environment: {!spec} plus {!noise} lifted through {!Noise.apply}. *)
val env : ?turn:int -> kind -> strength:float -> st:Random.State.t -> Fault_env.t

(** {2 Recovery} *)

(** What the verifiers do about detected faults. *)
type recovery =
  | Reject_on_timeout
      (** a crashed node (or any rejecting survivor) fails the run —
          the conservative discipline the soundness sweep uses *)
  | Degraded_verdict
      (** the surviving nodes decide; down nodes are excluded *)
  | Retry of int
      (** re-run (up to the budget) while faults are *detected* —
          injected events, a protocol error, or a
          [Runtime.Deadline_exceeded] overrun — never based on the
          verdict, so soundness composes; the final attempt decides
          with {!Reject_on_timeout} semantics.  The loop is the
          shared [Qdp_dist.Backoff] discipline at its zero-delay
          [immediate] policy, the same attempt accounting the
          multi-process coordinator uses for shard reassignment *)

val recovery_name : recovery -> string

(** What one recovered execution did.  [injected] and
    [protocol_errors] accumulate across retry attempts; [down] is the
    final attempt's crash list. *)
type outcome = {
  accepted : bool;
  attempts : int;
  protocol_errors : int;
  injected : int;
  down : int list;
}

(** [execute recovery run] performs [run] (one
    {!Qdp_core.Registry.fault_case} execution) under the recovery
    discipline.  Increments the [faults.runs] / [faults.injected] /
    [faults.protocol_errors] / [faults.retries] counters. *)
val execute :
  recovery -> (unit -> Runtime.verdict array * Runtime.stats) -> outcome
