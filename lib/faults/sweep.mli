(** The graceful-degradation sweep.

    For every registry entry with a fault-aware realization, for every
    applicable fault {!Plan.kind}, for every strength on the grid, the
    sweep Monte-Carlo estimates the honest acceptance on the yes
    instance (completeness) and the best attack acceptance on the no
    instance (soundness), executing each run under the configured
    {!Plan.recovery}.  Two invariants are checked:

    {ul
    {- {b Soundness never degrades} (Fact 4 contractivity): at every
       noise strength the observed no-instance acceptance must not
       exceed the noiseless analytic soundness bound beyond statistical
       tolerance — the whole Wilson interval sitting above the bound is
       a violation.}
    {- {b Completeness degrades continuously}: the honest-acceptance
       curve must be non-increasing in the strength up to overlapping
       confidence intervals.}}

    Results serialize to a deterministic JSON document
    ([BENCH_faults.json]): same seed, byte-identical output. *)

open Qdp_core
open Qdp_network

type config = {
  seed : int;
  trials : int;  (** Monte-Carlo runs per (case, strength) *)
  grid : float list;  (** fault strengths, increasing *)
  recovery : Plan.recovery;
  protocols : string list option;  (** [None] = every fault-aware entry *)
  kinds : Plan.kind list option;  (** [None] = every applicable kind *)
  turn : int option;
      (** aim every plan at one schedule turn ({!Plan.spec}'s [?turn]);
          [None] = faults strike every turn, the historical behaviour *)
  spec : Registry.spec;
}

(** [default_grid ()] is 0.0 to [max_strength] (default 0.5) in
    [points] (default 11) even steps. *)
val default_grid : ?points:int -> ?max_strength:float -> unit -> float list

(** CLI defaults: 200 trials, the default grid, reject-on-timeout,
    every protocol and kind, [Registry.default_spec] at [seed]. *)
val default : seed:int -> config

(** One Monte-Carlo estimate: the Wilson interval of the acceptance
    rate, the strategy that achieved it (for soundness: the argmax
    attack), and the fault/error tallies across all trials. *)
type measure = {
  m_rate : Runtime.interval;
  m_strategy : string;
  m_errors : int;  (** structured protocol errors, reported not raised *)
  m_injected : int;  (** injected fault events *)
}

type point = {
  pt_strength : float;
  pt_completeness : measure option;  (** [None] when no honest case *)
  pt_soundness : measure option;  (** [None] when no attack case *)
  pt_sound : bool;  (** the soundness invariant held here *)
}

type curve = {
  cv_kind : Plan.kind;
  cv_points : point list;
  cv_monotone : bool;  (** completeness decayed monotonically *)
  cv_sound : bool;  (** every point passed the soundness check *)
}

type proto = {
  pr_id : string;
  pr_name : string;
  pr_quantum_links : bool;
  pr_completeness_analytic : float;  (** noiseless honest acceptance *)
  pr_soundness_bound : float;  (** noiseless max attack acceptance *)
  pr_curves : curve list;
}

type t = {
  sw_seed : int;
  sw_trials : int;
  sw_recovery : Plan.recovery;
  sw_turn : int option;
  sw_grid : float list;
  sw_protocols : proto list;
  sw_soundness_violations : int;
  sw_monotonicity_violations : int;
}

(** Total invariant failures (what the CLI's exit code reports). *)
val violations : t -> int

(** [run cfg] executes the sweep, measuring each protocol's
    kinds x strengths grid in parallel on the [Qdp_par] pool.  All
    randomness derives from [cfg.seed] plus stable (protocol, kind,
    grid, case) indices, so a rerun is bit-identical — at any
    [--jobs] value — and restricting [protocols]/[kinds] never
    shifts the seeds of what is still swept.  Each point increments
    [faults.points]; failed soundness checks increment
    [faults.soundness_violations]. *)
val run : config -> t

(** Deterministic single-line JSON (floats as [%.6f]).  The [turn]
    field appears only when the sweep targeted one, so untargeted
    sweeps keep their historical byte layout. *)
val to_json : t -> string

val write_json : string -> t -> unit

(** A human-readable per-curve summary. *)
val pp_summary : Format.formatter -> t -> unit
