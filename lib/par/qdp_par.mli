(** Domain-parallel execution over a lazily-started, reusable pool.

    Every embarrassingly parallel loop in the engines (Monte-Carlo
    shot loops, attack-search candidate grids, fault-sweep grids,
    dense kernels) funnels through this module.  The pool is built on
    stdlib [Domain] only — no external dependency — and is started on
    the first parallel call, then reused for the life of the process.

    {2 Determinism contract}

    [jobs () = 1] takes the exact sequential path: a plain [for] loop
    on the calling domain, no pool, no chunking of pure loops.  For
    randomized work, {!monte_carlo_hits} partitions the trials into
    fixed-size chunks whose RNG states are split off the caller's
    state {e in chunk order, independent of the job count}, so the
    result is byte-identical for every value of [--jobs] — parallel
    runs reproduce sequential runs per seed.

    {2 Profiling}

    Parallel regions and their task units are wrapped in
    [Qdp_obs.Prof.region]/[Qdp_obs.Prof.task], so with [--profile]
    enabled the profiler reports a per-domain busy/idle split over the
    pool.  While the profiler is off both hooks cost one atomic-load
    branch per region/task. *)

(** [jobs ()] is the worker-domain budget for parallel regions.  The
    first call resolves it from the [QDP_JOBS] environment variable
    when set to a positive integer, otherwise from
    [Domain.recommended_domain_count ()]. *)
val jobs : unit -> int

(** [set_jobs n] overrides the budget (the [--jobs N] flag).  [1]
    disables the pool entirely.
    @raise Invalid_argument on [n < 1]. *)
val set_jobs : int -> unit

(** [effective_jobs ()] is the parallelism every dispatch decision in
    this module actually uses: [jobs ()] clamped to
    [Domain.recommended_domain_count ()].  Requesting more domains
    than the host has cores is pure scheduling overhead (BENCH_perf
    measured up to 7x slowdowns at [--jobs 4] on a 1-core host), so an
    oversubscribed budget degrades to the sequential path instead.
    The clamp affects dispatch only, never results: the determinism
    contract already makes every [--jobs] value byte-identical. *)
val effective_jobs : unit -> int

(** [oversubscribe ()] reports whether the clamp in
    {!effective_jobs} is disabled.  Resolved on first use from the
    [QDP_OVERSUBSCRIBE] environment variable ([1]/[true]/[yes]);
    default [false]. *)
val oversubscribe : unit -> bool

(** [set_oversubscribe true] lets [effective_jobs] exceed the core
    count — for tests that must exercise real pool semantics
    (spawning, helping, nesting) on small hosts. *)
val set_oversubscribe : bool -> unit

(** [pool_started ()] is [true] once the pool has ever spawned a
    worker domain.  OCaml 5 forbids [Unix.fork] after any domain has
    been created, so the multi-process coordinator ([Qdp_dist]) checks
    this before forking and degrades to the in-process path when the
    pool is already live.  The read is unsynchronized: a false
    negative only means the subsequent fork attempt fails and is
    handled there. *)
val pool_started : unit -> bool

(** [parallel_for ?chunk lo hi body] runs [body i] for every
    [lo <= i < hi], split into blocks of [chunk] indices (default: a
    block count of about 4x the job count).  Iterations must be
    independent: they may write only to disjoint state.  Exceptions
    raised by iterations are re-raised in the caller — the one from
    the earliest block wins — after every block has finished.  Safe to
    nest: inner regions share the same pool, and blocked callers help
    drain the queue instead of idling. *)
val parallel_for : ?chunk:int -> int -> int -> (int -> unit) -> unit

(** [parallel_map_array ?chunk f arr] is [Array.map f arr] with the
    applications distributed over the pool. *)
val parallel_map_array : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

(** [parallel_reduce ?chunk ~neutral ~combine lo hi f] folds
    [combine] over [f lo .. f (hi - 1)].  Chunks are combined in index
    order, but the chunk boundaries depend on [chunk] (and, by
    default, on the job count), so [combine] must be exactly
    associative with [neutral] as identity — integer sums, [max],
    [min] — for results to be independent of [--jobs]. *)
val parallel_reduce :
  ?chunk:int -> neutral:'a -> combine:('a -> 'a -> 'a) -> int -> int -> (int -> 'a) -> 'a

(** Trials per RNG chunk in {!monte_carlo_hits}: part of the
    determinism contract (changing it changes every sampled number),
    so it is fixed and public. *)
val mc_chunk : int

(** [monte_carlo_hits ~st ~trials f] counts how often the randomized
    trial [f] returns [true] over [trials] runs.  The trials are
    partitioned into {!mc_chunk}-sized chunks; chunk [k] runs on its
    own RNG state, the [k]-th state split off [st] ([st] itself
    advances by exactly the number of chunks, whatever the job
    count).  The count — and the caller's [st] — are therefore
    byte-identical at every [--jobs] value.  Returns [0] when
    [trials <= 0]. *)
val monte_carlo_hits :
  st:Random.State.t -> trials:int -> (Random.State.t -> bool) -> int
