(* Reusable work-sharing pool over stdlib [Domain].  Workers are
   spawned lazily on the first parallel region and kept for the life
   of the process; a region pushes closures on a shared queue and the
   submitting domain helps drain it while it waits, so nested regions
   cannot deadlock even with a single worker.  See qdp_par.mli for the
   determinism contract. *)

(* -- job budget ---------------------------------------------------- *)

(* 0 = not yet resolved; resolution happens on first [jobs ()] call so
   [set_jobs] (the [--jobs] flag) wins over the environment. *)
let configured = Atomic.make 0

let resolve_jobs () =
  match Sys.getenv_opt "QDP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs () =
  let j = Atomic.get configured in
  if j > 0 then j
  else begin
    let j = resolve_jobs () in
    (* a concurrent [set_jobs] wins the race on purpose *)
    ignore (Atomic.compare_and_set configured 0 j);
    Atomic.get configured
  end

let set_jobs n =
  if n < 1 then invalid_arg "Qdp_par.set_jobs: need at least one job";
  Atomic.set configured n

(* -- effective parallelism ------------------------------------------ *)

(* BENCH_perf showed the parallel paths losing up to 7x on a 1-core
   host at --jobs 4: every domain beyond the core count is pure
   scheduling overhead, yet dispatch decisions honoured the requested
   job count unconditionally.  [effective_jobs] clamps the budget to
   the hardware so oversubscribed configurations degrade to the
   sequential path — byte-identical outputs, none of the domain
   machinery.  Tests that exercise pool semantics on small hosts opt
   back in via [set_oversubscribe] / QDP_OVERSUBSCRIBE=1. *)

let cores = lazy (Domain.recommended_domain_count ())

(* 0 = unresolved, 1 = clamp (default), 2 = oversubscribe allowed. *)
let oversub = Atomic.make 0

let oversubscribe () =
  match Atomic.get oversub with
  | 1 -> false
  | 2 -> true
  | _ ->
      let v =
        match Sys.getenv_opt "QDP_OVERSUBSCRIBE" with
        | Some ("1" | "true" | "yes") -> 2
        | Some _ | None -> 1
      in
      ignore (Atomic.compare_and_set oversub 0 v);
      Atomic.get oversub = 2

let set_oversubscribe b = Atomic.set oversub (if b then 2 else 1)

let effective_jobs () =
  let j = jobs () in
  if oversubscribe () then j else min j (Lazy.force cores)

(* -- pool ---------------------------------------------------------- *)

let lock = Mutex.create ()
let wake = Condition.create ()

(* All of the following are guarded by [lock]. *)
let queue : (unit -> unit) Queue.t = Queue.create ()
let stopping = ref false
let spawned : unit Domain.t list ref = ref []

let worker () =
  let rec next () =
    Mutex.lock lock;
    let rec await () =
      if !stopping then None
      else
        match Queue.take_opt queue with
        | Some t -> Some t
        | None ->
            Condition.wait wake lock;
            await ()
    in
    let task = await () in
    Mutex.unlock lock;
    match task with
    | None -> ()
    | Some t ->
        t ();
        next ()
  in
  next ()

(* Called with [lock] held.  Workers beyond the first region's needs
   are added if [set_jobs] raised the budget later. *)
let ensure_workers target =
  while List.length !spawned < target do
    spawned := Domain.spawn worker :: !spawned
  done

(* Racy read on purpose: callers (the multi-process coordinator) only
   use it as a fork-safety hint and handle a lost race by catching the
   [Unix.fork] failure itself. *)
let pool_started () = !spawned <> []

let () =
  at_exit (fun () ->
      Mutex.lock lock;
      stopping := true;
      Condition.broadcast wake;
      let ds = !spawned in
      spawned := [];
      Mutex.unlock lock;
      List.iter Domain.join ds)

(* Runs every closure in [tasks], distributing all but the first over
   the pool.  Re-raises the earliest (by task index) exception, with
   its backtrace, once every task has finished. *)
let run_tasks (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n = 0 then ()
  else if n = 1 || effective_jobs () = 1 then Array.iter (fun t -> t ()) tasks
  else begin
    Qdp_obs.Prof.region @@ fun () ->
    let remaining = Atomic.make n in
    (* cell [i] is written by the domain running task [i] only; the
       final read is ordered after all writes by [remaining]. *)
    let errors = Array.make n None in
    let wrap i () =
      (* [Prof.task] charges the wall time of this unit of work to the
         busy total of whichever domain executes it — worker or
         helping caller — for the busy/idle split in profile reports. *)
      (try Qdp_obs.Prof.task tasks.(i)
       with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      Atomic.decr remaining;
      Mutex.lock lock;
      Condition.broadcast wake;
      Mutex.unlock lock
    in
    Mutex.lock lock;
    ensure_workers (min (effective_jobs ()) n - 1);
    for i = 1 to n - 1 do
      Queue.push (wrap i) queue
    done;
    Condition.broadcast wake;
    Mutex.unlock lock;
    wrap 0 ();
    (* Help until the whole region is done.  The queue may hand us
       tasks from other (nested) regions — that is the point: a caller
       blocked on an inner region keeps the pool busy. *)
    let rec help () =
      if Atomic.get remaining > 0 then begin
        Mutex.lock lock;
        match Queue.take_opt queue with
        | Some t ->
            Mutex.unlock lock;
            t ();
            help ()
        | None ->
            if Atomic.get remaining > 0 then Condition.wait wake lock;
            Mutex.unlock lock;
            help ()
      end
    in
    help ();
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors
  end

(* -- chunked loops ------------------------------------------------- *)

let chunk_size ?chunk n =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ -> invalid_arg "Qdp_par: chunk must be >= 1"
  | None ->
      let j = effective_jobs () in
      max 1 ((n + (4 * j) - 1) / (4 * j))

let parallel_for ?chunk lo hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else if effective_jobs () = 1 then
    for i = lo to hi - 1 do
      body i
    done
  else begin
    let c = chunk_size ?chunk n in
    let nchunks = (n + c - 1) / c in
    if nchunks <= 1 then
      for i = lo to hi - 1 do
        body i
      done
    else
      run_tasks
        (Array.init nchunks (fun k () ->
             let b = lo + (k * c) in
             let e = min hi (b + c) in
             for i = b to e - 1 do
               body i
             done))
  end

let parallel_map_array ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if effective_jobs () = 1 || n = 1 then Array.map f arr
  else begin
    let out = Array.make n None in
    parallel_for ?chunk 0 n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_reduce ?chunk ~neutral ~combine lo hi f =
  let n = hi - lo in
  if n <= 0 then neutral
  else if effective_jobs () = 1 then begin
    let acc = ref neutral in
    for i = lo to hi - 1 do
      acc := combine !acc (f i)
    done;
    !acc
  end
  else begin
    let c = chunk_size ?chunk n in
    let nchunks = (n + c - 1) / c in
    let partial = Array.make nchunks None in
    run_tasks
      (Array.init nchunks (fun k () ->
           let b = lo + (k * c) in
           let e = min hi (b + c) in
           let acc = ref (f b) in
           for i = b + 1 to e - 1 do
             acc := combine !acc (f i)
           done;
           partial.(k) <- Some !acc));
    Array.fold_left
      (fun acc p -> match p with Some v -> combine acc v | None -> acc)
      neutral partial
  end

(* -- deterministic Monte-Carlo ------------------------------------- *)

let mc_chunk = 64

let monte_carlo_hits ~st ~trials f =
  if trials <= 0 then 0
  else begin
    (* Grid kernels have no MAC count; the trial count is the work
       axis the cost model fits.  Default [true] preserves the
       pre-model behaviour (always offer the grid to the pool and let
       [effective_jobs] clamp it). *)
    let par =
      Qdp_model.decide ~kernel:"grid.monte_carlo" ~macs:(float_of_int trials)
        ~default:true
    in
    let path = if par && effective_jobs () > 1 then "par" else "seq" in
    Qdp_obs.Calib.sample ~kernel:"grid.monte_carlo"
      ~macs:(float_of_int trials) ~path
    @@ fun () ->
    let nchunks = (trials + mc_chunk - 1) / mc_chunk in
    (* Split in chunk order on the calling domain: both the chunk
       states and the post-call position of [st] are independent of
       the job count and of the dispatch decision. *)
    let states = Array.make nchunks st in
    for k = 0 to nchunks - 1 do
      states.(k) <- Random.State.split st
    done;
    let hits = Array.make nchunks 0 in
    let chunk k =
      let b = k * mc_chunk in
      let e = min trials (b + mc_chunk) in
      let s = states.(k) in
      let h = ref 0 in
      for _ = b + 1 to e do
        if f s then incr h
      done;
      hits.(k) <- !h
    in
    if par then parallel_for ~chunk:1 0 nchunks chunk
    else
      for k = 0 to nchunks - 1 do
        chunk k
      done;
    Array.fold_left ( + ) 0 hits
  end
