open Qdp_linalg
open Qdp_fingerprint
open Qdp_network

type params = Eq_path.params = {
  n : int;
  r : int;
  seed : int;
  repetitions : int;
}

type node_state = {
  role : [ `Left | `Middle | `Right ];
  kept : Vec.t option;  (** register retained for the local SWAP test *)
  outgoing : Vec.t option;  (** register to forward right in round 1 *)
  mutable verdict : Runtime.verdict;
}

let run_with ?faults st params x y strategy =
  let fp = Fingerprint.standard ~seed:params.seed ~n:params.n in
  let hx = Fingerprint.state fp x in
  let hy_state = Fingerprint.state fp y in
  let prover_state =
    Strategy.node_state ~r:params.r ~left:hx ~right:hy_state
      ~embed:(Fingerprint.state fp) strategy
  in
  let g = Graph.path params.r in
  let program =
    {
      Runtime.init =
        (fun id ->
          if id = 0 then
            { role = `Left; kept = None; outgoing = Some hx; verdict = Accept }
          else if id = params.r then
            { role = `Right; kept = None; outgoing = None; verdict = Accept }
          else begin
            (* the prover's pair, symmetrized by a local coin *)
            let s = prover_state id in
            let a, b = (Vec.copy s, Vec.copy s) in
            let kept, out = if Random.State.bool st then (a, b) else (b, a) in
            { role = `Middle; kept = Some kept; outgoing = Some out;
              verdict = Accept }
          end);
      round =
        (fun ~round ~id state ~inbox ->
          match round with
          | 1 -> (
              (* every node except v_r forwards its register right *)
              match state.outgoing with
              | Some reg when id < params.r -> (state, [ (id + 1, reg) ])
              | _ -> (state, []))
          | 2 -> (
              (* receive from the left and test *)
              match (state.role, inbox) with
              | `Middle, [ (_, arriving) ] ->
                  let kept =
                    match state.kept with
                    | Some k -> k
                    | None -> assert false
                  in
                  let p = Sim.swap_accept [| arriving |] [| kept |] in
                  if Random.State.float st 1. > p then
                    state.verdict <- Runtime.Reject;
                  (state, [])
              | `Right, [ (_, arriving) ] ->
                  let p = Fingerprint.accept_prob fp y arriving in
                  if Random.State.float st 1. > p then
                    state.verdict <- Runtime.Reject;
                  (state, [])
              | `Left, _ -> (state, [])
              | _ ->
                  state.verdict <- Runtime.Reject;
                  (state, []))
          | _ -> (state, []));
      finish = (fun ~id:_ state -> state.verdict);
    }
  in
  Runtime.run ?faults g ~rounds:2 program

let run_once st params x y strategy =
  let verdicts, stats = run_with st params x y strategy in
  (Runtime.global_verdict verdicts = Runtime.Accept, stats)

(* Payloads are bare fingerprint registers, so the environment's
   register noise is the payload corruptor. *)
let run_faulty st (env : Fault_env.t) params x y strategy =
  let faults = Fault_env.injector ~corrupt:(Fault_env.apply_qnoise env) env in
  run_with ~faults st params x y strategy

let estimate_acceptance st ~trials params x y strategy =
  Runtime.estimate_acceptance ~st ~trials (fun st ->
      fst (run_once st params x y strategy))
