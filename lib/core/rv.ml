open Qdp_codes
open Qdp_network

type params = { n : int; seed : int; repetitions : int }

let make ?repetitions ~seed ~n ~r () =
  let repetitions =
    match repetitions with
    | Some k -> k
    | None -> Eq_path.paper_repetitions ~r
  in
  { n; seed; repetitions }

let rv_value ~inputs ~i ~j =
  let t = Array.length inputs in
  let count = ref 0 in
  Array.iteri
    (fun k xk ->
      if k <> i && Gf2.compare_big_endian inputs.(i) xk >= 0 then incr count)
    inputs;
  !count = t - j

type prover = Honest_directions | Claim of bool array

let path_length tr k =
  let leaf = (Spanning_tree.terminal_leaves tr).(k) in
  max 1 (Spanning_tree.depth tr leaf)

let gt_params params r =
  { Gt.n = params.n; r; seed = params.seed; repetitions = params.repetitions }

(* Acceptance of the comparison protocol on the path to terminal k,
   for a claimed direction, single round.  An honest claim runs the
   honest prover; a lying claim runs the best known attack. *)
let path_accept_for_claim params tr ~inputs ~i ~k ~claim_ge =
  let gp = gt_params params (path_length tr k) in
  let truth = Gf2.compare_big_endian inputs.(i) inputs.(k) >= 0 in
  match (claim_ge, truth) with
  | true, true -> Gt.variant_honest_accept gp Gt.Ge inputs.(i) inputs.(k)
  | false, false -> Gt.variant_honest_accept gp Gt.Lt inputs.(i) inputs.(k)
  | true, false -> Gt.variant_best_attack gp Gt.Ge inputs.(i) inputs.(k)
  | false, true -> Gt.variant_best_attack gp Gt.Lt inputs.(i) inputs.(k)

let truth_directions ~inputs ~i =
  Array.mapi
    (fun k xk -> k <> i && Gf2.compare_big_endian inputs.(i) xk >= 0)
    inputs

(* Definition 9's count t - j + 1 includes the (trivially true) self
   comparison GT>=(x_i, x_i); over k <> i the target is t - j. *)
let count_ge ~i dirs =
  let c = ref 0 in
  Array.iteri (fun k b -> if k <> i && b then incr c) dirs;
  !c

let accept params g ~terminals ~inputs ~i ~j prover =
  let t = Array.length inputs in
  let tr = Spanning_tree.build_rooted_at g ~terminals ~root_terminal:i in
  let dirs =
    match prover with
    | Honest_directions -> truth_directions ~inputs ~i
    | Claim d -> d
  in
  if count_ge ~i dirs <> t - j then 0.
  else begin
    let acc = ref 1. in
    for k = 0 to t - 1 do
      if k <> i then begin
        let p =
          path_accept_for_claim params tr ~inputs ~i ~k ~claim_ge:dirs.(k)
        in
        acc := !acc *. Sim.repeat_accept params.repetitions p
      end
    done;
    !acc
  end

let honest_accept params g ~terminals ~inputs ~i ~j =
  accept params g ~terminals ~inputs ~i ~j Honest_directions

let best_attack_accept params g ~terminals ~inputs ~i ~j =
  let t = Array.length inputs in
  Qdp_log.attack_search ~proto:"rv"
    ~attrs:(fun () ->
      [ ("n", Qdp_obs.Trace.Int params.n);
        ("t", Qdp_obs.Trace.Int t);
        ("i", Qdp_obs.Trace.Int i);
        ("j", Qdp_obs.Trace.Int j) ])
  @@ fun () ->
  let tr = Spanning_tree.build_rooted_at g ~terminals ~root_terminal:i in
  let truth = truth_directions ~inputs ~i in
  let c = count_ge ~i truth and target = t - j in
  if c = target then begin
    (* yes instance (or a no instance where the honest count already
       matches — impossible by definition): honest play *)
    let p = honest_accept params g ~terminals ~inputs ~i ~j in
    Qdp_log.attack_candidate ~proto:"rv" "honest" p;
    (p, "honest")
  end
  else begin
    (* flip the cheapest-to-lie directions to fix the count *)
    let want_ge = c < target in
    let flips_needed = abs (target - c) in
    (* score the flippable directions on the pool, then log and
       accumulate in the original k order *)
    let flippable =
      Array.of_list
        (List.filter
           (fun k -> k <> i && truth.(k) <> want_ge)
           (List.init t (fun k -> k)))
    in
    let scores =
      Qdp_par.parallel_map_array ~chunk:1
        (fun k ->
          Sim.repeat_accept params.repetitions
            (path_accept_for_claim params tr ~inputs ~i ~k ~claim_ge:want_ge))
        flippable
    in
    let candidates = ref [] in
    Array.iteri
      (fun idx k ->
        let p = scores.(idx) in
        Qdp_log.attack_candidate ~proto:"rv"
          (Printf.sprintf "flip-%d->%s" k (if want_ge then ">=" else "<"))
          p;
        candidates := (p, k) :: !candidates)
      flippable;
    let sorted =
      List.sort (fun (p1, _) (p2, _) -> Float.compare p2 p1) !candidates
    in
    if List.length sorted < flips_needed then (0., "count unfixable")
    else begin
      let chosen = List.filteri (fun idx _ -> idx < flips_needed) sorted in
      let accept_prob =
        List.fold_left (fun acc (p, _) -> acc *. p) 1. chosen
      in
      let desc =
        String.concat ","
          (List.map (fun (_, k) -> string_of_int k) chosen)
      in
      (accept_prob, Printf.sprintf "flip{%s}->%s" desc
         (if want_ge then ">=" else "<"))
    end
  end

let costs params tr ~t =
  let height = max 1 (Spanning_tree.height tr) in
  let g = Gt.costs (gt_params params height) in
  let dir_bits = t - 1 in
  {
    Report.local_proof_qubits =
      ((t - 1) * g.Report.local_proof_qubits) + dir_bits;
    total_proof_qubits =
      ((t - 1) * g.Report.total_proof_qubits) + (Spanning_tree.size tr * dir_bits);
    local_message_qubits = (t - 1) * g.Report.local_message_qubits;
    total_message_qubits = (t - 1) * g.Report.total_message_qubits;
    rounds = 1;
  }
