(** Interactive equality on a path — the dQIP turn-reduction family of
    Le Gall–Miyamoto–Nishimura (arXiv:2210.01390) instantiated with
    classical polynomial fingerprints.

    The left endpoint [v_0] of a path of [r] hops holds [x], the right
    endpoint [v_r] holds [y], and the verifier must decide [x = y].
    The fingerprint is polynomial evaluation over the prime field
    [F_q]: [P_x(z) = sum_i x_i z^i], so for [x <> y] the difference
    [P_x - P_y] is a nonzero polynomial of degree [< n] and agrees on
    at most [n - 1] of the [q] evaluation points.  Three variants trade
    turns against certificate size, mirroring the paper's
    turn-reduction compilation:

    - [turns = 3]: prover commits a parity digest at every node, the
      verifier reveals a public coin [alpha] (the challenge, dealt to
      [v_0]), the prover responds with the claimed [(alpha, P(alpha))]
      at every node; one exchange round hop-checks the chain and the
      endpoints anchor it against their own inputs.  O(log q) bits per
      node.
    - [turns = 2]: the same without the commit turn — coins first,
      then a single prover response.
    - [turns = 1]: the turn-reduced compilation.  The interaction is
      replaced by a bigger certificate: the prover writes the {e full}
      evaluation table [{P(alpha)}] at every node (q log q bits — a
      factor-q blowup), and each node probes its right neighbour's
      table at a fresh {e private} coin.  No verifier message ever
      reaches the prover, so this is a one-turn protocol in the
      message-turn sense of {!Qdp_network.Runtime.Turn.message_turns}.

    Completeness is perfect in every variant; per-repetition soundness
    is at most [(n - 1) / q <= 1/4] (see {!soundness_bound}), driven
    below [1/3] by {!params.repetitions}.

    The analytic {!accept} enumerates the verifier's coins through the
    same check predicates the network realization
    ({!Runtime_ieq}) evaluates on sampled coins, so differential
    cross-validation agrees by construction. *)

open Qdp_codes

type params = {
  n : int;  (** input length in bits *)
  r : int;  (** path length: nodes [v_0 .. v_r] *)
  turns : int;  (** 1, 2 or 3 — which variant (see above) *)
  repetitions : int;  (** parallel repetitions applied by [Dqma.evaluate] *)
}

(** @raise Invalid_argument on nonsensical parameters
    ([n <= 0], [r < 1], [turns] outside 1-3, [repetitions < 1]). *)
val validate : params -> unit

(** The field size: the smallest prime [>= max (4 n) 11], so a single
    repetition already has soundness error [<= 1/4]. *)
val field : params -> int

(** [poly_eval ~q x alpha] is [P_x(alpha) = sum_i x_i alpha^i mod q]. *)
val poly_eval : q:int -> Gf2.t -> int -> int

(** [parity x] is the XOR of all bits — the turn-1 commit digest of
    the 3-turn variant. *)
val parity : Gf2.t -> bool

(** [table ~q x] is the full evaluation table
    [[| P_x(0); ...; P_x(q-1) |]] — the 1-turn variant's per-node
    certificate. *)
val table : q:int -> Gf2.t -> int array

(** {2 Prover strategies}

    Every strategy answers each node consistently with {e some} input
    string; lying about the challenge [alpha] itself is dominated
    (it fails [v_0]'s deterministic coin anchor on every coin) and is
    not in the library. *)

type prover =
  | Answer_x  (** every node answers for [x] — the honest strategy *)
  | Answer_y  (** every node answers for [y] *)
  | Split of int
      (** nodes [<= j] answer for [x], the rest for [y] — the
          chain-splicing cheat *)

(** [source params x y prover i] is the string node [i]'s answers are
    derived from under [prover]. *)
val source : params -> Gf2.t -> Gf2.t -> prover -> int -> Gf2.t

(** A per-node response of the interactive (2/3-turn) variants: the
    claimed challenge and the claimed evaluation at it. *)
type answer = { a_alpha : int; a_eval : int }

(** [respond params ~q x y prover ~alpha i] is what the prover writes
    to node [i] in the response turn when the revealed coin is
    [alpha]. *)
val respond : params -> q:int -> Gf2.t -> Gf2.t -> prover -> alpha:int -> int -> answer

(** {2 Check predicates}

    Shared verbatim between the analytic acceptance below and the
    network realization in {!Runtime_ieq}. *)

(** [v_0]'s commit anchor: the claimed digest equals [parity x]. *)
val commit_ok_left : Gf2.t -> bool -> bool

(** [v_r]'s commit anchor against [y]. *)
val commit_ok_right : Gf2.t -> bool -> bool

(** [v_0]'s response anchor: the claimed challenge equals the coin it
    was actually dealt, and the claimed evaluation is [P_x] at it. *)
val answer_ok_left : q:int -> Gf2.t -> coin:int -> answer -> bool

(** [v_r]'s response anchor: the claimed evaluation is [P_y] at the
    claimed challenge (the challenge itself is hop-checked back to
    [v_0]'s anchor). *)
val answer_ok_right : q:int -> Gf2.t -> answer -> bool

(** [v_0]'s table anchor (1-turn variant): the certificate is
    pointwise equal to [x]'s evaluation table. *)
val table_ok_left : q:int -> Gf2.t -> int array -> bool

(** One neighbour probe (1-turn variant): the left neighbour's table
    value at its private coin matches this node's table. *)
val probe_ok : int array -> beta:int -> value:int -> bool

(** [v_r]'s table anchor at its private coin [beta]:
    [t.(beta) = P_y(beta)]. *)
val table_ok_right : q:int -> Gf2.t -> int array -> coin:int -> bool

(** {2 Analytic acceptance} *)

(** [accept params (x, y) prover] is the exact single-repetition
    acceptance probability: the 2/3-turn variants average the decision
    predicate over all [q] public challenges, the 1-turn variant
    multiplies the per-edge and endpoint probe-agreement fractions
    (each node's private coin is used in exactly one check, so the
    checks are independent). *)
val accept : params -> Gf2.t * Gf2.t -> prover -> float

(** The cheating-prover library: [Answer_x], [Answer_y] and the
    mid-path [Split]. *)
val attacks : params -> (string * prover) list

(** Per-repetition soundness upper bound [(n - 1) / q]. *)
val soundness_bound : params -> float

(** [adversarial_pair params base] is the root-richest no-instance
    derived from [base]: [y = x xor e_0 xor e_d] with [d <= n - 1]
    maximizing [gcd (d, q - 1)], so [P_x - P_y = 1 - z^d] vanishes on
    exactly the [gcd (d, q - 1)] d-th roots of unity of [F_q] and
    every consistent attack accepts with probability [gcd / q] — the
    family's worst case over two-bit perturbations.  [x] and [y] have
    equal parity, so the 3-turn commit does not short-circuit the
    challenge. *)
val adversarial_pair : params -> Gf2.t -> Gf2.t * Gf2.t

(** [bits q] is the width of a field element, [ceil(log2 q)]. *)
val bits : int -> int

(** Certificate/message accounting in classical bits: per-node proof
    is [1 + 2 log q] (3-turn), [2 log q] (2-turn) or [q log q]
    (1-turn) — the turn-reduction blowup — and verification traffic is
    one exchange round. *)
val costs : params -> Report.costs
