open Qdp_linalg
open Qdp_codes
open Qdp_fingerprint

type dma_path_protocol = {
  dma_r : int;
  proof_bits : int;
  honest_proofs : Gf2.t -> string array;
  dma_accepts : x:Gf2.t -> y:Gf2.t -> proofs:string array -> bool;
}

(* Shared shape of the truncation and hash protocols: a per-input
   digest written identically at every node; nodes compare neighbours,
   ends compare against their own digest. *)
let digest_protocol ~r ~proof_bits digest =
  {
    dma_r = r;
    proof_bits;
    honest_proofs = (fun x -> Array.make (r + 1) (digest x));
    dma_accepts =
      (fun ~x ~y ~proofs ->
        if Array.length proofs <> r + 1 then false
        else begin
          let neighbours_ok = ref true in
          for j = 0 to r - 1 do
            if not (String.equal proofs.(j) proofs.(j + 1)) then
              neighbours_ok := false
          done;
          !neighbours_ok
          && String.equal proofs.(0) (digest x)
          && String.equal proofs.(r) (digest y)
        end);
  }

let truncation_protocol ~n ~r ~c =
  let c = min c n in
  let digest x = Gf2.to_string (Gf2.prefix x c) in
  digest_protocol ~r ~proof_bits:c digest

let hash_protocol ~seed ~n ~r ~c =
  let digest x =
    let st = Random.State.make [| seed; Hashtbl.hash (Gf2.to_string x); n |] in
    String.init c (fun _ -> if Random.State.bool st then '1' else '0')
  in
  digest_protocol ~r ~proof_bits:c digest

type splice = {
  splice_x : Gf2.t;
  splice_y : Gf2.t;
  spliced_proofs : string array;
}

let splice_candidates = Qdp_obs.Metrics.counter "lower_bounds.splice_candidates"

let fooling_splice proto ~n ~limit =
  let i = proto.dma_r / 2 in
  let seen = Hashtbl.create 64 in
  let result = ref None in
  let k = ref 0 in
  Qdp_log.attack_search ~proto:"lower_bounds.fooling_splice"
    ~attrs:(fun () ->
      [ ("limit", Qdp_obs.Trace.Int limit);
        ("tried", Qdp_obs.Trace.Int !k);
        ("found", Qdp_obs.Trace.Bool (!result <> None)) ])
  @@ fun () ->
  while !result = None && !k < limit do
    let x = Gf2.of_int ~width:n !k in
    let proofs = proto.honest_proofs x in
    let key = proofs.(i) ^ "|" ^ proofs.(min proto.dma_r (i + 1)) in
    (match Hashtbl.find_opt seen key with
    | Some (x', proofs') ->
        if not (Gf2.equal x x') then begin
          (* splice: left half from x', middle shared, right from x *)
          let spliced =
            Array.init (proto.dma_r + 1) (fun j ->
                if j <= i then proofs'.(j) else proofs.(j))
          in
          result :=
            Some { splice_x = x'; splice_y = x; spliced_proofs = spliced }
        end
    | None -> Hashtbl.add seen key (x, proofs));
    Qdp_obs.Metrics.incr splice_candidates;
    incr k
  done;
  Qdp_log.Log.debug (fun m ->
      m "lower_bounds fooling_splice: tried %d of %d, %s" !k limit
        (if !result = None then "no collision" else "collision found"));
  !result

let splice_breaks_soundness proto s =
  (not (Gf2.equal s.splice_x s.splice_y))
  && proto.dma_accepts ~x:s.splice_x ~y:s.splice_y ~proofs:s.spliced_proofs

let max_pairwise_overlap_random st ~qubits ~count =
  let dim = 1 lsl qubits in
  let states = Array.init count (fun _ -> States.random_unit st dim) in
  Qdp_log.attack_search ~proto:"lower_bounds.state_packing"
    ~attrs:(fun () ->
      [ ("qubits", Qdp_obs.Trace.Int qubits);
        ("count", Qdp_obs.Trace.Int count) ])
  @@ fun () ->
  (* O(count^2) pairs; [max] is exact, so splitting the outer loop
     over the pool returns bit-identical overlaps at any job count *)
  let best =
    Qdp_par.parallel_reduce ~chunk:1 ~neutral:0. ~combine:Float.max 0 count
      (fun i ->
        let b = ref 0. in
        for j = i + 1 to count - 1 do
          let ov = Cx.abs (Vec.dot states.(i) states.(j)) in
          if ov > !b then b := ov
        done;
        !b)
  in
  Qdp_log.Log.debug (fun m ->
      m "lower_bounds state_packing: max overlap %.6g over %d states" best count);
  best

let fingerprint_family_max_overlap ~seed ~n =
  if n > 12 then invalid_arg "fingerprint_family_max_overlap: n <= 12";
  let fp = Fingerprint.standard ~seed ~n in
  let best = ref 0. in
  for i = 0 to (1 lsl n) - 1 do
    for j = i + 1 to (1 lsl n) - 1 do
      let ov =
        Float.abs
          (Fingerprint.overlap fp (Gf2.of_int ~width:n i) (Gf2.of_int ~width:n j))
      in
      if ov > !best then best := ov
    done
  done;
  !best

let gap_splice_accept ~seed ~n ~r ~gap x y =
  if gap < 1 || gap + 2 > r then invalid_arg "gap_splice_accept: bad gap";
  let fp = Fingerprint.standard ~seed ~n in
  let hx = Fingerprint.state fp x and hy = Fingerprint.state fp y in
  (* Left chain v_0 .. v_gap: every test compares h_x registers; the
     chain ends blind at the proof-free node (no closing POVM).  Right
     chain v_{gap+1} .. v_r likewise starts blind and closes with v_r's
     POVM on h_y registers.  Nothing crosses the gap. *)
  let left =
    if gap = 1 then 1.0
    else
      Sim.path_accept
        (Sim.two_state_chain ~r:gap ~left:hx ~right:hx
           ~final:(fun _ -> 1.0 (* the proof-free node has nothing to test *))
           Strategy.All_left)
  in
  let right_len = r - gap - 1 in
  let right =
    if right_len <= 1 then Fingerprint.accept_prob fp y hy
    else
      Sim.path_accept
        (Sim.two_state_chain ~r:right_len ~left:hy ~right:hy
           ~final:(fun reg -> Fingerprint.accept_prob fp y reg.(0))
           Strategy.All_left)
  in
  left *. right

let log2f x = Float.log x /. Float.log 2.
let thm51_total_bound ~r ~n = float_of_int r *. log2f (float_of_int (max 2 n))

let thm52_bound ~r ~n ~eps ~eps' =
  Float.pow (log2f (float_of_int (max 2 n))) (0.5 -. eps)
  /. Float.pow (float_of_int r) (1. +. eps')

let cor55_bound ~r = float_of_int r

let thm56_bound ~n ~eps =
  Float.pow (log2f (float_of_int (max 2 n))) (0.25 -. eps)
