type costs = {
  local_proof_qubits : int;
  total_proof_qubits : int;
  local_message_qubits : int;
  total_message_qubits : int;
  rounds : int;
}

let zero =
  {
    local_proof_qubits = 0;
    total_proof_qubits = 0;
    local_message_qubits = 0;
    total_message_qubits = 0;
    rounds = 0;
  }

let pp_costs fmt c =
  Format.fprintf fmt
    "proof: local %d / total %d qubits; msg: local %d / total %d qubits; %d round(s)"
    c.local_proof_qubits c.total_proof_qubits c.local_message_qubits
    c.total_message_qubits c.rounds

type row = {
  label : string;
  params : string;
  costs : costs;
  completeness : float;
  soundness_error : float;
  paper_formula : string;
  paper_value : float;
}

(* Column widths shared by pp_header and pp_row; the horizontal rule is
   derived from them so the header can never drift from the rows. *)
let label_width = 26
let params_width = 24
let formula_width = 28

let total_width =
  (* label params loc.proof tot.proof compl. snd.err paper-bound value,
     separated by single spaces (two before the formula column) *)
  label_width + 1 + params_width + 1 + 10 + 1 + 10 + 1 + 8 + 1 + 9 + 2
  + formula_width + 1 + 10

let pp_header fmt () =
  Format.fprintf fmt "%-26s %-24s %10s %10s %8s %9s  %-28s %10s@\n" "protocol"
    "params" "loc.proof" "tot.proof" "compl." "snd.err" "paper bound" "value";
  Format.fprintf fmt "%s@\n" (String.make total_width '-')

(* Columns are fixed-width (the header rules off at 132 chars); clamp
   free-text fields so a long [params] or [label] cannot shear the
   table.  Truncation keeps a ".." marker. *)
let clamp width s =
  if String.length s <= width then s
  else String.sub s 0 (max 0 (width - 2)) ^ ".."

let pp_row fmt r =
  Format.fprintf fmt "%-26s %-24s %10d %10d %8.4f %9.2e  %-28s %10.1f@\n"
    (clamp label_width r.label) (clamp params_width r.params)
    r.costs.local_proof_qubits r.costs.total_proof_qubits
    r.completeness r.soundness_error
    (clamp formula_width r.paper_formula) r.paper_value

let ceil_log2 k =
  let rec bits acc v = if v <= 1 then acc else bits (acc + 1) ((v + 1) / 2) in
  bits 0 k
