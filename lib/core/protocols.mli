(** The library's protocol catalog.

    [init ()] installs every protocol implemented in this library into
    {!Registry} (idempotent; call it from binaries and tests before
    touching the registry — the library is linked selectively, so
    module initializers cannot be relied on to run).

    Registration order is the conformance-suite order: EQ path, EQ
    tree, GT, relay, dQCMA, dMA, RPLS, Set Equality (all in the demo
    suite), then RV and the Hamming one-way compilation (list/CLI
    only). *)

val init : unit -> unit
