(** The Set Equality problem (Naor-Parter-Yogev; the GMN23a
    application discussed in Section 1.4 of the paper), as a dQMA
    protocol built from {e set fingerprints}.

    The two path ends hold multisets of [k] strings of [n] bits each;
    the protocol decides set equality.  The set fingerprint is the
    normalized superposition of [amplify]-fold tensor powers of the
    element fingerprints, [|h_S> ~ sum_{x in S} |h_x>^{(x) c}]: the
    tensor power drives distinct-element overlaps to [ov^c ~ 0], so
    [<h_S|h_T> ~ |S cap T| / k] and the usual symmetrize-and-SWAP-test
    chain separates equal sets from sets with large symmetric
    difference.

    The [c]-fold tensor powers are never materialized: all chain
    acceptances depend only on inner products, so the element states
    are realized exactly (up to a global unitary) in a [2k]-dimensional
    space by factoring their Gram matrix — the reported qubit cost is
    the true [c * ceil (log2 (2 m))]. *)

open Qdp_linalg
open Qdp_codes

type params = {
  n : int;  (** bits per element *)
  k : int;  (** elements per set *)
  r : int;
  seed : int;
  repetitions : int;
  amplify : int;  (** tensor-power factor [c] on element fingerprints *)
}

val make :
  ?repetitions:int -> ?amplify:int -> seed:int -> n:int -> k:int -> r:int -> unit -> params

(** [embedded_set_states params s t] realizes the two set fingerprints
    as concrete unit vectors with the exact inner products of the
    tensor-power construction.
    @raise Invalid_argument on wrong-size sets. *)
val embedded_set_states : params -> Gf2.t array -> Gf2.t array -> Vec.t * Vec.t

(** [set_overlap params s t] is [<h_S|h_T>]; 1 for equal sets (in any
    order), approximately [|S cap T| / k] otherwise. *)
val set_overlap : params -> Gf2.t array -> Gf2.t array -> float

(** [single_round_accept params s t strategy] runs the EQ chain on the
    set fingerprints (final SWAP test at [v_r] against its own set
    fingerprint). *)
val single_round_accept :
  params -> Gf2.t array -> Gf2.t array -> Strategy.t -> float

(** [accept] is the [repetitions]-fold power. *)
val accept :
  params -> Gf2.t array -> Gf2.t array -> Strategy.t -> float

(** [best_attack_accept params s t] maximizes over the chain-strategy
    library. *)
val best_attack_accept : params -> Gf2.t array -> Gf2.t array -> float * string

(** [costs params] — a set fingerprint costs
    [amplify * ceil (log2 (2 m))] qubits, independent of [k]:
    superposing elements is free (the SGDI observation). *)
val costs : params -> Report.costs
