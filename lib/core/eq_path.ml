open Qdp_fingerprint

type params = { n : int; r : int; seed : int; repetitions : int }

let paper_repetitions ~r =
  int_of_float (Float.ceil (2. *. 81. *. float_of_int (r * r) /. 4.))

let make ?repetitions ~seed ~n ~r () =
  if r < 1 then invalid_arg "Eq_path.make: r >= 1";
  let repetitions =
    match repetitions with Some k -> k | None -> paper_repetitions ~r
  in
  { n; r; seed; repetitions }

let fingerprint params = Fingerprint.standard ~seed:params.seed ~n:params.n

let instance params x y strategy =
  let fp = fingerprint params in
  let hx = Fingerprint.state fp x in
  let hy = Fingerprint.state fp y in
  Sim.two_state_chain
    ~embed:(Fingerprint.state fp)
    ~r:params.r ~left:hx ~right:hy
    ~final:(fun reg ->
      if Array.length reg <> 1 then
        invalid_arg "Eq_path: register shape mismatch";
      Fingerprint.accept_prob fp y reg.(0))
    strategy

let single_round_accept params x y strategy =
  Sim.path_accept (instance params x y strategy)

let accept params x y strategy =
  Sim.repeat_accept params.repetitions (single_round_accept params x y strategy)

let attack_library params x y =
  let mid = max 0 (params.r / 2) in
  [
    ("constant-x", Strategy.Constant x);
    ("constant-y", Strategy.Constant y);
    ("interpolate", Strategy.Geodesic);
    (Printf.sprintf "step@%d" mid, Strategy.Switch mid);
  ]

let best_attack_accept params x y =
  Qdp_log.attack_search ~proto:"eq_path"
    ~attrs:(fun () ->
      [ ("n", Qdp_obs.Trace.Int params.n); ("r", Qdp_obs.Trace.Int params.r) ])
  @@ fun () ->
  Qdp_log.best_candidate ~proto:"eq_path"
    ~score:(fun s -> single_round_accept params x y s)
    (attack_library params x y)

let soundness_bound_single ~r =
  1. -. (4. /. (81. *. float_of_int (r * r)))

let fingerprint_qubits params = Fingerprint.qubits_of_n params.n

let costs params =
  let q = fingerprint_qubits params in
  let k = params.repetitions in
  {
    Report.local_proof_qubits = (if params.r >= 2 then 2 * k * q else 0);
    total_proof_qubits = (params.r - 1) * 2 * k * q;
    local_message_qubits = k * q;
    total_message_qubits = params.r * k * q;
    rounds = 1;
  }

(* FGNP21 forwarding variant: coins f_j in {keep, forward} per node
   (f_0 = forward for v_0, which always sends its own fingerprint).
   Node j's test against the arriving register fires iff f_{j-1} =
   forward and f_j = keep (a forwarding node has already given its
   register away); v_r's POVM fires iff f_{r-1} = forward.  A
   2-state transfer DP marginalizes the coins exactly. *)
let fgnp_forwarding_accept params x y strategy =
  let fp = fingerprint params in
  let hx = Fingerprint.state fp x in
  let hy = Fingerprint.state fp y in
  let node_state =
    Strategy.node_state ~r:params.r ~left:hx ~right:hy
      ~embed:(Fingerprint.state fp) strategy
  in
  let r = params.r in
  if r = 1 then Fingerprint.accept_prob fp y hx
  else begin
    let state j = if j = 0 then hx else node_state j in
    let swap j j' =
      Sim.swap_accept [| state j |] [| state j' |]
    in
    (* v.(f) = E[prod of tests among v_1..v_j | coin of node j = f];
       f = 1 means "forward". *)
    let v = ref [| 1.0; 1.0 |] in
    (* node 1: its test fires iff v_0 forwarded (always) and f_1 = keep *)
    v := [| swap 0 1; 1.0 |];
    for j = 2 to r - 1 do
      let test f_prev f_cur =
        if f_prev = 1 && f_cur = 0 then swap (j - 1) j else 1.0
      in
      let next =
        Array.init 2 (fun f_cur ->
            0.5 *. ((!v.(0) *. test 0 f_cur) +. (!v.(1) *. test 1 f_cur)))
      in
      v := next
    done;
    let final = Fingerprint.accept_prob fp y (state (r - 1)) in
    (* v_r tests only when v_{r-1} forwarded *)
    0.5 *. ((!v.(0) *. 1.0) +. (!v.(1) *. final))
  end

let fgnp_costs params =
  let q = fingerprint_qubits params in
  let k = params.repetitions in
  {
    Report.local_proof_qubits = (if params.r >= 2 then k * q else 0);
    total_proof_qubits = (params.r - 1) * k * q;
    local_message_qubits = k * q;
    total_message_qubits = params.r * k * q;
    rounds = 1;
  }
