(** The shared cheating-strategy vocabulary for every chain-shaped
    protocol in the library.

    Historically {!Eq_path} and {!Sim} each carried their own strategy
    enum (Honest/Constant/Interpolate/Step vs
    All_left/All_right/Geodesic/Switch) describing the same object: a
    product prover on a chain whose two ends hold distinguished states.
    This module is the single type both sides — and every registry
    entry — now speak. *)

open Qdp_codes
open Qdp_linalg

(** What single-register state each intermediate node [j] of a chain
    [v_0 .. v_r] receives, given the two end states [left] and
    [right]. *)
type t =
  | Honest  (** every node gets [left] — the completeness prover *)
  | All_left  (** alias of the honest play when the ends agree *)
  | All_right  (** every node gets [right] *)
  | Constant of Gf2.t
      (** every node gets the embedding of a fixed string (requires an
          [embed] function at interpretation time) *)
  | Geodesic
      (** node [j] gets the great-circle point [j / r] from [left] to
          [right] — the strongest known product attack *)
  | Switch of int  (** [left] up to the given node, [right] after *)

(** [name s] is a short stable identifier ("honest", "all-left",
    "geodesic", "switch@5", ...). *)
val name : t -> string

(** [chain_library ~r] is the standard soundness-experiment library on
    a length-[r] chain: all-left, all-right, geodesic and the midpoint
    switch, under the names the tables print. *)
val chain_library : r:int -> (string * t) list

(** [node_state ~r ~left ~right ?embed s] interprets [s] as the
    function from intermediate node index [j] (with [1 <= j <= r - 1])
    to the state that node receives.  [embed] realizes [Constant]
    strings as states.
    @raise Invalid_argument on [Constant _] without [embed]. *)
val node_state :
  r:int -> left:Vec.t -> right:Vec.t -> ?embed:(Gf2.t -> Vec.t) -> t -> int -> Vec.t
