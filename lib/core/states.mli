(** Shared state-construction helpers for prover strategies. *)

open Qdp_linalg

(** [gaussian st] is one standard-normal draw (Box-Muller, two uniform
    draws from [st]).  The single shared sampler: every seeded engine
    draws through it, so sampling sequences are identical across call
    sites. *)
val gaussian : Random.State.t -> float

(** [random_unit st dim] is a Haar-ish random unit vector: [dim]
    complex entries with independent Gaussian parts (imaginary part
    drawn before real part, matching OCaml's right-to-left argument
    order — part of the frozen draw sequence), normalized. *)
val random_unit : Random.State.t -> int -> Vec.t

(** [geodesic u w t] is the point at parameter [t in [0, 1]] on the
    great-circle arc from the unit vector [u] to the unit vector [w]
    (real inner product assumed, as for fingerprints):
    [cos (t theta) u + sin (t theta) w_perp] with
    [theta = arccos <u|w>].  Overlaps telescope:
    [<geodesic s | geodesic t> = cos ((t - s) theta)] — the optimal
    "slow rotation" cheating proof for the EQ chain. *)
val geodesic : Vec.t -> Vec.t -> float -> Vec.t

(** [angle u w] is [arccos] of the (clipped) real part of [<u|w>]. *)
val angle : Vec.t -> Vec.t -> float
