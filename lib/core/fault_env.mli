(** The fault environment a protocol backend runs under.

    Bridges the declarative, payload-agnostic {!Qdp_network.Fault.spec}
    to the protocol backends: alongside the spec it carries the
    injector RNG (separate from the protocol's own randomness, so a
    deterministic plan never shifts protocol coin flips) and an
    optional corruption action on *quantum registers* — typically a
    sampled CPTP channel built by [Qdp_faults.Noise].  Each backend
    lifts that register action into its own payload type (and
    classical-payload backends substitute bit flips). *)

open Qdp_linalg
open Qdp_network

type t = {
  spec : Fault.spec;
  st : Random.State.t;  (** fault-injection RNG *)
  qnoise : (Random.State.t -> Vec.t -> Vec.t) option;
      (** corruption of a forwarded quantum register *)
}

val make :
  ?qnoise:(Random.State.t -> Vec.t -> Vec.t) -> st:Random.State.t -> Fault.spec -> t

(** A no-fault environment (still needs an RNG for uniformity). *)
val perfect : st:Random.State.t -> t

(** [apply_qnoise env st v] applies the register corruption, or is the
    identity when the environment carries none. *)
val apply_qnoise : t -> Random.State.t -> Vec.t -> Vec.t

(** [injector ?corrupt env] compiles the environment into a runtime
    injector over the backend's payload type. *)
val injector : ?corrupt:(Random.State.t -> 'm -> 'm) -> t -> 'm Fault.t
