open Qdp_linalg

type instance = { d : int; left : Vec.t; pairs : Mat.t array; final : Mat.t }

let swap_projector d =
  Mat.scale (Cx.re 0.5) (Mat.add (Mat.identity (d * d)) (Mat.swap_gate d))

(* symmetrization channel on a pair state *)
let symmetrize d rho =
  let s = Mat.swap_gate d in
  Mat.scale (Cx.re 0.5) (Mat.add rho (Mat.mul (Mat.mul s rho) s))

let check inst =
  let d = inst.d in
  if Vec.dim inst.left <> d then invalid_arg "Sep_sim: left dimension";
  if Mat.rows inst.final <> d || Mat.cols inst.final <> d then
    invalid_arg "Sep_sim: final dimension";
  Array.iter
    (fun rho ->
      if Mat.rows rho <> d * d || Mat.cols rho <> d * d then
        invalid_arg "Sep_sim: pair dimension")
    inst.pairs

(* The shared contraction of the node test against a boundary operator:
   C[k, k'] = sum_{a a'} Pi[(a k),(a' k')] E[a', a].  Every kernel
   below factors through it, which drops the naive d^6 nests to two
   d^4 passes over unboxed float arrays. *)
let pi_contract d pi e =
  let pr = Mat.raw_re pi and pi_ = Mat.raw_im pi in
  let er = Mat.raw_re e and ei = Mat.raw_im e in
  let dd = d * d in
  let c = Mat.create d d in
  let cr = Mat.raw_re c and ci = Mat.raw_im c in
  for k = 0 to d - 1 do
    for k' = 0 to d - 1 do
      let accr = ref 0. and acci = ref 0. in
      for a = 0 to d - 1 do
        let row = ((((a * d) + k) * dd) + k') in
        for a' = 0 to d - 1 do
          let p = row + (a' * d) in
          let pre = pr.{p} and pim = pi_.{p} in
          if pre <> 0. || pim <> 0. then begin
            let q = (a' * d) + a in
            let ere = er.{q} and eim = ei.{q} in
            accr := !accr +. ((pre *. ere) -. (pim *. eim));
            acci := !acci +. ((pre *. eim) +. (pim *. ere))
          end
        done
      done;
      cr.{(k * d) + k'} <- !accr;
      ci.{(k * d) + k'} <- !acci
    done
  done;
  c

(* Forward contraction step: given the boundary operator E on the
   arriving register and the node's (symmetrized) pair state rho on
   (kept, sent), produce the new boundary on the sent register:
   E'[s, s''] = sum_{k k'} C[k, k'] rho[(k' s),(k s'')]
   with C = pi_contract d pi e. *)
let forward_step d pi e rho =
  let c = pi_contract d pi e in
  let cr = Mat.raw_re c and ci = Mat.raw_im c in
  let rr = Mat.raw_re rho and ri = Mat.raw_im rho in
  let dd = d * d in
  let out = Mat.create d d in
  let outr = Mat.raw_re out and outi = Mat.raw_im out in
  for s = 0 to d - 1 do
    for s'' = 0 to d - 1 do
      let accr = ref 0. and acci = ref 0. in
      for k = 0 to d - 1 do
        for k' = 0 to d - 1 do
          let cre = cr.{(k * d) + k'} and cim = ci.{(k * d) + k'} in
          if cre <> 0. || cim <> 0. then begin
            let q = ((((k' * d) + s) * dd) + (k * d)) + s'' in
            let rre = rr.{q} and rim = ri.{q} in
            accr := !accr +. ((cre *. rre) -. (cim *. rim));
            acci := !acci +. ((cre *. rim) +. (cim *. rre))
          end
        done
      done;
      outr.{(s * d) + s''} <- !accr;
      outi.{(s * d) + s''} <- !acci
    done
  done;
  out

(* Backward contraction step: given the effective POVM B on the sent
   register, pull it through the node to an effective POVM on the
   arriving register:
   B'[a, a'] = sum_{k k'} Pi[(a k),(a' k')] D[k, k']
   with D[k, k'] = sum_{s s'} B[s, s'] rho[(k' s'),(k s)]. *)
let backward_step d pi b rho =
  let br = Mat.raw_re b and bi = Mat.raw_im b in
  let rr = Mat.raw_re rho and ri = Mat.raw_im rho in
  let dd = d * d in
  let dm = Mat.create d d in
  let dr = Mat.raw_re dm and di = Mat.raw_im dm in
  for k = 0 to d - 1 do
    for k' = 0 to d - 1 do
      let accr = ref 0. and acci = ref 0. in
      for s = 0 to d - 1 do
        for s' = 0 to d - 1 do
          let p = (s * d) + s' in
          let bre = br.{p} and bim = bi.{p} in
          if bre <> 0. || bim <> 0. then begin
            let q = ((((k' * d) + s') * dd) + (k * d)) + s in
            let rre = rr.{q} and rim = ri.{q} in
            accr := !accr +. ((bre *. rre) -. (bim *. rim));
            acci := !acci +. ((bre *. rim) +. (bim *. rre))
          end
        done
      done;
      dr.{(k * d) + k'} <- !accr;
      di.{(k * d) + k'} <- !acci
    done
  done;
  let pr = Mat.raw_re pi and pi_ = Mat.raw_im pi in
  let out = Mat.create d d in
  let outr = Mat.raw_re out and outi = Mat.raw_im out in
  for a = 0 to d - 1 do
    for a' = 0 to d - 1 do
      let accr = ref 0. and acci = ref 0. in
      for k = 0 to d - 1 do
        let row = ((((a * d) + k) * dd) + (a' * d)) in
        for k' = 0 to d - 1 do
          let p = row + k' in
          let pre = pr.{p} and pim = pi_.{p} in
          if pre <> 0. || pim <> 0. then begin
            let q = (k * d) + k' in
            let dre = dr.{q} and dim = di.{q} in
            accr := !accr +. ((pre *. dre) -. (pim *. dim));
            acci := !acci +. ((pre *. dim) +. (pim *. dre))
          end
        done
      done;
      outr.{(a * d) + a'} <- !accr;
      outi.{(a * d) + a'} <- !acci
    done
  done;
  out

let accept inst =
  check inst;
  let d = inst.d in
  let pi = swap_projector d in
  let e = ref (Mat.of_vec inst.left) in
  Array.iter
    (fun rho -> e := forward_step d pi !e (symmetrize d rho))
    inst.pairs;
  (Mat.trace (Mat.mul inst.final !e)).Complex.re

let product_instance ~d ~left ~states ~final =
  {
    d;
    left;
    pairs = Array.map (fun s -> Mat.of_vec (Vec.tensor s s)) states;
    final;
  }

(* The acceptance is tr[rho_j G_j] for the effective operator
   G[(k s),(k' s')] = sum_{a a'} Pi[(a k),(a' k')] E[a', a] B[s, s'];
   the sum over (a, a') is pi_contract and the (s, s') dependence is a
   rank-one pattern in B, so G is the Kronecker product C (x) B.  With
   the symmetrization channel folded in (self-adjoint), the optimal
   node proof is the top eigenvector of (G + S G S)/2. *)
let effective_operator d pi e b = Mat.tensor (pi_contract d pi e) b

(* maximize <a (x) b| G |a (x) b> by alternating eigenproblems on the
   two halves; each half update contracts the fixed factor out of G in
   two passes (Mat.quad_minor / Mat.quad_major). *)
let best_product_pair st ~d g =
  let a = ref (States.random_unit st d) and b = ref (States.random_unit st d) in
  let top g_eff =
    let evals, evecs = Eig.hermitian g_eff in
    (evals.(d - 1), Vec.init d (fun i -> Mat.get evecs i (d - 1)))
  in
  let value = ref 0. in
  for _ = 1 to 8 do
    (* effective operator on a with b fixed *)
    let ga = Mat.quad_minor g !b in
    let ga = Mat.scale (Cx.re 0.5) (Mat.add ga (Mat.adjoint ga)) in
    let _, va = top ga in
    a := va;
    let gb = Mat.quad_major g !a in
    let gb = Mat.scale (Cx.re 0.5) (Mat.add gb (Mat.adjoint gb)) in
    let lb, vb = top gb in
    b := vb;
    value := lb
  done;
  (Mat.of_vec (Vec.tensor !a !b), !value)

let optimize_generic update_node st ~d ~r ~left ~final ~sweeps =
  if r < 2 then invalid_arg "Sep_sim.optimize: r >= 2";
  let pi = swap_projector d in
  let random_pure () = Mat.of_vec (States.random_unit st (d * d)) in
  let pairs = Array.init (r - 1) (fun _ -> random_pure ()) in
  for _ = 1 to sweeps do
    for j = 0 to r - 2 do
      let e = ref (Mat.of_vec left) in
      for i = 0 to j - 1 do
        e := forward_step d pi !e (symmetrize d pairs.(i))
      done;
      let b = ref final in
      for i = r - 2 downto j + 1 do
        b := backward_step d pi !b (symmetrize d pairs.(i))
      done;
      let g = effective_operator d pi !e !b in
      let s = Mat.swap_gate d in
      let g_sym =
        Mat.scale (Cx.re 0.5) (Mat.add g (Mat.mul (Mat.mul s g) s))
      in
      let g_herm =
        Mat.scale (Cx.re 0.5) (Mat.add g_sym (Mat.adjoint g_sym))
      in
      pairs.(j) <- update_node g_herm
    done
  done;
  let final_inst = { d; left; pairs; final } in
  (final_inst, accept final_inst)

let optimize st ~d ~r ~left ~final ~sweeps =
  let update g =
    let evals, evecs = Eig.hermitian g in
    ignore evals;
    let top = (d * d) - 1 in
    Mat.of_vec (Vec.init (d * d) (fun i -> Mat.get evecs i top))
  in
  optimize_generic update st ~d ~r ~left ~final ~sweeps

let optimize_product st ~d ~r ~left ~final ~sweeps =
  let update g = fst (best_product_pair st ~d g) in
  optimize_generic update st ~d ~r ~left ~final ~sweeps
