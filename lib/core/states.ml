open Qdp_linalg

(* The one Box-Muller sampler: every engine that draws Gaussian
   amplitudes (toy fingerprints, random attack initializations,
   state-packing experiments) shares this exact draw sequence, so
   seeded outputs stay byte-identical across call sites. *)
let gaussian st =
  let u1 = Float.max 1e-12 (Random.State.float st 1.) in
  let u2 = Random.State.float st 1. in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let random_unit st dim =
  Vec.normalize (Vec.init dim (fun _ -> Cx.make (gaussian st) (gaussian st)))

let angle u w =
  let c = (Vec.dot u w).Complex.re in
  Float.acos (Float.max (-1.) (Float.min 1. c))

let geodesic u w t =
  let ov = Vec.dot u w in
  (* global phase is unobservable: align |w> so the overlap is real
     and non-negative, taking the short arc *)
  let w =
    if Cx.abs ov > 1e-12 then
      Vec.scale (Cx.scale (1. /. Cx.abs ov) (Cx.conj ov)) w
    else w
  in
  let c = Float.min 1. (Cx.abs ov) in
  let theta = Float.acos c in
  if theta < 1e-12 then Vec.copy u
  else begin
    let w_perp =
      let p = Vec.sub w (Vec.scale (Cx.re c) u) in
      Vec.normalize p
    in
    Vec.add
      (Vec.scale (Cx.re (Float.cos (t *. theta))) u)
      (Vec.scale (Cx.re (Float.sin (t *. theta))) w_perp)
  end
