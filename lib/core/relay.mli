(** The relay-point protocol for EQ on long paths (Section 4.1,
    Algorithm 6, Theorem 22).

    Every [spacing]-th node is a relay point receiving the full
    [n]-qubit string as a proof, which it measures to a classical
    string; between consecutive relay points the nodes run the
    SWAP-test EQ chain with [42 spacing^2] parallel repetitions on the
    fingerprints of the two endpoint strings.  With
    [spacing = ceil (n^{1/3})] the total proof size is
    [O~(r n^{2/3})] — beating the [Omega(r n)] total any classical dMA
    protocol needs (Corollary 25), for every ratio of [r] to [n]. *)

open Qdp_codes

type params = {
  n : int;
  r : int;
  seed : int;
  spacing : int;  (** distance between consecutive relay points *)
  inner_repetitions : int;  (** per-segment repetitions, paper: [42 spacing^2] *)
}

(** [make ?spacing ?inner_repetitions ~seed ~n ~r ()] defaults to the
    paper's [spacing = ceil (n^{1/3})] and
    [inner_repetitions = 42 spacing^2]. *)
val make : ?spacing:int -> ?inner_repetitions:int -> seed:int -> n:int -> r:int -> unit -> params

(** [relay_positions params] lists the relay nodes
    [spacing, 2 spacing, ...] strictly inside the path. *)
val relay_positions : params -> int list

(** A prover strategy: the classical strings the relay proofs measure
    to (the honest prover sends [|x>] everywhere), plus the chain
    strategy played inside each segment whose endpoint strings
    disagree. *)
type prover = {
  relay_strings : Gf2.t array;  (** one per relay position, in order *)
  segment_strategy : Strategy.t;
}

(** [honest_prover params x] relays [x] everywhere. *)
val honest_prover : params -> Gf2.t -> prover

(** [accept params x y prover] is the exact acceptance: the product
    over segments of the amplified EQ-chain acceptance between the
    segment's endpoint strings. *)
val accept : params -> Gf2.t -> Gf2.t -> prover -> float

(** [attack_library params x y] enumerates relay-string placements
    (split points) crossed with chain strategies. *)
val attack_library : params -> Gf2.t -> Gf2.t -> (string * prover) list

(** [best_attack_accept params x y] maximizes over
    {!attack_library}. *)
val best_attack_accept : params -> Gf2.t -> Gf2.t -> float * string

(** [costs params] accounts Algorithm 6: [n] qubits per relay point,
    [2 * inner_repetitions] fingerprint registers per intermediate. *)
val costs : params -> Report.costs

(** [total_proof_paper_bound params] is the Theorem 22 bound
    [r n^{2/3} log n] evaluated with constant 1 (for shape
    comparison). *)
val total_proof_paper_bound : params -> float
