open Qdp_codes
open Qdp_network

type model = DMA | DQMA | DQMA_sep | DQMA_sep_sep | DQCMA

let pp_model fmt m =
  Format.pp_print_string fmt
    (match m with
    | DMA -> "dMA"
    | DQMA -> "dQMA"
    | DQMA_sep -> "dQMA^sep"
    | DQMA_sep_sep -> "dQMA^sep,sep"
    | DQCMA -> "dQCMA")

type ('i, 'p) protocol = {
  name : string;
  model : model;
  rounds : int;
  repetitions : int;
  value : 'i -> bool;
  honest : 'i -> 'p option;
  accept : 'i -> 'p -> float;
  attacks : 'i -> (string * 'p) list;
  costs : 'i -> Report.costs;
}

type evaluation = {
  instance_is_yes : bool;
  honest_accept : float;
  best_attack : float;
  best_attack_name : string;
  meets_spec : bool;
}

let obs_evaluations = Qdp_obs.Metrics.counter "dqma.evaluations"
let obs_spec_violations = Qdp_obs.Metrics.counter "dqma.spec_violations"

let evaluate p inst =
  Qdp_obs.Metrics.incr obs_evaluations;
  Qdp_obs.Trace.with_span "dqma.evaluate"
    ~attrs:(fun () ->
      [ ("protocol", Qdp_obs.Trace.Str p.name);
        ("model", Qdp_obs.Trace.Str (Format.asprintf "%a" pp_model p.model));
        ("repetitions", Qdp_obs.Trace.Int p.repetitions) ])
  @@ fun () ->
  let amplify v = Sim.repeat_accept p.repetitions v in
  let instance_is_yes = p.value inst in
  let honest_accept =
    match p.honest inst with
    | Some prover -> amplify (p.accept inst prover)
    | None -> 0.
  in
  let best_attack, best_attack_name =
    Qdp_log.attack_search ~proto:"dqma" @@ fun () ->
    List.fold_left
      (fun (best, name) (n, prover) ->
        let a = amplify (p.accept inst prover) in
        Qdp_log.attack_candidate ~proto:p.name n a;
        if a > best then (a, n) else (best, name))
      (0., "none") (p.attacks inst)
  in
  let meets_spec =
    if instance_is_yes then honest_accept >= 2. /. 3.
    else Float.max best_attack honest_accept <= 1. /. 3.
  in
  if not meets_spec then Qdp_obs.Metrics.incr obs_spec_violations;
  { instance_is_yes; honest_accept; best_attack; best_attack_name; meets_spec }

let pp_evaluation fmt (name, e) =
  Format.fprintf fmt
    "%-28s %-3s honest %.4f | best attack %9.3e (%s) | %s" name
    (if e.instance_is_yes then "YES" else "NO")
    e.honest_accept e.best_attack e.best_attack_name
    (if e.meets_spec then "spec OK" else "SPEC VIOLATED")

type pair_instance = Gf2.t * Gf2.t

type multi_instance = {
  graph : Graph.t;
  terminals : int list;
  inputs : Gf2.t array;
}

let eq_path (params : Eq_path.params) =
  {
    name = Printf.sprintf "EQ path (r=%d)" params.Eq_path.r;
    model = DQMA_sep;
    rounds = 1;
    repetitions = params.Eq_path.repetitions;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) -> if Gf2.equal x y then Some Eq_path.Honest else None);
    accept = (fun (x, y) s -> Eq_path.single_round_accept params x y s);
    attacks = (fun (x, y) -> Eq_path.attack_library params x y);
    costs = (fun _ -> Eq_path.costs params);
  }

let eq_tree (params : Eq_tree.params) =
  {
    name = "EQ^t tree";
    model = DQMA_sep;
    rounds = 1;
    repetitions = params.Eq_tree.repetitions;
    value =
      (fun mi -> Array.for_all (fun v -> Gf2.equal v mi.inputs.(0)) mi.inputs);
    honest =
      (fun mi ->
        if Array.for_all (fun v -> Gf2.equal v mi.inputs.(0)) mi.inputs then
          Some Eq_tree.Honest
        else None);
    accept =
      (fun mi s ->
        Eq_tree.single_round_accept params mi.graph ~terminals:mi.terminals
          ~inputs:mi.inputs s);
    attacks = (fun mi -> Eq_tree.attack_library ~inputs:mi.inputs);
    costs =
      (fun mi ->
        Eq_tree.costs params (Eq_tree.tree_of mi.graph ~terminals:mi.terminals));
  }

let gt (params : Gt.params) =
  {
    name = Printf.sprintf "GT path (r=%d)" params.Gt.r;
    model = DQMA_sep;
    rounds = 1;
    repetitions = params.Gt.repetitions;
    value = (fun (x, y) -> Gf2.compare_big_endian x y > 0);
    honest =
      (fun (x, y) ->
        if Gf2.compare_big_endian x y > 0 then Some (Gt.honest_prover x y)
        else None);
    accept = (fun (x, y) p -> Gt.single_round_accept params x y p);
    attacks = (fun (x, y) -> Gt.attack_library params x y);
    costs = (fun _ -> Gt.costs params);
  }

let relay (params : Relay.params) =
  {
    name = Printf.sprintf "EQ relay (r=%d)" params.Relay.r;
    model = DQMA_sep;
    rounds = 1;
    (* relay segments amplify internally; no outer repetition *)
    repetitions = 1;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) ->
        if Gf2.equal x y then Some (Relay.honest_prover params x) else None);
    accept = (fun (x, y) p -> Relay.accept params x y p);
    attacks = (fun (x, y) -> Relay.attack_library params x y);
    costs = (fun _ -> Relay.costs params);
  }

let dqcma (params : Variants.params) =
  {
    name = Printf.sprintf "dQCMA EQ (r=%d)" params.Variants.r;
    model = DQCMA;
    rounds = 1;
    repetitions = params.Variants.repetitions;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) ->
        if Gf2.equal x y then Some Variants.Honest_strings else None);
    accept = (fun (x, y) p -> Variants.single_accept params x y p);
    attacks =
      (fun (x, y) ->
        let r = params.Variants.r in
        let all v = Variants.Strings (Array.make (r - 1) v) in
        [ ("all-x", all x); ("all-y", all y) ]
        @ List.init (r - 1) (fun j ->
              ( Printf.sprintf "switch@%d" (j + 1),
                Variants.Strings
                  (Array.init (r - 1) (fun i -> if i < j then x else y)) )));
    costs = (fun _ -> Variants.costs params);
  }

let dma_trivial ~n ~r =
  {
    name = Printf.sprintf "dMA trivial (r=%d)" r;
    model = DMA;
    rounds = 1;
    repetitions = 1;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) -> if Gf2.equal x y then Some (Runtime_dma.Honest x) else None);
    accept =
      (fun (x, y) p -> if fst (Runtime_dma.run ~r x y p) then 1.0 else 0.0);
    attacks =
      (fun (x, y) ->
        [ ("write-x", Runtime_dma.Honest x); ("write-y", Runtime_dma.Honest y) ]);
    costs =
      (fun _ ->
        {
          Report.local_proof_qubits = Runtime_dma.bits_per_node ~n;
          total_proof_qubits = (r + 1) * n;
          local_message_qubits = 2 * n;
          total_message_qubits = 2 * r * n;
          rounds = 1;
        });
  }

let rpls (params : Rpls.params) =
  {
    name = Printf.sprintf "RPLS EQ (r=%d)" params.Rpls.r;
    model = DMA;
    rounds = 1;
    repetitions = 1;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) -> if Gf2.equal x y then Some (Rpls.Write x) else None);
    accept = (fun (x, y) p -> Rpls.accept_probability params x y p);
    attacks =
      (fun (x, y) ->
        let r = params.Rpls.r in
        [ ("write-x", Rpls.Write x); ("write-y", Rpls.Write y);
          ( "split",
            Rpls.Write_each
              (Array.init (r + 1) (fun j -> if j <= r / 2 then x else y)) ) ]);
    costs = (fun _ -> Rpls.costs params);
  }

let set_eq (params : Set_eq.params) =
  let sorted s =
    let l = List.map Gf2.to_string (Array.to_list s) in
    List.sort compare l
  in
  {
    name = Printf.sprintf "SetEq (k=%d, r=%d)" params.Set_eq.k params.Set_eq.r;
    model = DQMA_sep;
    rounds = 1;
    repetitions = params.Set_eq.repetitions;
    value = (fun (s, t) -> sorted s = sorted t);
    honest =
      (fun (s, t) -> if sorted s = sorted t then Some Sim.All_left else None);
    accept = (fun (s, t) strat -> Set_eq.single_round_accept params s t strat);
    attacks =
      (fun _ ->
        [ ("all-left", Sim.All_left); ("all-right", Sim.All_right);
          ("geodesic", Sim.Geodesic) ]);
    costs = (fun _ -> Set_eq.costs params);
  }

type packed = Packed : ('i, 'p) protocol * 'i -> packed

let demo_suite ~seed =
  let st = Random.State.make [| seed; 0xd9a |] in
  let n = 24 and r = 4 in
  let x = Gf2.random st n in
  let y =
    let rec go () =
      let y = Gf2.random st n in
      if Gf2.equal x y then go () else y
    in
    go ()
  in
  let big, small =
    if Gf2.compare_big_endian x y > 0 then (x, y) else (y, x)
  in
  let k = Eq_path.paper_repetitions ~r in
  let eqp = Eq_path.make ~repetitions:k ~seed ~n ~r () in
  let gtp = Gt.make ~repetitions:k ~seed ~n ~r () in
  let rel = Relay.make ~seed ~n ~r:12 () in
  let dqc = Variants.make ~repetitions:64 ~seed ~n ~r () in
  let tree_params = Eq_tree.make ~repetitions:k ~seed ~n ~r:2 () in
  let star = Graph.star 4 in
  let terminals = [ 1; 2; 3; 4 ] in
  let mk_multi inputs = { graph = star; terminals; inputs } in
  [
    Packed (eq_path eqp, (Gf2.copy x, Gf2.copy x));
    Packed (eq_path eqp, (Gf2.copy x, Gf2.copy y));
    Packed (eq_tree tree_params, mk_multi (Array.make 4 (Gf2.copy x)));
    Packed
      ( eq_tree tree_params,
        mk_multi [| Gf2.copy x; Gf2.copy x; Gf2.copy x; Gf2.copy y |] );
    Packed (gt gtp, (Gf2.copy big, Gf2.copy small));
    Packed (gt gtp, (Gf2.copy small, Gf2.copy big));
    Packed (relay rel, (Gf2.copy x, Gf2.copy x));
    Packed (relay rel, (Gf2.copy x, Gf2.copy y));
    Packed (dqcma dqc, (Gf2.copy x, Gf2.copy x));
    Packed (dqcma dqc, (Gf2.copy x, Gf2.copy y));
    Packed (dma_trivial ~n ~r, (Gf2.copy x, Gf2.copy x));
    Packed (dma_trivial ~n ~r, (Gf2.copy x, Gf2.copy y));
    (let rp = { Rpls.n; r; parity_checks = 4 } in
     Packed (rpls rp, (Gf2.copy x, Gf2.copy x)));
    (let rp = { Rpls.n; r; parity_checks = 4 } in
     Packed (rpls rp, (Gf2.copy x, Gf2.copy y)));
    (let sp = Set_eq.make ~repetitions:k ~seed ~n ~k:3 ~r () in
     let set = Array.init 3 (fun i -> Gf2.of_int ~width:n (i + 5)) in
     let perm = [| set.(2); set.(0); set.(1) |] in
     Packed (set_eq sp, (set, perm)));
    (let sp = Set_eq.make ~repetitions:k ~seed ~n ~k:3 ~r () in
     let set = Array.init 3 (fun i -> Gf2.of_int ~width:n (i + 5)) in
     let other = Array.init 3 (fun i -> Gf2.of_int ~width:n (i + 900)) in
     Packed (set_eq sp, (set, other)));
  ]

let evaluate_packed (Packed (p, inst)) = (p.name, evaluate p inst)
