open Qdp_codes
open Qdp_network

type model = DMA | DQMA | DQMA_sep | DQMA_sep_sep | DQCMA

let pp_model fmt m =
  Format.pp_print_string fmt
    (match m with
    | DMA -> "dMA"
    | DQMA -> "dQMA"
    | DQMA_sep -> "dQMA^sep"
    | DQMA_sep_sep -> "dQMA^sep,sep"
    | DQCMA -> "dQCMA")

type ('i, 'p) protocol = {
  name : string;
  model : model;
  rounds : int;
  turns : int;
  repetitions : int;
  value : 'i -> bool;
  honest : 'i -> 'p option;
  accept : 'i -> 'p -> float;
  attacks : 'i -> (string * 'p) list;
  costs : 'i -> Report.costs;
}

type evaluation = {
  instance_is_yes : bool;
  honest_accept : float;
  best_attack : float;
  best_attack_name : string;
  meets_spec : bool;
}

let obs_evaluations = Qdp_obs.Metrics.counter "dqma.evaluations"
let obs_spec_violations = Qdp_obs.Metrics.counter "dqma.spec_violations"

let evaluate p inst =
  Qdp_obs.Metrics.incr obs_evaluations;
  Qdp_obs.Trace.with_span "dqma.evaluate"
    ~attrs:(fun () ->
      [ ("protocol", Qdp_obs.Trace.Str p.name);
        ("model", Qdp_obs.Trace.Str (Format.asprintf "%a" pp_model p.model));
        ("turns", Qdp_obs.Trace.Int p.turns);
        ("repetitions", Qdp_obs.Trace.Int p.repetitions) ])
  @@ fun () ->
  let amplify v = Sim.repeat_accept p.repetitions v in
  let instance_is_yes = p.value inst in
  let honest_accept =
    match p.honest inst with
    | Some prover -> amplify (p.accept inst prover)
    | None -> 0.
  in
  let best_attack, best_attack_name =
    Qdp_log.attack_search ~proto:"dqma" @@ fun () ->
    Qdp_log.best_candidate ~proto:p.name
      ~score:(fun prover -> amplify (p.accept inst prover))
      (p.attacks inst)
  in
  let meets_spec =
    if instance_is_yes then honest_accept >= 2. /. 3.
    else Float.max best_attack honest_accept <= 1. /. 3.
  in
  if not meets_spec then Qdp_obs.Metrics.incr obs_spec_violations;
  { instance_is_yes; honest_accept; best_attack; best_attack_name; meets_spec }

let pp_evaluation fmt (name, e) =
  Format.fprintf fmt
    "%-28s %-3s honest %.4f | best attack %9.3e (%s) | %s" name
    (if e.instance_is_yes then "YES" else "NO")
    e.honest_accept e.best_attack e.best_attack_name
    (if e.meets_spec then "spec OK" else "SPEC VIOLATED")

type pair_instance = Gf2.t * Gf2.t

type multi_instance = {
  graph : Graph.t;
  terminals : int list;
  inputs : Gf2.t array;
}

let eq_path (params : Eq_path.params) =
  {
    name = Printf.sprintf "EQ path (r=%d)" params.Eq_path.r;
    model = DQMA_sep;
    rounds = 1;
    turns = 1;
    repetitions = params.Eq_path.repetitions;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) -> if Gf2.equal x y then Some Strategy.Honest else None);
    accept = (fun (x, y) s -> Eq_path.single_round_accept params x y s);
    attacks = (fun (x, y) -> Eq_path.attack_library params x y);
    costs = (fun _ -> Eq_path.costs params);
  }

let eq_tree (params : Eq_tree.params) =
  {
    name = "EQ^t tree";
    model = DQMA_sep;
    rounds = 1;
    turns = 1;
    repetitions = params.Eq_tree.repetitions;
    value =
      (fun mi -> Array.for_all (fun v -> Gf2.equal v mi.inputs.(0)) mi.inputs);
    honest =
      (fun mi ->
        if Array.for_all (fun v -> Gf2.equal v mi.inputs.(0)) mi.inputs then
          Some Eq_tree.Honest
        else None);
    accept =
      (fun mi s ->
        Eq_tree.single_round_accept params mi.graph ~terminals:mi.terminals
          ~inputs:mi.inputs s);
    attacks = (fun mi -> Eq_tree.attack_library ~inputs:mi.inputs);
    costs =
      (fun mi ->
        Eq_tree.costs params (Eq_tree.tree_of mi.graph ~terminals:mi.terminals));
  }

let gt (params : Gt.params) =
  {
    name = Printf.sprintf "GT path (r=%d)" params.Gt.r;
    model = DQMA_sep;
    rounds = 1;
    turns = 1;
    repetitions = params.Gt.repetitions;
    value = (fun (x, y) -> Gf2.compare_big_endian x y > 0);
    honest =
      (fun (x, y) ->
        if Gf2.compare_big_endian x y > 0 then Some (Gt.honest_prover x y)
        else None);
    accept = (fun (x, y) p -> Gt.single_round_accept params x y p);
    attacks = (fun (x, y) -> Gt.attack_library params x y);
    costs = (fun _ -> Gt.costs params);
  }

let relay (params : Relay.params) =
  {
    name = Printf.sprintf "EQ relay (r=%d)" params.Relay.r;
    model = DQMA_sep;
    rounds = 1;
    turns = 1;
    (* relay segments amplify internally; no outer repetition *)
    repetitions = 1;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) ->
        if Gf2.equal x y then Some (Relay.honest_prover params x) else None);
    accept = (fun (x, y) p -> Relay.accept params x y p);
    attacks = (fun (x, y) -> Relay.attack_library params x y);
    costs = (fun _ -> Relay.costs params);
  }

let dqcma (params : Variants.params) =
  {
    name = Printf.sprintf "dQCMA EQ (r=%d)" params.Variants.r;
    model = DQCMA;
    rounds = 1;
    turns = 1;
    repetitions = params.Variants.repetitions;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) ->
        if Gf2.equal x y then Some Variants.Honest_strings else None);
    accept = (fun (x, y) p -> Variants.single_accept params x y p);
    attacks =
      (fun (x, y) ->
        let r = params.Variants.r in
        let all v = Variants.Strings (Array.make (r - 1) v) in
        [ ("all-x", all x); ("all-y", all y) ]
        @ List.init (r - 1) (fun j ->
              ( Printf.sprintf "switch@%d" (j + 1),
                Variants.Strings
                  (Array.init (r - 1) (fun i -> if i < j then x else y)) )));
    costs = (fun _ -> Variants.costs params);
  }

let dma_trivial ~n ~r =
  {
    name = Printf.sprintf "dMA trivial (r=%d)" r;
    model = DMA;
    rounds = 1;
    turns = 1;
    repetitions = 1;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) -> if Gf2.equal x y then Some (Runtime_dma.Honest x) else None);
    accept =
      (fun (x, y) p -> if fst (Runtime_dma.run ~r x y p) then 1.0 else 0.0);
    attacks =
      (fun (x, y) ->
        [ ("write-x", Runtime_dma.Honest x); ("write-y", Runtime_dma.Honest y) ]);
    costs =
      (fun _ ->
        {
          Report.local_proof_qubits = Runtime_dma.bits_per_node ~n;
          total_proof_qubits = (r + 1) * n;
          local_message_qubits = 2 * n;
          total_message_qubits = 2 * r * n;
          rounds = 1;
        });
  }

let rpls (params : Rpls.params) =
  {
    name = Printf.sprintf "RPLS EQ (r=%d)" params.Rpls.r;
    model = DMA;
    rounds = 1;
    turns = 1;
    repetitions = 1;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) -> if Gf2.equal x y then Some (Rpls.Write x) else None);
    accept = (fun (x, y) p -> Rpls.accept_probability params x y p);
    attacks =
      (fun (x, y) ->
        let r = params.Rpls.r in
        [ ("write-x", Rpls.Write x); ("write-y", Rpls.Write y);
          ( "split",
            Rpls.Write_each
              (Array.init (r + 1) (fun j -> if j <= r / 2 then x else y)) ) ]);
    costs = (fun _ -> Rpls.costs params);
  }

let ieq (params : Ieq.params) =
  Ieq.validate params;
  {
    name = Printf.sprintf "iEQ path (%d-turn)" params.Ieq.turns;
    model = DMA;
    rounds = 1;
    turns = params.Ieq.turns;
    repetitions = params.Ieq.repetitions;
    value = (fun (x, y) -> Gf2.equal x y);
    honest =
      (fun (x, y) -> if Gf2.equal x y then Some Ieq.Answer_x else None);
    accept = (fun inst p -> Ieq.accept params inst p);
    attacks = (fun _ -> Ieq.attacks params);
    costs = (fun _ -> Ieq.costs params);
  }

let set_eq (params : Set_eq.params) =
  let sorted s =
    let l = List.map Gf2.to_string (Array.to_list s) in
    List.sort compare l
  in
  {
    name = Printf.sprintf "SetEq (k=%d, r=%d)" params.Set_eq.k params.Set_eq.r;
    model = DQMA_sep;
    rounds = 1;
    turns = 1;
    repetitions = params.Set_eq.repetitions;
    value = (fun (s, t) -> sorted s = sorted t);
    honest =
      (fun (s, t) -> if sorted s = sorted t then Some Strategy.All_left else None);
    accept = (fun (s, t) strat -> Set_eq.single_round_accept params s t strat);
    attacks =
      (fun _ ->
        [ ("all-left", Strategy.All_left); ("all-right", Strategy.All_right);
          ("geodesic", Strategy.Geodesic) ]);
    costs = (fun _ -> Set_eq.costs params);
  }

type rv_instance = {
  rv_graph : Graph.t;
  rv_terminals : int list;
  rv_inputs : Gf2.t array;
  rv_i : int;
  rv_j : int;
}

let rv (params : Rv.params) =
  let value ri = Rv.rv_value ~inputs:ri.rv_inputs ~i:ri.rv_i ~j:ri.rv_j in
  {
    name = "RV rank";
    model = DQMA_sep;
    rounds = 1;
    turns = 1;
    (* the per-path comparison amplification is internal to Rv.accept *)
    repetitions = 1;
    value;
    honest = (fun ri -> if value ri then Some Rv.Honest_directions else None);
    accept =
      (fun ri p ->
        Rv.accept params ri.rv_graph ~terminals:ri.rv_terminals
          ~inputs:ri.rv_inputs ~i:ri.rv_i ~j:ri.rv_j p);
    attacks =
      (fun ri ->
        (* every direction claim passing the root's count check; the
           rest are rejected deterministically *)
        let t = Array.length ri.rv_inputs in
        List.filter_map
          (fun m ->
            let dirs = Array.init t (fun k -> m land (1 lsl k) <> 0) in
            let count = ref 0 in
            Array.iteri (fun k b -> if k <> ri.rv_i && b then incr count) dirs;
            if !count <> t - ri.rv_j then None
            else
              Some
                ( Printf.sprintf "claim=%s"
                    (String.concat ""
                       (List.init t (fun k -> if dirs.(k) then "1" else "0"))),
                  Rv.Claim dirs ))
          (List.init (1 lsl t) Fun.id));
    costs =
      (fun ri ->
        let tr =
          Spanning_tree.build_rooted_at ri.rv_graph ~terminals:ri.rv_terminals
            ~root_terminal:ri.rv_i
        in
        Rv.costs params tr ~t:(Array.length ri.rv_inputs));
  }

let oneway_forall (proto : Qdp_commcc.Oneway.t)
    (params : Oneway_compiler.params) =
  let value mi =
    Qdp_commcc.Problems.forall_t proto.Qdp_commcc.Oneway.problem mi.inputs
  in
  {
    name = Printf.sprintf "forall_t %s" proto.Qdp_commcc.Oneway.name;
    model = DQMA_sep;
    rounds = 1;
    turns = 1;
    repetitions = params.Oneway_compiler.repetitions;
    value;
    honest = (fun mi -> if value mi then Some Oneway_compiler.Honest else None);
    accept =
      (fun mi p ->
        Oneway_compiler.single_accept params proto mi.graph
          ~terminals:mi.terminals ~inputs:mi.inputs p);
    attacks =
      (fun mi ->
        let t = Array.length mi.inputs in
        List.concat
          (List.init t (fun k ->
               [
                 ( Printf.sprintf "constant-x%d" (k + 1),
                   Oneway_compiler.Constant_of_terminal k );
                 ( Printf.sprintf "geodesic->x%d" (k + 1),
                   Oneway_compiler.Depth_geodesic k );
               ])));
    costs =
      (fun mi ->
        Oneway_compiler.costs params proto mi.graph ~terminals:mi.terminals);
  }

type packed = Packed : ('i, 'p) protocol * 'i -> packed

let evaluate_packed (Packed (p, inst)) = (p.name, evaluate p inst)

(* ------------------------------------------------------------------ *)
(* Backends and the differential harness                               *)
(* ------------------------------------------------------------------ *)

type ('i, 'p) network = Random.State.t -> 'i -> 'p -> bool

type ('i, 'p) faulty_network =
  Random.State.t -> Fault_env.t -> 'i -> 'p -> Runtime.verdict array * Runtime.stats

type ('i, 'p) backend = Analytic | Network of ('i, 'p) network

let obs_crossval_checks = Qdp_obs.Metrics.counter "crossval.checks"

let obs_crossval_disagreements =
  Qdp_obs.Metrics.counter "crossval.disagreements"

let obs_crossval_runs = Qdp_obs.Metrics.counter "crossval.network_runs"

let backend_accept ?(trials = 2000) ~st backend p inst prover =
  match backend with
  | Analytic -> p.accept inst prover
  | Network run ->
      let hits =
        Qdp_dist.monte_carlo_hits ~label:"xval" ~st ~trials (fun st ->
            Qdp_obs.Metrics.incr obs_crossval_runs;
            run st inst prover)
      in
      float_of_int hits /. float_of_int trials

type check = {
  check_strategy : string;
  analytic : float;
  sampled : float;
  trials : int;
  tolerance : float;
  agree : bool;
}

let cross_validate ?(trials = 2000) ?(z = 5.) ~st ~network p inst =
  Qdp_obs.Trace.with_span "dqma.cross_validate"
    ~attrs:(fun () -> [ ("protocol", Qdp_obs.Trace.Str p.name) ])
  @@ fun () ->
  Qdp_obs.Prof.section "cross_validate" @@ fun () ->
  let provers =
    (match p.honest inst with Some h -> [ ("honest", h) ] | None -> [])
    @ p.attacks inst
  in
  (* One sampling state per strategy, split off [st] in list order on
     the calling domain, so the per-strategy comparisons can run on
     any number of domains without perturbing each other's randomness
     — verdicts are byte-identical at every [--jobs] value. *)
  let tagged =
    Array.of_list
      (List.map (fun (name, prover) -> (name, prover, Random.State.split st)) provers)
  in
  (* ticks per network run: strategies x trials units in total *)
  let progress =
    Qdp_obs.Progress.start
      ~total:(Array.length tagged * trials)
      ("xval/" ^ p.name)
  in
  let checks =
    Qdp_dist.map_shards ~label:("xval/" ^ p.name) ~n:(Array.length tagged)
      (fun i ->
         let name, prover, pst = tagged.(i) in
         let analytic = p.accept inst prover in
         let hits =
           Qdp_par.monte_carlo_hits ~st:pst ~trials (fun st ->
               Qdp_obs.Metrics.incr obs_crossval_runs;
               Qdp_obs.Progress.step progress;
               network st inst prover)
         in
         let sampled = float_of_int hits /. float_of_int trials in
         (* a deterministic verdict (p in {0, 1}) must reproduce exactly;
            otherwise the analytic value must fall inside the z-sigma
            Wilson score interval of the sampled frequency *)
         let deterministic = analytic < 1e-9 || analytic > 1. -. 1e-9 in
         let iv = Runtime.wilson ~z ~hits ~trials () in
         let tolerance =
           if deterministic then 1e-6
           else (iv.Runtime.upper -. iv.Runtime.lower) /. 2.
         in
         let agree =
           if deterministic then Float.abs (analytic -. sampled) <= 1e-6
           else analytic >= iv.Runtime.lower && analytic <= iv.Runtime.upper
         in
         Qdp_obs.Metrics.incr obs_crossval_checks;
         if not agree then Qdp_obs.Metrics.incr obs_crossval_disagreements;
         { check_strategy = name; analytic; sampled; trials; tolerance; agree })
  in
  Qdp_obs.Progress.finish progress;
  Array.to_list checks

let pp_check fmt c =
  Format.fprintf fmt "%-16s analytic %.6f | sampled %.6f (%d trials) | %s"
    c.check_strategy c.analytic c.sampled c.trials
    (if c.agree then "agree" else "DISAGREE")
