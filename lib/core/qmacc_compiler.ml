open Qdp_linalg
open Qdp_commcc

type params = { r : int; repetitions : int }

let make ?repetitions ~r () =
  if r < 1 then invalid_arg "Qmacc_compiler.make: r >= 1";
  let repetitions =
    match repetitions with
    | Some k -> k
    | None -> Eq_path.paper_repetitions ~r
  in
  { r; repetitions }

type prover = Honest | Proof of Vec.t

let single_accept params (proto : ('a, 'b) Qma_comm.oneway) xa xb prover =
  let proof =
    match prover with Honest -> proto.honest_proof xa xb | Proof p -> p
  in
  let pa = proto.alice_accept xa proof in
  if pa <= 1e-15 then 0.
  else begin
    let msg = proto.alice_message xa proof in
    Sim.path_accept
      (Sim.two_state_chain ~r:params.r ~left:msg ~right:msg
         ~final:(fun reg ->
           if Array.length reg <> 1 then
             invalid_arg "Qmacc_compiler: register shape";
           proto.bob_accept xb reg.(0))
         Strategy.All_left)
    *. pa
  end

let accept params proto xa xb prover =
  Sim.repeat_accept params.repetitions (single_accept params proto xa xb prover)

let best_attack_accept params proto xa xb ~candidate_proofs =
  List.fold_left
    (fun (best, best_name) (name, p) ->
      let a = single_accept params proto xa xb (Proof p) in
      if a > best then (a, name) else (best, best_name))
    (0., "none") candidate_proofs

let costs params (proto : ('a, 'b) Qma_comm.oneway) =
  let gamma = proto.proof_qubits and mu = proto.message_qubits in
  let k = params.repetitions in
  {
    Report.local_proof_qubits =
      (if params.r >= 2 then 2 * k * (gamma + mu) else k * gamma);
    total_proof_qubits =
      (k * gamma) + ((params.r - 1) * 2 * k * (gamma + mu));
    local_message_qubits = k * (gamma + mu);
    total_message_qubits = params.r * k * (gamma + mu);
    rounds = 1;
  }

let pipeline_c ~total_proof ~min_edge_message = total_proof + min_edge_message

let sep_costs ~r ~c =
  let cf = float_of_int c in
  float_of_int (r * r) *. cf *. cf
  *. (Float.log (Float.max 2. cf) /. Float.log 2.)

let run_lsd_pipeline params ~ambient ~inst =
  let proto = Qma_comm.lsd_oneway ~ambient in
  let honest = single_accept params proto inst.Lsd.v1 inst.Lsd.v2 Honest in
  let candidates =
    ("principal", Lsd.honest_proof inst)
    :: List.mapi
         (fun i b ->
           (Printf.sprintf "basis-%d" i, Lsd.honest_proof { inst with Lsd.v2 = Qdp_linalg.Subspace.of_spanning [ b ] }))
         (Qdp_linalg.Subspace.basis inst.Lsd.v1)
  in
  let best, _ =
    best_attack_accept params proto inst.Lsd.v1 inst.Lsd.v2
      ~candidate_proofs:candidates
  in
  (honest, best)
