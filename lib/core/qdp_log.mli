(** Shared {!Logs} source for the protocol engines.  Set its level to
    [Debug] to trace attack-library searches. *)

val src : Logs.src

module Log : Logs.LOG

(** [attack_candidate ~proto name p] records one candidate strategy
    [name] with single-round acceptance [p]: a debug log line on the
    [qdp.core] source, plus the [attacks.candidates] counter and the
    [attacks.accept_prob] histogram when {!Qdp_obs} is enabled. *)
val attack_candidate : proto:string -> string -> float -> unit

(** [attack_search ~proto ?attrs f] wraps a whole attack search in a
    ["<proto>.attack_search"] span and bumps [attacks.searches]. *)
val attack_search :
  proto:string ->
  ?attrs:(unit -> (string * Qdp_obs.Trace.value) list) ->
  (unit -> 'a) ->
  'a

(** [best_candidate ~proto ~score candidates] scores every
    [(name, candidate)] on the [Qdp_par] pool, then replays the
    results in list order through {!attack_candidate} and a
    first-strict-improvement max fold — the returned
    [(best score, best name)], the debug log and the metrics are
    byte-identical to a sequential search at every [--jobs] value.
    Returns [(0., "none")] on an empty list (or when nothing beats
    0). *)
val best_candidate :
  proto:string -> score:('c -> float) -> (string * 'c) list -> float * string
