(** Product-proof acceptance engines.

    Every verification protocol in the paper decomposes, once the
    prover is restricted to proofs that are products over registers
    (the dQMA^sep,sep model — which includes every honest prover in the
    paper), into local tests on pairwise-disjoint register sets whose
    only coupling is through the classical symmetrization /
    permutation coins.  Conditioned on the coins all tests are
    independent with closed-form acceptance probabilities, so the
    joint acceptance is an expectation of a product whose coupling
    graph is the path or tree itself — computed here {e exactly} by
    transfer-matrix / tree dynamic programming, in time linear in the
    network size.  No Monte-Carlo error enters any number these
    engines report. *)

open Qdp_commcc

(** A register: a bundle of independent pure-state factors (see
    {!Qdp_commcc.Oneway.bundle}). *)
type register = Oneway.bundle

(** [swap_accept a b] is the SWAP-test acceptance on the product of
    two (unit) registers: [(1 + |<a|b>|^2) / 2]. *)
val swap_accept : register -> register -> float

(** [perm_accept regs] is the permutation-test acceptance on the
    product of [k] registers: [1/k! sum_pi prod_i <r_i | r_{pi i}>]. *)
val perm_accept : register list -> float

(** One full path protocol in the shape of Algorithm 3/10: node [v_0]
    runs a local step accepting with probability [left_accept] and
    sends [left_send]; each intermediate node [v_j] holds the prover
    registers [pairs.(j-1) = (R_{j,0}, R_{j,1})], symmetrizes, SWAP
    tests the arriving register against the kept one and forwards the
    other; [v_r] applies its POVM, with acceptance probability
    [final_accept] on the arriving register. *)
type path_instance = {
  length : int;  (** [r]: nodes are [v_0 .. v_r], [r >= 1] *)
  left_accept : float;
  left_send : register;
  pairs : (register * register) array;  (** length [r - 1] *)
  final_accept : register -> float;
}

(** [path_accept inst] is the exact probability that {e every} node
    accepts, marginalized over all symmetrization coins by the
    transfer-matrix DP. *)
val path_accept : path_instance -> float

(** An up-tree protocol in the shape of Algorithm 5: leaves send their
    terminal states toward the root; every non-terminal node
    symmetrizes its prover pair, forwards one register to its parent
    and permutation-tests the kept register against everything arriving
    from its children; the root tests its own terminal state against
    its children's registers. *)
type tree_instance = {
  tree : Qdp_network.Spanning_tree.t;
  root_state : register;
  leaf_state : int -> register;  (** terminal leaf tree-node -> state *)
  internal_pair : int -> register * register;
      (** internal tree-node -> prover registers [(R_{v,0}, R_{v,1})] *)
  use_permutation_test : bool;
      (** [true] = Algorithm 5 (this paper); [false] = the FGNP21
          ablation where each node SWAP-tests against one uniformly
          random child and discards the rest *)
}

(** [tree_accept st inst] is the probability every node accepts,
    exact over symmetrization coins (and, for the FGNP21 variant,
    random child choices).  [st] seeds nothing on the default exact
    path; it is consumed only when the per-node coin space exceeds
    {!tree_enum_limit} children and sampling takes over. *)
val tree_accept : Random.State.t -> tree_instance -> float

(** Children-per-node bound up to which the tree DP enumerates coins
    exactly (beyond it, Monte-Carlo with [2^16] samples). *)
val tree_enum_limit : int

(** A down-tree protocol in the shape of Algorithm 9: the root sends
    its message to every child; an internal node with [delta] children
    holds [delta + 1] prover registers, permutes them uniformly, keeps
    one, forwards one to each child, and SWAP tests the kept register
    against the one arriving from its parent; each terminal leaf runs
    Bob's measurement on the arriving register. *)
type down_tree_instance = {
  dtree : Qdp_network.Spanning_tree.t;
  root_message : register;
  internal_registers : int -> register array;
      (** internal tree-node with [delta] children -> [delta + 1]
          prover registers *)
  leaf_accept : int -> register -> float;
      (** terminal leaf tree-node -> Bob's acceptance on the arriving
          register *)
}

(** [down_tree_accept inst] is the exact joint acceptance (the
    per-node permutation coins are enumerated; memoization over the
    at most [delta + 1] candidate arriving registers keeps this
    polynomial). *)
val down_tree_accept : down_tree_instance -> float

(** [repeat_accept k p] is [p^k] — the acceptance of [k] independent
    parallel repetitions when the prover plays the same product
    strategy in each copy. *)
val repeat_accept : int -> float -> float

(** [two_state_chain ~r ~left ~right ~final strategy] assembles the
    {!path_instance} a {!Strategy.t} describes ([v_0] sends [left];
    [final] is [v_r]'s acceptance).  [embed] realizes
    {!Strategy.Constant} strings as states. *)
val two_state_chain :
  ?embed:(Qdp_codes.Gf2.t -> Qdp_linalg.Vec.t) ->
  r:int ->
  left:Qdp_linalg.Vec.t ->
  right:Qdp_linalg.Vec.t ->
  final:(register -> float) ->
  Strategy.t ->
  path_instance
