open Qdp_linalg
open Qdp_fingerprint
open Qdp_network

type node_state = {
  outgoing : Vec.t option;  (** register forwarded to the parent *)
  kept : Vec.t option;  (** register used in the local test, if any *)
  mutable verdict : Runtime.verdict;
}

let run_with ?faults st params g ~terminals ~inputs strategy =
  let fp =
    Fingerprint.standard ~seed:params.Eq_tree.seed ~n:params.Eq_tree.n
  in
  let states = Array.map (Fingerprint.state fp) inputs in
  let tr = Eq_tree.tree_of g ~terminals in
  let height = max 1 (Spanning_tree.height tr) in
  let internal_state v =
    match strategy with
    | Eq_tree.Honest -> states.(0)
    | Eq_tree.Constant z -> Fingerprint.state fp z
    | Eq_tree.Depth_interpolate target ->
        States.geodesic states.(0) states.(target)
          (float_of_int (Spanning_tree.depth tr v) /. float_of_int height)
  in
  (* materialize the tree as its own network *)
  let size = Spanning_tree.size tr in
  let tree_g = Graph.create size in
  for v = 0 to size - 1 do
    match Spanning_tree.parent tr v with
    | Some p -> Graph.add_edge tree_g v p
    | None -> ()
  done;
  let root = Spanning_tree.root tr in
  let child_count =
    let c = Array.make size 0 in
    for v = 0 to size - 1 do
      match Spanning_tree.parent tr v with
      | Some p -> c.(p) <- c.(p) + 1
      | None -> ()
    done;
    c
  in
  let program =
    {
      Runtime.init =
        (fun v ->
          match Spanning_tree.terminal_of tr v with
          | Some i when v <> root ->
              (* terminal leaf: sends its own fingerprint, tests nothing *)
              { outgoing = Some states.(i); kept = None; verdict = Accept }
          | Some _ ->
              (* the root terminal tests its own fingerprint *)
              { outgoing = None; kept = Some states.(0); verdict = Accept }
          | None ->
              let s = internal_state v in
              let a, b = (Vec.copy s, Vec.copy s) in
              let kept, out = if Random.State.bool st then (a, b) else (b, a) in
              { outgoing = Some out; kept = Some kept; verdict = Accept });
      round =
        (fun ~round ~id state ~inbox ->
          match round with
          | 1 -> (
              match (state.outgoing, Spanning_tree.parent tr id) with
              | Some reg, Some p -> (state, [ (p, reg) ])
              | _ -> (state, []))
          | 2 ->
              (* timeout-as-reject: every tree child must report *)
              let senders =
                List.length (List.sort_uniq compare (List.map fst inbox))
              in
              if senders < child_count.(id) then
                state.verdict <- Runtime.Reject;
              (match (state.kept, inbox) with
              | Some own, _ :: _ ->
                  let sents = List.map (fun (_, reg) -> [| reg |]) inbox in
                  let p =
                    if params.Eq_tree.use_permutation_test then
                      Sim.perm_accept ([| own |] :: sents)
                    else begin
                      (* FGNP21 ablation: uniformly random child *)
                      let arr = Array.of_list sents in
                      let pick = arr.(Random.State.int st (Array.length arr)) in
                      Sim.swap_accept [| own |] pick
                    end
                  in
                  if Random.State.float st 1. > p then
                    state.verdict <- Runtime.Reject;
                  (state, [])
              | _ -> (state, []));
          | _ -> (state, []));
      finish = (fun ~id:_ state -> state.verdict);
    }
  in
  Runtime.run ?faults tree_g ~rounds:2 program

let run_once st params g ~terminals ~inputs strategy =
  let verdicts, stats = run_with st params g ~terminals ~inputs strategy in
  (Runtime.global_verdict verdicts = Runtime.Accept, stats)

(* Payloads are bare fingerprint registers, as in the path backend. *)
let run_faulty st (env : Fault_env.t) params g ~terminals ~inputs strategy =
  let faults = Fault_env.injector ~corrupt:(Fault_env.apply_qnoise env) env in
  run_with ~faults st params g ~terminals ~inputs strategy

let estimate_acceptance st ~trials params g ~terminals ~inputs strategy =
  Runtime.estimate_acceptance ~st ~trials (fun st ->
      fst (run_once st params g ~terminals ~inputs strategy))
