open Qdp_linalg
open Qdp_commcc
module Spanning_tree = Qdp_network.Spanning_tree

type register = Oneway.bundle

(* Kernel instrumentation for the test kernels that actually execute
   on the bench/table paths (the analytic helpers in Qdp_quantum's
   Swap_test/Permutation_test are test-only and carry none): a timing
   histogram and a call counter per kernel, plus a profiler section so
   [--profile] attributes simulator time by caller path.  All inert
   when the respective switch is off. *)
let swap_calls = Qdp_obs.Metrics.counter "kernel.swap_accept.calls"
let perm_seconds = Qdp_obs.Metrics.histogram "kernel.perm_accept.seconds"
let perm_calls = Qdp_obs.Metrics.counter "kernel.perm_accept.calls"
let path_seconds = Qdp_obs.Metrics.histogram "kernel.path_accept.seconds"
let path_calls = Qdp_obs.Metrics.counter "kernel.path_accept.calls"
let tree_seconds = Qdp_obs.Metrics.histogram "kernel.tree_accept.seconds"
let tree_calls = Qdp_obs.Metrics.counter "kernel.tree_accept.calls"
let down_tree_seconds = Qdp_obs.Metrics.histogram "kernel.down_tree_accept.seconds"
let down_tree_calls = Qdp_obs.Metrics.counter "kernel.down_tree_accept.calls"

let swap_accept a b =
  Qdp_obs.Metrics.incr swap_calls;
  let ov = Cx.norm2 (Oneway.bundle_overlap a b) in
  (1. +. ov) /. 2.

let perm_accept regs =
  Qdp_obs.Metrics.incr perm_calls;
  Qdp_obs.Prof.section "perm_accept" @@ fun () ->
  Qdp_obs.Metrics.time perm_seconds @@ fun () ->
  let arr = Array.of_list regs in
  let k = Array.length arr in
  if k = 0 then invalid_arg "Sim.perm_accept: empty";
  if k = 1 then 1.
  else begin
    let overlaps =
      Array.init k (fun i ->
          Array.init k (fun j -> Oneway.bundle_overlap arr.(i) arr.(j)))
    in
    let perms = Qdp_quantum.Symmetric.permutations k in
    let acc = ref Cx.zero in
    List.iter
      (fun pi ->
        let inv = Qdp_quantum.Symmetric.inverse pi in
        let prod = ref Cx.one in
        for l = 0 to k - 1 do
          prod := Cx.mul !prod overlaps.(l).(inv.(l))
        done;
        acc := Cx.add !acc !prod)
      perms;
    (Cx.scale (1. /. float_of_int (List.length perms)) !acc).Complex.re
  end

type path_instance = {
  length : int;
  left_accept : float;
  left_send : register;
  pairs : (register * register) array;
  final_accept : register -> float;
}

(* Coin c at node j: 0 keeps (fst, snd) as (tested, forwarded), 1 swaps.
   The joint acceptance couples only adjacent coins, so a 2-state
   transfer recursion computes the exact expectation. *)
let path_accept inst =
  Qdp_obs.Metrics.incr path_calls;
  Qdp_obs.Prof.section "path_accept" @@ fun () ->
  Qdp_obs.Metrics.time path_seconds @@ fun () ->
  let r = inst.length in
  if r < 1 then invalid_arg "Sim.path_accept: length >= 1";
  if Array.length inst.pairs <> r - 1 then
    invalid_arg "Sim.path_accept: pairs length must be r - 1";
  if r = 1 then inst.left_accept *. inst.final_accept inst.left_send
  else begin
    let kept j c =
      let a, b = inst.pairs.(j - 1) in
      if c = 0 then a else b
    in
    let sent j c =
      let a, b = inst.pairs.(j - 1) in
      if c = 0 then b else a
    in
    let v =
      ref
        (Array.init 2 (fun c -> 0.5 *. swap_accept inst.left_send (kept 1 c)))
    in
    for j = 2 to r - 1 do
      let next =
        Array.init 2 (fun cj ->
            let k = kept j cj in
            0.5 *. ((!v.(0) *. swap_accept (sent (j - 1) 0) k)
                   +. (!v.(1) *. swap_accept (sent (j - 1) 1) k)))
      in
      v := next
    done;
    let tail =
      (!v.(0) *. inst.final_accept (sent (r - 1) 0))
      +. (!v.(1) *. inst.final_accept (sent (r - 1) 1))
    in
    inst.left_accept *. tail
  end

type tree_instance = {
  tree : Spanning_tree.t;
  root_state : register;
  leaf_state : int -> register;
  internal_pair : int -> register * register;
  use_permutation_test : bool;
}

let tree_enum_limit = 7

(* The test a non-leaf node runs on its kept register and the
   registers arriving from its children. *)
let node_test inst kept sents =
  if inst.use_permutation_test then perm_accept (kept :: sents)
  else begin
    (* FGNP21 ablation: SWAP test against one uniformly random child;
       the child choice is a coin we integrate analytically. *)
    match sents with
    | [] -> 1.
    | _ ->
        let total =
          List.fold_left (fun acc s -> acc +. swap_accept kept s) 0. sents
        in
        total /. float_of_int (List.length sents)
  end

let tree_accept st inst =
  Qdp_obs.Metrics.incr tree_calls;
  Qdp_obs.Prof.section "tree_accept" @@ fun () ->
  Qdp_obs.Metrics.time tree_seconds @@ fun () ->
  let tr = inst.tree in
  let is_terminal v = Spanning_tree.terminal_of tr v <> None in
  let root = Spanning_tree.root tr in
  (* kept/sent of an internal node given its coin *)
  let kept v c =
    let a, b = inst.internal_pair v in
    if c = 0 then a else b
  in
  let sent v c =
    let a, b = inst.internal_pair v in
    if c = 0 then b else a
  in
  let max_children =
    List.fold_left
      (fun acc v -> max acc (List.length (Spanning_tree.children tr v)))
      0
      (List.init (Spanning_tree.size tr) (fun v -> v))
  in
  if max_children <= tree_enum_limit then begin
    (* Exact DP: m_v.(c) = E[ product of all tests in subtree(v) | coin
       of v = c ], for internal v.  Children that are terminal leaves
       contribute a fixed register and no coin. *)
    let rec subtree_products v =
      (* returns (list of (weight, sent register) options per child
         assignment) folded into: for each assignment of internal
         children coins, the weight (product of m) and sent list *)
      let children = Spanning_tree.children tr v in
      let contribs =
        List.map
          (fun c ->
            if is_terminal c then [ (1.0, inst.leaf_state c) ]
            else
              let m = m_internal c in
              [ (0.5 *. m.(0), sent c 0); (0.5 *. m.(1), sent c 1) ])
          children
      in
      List.fold_left
        (fun acc options ->
          List.concat_map
            (fun (w, sents) ->
              List.map (fun (w', s) -> (w *. w', s :: sents)) options)
            acc)
        [ (1.0, []) ]
        contribs
      |> List.map (fun (w, sents) -> (w, List.rev sents))
    and m_internal v =
      let combos = subtree_products v in
      Array.init 2 (fun c ->
          List.fold_left
            (fun acc (w, sents) ->
              acc +. (w *. node_test inst (kept v c) sents))
            0. combos)
    in
    let combos = subtree_products root in
    List.fold_left
      (fun acc (w, sents) ->
        acc +. (w *. node_test inst inst.root_state sents))
      0. combos
  end
  else begin
    (* Monte-Carlo over coins for very wide trees. *)
    let samples = 1 lsl 16 in
    let total = ref 0. in
    for _ = 1 to samples do
      let coin = Hashtbl.create 16 in
      let coin_of v =
        match Hashtbl.find_opt coin v with
        | Some c -> c
        | None ->
            let c = if Random.State.bool st then 1 else 0 in
            Hashtbl.add coin v c;
            c
      in
      let rec prod v =
        let children = Spanning_tree.children tr v in
        let sents =
          List.map
            (fun c ->
              if is_terminal c then inst.leaf_state c else sent c (coin_of c))
            children
        in
        let own =
          if v = root then node_test inst inst.root_state sents
          else node_test inst (kept v (coin_of v)) sents
        in
        List.fold_left
          (fun acc c -> if is_terminal c then acc else acc *. prod c)
          own children
      in
      total := !total +. prod root
    done;
    !total /. float_of_int samples
  end

type down_tree_instance = {
  dtree : Spanning_tree.t;
  root_message : register;
  internal_registers : int -> register array;
  leaf_accept : int -> register -> float;
}

let down_tree_accept inst =
  Qdp_obs.Metrics.incr down_tree_calls;
  Qdp_obs.Prof.section "down_tree_accept" @@ fun () ->
  Qdp_obs.Metrics.time down_tree_seconds @@ fun () ->
  let tr = inst.dtree in
  let is_terminal v = Spanning_tree.terminal_of tr v <> None in
  let memo : (int, (register * float) list ref) Hashtbl.t = Hashtbl.create 64 in
  let rec d v recv =
    let cache =
      match Hashtbl.find_opt memo v with
      | Some c -> c
      | None ->
          let c = ref [] in
          Hashtbl.add memo v c;
          c
    in
    match List.find_opt (fun (r, _) -> r == recv) !cache with
    | Some (_, value) -> value
    | None ->
        let value =
          if is_terminal v then inst.leaf_accept v recv
          else begin
            let children = Array.of_list (Spanning_tree.children tr v) in
            let delta = Array.length children in
            let regs = inst.internal_registers v in
            if Array.length regs <> delta + 1 then
              invalid_arg "Sim.down_tree_accept: need delta + 1 registers";
            let perms = Qdp_quantum.Symmetric.permutations (delta + 1) in
            let total = ref 0. in
            List.iter
              (fun pi ->
                let inv = Qdp_quantum.Symmetric.inverse pi in
                (* slot delta is kept, slot mu goes to child mu *)
                let own = swap_accept regs.(inv.(delta)) recv in
                let acc = ref own in
                for mu = 0 to delta - 1 do
                  acc := !acc *. d children.(mu) regs.(inv.(mu))
                done;
                total := !total +. !acc)
              perms;
            !total /. float_of_int (List.length perms)
          end
        in
        cache := (recv, value) :: !cache;
        value
  in
  let root = Spanning_tree.root tr in
  List.fold_left
    (fun acc c -> acc *. d c inst.root_message)
    1.0
    (Spanning_tree.children tr root)

let repeat_accept k p = Float.pow p (float_of_int k)

let two_state_chain ?embed ~r ~left ~right ~final strategy =
  let node_state = Strategy.node_state ~r ~left ~right ?embed strategy in
  {
    length = r;
    left_accept = 1.0;
    left_send = [| left |];
    pairs =
      Array.init (r - 1) (fun i ->
          let s = node_state (i + 1) in
          ([| s |], [| s |]));
    final_accept = final;
  }
