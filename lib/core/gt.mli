(** The dQMA protocol for the greater-than problem on a path
    (Section 5.1, Algorithm 7, Theorem 26) and its [>=], [<], [<=]
    variants (Corollary 28).

    [GT (x, y) = 1] iff there is an index [i] with [x_i = 1],
    [y_i = 0] and equal prefixes [x\[i\] = y\[i\]].  The prover sends
    that index classically to every node (inconsistent indices are
    caught deterministically by the neighbour comparisons, so a
    cheating prover is modelled as committing to one index) plus
    fingerprint registers for the EQ subprotocol on the prefixes;
    [v_0] rejects when [x_i = 0], [v_r] rejects when [y_i = 1], and
    [v_r] closes with a SWAP test against its own prefix
    fingerprint. *)

open Qdp_codes

type params = { n : int; r : int; seed : int; repetitions : int }

val make : ?repetitions:int -> seed:int -> n:int -> r:int -> unit -> params

(** A prover strategy: the committed index plus the EQ-subprotocol
    strategy played on the prefixes. *)
type prover = { index : int; eq_strategy : Strategy.t }

(** [honest_prover x y] is the witness index with honest fingerprints
    ([GT (x, y) = 1] required).
    @raise Invalid_argument when [x <= y]. *)
val honest_prover : Gf2.t -> Gf2.t -> prover

(** [prefix_states params i x y] exposes the prefix-fingerprint pair
    [(|h_{x[i]}>, |h_{y[i]}>)] the protocol uses at index [i] (the
    shared [|bot>] pair when [i = 0]) — needed by the message-passing
    execution in {!Runtime_gt}. *)
val prefix_states :
  params -> int -> Gf2.t -> Gf2.t -> Qdp_linalg.Vec.t * Qdp_linalg.Vec.t

(** [single_round_accept params x y prover] is the exact one-repetition
    acceptance; 0 whenever an end node's classical check fires. *)
val single_round_accept : params -> Gf2.t -> Gf2.t -> prover -> float

(** [accept params x y prover] is the [k]-fold power. *)
val accept : params -> Gf2.t -> Gf2.t -> prover -> float

(** [attack_library params x y] enumerates the cheating provers the
    soundness experiments evaluate: every committed index passing the
    end checks, crossed with the chain-strategy library. *)
val attack_library : params -> Gf2.t -> Gf2.t -> (string * prover) list

(** [best_attack_accept params x y] maximizes the single-round
    acceptance over {!attack_library} — the measured soundness error
    base for [GT (x, y) = 0]. *)
val best_attack_accept : params -> Gf2.t -> Gf2.t -> float * string

(** {2 Corollary 28 variants}

    Each is served by the same machinery: [>=] lets the prover claim
    either "greater" (run GT) or "equal" (run the EQ path protocol);
    [<] and [<=] swap the roles of the two ends. *)

type comparison = Gt | Ge | Lt | Le

(** [variant_honest_accept params cmp x y] is the honest acceptance
    (1 on yes instances). *)
val variant_honest_accept : params -> comparison -> Gf2.t -> Gf2.t -> float

(** [variant_best_attack params cmp x y] is the best single-round
    attack on a no instance. *)
val variant_best_attack : params -> comparison -> Gf2.t -> Gf2.t -> float

(** [costs params] accounts Algorithm 7: index registers of
    [ceil (log2 n)] qubits at every node plus [2 k] prefix-fingerprint
    registers at intermediates. *)
val costs : params -> Report.costs
