open Qdp_codes
open Qdp_network

type prover = Honest of Gf2.t | Assignment of Gf2.t array

type node_state = {
  proof : Gf2.t;
  mutable verdict : Runtime.verdict;
}

let run_with ?faults ~r x y prover =
  let g = Graph.path r in
  let proofs =
    match prover with
    | Honest z -> Array.make (r + 1) z
    | Assignment a ->
        if Array.length a <> r + 1 then
          invalid_arg "Runtime_dma: one proof string per node";
        a
  in
  let program =
    {
      Runtime.init =
        (fun id ->
          let proof = proofs.(id) in
          let verdict : Runtime.verdict =
            if id = 0 && not (Gf2.equal proof x) then Reject
            else if id = r && not (Gf2.equal proof y) then Reject
            else Accept
          in
          { proof; verdict });
      round =
        (fun ~round ~id state ~inbox ->
          match round with
          | 1 ->
              let out =
                List.map
                  (fun v -> (v, Gf2.to_string state.proof))
                  (Graph.neighbours g id)
              in
              (state, out)
          | 2 ->
              (* timeout-as-reject: silence from any neighbour is as
                 damning as a mismatching proof *)
              let senders = List.sort_uniq compare (List.map fst inbox) in
              if List.length senders <> List.length (Graph.neighbours g id)
              then state.verdict <- Runtime.Reject;
              List.iter
                (fun (_, s) ->
                  if not (String.equal s (Gf2.to_string state.proof)) then
                    state.verdict <- Runtime.Reject)
                inbox;
              (state, [])
          | _ -> (state, []));
      finish = (fun ~id:_ state -> state.verdict);
    }
  in
  Runtime.run ?faults g ~rounds:2 program

let run ~r x y prover =
  let verdicts, stats = run_with ~r x y prover in
  (Runtime.global_verdict verdicts = Runtime.Accept, stats)

(* Classical payloads: corruption flips one uniformly chosen proof
   bit in flight — the bit-flip model of noisy classical links. *)
let flip_bit st s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Random.State.int st (Bytes.length b) in
    Bytes.set b i (if Bytes.get b i = '0' then '1' else '0');
    Bytes.to_string b
  end

let run_faulty _st (env : Fault_env.t) ~r x y prover =
  let faults = Fault_env.injector ~corrupt:flip_bit env in
  run_with ~faults ~r x y prover

let bits_per_node ~n = n
