open Qdp_linalg
open Qdp_codes
open Qdp_network

type prover = { node_index : int -> int; chain : Strategy.t }

let honest x y =
  match Qdp_commcc.Problems.gt_witness x y with
  | Some i -> { node_index = (fun _ -> i); chain = Strategy.All_left }
  | None -> invalid_arg "Runtime_gt.honest: GT (x, y) = 0"

let of_prover (p : Gt.prover) =
  { node_index = (fun _ -> p.Gt.index); chain = p.Gt.eq_strategy }

type message = { idx : int; reg : Vec.t }

type node_state = {
  role : [ `Left | `Middle | `Right ];
  my_index : int;
  kept : Vec.t option;
  outgoing : Vec.t option;
  mutable verdict : Runtime.verdict;
}

let run_with ?faults st (params : Gt.params) x y prover =
  let r = params.Gt.r in
  let g = Graph.path r in
  (* per-node chain states built from that node's claimed index *)
  let chain_state j i =
    let hx, hy = Gt.prefix_states params i x y in
    Strategy.node_state ~r ~left:hx ~right:hy prover.chain j
  in
  let program =
    {
      Runtime.init =
        (fun id ->
          let i = prover.node_index id in
          if id = 0 then begin
            (* v_0's classical check: x_i must be 1 *)
            let ok = i >= 0 && i < params.Gt.n && Gf2.get x i in
            let hx, _ = Gt.prefix_states params i x y in
            {
              role = `Left;
              my_index = i;
              kept = None;
              outgoing = Some hx;
              verdict = (if ok then Accept else Reject);
            }
          end
          else if id = r then begin
            (* v_r's classical check: y_i must be 0 *)
            let ok = i >= 0 && i < params.Gt.n && not (Gf2.get y i) in
            let _, hy = Gt.prefix_states params i x y in
            {
              role = `Right;
              my_index = i;
              kept = Some hy;
              outgoing = None;
              verdict = (if ok then Accept else Reject);
            }
          end
          else begin
            let s = chain_state id i in
            let a, b = (Vec.copy s, Vec.copy s) in
            let kept, out = if Random.State.bool st then (a, b) else (b, a) in
            {
              role = `Middle;
              my_index = i;
              kept = Some kept;
              outgoing = Some out;
              verdict = Accept;
            }
          end);
      round =
        (fun ~round ~id state ~inbox ->
          match round with
          | 1 -> (
              match state.outgoing with
              | Some reg when id < r ->
                  (state, [ (id + 1, { idx = state.my_index; reg }) ])
              | _ -> (state, []))
          | 2 -> (
              match (state.role, inbox) with
              | (`Middle | `Right), [ (_, msg) ] ->
                  if msg.idx <> state.my_index then begin
                    (* Algorithm 7's neighbour index comparison *)
                    state.verdict <- Runtime.Reject;
                    (state, [])
                  end
                  else begin
                    let own =
                      match state.kept with Some k -> k | None -> assert false
                    in
                    let p = Sim.swap_accept [| msg.reg |] [| own |] in
                    if Random.State.float st 1. > p then
                      state.verdict <- Runtime.Reject;
                    (state, [])
                  end
              | `Left, _ -> (state, [])
              | _ ->
                  state.verdict <- Runtime.Reject;
                  (state, []))
          | _ -> (state, []));
      finish = (fun ~id:_ state -> state.verdict);
    }
  in
  Runtime.run ?faults g ~rounds:2 program

let run_once st (params : Gt.params) x y prover =
  let verdicts, stats = run_with st params x y prover in
  (Runtime.global_verdict verdicts = Runtime.Accept, stats)

(* Messages pair a classical index header with a quantum register; the
   environment's register noise corrupts the register and leaves the
   header intact (header corruption is a classical fault the index
   comparison already catches deterministically). *)
let run_faulty st (env : Fault_env.t) params x y prover =
  let corrupt st m = { m with reg = Fault_env.apply_qnoise env st m.reg } in
  let faults = Fault_env.injector ~corrupt env in
  run_with ~faults st params x y prover

let estimate_acceptance st ~trials params x y prover =
  Runtime.estimate_acceptance ~st ~trials (fun st ->
      fst (run_once st params x y prover))
