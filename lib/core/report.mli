(** Cost accounting and table-row reporting.

    Every protocol module exposes a [costs] value of this shape so the
    table harness ([bin/tables.exe]) can regenerate the paper's Tables
    1-3 with measured columns next to the paper's asymptotic
    formulas. *)

type costs = {
  local_proof_qubits : int;
      (** max over nodes of the proof size received from the prover *)
  total_proof_qubits : int;  (** sum over nodes *)
  local_message_qubits : int;
      (** max over edges of the verification-stage traffic *)
  total_message_qubits : int;
  rounds : int;
}

(** [zero] is the all-zero record. *)
val zero : costs

(** [pp_costs] prints a one-line summary. *)
val pp_costs : Format.formatter -> costs -> unit

(** A regenerated table row: measured costs plus measured
    completeness / soundness and the paper's formula rendered for the
    same parameters. *)
type row = {
  label : string;
  params : string;
  costs : costs;
  completeness : float;
  soundness_error : float;
  paper_formula : string;
  paper_value : float;
      (** the paper's asymptotic bound evaluated (constant = 1) at the
          row's parameters, for shape comparison *)
}

(** [pp_row] prints the row in the fixed-width layout of the tables
    harness.  Free-text columns ([label], [params], [paper_formula])
    are clamped to their column widths (with a [".."] marker) so a
    long parameter string cannot shear the table. *)
val pp_row : Format.formatter -> row -> unit

(** [clamp width s] is [s] unchanged when it fits in [width] columns,
    otherwise the first [width - 2] characters followed by [".."]. *)
val clamp : int -> string -> string

(** Width of a fully-populated row; the header's horizontal rule. *)
val total_width : int

(** [pp_header] prints the column header matching {!pp_row}. *)
val pp_header : Format.formatter -> unit -> unit

(** [ceil_log2 k] is [ceil (log2 k)] for [k >= 1] (0 for [k <= 1]) —
    the qubit accounting used across the repository. *)
val ceil_log2 : int -> int
