open Qdp_linalg
open Qdp_quantum

type config = { r : int; qubits : int }

let proof_qubits cfg = 2 * cfg.qubits * (cfg.r - 1)

let toy_state ~qubits k =
  let dim = 1 lsl qubits in
  let st = Random.State.make [| k; qubits; 0x707 |] in
  (* real amplitudes: fingerprint-like, so the geodesic interpolation
     attack is the natural product benchmark *)
  Vec.normalize (Vec.init dim (fun _ -> Cx.re (States.gaussian st)))

let layout cfg =
  let b = cfg.qubits in
  let pairs =
    List.concat_map
      (fun j ->
        [ (Printf.sprintf "R%d0" j, b); (Printf.sprintf "R%d1" j, b) ])
      (List.init (cfg.r - 1) (fun j -> j + 1))
  in
  let coins =
    List.init (cfg.r - 1) (fun j -> (Printf.sprintf "C%d" (j + 1), 1))
  in
  Pure.layout ((("L", b) :: pairs) @ coins)

(* The pipeline is linear in the proof: build the final (unnormalized)
   global state for a given proof filling the intermediate registers. *)
let final_state cfg ~x_state ~y_state ~proof =
  let r = cfg.r in
  let lay = layout cfg in
  let coins = Vec.basis (1 lsl (r - 1)) 0 in
  let global = Vec.tensor x_state (Vec.tensor proof coins) in
  let s = ref (Pure.of_global lay global) in
  for j = 1 to r - 1 do
    let c = Printf.sprintf "C%d" j in
    s := Pure.apply_on !s [ c ] Gates.hadamard;
    s :=
      Pure.controlled_swap !s ~control:c (Printf.sprintf "R%d0" j)
        (Printf.sprintf "R%d1" j)
  done;
  (* SWAP test at node j compares the register arriving from the left
     with the kept one: pairs (L, R10), (R11, R20), ... *)
  s := Pure.project_sym !s [ "L"; "R10" ];
  for j = 1 to r - 2 do
    s :=
      Pure.project_sym !s
        [ Printf.sprintf "R%d1" j; Printf.sprintf "R%d0" (j + 1) ]
  done;
  (* v_r's POVM on the arriving register *)
  s :=
    Pure.apply_on !s
      [ Printf.sprintf "R%d1" (r - 1) ]
      (Mat.of_vec y_state);
  !s

let accept_prob cfg ~x_state ~y_state ~proof =
  if cfg.r < 2 then Cx.norm2 (Vec.dot y_state x_state)
  else Pure.norm2 (final_state cfg ~x_state ~y_state ~proof)

(* Columns of the initial batch: [pre (x) e_p (x) e_0] for every basis
   proof [p] — built directly (one nonzero row per (amplitude of pre,
   column) pair) instead of tensoring [pdim] separate globals. *)
let basis_proof_batch ~pre ~pdim ~coin_dim =
  let predim = Vec.dim pre in
  let b = Batch.create (predim * pdim * coin_dim) pdim in
  let bre = Batch.raw_re b and bim = Batch.raw_im b in
  let pr = Vec.raw_re pre and pi = Vec.raw_im pre in
  for a = 0 to predim - 1 do
    for p = 0 to pdim - 1 do
      let row = ((a * pdim) + p) * coin_dim in
      bre.{(row * pdim) + p} <- pr.(a);
      bim.{(row * pdim) + p} <- pi.(a)
    done
  done;
  b

(* One batched sweep of the circuit over all [2^proof_qubits] basis
   proofs: the per-proof passes of the scalar pipeline collapse into
   blits and batched GEMMs on a [2^total x pdim] column batch. *)
let final_state_batch cfg ~x_state ~y_state =
  let r = cfg.r in
  if r < 2 then invalid_arg "Exact.final_state_batch: r >= 2";
  let lay = layout cfg in
  let pdim = 1 lsl proof_qubits cfg in
  let init = basis_proof_batch ~pre:x_state ~pdim ~coin_dim:(1 lsl (r - 1)) in
  let s = ref (Pure.batch_of_global lay init) in
  for j = 1 to r - 1 do
    let c = Printf.sprintf "C%d" j in
    s := Pure.apply_on_batch !s [ c ] Gates.hadamard;
    s :=
      Pure.controlled_swap_batch !s ~control:c (Printf.sprintf "R%d0" j)
        (Printf.sprintf "R%d1" j)
  done;
  s := Pure.project_sym_batch !s [ "L"; "R10" ];
  for j = 1 to r - 2 do
    s :=
      Pure.project_sym_batch !s
        [ Printf.sprintf "R%d1" j; Printf.sprintf "R%d0" (j + 1) ]
  done;
  s :=
    Pure.apply_on_batch !s
      [ Printf.sprintf "R%d1" (r - 1) ]
      (Mat.of_vec y_state);
  !s

let attack_gram cfg ~x_state ~y_state =
  Batch.gram (Pure.batch_data (final_state_batch cfg ~x_state ~y_state))

let product_proof cfg pairs =
  if Array.length pairs <> cfg.r - 1 then
    invalid_arg "Exact.product_proof: need r - 1 pairs";
  let parts =
    Array.to_list pairs
    |> List.concat_map (fun (a, b) -> [ a; b ])
  in
  Vec.tensor_list parts

let honest_proof cfg state =
  product_proof cfg (Array.init (cfg.r - 1) (fun _ -> (state, state)))

let top_eigpair g =
  let evals, evecs = Eig.hermitian g in
  let n = Mat.rows g in
  (evals.(n - 1), Vec.init n (fun i -> Mat.get evecs i (n - 1)))

let optimal_entangled_attack cfg ~x_state ~y_state =
  if cfg.r < 2 then (Cx.norm2 (Vec.dot y_state x_state), Vec.basis 1 0)
  else begin
    let gram = attack_gram cfg ~x_state ~y_state in
    let top, opt = top_eigpair gram in
    (Float.max 0. top, opt)
  end

type star_config = { t : int; star_qubits : int }

let star_layout cfg =
  let b = cfg.star_qubits in
  let regs =
    [ ("X", b) ]
    @ List.init (cfg.t - 1) (fun i -> (Printf.sprintf "L%d" (i + 1), b))
    @ [ ("R0", b); ("R1", b); ("C", 1) ]
  in
  Pure.layout regs

let star_final_state cfg ~root_state ~leaf_states ~proof =
  if Array.length leaf_states <> cfg.t - 1 then
    invalid_arg "Exact.star_accept_prob: need t - 1 leaf states";
  let lay = star_layout cfg in
  let global =
    Vec.tensor_list
      ([ root_state ] @ Array.to_list leaf_states @ [ proof; Vec.basis 2 0 ])
  in
  let s = ref (Pure.of_global lay global) in
  s := Pure.apply_on !s [ "C" ] Gates.hadamard;
  s := Pure.controlled_swap !s ~control:"C" "R0" "R1";
  (* internal node: permutation test on its kept register and all the
     leaf registers *)
  s :=
    Pure.project_sym !s
      ("R0" :: List.init (cfg.t - 1) (fun i -> Printf.sprintf "L%d" (i + 1)));
  (* root: SWAP test between its own state and the forwarded register *)
  s := Pure.project_sym !s [ "X"; "R1" ];
  !s

let star_accept_prob cfg ~root_state ~leaf_states ~proof =
  Pure.norm2 (star_final_state cfg ~root_state ~leaf_states ~proof)

let star_final_state_batch cfg ~root_state ~leaf_states =
  if Array.length leaf_states <> cfg.t - 1 then
    invalid_arg "Exact.star_accept_prob: need t - 1 leaf states";
  let lay = star_layout cfg in
  let pdim = 1 lsl (2 * cfg.star_qubits) in
  let pre = Vec.tensor_list (root_state :: Array.to_list leaf_states) in
  let init = basis_proof_batch ~pre ~pdim ~coin_dim:2 in
  let s = ref (Pure.batch_of_global lay init) in
  s := Pure.apply_on_batch !s [ "C" ] Gates.hadamard;
  s := Pure.controlled_swap_batch !s ~control:"C" "R0" "R1";
  s :=
    Pure.project_sym_batch !s
      ("R0" :: List.init (cfg.t - 1) (fun i -> Printf.sprintf "L%d" (i + 1)));
  s := Pure.project_sym_batch !s [ "X"; "R1" ];
  !s

let star_attack_gram cfg ~root_state ~leaf_states =
  Batch.gram
    (Pure.batch_data (star_final_state_batch cfg ~root_state ~leaf_states))

let optimal_entangled_star_attack cfg ~root_state ~leaf_states =
  let gram = star_attack_gram cfg ~root_state ~leaf_states in
  let top, opt = top_eigpair gram in
  (Float.max 0. top, opt)

let optimal_split_attack st cfg ~x_state ~y_state ~cut_qubits ~sweeps =
  let pq = proof_qubits cfg in
  if cut_qubits <= 0 || cut_qubits >= pq then
    invalid_arg "Exact.optimal_split_attack: cut inside the proof";
  if cfg.r < 2 then Cx.norm2 (Vec.dot y_state x_state)
  else begin
    let d1 = 1 lsl cut_qubits and d2 = 1 lsl (pq - cut_qubits) in
    let gram = attack_gram cfg ~x_state ~y_state in
    let xi1 = ref (States.random_unit st d1) in
    let xi2 = ref (States.random_unit st d2) in
    let value = ref 0. in
    for _ = 1 to sweeps do
      (* optimize xi1 with xi2 fixed: contract the minor (second)
         factor of the acceptance form with xi2 *)
      let g1 = Mat.quad_minor gram !xi2 in
      let _, v1 = top_eigpair g1 in
      xi1 := v1;
      (* optimize xi2 with xi1 fixed: contract the major factor *)
      let g2 = Mat.quad_major gram !xi1 in
      let lambda, v2 = top_eigpair g2 in
      xi2 := v2;
      value := Float.max 0. lambda
    done;
    !value
  end

let best_product_attack cfg ~x_state ~y_state =
  if cfg.r < 2 then Cx.norm2 (Vec.dot y_state x_state)
  else begin
    let pairs =
      Array.init (cfg.r - 1) (fun i ->
          let s =
            States.geodesic x_state y_state
              (float_of_int (i + 1) /. float_of_int cfg.r)
          in
          (s, s))
    in
    accept_prob cfg ~x_state ~y_state ~proof:(product_proof cfg pairs)
  end
