open Qdp_codes
open Qdp_network

type params = { n : int; r : int; parity_checks : int }
type prover = Write of Gf2.t | Write_each of Gf2.t array

let proofs_of params prover =
  match prover with
  | Write z -> Array.make (params.r + 1) z
  | Write_each a ->
      if Array.length a <> params.r + 1 then
        invalid_arg "Rpls: one proof per node";
      a

let accept_probability params x y prover =
  let w = proofs_of params prover in
  if not (Gf2.equal w.(0) x) then 0.
  else if not (Gf2.equal w.(params.r) y) then 0.
  else begin
    let p_edge = Float.pow 0.5 (float_of_int params.parity_checks) in
    let acc = ref 1. in
    for j = 0 to params.r - 1 do
      if not (Gf2.equal w.(j) w.(j + 1)) then acc := !acc *. p_edge
    done;
    !acc
  end

type node_state = {
  proof : Gf2.t;
  parities : bool array;
  mutable verdict : Runtime.verdict;
}

let run_with ?faults st params x y prover =
  let w = proofs_of params prover in
  (* shared randomness: the same parity vectors at every node *)
  let seeds =
    Array.init params.parity_checks (fun _ -> Gf2.random st params.n)
  in
  let g = Graph.path params.r in
  let program =
    {
      Runtime.init =
        (fun id ->
          let proof = w.(id) in
          let verdict : Runtime.verdict =
            if id = 0 && not (Gf2.equal proof x) then Reject
            else if id = params.r && not (Gf2.equal proof y) then Reject
            else Accept
          in
          {
            proof;
            parities = Array.map (fun s -> Gf2.dot s proof) seeds;
            verdict;
          });
      round =
        (fun ~round ~id state ~inbox ->
          match round with
          | 1 ->
              let payload = Array.to_list state.parities in
              (state, List.map (fun v -> (v, payload)) (Graph.neighbours g id))
          | 2 ->
              (* timeout-as-reject: silence from any neighbour is as
                 damning as a mismatching parity *)
              let senders = List.sort_uniq compare (List.map fst inbox) in
              if List.length senders <> List.length (Graph.neighbours g id)
              then state.verdict <- Runtime.Reject;
              List.iter
                (fun (_, payload) ->
                  List.iteri
                    (fun i b ->
                      if b <> state.parities.(i) then
                        state.verdict <- Runtime.Reject)
                    payload)
                inbox;
              (state, [])
          | _ -> (state, []));
      finish = (fun ~id:_ state -> state.verdict);
    }
  in
  Runtime.run ?faults g ~rounds:2 program

let run_once st params x y prover =
  let verdicts, stats = run_with st params x y prover in
  (Runtime.global_verdict verdicts = Runtime.Accept, stats)

(* Classical payloads again: corruption flips one parity bit of the
   exchanged check vector. *)
let flip_parity st = function
  | [] -> []
  | payload ->
      let a = Array.of_list payload in
      let i = Random.State.int st (Array.length a) in
      a.(i) <- not a.(i);
      Array.to_list a

let run_faulty st (env : Fault_env.t) params x y prover =
  let faults = Fault_env.injector ~corrupt:flip_parity env in
  run_with ~faults st params x y prover

let costs params =
  {
    Report.local_proof_qubits = params.n;
    total_proof_qubits = (params.r + 1) * params.n;
    local_message_qubits = 2 * params.parity_checks;
    total_message_qubits = 2 * params.r * params.parity_checks;
    rounds = 1;
  }
