open Qdp_codes
open Qdp_network
open Qdp_commcc

type params = { repetitions : int; amplification : int }

let make ?repetitions ?amplification ~r ~t ~n () =
  let repetitions =
    match repetitions with Some k -> k | None -> 42 * r * r
  in
  let amplification =
    match amplification with
    | Some a -> a
    | None -> max 1 (Report.ceil_log2 (n + t + r))
  in
  { repetitions; amplification }

type prover =
  | Honest
  | Constant_input of Gf2.t
  | Constant_of_terminal of int
  | Depth_geodesic of int

let bundle_geodesic a b t =
  Array.mapi (fun i va -> States.geodesic va b.(i) t) a

let amplified params proto =
  if params.amplification <= 1 then proto
  else Oneway.repeat params.amplification proto

let tree_instance params proto tr ~inputs ~root_terminal prover =
  let proto' = amplified params proto in
  let root_msg = proto'.Oneway.alice inputs.(root_terminal) in
  let register_content v =
    match prover with
    | Honest -> root_msg
    | Constant_input z -> proto'.Oneway.alice z
    | Constant_of_terminal k -> proto'.Oneway.alice inputs.(k)
    | Depth_geodesic k ->
        let target = proto'.Oneway.alice inputs.(k) in
        let height = max 1 (Spanning_tree.height tr) in
        bundle_geodesic root_msg target
          (float_of_int (Spanning_tree.depth tr v) /. float_of_int height)
  in
  {
    Sim.dtree = tr;
    root_message = root_msg;
    internal_registers =
      (fun v ->
        let delta = List.length (Spanning_tree.children tr v) in
        Array.make (delta + 1) (register_content v));
    leaf_accept =
      (fun v recv ->
        match Spanning_tree.terminal_of tr v with
        | Some i -> proto'.Oneway.accept_prob inputs.(i) recv
        | None -> invalid_arg "Oneway_compiler: leaf without terminal");
  }

let single_accept params proto g ~terminals ~inputs prover =
  let t = Array.length inputs in
  let acc = ref 1. in
  for j = 0 to t - 1 do
    let tr = Spanning_tree.build_rooted_at g ~terminals ~root_terminal:j in
    acc :=
      !acc
      *. Sim.down_tree_accept
           (tree_instance params proto tr ~inputs ~root_terminal:j prover)
  done;
  !acc

let accept params proto g ~terminals ~inputs prover =
  Sim.repeat_accept params.repetitions
    (single_accept params proto g ~terminals ~inputs prover)

let best_attack_accept params proto g ~terminals ~inputs =
  let t = Array.length inputs in
  let attacks =
    ("honest", Honest)
    :: List.concat
         (List.init t (fun k ->
              [
                (Printf.sprintf "constant-x%d" (k + 1), Constant_of_terminal k);
                (Printf.sprintf "geodesic->x%d" (k + 1), Depth_geodesic k);
              ]))
  in
  (* unlogged search: score on the pool, fold in candidate order *)
  let arr = Array.of_list attacks in
  let scores =
    Qdp_par.parallel_map_array ~chunk:1
      (fun (_, p) -> single_accept params proto g ~terminals ~inputs p)
      arr
  in
  let best = ref 0. and best_name = ref "none" in
  Array.iteri
    (fun i (name, _) ->
      if scores.(i) > !best then begin
        best := scores.(i);
        best_name := name
      end)
    arr;
  (!best, !best_name)

let costs params proto g ~terminals =
  let t = List.length terminals in
  let s = params.amplification * proto.Oneway.message_qubits in
  let k = params.repetitions in
  let per_host = Array.make (Graph.size g) 0 in
  let total_msgs = ref 0 in
  for j = 0 to t - 1 do
    let tr = Spanning_tree.build_rooted_at g ~terminals ~root_terminal:j in
    for v = 0 to Spanning_tree.size tr - 1 do
      if Spanning_tree.terminal_of tr v = None then begin
        let delta = List.length (Spanning_tree.children tr v) in
        let host = Spanning_tree.host tr v in
        per_host.(host) <- per_host.(host) + ((delta + 1) * s * k)
      end;
      if Spanning_tree.parent tr v <> None then total_msgs := !total_msgs + (s * k)
    done
  done;
  let local = Array.fold_left max 0 per_host in
  let total = Array.fold_left ( + ) 0 per_host in
  {
    Report.local_proof_qubits = local;
    total_proof_qubits = total;
    local_message_qubits = t * s * k;
    total_message_qubits = !total_msgs;
    rounds = 1;
  }

let paper_local_bound ~t ~r ~s ~n =
  float_of_int (t * t * r * r * s)
  *. (Float.log (float_of_int (n + t + r)) /. Float.log 2.)
