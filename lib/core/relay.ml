open Qdp_codes
open Qdp_fingerprint

type params = {
  n : int;
  r : int;
  seed : int;
  spacing : int;
  inner_repetitions : int;
}

let make ?spacing ?inner_repetitions ~seed ~n ~r () =
  let spacing =
    match spacing with
    | Some s -> s
    | None ->
        int_of_float (Float.ceil (Float.pow (float_of_int n) (1. /. 3.)))
  in
  if spacing < 1 then invalid_arg "Relay.make: spacing >= 1";
  let inner_repetitions =
    match inner_repetitions with
    | Some k -> k
    | None -> 42 * spacing * spacing
  in
  { n; r; seed; spacing; inner_repetitions }

let relay_positions params =
  let rec go acc p =
    if p >= params.r then List.rev acc else go (p :: acc) (p + params.spacing)
  in
  go [] params.spacing

type prover = {
  relay_strings : Gf2.t array;
  segment_strategy : Strategy.t;
}

let honest_prover params x =
  {
    relay_strings =
      Array.make (List.length (relay_positions params)) (Gf2.copy x);
    segment_strategy = Strategy.All_left;
  }

(* Endpoint strings of the segments: x, relays..., y; and segment edge
   counts from the positions. *)
let segments params x y relay_strings =
  let positions = Array.of_list (relay_positions params) in
  if Array.length relay_strings <> Array.length positions then
    invalid_arg "Relay: one relay string per relay position";
  let endpoints =
    Array.concat [ [| x |]; relay_strings; [| y |] ]
  in
  let bounds = Array.concat [ [| 0 |]; positions; [| params.r |] ] in
  List.init
    (Array.length endpoints - 1)
    (fun s ->
      (endpoints.(s), endpoints.(s + 1), bounds.(s + 1) - bounds.(s)))

let segment_accept params (u, w, len) strategy =
  if len = 0 then 1.
  else begin
    let fp = Fingerprint.standard ~seed:params.seed ~n:params.n in
    let hu = Fingerprint.state fp u and hw = Fingerprint.state fp w in
    let single =
      Sim.path_accept
        (Sim.two_state_chain ~r:len ~left:hu ~right:hw
           ~final:(fun reg -> Sim.swap_accept reg [| hw |])
           strategy)
    in
    Sim.repeat_accept params.inner_repetitions single
  end

let accept params x y prover =
  List.fold_left
    (fun acc seg -> acc *. segment_accept params seg prover.segment_strategy)
    1.
    (segments params x y prover.relay_strings)

let attack_library params x y =
  let n_relays = List.length (relay_positions params) in
  let splits =
    (* relay strings all-x up to split s (exclusive), all-y after: the
       unique mismatched segment is segment s *)
    List.init (n_relays + 1) (fun s ->
        ( Printf.sprintf "split@%d" s,
          Array.init n_relays (fun i -> if i < s then x else y) ))
  in
  let strategies =
    [ ("geodesic", Strategy.Geodesic); ("all-left", Strategy.All_left) ]
  in
  List.concat_map
    (fun (sname, rs) ->
      List.map
        (fun (cname, cs) ->
          (sname ^ "/" ^ cname, { relay_strings = rs; segment_strategy = cs }))
        strategies)
    splits

let best_attack_accept params x y =
  Qdp_log.attack_search ~proto:"relay"
    ~attrs:(fun () ->
      [ ("n", Qdp_obs.Trace.Int params.n);
        ("r", Qdp_obs.Trace.Int params.r);
        ("spacing", Qdp_obs.Trace.Int params.spacing) ])
  @@ fun () ->
  Qdp_log.best_candidate ~proto:"relay"
    ~score:(fun p -> accept params x y p)
    (attack_library params x y)

let costs params =
  let q = Fingerprint.qubits_of_n params.n in
  let k = params.inner_repetitions in
  let n_relays = List.length (relay_positions params) in
  let n_intermediate = max 0 (params.r - 1 - n_relays) in
  {
    Report.local_proof_qubits = max params.n (2 * k * q);
    total_proof_qubits = (n_relays * params.n) + (n_intermediate * 2 * k * q);
    local_message_qubits = k * q;
    total_message_qubits = params.r * k * q;
    rounds = 1;
  }

let total_proof_paper_bound params =
  float_of_int params.r
  *. Float.pow (float_of_int params.n) (2. /. 3.)
  *. Float.log (float_of_int (max 2 params.n))
