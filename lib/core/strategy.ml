open Qdp_codes

type t =
  | Honest
  | All_left
  | All_right
  | Constant of Gf2.t
  | Geodesic
  | Switch of int

let name = function
  | Honest -> "honest"
  | All_left -> "all-left"
  | All_right -> "all-right"
  | Constant _ -> "constant"
  | Geodesic -> "geodesic"
  | Switch cut -> Printf.sprintf "switch@%d" cut

let chain_library ~r =
  [
    ("all-left", All_left);
    ("all-right", All_right);
    ("geodesic", Geodesic);
    (Printf.sprintf "switch@%d" (r / 2), Switch (r / 2));
  ]

let node_state ~r ~left ~right ?embed strategy =
  match strategy with
  | Honest | All_left -> fun _ -> left
  | All_right -> fun _ -> right
  | Constant z -> (
      match embed with
      | Some f ->
          let s = f z in
          fun _ -> s
      | None -> invalid_arg "Strategy.node_state: Constant needs ~embed")
  | Geodesic ->
      fun j -> States.geodesic left right (float_of_int j /. float_of_int r)
  | Switch cut -> fun j -> if j <= cut then left else right
