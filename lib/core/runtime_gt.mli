(** Message-passing execution of the GT protocol (Algorithm 7) on the
    {!Qdp_network.Runtime} engine.

    Every node measures its classical index register on arrival,
    forwards the measured index along with the quantum prefix
    fingerprint, and rejects deterministically on an index mismatch —
    the behaviour Algorithm 7 prescribes and the closed-form engine
    ({!Gt}) assumes when it restricts cheating provers to a committed
    index.  This module also demonstrates the other case: a prover
    sending {e different} indices to different nodes is caught with
    certainty by the neighbour comparisons. *)

open Qdp_codes
open Qdp_network

(** What the prover distributes: a per-node claimed index plus the
    strategy for the prefix-fingerprint registers. *)
type prover = {
  node_index : int -> int;  (** claimed index at node [j], [0 <= j <= r] *)
  chain : Strategy.t;
}

(** [honest x y] commits to the witness index everywhere.
    @raise Invalid_argument when [GT (x, y) = 0]. *)
val honest : Gf2.t -> Gf2.t -> prover

(** [of_prover p] lifts a closed-form {!Gt.prover} (one committed
    index) to the runtime shape — the bridge the differential harness
    runs both backends through. *)
val of_prover : Gt.prover -> prover

(** [run_once st params x y prover] executes one repetition; returns
    the global verdict and traffic stats.  Nodes check their claimed
    index against the one arriving from the left and reject on
    mismatch before any quantum test. *)
val run_once :
  Random.State.t -> Gt.params -> Gf2.t -> Gf2.t -> prover -> bool * Runtime.stats

(** [run_faulty st env params x y prover] executes one repetition under
    the fault environment; register noise corrupts the forwarded prefix
    fingerprints (the classical index header is left to the
    deterministic neighbour comparison).  Returns raw per-node verdicts
    for the fault layer's recovery semantics. *)
val run_faulty :
  Random.State.t ->
  Fault_env.t ->
  Gt.params ->
  Gf2.t ->
  Gf2.t ->
  prover ->
  Runtime.verdict array * Runtime.stats

(** [estimate_acceptance st ~trials params x y prover] is the
    empirical acceptance frequency. *)
val estimate_acceptance :
  Random.State.t -> trials:int -> Gt.params -> Gf2.t -> Gf2.t -> prover -> float
