(** Randomized proof-labeling schemes — the dMA model of Fraigniaud,
    Patt-Shamir and Perry that the paper's introduction builds on.

    Randomization cannot reduce the {e proof} size below the Lemma 23
    bound (the splice attack in {!Lower_bounds} works against
    randomized verification too), but it slashes {e communication}:
    instead of exchanging full [n]-bit proofs, neighbours exchange
    [ell] shared-random parity bits and catch any mismatch with
    probability [1 - 2^{-ell}].  This module implements that protocol
    for EQ on a path, making the three-way comparison concrete:

    - dMA deterministic: [n] proof bits, [n] message bits;
    - dMA randomized (this module): [n] proof bits, [ell] message bits;
    - dQMA (Theorem 19): [O(r^2 log n)] proof qubits.  *)

open Qdp_codes

type params = {
  n : int;
  r : int;
  parity_checks : int;  (** [ell]: shared-random parity bits per edge *)
}

(** What the prover writes at the nodes. *)
type prover = Write of Gf2.t | Write_each of Gf2.t array

(** [accept_probability params x y prover] is the exact acceptance
    over the shared randomness: end nodes check their strings exactly;
    each edge with differing endpoint proofs survives each parity
    check with probability 1/2. *)
val accept_probability : params -> Gf2.t -> Gf2.t -> prover -> float

(** [run_once st params x y prover] samples one execution on the
    {!Qdp_network.Runtime} engine (shared randomness drawn from [st])
    and returns the verdict with traffic stats. *)
val run_once :
  Random.State.t ->
  params ->
  Gf2.t ->
  Gf2.t ->
  prover ->
  bool * Qdp_network.Runtime.stats

(** [run_faulty st env params x y prover] is {!run_once} under the
    fault environment; corruption flips one exchanged parity bit per
    corrupted message.  Returns raw per-node verdicts for the fault
    layer's recovery semantics. *)
val run_faulty :
  Random.State.t ->
  Fault_env.t ->
  params ->
  Gf2.t ->
  Gf2.t ->
  prover ->
  Qdp_network.Runtime.verdict array * Qdp_network.Runtime.stats

(** [costs params] — [n] proof bits per node, [parity_checks] message
    bits per edge per direction. *)
val costs : params -> Report.costs
