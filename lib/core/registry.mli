(** The protocol registry — one place where every protocol in the
    library is declared once, with its paper reference, parameter
    defaults, demo instances and (when implemented) its message-passing
    network realization.

    The CLI ([bin/qdp.exe]), the conformance runner
    ([bin/tables.exe check]) and the benchmark suite all iterate this
    registry instead of hard-coding per-protocol dispatch.  Protocols
    register via {!register} — see {!Protocols.init}, which installs the
    library's catalog — and downstream code works uniformly through the
    existential {!entry}.  *)

open Qdp_codes
open Qdp_network

(** {2 Parameter specs} *)

(** The network shapes the multi-terminal entries run on. *)
type topology = Star | Path | Cycle | Grid

(** [topology_graph topo ~t] is the graph plus its [t] terminal
    vertices: the star [K_{1,t}], a [2t]-path with every other vertex a
    terminal, the [2t]-cycle likewise, or the [t x 2] grid with the top
    row as terminals. *)
val topology_graph : topology -> t:int -> Graph.t * int list

(** A uniform parameter record every registered protocol draws its
    concrete parameters from; fields a protocol does not use are
    ignored ([d] doubles as the RPLS parity-check count and the Hamming
    tolerance). *)
type spec = {
  seed : int;
  n : int;  (** input length in bits *)
  r : int;  (** path length / radius *)
  t : int;  (** terminals (also: elements per set for Set Equality) *)
  d : int;  (** Hamming tolerance / RPLS parity checks *)
  repetitions : int option;
      (** [None] = the protocol's paper-default amplification *)
  topology : topology;
}

(** CLI defaults: [seed 42, n 32, r 6, t 4, d 2, None, Star]. *)
val default_spec : spec

(** {2 Entries} *)

(** Registration metadata, shown by [qdp list]. *)
type meta = {
  id : string;  (** short stable identifier, e.g. ["eq"] *)
  summary : string;
  reference : string;  (** theorem/algorithm pointer into the paper *)
  cost_formula : string;  (** the paper's asymptotic cost *)
}

(** The inputs demo instances are built from; [x <> y] and
    [big > small] (big-endian) are drawn deterministically from
    [spec.seed]. *)
type demo_ctx = {
  demo_spec : spec;
  x : Gf2.t;
  y : Gf2.t;
  big : Gf2.t;
  small : Gf2.t;
}

(** [context_of ?x ?y spec] derives the demo inputs.  Overrides
    replace the drawn values ([big]/[small] are recomputed). *)
val context_of : ?x:Gf2.t -> ?y:Gf2.t -> spec -> demo_ctx

(** A registered protocol, existential over its instance and prover
    types.  [demo_fix] pins the spec fields the demo suite needs
    (e.g. the relay protocol only makes sense for [r] past the spacing
    threshold); [demo] builds one yes and one no instance; [network],
    when present, is the protocol's sampled message-passing
    realization, the counterpart the differential harness
    ({!Dqma.cross_validate}) checks the analytic path against;
    [conformance] admits the entry into {!demo_suite}. *)
type entry =
  | Entry : {
      meta : meta;
      demo_fix : spec -> spec;
      protocol : spec -> ('i, 'p) Dqma.protocol;
      demo : demo_ctx -> 'i * 'i;
      network : (spec -> ('i, 'p) Dqma.network) option;
      conformance : bool;
    }
      -> entry

(** [register e] appends [e].
    @raise Invalid_argument on a duplicate id. *)
val register : entry -> unit

(** [all ()] lists entries in registration order. *)
val all : unit -> entry list

(** [find id] looks an entry up by its {!meta} id. *)
val find : string -> entry option

(** [ids ()] lists the registered ids in order. *)
val ids : unit -> string list

(** {2 Uniform drivers} *)

(** A flattened view of an entry for display. *)
type info = {
  info_id : string;
  info_name : string;  (** the protocol's display name at defaults *)
  info_model : Dqma.model;
  info_summary : string;
  info_reference : string;
  info_cost : string;
  info_network : bool;
  info_conformance : bool;
}

(** [info ?spec e] instantiates [e] (default {!default_spec}, after
    [demo_fix]) just enough to read its name and model. *)
val info : ?spec:spec -> entry -> info

(** [evaluate_demo ?x ?y spec e] builds the entry's protocol and demo
    instances from [spec] and runs {!Dqma.evaluate} on both; returns
    [(name, yes evaluation, no evaluation, costs of the yes
    instance)]. *)
val evaluate_demo :
  ?x:Gf2.t ->
  ?y:Gf2.t ->
  spec ->
  entry ->
  string * Dqma.evaluation * Dqma.evaluation * Report.costs

(** [cross_validate_demo ?trials ~st spec e] runs the differential
    harness on the entry's demo instances — [None] when the entry has
    no network realization, otherwise per-instance check lists
    [("yes", checks); ("no", checks)].  [demo_fix] is applied to
    [spec] first so the instances match the suite's shapes. *)
val cross_validate_demo :
  ?trials:int ->
  st:Random.State.t ->
  spec ->
  entry ->
  (string * Dqma.check list) list option

(** [demo_suite ~seed] is the conformance suite: one yes and one no
    instance of every [conformance] entry, in registration order, with
    the historical small parameters ([n = 24], [r = 4], [t = 4]).  This
    is what [bin/tables.exe check] prints. *)
val demo_suite : seed:int -> Dqma.packed list
