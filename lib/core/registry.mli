(** The protocol registry — one place where every protocol in the
    library is declared once, with its paper reference, parameter
    defaults, demo instances and (when implemented) its message-passing
    network realization.

    The CLI ([bin/qdp.exe]), the conformance runner
    ([bin/tables.exe check]) and the benchmark suite all iterate this
    registry instead of hard-coding per-protocol dispatch.  Protocols
    register via {!register} — see {!Protocols.init}, which installs the
    library's catalog — and downstream code works uniformly through the
    existential {!entry}.  *)

open Qdp_codes
open Qdp_network

(** {2 Parameter specs} *)

(** The network shapes the multi-terminal entries run on. *)
type topology = Star | Path | Cycle | Grid

(** [topology_graph topo ~t] is the graph plus its [t] terminal
    vertices: the star [K_{1,t}], a [2t]-path with every other vertex a
    terminal, the [2t]-cycle likewise, or the [t x 2] grid with the top
    row as terminals. *)
val topology_graph : topology -> t:int -> Graph.t * int list

(** A uniform parameter record every registered protocol draws its
    concrete parameters from; fields a protocol does not use are
    ignored ([d] doubles as the RPLS parity-check count and the Hamming
    tolerance). *)
type spec = {
  seed : int;
  n : int;  (** input length in bits *)
  r : int;  (** path length / radius *)
  t : int;  (** terminals (also: elements per set for Set Equality) *)
  d : int;  (** Hamming tolerance / RPLS parity checks *)
  repetitions : int option;
      (** [None] = the protocol's paper-default amplification *)
  topology : topology;
}

(** CLI defaults: [seed 42, n 32, r 6, t 4, d 2, None, Star]. *)
val default_spec : spec

(** {2 Entries} *)

(** Registration metadata, shown by [qdp list]. *)
type meta = {
  id : string;  (** short stable identifier, e.g. ["eq"] *)
  summary : string;
  reference : string;  (** theorem/algorithm pointer into the paper *)
  cost_formula : string;  (** the paper's asymptotic cost *)
}

(** The inputs demo instances are built from; [x <> y] and
    [big > small] (big-endian) are drawn deterministically from
    [spec.seed]. *)
type demo_ctx = {
  demo_spec : spec;
  x : Gf2.t;
  y : Gf2.t;
  big : Gf2.t;
  small : Gf2.t;
}

(** [context_of ?x ?y spec] derives the demo inputs.  Overrides
    replace the drawn values ([big]/[small] are recomputed). *)
val context_of : ?x:Gf2.t -> ?y:Gf2.t -> spec -> demo_ctx

(** A registered protocol, existential over its instance and prover
    types.  [demo_fix] pins the spec fields the demo suite needs
    (e.g. the relay protocol only makes sense for [r] past the spacing
    threshold); [demo] builds one yes and one no instance; [network],
    when present, is the protocol's sampled message-passing
    realization, the counterpart the differential harness
    ({!Dqma.cross_validate}) checks the analytic path against;
    [faulty], when present, is the same realization run under a fault
    environment (the [fault_tolerant] capability — `qdp faults` sweeps
    every entry that has one); [quantum_links] records whether the
    realization forwards quantum registers (so the fault sweep knows
    whether channel noise or classical bit flips apply);
    [conformance] admits the entry into {!demo_suite}. *)
type entry =
  | Entry : {
      meta : meta;
      demo_fix : spec -> spec;
      protocol : spec -> ('i, 'p) Dqma.protocol;
      demo : demo_ctx -> 'i * 'i;
      network : (spec -> ('i, 'p) Dqma.network) option;
      faulty : (spec -> ('i, 'p) Dqma.faulty_network) option;
      quantum_links : bool;
      conformance : bool;
    }
      -> entry

(** [register e] appends [e].
    @raise Invalid_argument on a duplicate id. *)
val register : entry -> unit

(** [all ()] lists entries in registration order. *)
val all : unit -> entry list

(** [find id] looks an entry up by its {!meta} id. *)
val find : string -> entry option

(** [ids ()] lists the registered ids in order. *)
val ids : unit -> string list

(** {2 Uniform drivers} *)

(** A flattened view of an entry for display. *)
type info = {
  info_id : string;
  info_name : string;  (** the protocol's display name at defaults *)
  info_model : Dqma.model;
  info_turns : int;  (** prover↔verifier message turns; 1 = one-shot *)
  info_summary : string;
  info_reference : string;
  info_cost : string;
  info_network : bool;
  info_fault_tolerant : bool;
  info_conformance : bool;
}

(** [info ?spec e] instantiates [e] (default {!default_spec}, after
    [demo_fix]) just enough to read its name and model. *)
val info : ?spec:spec -> entry -> info

(** [evaluate_demo ?x ?y spec e] builds the entry's protocol and demo
    instances from [spec] and runs {!Dqma.evaluate} on both; returns
    [(name, yes evaluation, no evaluation, costs of the yes
    instance)]. *)
val evaluate_demo :
  ?x:Gf2.t ->
  ?y:Gf2.t ->
  spec ->
  entry ->
  string * Dqma.evaluation * Dqma.evaluation * Report.costs

(** [cross_validate_demo ?trials ~st spec e] runs the differential
    harness on the entry's demo instances — [None] when the entry has
    no network realization, otherwise per-instance check lists
    [("yes", checks); ("no", checks)].  [demo_fix] is applied to
    [spec] first so the instances match the suite's shapes. *)
val cross_validate_demo :
  ?trials:int ->
  st:Random.State.t ->
  spec ->
  entry ->
  (string * Dqma.check list) list option

(** {2 Fault experiments}

    The monomorphic view of an entry the fault layer ([Qdp_faults])
    sweeps: the existential is unpacked here, once, so the sweep can
    iterate protocols, strategies and fault plans without touching
    entry internals. *)

(** One (instance, prover strategy) pair ready to execute under a
    fault environment.  [fc_analytic] is the exact noiseless
    single-repetition acceptance — the baseline both invariants
    (soundness contractivity, completeness decay) are measured
    against. *)
type fault_case = {
  fc_strategy : string;
  fc_analytic : float;
  fc_run : Random.State.t -> Fault_env.t -> Runtime.verdict array * Runtime.stats;
}

(** An entry's fault-experiment package: the honest prover on the yes
    instance ([fs_yes]) and the honest prover (if defined) plus the
    whole attack library on the no instance ([fs_no]). *)
type fault_suite = {
  fs_id : string;
  fs_name : string;
  fs_turns : int;
      (** message turns of the protocol, so sweeps can aim a plan's
          [turn] target at a real schedule entry *)
  fs_quantum_links : bool;
  fs_yes : fault_case list;
  fs_no : fault_case list;
}

(** [fault_suite spec e] unpacks [e] for the fault sweep — [None] when
    the entry has no fault-aware realization.  [demo_fix] is applied to
    [spec] first, as in {!cross_validate_demo}. *)
val fault_suite : spec -> entry -> fault_suite option

(** [demo_suite ~seed] is the conformance suite: one yes and one no
    instance of every [conformance] entry, in registration order, with
    the historical small parameters ([n = 24], [r = 4], [t = 4]).  This
    is what [bin/tables.exe check] prints. *)
val demo_suite : seed:int -> Dqma.packed list
