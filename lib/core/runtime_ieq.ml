open Qdp_network

type msg =
  | Commit of bool
  | Answer of Ieq.answer
  | Table of int array
  | Check of { b : bool option; ans : Ieq.answer option }
  | Probe of { beta : int; value : int }

type node_state = {
  id : int;
  mutable commit : bool option;
  mutable answer : Ieq.answer option;
  mutable tbl : int array option;
  mutable verdict : Runtime.verdict;
}

let schedule (p : Ieq.params) ~q =
  match p.Ieq.turns with
  | 3 ->
      [
        Runtime.Turn.Prover;
        Verifier { rounds = 0; coin_range = q };
        Prover;
        Verifier { rounds = 2; coin_range = 0 };
      ]
  | 2 ->
      [
        Runtime.Turn.Verifier { rounds = 0; coin_range = q };
        Prover;
        Verifier { rounds = 2; coin_range = 0 };
      ]
  | _ -> [ Runtime.Turn.Prover; Verifier { rounds = 2; coin_range = q } ]

(* Schedule entry that deals the coins each variant's decision reads. *)
let coin_turn (p : Ieq.params) = match p.Ieq.turns with 2 -> 1 | _ -> 2

let prover_writes (p : Ieq.params) ~q x y prover ~turn transcript =
  let nodes = List.init (p.Ieq.r + 1) Fun.id in
  match (p.Ieq.turns, turn) with
  | 3, 1 ->
      List.map
        (fun i -> (i, Commit (Ieq.parity (Ieq.source p x y prover i))))
        nodes
  | 3, 3 | 2, 2 ->
      (* public-coin model: the challenge is v_0's coin, revealed to
         the prover through the transcript *)
      let alpha =
        (Runtime.Transcript.coins transcript ~turn:(coin_turn p)).(0)
      in
      List.map
        (fun i -> (i, Answer (Ieq.respond p ~q x y prover ~alpha i)))
        nodes
  | 1, 1 ->
      List.map
        (fun i -> (i, Table (Ieq.table ~q (Ieq.source p x y prover i))))
        nodes
  | _ -> []

(* Verification exchange of the 2/3-turn variants: announce the
   received commit/response to every neighbour, then reject on any
   hop mismatch or missing neighbour. *)
let chain_round (p : Ieq.params) g ~round ~id state ~inbox =
  match round with
  | 1 ->
      ( state,
        List.map
          (fun v -> (v, Check { b = state.commit; ans = state.answer }))
          (Graph.neighbours g id) )
  | 2 ->
      let expected = Graph.neighbours g id in
      let senders = List.sort_uniq compare (List.map fst inbox) in
      if List.length senders <> List.length expected then
        state.verdict <- Runtime.Reject;
      List.iter
        (fun (_, m) ->
          match m with
          | Check { b; ans } ->
              if p.Ieq.turns = 3 && b <> state.commit then
                state.verdict <- Runtime.Reject;
              if ans <> state.answer then state.verdict <- Runtime.Reject
          | _ -> state.verdict <- Runtime.Reject)
        inbox;
      (state, [])
  | _ -> (state, [])

(* Verification exchange of the 1-turn variant: each node probes its
   right neighbour's table at its own private coin. *)
let probe_round (p : Ieq.params) ~round ~coin ~id state ~inbox =
  let r = p.Ieq.r in
  match round with
  | 1 ->
      let out =
        match state.tbl with
        | Some t when id < r && coin < Array.length t ->
            [ (id + 1, Probe { beta = coin; value = t.(coin) }) ]
        | _ -> []
      in
      (state, out)
  | 2 ->
      if id > 0 && not (List.exists (fun (s, _) -> s = id - 1) inbox) then
        state.verdict <- Runtime.Reject;
      List.iter
        (fun (_, m) ->
          match m with
          | Probe { beta; value } -> (
              match state.tbl with
              | Some t when Ieq.probe_ok t ~beta ~value -> ()
              | _ -> state.verdict <- Runtime.Reject)
          | _ -> state.verdict <- Runtime.Reject)
        inbox;
      (state, [])
  | _ -> (state, [])

let finish (p : Ieq.params) ~q x y ~transcript ~id state =
  let r = p.Ieq.r in
  if state.verdict = Runtime.Reject then Runtime.Reject
  else
    let ok =
      if p.Ieq.turns = 1 then
        if id = 0 then
          match state.tbl with
          | Some t -> Ieq.table_ok_left ~q x t
          | None -> false
        else if id = r then
          let beta = (Runtime.Transcript.coins transcript ~turn:2).(id) in
          match state.tbl with
          | Some t -> Ieq.table_ok_right ~q y t ~coin:beta
          | None -> false
        else state.tbl <> None
      else
        let com_ok =
          p.Ieq.turns < 3
          ||
          match state.commit with
          | Some b ->
              if id = 0 then Ieq.commit_ok_left x b
              else if id = r then Ieq.commit_ok_right y b
              else true
          | None -> false
        in
        let ans_ok =
          match state.answer with
          | Some a ->
              if id = 0 then
                let coin =
                  (Runtime.Transcript.coins transcript ~turn:(coin_turn p)).(0)
                in
                Ieq.answer_ok_left ~q x ~coin a
              else if id = r then Ieq.answer_ok_right ~q y a
              else true
          | None -> false
        in
        com_ok && ans_ok
    in
    if ok then Runtime.Accept else Runtime.Reject

let program (p : Ieq.params) ~q g x y =
  {
    Runtime.tp_init =
      (fun id ->
        { id; commit = None; answer = None; tbl = None; verdict = Accept });
    tp_deliver =
      (fun ~turn:_ ~id:_ state m ->
        (match m with
        | Commit b -> state.commit <- Some b
        | Answer a -> state.answer <- Some a
        | Table t -> state.tbl <- Some t
        (* the prover speaking the node-to-node dialect is nonsense *)
        | Check _ | Probe _ -> state.verdict <- Runtime.Reject);
        state);
    tp_round =
      (fun ~turn:_ ~round ~coin ~id state ~inbox ->
        if p.Ieq.turns = 1 then probe_round p ~round ~coin ~id state ~inbox
        else chain_round p g ~round ~id state ~inbox);
    tp_finish = (fun ~transcript ~id state -> finish p ~q x y ~transcript ~id state);
  }

let run_with ?faults st (p : Ieq.params) x y prover =
  Ieq.validate p;
  let q = Ieq.field p in
  let g = Graph.path p.Ieq.r in
  let verdicts, stats, _transcript =
    Runtime.run_turns ?faults ~st g ~schedule:(schedule p ~q)
      ~prover:(fun ~turn transcript ->
        prover_writes p ~q x y prover ~turn transcript)
      (program p ~q g x y)
  in
  (verdicts, stats)

let run_once st p x y prover =
  let verdicts, stats = run_with st p x y prover in
  (Runtime.global_verdict verdicts = Runtime.Accept, stats)

(* Classical payloads: corruption perturbs one field element by +1
   mod q, or flips the commit bit — the smallest lie the checks can
   meet (cf. Rpls.flip_parity). *)
let corrupt ~q st m =
  let bump v = (v + 1) mod q in
  match m with
  | Commit b -> Commit (not b)
  | Answer a ->
      if Random.State.bool st then Answer { a with Ieq.a_eval = bump a.Ieq.a_eval }
      else Answer { a with Ieq.a_alpha = bump a.Ieq.a_alpha }
  | Table t ->
      let t = Array.copy t in
      let i = Random.State.int st (Array.length t) in
      t.(i) <- bump t.(i);
      Table t
  | Check { b; ans = Some a } ->
      Check { b; ans = Some { a with Ieq.a_eval = bump a.Ieq.a_eval } }
  | Check { b; ans = None } -> Check { b = Option.map not b; ans = None }
  | Probe { beta; value } -> Probe { beta; value = bump value }

let run_faulty st (env : Fault_env.t) p x y prover =
  let q = Ieq.field p in
  let faults = Fault_env.injector ~corrupt:(corrupt ~q) env in
  run_with ~faults st p x y prover
