(** Message-passing execution of the EQ^t tree protocol (Algorithm 5)
    on the {!Qdp_network.Runtime} engine.

    The spanning tree of Section 3.3 is materialized as a network of
    its own (one runtime node per tree node, edges to parents);
    fingerprint registers flow leaf-to-root as messages, every
    non-terminal node symmetrizes its prover pair locally and samples
    its permutation test on arrival.  Sampled acceptance frequencies
    converge to {!Eq_tree}'s closed forms (checked in the tests). *)

open Qdp_codes
open Qdp_network

(** [run_once st params g ~terminals ~inputs strategy] builds the
    spanning tree, executes one repetition as real message passing and
    returns the global verdict plus traffic stats. *)
val run_once :
  Random.State.t ->
  Eq_tree.params ->
  Graph.t ->
  terminals:int list ->
  inputs:Gf2.t array ->
  Eq_tree.strategy ->
  bool * Runtime.stats

(** [run_faulty st env params g ~terminals ~inputs strategy] is
    {!run_once} under the fault environment (register noise on the
    leaf-to-root fingerprint messages, link faults, crashes), returning
    raw per-node verdicts for the fault layer's recovery semantics. *)
val run_faulty :
  Random.State.t ->
  Fault_env.t ->
  Eq_tree.params ->
  Graph.t ->
  terminals:int list ->
  inputs:Gf2.t array ->
  Eq_tree.strategy ->
  Runtime.verdict array * Runtime.stats

(** [estimate_acceptance st ~trials params g ~terminals ~inputs
    strategy] is the empirical acceptance frequency. *)
val estimate_acceptance :
  Random.State.t ->
  trials:int ->
  Eq_tree.params ->
  Graph.t ->
  terminals:int list ->
  inputs:Gf2.t array ->
  Eq_tree.strategy ->
  float
