(** The trivial classical dMA protocol for EQ, executed on the
    {!Qdp_network.Runtime} engine — the baseline the paper's
    introduction compares against: the prover writes an [n]-bit string
    at every node, neighbours exchange and compare strings, and the
    end nodes check against their own inputs.  Deterministic,
    complete, sound — and [Theta(n)] bits per node, which Corollary 25
    shows is unavoidable classically while Theorem 19 beats it
    exponentially with quantum proofs. *)

open Qdp_codes
open Qdp_network

(** What the prover writes at each node ([r + 1] strings). *)
type prover = Honest of Gf2.t | Assignment of Gf2.t array

(** [run params_r x y prover] executes the 1-round protocol on the
    path of length [r] and returns the verdict (deterministic) with
    traffic stats. *)
val run : r:int -> Gf2.t -> Gf2.t -> prover -> bool * Runtime.stats

(** [run_faulty st env ~r x y prover] is {!run} under the fault
    environment; in-flight corruption flips one proof bit per corrupted
    message (the classical bit-flip link model).  Returns raw per-node
    verdicts for the fault layer's recovery semantics. *)
val run_faulty :
  Random.State.t ->
  Fault_env.t ->
  r:int ->
  Gf2.t ->
  Gf2.t ->
  prover ->
  Runtime.verdict array * Runtime.stats

(** [bits_per_node ~n] is the proof cost: [n]. *)
val bits_per_node : n:int -> int
