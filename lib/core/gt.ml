open Qdp_linalg
open Qdp_codes
open Qdp_fingerprint

type params = { n : int; r : int; seed : int; repetitions : int }

let make ?repetitions ~seed ~n ~r () =
  if r < 1 then invalid_arg "Gt.make: r >= 1";
  let repetitions =
    match repetitions with
    | Some k -> k
    | None -> Eq_path.paper_repetitions ~r
  in
  { n; r; seed; repetitions }

type prover = { index : int; eq_strategy : Strategy.t }

let honest_prover x y =
  match Qdp_commcc.Problems.gt_witness x y with
  | Some i -> { index = i; eq_strategy = Strategy.All_left }
  | None -> invalid_arg "Gt.honest_prover: GT (x, y) = 0"

(* v_0 sends the fingerprint of its prefix; v_r closes with a SWAP
   test against the fingerprint of its own prefix. *)
let chain_accept ~r ~hx ~hy strategy =
  Sim.path_accept
    (Sim.two_state_chain ~r ~left:hx ~right:hy
       ~final:(fun reg -> Sim.swap_accept reg [| hy |])
       strategy)

let prefix_states params i x y =
  if i = 0 then
    let bot = Vec.basis 2 1 in
    (bot, Vec.copy bot)
  else begin
    let fp = Fingerprint.standard ~seed:(params.seed + (7919 * i)) ~n:i in
    (Fingerprint.state fp (Gf2.prefix x i), Fingerprint.state fp (Gf2.prefix y i))
  end

let single_round_accept params x y prover =
  let i = prover.index in
  if i < 0 || i >= params.n then 0.
  else if not (Gf2.get x i) then 0.
  else if Gf2.get y i then 0.
  else begin
    let hx, hy = prefix_states params i x y in
    chain_accept ~r:params.r ~hx ~hy prover.eq_strategy
  end

let accept params x y prover =
  Sim.repeat_accept params.repetitions (single_round_accept params x y prover)

let eq_strategies r = Strategy.chain_library ~r

let attack_library params x y =
  let out = ref [] in
  for i = params.n - 1 downto 0 do
    if Gf2.get x i && not (Gf2.get y i) then
      List.iter
        (fun (name, s) ->
          out :=
            ( Printf.sprintf "i=%d %s" i name,
              { index = i; eq_strategy = s } )
            :: !out)
        (eq_strategies params.r)
  done;
  !out

let best_attack_accept params x y =
  Qdp_log.attack_search ~proto:"gt"
    ~attrs:(fun () ->
      [ ("n", Qdp_obs.Trace.Int params.n); ("r", Qdp_obs.Trace.Int params.r) ])
  @@ fun () ->
  Qdp_log.best_candidate ~proto:"gt"
    ~score:(fun p -> single_round_accept params x y p)
    (attack_library params x y)

type comparison = Gt | Ge | Lt | Le

(* EQ-on-a-path with a closing SWAP test: the "equal" branch of the
   [>=] protocol. *)
let eq_branch_accept params x y strategy =
  let fp = Fingerprint.standard ~seed:params.seed ~n:params.n in
  let hx = Fingerprint.state fp x and hy = Fingerprint.state fp y in
  chain_accept ~r:params.r ~hx ~hy strategy

let best_eq_branch_attack params x y =
  Qdp_log.attack_search ~proto:"gt.eq_branch" @@ fun () ->
  fst
    (Qdp_log.best_candidate ~proto:"gt.eq_branch"
       ~score:(fun s -> eq_branch_accept params x y s)
       (eq_strategies params.r))

let variant_honest_accept params cmp x y =
  let gt_honest x y = single_round_accept params x y (honest_prover x y) in
  match cmp with
  | Gt -> gt_honest x y
  | Lt -> gt_honest y x
  | Ge ->
      if Gf2.equal x y then eq_branch_accept params x y Strategy.All_left
      else gt_honest x y
  | Le ->
      if Gf2.equal x y then eq_branch_accept params x y Strategy.All_left
      else gt_honest y x

let variant_best_attack params cmp x y =
  let gt_attack x y = fst (best_attack_accept params x y) in
  match cmp with
  | Gt -> gt_attack x y
  | Lt -> gt_attack y x
  | Ge -> Float.max (gt_attack x y) (best_eq_branch_attack params x y)
  | Le -> Float.max (gt_attack y x) (best_eq_branch_attack params x y)

let costs params =
  let q_fp = Fingerprint.qubits_of_n params.n in
  let q_idx = Report.ceil_log2 params.n in
  let k = params.repetitions in
  {
    Report.local_proof_qubits =
      (if params.r >= 2 then k * ((2 * q_fp) + q_idx) else k * q_idx);
    total_proof_qubits =
      ((params.r - 1) * k * ((2 * q_fp) + q_idx)) + (2 * k * q_idx);
    local_message_qubits = k * (q_fp + q_idx);
    total_message_qubits = params.r * k * (q_fp + q_idx);
    rounds = 1;
  }
