(** The improved dQMA protocol for EQ on a path (Section 3.2,
    Algorithms 3 and 4).

    Nodes [v_0 .. v_r] hold [x] at [v_0] and [y] at [v_r].  The prover
    hands each intermediate node two fingerprint registers; each node
    symmetrizes its pair, forwards one register rightward, SWAP tests
    the arriving register against the kept one, and [v_r] runs the
    fingerprint POVM of the one-way EQ protocol [pi].

    Completeness is perfect; a single round has soundness
    [1 - 4 / (81 r^2)] (Lemma 17), driven below [1/3] by
    [k = ceil (2 * 81 r^2 / 4)] parallel repetitions. *)

open Qdp_codes

type params = {
  n : int;  (** input length *)
  r : int;  (** path length: nodes [v_0 .. v_r], [r >= 1] *)
  seed : int;  (** fingerprint-code seed *)
  repetitions : int;  (** parallel repetitions [k] *)
}

(** [paper_repetitions ~r] is the paper's [k = ceil (2 * 81 r^2 / 4)]. *)
val paper_repetitions : r:int -> int

(** [make ?repetitions ~seed ~n ~r ()] fills in
    [repetitions = paper_repetitions ~r] by default. *)
val make : ?repetitions:int -> seed:int -> n:int -> r:int -> unit -> params

(** Prover strategies are the shared {!Strategy.t}: [Honest] plays
    [|h_x>] everywhere, [Geodesic] is the interpolation attack, and
    [Constant] strings are embedded through the fingerprint map. *)

(** [single_round_accept params x y strategy] is the exact acceptance
    probability of one repetition (all nodes accept). *)
val single_round_accept : params -> Gf2.t -> Gf2.t -> Strategy.t -> float

(** [accept params x y strategy] is the [k]-repetition acceptance
    [single^k]. *)
val accept : params -> Gf2.t -> Gf2.t -> Strategy.t -> float

(** [attack_library params x y] names the built-in cheating strategies
    evaluated by {!best_attack_accept}. *)
val attack_library : params -> Gf2.t -> Gf2.t -> (string * Strategy.t) list

(** [best_attack_accept params x y] is the max single-round acceptance
    over the attack library — an empirical lower bound on the
    protocol's soundness error (after taking the [k]-th power). *)
val best_attack_accept : params -> Gf2.t -> Gf2.t -> float * string

(** [soundness_bound_single ~r] is the paper's single-round bound
    [1 - 4 / (81 r^2)]. *)
val soundness_bound_single : r:int -> float

(** [fgnp_forwarding_accept params x y strategy] is the exact
    acceptance of the FGNP21-style variant {e without} the
    symmetrization step: each intermediate node holds a single
    fingerprint register and forwards it rightward with probability
    1/2; the SWAP test at node [j + 1] fires only when node [j]
    forwarded and node [j + 1] kept, and [v_r]'s POVM fires only when
    [v_{r-1}] forwarded.  Halves the proof registers but weakens the
    per-round soundness — the ablation behind the paper's
    symmetrization step (Section 1.3). *)
val fgnp_forwarding_accept : params -> Gf2.t -> Gf2.t -> Strategy.t -> float

(** [fgnp_costs params] accounts the forwarding variant: one register
    per intermediate node per repetition. *)
val fgnp_costs : params -> Report.costs

(** [costs params] accounts Algorithm 4: each intermediate node
    receives [2 k] fingerprint registers; each node forwards [k]. *)
val costs : params -> Report.costs

(** [fingerprint_qubits params] is the size of one fingerprint
    register. *)
val fingerprint_qubits : params -> int
