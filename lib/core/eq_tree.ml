open Qdp_codes
open Qdp_fingerprint
open Qdp_network

type params = {
  n : int;
  seed : int;
  repetitions : int;
  use_permutation_test : bool;
}

let make ?repetitions ?(use_permutation_test = true) ~seed ~n ~r () =
  let repetitions =
    match repetitions with
    | Some k -> k
    | None -> Eq_path.paper_repetitions ~r
  in
  { n; seed; repetitions; use_permutation_test }

type strategy = Honest | Constant of Gf2.t | Depth_interpolate of int

let tree_of g ~terminals = Spanning_tree.build g ~terminals

let instance params tr ~inputs strategy =
  let fp = Fingerprint.standard ~seed:params.seed ~n:params.n in
  let states = Array.map (Fingerprint.state fp) inputs in
  let height = max 1 (Spanning_tree.height tr) in
  let internal_state =
    match strategy with
    | Honest -> fun _ -> states.(0)
    | Constant z ->
        let hz = Fingerprint.state fp z in
        fun _ -> hz
    | Depth_interpolate target ->
        let hr = states.(0) and ht = states.(target) in
        fun v ->
          (* deeper nodes sit closer to the leaves, hence closer to the
             target terminal's fingerprint *)
          let t =
            float_of_int (Spanning_tree.depth tr v) /. float_of_int height
          in
          States.geodesic hr ht t
  in
  {
    Sim.tree = tr;
    root_state = [| states.(0) |];
    leaf_state =
      (fun v ->
        match Spanning_tree.terminal_of tr v with
        | Some i -> [| states.(i) |]
        | None -> invalid_arg "Eq_tree: leaf_state on non-terminal");
    internal_pair =
      (fun v ->
        let s = internal_state v in
        ([| s |], [| s |]));
    use_permutation_test = params.use_permutation_test;
  }

let single_round_accept params g ~terminals ~inputs strategy =
  let tr = tree_of g ~terminals in
  let st = Random.State.make [| params.seed; 0x5ee; Spanning_tree.size tr |] in
  Sim.tree_accept st (instance params tr ~inputs strategy)

let accept params g ~terminals ~inputs strategy =
  Sim.repeat_accept params.repetitions
    (single_round_accept params g ~terminals ~inputs strategy)

let attack_library ~inputs =
  let t = Array.length inputs in
  ("constant-x1", Constant inputs.(0))
  :: List.concat
       (List.init (t - 1) (fun i ->
            [
              (Printf.sprintf "constant-x%d" (i + 2), Constant inputs.(i + 1));
              ( Printf.sprintf "interpolate->%d" (i + 2),
                Depth_interpolate (i + 1) );
            ]))

let best_attack_accept params g ~terminals ~inputs =
  Qdp_log.attack_search ~proto:"eq_tree"
    ~attrs:(fun () ->
      [ ("n", Qdp_obs.Trace.Int params.n);
        ("terminals", Qdp_obs.Trace.Int (List.length terminals)) ])
  @@ fun () ->
  let attacks = attack_library ~inputs in
  Qdp_log.best_candidate ~proto:"eq_tree"
    ~score:(fun s -> single_round_accept params g ~terminals ~inputs s)
    attacks

let costs params tr =
  let q = Fingerprint.qubits_of_n params.n in
  let k = params.repetitions in
  let internal = List.length (Spanning_tree.internal_nodes tr) in
  let non_root = Spanning_tree.size tr - 1 in
  let cert = 2 * Report.ceil_log2 (Spanning_tree.size tr) in
  {
    Report.local_proof_qubits =
      (if internal > 0 then (2 * k * q) + cert else cert);
    total_proof_qubits =
      (internal * 2 * k * q) + (Spanning_tree.size tr * cert);
    local_message_qubits = k * q;
    total_message_qubits = non_root * k * q;
    rounds = 1;
  }
