(* Shared Logs source for the protocol engines; enable with
   Logs.Src.set_level (debug traces of the attack searches). *)
let src = Logs.Src.create "qdp.core" ~doc:"dQMA protocol engines"

module Log = (val Logs.src_log src : Logs.LOG)

(* Attack-search instrumentation shared by every engine, so `-v`
   debug logging and Qdp_obs metrics/tracing stay in agreement: each
   candidate strategy goes through [attack_candidate], and every
   search is wrapped in [attack_search] which emits a span plus a
   searches counter. *)

let obs_searches = Qdp_obs.Metrics.counter "attacks.searches"
let obs_candidates = Qdp_obs.Metrics.counter "attacks.candidates"
let obs_accept_prob = Qdp_obs.Metrics.histogram "attacks.accept_prob"

let attack_candidate ~proto name p =
  Log.debug (fun m -> m "%s attack %s: single-round accept %.6g" proto name p);
  Qdp_obs.Metrics.incr obs_candidates;
  Qdp_obs.Metrics.observe obs_accept_prob p

let attack_search ~proto ?attrs f =
  Qdp_obs.Metrics.incr obs_searches;
  Qdp_obs.Trace.with_span ?attrs (proto ^ ".attack_search") @@ fun () ->
  Qdp_obs.Prof.section (proto ^ ".attack_search") f

(* Candidate grids are independent, so score them on the domain pool;
   the results are then replayed in list order through
   [attack_candidate] and the max fold, so logs, metrics and
   tie-breaking (first strict improvement wins) are exactly those of
   the sequential search, at every job count.  The progress handle
   ticks per scored candidate, from whichever domain scores it. *)
let best_candidate ~proto ~score candidates =
  let arr = Array.of_list candidates in
  let progress =
    Qdp_obs.Progress.start ~total:(Array.length arr) ("attack/" ^ proto)
  in
  let eval i =
    let _, c = arr.(i) in
    let s = score c in
    Qdp_obs.Progress.step progress;
    s
  in
  (* Candidate count is the work axis of the attack grid; the model
     gate only bypasses the in-process fan-out (worker-process
     sharding keeps its own policy). *)
  let par =
    Qdp_model.decide ~kernel:"grid.attack"
      ~macs:(float_of_int (Array.length arr))
      ~default:true
  in
  let scores =
    if (not par) && Qdp_dist.workers () = 0 then
      Array.init (Array.length arr) eval
    else
      Qdp_dist.map_shards ~label:("attack/" ^ proto) ~n:(Array.length arr) eval
  in
  Qdp_obs.Progress.finish progress;
  let best = ref 0. and best_name = ref "none" in
  Array.iteri
    (fun i (name, _) ->
      let a = scores.(i) in
      attack_candidate ~proto name a;
      if a > !best then begin
        best := a;
        best_name := name
      end)
    arr;
  (!best, !best_name)
