open Qdp_linalg
open Qdp_network

type t = {
  spec : Fault.spec;
  st : Random.State.t;
  qnoise : (Random.State.t -> Vec.t -> Vec.t) option;
}

let make ?qnoise ~st spec = { spec; st; qnoise }
let perfect ~st = { spec = Fault.none; st; qnoise = None }

let apply_qnoise env st v =
  match env.qnoise with Some f -> f st v | None -> v

let injector ?(corrupt = fun _ m -> m) env =
  Fault.make ~corrupt ~st:env.st env.spec
