(** The turn-reduction experiment ([qdp turns]): acceptance, soundness
    and certificate size of the {!Ieq} family across turn counts.

    One row per variant (3, 2 and 1 turns), comparing the analytic
    acceptance against the sampled turn-engine frequency on the honest
    yes-instance and on the best attack against the
    {!Ieq.adversarial_pair} no-instance — the measured form of the
    arXiv:2210.01390 turn-reduction tradeoff: fewer turns, factor-q
    bigger certificates, same soundness.

    Sampling uses {!Qdp_network.Runtime.estimate_acceptance} with a
    per-cell RNG reseeded from stable [(seed, turns, side)] indices,
    so the result — and the JSON artifact — is byte-identical at every
    [--jobs] value. *)

type row = {
  tr_turns : int;  (** message turns ({!Qdp_network.Runtime.Turn.message_turns}) *)
  tr_schedule : int;  (** schedule entries executed per interaction *)
  tr_field : int;  (** the fingerprint field size q *)
  tr_cert_bits : int;  (** per-node certificate, classical bits *)
  tr_msg_bits : int;  (** per-edge verification traffic, classical bits *)
  tr_bound : float;  (** analytic soundness upper bound (n-1)/q *)
  tr_honest_analytic : float;
  tr_honest_sampled : float;
  tr_attack : string;  (** name of the best attack-library strategy *)
  tr_attack_analytic : float;
  tr_attack_sampled : float;
}

type t = {
  tx_seed : int;
  tx_n : int;
  tx_r : int;
  tx_trials : int;
  tx_rows : row list;  (** 3-, 2-, then 1-turn variant *)
}

(** [run ~seed ~n ~r ~trials ()] measures all three variants. *)
val run : seed:int -> n:int -> r:int -> trials:int -> unit -> t

(** [to_json t] is the single-line JSON rendering (trailing newline),
    floats printed with 6 decimals. *)
val to_json : t -> string

(** [write_json file t] writes {!to_json} to [file]. *)
val write_json : string -> t -> unit

(** [pp] prints the acceptance-vs-turns table. *)
val pp : Format.formatter -> t -> unit
