open Qdp_codes
open Qdp_network

type row = {
  tr_turns : int;
  tr_schedule : int;
  tr_field : int;
  tr_cert_bits : int;
  tr_msg_bits : int;
  tr_bound : float;
  tr_honest_analytic : float;
  tr_honest_sampled : float;
  tr_attack : string;
  tr_attack_analytic : float;
  tr_attack_sampled : float;
}

type t = {
  tx_seed : int;
  tx_n : int;
  tx_r : int;
  tx_trials : int;
  tx_rows : row list;
}

(* One Monte-Carlo cell: its RNG reseeds from stable indices, and
   [estimate_acceptance] chunks deterministically on the pool, so every
   cell — hence the whole artifact — is byte-identical at any --jobs
   value and independent of cell evaluation order. *)
let sample ~seed ~turns ~side ~trials params x y prover =
  let st = Random.State.make [| seed; 0x7a15; turns; side |] in
  Runtime.estimate_acceptance ~st ~trials (fun st ->
      fst (Runtime_ieq.run_once st params x y prover))

let measure_variant ~seed ~n ~r ~trials turns =
  Qdp_obs.Prof.section (Printf.sprintf "turns.ieq%d" turns) @@ fun () ->
  let params = { Ieq.n; r; turns; repetitions = 1 } in
  let q = Ieq.field params in
  let base = Gf2.random (Random.State.make [| seed; 0xd9a |]) n in
  let x, y = Ieq.adversarial_pair params base in
  let yes = (Gf2.copy x, Gf2.copy x) in
  let honest_analytic = Ieq.accept params yes Ieq.Answer_x in
  let honest_sampled =
    sample ~seed ~turns ~side:0 ~trials params (fst yes) (snd yes) Ieq.Answer_x
  in
  let attack, attack_analytic =
    List.fold_left
      (fun (bn, ba) (name, p) ->
        let a = Ieq.accept params (x, y) p in
        if a > ba then (name, a) else (bn, ba))
      ("none", 0.)
      (Ieq.attacks params)
  in
  let attack_prover =
    List.assoc attack (Ieq.attacks params)
  in
  let attack_sampled =
    sample ~seed ~turns ~side:1 ~trials params x y attack_prover
  in
  let costs = Ieq.costs params in
  {
    tr_turns = Runtime.Turn.message_turns (Runtime_ieq.schedule params ~q);
    tr_schedule = List.length (Runtime_ieq.schedule params ~q);
    tr_field = q;
    tr_cert_bits = costs.Report.local_proof_qubits;
    tr_msg_bits = costs.Report.local_message_qubits;
    tr_bound = Ieq.soundness_bound params;
    tr_honest_analytic = honest_analytic;
    tr_honest_sampled = honest_sampled;
    tr_attack = attack;
    tr_attack_analytic = attack_analytic;
    tr_attack_sampled = attack_sampled;
  }

let run ~seed ~n ~r ~trials () =
  Qdp_obs.Trace.with_span "turns.experiment" @@ fun () ->
  Qdp_obs.Prof.section "turns_experiment" @@ fun () ->
  {
    tx_seed = seed;
    tx_n = n;
    tx_r = r;
    tx_trials = trials;
    tx_rows = List.map (measure_variant ~seed ~n ~r ~trials) [ 3; 2; 1 ];
  }

let fl x = Printf.sprintf "%.6f" x

let json_row w =
  Printf.sprintf
    "{\"turns\":%d,\"schedule_entries\":%d,\"field\":%d,\"cert_bits\":%d,\"msg_bits\":%d,\"soundness_bound\":%s,\"honest_analytic\":%s,\"honest_sampled\":%s,\"attack\":\"%s\",\"attack_analytic\":%s,\"attack_sampled\":%s}"
    w.tr_turns w.tr_schedule w.tr_field w.tr_cert_bits w.tr_msg_bits
    (fl w.tr_bound) (fl w.tr_honest_analytic) (fl w.tr_honest_sampled)
    w.tr_attack
    (fl w.tr_attack_analytic)
    (fl w.tr_attack_sampled)

let to_json t =
  Printf.sprintf
    "{\"seed\":%d,\"n\":%d,\"r\":%d,\"trials\":%d,\"variants\":[%s]}\n"
    t.tx_seed t.tx_n t.tx_r t.tx_trials
    (String.concat "," (List.map json_row t.tx_rows))

let write_json path t =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "turn reduction on iEQ (n=%d, r=%d, %d trials/cell):@,@," t.tx_n t.tx_r
    t.tx_trials;
  Format.fprintf ppf "%-6s %-9s %-6s %-10s %-9s %-8s %-17s %-17s %s@," "TURNS"
    "SCHEDULE" "FIELD" "CERT/NODE" "MSG/EDGE" "BOUND" "HONEST (an|mc)"
    "ATTACK (an|mc)" "BEST";
  List.iter
    (fun w ->
      Format.fprintf ppf "%-6d %-9d %-6d %-10d %-9d %-8.4f %8.4f|%-8.4f %8.4f|%-8.4f %s@,"
        w.tr_turns w.tr_schedule w.tr_field w.tr_cert_bits w.tr_msg_bits
        w.tr_bound w.tr_honest_analytic w.tr_honest_sampled
        w.tr_attack_analytic w.tr_attack_sampled w.tr_attack)
    t.tx_rows;
  Format.fprintf ppf "@]"
