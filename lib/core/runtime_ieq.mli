(** Turn-based network realization of the {!Ieq} family — the first
    protocols to exercise {!Qdp_network.Runtime.run_turns} beyond the
    one-shot schedule.

    The schedules (1-based entries, as fault plans and
    {!Qdp_network.Runtime.Protocol_error} count them):

    - [turns = 3]:
      [Prover] (commit digests) ·
      [Verifier {rounds = 0; coin_range = q}] (deal the public
      challenge; no communication) ·
      [Prover] (responses) ·
      [Verifier {rounds = 2; coin_range = 0}] (one exchange:
      round 1 announces, round 2 checks — timeout-as-reject).
    - [turns = 2]: the same without the leading commit turn.
    - [turns = 1]:
      [Prover] (full evaluation tables) ·
      [Verifier {rounds = 2; coin_range = q}] (fresh {e private}
      coins; each node probes its right neighbour's table at its own
      coin).

    Endpoint anchors run in [tp_finish] against the recorded
    {!Qdp_network.Runtime.Transcript.t} — the decision predicate
    consumes the coins the engine actually dealt, which is what makes
    the sampled path agree exactly with {!Ieq.accept}'s enumeration.

    Fault injection follows the classical-payload convention
    ({!Rpls}): corruption perturbs one field element (or flips the
    commit bit), and silence from the prover or a neighbour is as
    damning as a mismatch. *)

open Qdp_codes
open Qdp_network

(** Wire payloads: prover writes ([Commit]/[Answer]/[Table]) and
    node-to-node verification traffic ([Check]/[Probe]). *)
type msg =
  | Commit of bool
  | Answer of Ieq.answer
  | Table of int array
  | Check of { b : bool option; ans : Ieq.answer option }
  | Probe of { beta : int; value : int }

(** [schedule params ~q] is the turn schedule above;
    [Qdp_network.Runtime.Turn.message_turns] of it equals
    [params.turns]. *)
val schedule : Ieq.params -> q:int -> Runtime.Turn.t list

(** [run_with ?faults st params x y prover] executes one interaction
    on [Graph.path params.r].  [st] supplies the verifier's coins. *)
val run_with :
  ?faults:msg Fault.t ->
  Random.State.t ->
  Ieq.params ->
  Gf2.t ->
  Gf2.t ->
  Ieq.prover ->
  Runtime.verdict array * Runtime.stats

(** [run_once st params x y prover] is [run_with] reduced to the
    global verdict. *)
val run_once :
  Random.State.t ->
  Ieq.params ->
  Gf2.t ->
  Gf2.t ->
  Ieq.prover ->
  bool * Runtime.stats

(** [run_faulty st env params x y prover] runs under a fault
    environment, corruption instantiated at this payload type. *)
val run_faulty :
  Random.State.t ->
  Fault_env.t ->
  Ieq.params ->
  Gf2.t ->
  Gf2.t ->
  Ieq.prover ->
  Runtime.verdict array * Runtime.stats
