(** Exact state-vector execution of the EQ path protocol (Algorithm 3)
    on toy instances — the ground truth the scalable product-proof
    engine is validated against, and the only engine that can evaluate
    {e entangled} proofs.

    All local tests of Algorithm 3 act on pairwise-disjoint register
    sets, so "every node accepts" is one global projector [P] applied
    to the coin-purified state: the acceptance probability of a proof
    [|xi>] is the quadratic form [<xi| V^dagger V |xi>] for a fixed
    linear map [V].  Diagonalizing [V^dagger V] therefore yields the
    {e exactly optimal} entangled attack — the number that separates
    the dQMA soundness (Definition 6) from the dQMA^sep,sep soundness
    (Definition 8) on the instance. *)

open Qdp_linalg

(** Protocol shape: toy fingerprints of [qubits] qubits at the path
    ends, [r - 1] intermediate nodes with a 2-register proof each. *)
type config = { r : int; qubits : int }

(** [proof_qubits cfg] is [2 * qubits * (r - 1)] — the dimension log of
    the proof space. *)
val proof_qubits : config -> int

(** [toy_state ~qubits k] is a deterministic unit state for input [k]:
    angle-encoded so distinct small [k] have pairwise overlaps bounded
    away from 0 and 1. *)
val toy_state : qubits:int -> int -> Vec.t

(** [final_state cfg ~x_state ~y_state ~proof] is the (unnormalized)
    global state after the full coin-purified run: circuit, all
    symmetric projections, and [v_r]'s POVM element.  Its squared norm
    is {!accept_prob}. *)
val final_state :
  config ->
  x_state:Vec.t ->
  y_state:Vec.t ->
  proof:Vec.t ->
  Qdp_quantum.Pure.t

(** [accept_prob cfg ~x_state ~y_state ~proof] executes Algorithm 3
    exactly: [v_0] prepares [x_state]; the given (arbitrary, possibly
    entangled) [proof] of dimension [2^(proof_qubits cfg)] fills the
    intermediate registers; coins are purified; [v_r] measures the
    projector onto [y_state]. *)
val accept_prob : config -> x_state:Vec.t -> y_state:Vec.t -> proof:Vec.t -> float

(** [attack_gram cfg ~x_state ~y_state] is the acceptance form
    [V^dagger V] of the protocol on the proof space
    ([2^(proof_qubits cfg)] square): entry [(p, q)] is the inner
    product of the final states for basis proofs [|p>] and [|q>].  All
    basis proofs run as one column batch through the batched circuit
    kernels and the Gram matrix is one blocked {!Batch.gram} sweep.
    The quadratic form [<xi| G |xi>] is the acceptance probability of
    proof [|xi>]. *)
val attack_gram : config -> x_state:Vec.t -> y_state:Vec.t -> Mat.t

(** [product_proof cfg pairs] assembles the product proof
    [(x) (a_j (x) b_j)] — the dQMA^sep,sep proof class. *)
val product_proof : config -> (Vec.t * Vec.t) array -> Vec.t

(** [honest_proof cfg state] loads [state] into every register. *)
val honest_proof : config -> Vec.t -> Vec.t

(** [optimal_entangled_attack cfg ~x_state ~y_state] computes the
    exact maximum acceptance over {e all} proofs — including entangled
    ones — as the top eigenvalue of the acceptance form, together with
    an optimal proof vector. *)
val optimal_entangled_attack :
  config -> x_state:Vec.t -> y_state:Vec.t -> float * Vec.t

(** [best_product_attack cfg ~x_state ~y_state] evaluates the geodesic
    interpolation product proof (the strongest known separable attack)
    for comparison with the entangled optimum. *)
val best_product_attack : config -> x_state:Vec.t -> y_state:Vec.t -> float

(** {2 Exact tree execution (Algorithm 5 on a star)}

    The smallest nontrivial tree: a root terminal, one internal node
    holding the two-register proof, and [t - 1] terminal leaves.  The
    internal node permutation-tests its kept register against all the
    leaf fingerprints; the root SWAP-tests its own state against the
    forwarded register. *)

type star_config = { t : int; star_qubits : int }

(** [star_final_state cfg ~root_state ~leaf_states ~proof] is the
    (unnormalized) global state after the full star run; its squared
    norm is {!star_accept_prob}.
    @raise Invalid_argument unless [Array.length leaf_states = t - 1]. *)
val star_final_state :
  star_config ->
  root_state:Vec.t ->
  leaf_states:Vec.t array ->
  proof:Vec.t ->
  Qdp_quantum.Pure.t

(** [star_accept_prob cfg ~root_state ~leaf_states ~proof] executes
    the protocol exactly for an arbitrary (possibly entangled)
    two-register [proof] of dimension [2^(2 star_qubits)].
    @raise Invalid_argument unless [Array.length leaf_states = t - 1]. *)
val star_accept_prob :
  star_config -> root_state:Vec.t -> leaf_states:Vec.t array -> proof:Vec.t -> float

(** [star_attack_gram cfg ~root_state ~leaf_states] is the acceptance
    form on the two-register proof space, computed by the batched
    pipeline (see {!attack_gram}). *)
val star_attack_gram :
  star_config -> root_state:Vec.t -> leaf_states:Vec.t array -> Mat.t

(** [optimal_entangled_star_attack cfg ~root_state ~leaf_states] is
    the exact optimum over all proofs (top eigenvalue of the
    acceptance form) with an optimal proof vector. *)
val optimal_entangled_star_attack :
  star_config -> root_state:Vec.t -> leaf_states:Vec.t array -> float * Vec.t

(** [optimal_split_attack st cfg ~x_state ~y_state ~cut_qubits ~sweeps]
    is the best acceptance over proofs of the form
    [|xi_1> (x) |xi_2>] where the first factor spans the first
    [cut_qubits] proof qubits — the proof class of a two-prover
    dQMA(2) protocol whose provers are unentangled across the cut
    (Section 1.5, open problem 1).  Computed by coordinate ascent on
    the acceptance quadratic form (each factor update is an exact
    eigenproblem), so the value is a certified attack, sandwiched
    between the best node-product and the global optimum. *)
val optimal_split_attack :
  Random.State.t ->
  config ->
  x_state:Vec.t ->
  y_state:Vec.t ->
  cut_qubits:int ->
  sweeps:int ->
  float
