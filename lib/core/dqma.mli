(** Distributed Merlin-Arthur verification as a first-class value —
    Definitions 5-8 of the paper as code.

    A protocol packages the predicate, the honest prover, the exact
    acceptance function, a library of cheating provers, the repetition
    count and the cost accounting.  The generic harness then evaluates
    completeness and (attack-library) soundness uniformly, which is
    what the conformance runner ([bin/tables.exe check]) and the CLI
    iterate over.

    Every protocol module in this library is exposed here as an
    adapter, so downstream users can treat "a dQMA protocol" as a
    value: pick one, hand it instances, read off acceptance numbers
    and costs. *)

open Qdp_codes
open Qdp_network

(** Which proof/communication model the protocol lives in
    (Definitions 5, 6, 7, 8 — plus the classical-proof dQCMA variant
    of Section 1.5). *)
type model = DMA | DQMA | DQMA_sep | DQMA_sep_sep | DQCMA

(** [pp_model] prints e.g. ["dQMA^sep"]. *)
val pp_model : Format.formatter -> model -> unit

(** A verification protocol over instances ['i] with prover strategies
    ['p]. *)
type ('i, 'p) protocol = {
  name : string;
  model : model;
  rounds : int;
  turns : int;
      (** prover↔verifier message turns in the interactive-proof sense
          ({!Qdp_network.Runtime.Turn.message_turns}): 1 for every
          one-shot Merlin→Arthur protocol, >1 for the dQIP family
          (arXiv:2210.01390).  The acceptance functions below already
          average over the verifier's public coins, so {!evaluate} and
          {!cross_validate} treat interactive protocols uniformly —
          the sampled backend draws the coins, the analytic backend
          enumerates them. *)
  repetitions : int;  (** parallel repetitions applied by {!evaluate} *)
  value : 'i -> bool;  (** the predicate being verified *)
  honest : 'i -> 'p option;
      (** the completeness prover ([None] on no instances) *)
  accept : 'i -> 'p -> float;  (** exact single-repetition acceptance *)
  attacks : 'i -> (string * 'p) list;  (** cheating-prover library *)
  costs : 'i -> Report.costs;
}

(** The uniform evaluation of a protocol on an instance. *)
type evaluation = {
  instance_is_yes : bool;
  honest_accept : float;  (** amplified; 0 when [honest] is [None] *)
  best_attack : float;  (** amplified best of the attack library *)
  best_attack_name : string;
  meets_spec : bool;
      (** yes instances: honest acceptance >= 2/3; no instances: best
          attack <= 1/3 *)
}

(** [evaluate p inst] runs the harness. *)
val evaluate : ('i, 'p) protocol -> 'i -> evaluation

(** [pp_evaluation] prints a one-line summary. *)
val pp_evaluation : Format.formatter -> string * evaluation -> unit

(** {2 Adapters for the protocols in this library} *)

(** Instances of the two-party problems on a path: [(x, y)]. *)
type pair_instance = Gf2.t * Gf2.t

(** Instances of the multi-terminal problems: the network, terminal
    vertices, and per-terminal inputs. *)
type multi_instance = {
  graph : Graph.t;
  terminals : int list;
  inputs : Gf2.t array;
}

(** [eq_path params] — Algorithm 3/4 (Theorem 19, path case). *)
val eq_path : Eq_path.params -> (pair_instance, Strategy.t) protocol

(** [eq_tree params] — Algorithm 5 (Theorem 19). *)
val eq_tree : Eq_tree.params -> (multi_instance, Eq_tree.strategy) protocol

(** [gt params] — Algorithm 7 (Theorem 26). *)
val gt : Gt.params -> (pair_instance, Gt.prover) protocol

(** [relay params] — Algorithm 6 (Theorem 22). *)
val relay : Relay.params -> (pair_instance, Relay.prover) protocol

(** [dqcma params] — the classical-proof variant of Section 1.5. *)
val dqcma : Variants.params -> (pair_instance, Variants.prover) protocol

(** [dma_trivial ~n ~r] — the trivial classical baseline (full string
    at every node). *)
val dma_trivial : n:int -> r:int -> (pair_instance, Runtime_dma.prover) protocol

(** [rpls params] — the randomized proof-labeling scheme (FPSP19). *)
val rpls : Rpls.params -> (pair_instance, Rpls.prover) protocol

(** [ieq params] — the interactive equality family (arXiv:2210.01390):
    the first [turns > 1] protocols in the registry, plus their
    turn-reduced 1-turn compilation with the factor-q certificate
    blowup.  Realized on the network by {!Runtime_ieq} through
    {!Qdp_network.Runtime.run_turns}. *)
val ieq : Ieq.params -> (pair_instance, Ieq.prover) protocol

(** [set_eq params] — Set Equality via set fingerprints; instances are
    pairs of element arrays. *)
val set_eq :
  Set_eq.params -> (Gf2.t array * Gf2.t array, Strategy.t) protocol

(** Instances of ranking verification: the network, terminals, inputs,
    and the claim "terminal [rv_i]'s input is the [rv_j]-th largest". *)
type rv_instance = {
  rv_graph : Graph.t;
  rv_terminals : int list;
  rv_inputs : Gf2.t array;
  rv_i : int;
  rv_j : int;
}

(** [rv params] — Algorithm 8 (Theorem 29).  The comparison-protocol
    amplification is internal to [Rv.accept], so [repetitions = 1]
    here; the attack library enumerates every direction claim that
    passes the root's count check. *)
val rv : Rv.params -> (rv_instance, Rv.prover) protocol

(** [oneway_forall proto params] — the Section 6 compiler applied to a
    one-way protocol, deciding [forall_t f] on a multi-terminal
    instance. *)
val oneway_forall :
  Qdp_commcc.Oneway.t ->
  Oneway_compiler.params ->
  (multi_instance, Oneway_compiler.prover) protocol

(** {2 Conformance suite} *)

(** A protocol packaged with a concrete instance, existentially. *)
type packed = Packed : ('i, 'p) protocol * 'i -> packed

(** [evaluate_packed p] runs {!evaluate} under the existential. *)
val evaluate_packed : packed -> string * evaluation

(** {2 Backends and differential cross-validation}

    Every registered protocol has an analytic acceptance function (the
    transfer-DP simulator path); several also have a message-passing
    network realization under {!Qdp_network.Runtime}.  The harness
    below runs the same instance and prover strategy through both and
    checks agreement — the network path Monte-Carlo estimates what the
    analytic path computes exactly. *)

(** A network realization: one sampled run, [true] on accept. *)
type ('i, 'p) network = Random.State.t -> 'i -> 'p -> bool

(** A fault-aware network realization: one sampled run under a
    {!Fault_env.t}, returning the raw per-node verdicts and stats so
    the fault layer ([Qdp_faults]) can apply recovery semantics
    (timeout-as-reject, degraded verdicts of the survivors, retry). *)
type ('i, 'p) faulty_network =
  Random.State.t -> Fault_env.t -> 'i -> 'p -> Runtime.verdict array * Runtime.stats

(** How to obtain a single-repetition acceptance probability. *)
type ('i, 'p) backend = Analytic | Network of ('i, 'p) network

(** [backend_accept ?trials ~st backend p inst prover] is the
    single-repetition acceptance under the chosen backend: exact for
    [Analytic], a [trials]-sample frequency for [Network] (default
    2000; each run increments the [crossval.network_runs] counter). *)
val backend_accept :
  ?trials:int ->
  st:Random.State.t ->
  ('i, 'p) backend ->
  ('i, 'p) protocol ->
  'i ->
  'p ->
  float

(** One analytic-vs-sampled comparison. *)
type check = {
  check_strategy : string;  (** ["honest"] or an attack-library name *)
  analytic : float;
  sampled : float;
  trials : int;
  tolerance : float;
      (** [1e-6] when the analytic verdict is deterministic, otherwise
          the half-width of the Wilson score interval *)
  agree : bool;
}

(** [cross_validate ?trials ?z ~st ~network p inst] compares both
    backends on the honest prover (when defined) and every
    attack-library strategy.  Deterministic analytic verdicts must
    reproduce to 1e-6; probabilistic ones must place the analytic value
    inside the [z]-sigma (default 5) Wilson score interval of the
    sampled frequency ({!Qdp_network.Runtime.wilson}).  Increments
    [crossval.checks] and [crossval.disagreements].  Strategies are
    compared in parallel on the [Qdp_par] pool, each sampling from an
    RNG state split off [st] in strategy order, so the check list is
    byte-identical at every [--jobs] value. *)
val cross_validate :
  ?trials:int ->
  ?z:float ->
  st:Random.State.t ->
  network:('i, 'p) network ->
  ('i, 'p) protocol ->
  'i ->
  check list

(** [pp_check] prints a one-line summary of a comparison. *)
val pp_check : Format.formatter -> check -> unit
