open Qdp_linalg
open Qdp_fingerprint

type params = {
  n : int;
  k : int;
  r : int;
  seed : int;
  repetitions : int;
  amplify : int;
}

let make ?repetitions ?(amplify = 6) ~seed ~n ~k ~r () =
  if k < 1 then invalid_arg "Set_eq.make: k >= 1";
  if amplify < 1 then invalid_arg "Set_eq.make: amplify >= 1";
  let repetitions =
    match repetitions with
    | Some reps -> reps
    | None -> Eq_path.paper_repetitions ~r
  in
  { n; k; r; seed; repetitions; amplify }

let fingerprint params = Fingerprint.standard ~seed:params.seed ~n:params.n

(* Realize the 2k amplified element fingerprints as concrete vectors
   with the exact Gram matrix ov(x_i, x_j)^c: columns of sqrt(G). *)
let embedded_elements params elements =
  let fp = fingerprint params in
  let m = Array.length elements in
  let gram =
    Mat.init m m (fun i j ->
        Cx.re
          (Float.pow
             (Fingerprint.overlap fp elements.(i) elements.(j))
             (float_of_int params.amplify)))
  in
  let root = Eig.sqrt_psd gram in
  Array.init m (fun i -> Vec.init m (fun row -> Mat.get root row i))

let check_sets params s t =
  if Array.length s <> params.k || Array.length t <> params.k then
    invalid_arg "Set_eq: sets must have exactly k elements"

let embedded_set_states params s t =
  check_sets params s t;
  let vecs = embedded_elements params (Array.append s t) in
  let sum lo =
    let acc = Vec.create (Array.length vecs) in
    for i = lo to lo + params.k - 1 do
      Vec.axpy ~alpha:Cx.one vecs.(i) acc
    done;
    Vec.normalize acc
  in
  (sum 0, sum params.k)

let set_overlap params s t =
  let hs, ht = embedded_set_states params s t in
  (Vec.dot hs ht).Complex.re

let single_round_accept params s t strategy =
  let hs, ht = embedded_set_states params s t in
  Sim.path_accept
    (Sim.two_state_chain ~r:params.r ~left:hs ~right:ht
       ~final:(fun reg -> Sim.swap_accept reg [| ht |])
       strategy)

let accept params s t strategy =
  Sim.repeat_accept params.repetitions (single_round_accept params s t strategy)

let best_attack_accept params s t =
  Qdp_log.attack_search ~proto:"set_eq"
    ~attrs:(fun () ->
      [ ("n", Qdp_obs.Trace.Int params.n);
        ("k", Qdp_obs.Trace.Int params.k);
        ("r", Qdp_obs.Trace.Int params.r) ])
  @@ fun () ->
  Qdp_log.best_candidate ~proto:"set_eq"
    ~score:(fun strat -> single_round_accept params s t strat)
    (Strategy.chain_library ~r:params.r)

let costs params =
  let q = params.amplify * Fingerprint.qubits_of_n params.n in
  let k = params.repetitions in
  {
    Report.local_proof_qubits = (if params.r >= 2 then 2 * k * q else 0);
    total_proof_qubits = (params.r - 1) * 2 * k * q;
    local_message_qubits = k * q;
    total_message_qubits = params.r * k * q;
    rounds = 1;
  }
