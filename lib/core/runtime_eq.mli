(** Message-passing execution of the EQ path protocol on the
    {!Qdp_network.Runtime} engine.

    Where {!Eq_path} computes acceptance probabilities in closed form,
    this module actually {e runs} the protocol: every node is a
    handler, fingerprint registers travel as messages along the path
    graph, symmetrization coins are flipped locally, SWAP tests are
    sampled, and the per-node verdicts come back through the runtime —
    together with its traffic accounting.  Sampled acceptance
    frequencies converge to the {!Eq_path} closed forms (checked in the
    test suite). *)

open Qdp_codes
open Qdp_network

(** Shares {!Eq_path.params} so closed-form and message-passing runs
    are configured by the same value ([repetitions] is ignored here:
    each [run_once] is one repetition). *)
type params = Eq_path.params = {
  n : int;
  r : int;
  seed : int;
  repetitions : int;
}

(** [run_once st params x y strategy] executes one repetition and
    returns whether every node accepted, plus the runtime's traffic
    stats. *)
val run_once :
  Random.State.t ->
  params ->
  Gf2.t ->
  Gf2.t ->
  Strategy.t ->
  bool * Runtime.stats

(** [run_faulty st env params x y strategy] executes one repetition
    under the fault environment: forwarded fingerprint registers pass
    through [env]'s register noise when the plan corrupts them, links
    drop/duplicate per the plan, crashed nodes freeze.  Returns the
    raw per-node verdicts so the fault layer can apply its recovery
    semantics (degraded verdicts need to know who was down). *)
val run_faulty :
  Random.State.t ->
  Fault_env.t ->
  params ->
  Gf2.t ->
  Gf2.t ->
  Strategy.t ->
  Runtime.verdict array * Runtime.stats

(** [estimate_acceptance st ~trials params x y strategy] is the
    empirical acceptance frequency. *)
val estimate_acceptance :
  Random.State.t ->
  trials:int ->
  params ->
  Gf2.t ->
  Gf2.t ->
  Strategy.t ->
  float
