open Qdp_codes
open Qdp_network

type topology = Star | Path | Cycle | Grid

let topology_graph topo ~t =
  match topo with
  | Star -> (Graph.star t, List.init t (fun i -> i + 1))
  | Path -> (Graph.path (2 * t), List.init t (fun i -> 2 * i))
  | Cycle -> (Graph.cycle (2 * t), List.init t (fun i -> 2 * i))
  | Grid ->
      let g = Graph.grid ~w:t ~h:2 in
      (g, List.init t (fun i -> i))

type spec = {
  seed : int;
  n : int;
  r : int;
  t : int;
  d : int;
  repetitions : int option;
  topology : topology;
}

let default_spec =
  { seed = 42; n = 32; r = 6; t = 4; d = 2; repetitions = None; topology = Star }

type meta = {
  id : string;
  summary : string;
  reference : string;
  cost_formula : string;
}

type demo_ctx = {
  demo_spec : spec;
  x : Gf2.t;
  y : Gf2.t;
  big : Gf2.t;
  small : Gf2.t;
}

let context_of ?x ?y spec =
  let st = Random.State.make [| spec.seed; 0xd9a |] in
  let x = match x with Some x -> x | None -> Gf2.random st spec.n in
  let y =
    match y with
    | Some y -> y
    | None ->
        let rec go () =
          let y = Gf2.random st spec.n in
          if Gf2.equal x y then go () else y
        in
        go ()
  in
  let big, small =
    if Gf2.compare_big_endian x y > 0 then (x, y) else (y, x)
  in
  { demo_spec = spec; x; y; big; small }

type entry =
  | Entry : {
      meta : meta;
      demo_fix : spec -> spec;
      protocol : spec -> ('i, 'p) Dqma.protocol;
      demo : demo_ctx -> 'i * 'i;
      network : (spec -> ('i, 'p) Dqma.network) option;
      faulty : (spec -> ('i, 'p) Dqma.faulty_network) option;
      quantum_links : bool;
      conformance : bool;
    }
      -> entry

let entries : entry list ref = ref []
let meta_of (Entry e) = e.meta

let register entry =
  let m = meta_of entry in
  if List.exists (fun e -> (meta_of e).id = m.id) !entries then
    invalid_arg (Printf.sprintf "Registry.register: duplicate id %S" m.id);
  entries := !entries @ [ entry ]

let all () = !entries
let find id = List.find_opt (fun e -> (meta_of e).id = id) !entries
let ids () = List.map (fun e -> (meta_of e).id) !entries

type info = {
  info_id : string;
  info_name : string;
  info_model : Dqma.model;
  info_turns : int;
  info_summary : string;
  info_reference : string;
  info_cost : string;
  info_network : bool;
  info_fault_tolerant : bool;
  info_conformance : bool;
}

let info ?(spec = default_spec) (Entry e) =
  let p = e.protocol (e.demo_fix spec) in
  {
    info_id = e.meta.id;
    info_name = p.Dqma.name;
    info_model = p.Dqma.model;
    info_turns = p.Dqma.turns;
    info_summary = e.meta.summary;
    info_reference = e.meta.reference;
    info_cost = e.meta.cost_formula;
    info_network = e.network <> None;
    info_fault_tolerant = e.faulty <> None;
    info_conformance = e.conformance;
  }

let evaluate_demo ?x ?y spec (Entry e) =
  Qdp_obs.Prof.section e.meta.id @@ fun () ->
  let p = e.protocol spec in
  let yes, no = e.demo (context_of ?x ?y spec) in
  (p.Dqma.name, Dqma.evaluate p yes, Dqma.evaluate p no, p.Dqma.costs yes)

let cross_validate_demo ?trials ~st spec (Entry e) =
  match e.network with
  | None -> None
  | Some mk ->
      Qdp_obs.Prof.section e.meta.id @@ fun () ->
      let spec = e.demo_fix spec in
      let p = e.protocol spec in
      let network = mk spec in
      let yes, no = e.demo (context_of spec) in
      Some
        [
          ("yes", Dqma.cross_validate ?trials ~st ~network p yes);
          ("no", Dqma.cross_validate ?trials ~st ~network p no);
        ]

(* ------------------------------------------------------------------ *)
(* Fault experiments                                                   *)
(* ------------------------------------------------------------------ *)

type fault_case = {
  fc_strategy : string;
  fc_analytic : float;
  fc_run : Random.State.t -> Fault_env.t -> Runtime.verdict array * Runtime.stats;
}

type fault_suite = {
  fs_id : string;
  fs_name : string;
  fs_turns : int;
  fs_quantum_links : bool;
  fs_yes : fault_case list;
  fs_no : fault_case list;
}

let fault_suite spec (Entry e) =
  match e.faulty with
  | None -> None
  | Some mk ->
      let spec = e.demo_fix spec in
      let p = e.protocol spec in
      let run = mk spec in
      let cases inst provers =
        List.map
          (fun (name, prover) ->
            {
              fc_strategy = name;
              fc_analytic = p.Dqma.accept inst prover;
              fc_run = (fun st env -> run st env inst prover);
            })
          provers
      in
      let yes, no = e.demo (context_of spec) in
      let honest_of inst =
        match p.Dqma.honest inst with
        | Some h -> [ ("honest", h) ]
        | None -> []
      in
      Some
        {
          fs_id = e.meta.id;
          fs_name = p.Dqma.name;
          fs_turns = p.Dqma.turns;
          fs_quantum_links = e.quantum_links;
          fs_yes = cases yes (honest_of yes);
          fs_no = cases no (honest_of no @ p.Dqma.attacks no);
        }

let demo_suite ~seed =
  let base = { default_spec with seed; n = 24; r = 4; t = 4 } in
  List.concat_map
    (fun (Entry e) ->
      if not e.conformance then []
      else
        let spec = e.demo_fix base in
        let p = e.protocol spec in
        let yes, no = e.demo (context_of spec) in
        [ Dqma.Packed (p, yes); Dqma.Packed (p, no) ])
    (all ())
