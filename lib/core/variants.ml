open Qdp_codes
open Qdp_fingerprint

type params = { n : int; r : int; seed : int; repetitions : int }

let make ?repetitions ~seed ~n ~r () =
  if r < 1 then invalid_arg "Variants.make: r >= 1";
  let repetitions =
    match repetitions with
    | Some k -> k
    | None -> Eq_path.paper_repetitions ~r
  in
  { n; r; seed; repetitions }

type prover = Honest_strings | Strings of Gf2.t array

(* With classical proofs every node holds a definite string, so the
   chain is a sequence of independent SWAP tests between consecutive
   fingerprints plus the final POVM: no coins, a plain product. *)
let single_accept params x y prover =
  let fp = Fingerprint.standard ~seed:params.seed ~n:params.n in
  let strings =
    match prover with
    | Honest_strings -> Array.make (params.r - 1) x
    | Strings zs ->
        if Array.length zs <> params.r - 1 then
          invalid_arg "Variants: one string per intermediate node";
        zs
  in
  let state_of j =
    if j = 0 then Fingerprint.state fp x else Fingerprint.state fp strings.(j - 1)
  in
  let acc = ref 1. in
  let prev = ref (state_of 0) in
  for j = 1 to params.r - 1 do
    let here = state_of j in
    acc := !acc *. Sim.swap_accept [| !prev |] [| here |];
    prev := here
  done;
  !acc *. Fingerprint.accept_prob fp y !prev

let accept params x y prover =
  Sim.repeat_accept params.repetitions (single_accept params x y prover)

let best_attack_accept params x y =
  let all v = Strings (Array.make (params.r - 1) v) in
  let switch j =
    Strings (Array.init (params.r - 1) (fun i -> if i < j then x else y))
  in
  let candidates =
    ("all-x", all x) :: ("all-y", all y)
    :: List.init (params.r - 1) (fun j ->
           (Printf.sprintf "switch@%d" (j + 1), switch j))
  in
  (* unlogged search: score on the pool, fold in candidate order *)
  let arr = Array.of_list candidates in
  let scores =
    Qdp_par.parallel_map_array ~chunk:1
      (fun (_, p) -> single_accept params x y p)
      arr
  in
  let best = ref 0. and best_name = ref "none" in
  Array.iteri
    (fun i (name, _) ->
      if scores.(i) > !best then begin
        best := scores.(i);
        best_name := name
      end)
    arr;
  (!best, !best_name)

let costs params =
  let q = Fingerprint.qubits_of_n params.n in
  let k = params.repetitions in
  {
    Report.local_proof_qubits = (if params.r >= 2 then params.n else 0);
    total_proof_qubits = (params.r - 1) * params.n;
    local_message_qubits = k * q;
    total_message_qubits = params.r * k * q;
    rounds = 1;
  }

let locc_transform (c : Report.costs) ~d_max =
  let s_c = c.Report.local_proof_qubits in
  let s_m = c.Report.local_message_qubits in
  let s_tm = c.Report.total_message_qubits in
  {
    Report.local_proof_qubits = s_c + (d_max * s_m * s_tm);
    total_proof_qubits = c.Report.total_proof_qubits + (d_max * s_m * s_tm);
    local_message_qubits = s_m * s_tm;
    total_message_qubits = c.Report.total_message_qubits * s_tm;
    rounds = c.Report.rounds;
  }

let corollary21_local_proof ~d_max ~vertices ~r ~n =
  let logn = Float.log (float_of_int (max 2 n)) /. Float.log 2. in
  float_of_int (d_max * vertices * r * r * r * r) *. logn *. logn
