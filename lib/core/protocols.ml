open Qdp_codes

(* Every entry below instantiates its protocol from the uniform
   [Registry.spec]; [demo_fix] pins the fields the historical demo
   suite used (so [tables.exe check] output is reproducible), and
   [demo] builds one yes and one no instance from the shared context.
   Entries with a [network] field have a message-passing realization
   the differential harness checks the analytic engine against. *)

let copy_pair a b = (Gf2.copy a, Gf2.copy b)
let paper_reps (s : Registry.spec) = Eq_path.paper_repetitions ~r:s.r

let eq_params (s : Registry.spec) =
  Eq_path.make ?repetitions:s.repetitions ~seed:s.seed ~n:s.n ~r:s.r ()

let eq_entry =
  Registry.Entry
    {
      meta =
        {
          id = "eq";
          summary = "Equality on a path of r+1 nodes";
          reference = "Thm 19, Alg 3-4";
          cost_formula = "O(r^2 log n) qubits/node";
        };
      demo_fix = Fun.id;
      protocol = (fun s -> Dqma.eq_path (eq_params s));
      demo =
        (fun ctx -> (copy_pair ctx.x ctx.x, copy_pair ctx.x ctx.y));
      network =
        Some
          (fun s ->
            let params = eq_params s in
            fun st (x, y) strategy ->
              fst (Runtime_eq.run_once st params x y strategy));
      faulty =
        Some
          (fun s ->
            let params = eq_params s in
            fun st env (x, y) strategy ->
              Runtime_eq.run_faulty st env params x y strategy);
      quantum_links = true;
      conformance = true;
    }

let eqt_params (s : Registry.spec) =
  Eq_tree.make ?repetitions:s.repetitions ~seed:s.seed ~n:s.n ~r:s.r ()

let multi_of_ctx (ctx : Registry.demo_ctx) =
  let s = ctx.demo_spec in
  let g, terminals = Registry.topology_graph s.topology ~t:s.t in
  let mk inputs = { Dqma.graph = g; terminals; inputs } in
  ( mk (Array.make s.t (Gf2.copy ctx.x)),
    mk
      (Array.init s.t (fun i ->
           if i = s.t - 1 then Gf2.copy ctx.y else Gf2.copy ctx.x)) )

let eqt_entry =
  Registry.Entry
    {
      meta =
        {
          id = "eqt";
          summary = "Equality with t terminals on a network";
          reference = "Thm 19, Alg 5";
          cost_formula = "O(r^2 log n) qubits/node";
        };
      (* the historical demo ran the tree protocol at height 2 but with
         the r=4 path amplification *)
      demo_fix =
        (fun s -> { s with r = 2; repetitions = Some (paper_reps s) });
      protocol = (fun s -> Dqma.eq_tree (eqt_params s));
      demo = multi_of_ctx;
      network =
        Some
          (fun s ->
            let params = eqt_params s in
            fun st (mi : Dqma.multi_instance) strategy ->
              fst
                (Runtime_tree.run_once st params mi.Dqma.graph
                   ~terminals:mi.Dqma.terminals ~inputs:mi.Dqma.inputs
                   strategy));
      faulty =
        Some
          (fun s ->
            let params = eqt_params s in
            fun st env (mi : Dqma.multi_instance) strategy ->
              Runtime_tree.run_faulty st env params mi.Dqma.graph
                ~terminals:mi.Dqma.terminals ~inputs:mi.Dqma.inputs strategy);
      quantum_links = true;
      conformance = true;
    }

let gt_params (s : Registry.spec) =
  Gt.make ?repetitions:s.repetitions ~seed:s.seed ~n:s.n ~r:s.r ()

let gt_entry =
  Registry.Entry
    {
      meta =
        {
          id = "gt";
          summary = "Greater-than on a path";
          reference = "Thm 26, Alg 7";
          cost_formula = "O(r^2 log^2 n) qubits/node";
        };
      demo_fix = Fun.id;
      protocol = (fun s -> Dqma.gt (gt_params s));
      demo =
        (fun ctx -> (copy_pair ctx.big ctx.small, copy_pair ctx.small ctx.big));
      network =
        Some
          (fun s ->
            let params = gt_params s in
            fun st (x, y) prover ->
              fst (Runtime_gt.run_once st params x y (Runtime_gt.of_prover prover)));
      faulty =
        Some
          (fun s ->
            let params = gt_params s in
            fun st env (x, y) prover ->
              Runtime_gt.run_faulty st env params x y
                (Runtime_gt.of_prover prover));
      quantum_links = true;
      conformance = true;
    }

let relay_entry =
  Registry.Entry
    {
      meta =
        {
          id = "relay";
          summary = "Equality with relay points on long paths";
          reference = "Thm 22, Alg 6";
          cost_formula = "O(n^{2/3} log n) qubits/node";
        };
      demo_fix = (fun s -> { s with r = 12 });
      protocol =
        (fun s -> Dqma.relay (Relay.make ~seed:s.seed ~n:s.n ~r:s.r ()));
      demo = (fun ctx -> (copy_pair ctx.x ctx.x, copy_pair ctx.x ctx.y));
      network = None;
      faulty = None;
      quantum_links = false;
      conformance = true;
    }

let dqcma_entry =
  Registry.Entry
    {
      meta =
        {
          id = "dqcma";
          summary = "Equality with classical proofs, quantum messages";
          reference = "Sec 1.5";
          cost_formula = "n bits/node proof";
        };
      demo_fix = (fun s -> { s with repetitions = Some 64 });
      protocol =
        (fun s ->
          Dqma.dqcma
            (Variants.make ?repetitions:s.repetitions ~seed:s.seed ~n:s.n
               ~r:s.r ()));
      demo = (fun ctx -> (copy_pair ctx.x ctx.x, copy_pair ctx.x ctx.y));
      network = None;
      faulty = None;
      quantum_links = false;
      conformance = true;
    }

let dma_entry =
  Registry.Entry
    {
      meta =
        {
          id = "dma";
          summary = "Equality in classical dMA, full string at every node";
          reference = "Sec 1.1 baseline";
          cost_formula = "n bits/node";
        };
      demo_fix = Fun.id;
      protocol = (fun s -> Dqma.dma_trivial ~n:s.n ~r:s.r);
      demo = (fun ctx -> (copy_pair ctx.x ctx.x, copy_pair ctx.x ctx.y));
      network =
        Some
          (fun s ->
            fun _st (x, y) prover -> fst (Runtime_dma.run ~r:s.r x y prover));
      faulty =
        Some
          (fun s ->
            fun st env (x, y) prover ->
              Runtime_dma.run_faulty st env ~r:s.r x y prover);
      quantum_links = false;
      conformance = true;
    }

let rpls_params (s : Registry.spec) =
  { Rpls.n = s.n; r = s.r; parity_checks = s.d }

let rpls_entry =
  Registry.Entry
    {
      meta =
        {
          id = "rpls";
          summary = "Randomized proof-labeling scheme for equality";
          reference = "FPSP19 (Sec 1.1)";
          cost_formula = "n-bit proofs, ell-bit messages";
        };
      demo_fix = (fun s -> { s with d = 4 });
      protocol = (fun s -> Dqma.rpls (rpls_params s));
      demo = (fun ctx -> (copy_pair ctx.x ctx.x, copy_pair ctx.x ctx.y));
      network =
        Some
          (fun s ->
            let params = rpls_params s in
            fun st (x, y) prover -> fst (Rpls.run_once st params x y prover));
      faulty =
        Some
          (fun s ->
            let params = rpls_params s in
            fun st env (x, y) prover ->
              Rpls.run_faulty st env params x y prover);
      quantum_links = false;
      conformance = true;
    }

(* The interactive family: one entry per turn count, so the registry,
   fault sweeps and the turns experiment can address each variant.
   Conformance is off (they are additions, not paper tables); the
   demo/bench suites still cross-validate and fault-sweep them. *)
let ieq_params turns (s : Registry.spec) =
  {
    Ieq.n = s.Registry.n;
    r = s.Registry.r;
    turns;
    repetitions = Option.value s.Registry.repetitions ~default:2;
  }

(* Demo pair for the interactive family.  The no-instance is the
   root-rich {!Ieq.adversarial_pair}, so every attack accepts with the
   protocol's worst-case probability instead of an instance-specific 0
   — that exercises the probabilistic branch of cross-validation and
   gives the fault sweep's contractivity gate its genuine
   noiseless-soundness slack. *)
let ieq_demo params ctx =
  let x, y = Ieq.adversarial_pair params ctx.Registry.x in
  (copy_pair x x, (x, y))

let ieq_entry turns =
  let meta : Registry.meta =
    match turns with
    | 3 ->
        {
          id = "ieq3";
          summary = "3-turn interactive equality (public-coin chain)";
          reference = "LMN22 (arXiv:2210.01390)";
          cost_formula = "O(log n) bits/node, 3 turns";
        }
    | 2 ->
        {
          id = "ieq2";
          summary = "2-turn interactive equality (coins, then response)";
          reference = "LMN22 (arXiv:2210.01390)";
          cost_formula = "O(log n) bits/node, 2 turns";
        }
    | _ ->
        {
          id = "ieq1";
          summary = "Turn-reduced equality: full table certificate";
          reference = "LMN22 (arXiv:2210.01390, turn reduction)";
          cost_formula = "O(n log n) bits/node, 1 turn";
        }
  in
  Registry.Entry
    {
      meta;
      demo_fix = Fun.id;
      protocol = (fun s -> Dqma.ieq (ieq_params turns s));
      demo = (fun ctx -> ieq_demo (ieq_params turns ctx.demo_spec) ctx);
      network =
        Some
          (fun s ->
            let params = ieq_params turns s in
            fun st (x, y) prover ->
              fst (Runtime_ieq.run_once st params x y prover));
      faulty =
        Some
          (fun s ->
            let params = ieq_params turns s in
            fun st env (x, y) prover ->
              Runtime_ieq.run_faulty st env params x y prover);
      quantum_links = false;
      conformance = false;
    }

let seteq_entry =
  Registry.Entry
    {
      meta =
        {
          id = "seteq";
          summary = "Set equality via set fingerprints";
          reference = "Sec 1.4";
          cost_formula = "O(k r^2 log n) qubits/node";
        };
      demo_fix =
        (fun s -> { s with t = 3; repetitions = Some (paper_reps s) });
      protocol =
        (fun s ->
          Dqma.set_eq
            (Set_eq.make ?repetitions:s.repetitions ~seed:s.seed ~n:s.n
               ~k:s.t ~r:s.r ()));
      demo =
        (fun ctx ->
          let s = ctx.demo_spec in
          let k = s.t in
          let set = Array.init k (fun i -> Gf2.of_int ~width:s.n (i + 5)) in
          let perm = Array.init k (fun i -> set.((i + k - 1) mod k)) in
          let other =
            Array.init k (fun i -> Gf2.of_int ~width:s.n (i + 900))
          in
          ((set, perm), (Array.map Gf2.copy set, other)));
      network = None;
      faulty = None;
      quantum_links = false;
      conformance = true;
    }

let rv_entry =
  Registry.Entry
    {
      meta =
        {
          id = "rv";
          summary = "Ranking verification: is terminal i's input j-th largest?";
          reference = "Thm 29, Alg 8";
          cost_formula = "O(t r^2 log^2 n) qubits/node";
        };
      demo_fix = Fun.id;
      protocol =
        (fun s ->
          Dqma.rv
            (Rv.make ?repetitions:s.repetitions ~seed:s.seed ~n:s.n
               ~r:(max 1 s.r) ()));
      demo =
        (fun ctx ->
          let s = ctx.demo_spec in
          let g, terminals = Registry.topology_graph s.topology ~t:s.t in
          let inputs =
            Array.init s.t (fun k -> Gf2.of_int ~width:s.n (k + 1))
          in
          let mk i j =
            {
              Dqma.rv_graph = g;
              rv_terminals = terminals;
              rv_inputs = inputs;
              rv_i = i;
              rv_j = j;
            }
          in
          (* terminal t-1 holds the largest input, terminal 0 the
             smallest, so rank 1 is true for the former only *)
          (mk (s.t - 1) 1, mk 0 1));
      network = None;
      faulty = None;
      quantum_links = false;
      conformance = false;
    }

let ham_entry =
  Registry.Entry
    {
      meta =
        {
          id = "ham";
          summary = "Pairwise Hamming-closeness via the one-way compiler";
          reference = "Thm 30/32, Alg 9";
          cost_formula = "O(t^2 r^2 d log^2 n) qubits/node";
        };
      demo_fix = Fun.id;
      protocol =
        (fun s ->
          let proto = Qdp_commcc.Oneway.ham ~seed:s.seed ~n:s.n ~d:s.d in
          let r = max 1 s.r in
          Dqma.oneway_forall proto
            (Oneway_compiler.make ?repetitions:s.repetitions ~amplification:2
               ~r ~t:s.t ~n:s.n ()));
      demo = multi_of_ctx;
      network = None;
      faulty = None;
      quantum_links = false;
      conformance = false;
    }

let initialized = ref false

let init () =
  if not !initialized then begin
    initialized := true;
    List.iter Registry.register
      [
        eq_entry;
        eqt_entry;
        gt_entry;
        relay_entry;
        dqcma_entry;
        dma_entry;
        rpls_entry;
        seteq_entry;
        rv_entry;
        ham_entry;
        ieq_entry 3;
        ieq_entry 2;
        ieq_entry 1;
      ]
  end
