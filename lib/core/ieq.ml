open Qdp_codes

type params = { n : int; r : int; turns : int; repetitions : int }

let validate p =
  if p.n <= 0 then invalid_arg "Ieq: n must be positive";
  if p.r < 1 then invalid_arg "Ieq: path length r must be >= 1";
  if p.turns < 1 || p.turns > 3 then invalid_arg "Ieq: turns must be 1, 2 or 3";
  if p.repetitions < 1 then invalid_arg "Ieq: repetitions must be >= 1"

let is_prime k =
  let rec go d = (d * d > k) || (k mod d <> 0 && go (d + 1)) in
  k >= 2 && go 2

let field p =
  let rec next q = if is_prime q then q else next (q + 1) in
  next (max (4 * p.n) 11)

(* Horner over F_q; bit i of x is the degree-i coefficient. *)
let poly_eval ~q x alpha =
  let acc = ref 0 in
  for i = Gf2.length x - 1 downto 0 do
    acc := ((!acc * alpha) + if Gf2.get x i then 1 else 0) mod q
  done;
  !acc

let parity x = Gf2.weight x land 1 = 1
let table ~q x = Array.init q (fun alpha -> poly_eval ~q x alpha)

type prover = Answer_x | Answer_y | Split of int

let source _p x y prover i =
  match prover with
  | Answer_x -> x
  | Answer_y -> y
  | Split j -> if i <= j then x else y

type answer = { a_alpha : int; a_eval : int }

let respond p ~q x y prover ~alpha i =
  { a_alpha = alpha; a_eval = poly_eval ~q (source p x y prover i) alpha }

let commit_ok_left x b = Bool.equal b (parity x)
let commit_ok_right y b = Bool.equal b (parity y)

let answer_ok_left ~q x ~coin a =
  a.a_alpha = coin && a.a_eval = poly_eval ~q x a.a_alpha

let answer_ok_right ~q y a = a.a_eval = poly_eval ~q y a.a_alpha
let table_ok_left ~q x t = t = table ~q x

let probe_ok t ~beta ~value =
  beta >= 0 && beta < Array.length t && t.(beta) = value

let table_ok_right ~q y t ~coin = probe_ok t ~beta:coin ~value:(poly_eval ~q y coin)

(* 2/3-turn variants: the only randomness is v_0's public challenge,
   so exact acceptance is the average of the decision predicate over
   all q coins.  The chain checks and endpoint anchors below are the
   same predicates the network nodes evaluate on the sampled coin. *)
let accept_interactive p ~q x y prover =
  let r = p.r in
  let hits = ref 0 in
  for coin = 0 to q - 1 do
    let ans = Array.init (r + 1) (respond p ~q x y prover ~alpha:coin) in
    let com = Array.init (r + 1) (fun i -> parity (source p x y prover i)) in
    let chain = ref true in
    for i = 0 to r - 1 do
      if ans.(i) <> ans.(i + 1) then chain := false;
      if p.turns = 3 && com.(i) <> com.(i + 1) then chain := false
    done;
    let left =
      answer_ok_left ~q x ~coin ans.(0)
      && (p.turns < 3 || commit_ok_left x com.(0))
    in
    let right =
      answer_ok_right ~q y ans.(r)
      && (p.turns < 3 || commit_ok_right y com.(r))
    in
    if !chain && left && right then incr hits
  done;
  float_of_int !hits /. float_of_int q

(* 1-turn variant: v_0's table anchor is deterministic; each of the r
   edge probes uses the left endpoint's private coin and v_r's anchor
   uses its own, so every coin appears in exactly one check and the
   acceptance probability is the product of agreement fractions. *)
let accept_one_turn p ~q x y prover =
  let r = p.r in
  let t = Array.init (r + 1) (fun i -> table ~q (source p x y prover i)) in
  if not (table_ok_left ~q x t.(0)) then 0.
  else begin
    let fq = float_of_int q in
    let acc = ref 1. in
    for i = 0 to r - 1 do
      let agree = ref 0 in
      for beta = 0 to q - 1 do
        if probe_ok t.(i + 1) ~beta ~value:t.(i).(beta) then incr agree
      done;
      acc := !acc *. (float_of_int !agree /. fq)
    done;
    let right = ref 0 in
    for beta = 0 to q - 1 do
      if table_ok_right ~q y t.(r) ~coin:beta then incr right
    done;
    !acc *. (float_of_int !right /. fq)
  end

let accept p (x, y) prover =
  validate p;
  let q = field p in
  if p.turns = 1 then accept_one_turn p ~q x y prover
  else accept_interactive p ~q x y prover

let attacks p =
  [
    ("answer-x", Answer_x);
    ("answer-y", Answer_y);
    ("split-mid", Split (p.r / 2));
  ]

let soundness_bound p =
  float_of_int (p.n - 1) /. float_of_int (field p)

let adversarial_pair p base =
  validate p;
  let q = field p in
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  let d = ref 1 in
  for c = 1 to p.n - 1 do
    if gcd c (q - 1) > gcd !d (q - 1) then d := c
  done;
  let x = Gf2.copy base in
  Gf2.set x 0 true;
  Gf2.set x !d false;
  let y = Gf2.copy x in
  Gf2.set y 0 false;
  Gf2.set y !d true;
  (x, y)

let bits q =
  let rec go w k = if k = 0 then w else go (w + 1) (k lsr 1) in
  go 0 (max 0 (q - 1))

let costs p =
  validate p;
  let q = field p in
  let lg = bits q in
  let per_node, per_edge =
    match p.turns with
    | 3 -> (1 + (2 * lg), 2 * (1 + (2 * lg)))
    | 2 -> (2 * lg, 2 * 2 * lg)
    | _ -> (q * lg, 2 * lg)
  in
  {
    Report.local_proof_qubits = per_node;
    total_proof_qubits = (p.r + 1) * per_node;
    local_message_qubits = per_edge;
    total_message_qubits = p.r * per_edge;
    rounds = 1;
  }
