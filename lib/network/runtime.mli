(** Synchronous round-based message-passing runtime.

    Distributed verification protocols (Definition 5/6) run in a fixed
    number of synchronous rounds: in every round each node reads its
    inbox, updates local state and posts messages to neighbours; after
    the last round every node outputs accept or reject.  This engine
    executes such node programs on a {!Graph.t}, enforces that messages
    travel only along edges, and accounts per-edge traffic so protocol
    implementations can report their measured message complexity.

    Executions can optionally run under a {!Fault} injector: messages
    are then dropped, duplicated or corrupted per the fault plan and
    crash-stopped nodes freeze, with every injected event tallied in
    the returned {!stats}.  The injector carries its own RNG, so the
    protocol's randomness is untouched by the fault layer. *)

(** Per-node verdict after the final round. *)
type verdict = Accept | Reject

(** [global_verdict vs] is [Accept] iff every node accepts — the
    acceptance criterion of distributed verification. *)
val global_verdict : verdict array -> verdict

(** Raised when a node addresses a message to a non-neighbour: a bug
    in the node program (or byzantine behaviour a fault harness wants
    to observe), reported with full structure so callers can record it
    instead of aborting a whole sweep. *)
exception Protocol_error of { node : int; round : int; target : int }

(** A node program over state ['s] and message payloads ['m].  The
    runtime calls [init] once, [round] once per round (with the inbox
    holding [(sender, payload)] pairs in sender order), and [finish]
    after the last round. *)
type ('s, 'm) program = {
  init : int -> 's;
  round : round:int -> id:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  finish : id:int -> 's -> verdict;
}

(** Traffic accounting for one execution. *)
type stats = {
  messages : int;  (** total messages delivered (after fault injection) *)
  rounds_run : int;
  per_edge : ((int * int) * int) list;
      (** messages per undirected edge, edges as [(min, max)] *)
  down : int list;  (** nodes crash-stopped by the final round, sorted *)
  faults : Fault.counts option;
      (** injected-event tally; [None] when no injector was attached *)
}

(** [run ?faults g ~rounds program] executes the program and returns
    per-node verdicts with traffic stats.  With [faults], deliveries
    pass through the injector and crash-stopped nodes stop executing
    (their state freezes; their verdict is whatever [finish] makes of
    it — recovery semantics beyond that live in [Qdp_faults]).
    @raise Protocol_error if a node addresses a non-neighbour. *)
val run :
  ?faults:'m Fault.t -> Graph.t -> rounds:int -> ('s, 'm) program -> verdict array * stats

(** [run_accepts g ~rounds program] is [true] iff all nodes accept. *)
val run_accepts : Graph.t -> rounds:int -> ('s, 'm) program -> bool

(** [estimate_acceptance ~st ~trials f] runs the randomized trial [f]
    (typically a [run_once] closure) [trials] times and returns the
    empirical acceptance frequency.  The trials execute on the
    [Qdp_par] pool in fixed chunks of [Qdp_par.mc_chunk], each chunk
    on an RNG state split off [st] in chunk order, so the frequency —
    and the post-call position of [st] — are byte-identical at every
    [--jobs] value.  Threading [st] — never the global RNG — keeps
    every experiment bit-reproducible from a seed. *)
val estimate_acceptance :
  st:Random.State.t -> trials:int -> (Random.State.t -> bool) -> float

(** {2 Confidence intervals} *)

(** A Wilson score interval around an empirical frequency. *)
type interval = {
  point : float;  (** the raw frequency hits/trials *)
  lower : float;
  upper : float;
  ci_trials : int;
}

(** [wilson ?z ~hits ~trials ()] is the Wilson score interval at
    critical value [z] (default 5, a ~6e-7 two-sided tail — the same
    width the differential cross-validation harness
    ([Dqma.cross_validate]) demands, so ad-hoc callers and the harness
    agree on what "statistically consistent" means) — unlike the
    normal approximation it stays inside [0, 1] and behaves at the
    endpoints, which is exactly where deterministic-verdict protocols
    live.
    @raise Invalid_argument on [trials <= 0] or [hits] out of range. *)
val wilson : ?z:float -> hits:int -> trials:int -> unit -> interval

(** [estimate_acceptance_ci ?z ~st ~trials f] is {!estimate_acceptance}
    returning the full {!interval} instead of a bare frequency. *)
val estimate_acceptance_ci :
  ?z:float -> st:Random.State.t -> trials:int -> (Random.State.t -> bool) -> interval
