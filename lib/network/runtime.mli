(** Synchronous round-based message-passing runtime with interactive
    turn schedules.

    Distributed verification protocols (Definition 5/6) run in a fixed
    number of synchronous rounds: in every round each node reads its
    inbox, updates local state and posts messages to neighbours; after
    the last round every node outputs accept or reject.  This engine
    executes such node programs on a {!Graph.t}, enforces that messages
    travel only along edges, and accounts per-edge traffic so protocol
    implementations can report their measured message complexity.

    An execution is driven by a {e turn schedule} ({!Turn.t} list): in
    a prover turn the (untrusted, centralised) prover writes a message
    directly to any subset of nodes; in a verifier turn each node first
    receives fresh private randomness (its {e coin} for that turn) and
    then the nodes run a block of synchronous communication rounds on
    the graph.  The classic one-shot dMA pipeline — Merlin distributes
    certificates, Arthur's nodes verify — is the special case
    {!Turn.one_shot}, and {!run} executes exactly that schedule, so all
    one-shot protocols pass through the same engine as the multi-turn
    dQIP family of Le Gall–Miyamoto–Nishimura (arXiv:2210.01390).

    Executions can optionally run under a {!Fault} injector: messages
    are then dropped, duplicated or corrupted per the fault plan and
    crash-stopped nodes freeze, with every injected event tallied in
    the returned {!stats}.  The injector carries its own RNG, so the
    protocol's randomness is untouched by the fault layer.  A fault
    plan may target a single turn of the schedule
    ([Fault.spec.turn]); delivery-time faults then fire only inside
    that turn. *)

(** Per-node verdict after the final round. *)
type verdict = Accept | Reject

(** [global_verdict vs] is [Accept] iff every node accepts — the
    acceptance criterion of distributed verification. *)
val global_verdict : verdict array -> verdict

(** Raised when a node (or the prover) addresses a message to a
    non-neighbour (resp. a non-existent node): a bug in the node
    program (or byzantine behaviour a fault harness wants to observe),
    reported with full structure — including the schedule turn it
    happened in — so callers can record it instead of aborting a whole
    sweep.  [node] is [-1] when the offender is the prover. *)
exception Protocol_error of { node : int; round : int; turn : int; target : int }

(** Raised by {!run_turns} when an execution overruns its wall-clock
    deadline (checked at turn and round boundaries).  The fault
    harness treats it like a detected error — reject the run, count
    it, retry under a [Retry] recovery plan — which is the
    timeout-as-reject discipline of the replicated-data line
    (arXiv:2002.10018) applied to the control plane. *)
exception Deadline_exceeded of { elapsed_s : float; limit_s : float }

(** The default execution deadline, in seconds: [300.].  Generous on
    purpose — it exists to catch wedged executions, not to race
    legitimate ones — and overridable per process via [QDP_TIMEOUT],
    {!set_deadline} (the [--timeout] flag), or per call via
    [?deadline] on {!run_turns}.  A value [<= 0] disables the check.
    Note that a finite deadline makes rejection timing-dependent:
    keep it far above any legitimate run when byte-reproducibility
    matters. *)
val default_deadline : float

(** [deadline ()] is the current process-wide deadline; the first
    read resolves [QDP_TIMEOUT] when set. *)
val deadline : unit -> float

(** [set_deadline d] overrides it (wins over the environment). *)
val set_deadline : float -> unit

(** {2 Turn schedules} *)

module Turn : sig
  (** One entry of an interactive execution schedule.

      [Prover] lets the prover write one message to any subset of
      nodes (delivered via the program's [tp_deliver], outside the
      communication graph — the prover speaks to every node directly
      in the dQIP model).

      [Verifier { rounds; coin_range }] first deals each node a fresh
      uniform coin in [\[0, coin_range)] (no randomness is consumed at
      all when [coin_range <= 1] — the deterministic-verifier case),
      then runs [rounds] synchronous communication rounds on the
      graph.  The global round counter keeps increasing across
      verifier turns, so round-indexed fault plans are unambiguous. *)
  type t =
    | Prover
    | Verifier of { rounds : int; coin_range : int }

  (** [one_shot ~rounds] is the classic dMA schedule: one prover turn
      (the certificate), then a deterministic-coin verifier turn of
      [rounds] communication rounds. *)
  val one_shot : rounds:int -> t list

  (** Total communication rounds over all verifier entries. *)
  val total_rounds : t list -> int

  (** Number of turns in the interactive-proof sense of
      arXiv:2210.01390: every prover turn counts, and a verifier turn
      counts iff its coins are later revealed to the prover (i.e. a
      prover turn follows it and [coin_range > 1]).  Private
      verification randomness is not a message turn, so
      [message_turns (one_shot ~rounds)] is [1]. *)
  val message_turns : t list -> int
end

(** {2 Transcripts} *)

module Transcript : sig
  (** What one schedule entry contributed to the interaction. *)
  type 'm entry =
    | Prover_messages of (int * 'm) list
        (** [(node, payload)] prover writes as delivered (after any
            fault injection), in write order *)
    | Verifier_coins of int array
        (** the per-node coins dealt at the start of the verifier
            turn; [[||]] when [coin_range <= 1] *)

  type 'm t

  (** Entries in schedule order; after a full execution there is one
      per schedule entry. *)
  val entries : 'm t -> 'm entry list

  (** [coins t ~turn] is the coin array recorded at schedule entry
      [turn] (1-based), or [[||]] if that entry was not a coin-dealing
      verifier turn. *)
  val coins : 'm t -> turn:int -> int array

  (** [prover_messages t ~turn] is the delivered prover writes at
      schedule entry [turn] (1-based), or [[]]. *)
  val prover_messages : 'm t -> turn:int -> (int * 'm) list
end

(** A node program over state ['s] and message payloads ['m] for the
    one-shot engine.  The runtime calls [init] once, [round] once per
    round (with the inbox holding [(sender, payload)] pairs in sender
    order), and [finish] after the last round. *)
type ('s, 'm) program = {
  init : int -> 's;
  round : round:int -> id:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  finish : id:int -> 's -> verdict;
}

(** A node program for the turn-based engine.  [tp_init] runs once per
    node; [tp_deliver] absorbs one prover write into the node's state;
    [tp_round] is the per-round step — [turn] is the 1-based schedule
    index, [round] the global round counter and [coin] the node's coin
    for the current verifier turn (0 when [coin_range <= 1]); and
    [tp_finish] decides, with the full interaction {!Transcript.t} in
    hand, after the schedule is exhausted. *)
type ('s, 'm) turn_program = {
  tp_init : int -> 's;
  tp_deliver : turn:int -> id:int -> 's -> 'm -> 's;
  tp_round :
    turn:int ->
    round:int ->
    coin:int ->
    id:int ->
    's ->
    inbox:(int * 'm) list ->
    's * (int * 'm) list;
  tp_finish : transcript:'m Transcript.t -> id:int -> 's -> verdict;
}

(** Traffic accounting for one execution. *)
type stats = {
  messages : int;  (** total node-to-node messages delivered (after fault injection) *)
  rounds_run : int;
  turns_run : int;  (** schedule entries executed *)
  prover_messages : int;
      (** prover writes delivered to nodes (after fault injection) *)
  per_edge : ((int * int) * int) list;
      (** messages per undirected edge, edges as [(min, max)] *)
  down : int list;  (** nodes crash-stopped by the final round, sorted *)
  faults : Fault.counts option;
      (** injected-event tally; [None] when no injector was attached *)
}

(** [run_turns ?faults ?st g ~schedule ~prover program] executes the
    turn schedule and returns per-node verdicts, traffic stats and the
    full transcript.  The [prover] callback is invoked once per prover
    turn with the transcript so far (coins dealt in earlier verifier
    turns are visible — the public-coin model) and returns the
    [(node, payload)] writes for that turn.  [st] supplies the
    verifier's coin randomness and is required iff some verifier turn
    has [coin_range > 1]; the engine draws exactly [Graph.size g]
    coins per such turn, so executions are reproducible from the seed
    at any [--jobs] value.  With [faults], node-to-node deliveries
    pass through the injector as in {!run}, prover writes pass through
    the default link model, and both are bypassed on turns outside the
    plan's [turn] target (crash-stop remains global: a crashed node
    does not come back between turns).  [deadline] bounds the
    execution's wall-clock time (default: {!deadline}[ ()]; [<= 0]
    disables).
    @raise Protocol_error if a node addresses a non-neighbour or the
    prover addresses a node outside the graph.
    @raise Deadline_exceeded if the execution overruns its deadline.
    @raise Invalid_argument if coins are needed and [st] is missing. *)
val run_turns :
  ?faults:'m Fault.t ->
  ?st:Random.State.t ->
  ?deadline:float ->
  Graph.t ->
  schedule:Turn.t list ->
  prover:(turn:int -> 'm Transcript.t -> (int * 'm) list) ->
  ('s, 'm) turn_program ->
  verdict array * stats * 'm Transcript.t

(** [run ?faults g ~rounds program] executes the one-shot schedule
    {!Turn.one_shot} through {!run_turns} — the program's certificate
    is baked into [init], the prover turn carries nothing, and the
    verifier turn is deterministic, so behaviour (verdicts, stats
    fields shared with the pre-turn engine, RNG consumption: none) is
    unchanged from the historical one-shot runtime.
    @raise Protocol_error if a node addresses a non-neighbour. *)
val run :
  ?faults:'m Fault.t -> Graph.t -> rounds:int -> ('s, 'm) program -> verdict array * stats

(** [run_accepts g ~rounds program] is [true] iff all nodes accept. *)
val run_accepts : Graph.t -> rounds:int -> ('s, 'm) program -> bool

(** [estimate_acceptance ~st ~trials f] runs the randomized trial [f]
    (typically a [run_once] closure) [trials] times and returns the
    empirical acceptance frequency.  The trials execute on the
    [Qdp_par] pool in fixed chunks of [Qdp_par.mc_chunk], each chunk
    on an RNG state split off [st] in chunk order, so the frequency —
    and the post-call position of [st] — are byte-identical at every
    [--jobs] value.  Threading [st] — never the global RNG — keeps
    every experiment bit-reproducible from a seed. *)
val estimate_acceptance :
  st:Random.State.t -> trials:int -> (Random.State.t -> bool) -> float

(** {2 Confidence intervals} *)

(** A Wilson score interval around an empirical frequency. *)
type interval = {
  point : float;  (** the raw frequency hits/trials *)
  lower : float;
  upper : float;
  ci_trials : int;
}

(** [wilson ?z ~hits ~trials ()] is the Wilson score interval at
    critical value [z] (default 5, a ~6e-7 two-sided tail — the same
    width the differential cross-validation harness
    ([Dqma.cross_validate]) demands, so ad-hoc callers and the harness
    agree on what "statistically consistent" means) — unlike the
    normal approximation it stays inside [0, 1] and behaves at the
    endpoints, which is exactly where deterministic-verdict protocols
    live.
    @raise Invalid_argument on [trials <= 0] or [hits] out of range. *)
val wilson : ?z:float -> hits:int -> trials:int -> unit -> interval

(** [estimate_acceptance_ci ?z ~st ~trials f] is {!estimate_acceptance}
    returning the full {!interval} instead of a bare frequency. *)
val estimate_acceptance_ci :
  ?z:float -> st:Random.State.t -> trials:int -> (Random.State.t -> bool) -> interval
