type verdict = Accept | Reject

let global_verdict vs =
  if Array.for_all (fun v -> v = Accept) vs then Accept else Reject

type ('s, 'm) program = {
  init : int -> 's;
  round : round:int -> id:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  finish : id:int -> 's -> verdict;
}

type stats = {
  messages : int;
  rounds_run : int;
  per_edge : ((int * int) * int) list;
}

(* Observability: all updates below are inert until [Qdp_obs.set_enabled],
   so the message loop keeps its uninstrumented cost in normal runs. *)
let obs_runs = Qdp_obs.Metrics.counter "runtime.runs"
let obs_messages = Qdp_obs.Metrics.counter "runtime.messages"
let obs_round_messages = Qdp_obs.Metrics.histogram "runtime.round_messages"
let obs_edges_active = Qdp_obs.Metrics.gauge "runtime.edges_active"
let obs_payload_words = Qdp_obs.Metrics.gauge "runtime.max_payload_words"

let run g ~rounds program =
  let n = Graph.size g in
  Qdp_obs.Metrics.incr obs_runs;
  Qdp_obs.Trace.with_span "runtime.run"
    ~attrs:(fun () -> [ ("nodes", Qdp_obs.Trace.Int n);
                        ("rounds", Qdp_obs.Trace.Int rounds) ])
  @@ fun () ->
  let obs_on = Qdp_obs.enabled () in
  let states = Array.init n program.init in
  let inboxes = Array.make n [] in
  let edge_count = Hashtbl.create 16 in
  let total = ref 0 in
  for r = 1 to rounds do
    let before = !total in
    Qdp_obs.Trace.with_span "runtime.round"
      ~attrs:(fun () -> [ ("round", Qdp_obs.Trace.Int r);
                          ("messages", Qdp_obs.Trace.Int (!total - before)) ])
    @@ fun () ->
    let outboxes = Array.make n [] in
    for u = 0 to n - 1 do
      let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(u) in
      let state', out = program.round ~round:r ~id:u states.(u) ~inbox in
      states.(u) <- state';
      List.iter
        (fun (dest, _) ->
          if not (Graph.has_edge g u dest) then
            invalid_arg
              (Printf.sprintf "Runtime.run: node %d sent to non-neighbour %d" u
                 dest))
        out;
      outboxes.(u) <- out
    done;
    Array.fill inboxes 0 n [];
    Array.iteri
      (fun u out ->
        List.iter
          (fun (dest, payload) ->
            inboxes.(dest) <- (u, payload) :: inboxes.(dest);
            incr total;
            if obs_on then
              Qdp_obs.Metrics.set_max obs_payload_words
                (float_of_int (Obj.reachable_words (Obj.repr payload)));
            let e = (min u dest, max u dest) in
            let c = try Hashtbl.find edge_count e with Not_found -> 0 in
            Hashtbl.replace edge_count e (c + 1))
          out)
      outboxes;
    Qdp_obs.Metrics.incr obs_messages ~by:(!total - before);
    Qdp_obs.Metrics.observe obs_round_messages (float_of_int (!total - before))
  done;
  let verdicts =
    Array.init n (fun u -> program.finish ~id:u states.(u))
  in
  let per_edge =
    List.sort compare
      (Hashtbl.fold (fun e c acc -> (e, c) :: acc) edge_count [])
  in
  Qdp_obs.Metrics.set_max obs_edges_active (float_of_int (List.length per_edge));
  (verdicts, { messages = !total; rounds_run = rounds; per_edge })

let run_accepts g ~rounds program =
  let verdicts, _ = run g ~rounds program in
  global_verdict verdicts = Accept

let estimate_acceptance ~trials f =
  let hits = ref 0 in
  for _ = 1 to trials do
    if f () then incr hits
  done;
  float_of_int !hits /. float_of_int trials
