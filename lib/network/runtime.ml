type verdict = Accept | Reject

let global_verdict vs =
  if Array.for_all (fun v -> v = Accept) vs then Accept else Reject

exception Protocol_error of { node : int; round : int; turn : int; target : int }

exception Deadline_exceeded of { elapsed_s : float; limit_s : float }

let () =
  Printexc.register_printer (function
    | Protocol_error { node; round; turn; target } ->
        Some
          (Printf.sprintf
             "Runtime.Protocol_error: node %d sent to non-neighbour %d in \
              round %d of turn %d"
             node target round turn)
    | Deadline_exceeded { elapsed_s; limit_s } ->
        Some
          (Printf.sprintf
             "Runtime.Deadline_exceeded: execution ran %.3fs against a %.3fs \
              deadline"
             elapsed_s limit_s)
    | _ -> None)

(* -- execution deadline -------------------------------------------- *)

let default_deadline = 300.

(* None = unresolved; [set_deadline] (the [--timeout] flag) wins over
   the [QDP_TIMEOUT] environment variable. *)
let deadline_cfg : float option ref = ref None

let deadline () =
  match !deadline_cfg with
  | Some d -> d
  | None ->
      let d =
        match Sys.getenv_opt "QDP_TIMEOUT" with
        | Some s -> (
            match float_of_string_opt (String.trim s) with
            | Some v -> v
            | None -> default_deadline)
        | None -> default_deadline
      in
      deadline_cfg := Some d;
      d

let set_deadline d = deadline_cfg := Some d

module Turn = struct
  type t =
    | Prover
    | Verifier of { rounds : int; coin_range : int }

  let one_shot ~rounds = [ Prover; Verifier { rounds; coin_range = 0 } ]

  let total_rounds schedule =
    List.fold_left
      (fun acc -> function
        | Prover -> acc
        | Verifier { rounds; _ } -> acc + rounds)
      0 schedule

  let message_turns schedule =
    (* Turns in the interactive-proof sense: prover messages always
       count; a verifier turn counts only when its coins reach the
       prover, i.e. a prover turn still follows.  Coins the verifier
       keeps to itself are just private verification randomness. *)
    let rec go acc = function
      | [] -> acc
      | Prover :: rest -> go (acc + 1) rest
      | Verifier { coin_range; _ } :: rest ->
          let revealed =
            coin_range > 1
            && List.exists (function Prover -> true | Verifier _ -> false) rest
          in
          go (if revealed then acc + 1 else acc) rest
    in
    go 0 schedule
end

module Transcript = struct
  type 'm entry =
    | Prover_messages of (int * 'm) list
    | Verifier_coins of int array

  (* Entries are consed as the schedule advances, so the head is the
     latest turn; [entries] restores schedule order. *)
  type 'm t = { rev_entries : 'm entry list }

  let empty = { rev_entries = [] }
  let push t e = { rev_entries = e :: t.rev_entries }
  let entries t = List.rev t.rev_entries

  let coins t ~turn =
    match List.nth_opt (entries t) (turn - 1) with
    | Some (Verifier_coins c) -> c
    | Some (Prover_messages _) | None -> [||]

  let prover_messages t ~turn =
    match List.nth_opt (entries t) (turn - 1) with
    | Some (Prover_messages ms) -> ms
    | Some (Verifier_coins _) | None -> []
end

type ('s, 'm) program = {
  init : int -> 's;
  round : round:int -> id:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  finish : id:int -> 's -> verdict;
}

type ('s, 'm) turn_program = {
  tp_init : int -> 's;
  tp_deliver : turn:int -> id:int -> 's -> 'm -> 's;
  tp_round :
    turn:int ->
    round:int ->
    coin:int ->
    id:int ->
    's ->
    inbox:(int * 'm) list ->
    's * (int * 'm) list;
  tp_finish : transcript:'m Transcript.t -> id:int -> 's -> verdict;
}

type stats = {
  messages : int;
  rounds_run : int;
  turns_run : int;
  prover_messages : int;
  per_edge : ((int * int) * int) list;
  down : int list;
  faults : Fault.counts option;
}

(* Observability: all updates below are inert until [Qdp_obs.set_enabled],
   so the message loop keeps its uninstrumented cost in normal runs. *)
let obs_runs = Qdp_obs.Metrics.counter "runtime.runs"
let obs_messages = Qdp_obs.Metrics.counter "runtime.messages"
let obs_round_messages = Qdp_obs.Metrics.histogram "runtime.round_messages"
let obs_edges_active = Qdp_obs.Metrics.gauge "runtime.edges_active"
let obs_payload_words = Qdp_obs.Metrics.gauge "runtime.max_payload_words"
let obs_prover_messages = Qdp_obs.Metrics.counter "runtime.prover_messages"

let run_turns ?faults ?st ?deadline:deadline_opt g ~schedule ~prover program =
  let n = Graph.size g in
  let schedule_rounds = Turn.total_rounds schedule in
  (* Wall-clock guard: checked at turn and round boundaries, so a
     wedged or pathological execution surfaces as [Deadline_exceeded]
     instead of hanging the harness.  [limit <= 0] disables it; the
     default is generous enough that no legitimate run ever trips. *)
  let limit =
    match deadline_opt with Some d -> d | None -> deadline ()
  in
  let check_deadline =
    if limit > 0. then begin
      (* [Qdp_obs.Clock.now], not raw [gettimeofday]: with the raw
         clock a backwards NTP step makes [elapsed_s] negative (the
         deadline silently stops firing), and a forwards step right
         after [t0] fires it spuriously.  The clamped clock keeps
         elapsed time non-negative and non-decreasing. *)
      let t0 = Qdp_obs.Clock.now () in
      fun () ->
        let elapsed_s = Qdp_obs.Clock.now () -. t0 in
        if elapsed_s > limit then
          raise (Deadline_exceeded { elapsed_s; limit_s = limit })
    end
    else fun () -> ()
  in
  Qdp_obs.Metrics.incr obs_runs;
  Qdp_obs.Trace.with_span "runtime.run"
    ~attrs:(fun () -> [ ("nodes", Qdp_obs.Trace.Int n);
                        ("rounds", Qdp_obs.Trace.Int schedule_rounds);
                        ("turns", Qdp_obs.Trace.Int (List.length schedule)) ])
  @@ fun () ->
  Qdp_obs.Prof.section "runtime" @@ fun () ->
  let obs_on = Qdp_obs.enabled () in
  let states = Array.init n program.tp_init in
  let inboxes = Array.make n [] in
  let edge_count = Hashtbl.create 16 in
  let total = ref 0 in
  let prover_total = ref 0 in
  let round_no = ref 0 in
  let transcript = ref Transcript.empty in
  (* Crash-stop is a global node event — a node that went down in turn
     k does not come back in turn k+1 — so [node_up] always consults
     the injector.  Delivery-time faults, in contrast, honour the
     plan's turn target. *)
  let node_up ~round ~id =
    match faults with
    | None -> true
    | Some inj -> Fault.node_up inj ~round ~id
  in
  let faults_for ~turn =
    match faults with
    | Some inj when Fault.active inj ~turn -> Some inj
    | Some _ | None -> None
  in
  let run_round ~turn ~inj ~coins r =
    check_deadline ();
    let before = !total in
    Qdp_obs.Trace.with_span "runtime.round"
      ~attrs:(fun () -> [ ("round", Qdp_obs.Trace.Int r);
                          ("messages", Qdp_obs.Trace.Int (!total - before)) ])
    @@ fun () ->
    let outboxes = Array.make n [] in
    for u = 0 to n - 1 do
      if node_up ~round:r ~id:u then begin
        let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(u) in
        let coin = if Array.length coins = 0 then 0 else coins.(u) in
        let state', out =
          program.tp_round ~turn ~round:r ~coin ~id:u states.(u) ~inbox
        in
        states.(u) <- state';
        List.iter
          (fun (dest, _) ->
            if not (Graph.has_edge g u dest) then
              raise (Protocol_error { node = u; round = r; turn; target = dest }))
          out;
        outboxes.(u) <- out
      end
      else begin
        (* crash-stopped: the node freezes and its inbox is lost *)
        match faults with
        | Some inj when inboxes.(u) <> [] ->
            Fault.suppress inj ~n:(List.length inboxes.(u))
        | _ -> ()
      end
    done;
    Array.fill inboxes 0 n [];
    Array.iteri
      (fun u out ->
        List.iter
          (fun (dest, payload) ->
            let deliveries =
              match inj with
              | None -> [ payload ]
              | Some inj -> Fault.deliver inj ~round:r ~src:u ~dst:dest payload
            in
            List.iter
              (fun payload ->
                inboxes.(dest) <- (u, payload) :: inboxes.(dest);
                incr total;
                if obs_on then
                  Qdp_obs.Metrics.set_max obs_payload_words
                    (float_of_int (Obj.reachable_words (Obj.repr payload)));
                let e = (min u dest, max u dest) in
                let c = try Hashtbl.find edge_count e with Not_found -> 0 in
                Hashtbl.replace edge_count e (c + 1))
              deliveries)
          out)
      outboxes;
    Qdp_obs.Metrics.incr obs_messages ~by:(!total - before);
    Qdp_obs.Metrics.observe obs_round_messages (float_of_int (!total - before))
  in
  List.iteri
    (fun i entry ->
      let turn = i + 1 in
      check_deadline ();
      match entry with
      | Turn.Prover ->
          let writes = prover ~turn !transcript in
          let inj = faults_for ~turn in
          let delivered = ref [] in
          List.iter
            (fun (dst, payload) ->
              if dst < 0 || dst >= n then
                raise
                  (Protocol_error
                     { node = -1; round = !round_no; turn; target = dst });
              let copies =
                match inj with
                | None -> [ payload ]
                | Some inj -> Fault.deliver_direct inj ~dst payload
              in
              List.iter
                (fun payload ->
                  if node_up ~round:(!round_no + 1) ~id:dst then begin
                    states.(dst) <-
                      program.tp_deliver ~turn ~id:dst states.(dst) payload;
                    incr prover_total;
                    delivered := (dst, payload) :: !delivered
                  end
                  else
                    match faults with
                    | Some inj -> Fault.suppress inj ~n:1
                    | None -> ())
                copies)
            writes;
          Qdp_obs.Metrics.incr obs_prover_messages ~by:(List.length !delivered);
          transcript :=
            Transcript.push !transcript
              (Transcript.Prover_messages (List.rev !delivered))
      | Turn.Verifier { rounds; coin_range } ->
          let coins =
            if coin_range > 1 then
              match st with
              | None ->
                  invalid_arg
                    "Runtime.run_turns: a verifier turn draws coins but no ~st \
                     was supplied"
              | Some st -> Array.init n (fun _ -> Random.State.int st coin_range)
            else [||]
          in
          transcript :=
            Transcript.push !transcript (Transcript.Verifier_coins coins);
          let inj = faults_for ~turn in
          for _ = 1 to rounds do
            incr round_no;
            run_round ~turn ~inj ~coins !round_no
          done)
    schedule;
  let transcript = !transcript in
  let verdicts =
    Array.init n (fun u -> program.tp_finish ~transcript ~id:u states.(u))
  in
  let per_edge =
    List.sort compare
      (Hashtbl.fold (fun e c acc -> (e, c) :: acc) edge_count [])
  in
  Qdp_obs.Metrics.set_max obs_edges_active (float_of_int (List.length per_edge));
  let down, fault_counts =
    match faults with
    | None -> ([], None)
    | Some inj -> (Fault.down inj ~rounds:!round_no, Some (Fault.counts inj))
  in
  ( verdicts,
    {
      messages = !total;
      rounds_run = !round_no;
      turns_run = List.length schedule;
      prover_messages = !prover_total;
      per_edge;
      down;
      faults = fault_counts;
    },
    transcript )

let run ?faults g ~rounds program =
  (* The historical one-shot pipeline: the certificate is baked into
     [init], so the prover turn carries nothing, the verifier turn is
     deterministic (no coins, no RNG touched) and verdicts, traffic
     and fault behaviour are exactly those of the pre-turn engine. *)
  let tp =
    {
      tp_init = program.init;
      tp_deliver = (fun ~turn:_ ~id:_ s _ -> s);
      tp_round =
        (fun ~turn:_ ~round ~coin:_ ~id s ~inbox ->
          program.round ~round ~id s ~inbox);
      tp_finish = (fun ~transcript:_ ~id s -> program.finish ~id s);
    }
  in
  let verdicts, stats, _ =
    run_turns ?faults g
      ~schedule:(Turn.one_shot ~rounds)
      ~prover:(fun ~turn:_ _ -> [])
      tp
  in
  (verdicts, stats)

let run_accepts g ~rounds program =
  let verdicts, _ = run g ~rounds program in
  global_verdict verdicts = Accept

let estimate_acceptance ~st ~trials f =
  Qdp_obs.Prof.section "estimate_acceptance" @@ fun () ->
  let hits = Qdp_dist.monte_carlo_hits ~label:"accept" ~st ~trials f in
  float_of_int hits /. float_of_int trials

(* ------------------------------------------------------------------ *)
(* Wilson score intervals                                              *)
(* ------------------------------------------------------------------ *)

type interval = {
  point : float;
  lower : float;
  upper : float;
  ci_trials : int;
}

let wilson ?(z = 5.) ~hits ~trials () =
  if trials <= 0 then invalid_arg "Runtime.wilson: trials must be positive";
  if hits < 0 || hits > trials then invalid_arg "Runtime.wilson: hits";
  let n = float_of_int trials in
  let p = float_of_int hits /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z
    *. Float.sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
    /. denom
  in
  {
    point = p;
    lower = Float.max 0. (centre -. half);
    upper = Float.min 1. (centre +. half);
    ci_trials = trials;
  }

let estimate_acceptance_ci ?z ~st ~trials f =
  Qdp_obs.Prof.section "estimate_acceptance" @@ fun () ->
  let hits = Qdp_dist.monte_carlo_hits ~label:"accept" ~st ~trials f in
  wilson ?z ~hits ~trials ()
