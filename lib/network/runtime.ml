type verdict = Accept | Reject

let global_verdict vs =
  if Array.for_all (fun v -> v = Accept) vs then Accept else Reject

exception Protocol_error of { node : int; round : int; target : int }

let () =
  Printexc.register_printer (function
    | Protocol_error { node; round; target } ->
        Some
          (Printf.sprintf
             "Runtime.Protocol_error: node %d sent to non-neighbour %d in \
              round %d"
             node target round)
    | _ -> None)

type ('s, 'm) program = {
  init : int -> 's;
  round : round:int -> id:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  finish : id:int -> 's -> verdict;
}

type stats = {
  messages : int;
  rounds_run : int;
  per_edge : ((int * int) * int) list;
  down : int list;
  faults : Fault.counts option;
}

(* Observability: all updates below are inert until [Qdp_obs.set_enabled],
   so the message loop keeps its uninstrumented cost in normal runs. *)
let obs_runs = Qdp_obs.Metrics.counter "runtime.runs"
let obs_messages = Qdp_obs.Metrics.counter "runtime.messages"
let obs_round_messages = Qdp_obs.Metrics.histogram "runtime.round_messages"
let obs_edges_active = Qdp_obs.Metrics.gauge "runtime.edges_active"
let obs_payload_words = Qdp_obs.Metrics.gauge "runtime.max_payload_words"

let run ?faults g ~rounds program =
  let n = Graph.size g in
  Qdp_obs.Metrics.incr obs_runs;
  Qdp_obs.Trace.with_span "runtime.run"
    ~attrs:(fun () -> [ ("nodes", Qdp_obs.Trace.Int n);
                        ("rounds", Qdp_obs.Trace.Int rounds) ])
  @@ fun () ->
  Qdp_obs.Prof.section "runtime" @@ fun () ->
  let obs_on = Qdp_obs.enabled () in
  let states = Array.init n program.init in
  let inboxes = Array.make n [] in
  let edge_count = Hashtbl.create 16 in
  let total = ref 0 in
  let node_up ~round ~id =
    match faults with
    | None -> true
    | Some inj -> Fault.node_up inj ~round ~id
  in
  for r = 1 to rounds do
    let before = !total in
    Qdp_obs.Trace.with_span "runtime.round"
      ~attrs:(fun () -> [ ("round", Qdp_obs.Trace.Int r);
                          ("messages", Qdp_obs.Trace.Int (!total - before)) ])
    @@ fun () ->
    let outboxes = Array.make n [] in
    for u = 0 to n - 1 do
      if node_up ~round:r ~id:u then begin
        let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(u) in
        let state', out = program.round ~round:r ~id:u states.(u) ~inbox in
        states.(u) <- state';
        List.iter
          (fun (dest, _) ->
            if not (Graph.has_edge g u dest) then
              raise (Protocol_error { node = u; round = r; target = dest }))
          out;
        outboxes.(u) <- out
      end
      else begin
        (* crash-stopped: the node freezes and its inbox is lost *)
        match faults with
        | Some inj when inboxes.(u) <> [] ->
            Fault.suppress inj ~n:(List.length inboxes.(u))
        | _ -> ()
      end
    done;
    Array.fill inboxes 0 n [];
    Array.iteri
      (fun u out ->
        List.iter
          (fun (dest, payload) ->
            let deliveries =
              match faults with
              | None -> [ payload ]
              | Some inj -> Fault.deliver inj ~round:r ~src:u ~dst:dest payload
            in
            List.iter
              (fun payload ->
                inboxes.(dest) <- (u, payload) :: inboxes.(dest);
                incr total;
                if obs_on then
                  Qdp_obs.Metrics.set_max obs_payload_words
                    (float_of_int (Obj.reachable_words (Obj.repr payload)));
                let e = (min u dest, max u dest) in
                let c = try Hashtbl.find edge_count e with Not_found -> 0 in
                Hashtbl.replace edge_count e (c + 1))
              deliveries)
          out)
      outboxes;
    Qdp_obs.Metrics.incr obs_messages ~by:(!total - before);
    Qdp_obs.Metrics.observe obs_round_messages (float_of_int (!total - before))
  done;
  let verdicts =
    Array.init n (fun u -> program.finish ~id:u states.(u))
  in
  let per_edge =
    List.sort compare
      (Hashtbl.fold (fun e c acc -> (e, c) :: acc) edge_count [])
  in
  Qdp_obs.Metrics.set_max obs_edges_active (float_of_int (List.length per_edge));
  let down, fault_counts =
    match faults with
    | None -> ([], None)
    | Some inj -> (Fault.down inj ~rounds, Some (Fault.counts inj))
  in
  ( verdicts,
    {
      messages = !total;
      rounds_run = rounds;
      per_edge;
      down;
      faults = fault_counts;
    } )

let run_accepts g ~rounds program =
  let verdicts, _ = run g ~rounds program in
  global_verdict verdicts = Accept

let estimate_acceptance ~st ~trials f =
  Qdp_obs.Prof.section "estimate_acceptance" @@ fun () ->
  let hits = Qdp_par.monte_carlo_hits ~st ~trials f in
  float_of_int hits /. float_of_int trials

(* ------------------------------------------------------------------ *)
(* Wilson score intervals                                              *)
(* ------------------------------------------------------------------ *)

type interval = {
  point : float;
  lower : float;
  upper : float;
  ci_trials : int;
}

let wilson ?(z = 5.) ~hits ~trials () =
  if trials <= 0 then invalid_arg "Runtime.wilson: trials must be positive";
  if hits < 0 || hits > trials then invalid_arg "Runtime.wilson: hits";
  let n = float_of_int trials in
  let p = float_of_int hits /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let centre = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z
    *. Float.sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
    /. denom
  in
  {
    point = p;
    lower = Float.max 0. (centre -. half);
    upper = Float.min 1. (centre +. half);
    ci_trials = trials;
  }

let estimate_acceptance_ci ?z ~st ~trials f =
  Qdp_obs.Prof.section "estimate_acceptance" @@ fun () ->
  let hits = Qdp_par.monte_carlo_hits ~st ~trials f in
  wilson ?z ~hits ~trials ()
