(* Payload-generic fault injection for the message-passing runtime.

   This module is deliberately mechanism-only: it knows how to decide,
   per delivery and per node, whether a message is dropped, duplicated
   or corrupted and whether a node is down — it does not know what a
   payload *is*.  The corruption function is supplied by whoever
   compiles a plan (protocol backends lift quantum channel noise or
   classical bit flips into their own payload type), and the richer
   declarative layer lives in [Qdp_faults]. *)

type link = { drop : float; duplicate : float; corrupt : float }

let perfect_link = { drop = 0.; duplicate = 0.; corrupt = 0. }

type node =
  | Crash of { from_round : int; prob : float }
  | Omit of float
  | Babble of float

type spec = {
  default_link : link;
  links : ((int * int) * link) list;
  nodes : (int * node) list;
  turn : int option;
}

let none = { default_link = perfect_link; links = []; nodes = []; turn = None }

let is_none s =
  s.links = [] && s.nodes = []
  && s.default_link.drop = 0.
  && s.default_link.duplicate = 0.
  && s.default_link.corrupt = 0.

type counts = {
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable suppressed : int;
  mutable crashed : int;
}

let zero_counts () =
  {
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    corrupted = 0;
    suppressed = 0;
    crashed = 0;
  }

let total_injected c =
  c.dropped + c.duplicated + c.corrupted + c.suppressed + c.crashed

type 'm t = {
  spec : spec;
  st : Random.State.t;
  corrupt_payload : Random.State.t -> 'm -> 'm;
  counts : counts;
  down_from : (int * int) list;
      (* [(node, round)]: node is down from that round on, sampled once
         per injector so a crash is a single event per execution *)
}

let make ?(corrupt = fun _ m -> m) ~st spec =
  let counts = zero_counts () in
  let down_from =
    List.filter_map
      (fun (id, model) ->
        match model with
        | Crash { from_round; prob } ->
            if prob > 0. && Random.State.float st 1. < prob then begin
              counts.crashed <- counts.crashed + 1;
              Some (id, from_round)
            end
            else None
        | Omit _ | Babble _ -> None)
      spec.nodes
  in
  { spec; st; corrupt_payload = corrupt; counts; down_from }

let counts inj = inj.counts

let active inj ~turn =
  match inj.spec.turn with None -> true | Some t -> t = turn

let node_up inj ~round ~id =
  match List.assoc_opt id inj.down_from with
  | Some from_round -> round < from_round
  | None -> true

let down inj ~rounds =
  List.sort compare
    (List.filter_map
       (fun (id, from_round) -> if from_round <= rounds then Some id else None)
       inj.down_from)

let suppress inj ~n = inj.counts.suppressed <- inj.counts.suppressed + n

let node_model inj id = List.assoc_opt id inj.spec.nodes

let link_model inj ~src ~dst =
  let e = (min src dst, max src dst) in
  match List.assoc_opt e inj.spec.links with
  | Some l -> l
  | None -> inj.spec.default_link

let hit inj p = p > 0. && Random.State.float inj.st 1. < p

(* Prover→node writes travel outside the communication graph (the
   prover addresses every node directly), so only the default link
   model applies — there is no edge to look up and no sending node
   whose omission/babble model could fire. *)
let deliver_direct inj ~dst:_ m =
  let c = inj.counts in
  let link = inj.spec.default_link in
  if hit inj link.drop then begin
    c.dropped <- c.dropped + 1;
    []
  end
  else begin
    let payload =
      if hit inj link.corrupt then begin
        c.corrupted <- c.corrupted + 1;
        inj.corrupt_payload inj.st m
      end
      else m
    in
    let deliveries =
      if hit inj link.duplicate then begin
        c.duplicated <- c.duplicated + 1;
        [ payload; payload ]
      end
      else [ payload ]
    in
    c.delivered <- c.delivered + List.length deliveries;
    deliveries
  end

let deliver inj ~round:_ ~src ~dst m =
  let c = inj.counts in
  let omitted =
    match node_model inj src with
    | Some (Omit p) -> hit inj p
    | _ -> false
  in
  if omitted then begin
    c.dropped <- c.dropped + 1;
    []
  end
  else begin
    let link = link_model inj ~src ~dst in
    if hit inj link.drop then begin
      c.dropped <- c.dropped + 1;
      []
    end
    else begin
      let payload =
        if hit inj link.corrupt then begin
          c.corrupted <- c.corrupted + 1;
          inj.corrupt_payload inj.st m
        end
        else m
      in
      let deliveries =
        if hit inj link.duplicate then begin
          c.duplicated <- c.duplicated + 1;
          [ payload; payload ]
        end
        else [ payload ]
      in
      let deliveries =
        match node_model inj src with
        | Some (Babble p) when hit inj p ->
            (* noisy chatter: an extra, independently corrupted copy *)
            c.duplicated <- c.duplicated + 1;
            c.corrupted <- c.corrupted + 1;
            deliveries @ [ inj.corrupt_payload inj.st m ]
        | _ -> deliveries
      in
      c.delivered <- c.delivered + List.length deliveries;
      deliveries
    end
  end
