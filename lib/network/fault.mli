(** Payload-generic fault injection for the {!Runtime} engine.

    A {!spec} declares *where* faults strike — per-link drop /
    duplication / corruption probabilities and per-node crash-stop,
    omission or babbling models — while staying agnostic about message
    contents.  {!make} compiles a spec into an injector carrying its
    own RNG (kept separate from the protocol's randomness so a purely
    deterministic plan, e.g. a pinned crash, never perturbs the
    protocol's own coin flips), a payload corruption function supplied
    by the protocol backend, and mutable {!counts} of every injected
    event.  The richer declarative layer — quantum channels as
    corruptors, named plans, recovery semantics, sweeps — lives in the
    [Qdp_faults] library. *)

(** Per-delivery probabilities on a link. *)
type link = {
  drop : float;  (** message lost *)
  duplicate : float;  (** message delivered twice *)
  corrupt : float;  (** payload passed through the corruption function *)
}

(** All-zero probabilities. *)
val perfect_link : link

(** Per-node fault models. *)
type node =
  | Crash of { from_round : int; prob : float }
      (** with probability [prob] (sampled once per execution) the node
          is crash-stopped from [from_round] on: it neither executes
          rounds nor reads its inbox *)
  | Omit of float  (** each outgoing message is silently lost w.p. [p] *)
  | Babble of float
      (** each outgoing message gains an extra corrupted copy w.p. [p] *)

(** A declarative fault plan: the default link model applies to every
    delivery, [links] overrides specific undirected edges (keys as
    [(min, max)]), [nodes] attaches node models.  [turn], when set,
    restricts delivery-time faults (link drop/duplicate/corrupt,
    omission, babble, prover-write faults) to that 1-based entry of
    the runtime's turn schedule; crash-stop is a global node event and
    ignores the target.  [None] means every turn — the historical
    behaviour, and the only thing one-shot executions ever see. *)
type spec = {
  default_link : link;
  links : ((int * int) * link) list;
  nodes : (int * node) list;
  turn : int option;
}

(** The empty plan (no faults). *)
val none : spec

(** [is_none s] holds when [s] can never inject anything. *)
val is_none : spec -> bool

(** Mutable tally of injected events for one execution. *)
type counts = {
  mutable delivered : int;  (** messages actually handed to inboxes *)
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable suppressed : int;  (** inbox messages discarded at down nodes *)
  mutable crashed : int;  (** crash events that fired this execution *)
}

val zero_counts : unit -> counts

(** [total_injected c] sums every fault event (everything except
    [delivered]); zero means the execution was effectively fault-free. *)
val total_injected : counts -> int

(** A compiled injector over payloads ['m]. *)
type 'm t

(** [make ?corrupt ~st spec] compiles [spec].  [corrupt] (default: the
    identity) realizes payload corruption — protocol backends lift
    quantum channel noise or classical bit flips into their payload
    type here.  Crash decisions are sampled immediately from [st]. *)
val make : ?corrupt:(Random.State.t -> 'm -> 'm) -> st:Random.State.t -> spec -> 'm t

(** The injector's (mutable) event tally. *)
val counts : 'm t -> counts

(** [active inj ~turn] is false when the plan targets a specific
    schedule turn and [turn] is not it — the runtime then bypasses
    delivery-time injection for the whole turn. *)
val active : 'm t -> turn:int -> bool

(** [node_up inj ~round ~id] is false when [id] is crash-stopped in
    [round]. *)
val node_up : 'm t -> round:int -> id:int -> bool

(** [down inj ~rounds] lists the nodes crash-stopped at or before the
    final round, sorted. *)
val down : 'm t -> rounds:int -> int list

(** [suppress inj ~n] records [n] inbox messages discarded at a down
    node (called by the runtime). *)
val suppress : 'm t -> n:int -> unit

(** [deliver inj ~round ~src ~dst m] applies the source-node and link
    models to one sent message and returns the payloads to enqueue
    (empty = dropped, two = duplicated), updating {!counts}. *)
val deliver : 'm t -> round:int -> src:int -> dst:int -> 'm -> 'm list

(** [deliver_direct inj ~dst m] applies the default link model to one
    prover→node write (there is no graph edge and no sending node, so
    per-edge overrides and omission/babble models do not apply),
    returning the payloads to absorb and updating {!counts}. *)
val deliver_direct : 'm t -> dst:int -> 'm -> 'm list
