(* Bechamel timing benchmarks, one group per regenerated table plus a
   substrate group and a parallel-layer group.  Each benchmark times
   the (exact) acceptance computation the tables harness relies on, so
   the wall-clock cost of every experiment in EXPERIMENTS.md is
   tracked here.  Running with the single argument [perf] skips the
   bechamel pass and only emits BENCH_perf.json, the sequential-vs-
   parallel comparison used by CI. *)

open Bechamel
open Toolkit
open Qdp_codes
open Qdp_network
open Qdp_commcc
open Qdp_core

let () = Protocols.init ()
let st = Random.State.make [| 0xbe9c |]

let distinct_pair n =
  let x = Gf2.random st n in
  let rec other () =
    let y = Gf2.random st n in
    if Gf2.equal x y then other () else y
  in
  (x, other ())

(* --- substrate --- *)

let bench_substrate =
  let open Qdp_linalg in
  let runit n =
    Vec.normalize (Vec.init n (fun _ -> Cx.re (States.gaussian st)))
  in
  let a256 = runit 256 and b256 = runit 256 in
  let regs = List.init 4 (fun _ -> runit 64) in
  let herm =
    let m =
      Mat.init 24 24 (fun _ _ ->
          Cx.make (States.gaussian st) (States.gaussian st))
    in
    Mat.scale (Cx.re 0.5) (Mat.add m (Mat.adjoint m))
  in
  let chain =
    let l = runit 128 in
    Sim.two_state_chain ~r:64 ~left:l ~right:(runit 128)
      ~final:(fun reg -> Cx.norm2 (Vec.dot l reg.(0)))
      Strategy.Geodesic
  in
  Test.make_grouped ~name:"substrate"
    [
      Test.make ~name:"swap_test_dim256" (Staged.stage (fun () ->
          ignore (Qdp_quantum.Swap_test.accept_prob_product a256 b256)));
      Test.make ~name:"perm_test_k4" (Staged.stage (fun () ->
          ignore (Qdp_quantum.Permutation_test.accept_prob_product regs)));
      Test.make ~name:"path_dp_r64" (Staged.stage (fun () ->
          ignore (Sim.path_accept chain)));
      Test.make ~name:"eig_hermitian_24" (Staged.stage (fun () ->
          ignore (Eig.hermitian herm)));
      Test.make ~name:"fingerprint_n256" (Staged.stage (fun () ->
          let fp = Qdp_fingerprint.Fingerprint.standard ~seed:1 ~n:256 in
          ignore (Qdp_fingerprint.Fingerprint.state fp (Gf2.random st 256))));
    ]

(* --- Table 1 --- *)

let bench_table1 =
  let n = 32 in
  let x, y = distinct_pair n in
  let g = Graph.star 4 in
  let terminals = [ 1; 2; 3; 4 ] in
  let inputs = [| Gf2.copy x; Gf2.copy x; Gf2.copy x; y |] in
  let fgnp = Eq_tree.make ~repetitions:1 ~use_permutation_test:false ~seed:1 ~n ~r:2 () in
  let proto = Oneway.ham ~seed:2 ~n:48 ~d:2 in
  let xh = Gf2.random st 48 in
  let yh = Gf2.xor xh (Gf2.random_weight st 48 2) in
  let dma = Lower_bounds.truncation_protocol ~n:16 ~r:6 ~c:6 in
  Test.make_grouped ~name:"table1"
    [
      Test.make ~name:"fgnp_eq_tree_t4" (Staged.stage (fun () ->
          ignore (Eq_tree.best_attack_accept fgnp g ~terminals ~inputs)));
      Test.make ~name:"ham_oneway_accept" (Staged.stage (fun () ->
          ignore (Oneway.accept_on_inputs proto xh yh)));
      Test.make ~name:"dma_fooling_splice" (Staged.stage (fun () ->
          ignore (Lower_bounds.fooling_splice dma ~n:16 ~limit:8192)));
    ]

(* --- registered protocols, analytic backend --- *)

(* One benchmark per registry entry: build the entry's demo instances
   and run the uniform evaluation (honest + attack library), i.e. what
   a conformance-suite row costs.  No per-protocol code here — new
   registrations are picked up automatically. *)
let bench_protocols =
  let spec = { Registry.default_spec with n = 32; r = 4; t = 3 } in
  Test.make_grouped ~name:"protocols"
    (List.map
       (fun entry ->
         let i = Registry.info entry in
         Test.make ~name:i.Registry.info_id
           (Staged.stage (fun () -> ignore (Registry.evaluate_demo spec entry))))
       (Registry.all ()))

(* --- registered protocols, network backend --- *)

(* For every entry with a message-passing realization: the cost of a
   (small) differential cross-validation pass, analytic vs sampled. *)
let bench_network =
  let spec = { Registry.default_spec with n = 24; r = 3; t = 3 } in
  let st' = Random.State.make [| 0x9e7 |] in
  Test.make_grouped ~name:"network"
    (List.filter_map
       (fun entry ->
         let i = Registry.info entry in
         if not i.Registry.info_network then None
         else
           Some
             (Test.make ~name:("xval_" ^ i.Registry.info_id)
                (Staged.stage (fun () ->
                     ignore
                       (Registry.cross_validate_demo ~trials:2 ~st:st' spec
                          entry)))))
       (Registry.all ()))

(* --- fault layer: one recovered execution per fault-tolerant entry --- *)

let bench_faults =
  let open Qdp_faults in
  let spec = { Registry.default_spec with n = 24; r = 3; t = 3 } in
  Test.make_grouped ~name:"faults"
    (List.filter_map
       (fun entry ->
         match Registry.fault_suite spec entry with
         | None -> None
         | Some suite ->
             let case = List.hd suite.Registry.fs_yes in
             Some
               (Test.make ~name:("faulty_" ^ suite.Registry.fs_id)
                  (Staged.stage (fun () ->
                       let proto_st = Random.State.make [| 0x4af |] in
                       let env =
                         Plan.env Plan.Drop ~strength:0.1
                           ~st:(Random.State.make [| 0x4af; 1 |])
                       in
                       ignore
                         (Plan.execute Plan.Reject_on_timeout (fun () ->
                              case.Registry.fc_run proto_st env))))))
       (Registry.all ()))

(* --- Table 3 --- *)

let bench_table3 =
  let x, y = distinct_pair 24 in
  let pc =
    Qma_star_reduction.uniform ~r:16 ~intermediate_proof:40 ~end_proof:0
      ~edge_message:8
  in
  let cfg = { Exact.r = 3; qubits = 1 } in
  let xs = Exact.toy_state ~qubits:1 5 and ys = Exact.toy_state ~qubits:1 11 in
  Test.make_grouped ~name:"table3"
    [
      Test.make ~name:"gap_splice_accept" (Staged.stage (fun () ->
          ignore (Lower_bounds.gap_splice_accept ~seed:9 ~n:24 ~r:8 ~gap:4 x y)));
      Test.make ~name:"state_packing_b2" (Staged.stage (fun () ->
          let st' = Random.State.make [| 7 |] in
          ignore (Lower_bounds.max_pairwise_overlap_random st' ~qubits:2 ~count:16)));
      Test.make ~name:"ip_spectral_disc_n5" (Staged.stage (fun () ->
          ignore (Discrepancy.spectral_discrepancy_bound (Problems.ip 5))));
      Test.make ~name:"node_split_best_cut" (Staged.stage (fun () ->
          ignore (Qma_star_reduction.best_cut pc)));
      Test.make ~name:"exact_entangled_opt_r3" (Staged.stage (fun () ->
          ignore (Exact.optimal_entangled_attack cfg ~x_state:xs ~y_state:ys)));
      (* one node longer than the pre-batching harness could afford *)
      Test.make ~name:"exact_entangled_opt_r4" (Staged.stage (fun () ->
          let cfg4 = { Exact.r = 4; qubits = 1 } in
          ignore (Exact.optimal_entangled_attack cfg4 ~x_state:xs ~y_state:ys)));
    ]

(* --- extensions: variants, sets, runtime executions --- *)

let bench_extensions =
  let open Qdp_linalg in
  let xs = Exact.toy_state ~qubits:1 5 and ys = Exact.toy_state ~qubits:1 11 in
  let lsd_inst = Lsd.random_close st ~ambient:64 ~dim:2 in
  let lsd_params = Qmacc_compiler.make ~repetitions:1 ~r:4 () in
  let smp = Smp.repeat_and 4 (Smp.eq ~seed:13 ~n:32) in
  let xsmp, ysmp = distinct_pair 32 in
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"sep_optimize_r3" (Staged.stage (fun () ->
          let st' = Random.State.make [| 5 |] in
          ignore
            (Sep_sim.optimize st' ~d:2 ~r:3 ~left:xs ~final:(Mat.of_vec ys)
               ~sweeps:4)));
      Test.make ~name:"sep_optimize_product_r3" (Staged.stage (fun () ->
          let st' = Random.State.make [| 6 |] in
          ignore
            (Sep_sim.optimize_product st' ~d:2 ~r:3 ~left:xs
               ~final:(Mat.of_vec ys) ~sweeps:4)));
      Test.make ~name:"lsd_pipeline_m64" (Staged.stage (fun () ->
          ignore
            (Qmacc_compiler.run_lsd_pipeline lsd_params ~ambient:64 ~inst:lsd_inst)));
      Test.make ~name:"schur_projector_d2k4" (Staged.stage (fun () ->
          ignore (Qdp_quantum.Schur.projector ~d:2 [ 3; 1 ])));
      Test.make ~name:"smp_eq_x4" (Staged.stage (fun () ->
          ignore (Smp.accept_on_inputs smp xsmp ysmp)));
    ]

(* --- batched Gram pipeline --- *)

(* The pre-change Gram kernel, kept verbatim as the A/B baseline: one
   full scalar circuit pass per basis proof, then a boxed Vec.dot per
   Gram entry. *)
let naive_attack_gram cfg ~x_state ~y_state =
  let open Qdp_linalg in
  let pdim = 1 lsl Exact.proof_qubits cfg in
  let outs =
    Array.init pdim (fun i ->
        Qdp_quantum.Pure.global_vector
          (Exact.final_state cfg ~x_state ~y_state ~proof:(Vec.basis pdim i)))
  in
  Mat.init pdim pdim (fun i j -> Vec.dot outs.(i) outs.(j))

(* The pre-Bigarray Gram kernel, kept verbatim as the storage A/B
   baseline: the same tiled zero-skip loops Batch.gram ran before the
   Bigarray migration, on plain float arrays.  Timing it against
   Batch.gram on identical data isolates the storage/microkernel win
   from the batching win measured by [naive_attack_gram]. *)
let float_array_gram ~dim:d ~count:n (ar : float array) (ai : float array) =
  let gr = Array.make (n * n) 0. and gi = Array.make (n * n) 0. in
  let real = Array.for_all (fun x -> x = 0.) ai in
  let tile = 32 in
  let tiles = (n + tile - 1) / tile in
  for t = 0 to tiles - 1 do
    let i0 = t * tile and i1 = min n ((t + 1) * tile) - 1 in
    if real then
      for v = 0 to d - 1 do
        let row = v * n in
        for i = i0 to i1 do
          let x = ar.(row + i) in
          if x <> 0. then begin
            let out = i * n in
            for j = i to n - 1 do
              gr.(out + j) <- gr.(out + j) +. (x *. ar.(row + j))
            done
          end
        done
      done
    else
      for v = 0 to d - 1 do
        let row = v * n in
        for i = i0 to i1 do
          let xr = ar.(row + i) and xi = ai.(row + i) in
          if xr <> 0. || xi <> 0. then begin
            let out = i * n in
            for j = i to n - 1 do
              let yr = ar.(row + j) and yi = ai.(row + j) in
              gr.(out + j) <- gr.(out + j) +. (xr *. yr) +. (xi *. yi);
              gi.(out + j) <- gi.(out + j) +. (xr *. yi) -. (xi *. yr)
            done
          end
        done
      done
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      gr.((j * n) + i) <- gr.((i * n) + j);
      gi.((j * n) + i) <- -.gi.((i * n) + j)
    done
  done;
  (gr, gi)

(* The perf workload: the full entangled-attack Gram pipeline on the
   largest path instance the tables exercise (r = 3, 2-qubit
   fingerprints: a 256-proof batch of dimension-4096 states). *)
let gram_cfg = { Exact.r = 3; qubits = 2 }
let gram_xs = Exact.toy_state ~qubits:2 5
let gram_ys = Exact.toy_state ~qubits:2 11

(* The basis-proof final-state batch behind attack_gram, packed once
   for the storage A/B (Bigarray Batch.gram vs the float-array kernel
   above on copies of the same data). *)
let gram_batch_data =
  lazy
    (let open Qdp_linalg in
     let pdim = 1 lsl Exact.proof_qubits gram_cfg in
     let b =
       Batch.of_cols
         (Array.init pdim (fun i ->
              Qdp_quantum.Pure.global_vector
                (Exact.final_state gram_cfg ~x_state:gram_xs ~y_state:gram_ys
                   ~proof:(Vec.basis pdim i))))
     in
     let to_floats a =
       Array.init (Bigarray.Array1.dim a) (Bigarray.Array1.get a)
     in
     (b, to_floats (Batch.raw_re b), to_floats (Batch.raw_im b)))

let perf_gram_attack () =
  ignore (Exact.attack_gram gram_cfg ~x_state:gram_xs ~y_state:gram_ys)

let bench_batch =
  let open Qdp_linalg in
  let stb = Random.State.make [| 0x6a7 |] in
  let b2048 =
    Batch.init 2048 8 (fun _ _ ->
        Cx.make (States.gaussian stb) (States.gaussian stb))
  in
  let m64 =
    Mat.init 64 64 (fun _ _ ->
        Cx.make (States.gaussian stb) (States.gaussian stb))
  in
  let src =
    Batch.init 64 32 (fun _ _ ->
        Cx.make (States.gaussian stb) (States.gaussian stb))
  in
  let dst = Batch.create 64 32 in
  let cfg1 = { Exact.r = 3; qubits = 1 } in
  let xs1 = Exact.toy_state ~qubits:1 5 and ys1 = Exact.toy_state ~qubits:1 11 in
  Test.make_grouped ~name:"batch"
    [
      Test.make ~name:"gram_2048x8" (Staged.stage (fun () ->
          ignore (Batch.gram b2048)));
      Test.make ~name:"apply_into_64x32" (Staged.stage (fun () ->
          Batch.apply_into m64 ~src ~dst));
      Test.make ~name:"attack_gram_r3_q1" (Staged.stage (fun () ->
          ignore (Exact.attack_gram cfg1 ~x_state:xs1 ~y_state:ys1)));
    ]

(* --- parallel layer --- *)

(* The pool-backed workloads, shared between the bechamel [par] group
   (timed at whatever --jobs/QDP_JOBS is in force) and the [perf]
   A/B harness below.  Each closure is fully seeded so repeated calls
   compute identical results at any job count. *)

let perf_attack_search =
  let n = 160 in
  let stp = Random.State.make [| 0x7e1 |] in
  let x = Gf2.random stp n in
  let y = Gf2.xor x (Gf2.random_weight stp n 3) in
  let params = Eq_path.make ~seed:3 ~n ~r:48 () in
  fun () -> ignore (Eq_path.best_attack_accept params x y)

let perf_fault_sweep =
  let cfg =
    let open Qdp_faults.Sweep in
    {
      (default ~seed:11) with
      trials = 40;
      grid = default_grid ~points:5 ();
      protocols = Some [ "eq"; "rpls" ];
      spec = { Registry.default_spec with seed = 11; n = 16; r = 3; t = 3 };
    }
  in
  fun () -> ignore (Qdp_faults.Sweep.run cfg)

let perf_monte_carlo =
  let spec = { Registry.default_spec with n = 24; r = 3; t = 3 } in
  let entries = List.filter_map Registry.find [ "eq"; "gt" ] in
  fun () ->
    let st' = Random.State.make [| 0x51 |] in
    List.iter
      (fun entry ->
        ignore (Registry.cross_validate_demo ~trials:160 ~st:st' spec entry))
      entries

let perf_mat_mul =
  let open Qdp_linalg in
  let stm = Random.State.make [| 0x31 |] in
  let rand _ _ =
    Cx.make
      (Random.State.float stm 2. -. 1.)
      (Random.State.float stm 2. -. 1.)
  in
  let a = Mat.init 192 192 rand in
  let b = Mat.init 192 192 rand in
  fun () -> ignore (Mat.mul a b)

let bench_par =
  Test.make_grouped ~name:"par"
    [
      Test.make ~name:"attack_search_path_n96"
        (Staged.stage perf_attack_search);
      Test.make ~name:"fault_sweep_eq_rpls" (Staged.stage perf_fault_sweep);
      Test.make ~name:"xval_eq_gt_t160" (Staged.stage perf_monte_carlo);
      Test.make ~name:"mat_mul_192" (Staged.stage perf_mat_mul);
    ]

let tests =
  Test.make_grouped ~name:"qdp"
    [
      bench_substrate;
      bench_table1;
      bench_protocols;
      bench_network;
      bench_faults;
      bench_table3;
      bench_extensions;
      bench_batch;
      bench_par;
    ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~stabilize:true ~quota:(Time.second 0.25) ()
  in
  Benchmark.all cfg instances tests

let analyze results =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock results in
  Analyze.merge ols Instance.[ monotonic_clock ] [ results ]

let () =
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock)

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

open Notty_unix

(* Observability hook: run one representative instrumented pass over
   the engines and dump a machine-readable summary to BENCH_obs.json,
   then reset and disable everything so the timed benchmarks below
   measure the switch-off (uninstrumented) cost. *)
let dump_obs () =
  Qdp_obs.with_enabled true (fun () ->
      List.iter
        (fun packed -> ignore (Dqma.evaluate_packed packed))
        (Registry.demo_suite ~seed:21);
      let xval_spec = { Registry.default_spec with n = 16; r = 3; t = 3 } in
      let st' = Random.State.make [| 23 |] in
      List.iter
        (fun entry ->
          ignore (Registry.cross_validate_demo ~trials:5 ~st:st' xval_spec entry))
        (Registry.all ());
      let g = Graph.path 6 in
      let flood =
        {
          Runtime.init = (fun _ -> ());
          round =
            (fun ~round:_ ~id s ~inbox:_ ->
              let out =
                List.filter
                  (fun d -> d >= 0 && d < Graph.size g)
                  [ id - 1; id + 1 ]
              in
              (s, List.map (fun d -> (d, id)) out));
          finish = (fun ~id:_ _ -> Runtime.Accept);
        }
      in
      ignore (Runtime.run g ~rounds:3 flood);
      (* One small fault sweep so the faults.* counters in the snapshot
         reflect real injected-and-recovered executions rather than
         sitting at zero. *)
      let fault_cfg =
        let open Qdp_faults.Sweep in
        {
          (default ~seed:27) with
          trials = 4;
          grid = default_grid ~points:2 ();
          protocols = Some [ "eq" ];
          spec = { Registry.default_spec with seed = 27; n = 16; r = 3; t = 3 };
        }
      in
      ignore (Qdp_faults.Sweep.run fault_cfg);
      let snap = Qdp_obs.Metrics.snapshot () in
      let spans, dropped = Qdp_obs.Trace.snapshot () in
      let json =
        Printf.sprintf "{\"trace\":{\"spans\":%d,\"dropped\":%d},\n\"metrics_snapshot\":%s}\n"
          (List.length spans) dropped
          (String.trim (Qdp_obs.Metrics.to_json snap))
      in
      let oc = open_out "BENCH_obs.json" in
      output_string oc json;
      close_out oc);
  Qdp_obs.Metrics.reset ();
  Qdp_obs.Trace.clear ()

(* Wall-clock A/B harness for the parallel layer: each group runs the
   identical seeded workload with the pool pinned to one job and then
   to the ambient job count (QDP_JOBS or the core count), and
   BENCH_perf.json records both times plus the speedup.  Because the
   workloads are jobs-invariant by construction, the two runs compute
   byte-identical results and the comparison is pure scheduling.  On a
   single-core host the "parallel" column is expected to be slower
   (domain oversubscription); the CI runner provides the multi-core
   reading. *)
let host_cores () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> Domain.recommended_domain_count ()
  | ic ->
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor"
           then incr n
         done
       with End_of_file -> ());
      close_in ic;
      if !n > 0 then !n else Domain.recommended_domain_count ()

let dump_perf () =
  let jobs_target = Qdp_par.jobs () in
  let groups =
    [
      ("attack_search", 10, perf_attack_search);
      ("fault_sweep", 1, perf_fault_sweep);
      ("monte_carlo_xval", 1, perf_monte_carlo);
      ("mat_mul", 16, perf_mat_mul);
      ("gram_batch", 4, perf_gram_attack);
    ]
  in
  let time_at jobs reps work =
    Qdp_par.set_jobs jobs;
    work ();
    let best = ref infinity in
    for _ = 1 to 2 do
      let t0 = Qdp_obs.Clock.now () in
      for _ = 1 to reps do
        work ()
      done;
      let dt = Qdp_obs.Clock.now () -. t0 in
      if dt < !best then best := dt
    done;
    !best
  in
  (* All sequential baselines run before the first parallel pass, so
     no pool domain exists yet to share the GC with. *)
  let seqs =
    List.map (fun (_, reps, work) -> time_at 1 reps work) groups
  in
  (* Kernel A/B: both columns sequential (jobs = 1), so the speedup is
     purely the batched rewrite (blocked Gram, fused projections,
     blit-based register moves) against the pre-change per-proof
     kernel — the parallel win on top of it is the gram_batch group
     above. *)
  let kernels =
    let batched = time_at 1 1 perf_gram_attack in
    let naive =
      time_at 1 1 (fun () ->
          ignore
            (naive_attack_gram gram_cfg ~x_state:gram_xs ~y_state:gram_ys))
    in
    (* Storage A/B on identical data: the kept-verbatim float-array
       Gram loops vs the Bigarray Batch.gram microkernel, both
       sequential. *)
    let b, far, fai = Lazy.force gram_batch_data in
    let ba_batched =
      time_at 1 1 (fun () -> ignore (Qdp_linalg.Batch.gram b))
    in
    let ba_naive =
      time_at 1 1 (fun () ->
          ignore
            (float_array_gram
               ~dim:(Qdp_linalg.Batch.dim b)
               ~count:(Qdp_linalg.Batch.count b)
               far fai))
    in
    [
      Printf.sprintf
        "{\"kernel\":\"entangled_gram_r3_q2\",\"naive_s\":%.6f,\"batched_s\":%.6f,\"speedup\":%.3f}"
        naive batched (naive /. batched);
      Printf.sprintf
        "{\"kernel\":\"gram_bigarray_r3_q2\",\"naive_s\":%.6f,\"batched_s\":%.6f,\"speedup\":%.3f}"
        ba_naive ba_batched (ba_naive /. ba_batched);
    ]
  in
  let rows =
    List.map2
      (fun (name, reps, work) seq ->
        let par = time_at jobs_target reps work in
        Printf.sprintf
          "{\"group\":\"%s\",\"sequential_s\":%.6f,\"parallel_s\":%.6f,\"speedup\":%.3f}"
          name seq par (seq /. par))
      groups seqs
  in
  Qdp_par.set_jobs jobs_target;
  let oc = open_out "BENCH_perf.json" in
  Printf.fprintf oc
    "{\"jobs\":%d,\n\"host\":{\"cores\":%d,\"recommended_domains\":%d},\n\"kernels\":[\n%s\n],\n\"groups\":[\n%s\n]}\n"
    jobs_target (host_cores ())
    (Domain.recommended_domain_count ())
    (String.concat ",\n" kernels)
    (String.concat ",\n" rows);
  close_out oc;
  (* Under --profile: one fresh attributed pass per group at the
     ambient job count, reported to stderr so BENCH_perf.json and
     stdout are unchanged.  The per-group reset keeps each report's
     domain busy/idle split scoped to that workload alone. *)
  if Qdp_obs.Prof.on () then
    List.iter
      (fun (name, _, work) ->
        Qdp_obs.Prof.reset ();
        work ();
        Format.eprintf "--- profile: %s (jobs = %d) ---@\n%a@?" name
          jobs_target Qdp_obs.Prof.report ())
      groups;
  (* Always emitted: an empty calibration list when sampling is off,
     per-kernel MAC/seconds/allocation samples under --profile. *)
  Qdp_obs.Calib.write_json "BENCH_calib.json"

(* -- seq vs domains vs processes (BENCH_dist.json) ------------------

   One fully-seeded sharded workload (cross-validation + fault sweep)
   executed under four scheduling modes.  The JSON holds only
   deterministic content — per-mode result digests, the chaos pass's
   event accounting, and the cross-mode agreement bit — so the
   artifact is byte-stable across reruns at fixed seeds and CI can
   diff it.  Wall-clock seconds go to stderr only.

   Mode order is forced: both process modes must run before the
   domains mode, because OCaml 5 forbids [Unix.fork] once the Qdp_par
   pool has ever spawned a domain. *)

let dist_workload () =
  let spec = { Registry.default_spec with seed = 11; n = 16; r = 3; t = 3 } in
  let buf = Buffer.create 4096 in
  let st = Random.State.make [| 0x51 |] in
  List.iter
    (fun entry ->
      match
        Registry.cross_validate_demo ~trials:160 ~st spec entry
      with
      | None -> ()
      | Some results ->
          let id = (Registry.info entry).Registry.info_id in
          List.iter
            (fun (label, cs) ->
              List.iter
                (fun (c : Dqma.check) ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s %s %s %.17g %.17g %d %.17g %b\n" id
                       label c.Dqma.check_strategy c.Dqma.analytic
                       c.Dqma.sampled c.Dqma.trials c.Dqma.tolerance
                       c.Dqma.agree))
                cs)
            results)
    (List.filter_map Registry.find [ "eq"; "gt" ]);
  let cfg =
    let open Qdp_faults.Sweep in
    {
      (default ~seed:11) with
      trials = 40;
      grid = default_grid ~points:5 ();
      protocols = Some [ "eq"; "rpls" ];
      spec;
    }
  in
  Buffer.add_string buf (Qdp_faults.Sweep.to_json (Qdp_faults.Sweep.run cfg));
  Digest.to_hex (Digest.string (Buffer.contents buf))

let dump_dist () =
  Qdp_obs.set_enabled true;
  Qdp_dist.set_shard_timeout 2.0;
  Qdp_dist.set_chaos_seed 42;
  let dist_counters =
    [ "tasks"; "results"; "retries"; "crashes"; "hangs"; "corrupt"; "degraded" ]
  in
  let counter snap name =
    match Qdp_obs.Metrics.find snap ("dist." ^ name) with
    | Some (Qdp_obs.Metrics.Counter_v v) -> v
    | _ -> 0
  in
  let run_mode ~mode ~jobs ~workers ~chaos =
    Qdp_par.set_jobs jobs;
    Qdp_dist.set_workers workers;
    Qdp_dist.set_chaos chaos;
    let before = Qdp_obs.Metrics.snapshot () in
    let t0 = Qdp_obs.Clock.now () in
    let digest = dist_workload () in
    let dt = Qdp_obs.Clock.now () -. t0 in
    let after = Qdp_obs.Metrics.snapshot () in
    Printf.eprintf "dist: %-16s %6.2fs  (workers=%d jobs=%d chaos=%g)\n%!"
      mode dt workers jobs chaos;
    let events =
      if chaos > 0. then
        Printf.sprintf ",\"events\":{%s}"
          (String.concat ","
             (List.map
                (fun name ->
                  Printf.sprintf "\"%s\":%d" name
                    (counter after name - counter before name))
                dist_counters))
      else ""
    in
    ( digest,
      Printf.sprintf
        "{\"mode\":\"%s\",\"workers\":%d,\"jobs\":%d,\"chaos\":%g,\"digest\":\"%s\"%s}"
        mode workers jobs chaos digest events )
  in
  (* Explicit lets: a list literal would evaluate right-to-left and
     start the domain pool before the process modes get to fork. *)
  let procs = run_mode ~mode:"processes" ~jobs:1 ~workers:4 ~chaos:0.0 in
  let chaos = run_mode ~mode:"processes_chaos" ~jobs:1 ~workers:4 ~chaos:0.5 in
  let doms = run_mode ~mode:"domains" ~jobs:4 ~workers:0 ~chaos:0.0 in
  let seq = run_mode ~mode:"seq" ~jobs:1 ~workers:0 ~chaos:0.0 in
  let modes = [ procs; chaos; doms; seq ] in
  let digests = List.map fst modes in
  let agree = List.for_all (String.equal (List.hd digests)) digests in
  let oc = open_out "BENCH_dist.json" in
  Printf.fprintf oc "{\"modes\":[\n%s\n],\n\"agree\":%b}\n"
    (String.concat ",\n" (List.map snd modes))
    agree;
  close_out oc;
  if not agree then begin
    prerr_endline "dist: modes disagree — sharding broke determinism";
    exit 1
  end

let () =
  if Array.exists (String.equal "--profile") Sys.argv then begin
    Qdp_obs.Prof.set_enabled true;
    Qdp_obs.Calib.set_enabled true
  end

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "dist" then (
    dump_dist ();
    exit 0)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "perf" then (
    dump_perf ();
    exit 0)

let () =
  dump_obs ();
  dump_perf ();
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 120; h = 1 }
  in
  let results = benchmark () in
  let results = analyze results in
  img (window, results) |> eol |> output_image
