(* Tests for the communication-complexity substrate: problems, fooling
   sets, one-way protocols, discrepancy and the LSD problem. *)

open Qdp_linalg
open Qdp_codes
open Qdp_commcc

let rng = Random.State.make [| 0xcc |]

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- problems --- *)

let test_eq_gt_predicates () =
  let x = Gf2.of_int ~width:5 19 and y = Gf2.of_int ~width:5 7 in
  Alcotest.(check bool) "EQ" false ((Problems.eq 5).Problems.f x y);
  Alcotest.(check bool) "GT" true ((Problems.gt 5).Problems.f x y);
  Alcotest.(check bool) "GT<" true ((Problems.gt_lt 5).Problems.f y x);
  Alcotest.(check bool) "GT>= equal" true
    ((Problems.gt_ge 5).Problems.f x (Gf2.copy x))

let test_gt_witness_matches_compare () =
  for _ = 1 to 200 do
    let x = Gf2.random rng 8 and y = Gf2.random rng 8 in
    let w = Problems.gt_witness x y in
    let gt = Gf2.compare_big_endian x y > 0 in
    (match w with
    | Some i ->
        Alcotest.(check bool) "witness implies GT" true gt;
        Alcotest.(check bool) "x_i = 1" true (Gf2.get x i);
        Alcotest.(check bool) "y_i = 0" false (Gf2.get y i);
        Alcotest.(check bool) "prefixes equal" true
          (Gf2.equal (Gf2.prefix x i) (Gf2.prefix y i))
    | None -> Alcotest.(check bool) "no witness implies not GT" false gt)
  done

let test_ham_disj_ip () =
  let x = Gf2.of_string "1010" and y = Gf2.of_string "1001" in
  Alcotest.(check bool) "HAM<=2" true ((Problems.ham ~d:2 4).Problems.f x y);
  Alcotest.(check bool) "HAM<=1" false ((Problems.ham ~d:1 4).Problems.f x y);
  Alcotest.(check bool) "DISJ" false ((Problems.disj 4).Problems.f x y);
  let z = Gf2.of_string "0101" in
  Alcotest.(check bool) "DISJ disjoint" true ((Problems.disj 4).Problems.f x z);
  Alcotest.(check bool) "IP" true ((Problems.ip 4).Problems.f x y)

let test_forall_t () =
  let p = Problems.ham ~d:1 4 in
  let ok = [| Gf2.of_string "1010"; Gf2.of_string "1011"; Gf2.of_string "1010" |] in
  Alcotest.(check bool) "all close" true (Problems.forall_t p ok);
  let bad = [| Gf2.of_string "1010"; Gf2.of_string "0101" |] in
  Alcotest.(check bool) "far pair" false (Problems.forall_t p bad)

(* --- fooling sets --- *)

let test_eq_fooling_set () =
  let s = Fooling.eq_fooling_set 4 in
  Alcotest.(check int) "size 2^4" 16 (List.length s);
  Alcotest.(check bool) "is 1-fooling" true
    (Fooling.is_one_fooling_set (Problems.eq 4) s)

let test_gt_fooling_set () =
  let s = Fooling.gt_fooling_set 4 in
  Alcotest.(check int) "size 2^4 - 1" 15 (List.length s);
  Alcotest.(check bool) "is 1-fooling" true
    (Fooling.is_one_fooling_set (Problems.gt 4) s)

let test_not_fooling () =
  (* {(x, x)} pairs are NOT a fooling set for HAM<=1: crossing keeps
     distance 1 *)
  let close_pairs =
    [ (Gf2.of_string "0000", Gf2.of_string "0000");
      (Gf2.of_string "0001", Gf2.of_string "0001") ]
  in
  Alcotest.(check bool) "not fooling for HAM" false
    (Fooling.is_one_fooling_set (Problems.ham ~d:1 4) close_pairs)

(* --- one-way protocols --- *)

let test_oneway_eq () =
  let p = Oneway.eq ~seed:1 ~n:24 in
  let x = Gf2.random rng 24 in
  check_float ~eps:1e-9 "complete" 1. (Oneway.accept_on_inputs p x (Gf2.copy x));
  let y = Gf2.random rng 24 in
  if not (Gf2.equal x y) then
    Alcotest.(check bool) "sound" true (Oneway.accept_on_inputs p x y < 0.6)

let test_oneway_eq_repeat_and () =
  let p = Oneway.repeat_and 3 (Oneway.eq ~seed:2 ~n:16) in
  let x = Gf2.random rng 16 and y = Gf2.random rng 16 in
  check_float ~eps:1e-9 "still complete" 1.
    (Oneway.accept_on_inputs p x (Gf2.copy x));
  if not (Gf2.equal x y) then
    Alcotest.(check bool) "amplified soundness" true
      (Oneway.accept_on_inputs p x y < 0.2)

let test_oneway_ham_complete () =
  let n = 64 and d = 3 in
  let p = Oneway.ham ~seed:3 ~n ~d in
  for trial = 0 to 4 do
    let st = Random.State.make [| trial; 51 |] in
    let x = Gf2.random st n in
    let noise = Gf2.random_weight st n d in
    let y = Gf2.xor x noise in
    check_float ~eps:1e-9
      (Printf.sprintf "complete at distance %d" (Gf2.hamming_distance x y))
      1.
      (Oneway.accept_on_inputs p x y)
  done

let test_oneway_ham_sound_far () =
  let n = 64 and d = 3 in
  let p = Oneway.repeat 9 (Oneway.ham ~seed:3 ~n ~d) in
  let far_accepts = ref 0. and cases = 5 in
  for trial = 0 to cases - 1 do
    let st = Random.State.make [| trial; 52 |] in
    let x = Gf2.random st n in
    let noise = Gf2.random_weight st n (4 * d) in
    let y = Gf2.xor x noise in
    far_accepts := !far_accepts +. Oneway.accept_on_inputs p x y
  done;
  Alcotest.(check bool) "far instances rejected on average" true
    (!far_accepts /. float_of_int cases < 0.25)

let test_bundle_overlap () =
  let p = Oneway.eq ~seed:4 ~n:8 in
  let x = Gf2.random rng 8 and y = Gf2.random rng 8 in
  let bx = p.Oneway.alice x and by = p.Oneway.alice y in
  let ov = Oneway.bundle_overlap bx by in
  Alcotest.(check bool) "|overlap| <= 1" true (Cx.abs ov <= 1. +. 1e-9);
  Alcotest.(check bool) "self overlap 1" true
    (Cx.is_close ~eps:1e-9 (Oneway.bundle_overlap bx bx) Cx.one)

let test_thermometer () =
  let v = Oneway.thermometer ~resolution:10 [| -1.; 0.; 1. |] in
  Alcotest.(check int) "length" 30 (Gf2.length v);
  Alcotest.(check int) "levels 0/5/10" 15 (Gf2.weight v);
  (* l1 distance = hamming / resolution * 2 *)
  let a = Oneway.thermometer ~resolution:10 [| 0.2 |] in
  let b = Oneway.thermometer ~resolution:10 [| -0.2 |] in
  Alcotest.(check int) "hamming encodes l1" 2 (Gf2.hamming_distance a b)

(* --- SMP --- *)

let test_smp_eq_complete () =
  let p = Smp.eq ~seed:14 ~n:24 in
  let x = Gf2.random rng 24 in
  check_float ~eps:1e-9 "equal accepted" 1.
    (Smp.accept_on_inputs p x (Gf2.copy x))

let test_smp_eq_sound () =
  let p = Smp.repeat_and 6 (Smp.eq ~seed:15 ~n:24) in
  let x = Gf2.random rng 24 and y = Gf2.random rng 24 in
  if not (Gf2.equal x y) then
    Alcotest.(check bool) "amplified below 1/3" true
      (Smp.accept_on_inputs p x y < 1. /. 3.)

let test_smp_to_oneway () =
  let smp = Smp.eq ~seed:16 ~n:16 in
  let ow = Smp.to_oneway smp in
  let x = Gf2.random rng 16 and y = Gf2.random rng 16 in
  check_float ~eps:1e-9 "same acceptance"
    (Smp.accept_on_inputs smp x y)
    (Oneway.accept_on_inputs ow x y)

let test_smp_compiles_to_dqma () =
  (* BQP1 <= BQP||: the converted protocol plugs into Theorem 32 *)
  let ow = Smp.to_oneway (Smp.eq ~seed:17 ~n:16) in
  Alcotest.(check bool) "has the SMP cost" true (ow.Oneway.message_qubits > 0)

(* --- discrepancy --- *)

let test_ip_spectral_discrepancy () =
  (* IP's +/-1 matrix has spectral norm 2^{n/2} (it is 2 H - J shifted;
     numerically it's near sqrt dim), so the bound is ~ 2^{-n/2} *)
  let n = 5 in
  let b = Discrepancy.spectral_discrepancy_bound (Problems.ip n) in
  Alcotest.(check bool)
    (Printf.sprintf "IP disc bound %.4f small" b)
    true
    (b < 4. *. Float.pow 2. (-.float_of_int n /. 2.))

let test_eq_large_discrepancy () =
  (* EQ has huge discrepancy (near-constant matrix) *)
  let b = Discrepancy.spectral_discrepancy_bound (Problems.eq 5) in
  Alcotest.(check bool) "EQ disc bound large" true (b > 0.5)

let test_rectangle_search_consistent () =
  let p = Problems.ip 4 in
  let lower = Discrepancy.rectangle_search rng ~trials:100 p in
  let upper = Discrepancy.spectral_discrepancy_bound p in
  Alcotest.(check bool) "search <= spectral bound" true (lower <= upper +. 1e-9)

let test_qmacc_formulas () =
  (match Discrepancy.qmacc_lower_bound_formula (Problems.disj 27) with
  | Some v -> check_float ~eps:1e-6 "DISJ n^{1/3}" 3. v
  | None -> Alcotest.fail "DISJ should have a bound");
  (match Discrepancy.qmacc_lower_bound_formula (Problems.ip 16) with
  | Some v -> check_float ~eps:1e-6 "IP sqrt n" 4. v
  | None -> Alcotest.fail "IP should have a bound");
  Alcotest.(check bool) "EQ has none" true
    (Discrepancy.qmacc_lower_bound_formula (Problems.eq 16) = None)

(* --- LSD --- *)

let test_lsd_promises () =
  let close = Lsd.random_close rng ~ambient:64 ~dim:3 in
  Alcotest.(check bool) "close instance" true (Lsd.promise_of close = Lsd.Close);
  let far = Lsd.random_far rng ~ambient:256 ~dim:3 in
  Alcotest.(check bool) "far instance" true (Lsd.promise_of far = Lsd.Far)

let test_lsd_protocol_complete () =
  let inst = Lsd.random_close rng ~ambient:64 ~dim:3 in
  let p = Lsd.protocol_accept_prob inst (Lsd.honest_proof inst) in
  Alcotest.(check bool) (Printf.sprintf "close accepts %.3f >= 0.9" p) true
    (p >= 0.9)

let test_lsd_protocol_sound () =
  let inst = Lsd.random_far rng ~ambient:256 ~dim:3 in
  let best = Lsd.best_proof_accept_prob inst in
  Alcotest.(check bool) (Printf.sprintf "far best proof %.4f <= 0.0361" best) true
    (best <= 0.0362);
  (* and indeed any specific proof does no better *)
  let p = Lsd.protocol_accept_prob inst (Lsd.honest_proof inst) in
  Alcotest.(check bool) "honest proof on far instance" true (p <= best +. 1e-9)

let test_lsd_eq_reduction () =
  let x = Gf2.random rng 12 and y = Gf2.random rng 12 in
  let same = Lsd.of_eq_inputs ~seed:5 ~ambient:512 x (Gf2.copy x) in
  Alcotest.(check bool) "x = y close" true (Lsd.promise_of same = Lsd.Close);
  if not (Gf2.equal x y) then begin
    let diff = Lsd.of_eq_inputs ~seed:5 ~ambient:512 x y in
    Alcotest.(check bool) "x <> y far" true (Lsd.promise_of diff = Lsd.Far)
  end

let test_lsd_gt_reduction () =
  let x = Gf2.of_int ~width:6 45 and y = Gf2.of_int ~width:6 29 in
  let yes = Lsd.of_gt_inputs ~seed:6 ~ambient:2048 x y in
  Alcotest.(check bool) "x > y close" true (Lsd.promise_of yes = Lsd.Close);
  let no = Lsd.of_gt_inputs ~seed:6 ~ambient:2048 y x in
  Alcotest.(check bool) "y < x far" true (Lsd.promise_of no = Lsd.Far)

let test_lsd_alice_projection () =
  let inst = Lsd.random_far rng ~ambient:128 ~dim:2 in
  let proof = Lsd.honest_proof inst in
  check_float ~eps:1e-7 "honest proof passes Alice" 1.
    (Lsd.alice_accept_prob inst proof)

let prop_lsd_distance_range =
  QCheck.Test.make ~name:"LSD distance in [0, sqrt 2]" ~count:20
    QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 0x15d |] in
      let a = Subspace.random st ~ambient:24 ~dim:2 in
      let b = Subspace.random st ~ambient:24 ~dim:3 in
      let d = Subspace.distance a b in
      d >= -1e-9 && d <= Float.sqrt 2. +. 1e-9)

let prop_lsd_best_proof_dominates =
  QCheck.Test.make ~name:"best LSD proof dominates the honest one" ~count:15
    QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 0x15e |] in
      let inst =
        { Lsd.v1 = Subspace.random st ~ambient:32 ~dim:2;
          v2 = Subspace.random st ~ambient:32 ~dim:2 }
      in
      Lsd.protocol_accept_prob inst (Lsd.honest_proof inst)
      <= Lsd.best_proof_accept_prob inst +. 1e-7)

(* --- QMA communication accounting --- *)

let test_qma_star_costs () =
  let c =
    { Qma_comm.proof_alice = 5; proof_bob = 7; communication = 3 }
  in
  Alcotest.(check int) "star total" 15 (Qma_comm.star_total c);
  Alcotest.(check int) "inequality (1)" 22 (Qma_comm.qma_of_star c)

let test_lsd_oneway_protocol () =
  let proto = Qma_comm.lsd_oneway ~ambient:128 in
  Alcotest.(check int) "cost 2 log m" 14 (Qma_comm.cost proto);
  let inst = Lsd.random_close rng ~ambient:128 ~dim:2 in
  let p = Qma_comm.honest_accept_prob proto inst.Lsd.v1 inst.Lsd.v2 in
  Alcotest.(check bool) "close accepted" true (p >= 0.9)

let () =
  Alcotest.run "commcc"
    [
      ( "problems",
        [
          Alcotest.test_case "predicates" `Quick test_eq_gt_predicates;
          Alcotest.test_case "gt witness" `Quick test_gt_witness_matches_compare;
          Alcotest.test_case "ham/disj/ip" `Quick test_ham_disj_ip;
          Alcotest.test_case "forall_t" `Quick test_forall_t;
        ] );
      ( "fooling",
        [
          Alcotest.test_case "eq fooling set" `Quick test_eq_fooling_set;
          Alcotest.test_case "gt fooling set" `Quick test_gt_fooling_set;
          Alcotest.test_case "non-fooling detected" `Quick test_not_fooling;
        ] );
      ( "oneway",
        [
          Alcotest.test_case "eq protocol" `Quick test_oneway_eq;
          Alcotest.test_case "eq repeat-and" `Quick test_oneway_eq_repeat_and;
          Alcotest.test_case "ham complete" `Quick test_oneway_ham_complete;
          Alcotest.test_case "ham sound far" `Quick test_oneway_ham_sound_far;
          Alcotest.test_case "bundle overlap" `Quick test_bundle_overlap;
          Alcotest.test_case "thermometer" `Quick test_thermometer;
        ] );
      ( "smp",
        [
          Alcotest.test_case "eq complete" `Quick test_smp_eq_complete;
          Alcotest.test_case "eq sound" `Quick test_smp_eq_sound;
          Alcotest.test_case "to oneway" `Quick test_smp_to_oneway;
          Alcotest.test_case "compiles" `Quick test_smp_compiles_to_dqma;
        ] );
      ( "discrepancy",
        [
          Alcotest.test_case "IP spectral" `Quick test_ip_spectral_discrepancy;
          Alcotest.test_case "EQ large" `Quick test_eq_large_discrepancy;
          Alcotest.test_case "search consistent" `Quick
            test_rectangle_search_consistent;
          Alcotest.test_case "qmacc formulas" `Quick test_qmacc_formulas;
        ] );
      ( "lsd",
        [
          Alcotest.test_case "promises" `Quick test_lsd_promises;
          Alcotest.test_case "protocol complete" `Quick test_lsd_protocol_complete;
          Alcotest.test_case "protocol sound" `Quick test_lsd_protocol_sound;
          Alcotest.test_case "eq reduction" `Quick test_lsd_eq_reduction;
          Alcotest.test_case "gt reduction" `Quick test_lsd_gt_reduction;
          Alcotest.test_case "alice projection" `Quick test_lsd_alice_projection;
        ] );
      ( "lsd_properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lsd_distance_range; prop_lsd_best_proof_dominates ] );
      ( "qma_comm",
        [
          Alcotest.test_case "star costs" `Quick test_qma_star_costs;
          Alcotest.test_case "lsd one-way" `Quick test_lsd_oneway_protocol;
        ] );
    ]
