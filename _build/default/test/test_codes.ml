(* Tests for GF(2) bit vectors and linear codes. *)

open Qdp_codes

let rng = Random.State.make [| 0xc0de |]

let test_gf2_roundtrip () =
  for k = 0 to 31 do
    let v = Gf2.of_int ~width:5 k in
    Alcotest.(check int) "of_int/to_int" k (Gf2.to_int v)
  done

let test_gf2_string_roundtrip () =
  let s = "0110100111" in
  Alcotest.(check string) "string roundtrip" s (Gf2.to_string (Gf2.of_string s))

let test_gf2_weight () =
  Alcotest.(check int) "weight" 6 (Gf2.weight (Gf2.of_string "0110100111"));
  Alcotest.(check int) "zero weight" 0 (Gf2.weight (Gf2.zero 100))

let test_gf2_long_vectors () =
  (* cross the 62-bit word boundary *)
  let v = Gf2.zero 200 in
  Gf2.set v 61 true;
  Gf2.set v 62 true;
  Gf2.set v 199 true;
  Alcotest.(check int) "weight across words" 3 (Gf2.weight v);
  Alcotest.(check bool) "bit 61" true (Gf2.get v 61);
  Alcotest.(check bool) "bit 63" false (Gf2.get v 63);
  Gf2.set v 62 false;
  Alcotest.(check int) "after clear" 2 (Gf2.weight v)

let test_gf2_xor_involution () =
  let a = Gf2.random rng 130 and b = Gf2.random rng 130 in
  Alcotest.(check bool) "xor twice is identity" true
    (Gf2.equal a (Gf2.xor (Gf2.xor a b) b))

let test_gf2_hamming () =
  let a = Gf2.of_string "10110" and b = Gf2.of_string "10011" in
  Alcotest.(check int) "hamming" 2 (Gf2.hamming_distance a b)

let test_gf2_dot () =
  let a = Gf2.of_string "1101" and b = Gf2.of_string "1011" in
  (* overlap at positions 0 and 3: even parity *)
  Alcotest.(check bool) "dot even" false (Gf2.dot a b);
  let c = Gf2.of_string "1000" in
  Alcotest.(check bool) "dot odd" true (Gf2.dot a c)

let test_gf2_prefix () =
  let a = Gf2.of_string "110101" in
  Alcotest.(check string) "prefix 4" "1101" (Gf2.to_string (Gf2.prefix a 4));
  Alcotest.(check int) "prefix 0 length" 0 (Gf2.length (Gf2.prefix a 0))

let test_gf2_compare () =
  let x = Gf2.of_int ~width:6 37 and y = Gf2.of_int ~width:6 29 in
  Alcotest.(check bool) "37 > 29" true (Gf2.compare_big_endian x y > 0);
  Alcotest.(check bool) "29 < 37" true (Gf2.compare_big_endian y x < 0);
  Alcotest.(check int) "equal" 0 (Gf2.compare_big_endian x (Gf2.copy x))

let test_gf2_random_weight () =
  for w = 0 to 10 do
    let v = Gf2.random_weight rng 40 w in
    Alcotest.(check int) "exact weight" w (Gf2.weight v)
  done

let test_code_linearity () =
  let c = Linear_code.random ~seed:3 ~n:24 ~m:96 in
  let x = Gf2.random rng 24 and y = Gf2.random rng 24 in
  let lhs = Linear_code.encode c (Gf2.xor x y) in
  let rhs = Gf2.xor (Linear_code.encode c x) (Linear_code.encode c y) in
  Alcotest.(check bool) "E (x xor y) = E x xor E y" true (Gf2.equal lhs rhs)

let test_code_injective () =
  (* systematic prefix makes the code injective *)
  let c = Linear_code.random ~seed:4 ~n:10 ~m:40 in
  let x = Gf2.random rng 10 and y = Gf2.random rng 10 in
  if not (Gf2.equal x y) then
    Alcotest.(check bool) "distinct codewords" false
      (Gf2.equal (Linear_code.encode c x) (Linear_code.encode c y))

let test_repetition_distance () =
  let c = Linear_code.repetition ~n:6 ~times:5 in
  Alcotest.(check int) "block length" 30 (Linear_code.block_length c);
  Alcotest.(check int) "min distance" 5 (Linear_code.min_distance_exhaustive c)

let test_identity_distance () =
  let c = Linear_code.identity 8 in
  Alcotest.(check int) "min distance 1" 1 (Linear_code.min_distance_exhaustive c)

let test_random_code_distance () =
  (* rate-1/8 random code: relative distance should be well above 1/4 *)
  let c = Linear_code.random ~seed:11 ~n:12 ~m:96 in
  let d = Linear_code.min_distance_exhaustive c in
  let rel = Linear_code.relative_distance_of d c in
  Alcotest.(check bool)
    (Printf.sprintf "relative distance %.3f > 0.25" rel)
    true (rel > 0.25)

let test_sampled_distance_upper_bounds () =
  let c = Linear_code.random ~seed:12 ~n:10 ~m:80 in
  let exact = Linear_code.min_distance_exhaustive c in
  let sampled = Linear_code.min_distance_sampled rng ~trials:2000 c in
  Alcotest.(check bool) "sampled >= exact" true (sampled >= exact)

let prop_encode_zero =
  QCheck.Test.make ~name:"E 0 = 0" ~count:20 QCheck.small_nat (fun seed ->
      let c = Linear_code.random ~seed:(seed + 1) ~n:8 ~m:32 in
      Gf2.weight (Linear_code.encode c (Gf2.zero 8)) = 0)

let prop_hamming_triangle =
  QCheck.Test.make ~name:"hamming triangle inequality" ~count:100
    QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed |] in
      let a = Gf2.random st 50
      and b = Gf2.random st 50
      and c = Gf2.random st 50 in
      Gf2.hamming_distance a c
      <= Gf2.hamming_distance a b + Gf2.hamming_distance b c)

let prop_weight_xor =
  QCheck.Test.make ~name:"weight (x xor y) = hamming x y" ~count:100
    QCheck.small_nat (fun seed ->
      let st = Random.State.make [| seed; 2 |] in
      let a = Gf2.random st 80 and b = Gf2.random st 80 in
      Gf2.weight (Gf2.xor a b) = Gf2.hamming_distance a b)

let () =
  Alcotest.run "codes"
    [
      ( "gf2",
        [
          Alcotest.test_case "int roundtrip" `Quick test_gf2_roundtrip;
          Alcotest.test_case "string roundtrip" `Quick test_gf2_string_roundtrip;
          Alcotest.test_case "weight" `Quick test_gf2_weight;
          Alcotest.test_case "long vectors" `Quick test_gf2_long_vectors;
          Alcotest.test_case "xor involution" `Quick test_gf2_xor_involution;
          Alcotest.test_case "hamming" `Quick test_gf2_hamming;
          Alcotest.test_case "dot" `Quick test_gf2_dot;
          Alcotest.test_case "prefix" `Quick test_gf2_prefix;
          Alcotest.test_case "big-endian compare" `Quick test_gf2_compare;
          Alcotest.test_case "random weight" `Quick test_gf2_random_weight;
        ] );
      ( "linear_code",
        [
          Alcotest.test_case "linearity" `Quick test_code_linearity;
          Alcotest.test_case "injective" `Quick test_code_injective;
          Alcotest.test_case "repetition distance" `Quick test_repetition_distance;
          Alcotest.test_case "identity distance" `Quick test_identity_distance;
          Alcotest.test_case "random code distance" `Quick test_random_code_distance;
          Alcotest.test_case "sampled distance" `Quick
            test_sampled_distance_upper_bounds;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_encode_zero; prop_hamming_triangle; prop_weight_xor ] );
    ]
