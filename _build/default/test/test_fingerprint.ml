(* Tests for quantum fingerprints and the one-way EQ protocol. *)

open Qdp_linalg
open Qdp_codes
open Qdp_fingerprint

let rng = Random.State.make [| 0xf1f2 |]

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_state_normalized () =
  let fp = Fingerprint.standard ~seed:1 ~n:16 in
  let x = Gf2.random rng 16 in
  check_float "unit norm" 1. (Vec.norm (Fingerprint.state fp x))

let test_overlap_matches_dot () =
  let fp = Fingerprint.standard ~seed:2 ~n:12 in
  let x = Gf2.random rng 12 and y = Gf2.random rng 12 in
  let via_code = Fingerprint.overlap fp x y in
  let via_dot =
    (Vec.dot (Fingerprint.state fp x) (Fingerprint.state fp y)).Complex.re
  in
  check_float ~eps:1e-9 "overlap = inner product" via_code via_dot

let test_one_sided () =
  let fp = Fingerprint.standard ~seed:3 ~n:20 in
  let x = Gf2.random rng 20 in
  check_float ~eps:1e-9 "x = y accepts with probability 1" 1.
    (Fingerprint.accept_prob fp x (Fingerprint.state fp x))

let test_soundness_gap () =
  let fp = Fingerprint.standard ~seed:4 ~n:20 in
  for _ = 1 to 20 do
    let x = Gf2.random rng 20 and y = Gf2.random rng 20 in
    if not (Gf2.equal x y) then begin
      let p = Fingerprint.accept_prob fp y (Fingerprint.state fp x) in
      Alcotest.(check bool)
        (Printf.sprintf "x <> y accepts with prob %.3f < 0.6" p)
        true (p < 0.6)
    end
  done

let test_qubit_accounting () =
  (* m = 8n = 128; dim = 256; qubits = 8 *)
  let fp = Fingerprint.standard ~seed:5 ~n:16 in
  Alcotest.(check int) "dim" 256 (Fingerprint.dim fp);
  Alcotest.(check int) "qubits" 8 (Fingerprint.qubits fp)

let test_qubits_logarithmic () =
  let q16 = Fingerprint.qubits (Fingerprint.standard ~seed:6 ~n:16) in
  let q256 = Fingerprint.qubits (Fingerprint.standard ~seed:6 ~n:256) in
  (* 16x larger input -> only +4 qubits *)
  Alcotest.(check int) "qubit growth is log" 4 (q256 - q16)

let test_bot_state () =
  let fp = Fingerprint.standard ~seed:7 ~n:8 in
  let b = Fingerprint.bot_state fp in
  check_float "unit" 1. (Vec.norm b);
  Alcotest.(check int) "dimension matches" (Fingerprint.dim fp) (Vec.dim b)

let prop_overlap_range =
  QCheck.Test.make ~name:"overlap in [-1, 1], = 1 iff equal" ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let fp = Fingerprint.standard ~seed:8 ~n:10 in
      let x = Gf2.of_int ~width:10 (a mod 1024) in
      let y = Gf2.of_int ~width:10 (b mod 1024) in
      let ov = Fingerprint.overlap fp x y in
      ov >= -1. && ov <= 1. && (Gf2.equal x y = (ov = 1.)))

let prop_accept_prob_bounded =
  QCheck.Test.make ~name:"accept prob in [0, 1]" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (a, b) ->
      let fp = Fingerprint.standard ~seed:9 ~n:10 in
      let x = Gf2.of_int ~width:10 (a mod 1024) in
      let y = Gf2.of_int ~width:10 (b mod 1024) in
      let p = Fingerprint.accept_prob fp y (Fingerprint.state fp x) in
      p >= -1e-12 && p <= 1. +. 1e-12)

let () =
  Alcotest.run "fingerprint"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "normalized" `Quick test_state_normalized;
          Alcotest.test_case "overlap matches dot" `Quick test_overlap_matches_dot;
          Alcotest.test_case "one-sided completeness" `Quick test_one_sided;
          Alcotest.test_case "soundness gap" `Quick test_soundness_gap;
          Alcotest.test_case "qubit accounting" `Quick test_qubit_accounting;
          Alcotest.test_case "logarithmic qubits" `Quick test_qubits_logarithmic;
          Alcotest.test_case "bot state" `Quick test_bot_state;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_overlap_range; prop_accept_prob_bounded ] );
    ]
