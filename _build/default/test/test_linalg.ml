(* Unit and property tests for the linear-algebra substrate. *)

open Qdp_linalg

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let rng = Random.State.make [| 0xacce5 |]

let gaussian st =
  let u1 = Float.max 1e-12 (Random.State.float st 1.) in
  let u2 = Random.State.float st 1. in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let random_vec st n =
  Vec.init n (fun _ -> Cx.make (gaussian st) (gaussian st))

let random_unit st n = Vec.normalize (random_vec st n)

let random_hermitian st n =
  let a = Mat.init n n (fun _ _ -> Cx.make (gaussian st) (gaussian st)) in
  Mat.scale (Cx.re 0.5) (Mat.add a (Mat.adjoint a))

(* --- Cx --- *)

let test_cx_basics () =
  Alcotest.(check bool) "i^2 = -1" true (Cx.is_close (Cx.mul Cx.i Cx.i) (Cx.re (-1.)));
  check_float "norm2" 25. (Cx.norm2 (Cx.make 3. 4.));
  Alcotest.(check bool) "exp_i pi = -1" true
    (Cx.is_close ~eps:1e-12 (Cx.exp_i Float.pi) (Cx.re (-1.)));
  Alcotest.(check bool) "conj" true
    (Cx.is_close (Cx.conj (Cx.make 1. 2.)) (Cx.make 1. (-2.)))

(* --- Vec --- *)

let test_vec_basis () =
  let v = Vec.basis 4 2 in
  check_float "norm of basis" 1. (Vec.norm v);
  Alcotest.(check bool) "entry" true (Cx.is_close (Vec.get v 2) Cx.one);
  Alcotest.check_raises "out of range" (Invalid_argument "Vec.basis: index out of range")
    (fun () -> ignore (Vec.basis 4 4))

let test_vec_dot_conjugate_symmetry () =
  let a = random_vec rng 8 and b = random_vec rng 8 in
  let ab = Vec.dot a b and ba = Vec.dot b a in
  Alcotest.(check bool) "<a|b> = conj <b|a>" true (Cx.is_close ab (Cx.conj ba))

let test_vec_dot_linear () =
  let a = random_vec rng 6 and b = random_vec rng 6 and c = random_vec rng 6 in
  let z = Cx.make 0.3 (-0.7) in
  let lhs = Vec.dot a (Vec.add (Vec.scale z b) c) in
  let rhs = Cx.add (Cx.mul z (Vec.dot a b)) (Vec.dot a c) in
  Alcotest.(check bool) "linearity in second argument" true
    (Cx.is_close ~eps:1e-8 lhs rhs)

let test_vec_tensor () =
  let a = Vec.of_array [| Cx.re 1.; Cx.re 2. |] in
  let b = Vec.of_array [| Cx.re 3.; Cx.re 4.; Cx.re 5. |] in
  let t = Vec.tensor a b in
  Alcotest.(check int) "dim" 6 (Vec.dim t);
  Alcotest.(check bool) "entry (1,2)" true
    (Cx.is_close (Vec.get t 5) (Cx.re 10.));
  (* norm multiplicativity *)
  check_float ~eps:1e-9 "norm multiplicative" (Vec.norm a *. Vec.norm b)
    (Vec.norm t)

let test_vec_axpy () =
  let x = random_vec rng 5 in
  let y = random_vec rng 5 in
  let y' = Vec.copy y in
  let alpha = Cx.make 2. (-1.) in
  Vec.axpy ~alpha x y';
  Alcotest.(check bool) "axpy = add scale" true
    (Vec.equal ~eps:1e-9 y' (Vec.add y (Vec.scale alpha x)))

let test_vec_normalize_zero () =
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec.normalize: zero vector")
    (fun () -> ignore (Vec.normalize (Vec.create 3)))

(* --- Mat --- *)

let test_mat_mul_identity () =
  let m = random_hermitian rng 5 in
  Alcotest.(check bool) "I m = m" true (Mat.equal (Mat.mul (Mat.identity 5) m) m);
  Alcotest.(check bool) "m I = m" true (Mat.equal (Mat.mul m (Mat.identity 5)) m)

let test_mat_adjoint_product () =
  let a = Mat.init 3 4 (fun _ _ -> Cx.make (gaussian rng) (gaussian rng)) in
  let b = Mat.init 4 2 (fun _ _ -> Cx.make (gaussian rng) (gaussian rng)) in
  let lhs = Mat.adjoint (Mat.mul a b) in
  let rhs = Mat.mul (Mat.adjoint b) (Mat.adjoint a) in
  Alcotest.(check bool) "(ab)^† = b^† a^†" true (Mat.equal ~eps:1e-8 lhs rhs)

let test_mat_trace_cyclic () =
  let a = random_hermitian rng 4 and b = random_hermitian rng 4 in
  let t1 = Mat.trace (Mat.mul a b) and t2 = Mat.trace (Mat.mul b a) in
  Alcotest.(check bool) "tr ab = tr ba" true (Cx.is_close ~eps:1e-8 t1 t2)

let test_mat_tensor_mixed_product () =
  let a = random_hermitian rng 2 and b = random_hermitian rng 3 in
  let c = random_hermitian rng 2 and d = random_hermitian rng 3 in
  let lhs = Mat.mul (Mat.tensor a b) (Mat.tensor c d) in
  let rhs = Mat.tensor (Mat.mul a c) (Mat.mul b d) in
  Alcotest.(check bool) "(a x b)(c x d) = ac x bd" true (Mat.equal ~eps:1e-7 lhs rhs)

let test_mat_swap_gate () =
  let s = Mat.swap_gate 3 in
  Alcotest.(check bool) "unitary" true (Mat.is_unitary s);
  Alcotest.(check bool) "involution" true
    (Mat.equal (Mat.mul s s) (Mat.identity 9));
  let a = random_unit rng 3 and b = random_unit rng 3 in
  let swapped = Mat.apply s (Vec.tensor a b) in
  Alcotest.(check bool) "swaps factors" true
    (Vec.equal ~eps:1e-9 swapped (Vec.tensor b a))

let test_mat_apply_vs_mul () =
  let m = random_hermitian rng 6 in
  let v = random_vec rng 6 in
  let via_apply = Mat.apply m v in
  let via_outer =
    (* m |v> read out of m (|v><e0|) applied to e0 *)
    Mat.mul m (Mat.outer v (Vec.basis 1 0))
  in
  let col = Vec.init 6 (fun i -> Mat.get via_outer i 0) in
  Alcotest.(check bool) "apply matches mul" true (Vec.equal ~eps:1e-8 via_apply col)

(* --- Eig --- *)

let test_eig_symmetric_reconstruct () =
  let n = 6 in
  let a =
    Array.init n (fun _ -> Array.init n (fun _ -> gaussian rng))
  in
  let sym = Array.init n (fun i -> Array.init n (fun j -> a.(i).(j) +. a.(j).(i))) in
  let evals, evecs = Eig.symmetric sym in
  (* eigenvector equations *)
  for k = 0 to n - 1 do
    let v = evecs.(k) in
    for i = 0 to n - 1 do
      let av = ref 0. in
      for j = 0 to n - 1 do
        av := !av +. (sym.(i).(j) *. v.(j))
      done;
      check_float ~eps:1e-7 "A v = lambda v" (evals.(k) *. v.(i)) !av
    done
  done;
  (* ascending order *)
  for k = 0 to n - 2 do
    Alcotest.(check bool) "sorted" true (evals.(k) <= evals.(k + 1) +. 1e-12)
  done

let test_eig_hermitian_reconstruct () =
  let n = 5 in
  let h = random_hermitian rng n in
  let evals, v = Eig.hermitian h in
  Alcotest.(check bool) "V unitary" true (Mat.is_unitary ~eps:1e-6 v);
  let d = Mat.init n n (fun i j -> if i = j then Cx.re evals.(i) else Cx.zero) in
  let recon = Mat.mul (Mat.mul v d) (Mat.adjoint v) in
  Alcotest.(check bool) "V D V^† = H" true (Mat.equal ~eps:1e-6 recon h)

let test_eig_trace_matches () =
  let h = random_hermitian rng 7 in
  let evals = Eig.eigenvalues_hermitian h in
  let sum = Array.fold_left ( +. ) 0. evals in
  check_float ~eps:1e-7 "sum eigenvalues = trace" (Mat.trace h).Complex.re sum

let test_sqrt_psd () =
  let n = 4 in
  let a = random_hermitian rng n in
  let psd = Mat.mul a (Mat.adjoint a) in
  let s = Eig.sqrt_psd psd in
  Alcotest.(check bool) "sqrt^2 = psd" true (Mat.equal ~eps:1e-6 (Mat.mul s s) psd);
  Alcotest.(check bool) "sqrt hermitian" true (Mat.is_hermitian ~eps:1e-7 s)

(* --- Subspace --- *)

let test_subspace_projection_idempotent () =
  let s = Subspace.random rng ~ambient:10 ~dim:3 in
  let v = Array.init 10 (fun _ -> gaussian rng) in
  let p = Subspace.project s v in
  let pp = Subspace.project s p in
  Array.iteri (fun i x -> check_float ~eps:1e-9 "P^2 = P" x pp.(i)) p

let test_subspace_distance_self () =
  let s = Subspace.random rng ~ambient:8 ~dim:2 in
  check_float ~eps:1e-6 "distance to self" 0. (Subspace.distance s s)

let test_subspace_distance_orthogonal () =
  let e i =
    let v = Array.make 6 0. in
    v.(i) <- 1.;
    v
  in
  let a = Subspace.of_spanning [ e 0; e 1 ] in
  let b = Subspace.of_spanning [ e 2; e 3 ] in
  check_float ~eps:1e-9 "orthogonal distance sqrt 2" (Float.sqrt 2.)
    (Subspace.distance a b)

let test_subspace_shared_direction () =
  let shared = Array.init 12 (fun _ -> gaussian rng) in
  let a = Subspace.of_spanning [ shared; Array.init 12 (fun _ -> gaussian rng) ] in
  let b = Subspace.of_spanning [ shared; Array.init 12 (fun _ -> gaussian rng) ] in
  check_float ~eps:1e-6 "common vector => distance 0" 0. (Subspace.distance a b)

let test_subspace_closest_vectors () =
  let a = Subspace.random rng ~ambient:9 ~dim:2 in
  let b = Subspace.random rng ~ambient:9 ~dim:2 in
  let v1, v2 = Subspace.closest_unit_vectors a b in
  Alcotest.(check bool) "v1 in a" true (Subspace.contains ~eps:1e-6 a v1);
  Alcotest.(check bool) "v2 in b" true (Subspace.contains ~eps:1e-6 b v2);
  let d = Subspace.distance a b in
  let norm_diff =
    Float.sqrt
      (Array.fold_left ( +. ) 0.
         (Array.mapi (fun i x -> (x -. v2.(i)) ** 2.) v1))
  in
  check_float ~eps:1e-5 "||v1 - v2|| = Delta" d norm_diff

(* --- qcheck properties --- *)

let prop_norm_scale =
  QCheck.Test.make ~name:"norm (z v) = |z| norm v" ~count:50
    QCheck.(triple (float_bound_exclusive 1.) (float_bound_exclusive 1.) small_nat)
    (fun (re, im, n) ->
      let n = max 1 (n mod 16) in
      let st = Random.State.make [| n; int_of_float (re *. 1e6) |] in
      let v = random_vec st n in
      let z = Cx.make re im in
      Float.abs (Vec.norm (Vec.scale z v) -. (Cx.abs z *. Vec.norm v)) < 1e-8)

let prop_cauchy_schwarz =
  QCheck.Test.make ~name:"|<a|b>| <= |a| |b|" ~count:100 QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 77 |] in
      let n = 1 + (seed mod 12) in
      let a = random_vec st n and b = random_vec st n in
      Cx.abs (Vec.dot a b) <= (Vec.norm a *. Vec.norm b) +. 1e-9)

let prop_trace_tensor =
  QCheck.Test.make ~name:"tr (a x b) = tr a * tr b" ~count:40 QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 78 |] in
      let a = random_hermitian st 3 and b = random_hermitian st 2 in
      let lhs = Mat.trace (Mat.tensor a b) in
      let rhs = Cx.mul (Mat.trace a) (Mat.trace b) in
      Cx.is_close ~eps:1e-8 lhs rhs)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_norm_scale; prop_cauchy_schwarz; prop_trace_tensor ]

let () =
  Alcotest.run "linalg"
    [
      ( "cx",
        [ Alcotest.test_case "basics" `Quick test_cx_basics ] );
      ( "vec",
        [
          Alcotest.test_case "basis" `Quick test_vec_basis;
          Alcotest.test_case "dot conjugate symmetry" `Quick
            test_vec_dot_conjugate_symmetry;
          Alcotest.test_case "dot linearity" `Quick test_vec_dot_linear;
          Alcotest.test_case "tensor" `Quick test_vec_tensor;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "normalize zero" `Quick test_vec_normalize_zero;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity" `Quick test_mat_mul_identity;
          Alcotest.test_case "adjoint of product" `Quick test_mat_adjoint_product;
          Alcotest.test_case "trace cyclic" `Quick test_mat_trace_cyclic;
          Alcotest.test_case "tensor mixed product" `Quick
            test_mat_tensor_mixed_product;
          Alcotest.test_case "swap gate" `Quick test_mat_swap_gate;
          Alcotest.test_case "apply vs mul" `Quick test_mat_apply_vs_mul;
        ] );
      ( "eig",
        [
          Alcotest.test_case "symmetric reconstruct" `Quick
            test_eig_symmetric_reconstruct;
          Alcotest.test_case "hermitian reconstruct" `Quick
            test_eig_hermitian_reconstruct;
          Alcotest.test_case "trace matches" `Quick test_eig_trace_matches;
          Alcotest.test_case "sqrt psd" `Quick test_sqrt_psd;
        ] );
      ( "subspace",
        [
          Alcotest.test_case "projection idempotent" `Quick
            test_subspace_projection_idempotent;
          Alcotest.test_case "distance to self" `Quick test_subspace_distance_self;
          Alcotest.test_case "orthogonal distance" `Quick
            test_subspace_distance_orthogonal;
          Alcotest.test_case "shared direction" `Quick
            test_subspace_shared_direction;
          Alcotest.test_case "closest vectors" `Quick test_subspace_closest_vectors;
        ] );
      ("properties", qcheck_cases);
    ]
