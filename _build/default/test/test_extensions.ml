(* Tests for the extension modules: weak Schur sampling, Schmidt
   decomposition, channels, the dQCMA / LOCC variants and the Section
   6.2 XOR-function instances. *)

open Qdp_linalg
open Qdp_quantum
open Qdp_codes
open Qdp_commcc
open Qdp_core

let rng = Random.State.make [| 0xe87 |]

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let gaussian st =
  let u1 = Float.max 1e-12 (Random.State.float st 1.) in
  let u2 = Random.State.float st 1. in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let random_unit st n =
  Vec.normalize (Vec.init n (fun _ -> Cx.make (gaussian st) (gaussian st)))

(* --- Schur / Murnaghan-Nakayama --- *)

let test_partitions () =
  Alcotest.(check int) "p(4) = 5" 5 (List.length (Schur.partitions 4));
  Alcotest.(check int) "p(6) = 11" 11 (List.length (Schur.partitions 6));
  Alcotest.(check (list (list int))) "partitions of 3"
    [ [ 3 ]; [ 2; 1 ]; [ 1; 1; 1 ] ]
    (Schur.partitions 3)

let test_cycle_type () =
  (* (0 1 2)(3 4) as an array *)
  let pi = [| 1; 2; 0; 4; 3 |] in
  Alcotest.(check (list int)) "cycle type" [ 3; 2 ] (Schur.cycle_type pi);
  Alcotest.(check (list int)) "identity" [ 1; 1; 1 ]
    (Schur.cycle_type [| 0; 1; 2 |])

let test_characters_s3 () =
  (* the full character table of S_3 *)
  let check lambda mu expected =
    Alcotest.(check int)
      (Format.asprintf "chi_%a(%a)" Schur.pp_partition lambda Schur.pp_partition
         mu)
      expected (Schur.character lambda mu)
  in
  check [ 3 ] [ 1; 1; 1 ] 1;
  check [ 3 ] [ 2; 1 ] 1;
  check [ 3 ] [ 3 ] 1;
  check [ 2; 1 ] [ 1; 1; 1 ] 2;
  check [ 2; 1 ] [ 2; 1 ] 0;
  check [ 2; 1 ] [ 3 ] (-1);
  check [ 1; 1; 1 ] [ 1; 1; 1 ] 1;
  check [ 1; 1; 1 ] [ 2; 1 ] (-1);
  check [ 1; 1; 1 ] [ 3 ] 1

let test_characters_s4_standard () =
  (* the standard irrep of S_4 has dimension 3 and chi(2,1,1) = 1 *)
  Alcotest.(check int) "dim [3,1]" 3 (Schur.dimension [ 3; 1 ]);
  Alcotest.(check int) "chi_{3,1}(2,1,1)" 1 (Schur.character [ 3; 1 ] [ 2; 1; 1 ]);
  Alcotest.(check int) "chi_{3,1}(4)" (-1) (Schur.character [ 3; 1 ] [ 4 ]);
  Alcotest.(check int) "chi_{2,2}(2,2)" 2 (Schur.character [ 2; 2 ] [ 2; 2 ])

let test_dimension_vs_hooks () =
  List.iter
    (fun k ->
      List.iter
        (fun lambda ->
          Alcotest.(check int)
            (Format.asprintf "dims agree for %a" Schur.pp_partition lambda)
            (Schur.hook_length_dimension lambda)
            (Schur.dimension lambda))
        (Schur.partitions k))
    [ 2; 3; 4; 5 ]

let test_sum_of_squared_dimensions () =
  (* sum d_lambda^2 = k! *)
  let fact k =
    let acc = ref 1 in
    for i = 2 to k do
      acc := !acc * i
    done;
    !acc
  in
  List.iter
    (fun k ->
      let total =
        List.fold_left
          (fun acc l ->
            let d = Schur.dimension l in
            acc + (d * d))
          0 (Schur.partitions k)
      in
      Alcotest.(check int) (Printf.sprintf "k = %d" k) (fact k) total)
    [ 2; 3; 4; 5 ]

let test_projectors_complete () =
  (* sum_lambda P_lambda = I on (C^2)^{x 3} *)
  let total =
    List.fold_left
      (fun acc lambda -> Mat.add acc (Schur.projector ~d:2 lambda))
      (Mat.create 8 8) (Schur.partitions 3)
  in
  Alcotest.(check bool) "resolution of identity" true
    (Mat.equal ~eps:1e-8 total (Mat.identity 8))

let test_projectors_orthogonal () =
  let p1 = Schur.projector ~d:2 [ 3 ] in
  let p2 = Schur.projector ~d:2 [ 2; 1 ] in
  Alcotest.(check bool) "P_a P_b = 0" true
    (Mat.equal ~eps:1e-8 (Mat.mul p1 p2) (Mat.create 8 8));
  Alcotest.(check bool) "P idempotent" true
    (Mat.equal ~eps:1e-8 (Mat.mul p1 p1) p1)

let test_trivial_projector_is_symmetric_subspace () =
  let via_schur = Schur.projector ~d:2 [ 3 ] in
  let via_sym = Symmetric.projector ~d:2 ~k:3 in
  Alcotest.(check bool) "P_(k) = Pi_sym" true (Mat.equal ~eps:1e-8 via_schur via_sym)

let test_character_orthogonality () =
  (* first orthogonality: sum_mu |C_mu| chi_l(mu) chi_l'(mu) = k! d_{ll'} *)
  let fact k =
    let acc = ref 1 in
    for i = 2 to k do
      acc := !acc * i
    done;
    !acc
  in
  let class_size k mu =
    (* k! / z_mu with z_mu = prod_i i^{m_i} m_i! *)
    let z = ref 1 in
    let counts = Hashtbl.create 4 in
    List.iter
      (fun part ->
        Hashtbl.replace counts part
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts part)))
      mu;
    Hashtbl.iter
      (fun part m ->
        for _ = 1 to m do
          z := !z * part
        done;
        z := !z * fact m)
      counts;
    fact k / !z
  in
  List.iter
    (fun k ->
      let parts = Schur.partitions k in
      List.iter
        (fun l1 ->
          List.iter
            (fun l2 ->
              let total =
                List.fold_left
                  (fun acc mu ->
                    acc
                    + (class_size k mu * Schur.character l1 mu
                     * Schur.character l2 mu))
                  0 parts
              in
              let expected = if l1 = l2 then fact k else 0 in
              Alcotest.(check int)
                (Format.asprintf "orthogonality %a %a" Schur.pp_partition l1
                   Schur.pp_partition l2)
                expected total)
            parts)
        parts)
    [ 3; 4; 5 ]

let test_outcome_distribution () =
  let psi = Vec.tensor_list [ random_unit rng 2; random_unit rng 2; random_unit rng 2 ] in
  let dist = Schur.outcome_distribution ~d:2 ~k:3 (Mat.of_vec psi) in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. dist in
  check_float ~eps:1e-8 "probabilities sum to 1" 1. total;
  List.iter
    (fun (lambda, p) ->
      Alcotest.(check bool)
        (Format.asprintf "P[%a] >= 0" Schur.pp_partition lambda)
        true (p >= -1e-9))
    dist;
  (* the antisymmetric outcome is impossible for d = 2, k = 3 *)
  let p_anti = List.assoc [ 1; 1; 1 ] dist in
  check_float ~eps:1e-8 "antisymmetric outcome impossible (d < k)" 0. p_anti

(* --- Schmidt --- *)

let test_schmidt_product_state () =
  let a = random_unit rng 3 and b = random_unit rng 4 in
  let dec = Schmidt.decompose ~d_a:3 ~d_b:4 (Vec.tensor a b) in
  Alcotest.(check int) "rank 1" 1 (Schmidt.schmidt_rank dec);
  check_float ~eps:1e-7 "top coefficient 1" 1. dec.Schmidt.coefficients.(0);
  check_float ~eps:1e-7 "zero entropy" 0. (Schmidt.entanglement_entropy dec)

let test_schmidt_bell_state () =
  let bell =
    Vec.normalize (Vec.of_array [| Cx.one; Cx.zero; Cx.zero; Cx.one |])
  in
  let dec = Schmidt.decompose ~d_a:2 ~d_b:2 bell in
  Alcotest.(check int) "rank 2" 2 (Schmidt.schmidt_rank dec);
  check_float ~eps:1e-7 "entropy 1 bit" 1. (Schmidt.entanglement_entropy dec);
  check_float ~eps:1e-7 "balanced coefficients" (1. /. Float.sqrt 2.)
    dec.Schmidt.coefficients.(0)

let test_schmidt_reconstruct () =
  for trial = 0 to 3 do
    let st = Random.State.make [| trial; 0x5c |] in
    let psi = random_unit st 12 in
    let dec = Schmidt.decompose ~d_a:3 ~d_b:4 psi in
    let back = Schmidt.reconstruct ~d_a:3 ~d_b:4 dec in
    (* equality up to global phase: |<psi|back>| = 1 *)
    check_float ~eps:1e-6
      (Printf.sprintf "trial %d overlap" trial)
      1.
      (Cx.abs (Vec.dot psi back))
  done

let test_schmidt_coefficients_normalized () =
  let psi = random_unit rng 8 in
  let dec = Schmidt.decompose ~d_a:2 ~d_b:4 psi in
  let s2 =
    Array.fold_left (fun acc c -> acc +. (c *. c)) 0. dec.Schmidt.coefficients
  in
  check_float ~eps:1e-7 "sum c^2 = 1" 1. s2

let prop_schmidt_entropy_bounded =
  QCheck.Test.make ~name:"entanglement entropy <= log2 min(da, db)" ~count:40
    QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 0x5e |] in
      let psi = random_unit st 12 in
      let dec = Schmidt.decompose ~d_a:3 ~d_b:4 psi in
      Schmidt.entanglement_entropy dec
      <= (Float.log 3. /. Float.log 2.) +. 1e-9)

let prop_schmidt_rank_bounded =
  QCheck.Test.make ~name:"schmidt rank <= min(da, db)" ~count:40
    QCheck.small_nat
    (fun seed ->
      let st = Random.State.make [| seed; 0x5f |] in
      let psi = random_unit st 8 in
      let dec = Schmidt.decompose ~d_a:2 ~d_b:4 psi in
      Schmidt.schmidt_rank dec <= 2)

(* --- Channels --- *)

let test_channel_unitary_tp () =
  Alcotest.(check bool) "unitary channel TP" true
    (Channel.is_trace_preserving (Channel.unitary Gates.hadamard));
  Alcotest.(check bool) "dephase TP" true
    (Channel.is_trace_preserving (Channel.dephase 4));
  Alcotest.(check bool) "symmetrization TP" true
    (Channel.is_trace_preserving (Channel.symmetrization 2))

let test_channel_symmetrization_action () =
  let a = random_unit rng 2 and b = random_unit rng 2 in
  let rho = Mat.of_vec (Vec.tensor a b) in
  let out = Channel.apply (Channel.symmetrization 2) rho in
  let swap = Mat.swap_gate 2 in
  let expected =
    Mat.scale (Cx.re 0.5)
      (Mat.add rho (Mat.mul (Mat.mul swap rho) (Mat.adjoint swap)))
  in
  Alcotest.(check bool) "(rho + S rho S)/2" true (Mat.equal ~eps:1e-8 out expected)

let test_channel_contractivity () =
  (* Fact 4: trace distance contracts under channels *)
  let channels =
    [
      Channel.dephase 4;
      Channel.mix 0.3 (Channel.unitary (Mat.swap_gate 2)) (Channel.identity 4);
      Channel.symmetrization 2;
    ]
  in
  for trial = 0 to 2 do
    let st = Random.State.make [| trial; 0xfa |] in
    let rho = Mat.of_vec (random_unit st 4) in
    let sigma = Mat.of_vec (random_unit st 4) in
    let d0 = Distance.trace_distance rho sigma in
    List.iter
      (fun ch ->
        let d1 =
          Distance.trace_distance (Channel.apply ch rho) (Channel.apply ch sigma)
        in
        Alcotest.(check bool) "contractive" true (d1 <= d0 +. 1e-7))
      channels
  done

let test_channel_dephase_kills_coherence () =
  let plus = Vec.normalize (Vec.of_array [| Cx.one; Cx.one |]) in
  let out = Channel.apply (Channel.dephase 2) (Mat.of_vec plus) in
  Alcotest.(check bool) "off-diagonals gone" true
    (Mat.equal ~eps:1e-9 out (Mat.scale (Cx.re 0.5) (Mat.identity 2)))

let test_channel_compose_tensor () =
  let ch = Channel.compose (Channel.dephase 2) (Channel.unitary Gates.hadamard) in
  Alcotest.(check bool) "composition TP" true (Channel.is_trace_preserving ch);
  let t = Channel.tensor (Channel.dephase 2) (Channel.identity 2) in
  Alcotest.(check bool) "tensor TP" true (Channel.is_trace_preserving t)

(* --- dQCMA variant --- *)

let distinct_pair st n =
  let x = Gf2.random st n in
  let rec other () =
    let y = Gf2.random st n in
    if Gf2.equal x y then other () else y
  in
  (x, other ())

let test_dqcma_completeness () =
  let p = Variants.make ~repetitions:3 ~seed:1 ~n:24 ~r:5 () in
  let x = Gf2.random rng 24 in
  check_float ~eps:1e-12 "complete" 1.
    (Variants.accept p x (Gf2.copy x) Variants.Honest_strings)

let test_dqcma_soundness () =
  let p = Variants.make ~repetitions:1 ~seed:2 ~n:24 ~r:5 () in
  let x, y = distinct_pair rng 24 in
  let best, name = Variants.best_attack_accept p x y in
  Alcotest.(check bool)
    (Printf.sprintf "attack %.4f (%s) < 1" best name)
    true (best < 0.99)

let test_dqcma_attack_weaker_than_dqma () =
  (* classical strings cannot interpolate: the dQCMA attack is no
     stronger than dQMA's geodesic *)
  let n = 24 and r = 8 in
  let x, y = distinct_pair rng n in
  let vp = Variants.make ~repetitions:1 ~seed:3 ~n ~r () in
  let qp = Eq_path.make ~repetitions:1 ~seed:3 ~n ~r () in
  let dqcma, _ = Variants.best_attack_accept vp x y in
  let dqma, _ = Eq_path.best_attack_accept qp x y in
  Alcotest.(check bool)
    (Printf.sprintf "dqcma %.4f <= dqma %.4f" dqcma dqma)
    true (dqcma <= dqma +. 1e-9)

let test_dqcma_costs_linear_in_n () =
  let c n =
    (Variants.costs (Variants.make ~repetitions:1 ~seed:4 ~n ~r:4 ())).Report
    .local_proof_qubits
  in
  Alcotest.(check int) "classical proof = n bits" 64 (c 64);
  Alcotest.(check int) "doubles with n" 128 (c 128)

let test_locc_transform () =
  let base =
    {
      Report.local_proof_qubits = 10;
      total_proof_qubits = 50;
      local_message_qubits = 4;
      total_message_qubits = 20;
      rounds = 1;
    }
  in
  let out = Variants.locc_transform base ~d_max:3 in
  Alcotest.(check int) "local proof s_c + d s_m s_tm" (10 + (3 * 4 * 20))
    out.Report.local_proof_qubits;
  Alcotest.(check int) "local message s_m s_tm" (4 * 20)
    out.Report.local_message_qubits

(* --- XOR functions --- *)

let test_ltf_matches_predicate () =
  let weights = [| 3; 1; 2; 5 |] in
  let proto = Xor_functions.ltf ~seed:5 ~weights ~theta:4 in
  let x = Gf2.of_string "1010" and y = Gf2.of_string "0010" in
  (* weighted xor distance = 3 <= 4 *)
  Alcotest.(check bool) "predicate yes" true (proto.Oneway.problem.Problems.f x y);
  check_float ~eps:1e-9 "one-sided completeness" 1.
    (Oneway.accept_on_inputs proto x y);
  let z = Gf2.of_string "0101" in
  (* distance from x = 3+1+2+5 = 11 > 4 *)
  Alcotest.(check bool) "predicate no" false (proto.Oneway.problem.Problems.f x z)

let test_hypercube_protocol () =
  let proto = Xor_functions.hypercube_distance ~seed:6 ~bits:32 ~d:2 in
  let st = Random.State.make [| 0x4c |] in
  let u = Gf2.random st 32 in
  let v = Gf2.xor u (Gf2.random_weight st 32 2) in
  check_float ~eps:1e-9 "distance 2 accepted" 1. (Oneway.accept_on_inputs proto u v);
  let far = Gf2.xor u (Gf2.random_weight st 32 20) in
  Alcotest.(check bool) "far vertices rejected mostly" true
    (Oneway.accept_on_inputs (Oneway.repeat 9 proto) u far < 0.3)

let test_hamming_graph_encoding () =
  let v1 = Xor_functions.encode_hamming_vertex ~coords:4 ~alphabet:5 [| 0; 3; 2; 4 |] in
  let v2 = Xor_functions.encode_hamming_vertex ~coords:4 ~alphabet:5 [| 0; 1; 2; 4 |] in
  let proto = Xor_functions.hamming_graph_distance ~seed:7 ~coords:4 ~alphabet:5 ~d:1 in
  Alcotest.(check bool) "graph distance 1" true
    (proto.Oneway.problem.Problems.f v1 v2);
  check_float ~eps:1e-9 "accepted" 1. (Oneway.accept_on_inputs proto v1 v2);
  let v3 = Xor_functions.encode_hamming_vertex ~coords:4 ~alphabet:5 [| 1; 1; 3; 0 |] in
  Alcotest.(check bool) "graph distance 4 > 1" false
    (proto.Oneway.problem.Problems.f v1 v3)

let test_l1_protocol () =
  let resolution = 16 and coords = 3 in
  let proto = Xor_functions.l1_distance ~seed:8 ~coords ~resolution ~d:0.5 in
  let e v = Oneway.thermometer ~resolution v in
  let a = e [| 0.25; -0.5; 0.75 |] in
  let b = e [| 0.25; -0.375; 0.75 |] in
  (* l1 distance 0.125 <= 0.5 *)
  check_float ~eps:1e-9 "close vectors accepted" 1.
    (Oneway.accept_on_inputs proto a b);
  let c = e [| -0.75; 0.5; -0.25 |] in
  Alcotest.(check bool) "far vectors are a no instance" false
    (proto.Oneway.problem.Problems.f a c)

let test_xor_compiled_to_dqma () =
  (* plug an LTF protocol into the Theorem 32 compiler *)
  let module G = Qdp_network.Graph in
  let weights = Array.make 24 1 in
  let proto = Xor_functions.ltf ~seed:9 ~weights ~theta:2 in
  let g = G.star 3 in
  let terminals = [ 1; 2; 3 ] in
  let params =
    Oneway_compiler.make ~repetitions:1 ~amplification:1 ~r:2 ~t:3 ~n:24 ()
  in
  let st = Random.State.make [| 0x4d |] in
  let x = Gf2.random st 24 in
  let inputs =
    Array.init 3 (fun i ->
        if i = 0 then Gf2.copy x else Gf2.xor x (Gf2.random_weight st 24 1))
  in
  check_float ~eps:1e-9 "compiled LTF completeness" 1.
    (Oneway_compiler.single_accept params proto g ~terminals ~inputs
       Oneway_compiler.Honest)

let () =
  Alcotest.run "extensions"
    [
      ( "schur",
        [
          Alcotest.test_case "partitions" `Quick test_partitions;
          Alcotest.test_case "cycle type" `Quick test_cycle_type;
          Alcotest.test_case "S3 character table" `Quick test_characters_s3;
          Alcotest.test_case "S4 characters" `Quick test_characters_s4_standard;
          Alcotest.test_case "dimension vs hooks" `Quick test_dimension_vs_hooks;
          Alcotest.test_case "sum d^2 = k!" `Quick test_sum_of_squared_dimensions;
          Alcotest.test_case "projectors complete" `Quick test_projectors_complete;
          Alcotest.test_case "projectors orthogonal" `Quick
            test_projectors_orthogonal;
          Alcotest.test_case "trivial = symmetric" `Quick
            test_trivial_projector_is_symmetric_subspace;
          Alcotest.test_case "character orthogonality" `Quick
            test_character_orthogonality;
          Alcotest.test_case "outcome distribution" `Quick test_outcome_distribution;
        ] );
      ( "schmidt",
        [
          QCheck_alcotest.to_alcotest prop_schmidt_entropy_bounded;
          QCheck_alcotest.to_alcotest prop_schmidt_rank_bounded;
          Alcotest.test_case "product state" `Quick test_schmidt_product_state;
          Alcotest.test_case "bell state" `Quick test_schmidt_bell_state;
          Alcotest.test_case "reconstruct" `Quick test_schmidt_reconstruct;
          Alcotest.test_case "normalized" `Quick test_schmidt_coefficients_normalized;
        ] );
      ( "channel",
        [
          Alcotest.test_case "trace preserving" `Quick test_channel_unitary_tp;
          Alcotest.test_case "symmetrization action" `Quick
            test_channel_symmetrization_action;
          Alcotest.test_case "contractivity (Fact 4)" `Quick
            test_channel_contractivity;
          Alcotest.test_case "dephasing" `Quick test_channel_dephase_kills_coherence;
          Alcotest.test_case "compose & tensor" `Quick test_channel_compose_tensor;
        ] );
      ( "dqcma",
        [
          Alcotest.test_case "completeness" `Quick test_dqcma_completeness;
          Alcotest.test_case "soundness" `Quick test_dqcma_soundness;
          Alcotest.test_case "weaker attacks than dQMA" `Quick
            test_dqcma_attack_weaker_than_dqma;
          Alcotest.test_case "linear costs" `Quick test_dqcma_costs_linear_in_n;
          Alcotest.test_case "LOCC transform" `Quick test_locc_transform;
        ] );
      ( "xor_functions",
        [
          Alcotest.test_case "LTF" `Quick test_ltf_matches_predicate;
          Alcotest.test_case "hypercube" `Quick test_hypercube_protocol;
          Alcotest.test_case "hamming graph" `Quick test_hamming_graph_encoding;
          Alcotest.test_case "l1 vectors" `Quick test_l1_protocol;
          Alcotest.test_case "compiled to dQMA" `Quick test_xor_compiled_to_dqma;
        ] );
    ]
