(* Tests of the executable lower-bound arguments. *)

open Qdp_codes
open Qdp_core

let rng = Random.State.make [| 0x10b |]

let test_truncation_complete () =
  let proto = Lower_bounds.truncation_protocol ~n:12 ~r:6 ~c:5 in
  let x = Gf2.random rng 12 in
  let proofs = proto.Lower_bounds.honest_proofs x in
  Alcotest.(check bool) "honest accepted" true
    (proto.Lower_bounds.dma_accepts ~x ~y:(Gf2.copy x) ~proofs)

let test_truncation_splice_found () =
  (* 5-bit digests over 2^6 fooling inputs must collide *)
  let proto = Lower_bounds.truncation_protocol ~n:12 ~r:6 ~c:5 in
  match Lower_bounds.fooling_splice proto ~n:12 ~limit:64 with
  | None -> Alcotest.fail "expected a collision"
  | Some s ->
      Alcotest.(check bool) "x <> y" false
        (Gf2.equal s.Lower_bounds.splice_x s.Lower_bounds.splice_y);
      Alcotest.(check bool) "soundness broken" true
        (Lower_bounds.splice_breaks_soundness proto s)

let test_hash_splice_found () =
  let proto = Lower_bounds.hash_protocol ~seed:5 ~n:16 ~r:8 ~c:4 in
  (* 4-bit hashes: a collision within 17 fooling inputs by pigeonhole *)
  match Lower_bounds.fooling_splice proto ~n:16 ~limit:64 with
  | None -> Alcotest.fail "expected a hash collision"
  | Some s ->
      Alcotest.(check bool) "soundness broken" true
        (Lower_bounds.splice_breaks_soundness proto s)

let test_large_proof_resists () =
  (* with c = n the truncation protocol is simply sound: no splice
     exists among distinct inputs because digests are injective *)
  let proto = Lower_bounds.truncation_protocol ~n:10 ~r:6 ~c:10 in
  Alcotest.(check bool) "no collision with full proofs" true
    (Lower_bounds.fooling_splice proto ~n:10 ~limit:1024 = None)

let test_splice_respects_proof_budget () =
  (* the attack only exists because the digest is much shorter than
     log2 (number of fooling inputs); a 30-bit hash over 64 inputs has
     no birthday collision *)
  let proto = Lower_bounds.hash_protocol ~seed:6 ~n:10 ~r:4 ~c:30 in
  Alcotest.(check bool) "wide digests: no collision" true
    (Lower_bounds.fooling_splice proto ~n:10 ~limit:64 = None)

(* --- state counting (Lemma 48 / Claim 49) --- *)

let test_random_packing_overlap_grows () =
  let st = Random.State.make [| 0x99 |] in
  let few_qubits =
    Lower_bounds.max_pairwise_overlap_random st ~qubits:1 ~count:32
  in
  let st2 = Random.State.make [| 0x99 |] in
  let more_qubits =
    Lower_bounds.max_pairwise_overlap_random st2 ~qubits:5 ~count:32
  in
  Alcotest.(check bool)
    (Printf.sprintf "1 qubit: %.3f; 5 qubits: %.3f" few_qubits more_qubits)
    true
    (few_qubits > 0.95 && more_qubits < few_qubits)

let test_fingerprint_family_overlap_bounded () =
  let ov = Lower_bounds.fingerprint_family_max_overlap ~seed:7 ~n:8 in
  Alcotest.(check bool)
    (Printf.sprintf "max overlap %.3f < 0.8" ov)
    true (ov < 0.8)

(* --- proof-free gap (Lemma 53) --- *)

let test_gap_splice_fools () =
  let x = Gf2.random rng 16 in
  let y =
    let rec go () =
      let y = Gf2.random rng 16 in
      if Gf2.equal x y then go () else y
    in
    go ()
  in
  let accept = Lower_bounds.gap_splice_accept ~seed:8 ~n:16 ~r:8 ~gap:4 x y in
  Alcotest.(check (float 1e-9)) "marginal splice accepted" 1. accept

let test_gap_bounds_check () =
  Alcotest.(check bool) "bad gap raises" true
    (try
       ignore
         (Lower_bounds.gap_splice_accept ~seed:8 ~n:8 ~r:4 ~gap:3
            (Gf2.zero 8) (Gf2.zero 8));
       false
     with Invalid_argument _ -> true)

(* --- closed forms --- *)

let test_formulas () =
  Alcotest.(check (float 1e-9)) "thm51" 40.
    (Lower_bounds.thm51_total_bound ~r:8 ~n:32);
  Alcotest.(check (float 1e-9)) "cor55" 12. (Lower_bounds.cor55_bound ~r:12);
  Alcotest.(check bool) "thm56 grows with n" true
    (Lower_bounds.thm56_bound ~n:65536 ~eps:0.01
    > Lower_bounds.thm56_bound ~n:16 ~eps:0.01);
  Alcotest.(check bool) "thm52 shrinks with r" true
    (Lower_bounds.thm52_bound ~r:16 ~n:1024 ~eps:0.01 ~eps':0.01
    < Lower_bounds.thm52_bound ~r:2 ~n:1024 ~eps:0.01 ~eps':0.01)

let test_fooling_set_vs_bound_consistency () =
  (* EQ's fooling set size drives the bounds: log2 |S| = n *)
  match Qdp_commcc.Fooling.log2_fooling_size (Qdp_commcc.Problems.eq 24) with
  | Some v -> Alcotest.(check (float 1e-9)) "log2 2^n" 24. v
  | None -> Alcotest.fail "EQ must have a fooling set"

let () =
  Alcotest.run "lower_bounds"
    [
      ( "dma_fooling",
        [
          Alcotest.test_case "truncation complete" `Quick test_truncation_complete;
          Alcotest.test_case "truncation splice" `Quick test_truncation_splice_found;
          Alcotest.test_case "hash splice" `Quick test_hash_splice_found;
          Alcotest.test_case "full proofs resist" `Quick test_large_proof_resists;
          Alcotest.test_case "budget boundary" `Quick
            test_splice_respects_proof_budget;
        ] );
      ( "state_counting",
        [
          Alcotest.test_case "packing overlap" `Quick
            test_random_packing_overlap_grows;
          Alcotest.test_case "fingerprint family" `Quick
            test_fingerprint_family_overlap_bounded;
        ] );
      ( "gap_splice",
        [
          Alcotest.test_case "fooled" `Quick test_gap_splice_fools;
          Alcotest.test_case "bounds" `Quick test_gap_bounds_check;
        ] );
      ( "formulas",
        [
          Alcotest.test_case "closed forms" `Quick test_formulas;
          Alcotest.test_case "fooling size" `Quick
            test_fooling_set_vs_bound_consistency;
        ] );
    ]
