test/test_runtime_protocols.ml: Alcotest Array Channel Cx Density Float Gf2 Gt List Mat Printf Qdp_codes Qdp_core Qdp_linalg Qdp_network Qdp_quantum Random Report Rpls Runtime_dma Runtime_gt Sim Vec
