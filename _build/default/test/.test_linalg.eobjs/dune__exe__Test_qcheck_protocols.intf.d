test/test_qcheck_protocols.mli:
