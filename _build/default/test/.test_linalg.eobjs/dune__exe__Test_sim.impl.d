test/test_sim.ml: Alcotest Array Cx Eq_path Exact Float List Oneway Printf Qdp_commcc Qdp_core Qdp_linalg Qdp_network Random Sim Vec
