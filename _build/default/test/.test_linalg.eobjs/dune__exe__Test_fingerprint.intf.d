test/test_fingerprint.mli:
