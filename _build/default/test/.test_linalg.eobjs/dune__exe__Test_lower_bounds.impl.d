test/test_lower_bounds.ml: Alcotest Gf2 Lower_bounds Printf Qdp_codes Qdp_commcc Qdp_core Random
