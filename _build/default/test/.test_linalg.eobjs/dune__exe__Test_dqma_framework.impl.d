test/test_dqma_framework.ml: Alcotest Array Dqma Eq_path Eq_tree Format Gf2 Graph Gt List Qdp_codes Qdp_core Qdp_network Random Report Sim
