test/test_lower_bounds.mli:
