test/test_runtime_protocols.mli:
