test/test_commcc.ml: Alcotest Cx Discrepancy Float Fooling Gf2 List Lsd Oneway Printf Problems QCheck QCheck_alcotest Qdp_codes Qdp_commcc Qdp_linalg Qma_comm Random Smp Subspace
