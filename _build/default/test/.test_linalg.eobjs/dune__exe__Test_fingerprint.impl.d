test/test_fingerprint.ml: Alcotest Complex Fingerprint Gf2 List Printf QCheck QCheck_alcotest Qdp_codes Qdp_fingerprint Qdp_linalg Random Vec
