test/test_sep_sim.ml: Alcotest Array Cx Exact Mat Printf Qdp_core Qdp_linalg Random Sep_sim Sim States Vec
