test/test_star_and_sets.mli:
