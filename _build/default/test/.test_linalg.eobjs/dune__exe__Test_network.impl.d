test/test_network.ml: Alcotest Array Float Graph List Printf Qdp_network Random Runtime Spanning_tree String
