test/test_edge_cases.ml: Alcotest Eq_path Eq_tree Float Gf2 Graph Gt Oneway_compiler Printf Qdp_codes Qdp_commcc Qdp_core Qdp_network Random Relay Report Rv Set_eq Sim Spanning_tree
