test/test_commcc.mli:
