test/test_quantum.ml: Alcotest Array Complex Cx Density Distance Float Gates List Mat Permutation_test Povm Printf Pure Qdp_linalg Qdp_quantum Random Swap_test Symmetric Vec
