test/test_codes.ml: Alcotest Gf2 Linear_code List Printf QCheck QCheck_alcotest Qdp_codes Random
