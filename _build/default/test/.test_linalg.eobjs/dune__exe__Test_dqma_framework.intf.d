test/test_dqma_framework.mli:
