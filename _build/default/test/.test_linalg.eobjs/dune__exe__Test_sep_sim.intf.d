test/test_sep_sim.mli:
