test/test_linalg.ml: Alcotest Array Complex Cx Eig Float List Mat QCheck QCheck_alcotest Qdp_linalg Random Subspace Vec
