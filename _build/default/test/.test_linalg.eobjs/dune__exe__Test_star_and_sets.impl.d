test/test_star_and_sets.ml: Alcotest Array Cx Eq_path Exact Float Gf2 List Printf Qdp_codes Qdp_core Qdp_linalg Qdp_network Random Report Set_eq Sim Vec
