(* Tests for the quantum substrate: gates, symmetric subspace, SWAP and
   permutation tests, the register state-vector simulator, density
   operators and distance measures. *)

open Qdp_linalg
open Qdp_quantum

let rng = Random.State.make [| 0x9a17 |]

let gaussian st =
  let u1 = Float.max 1e-12 (Random.State.float st 1.) in
  let u2 = Random.State.float st 1. in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let random_unit st n =
  Vec.normalize (Vec.init n (fun _ -> Cx.make (gaussian st) (gaussian st)))

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- gates --- *)

let test_gates_unitary () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " unitary") true (Mat.is_unitary g))
    [
      ("hadamard", Gates.hadamard);
      ("pauli_x", Gates.pauli_x);
      ("pauli_y", Gates.pauli_y);
      ("pauli_z", Gates.pauli_z);
      ("phase", Gates.phase 0.7);
      ("rotation_y", Gates.rotation_y 1.1);
      ("cnot", Gates.cnot);
      ("cswap 2", Gates.cswap 2);
      ("cswap 3", Gates.cswap 3);
    ]

let test_hadamard_plus () =
  let plus = Mat.apply Gates.hadamard (Vec.basis 2 0) in
  check_float "amp 0" (1. /. Float.sqrt 2.) (Vec.get plus 0).Complex.re;
  check_float "amp 1" (1. /. Float.sqrt 2.) (Vec.get plus 1).Complex.re

let test_cswap_action () =
  let a = random_unit rng 2 and b = random_unit rng 2 in
  (* control = |1>: swap happens *)
  let input = Vec.tensor (Vec.basis 2 1) (Vec.tensor a b) in
  let out = Mat.apply (Gates.cswap 2) input in
  let expected = Vec.tensor (Vec.basis 2 1) (Vec.tensor b a) in
  Alcotest.(check bool) "controlled swap" true (Vec.equal ~eps:1e-9 out expected)

(* --- symmetric group machinery --- *)

let test_permutations_count () =
  Alcotest.(check int) "3! perms" 6 (List.length (Symmetric.permutations 3));
  Alcotest.(check int) "4! perms" 24 (List.length (Symmetric.permutations 4))

let test_u_pi_unitary () =
  List.iter
    (fun pi ->
      Alcotest.(check bool) "U_pi unitary" true
        (Mat.is_unitary (Symmetric.u_pi ~d:2 pi)))
    (Symmetric.permutations 3)

let test_u_pi_composition () =
  let perms = Symmetric.permutations 3 in
  let p = List.nth perms 1 and q = List.nth perms 4 in
  let lhs = Mat.mul (Symmetric.u_pi ~d:2 p) (Symmetric.u_pi ~d:2 q) in
  let rhs = Symmetric.u_pi ~d:2 (Symmetric.compose p q) in
  Alcotest.(check bool) "U_p U_q = U_{pq}" true (Mat.equal ~eps:1e-9 lhs rhs)

let test_projector_is_projector () =
  let p = Symmetric.projector ~d:2 ~k:3 in
  Alcotest.(check bool) "hermitian" true (Mat.is_hermitian p);
  Alcotest.(check bool) "idempotent" true (Mat.equal ~eps:1e-9 (Mat.mul p p) p)

let test_symmetric_subspace_dimension () =
  List.iter
    (fun (d, k) ->
      let p = Symmetric.projector ~d ~k in
      let tr = (Mat.trace p).Complex.re in
      check_float ~eps:1e-7
        (Printf.sprintf "tr Pi_sym (d=%d,k=%d)" d k)
        (float_of_int (Symmetric.subspace_dimension ~d ~k))
        tr)
    [ (2, 2); (2, 3); (3, 2); (2, 4); (3, 3) ]

let test_apply_projector_agrees () =
  let d = 2 and k = 3 in
  let v = random_unit rng (1 lsl 3) in
  let via_mat = Mat.apply (Symmetric.projector ~d ~k) v in
  let via_fn = Symmetric.apply_projector ~d ~k v in
  Alcotest.(check bool) "apply_projector = projector" true
    (Vec.equal ~eps:1e-9 via_mat via_fn)

(* --- SWAP test --- *)

let test_swap_product_formula () =
  let a = random_unit rng 4 and b = random_unit rng 4 in
  let psi = Vec.tensor a b in
  let p_formula = Swap_test.accept_prob_product a b in
  let p_proj = Swap_test.accept_prob_pure psi in
  let p_circuit = Swap_test.circuit_accept_prob psi in
  check_float ~eps:1e-9 "projector = product formula" p_formula p_proj;
  check_float ~eps:1e-9 "circuit = product formula" p_formula p_circuit

let test_swap_identical_accepts () =
  let a = random_unit rng 8 in
  check_float ~eps:1e-9 "identical states accept" 1.
    (Swap_test.accept_prob_product a a)

let test_swap_entangled_state () =
  (* the antisymmetric Bell state is rejected with probability 1 *)
  let singlet =
    Vec.normalize
      (Vec.of_array [| Cx.zero; Cx.one; Cx.re (-1.); Cx.zero |])
  in
  check_float ~eps:1e-9 "singlet rejected" 0. (Swap_test.accept_prob_pure singlet);
  let triplet = Vec.normalize (Vec.of_array [| Cx.zero; Cx.one; Cx.one; Cx.zero |]) in
  check_float ~eps:1e-9 "triplet accepted" 1. (Swap_test.accept_prob_pure triplet)

let test_swap_density () =
  let a = random_unit rng 2 and b = random_unit rng 2 in
  let rho = Mat.of_vec (Vec.tensor a b) in
  check_float ~eps:1e-9 "density agrees with product"
    (Swap_test.accept_prob_product a b)
    (Swap_test.accept_prob_density rho)

let test_swap_lemma14 () =
  (* Lemma 14: acceptance 1 - eps bounds the reduced-state distance *)
  let a = random_unit rng 4 and b = random_unit rng 4 in
  let eps = 1. -. Swap_test.accept_prob_product a b in
  let d = Distance.trace_distance (Mat.of_vec a) (Mat.of_vec b) in
  Alcotest.(check bool) "D <= 2 sqrt eps + eps" true
    (d <= (2. *. Float.sqrt eps) +. eps +. 1e-9)

(* --- permutation test --- *)

let test_perm_test_matches_swap () =
  let a = random_unit rng 2 and b = random_unit rng 2 in
  check_float ~eps:1e-9 "k=2 permutation test = SWAP test"
    (Swap_test.accept_prob_product a b)
    (Permutation_test.accept_prob_product [ a; b ])

let test_perm_test_identical () =
  let a = random_unit rng 4 in
  check_float ~eps:1e-9 "k copies accepted" 1.
    (Permutation_test.accept_prob_product [ a; a; a ])

let test_perm_test_product_vs_projector () =
  let states = List.init 3 (fun _ -> random_unit rng 2) in
  let joint = Vec.tensor_list states in
  check_float ~eps:1e-9 "product formula = projector"
    (Permutation_test.accept_prob_pure ~d:2 ~k:3 joint)
    (Permutation_test.accept_prob_product states)

let test_perm_test_density () =
  let states = List.init 3 (fun _ -> random_unit rng 2) in
  let rho = Mat.of_vec (Vec.tensor_list states) in
  check_float ~eps:1e-8 "density = product"
    (Permutation_test.accept_prob_product states)
    (Permutation_test.accept_prob_density ~d:2 ~k:3 rho)

let test_perm_test_lemma16 () =
  (* Lemma 16 on a random product state *)
  let states = List.init 3 (fun _ -> random_unit rng 2) in
  let eps = 1. -. Permutation_test.accept_prob_product states in
  let bound = Permutation_test.pairwise_distance_bound eps in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          if i < j then begin
            let d = Distance.trace_distance (Mat.of_vec si) (Mat.of_vec sj) in
            Alcotest.(check bool) "pairwise distance bounded" true
              (d <= bound +. 1e-9)
          end)
        states)
    states

(* --- Pure register simulator --- *)

let test_pure_product_inner () =
  let lay = Pure.layout [ ("a", 1); ("b", 2) ] in
  let va = random_unit rng 2 and vb = random_unit rng 4 in
  let s = Pure.product lay [ ("a", va); ("b", vb) ] in
  check_float ~eps:1e-9 "norm" 1. (Pure.norm2 s);
  let t = Pure.product lay [ ("a", va); ("b", vb) ] in
  Alcotest.(check bool) "self inner = 1" true
    (Cx.is_close ~eps:1e-9 (Pure.inner s t) Cx.one)

let test_pure_swap_registers () =
  let lay = Pure.layout [ ("a", 2); ("b", 2) ] in
  let va = random_unit rng 4 and vb = random_unit rng 4 in
  let s = Pure.product lay [ ("a", va); ("b", vb) ] in
  let swapped = Pure.swap_registers s "a" "b" in
  let expected = Pure.product lay [ ("a", vb); ("b", va) ] in
  Alcotest.(check bool) "swap" true
    (Cx.is_close ~eps:1e-9 (Pure.inner expected swapped) Cx.one)

let test_pure_apply_on_middle () =
  (* apply X on a middle register *)
  let lay = Pure.layout [ ("a", 1); ("b", 1); ("c", 1) ] in
  let s = Pure.zero lay in
  let s = Pure.apply_on s [ "b" ] Gates.pauli_x in
  check_float ~eps:1e-9 "b flipped" 1. (Pure.prob_of_outcome s "b" 1);
  check_float ~eps:1e-9 "a unchanged" 1. (Pure.prob_of_outcome s "a" 0);
  check_float ~eps:1e-9 "c unchanged" 1. (Pure.prob_of_outcome s "c" 0)

let test_pure_controlled_swap () =
  let lay = Pure.layout [ ("c", 1); ("a", 1); ("b", 1) ] in
  let va = random_unit rng 2 and vb = random_unit rng 2 in
  (* control 0: no swap *)
  let s0 = Pure.product lay [ ("a", va); ("b", vb) ] in
  let s0' = Pure.controlled_swap s0 ~control:"c" "a" "b" in
  Alcotest.(check bool) "control 0 identity" true
    (Cx.is_close ~eps:1e-9 (Pure.inner s0 s0') Cx.one);
  (* control 1: swap *)
  let s1 =
    Pure.product lay [ ("c", Vec.basis 2 1); ("a", va); ("b", vb) ]
  in
  let s1' = Pure.controlled_swap s1 ~control:"c" "a" "b" in
  let expected =
    Pure.product lay [ ("c", Vec.basis 2 1); ("a", vb); ("b", va) ]
  in
  Alcotest.(check bool) "control 1 swaps" true
    (Cx.is_close ~eps:1e-9 (Pure.inner expected s1') Cx.one)

let test_pure_project_sym_prob () =
  let lay = Pure.layout [ ("a", 1); ("b", 1) ] in
  let va = random_unit rng 2 and vb = random_unit rng 2 in
  let s = Pure.product lay [ ("a", va); ("b", vb) ] in
  let projected = Pure.project_sym s [ "a"; "b" ] in
  check_float ~eps:1e-9 "projection norm = swap accept"
    (Swap_test.accept_prob_product va vb)
    (Pure.norm2 projected)

let test_pure_measure_distribution () =
  let lay = Pure.layout [ ("a", 1) ] in
  let v = Vec.of_array [| Cx.re 0.6; Cx.re 0.8 |] in
  let s = Pure.product lay [ ("a", v) ] in
  check_float ~eps:1e-9 "P(0)" 0.36 (Pure.prob_of_outcome s "a" 0);
  check_float ~eps:1e-9 "P(1)" 0.64 (Pure.prob_of_outcome s "a" 1);
  let st = Random.State.make [| 5 |] in
  let hits = ref 0 in
  let trials = 2000 in
  for _ = 1 to trials do
    let outcome, _ = Pure.measure st s "a" in
    if outcome = 1 then incr hits
  done;
  Alcotest.(check bool) "sampled frequency near 0.64" true
    (Float.abs ((float_of_int !hits /. float_of_int trials) -. 0.64) < 0.05)

let test_pure_measure_collapse () =
  let lay = Pure.layout [ ("a", 1); ("b", 1) ] in
  (* entangle a and b into a Bell pair via H + CNOT *)
  let s = Pure.zero lay in
  let s = Pure.apply_on s [ "a" ] Gates.hadamard in
  let s = Pure.apply_on s [ "a"; "b" ] Gates.cnot in
  let st = Random.State.make [| 11 |] in
  let outcome, collapsed = Pure.measure st s "a" in
  check_float ~eps:1e-9 "b collapsed to same value" 1.
    (Pure.prob_of_outcome collapsed "b" outcome)

let test_pure_reduced_density () =
  let lay = Pure.layout [ ("a", 1); ("b", 1) ] in
  let s = Pure.zero lay in
  let s = Pure.apply_on s [ "a" ] Gates.hadamard in
  let s = Pure.apply_on s [ "a"; "b" ] Gates.cnot in
  let rho_a = Pure.reduced_density s [ "a" ] in
  (* Bell pair: reduced state is maximally mixed *)
  Alcotest.(check bool) "maximally mixed" true
    (Mat.equal ~eps:1e-9 rho_a
       (Mat.scale (Cx.re 0.5) (Mat.identity 2)))

(* --- POVM --- *)

let test_povm_validation () =
  Alcotest.(check bool) "not summing to I rejected" true
    (try
       ignore (Povm.make [ Mat.scale (Cx.re 0.5) (Mat.identity 2) ]);
       false
     with Invalid_argument _ -> true);
  let p = Povm.binary ~accept:(Mat.of_vec (Vec.basis 2 0)) in
  Alcotest.(check int) "binary outcomes" 2 (Povm.outcomes p)

let test_povm_probabilities () =
  let v = Vec.of_array [| Cx.re 0.6; Cx.re 0.8 |] in
  let p = Povm.projective [| Vec.basis 2 0; Vec.basis 2 1 |] in
  let probs = Povm.probabilities p (Mat.of_vec v) in
  check_float ~eps:1e-9 "P(0)" 0.36 probs.(0);
  check_float ~eps:1e-9 "P(1)" 0.64 probs.(1)

let test_povm_sample_collapse () =
  let st = Random.State.make [| 31 |] in
  let v = random_unit st 2 in
  let p = Povm.projective [| Vec.basis 2 0; Vec.basis 2 1 |] in
  let outcome, post = Povm.sample st p (Mat.of_vec v) in
  (* post-measurement state is the projector onto the outcome basis *)
  Alcotest.(check bool) "collapsed" true
    (Mat.equal ~eps:1e-7 post (Mat.of_vec (Vec.basis 2 outcome)))

let test_povm_naimark () =
  let st = Random.State.make [| 32 |] in
  (* a genuinely non-projective POVM: smeared basis measurement *)
  let e0 =
    Mat.add
      (Mat.scale (Cx.re 0.7) (Mat.of_vec (Vec.basis 2 0)))
      (Mat.scale (Cx.re 0.3) (Mat.of_vec (Vec.basis 2 1)))
  in
  let p = Povm.binary ~accept:e0 in
  let v = Povm.naimark p in
  Alcotest.(check bool) "isometry" true
    (Mat.equal ~eps:1e-8 (Mat.mul (Mat.adjoint v) v) (Mat.identity 2));
  let psi = random_unit st 2 in
  let dilated = Mat.apply v psi in
  (* environment statistics match the POVM *)
  let probs = Povm.probabilities p (Mat.of_vec psi) in
  let m = Povm.outcomes p in
  let env_prob i =
    let acc = ref 0. in
    for r = 0 to 1 do
      acc := !acc +. Cx.norm2 (Vec.get dilated ((r * m) + i))
    done;
    !acc
  in
  check_float ~eps:1e-8 "outcome 0" probs.(0) (env_prob 0);
  check_float ~eps:1e-8 "outcome 1" probs.(1) (env_prob 1)

let test_pure_random_circuit_preserves_norm () =
  (* random sequences of unitary register operations keep the global
     state normalized *)
  for seed = 0 to 4 do
    let st = Random.State.make [| seed; 0xc1c |] in
    let lay = Pure.layout [ ("a", 1); ("b", 1); ("c", 1) ] in
    let s = ref (Pure.product lay [ ("a", random_unit st 2) ]) in
    for _ = 1 to 10 do
      let reg = [ "a"; "b"; "c" ] in
      let name = List.nth reg (Random.State.int st 3) in
      (match Random.State.int st 4 with
      | 0 -> s := Pure.apply_on !s [ name ] Gates.hadamard
      | 1 -> s := Pure.apply_on !s [ name ] (Gates.phase 0.9)
      | 2 ->
          let other = List.nth reg (Random.State.int st 3) in
          if other <> name then s := Pure.swap_registers !s name other
      | _ ->
          let other = List.nth reg (Random.State.int st 3) in
          if other <> name then s := Pure.apply_on !s [ name; other ] Gates.cnot);
      check_float ~eps:1e-9 "norm preserved" 1. (Pure.norm2 !s)
    done
  done

let test_pure_reduced_density_trace () =
  let st = Random.State.make [| 0xc1d |] in
  let lay = Pure.layout [ ("a", 2); ("b", 1) ] in
  let s = Pure.product lay [ ("a", random_unit st 4); ("b", random_unit st 2) ] in
  let s = Pure.apply_on s [ "a"; "b" ] (Mat.tensor (Mat.identity 4) Gates.hadamard) in
  let rho = Pure.reduced_density s [ "a" ] in
  check_float ~eps:1e-9 "unit trace" 1. (Mat.trace rho).Complex.re;
  Alcotest.(check bool) "hermitian" true (Mat.is_hermitian ~eps:1e-8 rho)

(* --- Density --- *)

let test_density_partial_trace_product () =
  let a = random_unit rng 2 and b = random_unit rng 3 in
  let rho =
    Density.tensor
      (Density.of_pure ~dims:[| 2 |] a)
      (Density.of_pure ~dims:[| 3 |] b)
  in
  let ra = Density.partial_trace rho ~keep:[ 0 ] in
  Alcotest.(check bool) "partial trace of product" true
    (Mat.equal ~eps:1e-9 (Density.mat ra) (Mat.of_vec a));
  check_float ~eps:1e-9 "trace preserved" 1. (Density.trace ra)

let test_density_is_density () =
  let a = random_unit rng 4 in
  Alcotest.(check bool) "pure state is density" true
    (Density.is_density (Density.of_pure ~dims:[| 4 |] a));
  Alcotest.(check bool) "maximally mixed is density" true
    (Density.is_density (Density.maximally_mixed ~dims:[| 2; 2 |]))

let test_density_mix () =
  let a = Density.of_pure ~dims:[| 2 |] (Vec.basis 2 0) in
  let b = Density.of_pure ~dims:[| 2 |] (Vec.basis 2 1) in
  let m = Density.mix [ (0.5, a); (0.5, b) ] in
  Alcotest.(check bool) "mix = maximally mixed" true
    (Mat.equal ~eps:1e-9 (Density.mat m)
       (Density.mat (Density.maximally_mixed ~dims:[| 2 |])))

(* --- Distance --- *)

let test_distance_pure_formula () =
  let a = random_unit rng 4 and b = random_unit rng 4 in
  let d_mat = Distance.trace_distance (Mat.of_vec a) (Mat.of_vec b) in
  check_float ~eps:1e-7 "pure formula" (Distance.trace_distance_pure a b) d_mat

let test_fidelity_pure () =
  let a = random_unit rng 4 and b = random_unit rng 4 in
  let f = Distance.fidelity (Mat.of_vec a) (Mat.of_vec b) in
  check_float ~eps:1e-6 "pure fidelity" (Distance.fidelity_pure a b) f

let test_fuchs_van_de_graaf () =
  for seed = 0 to 4 do
    let st = Random.State.make [| seed; 3 |] in
    let a = random_unit st 3 and b = random_unit st 3 in
    let lo, d, hi = Distance.fuchs_van_de_graaf (Mat.of_vec a) (Mat.of_vec b) in
    Alcotest.(check bool) "1 - F <= D" true (lo <= d +. 1e-7);
    Alcotest.(check bool) "D <= sqrt (1 - F^2)" true (d <= hi +. 1e-7)
  done

let test_trace_distance_metric () =
  let a = random_unit rng 3 and b = random_unit rng 3 and c = random_unit rng 3 in
  let d = Distance.trace_distance in
  let ma = Mat.of_vec a and mb = Mat.of_vec b and mc = Mat.of_vec c in
  check_float ~eps:1e-8 "d(a,a) = 0" 0. (d ma ma);
  check_float ~eps:1e-8 "symmetry" (d ma mb) (d mb ma);
  Alcotest.(check bool) "triangle" true (d ma mc <= d ma mb +. d mb mc +. 1e-7)

let () =
  Alcotest.run "quantum"
    [
      ( "gates",
        [
          Alcotest.test_case "unitarity" `Quick test_gates_unitary;
          Alcotest.test_case "hadamard" `Quick test_hadamard_plus;
          Alcotest.test_case "cswap action" `Quick test_cswap_action;
        ] );
      ( "symmetric",
        [
          Alcotest.test_case "permutation count" `Quick test_permutations_count;
          Alcotest.test_case "u_pi unitary" `Quick test_u_pi_unitary;
          Alcotest.test_case "u_pi composition" `Quick test_u_pi_composition;
          Alcotest.test_case "projector" `Quick test_projector_is_projector;
          Alcotest.test_case "subspace dimension" `Quick
            test_symmetric_subspace_dimension;
          Alcotest.test_case "apply_projector" `Quick test_apply_projector_agrees;
        ] );
      ( "swap_test",
        [
          Alcotest.test_case "product formula" `Quick test_swap_product_formula;
          Alcotest.test_case "identical accept" `Quick test_swap_identical_accepts;
          Alcotest.test_case "entangled extremes" `Quick test_swap_entangled_state;
          Alcotest.test_case "density" `Quick test_swap_density;
          Alcotest.test_case "lemma 14 bound" `Quick test_swap_lemma14;
        ] );
      ( "permutation_test",
        [
          Alcotest.test_case "k=2 is SWAP" `Quick test_perm_test_matches_swap;
          Alcotest.test_case "identical accept" `Quick test_perm_test_identical;
          Alcotest.test_case "product vs projector" `Quick
            test_perm_test_product_vs_projector;
          Alcotest.test_case "density" `Quick test_perm_test_density;
          Alcotest.test_case "lemma 16 bound" `Quick test_perm_test_lemma16;
        ] );
      ( "pure",
        [
          Alcotest.test_case "product & inner" `Quick test_pure_product_inner;
          Alcotest.test_case "swap registers" `Quick test_pure_swap_registers;
          Alcotest.test_case "apply_on middle" `Quick test_pure_apply_on_middle;
          Alcotest.test_case "controlled swap" `Quick test_pure_controlled_swap;
          Alcotest.test_case "project_sym norm" `Quick test_pure_project_sym_prob;
          Alcotest.test_case "measure distribution" `Quick
            test_pure_measure_distribution;
          Alcotest.test_case "measure collapse" `Quick test_pure_measure_collapse;
          Alcotest.test_case "reduced density" `Quick test_pure_reduced_density;
          Alcotest.test_case "random circuit norm" `Quick
            test_pure_random_circuit_preserves_norm;
          Alcotest.test_case "reduced density trace" `Quick
            test_pure_reduced_density_trace;
        ] );
      ( "povm",
        [
          Alcotest.test_case "validation" `Quick test_povm_validation;
          Alcotest.test_case "probabilities" `Quick test_povm_probabilities;
          Alcotest.test_case "sample collapse" `Quick test_povm_sample_collapse;
          Alcotest.test_case "naimark dilation" `Quick test_povm_naimark;
        ] );
      ( "density",
        [
          Alcotest.test_case "partial trace product" `Quick
            test_density_partial_trace_product;
          Alcotest.test_case "is_density" `Quick test_density_is_density;
          Alcotest.test_case "mix" `Quick test_density_mix;
        ] );
      ( "distance",
        [
          Alcotest.test_case "pure trace distance" `Quick test_distance_pure_formula;
          Alcotest.test_case "pure fidelity" `Quick test_fidelity_pure;
          Alcotest.test_case "fuchs-van de graaf" `Quick test_fuchs_van_de_graaf;
          Alcotest.test_case "metric axioms" `Quick test_trace_distance_metric;
        ] );
    ]
