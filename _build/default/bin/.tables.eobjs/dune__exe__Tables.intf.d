bin/tables.mli:
