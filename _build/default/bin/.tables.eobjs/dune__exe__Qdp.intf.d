bin/qdp.mli:
