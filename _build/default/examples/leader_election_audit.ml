(* Leader-election audit via ranking verification (Section 5.2).

   Six nodes of a network elected the one holding the largest 32-bit
   priority as leader.  A verifier network wants a cheap certificate
   that the elected node really holds the maximum — the RV^{i,1}
   problem — without shipping priorities around.  An untrusted prover
   supplies direction bits and GT certificates along the tree paths
   (Algorithm 8).

   Run with: dune exec examples/leader_election_audit.exe *)

open Qdp_codes
open Qdp_network
open Qdp_core

let () =
  let rng = Random.State.make [| 424242 |] in
  let g = Graph.grid ~w:4 ~h:3 in
  let terminals = [ 0; 2; 5; 7; 9; 11 ] in
  let t = List.length terminals in
  let n = 32 in
  let priorities = Array.init t (fun _ -> Gf2.random rng n) in
  let leader = ref 0 in
  Array.iteri
    (fun k p ->
      if Gf2.compare_big_endian p priorities.(!leader) > 0 then leader := k)
    priorities;
  Printf.printf "grid network 4x3; %d contenders with %d-bit priorities\n" t n;
  Array.iteri
    (fun k p ->
      Printf.printf "  contender %d (vertex %2d): priority %d%s\n" k
        (List.nth terminals k) (Gf2.to_int p)
        (if k = !leader then "  <- elected leader" else ""))
    priorities;

  let params = Rv.make ~seed:5 ~n ~r:(Graph.radius g) () in

  (* Audit the true leader: rank j = 1. *)
  let p_true =
    Rv.honest_accept params g ~terminals ~inputs:priorities ~i:!leader ~j:1
  in
  Printf.printf "\naudit of the elected leader (RV^{%d,1}): Pr[all accept] = %.6f\n"
    !leader p_true;

  (* A usurper claims leadership: the prover must lie about at least
     one comparison and gets caught. *)
  let usurper = (!leader + 1) mod t in
  let p_false, how =
    Rv.best_attack_accept params g ~terminals ~inputs:priorities ~i:usurper ~j:1
  in
  Printf.printf
    "usurper %d claims rank 1: best prover attack (%s) accepted with %.3e\n"
    usurper how p_false;

  (* The full ranking, audited one certificate at a time. *)
  Printf.printf "\nfull ranking audit:\n";
  for j = 1 to t do
    let who = ref (-1) in
    for k = 0 to t - 1 do
      if Rv.rv_value ~inputs:priorities ~i:k ~j then who := k
    done;
    let p =
      Rv.honest_accept params g ~terminals ~inputs:priorities ~i:!who ~j
    in
    Printf.printf "  rank %d: contender %d, certificate accepted: %.4f\n" j !who p
  done;
  let tr = Spanning_tree.build_rooted_at g ~terminals ~root_terminal:!leader in
  Format.printf "@.certificate cost (per rank audit): %a@." Report.pp_costs
    (Rv.costs params tr ~t)
