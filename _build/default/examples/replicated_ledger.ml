(* Replicated-data consistency audit — the motivating scenario of
   FGNP21's "Distributed Quantum Proofs for Replicated Data" that this
   paper's Theorem 19 improves.

   Five replicas hold a 128-bit ledger digest somewhere inside a larger
   network.  An untrusted coordinator (the prover) wants to convince
   every node the replicas agree, using O(r^2 log n)-qubit certificates
   instead of shipping the digest everywhere.

   Run with: dune exec examples/replicated_ledger.exe *)

open Qdp_codes
open Qdp_network
open Qdp_core

let () =
  let rng = Random.State.make [| 7777 |] in
  (* a 24-node network with some redundancy, replicas at 5 vertices *)
  let g = Graph.random_connected rng ~n:24 ~extra_edges:8 in
  let replicas = [ 0; 5; 11; 17; 23 ] in
  let t = List.length replicas in
  let n = 128 in
  let digest = Gf2.random rng n in
  Printf.printf
    "network: 24 nodes, radius %d; %d replicas hold a %d-bit ledger digest\n\n"
    (Graph.radius g) t n;

  (* The prover first announces the Section 3.3 spanning tree; the
     Lemma 18 certificate makes lying about it futile. *)
  let tr = Spanning_tree.build g ~terminals:replicas in
  Printf.printf "spanning tree: %d nodes, height %d, certificate %d bits/node\n"
    (Spanning_tree.size tr) (Spanning_tree.height tr)
    (Spanning_tree.certificate_bits g);
  let cert =
    Spanning_tree.certificate_of g
      ~root_vertex:(Spanning_tree.host tr (Spanning_tree.root tr))
  in
  let cert_ok =
    Array.for_all (fun b -> b) (Spanning_tree.verify_certificate g cert)
  in
  Printf.printf "tree certificate verified by every node: %b\n\n" cert_ok;

  let r = Spanning_tree.height tr in
  let params = Eq_tree.make ~seed:3 ~n ~r () in
  let costs = Eq_tree.costs params tr in
  Format.printf "certificate sizes: %a@." Report.pp_costs costs;
  Printf.printf
    "(shipping the digest itself would cost %d bits at every node)\n\n"
    n;

  (* All replicas consistent. *)
  let inputs = Array.make t (Gf2.copy digest) in
  let ok =
    Eq_tree.accept params g ~terminals:replicas ~inputs Eq_tree.Honest
  in
  Printf.printf "consistent replicas, honest prover: Pr[all accept] = %.6f\n" ok;

  (* One replica silently diverged by a single bit. *)
  let corrupted = Gf2.copy digest in
  Gf2.set corrupted 77 (not (Gf2.get corrupted 77));
  let bad_inputs = Array.copy inputs in
  bad_inputs.(3) <- corrupted;
  let single, attack =
    Eq_tree.best_attack_accept params g ~terminals:replicas ~inputs:bad_inputs
  in
  Printf.printf
    "replica 4 flipped one bit; best prover attack (%s):\n" attack;
  Printf.printf "  single round Pr[all accept] = %.6f\n" single;
  Printf.printf "  amplified    Pr[all accept] = %.3e  (< 1/3: divergence exposed)\n"
    (Sim.repeat_accept params.Eq_tree.repetitions single)
