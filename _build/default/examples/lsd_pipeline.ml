(* The Section 7 pipeline, end to end: a QMA communication problem
   (the Raz-Shpilka Linear Subspace Distance problem) compiled into a
   dQMA^sep protocol on a path (Theorem 42), plus the Algorithm 11
   node-splitting reduction that turns any dQMA protocol back into a
   QMA* communication protocol (the engine of Theorem 46 and of the
   Section 8.2 lower bounds).

   Run with: dune exec examples/lsd_pipeline.exe *)

open Qdp_codes
open Qdp_commcc
open Qdp_core

let () =
  let rng = Random.State.make [| 1618 |] in
  let ambient = 128 and r = 5 in

  Printf.printf "LSD instances in R^%d (promise: Delta <= %.3f or >= %.3f)\n\n"
    ambient
    (0.1 *. Float.sqrt 2.)
    (0.9 *. Float.sqrt 2.);

  (* The two-party QMA one-way protocol for LSD (Lemma 45). *)
  let proto = Qma_comm.lsd_oneway ~ambient in
  let close = Lsd.random_close rng ~ambient ~dim:3 in
  let far = Lsd.random_far rng ~ambient ~dim:2 in
  Printf.printf "two-party QMA one-way protocol, cost %d qubits:\n"
    (Qma_comm.cost proto);
  Printf.printf "  close instance (Delta = %.4f): honest proof accepted %.4f\n"
    (Lsd.delta close)
    (Qma_comm.honest_accept_prob proto close.Lsd.v1 close.Lsd.v2);
  Printf.printf "  far instance   (Delta = %.4f): best possible proof %.4f\n\n"
    (Lsd.delta far)
    (Lsd.best_proof_accept_prob far);

  (* Theorem 42: compile onto a path of length r. *)
  let params = Qmacc_compiler.make ~repetitions:1 ~r () in
  let h_close, a_close = Qmacc_compiler.run_lsd_pipeline params ~ambient ~inst:close in
  let h_far, a_far = Qmacc_compiler.run_lsd_pipeline params ~ambient ~inst:far in
  Printf.printf "compiled dQMA protocol on a path of length %d (Algorithm 10):\n" r;
  Printf.printf "  close: honest %.4f, best attack %.4f\n" h_close a_close;
  Printf.printf "  far:   honest %.4f, best attack %.4f\n" h_far a_far;
  Format.printf "  costs: %a@.@." Report.pp_costs (Qmacc_compiler.costs params proto);

  (* EQ and GT reduced to LSD instances (the Lemma 44 substitute). *)
  let n = 10 in
  let x = Gf2.random rng n in
  let x' = Gf2.copy x in
  let y =
    let rec go () =
      let y = Gf2.random rng n in
      if Gf2.equal x y then go () else y
    in
    go ()
  in
  let eq_yes = Lsd.of_eq_inputs ~seed:12 ~ambient:512 x x' in
  let eq_no = Lsd.of_eq_inputs ~seed:12 ~ambient:512 x y in
  Printf.printf "EQ -> LSD (Lemma 44 substitute, ambient 512):\n";
  Printf.printf "  x = y  -> Delta = %.4f (close)\n" (Lsd.delta eq_yes);
  Printf.printf "  x <> y -> Delta = %.4f (far)\n\n" (Lsd.delta eq_no);

  let a = Gf2.of_int ~width:8 201 and b = Gf2.of_int ~width:8 144 in
  let gt_yes = Lsd.of_gt_inputs ~seed:13 ~ambient:2048 a b in
  let gt_no = Lsd.of_gt_inputs ~seed:13 ~ambient:2048 b a in
  Printf.printf "GT -> LSD (witness-prefix spans, ambient 2048):\n";
  Printf.printf "  201 > 144 -> Delta = %.4f (close)\n" (Lsd.delta gt_yes);
  Printf.printf "  144 > 201 -> Delta = %.4f (far)\n\n" (Lsd.delta gt_no);

  (* Algorithm 11: back from dQMA to a QMA* communication protocol. *)
  let eq_params = Eq_path.make ~repetitions:2 ~seed:14 ~n:32 ~r () in
  let ec = Eq_path.costs eq_params in
  let pc =
    Qma_star_reduction.uniform ~r
      ~intermediate_proof:ec.Report.local_proof_qubits ~end_proof:0
      ~edge_message:ec.Report.local_message_qubits
  in
  let cut, star = Qma_star_reduction.best_cut pc in
  Printf.printf
    "Algorithm 11 on the EQ path protocol: best cut at edge %d gives a QMA*\n"
    cut;
  Printf.printf
    "protocol with gamma1 = %d, gamma2 = %d, mu = %d (total %d; plain QMA <= %d),\n"
    star.Qma_comm.proof_alice star.Qma_comm.proof_bob star.Qma_comm.communication
    (Qma_comm.star_total star)
    (Qma_comm.qma_of_star star);
  Printf.printf
    "which is the handle both Theorem 46 (upper bound) and Theorem 63 (lower\n";
  Printf.printf "bounds via Klauck's discrepancy) grab onto.\n"
