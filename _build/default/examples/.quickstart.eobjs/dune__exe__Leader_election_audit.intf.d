examples/leader_election_audit.mli:
