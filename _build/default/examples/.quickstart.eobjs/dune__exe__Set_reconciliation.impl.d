examples/set_reconciliation.ml: Array Format Gf2 Printf Qdp_codes Qdp_core Random Report Set_eq Sim
