examples/lsd_pipeline.mli:
