examples/quickstart.ml: Eq_path Format Gf2 Printf Qdp_codes Qdp_core Random Report Runtime_eq Sim
