examples/leader_election_audit.ml: Array Format Gf2 Graph List Printf Qdp_codes Qdp_core Qdp_network Random Report Rv Spanning_tree
