examples/replicated_ledger.ml: Array Eq_tree Format Gf2 Graph List Printf Qdp_codes Qdp_core Qdp_network Random Report Sim Spanning_tree
