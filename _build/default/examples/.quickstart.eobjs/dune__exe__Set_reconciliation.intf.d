examples/set_reconciliation.mli:
