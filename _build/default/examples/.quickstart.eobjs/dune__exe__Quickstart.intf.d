examples/quickstart.mli:
