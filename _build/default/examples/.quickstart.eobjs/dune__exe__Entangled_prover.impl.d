examples/entangled_prover.ml: Array Cx Eq_path Exact Float List Printf Qdp_core Qdp_linalg Qdp_quantum Random Schmidt String Vec
