examples/lsd_pipeline.ml: Eq_path Float Format Gf2 Lsd Printf Qdp_codes Qdp_commcc Qdp_core Qma_comm Qma_star_reduction Qmacc_compiler Random Report
