examples/sensor_consistency.mli:
