examples/sensor_consistency.ml: Array Float Format Gf2 Graph List Oneway Oneway_compiler Printf Qdp_codes Qdp_commcc Qdp_core Qdp_network Random Report Sim
