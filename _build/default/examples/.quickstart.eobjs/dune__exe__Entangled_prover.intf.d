examples/entangled_prover.mli:
