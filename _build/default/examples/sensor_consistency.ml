(* Sensor-fleet consistency within a Hamming tolerance (Section 6).

   Four sensors spread over a network each hold a 96-bit quantized
   reading; the fleet is healthy when every pair of readings differs in
   at most d positions.  The HAM^{<= d}_{t,n} protocol (Theorem 30)
   certifies this with O(t^2 r^2 d log n) qubits by compiling the
   block-fingerprint one-way protocol through Algorithm 9's
   root-to-leaves spanning-tree floods.

   Run with: dune exec examples/sensor_consistency.exe *)

open Qdp_codes
open Qdp_network
open Qdp_commcc
open Qdp_core

let () =
  let rng = Random.State.make [| 31337 |] in
  let n = 96 and d = 3 in
  let g = Graph.cycle 8 in
  let terminals = [ 0; 2; 4; 6 ] in
  let t = List.length terminals in
  let base = Gf2.random rng n in
  Printf.printf
    "ring network of 8 nodes; %d sensors with %d-bit readings, tolerance d = %d\n\n"
    t n d;

  let proto = Oneway.ham ~seed:9 ~n ~d in
  Printf.printf
    "one-way HAM protocol: %d qubits/message (LZ13 formula: %d qubits)\n"
    proto.Oneway.message_qubits
    (Oneway.lz13_cost ~n ~d);
  let params =
    Oneway_compiler.make ~repetitions:8 ~amplification:1 ~r:(Graph.radius g) ~t
      ~n ()
  in
  Format.printf "compiled dQMA costs: %a@.@."
    Report.pp_costs
    (Oneway_compiler.costs params proto g ~terminals);

  (* Healthy fleet: every sensor within distance 1 of the base reading,
     so pairwise distances are at most 2 <= d. *)
  let healthy =
    Array.init t (fun i ->
        if i = 0 then Gf2.copy base else Gf2.xor base (Gf2.random_weight rng n 1))
  in
  Printf.printf "healthy fleet (pairwise distance <= 2):\n";
  let p_healthy =
    Oneway_compiler.accept params proto g ~terminals ~inputs:healthy
      Oneway_compiler.Honest
  in
  Printf.printf "  Pr[all accept] = %.6f\n\n" p_healthy;

  (* A drifting sensor: far beyond the tolerance. *)
  let drifted = Array.copy healthy in
  drifted.(2) <- Gf2.xor base (Gf2.random_weight rng n (8 * d));
  Printf.printf "sensor 3 drifted to distance %d:\n"
    (Gf2.hamming_distance base drifted.(2));
  let single, attack =
    Oneway_compiler.best_attack_accept params proto g ~terminals ~inputs:drifted
  in
  Printf.printf "  best prover attack (%s): single round %.4f\n" attack single;
  Printf.printf "  amplified Pr[all accept] = %.3e  (drift exposed)\n"
    (Sim.repeat_accept params.Oneway_compiler.repetitions single);

  (* The same machinery covers the l1-distance corollaries: quantized
     analog values via thermometer encoding (Corollary 37). *)
  Printf.printf "\nanalog variant (Corollary 37): thermometer-encoded readings\n";
  let resolution = 16 in
  let analog1 = [| 0.25; -0.5; 0.75 |] in
  let analog2 = [| 0.25; -0.375; 0.75 |] in
  let e1 = Oneway.thermometer ~resolution analog1 in
  let e2 = Oneway.thermometer ~resolution analog2 in
  Printf.printf
    "  l1 distance %.3f encoded as Hamming distance %d (resolution %d)\n"
    (Array.fold_left ( +. ) 0.
       (Array.mapi (fun i v -> Float.abs (v -. analog2.(i))) analog1))
    (Gf2.hamming_distance e1 e2)
    resolution
