(* How much does entanglement help a cheating prover?

   Definition 6 (dQMA) lets the prover entangle the proof registers
   across nodes; Definition 8 (dQMA^sep,sep) does not.  On toy
   instances the exact state-vector simulator computes the *optimal*
   entangled attack in closed form — "all nodes accept" is a single
   projector, so the best proof is the top eigenvector of the
   acceptance quadratic form — and we can put exact numbers on the gap
   the paper's Theorems 46/51/52 relate.

   Run with: dune exec examples/entangled_prover.exe *)

open Qdp_linalg
open Qdp_quantum
open Qdp_core

let () =
  let x_state = Exact.toy_state ~qubits:1 5 in
  let y_state = Exact.toy_state ~qubits:1 11 in
  Printf.printf "toy EQ instance: 1-qubit fingerprints with overlap %.4f\n\n"
    (Cx.abs (Vec.dot x_state y_state));

  Printf.printf "%4s %16s %18s %16s %14s\n" "r" "best product"
    "optimal entangled" "advantage" "Lemma 17 cap";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun r ->
      let cfg = { Exact.r; qubits = 1 } in
      let product = Exact.best_product_attack cfg ~x_state ~y_state in
      let entangled, _ = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
      Printf.printf "%4d %16.6f %18.6f %15.4f%% %14.6f\n" r product entangled
        ((entangled -. product) /. product *. 100.)
        (Eq_path.soundness_bound_single ~r))
    [ 2; 3; 4; 5 ];

  (* Inspect the optimal proof: how entangled is it actually? *)
  Printf.printf "\nstructure of the optimal entangled proof (r = 3):\n";
  let cfg = { Exact.r = 3; qubits = 1 } in
  let _, proof = Exact.optimal_entangled_attack cfg ~x_state ~y_state in
  let proof = Vec.normalize proof in
  (* split the 4-qubit proof between node 1 (first 2 qubits) and node 2 *)
  let dec = Schmidt.decompose ~d_a:4 ~d_b:4 proof in
  Printf.printf "  Schmidt rank across the node-1 / node-2 cut: %d\n"
    (Schmidt.schmidt_rank ~eps:1e-6 dec);
  Printf.printf "  entanglement entropy: %.4f bits\n"
    (Schmidt.entanglement_entropy dec);
  Printf.printf "  Schmidt coefficients:";
  Array.iter (fun c -> if c > 1e-6 then Printf.printf " %.4f" c)
    dec.Schmidt.coefficients;
  print_newline ();

  (* Sanity: the optimal entangled value is achieved by the returned
     proof, and a random entangled proof does much worse. *)
  let achieved = Exact.accept_prob cfg ~x_state ~y_state ~proof in
  Printf.printf "\nacceptance of the optimal proof: %.6f\n" achieved;
  let st = Random.State.make [| 9 |] in
  let gaussian () =
    let u1 = Float.max 1e-12 (Random.State.float st 1.) in
    let u2 = Random.State.float st 1. in
    Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
  in
  let random_proof =
    Vec.normalize (Vec.init 16 (fun _ -> Cx.make (gaussian ()) (gaussian ())))
  in
  Printf.printf "acceptance of a random entangled proof: %.6f\n"
    (Exact.accept_prob cfg ~x_state ~y_state ~proof:random_proof);
  Printf.printf
    "\nTakeaway: entanglement buys the prover only a few percent over the best\n\
     separable proof and never approaches the dQMA soundness cap -- the gap\n\
     between Definitions 6 and 8 is real but small, which is why the paper\n\
     can simulate dQMA by dQMA^sep at polynomial cost (Theorem 46).\n"
