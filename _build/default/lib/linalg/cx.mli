(** Complex scalar helpers on top of the standard [Complex] module.

    All quantum amplitudes in this repository are values of type
    [Complex.t]; this module collects the small set of operations the
    simulators need beyond what the standard library provides. *)

type t = Complex.t

(** [zero] is [0 + 0i]. *)
val zero : t

(** [one] is [1 + 0i]. *)
val one : t

(** [i] is the imaginary unit. *)
val i : t

(** [re x] builds the real complex number [x + 0i]. *)
val re : float -> t

(** [make a b] builds [a + bi]. *)
val make : float -> float -> t

(** [add], [sub], [mul], [div] are field operations. *)
val add : t -> t -> t

val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t

(** [conj z] is the complex conjugate. *)
val conj : t -> t

(** [neg z] is [-z]. *)
val neg : t -> t

(** [scale a z] multiplies by the real scalar [a]. *)
val scale : float -> t -> t

(** [norm2 z] is [|z|^2]. *)
val norm2 : t -> float

(** [abs z] is [|z|]. *)
val abs : t -> float

(** [is_close ?eps a b] holds when [|a - b| <= eps] (default [1e-9]). *)
val is_close : ?eps:float -> t -> t -> bool

(** [pp] prints in the form [a+bi] with 6 significant digits. *)
val pp : Format.formatter -> t -> unit

(** [to_string z] renders via {!pp}. *)
val to_string : t -> string

(** [exp_i theta] is [e^{i theta}]. *)
val exp_i : float -> t
