(** Dense complex matrices, row-major.

    These back the density-operator side of the quantum simulator:
    partial traces, operator algebra, projectors, and the distance
    measures in {!Qdp_quantum.Distance} are all computed on values of
    this type. *)

type t

(** [create r c] is the [r x c] zero matrix. *)
val create : int -> int -> t

(** [rows m] / [cols m] are the dimensions. *)
val rows : t -> int

val cols : t -> int

(** [identity n] is the [n x n] identity. *)
val identity : int -> t

(** [init r c f] builds the matrix with entry [(i, j)] equal to
    [f i j]. *)
val init : int -> int -> (int -> int -> Cx.t) -> t

(** [get m i j] / [set m i j z] access entry [(i, j)]. *)
val get : t -> int -> int -> Cx.t

val set : t -> int -> int -> Cx.t -> unit

(** [copy m] is a fresh matrix equal to [m]. *)
val copy : t -> t

(** [add], [sub] are entrywise; [scale z m] multiplies by a scalar. *)
val add : t -> t -> t

val sub : t -> t -> t
val scale : Cx.t -> t -> t

(** [mul a b] is the matrix product. *)
val mul : t -> t -> t

(** [apply m v] is the matrix-vector product [m v]. *)
val apply : t -> Vec.t -> Vec.t

(** [adjoint m] is the conjugate transpose. *)
val adjoint : t -> t

(** [transpose m] is the plain transpose. *)
val transpose : t -> t

(** [conj m] is the entrywise conjugate. *)
val conj : t -> t

(** [trace m] is the sum of diagonal entries (square matrices). *)
val trace : t -> Cx.t

(** [tensor a b] is the Kronecker product. *)
val tensor : t -> t -> t

(** [tensor_list ms] folds {!tensor} over a non-empty list. *)
val tensor_list : t list -> t

(** [outer a b] is [|a><b|]: entry [(i, j)] equals [a_i * conj b_j]. *)
val outer : Vec.t -> Vec.t -> t

(** [of_vec v] is the rank-one projector [|v><v|] for a unit vector, or
    more generally [|v><v|] without normalization. *)
val of_vec : Vec.t -> t

(** [is_hermitian ?eps m] checks [m = m^dagger] entrywise. *)
val is_hermitian : ?eps:float -> t -> bool

(** [is_unitary ?eps m] checks [m m^dagger = I] entrywise. *)
val is_unitary : ?eps:float -> t -> bool

(** [equal ?eps a b] is entrywise comparison within [eps]. *)
val equal : ?eps:float -> t -> t -> bool

(** [frobenius_norm m] is [sqrt (sum |m_ij|^2)]. *)
val frobenius_norm : t -> float

(** [pp] prints rows on separate lines. *)
val pp : Format.formatter -> t -> unit

(** [swap_gate d] is the unitary on [C^d (x) C^d] exchanging the two
    factors. *)
val swap_gate : int -> t
