type t = Complex.t

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let re x = { Complex.re = x; im = 0. }
let make re im = { Complex.re; im }
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let conj = Complex.conj
let neg = Complex.neg
let scale a z = { Complex.re = a *. z.Complex.re; im = a *. z.Complex.im }
let norm2 z = Complex.norm2 z
let abs z = Complex.norm z
let is_close ?(eps = 1e-9) a b = Complex.norm (Complex.sub a b) <= eps

let pp fmt z =
  if Float.abs z.Complex.im < 1e-12 then Format.fprintf fmt "%.6g" z.Complex.re
  else Format.fprintf fmt "%.6g%+.6gi" z.Complex.re z.Complex.im

let to_string z = Format.asprintf "%a" pp z
let exp_i theta = { Complex.re = Float.cos theta; im = Float.sin theta }
