(** Dense complex vectors.

    A vector is stored as two flat float arrays (real and imaginary
    parts), which keeps inner products and scalings allocation-free.
    Vectors are mutable; functions ending in [_inplace] mutate their
    first argument, everything else is persistent. *)

type t

(** [create n] is the zero vector of dimension [n]. *)
val create : int -> t

(** [dim v] is the dimension of [v]. *)
val dim : t -> int

(** [basis n k] is the [k]-th computational basis vector of dimension
    [n] ([0 <= k < n]). *)
val basis : int -> int -> t

(** [init n f] builds the vector whose [k]-th entry is [f k]. *)
val init : int -> (int -> Cx.t) -> t

(** [of_array a] copies a complex array into a vector. *)
val of_array : Cx.t array -> t

(** [to_array v] is a fresh complex array with the entries of [v]. *)
val to_array : t -> Cx.t array

(** [get v k] is entry [k]. *)
val get : t -> int -> Cx.t

(** [set v k z] overwrites entry [k]. *)
val set : t -> int -> Cx.t -> unit

(** [copy v] is a fresh vector equal to [v]. *)
val copy : t -> t

(** [add a b] and [sub a b] are entrywise sum and difference. *)
val add : t -> t -> t

val sub : t -> t -> t

(** [scale z v] multiplies every entry by the complex scalar [z]. *)
val scale : Cx.t -> t -> t

(** [scale_inplace z v] is [scale] without allocation. *)
val scale_inplace : Cx.t -> t -> unit

(** [axpy ~alpha x y] adds [alpha * x] into [y] (mutating [y]). *)
val axpy : alpha:Cx.t -> t -> t -> unit

(** [dot a b] is the Hermitian inner product [<a|b>], conjugate-linear
    in the first argument (physicists' convention). *)
val dot : t -> t -> Cx.t

(** [norm v] is the Euclidean norm. *)
val norm : t -> float

(** [normalize v] is [v / norm v].
    @raise Invalid_argument on the zero vector. *)
val normalize : t -> t

(** [tensor a b] is the Kronecker product [a (x) b]: entry
    [(i * dim b + j)] equals [a_i * b_j]. *)
val tensor : t -> t -> t

(** [tensor_list vs] folds {!tensor} over a non-empty list. *)
val tensor_list : t list -> t

(** [map f v] applies [f] to every entry. *)
val map : (Cx.t -> Cx.t) -> t -> t

(** [fold f init v] folds over the entries in index order. *)
val fold : ('a -> Cx.t -> 'a) -> 'a -> t -> 'a

(** [equal ?eps a b] holds when entries agree within [eps]
    (default [1e-9]). *)
val equal : ?eps:float -> t -> t -> bool

(** [pp] prints as a bracketed list of entries. *)
val pp : Format.formatter -> t -> unit

(** Direct access to the underlying storage; used by the simulator hot
    loops. Mutating these mutates the vector. *)
val raw_re : t -> float array

val raw_im : t -> float array

(** [unsafe_of_raw re im] wraps existing storage without copying.
    @raise Invalid_argument if the arrays differ in length. *)
val unsafe_of_raw : float array -> float array -> t
