lib/linalg/eig.ml: Array Complex Cx Float List Mat Vec
