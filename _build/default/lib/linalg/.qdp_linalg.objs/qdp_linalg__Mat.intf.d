lib/linalg/mat.mli: Cx Format Vec
