lib/linalg/subspace.ml: Array Eig Float List Random
