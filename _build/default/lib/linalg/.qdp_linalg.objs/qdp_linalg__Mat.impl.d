lib/linalg/mat.ml: Array Complex Cx Float Format List Vec
