lib/linalg/vec.ml: Array Complex Cx Float Format List
