lib/linalg/subspace.mli: Random
