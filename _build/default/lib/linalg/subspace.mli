(** Real linear subspaces of [R^m], represented by orthonormal bases.

    This is the input domain of the Linear Subspace Distance (LSD)
    problem of Raz and Shpilka (Definition 16 in the paper): instances
    are pairs of subspaces promised to be either close or far in the
    distance [Delta(V1, V2) = min norm(v1 - v2)] over unit vectors
    [v1 in V1], [v2 in V2]. *)

type t

(** [of_spanning vectors] orthonormalizes a spanning list by
    Gram-Schmidt, dropping (numerically) dependent vectors.
    @raise Invalid_argument on an empty list or inconsistent
    dimensions, or if all vectors are (numerically) zero. *)
val of_spanning : float array list -> t

(** [dim s] is the dimension of the subspace. *)
val dim : t -> int

(** [ambient s] is the dimension [m] of the ambient space. *)
val ambient : t -> int

(** [basis s] is the orthonormal basis as a list of row vectors
    (copies; safe to mutate). *)
val basis : t -> float array list

(** [project s v] is the orthogonal projection of [v] onto [s]. *)
val project : t -> float array -> float array

(** [contains ?eps s v] holds when [v] is within [eps] of its
    projection onto [s] (default [1e-8]). *)
val contains : ?eps:float -> t -> float array -> bool

(** [principal_cosines a b] is the descending list of cosines of the
    principal angles between [a] and [b] (the singular values of
    [B_a B_b^T]). *)
val principal_cosines : t -> t -> float array

(** [distance a b] is the Raz-Shpilka distance
    [Delta(a, b) = sqrt (2 - 2 * sigma_max)] where [sigma_max] is the
    largest principal cosine.  It ranges in [[0, sqrt 2]]: 0 when the
    subspaces intersect nontrivially, [sqrt 2] when orthogonal. *)
val distance : t -> t -> float

(** [random st ~ambient ~dim] samples a uniformly random [dim]-
    dimensional subspace of [R^ambient] (Gaussian vectors +
    Gram-Schmidt). *)
val random : Random.State.t -> ambient:int -> dim:int -> t

(** [closest_unit_vectors a b] returns unit vectors [(v1, v2)] in
    [(a, b)] achieving [distance a b] (the top principal vector pair). *)
val closest_unit_vectors : t -> t -> float array * float array
