(** Eigensolvers for real symmetric and complex Hermitian matrices.

    Both are based on the cyclic Jacobi rotation method, which is slow
    (cubic per sweep) but numerically robust and dependency-free — the
    matrices in this repository are at most a few hundred rows.  The
    Hermitian case is reduced to the real symmetric one through the
    standard embedding [H = A + iB  ->  [[A, -B]; [B, A]]], whose
    spectrum doubles every eigenvalue of [H]. *)

(** [symmetric a] diagonalizes the real symmetric matrix [a] (given as
    an array of rows).  Returns [(evals, evecs)] with eigenvalues in
    ascending order and [evecs.(i)] the (row-stored) eigenvector of
    [evals.(i)], forming an orthonormal basis.
    @raise Invalid_argument if [a] is not square. *)
val symmetric : float array array -> float array * float array array

(** [hermitian m] diagonalizes the Hermitian matrix [m].  Returns
    eigenvalues in ascending order and a unitary matrix whose [i]-th
    column is the eigenvector of the [i]-th eigenvalue.
    @raise Invalid_argument if [m] is not square. *)
val hermitian : Mat.t -> float array * Mat.t

(** [eigenvalues_hermitian m] is [fst (hermitian m)] — the ascending
    spectrum of a Hermitian matrix. *)
val eigenvalues_hermitian : Mat.t -> float array

(** [func_hermitian f m] applies the scalar function [f] to the
    spectrum of the Hermitian matrix [m]: returns [V diag(f lambda) V^dagger]. *)
val func_hermitian : (float -> float) -> Mat.t -> Mat.t

(** [sqrt_psd m] is the positive-semidefinite square root of a PSD
    Hermitian matrix (negative eigenvalues due to rounding are clipped
    to zero). *)
val sqrt_psd : Mat.t -> Mat.t
