type t = { ambient : int; rows : float array array }

let dot_r a b =
  let s = ref 0. in
  for k = 0 to Array.length a - 1 do
    s := !s +. (a.(k) *. b.(k))
  done;
  !s

let norm_r a = Float.sqrt (dot_r a a)

let gram_schmidt ambient vectors =
  let kept = ref [] in
  List.iter
    (fun v ->
      if Array.length v <> ambient then
        invalid_arg "Subspace: inconsistent ambient dimension";
      let w = Array.copy v in
      List.iter
        (fun u ->
          let c = dot_r u w in
          for k = 0 to ambient - 1 do
            w.(k) <- w.(k) -. (c *. u.(k))
          done)
        !kept;
      let n = norm_r w in
      if n > 1e-10 then begin
        for k = 0 to ambient - 1 do
          w.(k) <- w.(k) /. n
        done;
        kept := !kept @ [ w ]
      end)
    vectors;
  !kept

let of_spanning vectors =
  match vectors with
  | [] -> invalid_arg "Subspace.of_spanning: empty list"
  | v :: _ ->
      let ambient = Array.length v in
      let rows = gram_schmidt ambient vectors in
      if rows = [] then invalid_arg "Subspace.of_spanning: zero span";
      { ambient; rows = Array.of_list rows }

let dim s = Array.length s.rows
let ambient s = s.ambient
let basis s = Array.to_list (Array.map Array.copy s.rows)

let project s v =
  if Array.length v <> s.ambient then invalid_arg "Subspace.project: dimension";
  let out = Array.make s.ambient 0. in
  Array.iter
    (fun u ->
      let c = dot_r u v in
      for k = 0 to s.ambient - 1 do
        out.(k) <- out.(k) +. (c *. u.(k))
      done)
    s.rows;
  out

let contains ?(eps = 1e-8) s v =
  let p = project s v in
  let d = ref 0. in
  for k = 0 to s.ambient - 1 do
    let e = v.(k) -. p.(k) in
    d := !d +. (e *. e)
  done;
  Float.sqrt !d <= eps

(* The cross-Gram matrix M = A B^T of the two orthonormal bases; its
   singular values are the principal cosines. *)
let cross_gram a b =
  if a.ambient <> b.ambient then invalid_arg "Subspace: ambient mismatch";
  Array.map (fun ra -> Array.map (fun rb -> dot_r ra rb) b.rows) a.rows

let principal_cosines a b =
  let m = cross_gram a b in
  let d1 = Array.length m in
  let mmt =
    Array.init d1 (fun i -> Array.init d1 (fun j -> dot_r m.(i) m.(j)))
  in
  let evals, _ = Eig.symmetric mmt in
  let sv = Array.map (fun x -> Float.sqrt (Float.max 0. x)) evals in
  Array.sort (fun x y -> Float.compare y x) sv;
  sv

let distance a b =
  let sv = principal_cosines a b in
  let smax = Float.min 1. sv.(0) in
  Float.sqrt (Float.max 0. (2. -. (2. *. smax)))

let random st ~ambient ~dim =
  if dim < 1 || dim > ambient then invalid_arg "Subspace.random: bad dim";
  let gaussian () =
    (* Box-Muller *)
    let u1 = Float.max 1e-12 (Random.State.float st 1.) in
    let u2 = Random.State.float st 1. in
    Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
  in
  let rec build acc remaining =
    if remaining = 0 then acc
    else
      let v = Array.init ambient (fun _ -> gaussian ()) in
      build (acc @ [ v ]) (remaining - 1)
  in
  (* Oversample a little in case of numerically dependent draws. *)
  let rec try_build extra =
    let s = of_spanning (build [] (dim + extra)) in
    if Array.length s.rows >= dim then
      { s with rows = Array.sub s.rows 0 dim }
    else try_build (extra + 1)
  in
  try_build 0

let closest_unit_vectors a b =
  let m = cross_gram a b in
  let d1 = Array.length m and d2 = Array.length m.(0) in
  let mmt =
    Array.init d1 (fun i -> Array.init d1 (fun j -> dot_r m.(i) m.(j)))
  in
  let evals, evecs = Eig.symmetric mmt in
  (* largest eigenvalue is last (ascending order) *)
  let u = evecs.(d1 - 1) in
  let sigma = Float.sqrt (Float.max 0. evals.(d1 - 1)) in
  let combine coeffs rows n =
    let out = Array.make n 0. in
    Array.iteri
      (fun r c ->
        for k = 0 to n - 1 do
          out.(k) <- out.(k) +. (c *. rows.(r).(k))
        done)
      coeffs;
    out
  in
  let v1 = combine u a.rows a.ambient in
  let v2 =
    if sigma > 1e-12 then begin
      let w = Array.make d2 0. in
      for j = 0 to d2 - 1 do
        for i = 0 to d1 - 1 do
          w.(j) <- w.(j) +. (m.(i).(j) *. u.(i) /. sigma)
        done
      done;
      combine w b.rows b.ambient
    end
    else Array.copy b.rows.(0)
  in
  let norm1 = norm_r v1 and norm2 = norm_r v2 in
  ( Array.map (fun x -> x /. Float.max 1e-300 norm1) v1,
    Array.map (fun x -> x /. Float.max 1e-300 norm2) v2 )
