type t = { re : float array; im : float array }

let create n = { re = Array.make n 0.; im = Array.make n 0. }
let dim v = Array.length v.re

let basis n k =
  if k < 0 || k >= n then invalid_arg "Vec.basis: index out of range";
  let v = create n in
  v.re.(k) <- 1.;
  v

let init n f =
  let v = create n in
  for k = 0 to n - 1 do
    let z = f k in
    v.re.(k) <- z.Complex.re;
    v.im.(k) <- z.Complex.im
  done;
  v

let of_array a = init (Array.length a) (fun k -> a.(k))
let to_array v = Array.init (dim v) (fun k -> { Complex.re = v.re.(k); im = v.im.(k) })
let get v k = { Complex.re = v.re.(k); im = v.im.(k) }

let set v k z =
  v.re.(k) <- z.Complex.re;
  v.im.(k) <- z.Complex.im

let copy v = { re = Array.copy v.re; im = Array.copy v.im }

let add a b =
  if dim a <> dim b then invalid_arg "Vec.add: dimension mismatch";
  let v = create (dim a) in
  for k = 0 to dim a - 1 do
    v.re.(k) <- a.re.(k) +. b.re.(k);
    v.im.(k) <- a.im.(k) +. b.im.(k)
  done;
  v

let sub a b =
  if dim a <> dim b then invalid_arg "Vec.sub: dimension mismatch";
  let v = create (dim a) in
  for k = 0 to dim a - 1 do
    v.re.(k) <- a.re.(k) -. b.re.(k);
    v.im.(k) <- a.im.(k) -. b.im.(k)
  done;
  v

let scale_inplace z v =
  let zr = z.Complex.re and zi = z.Complex.im in
  for k = 0 to dim v - 1 do
    let r = v.re.(k) and i = v.im.(k) in
    v.re.(k) <- (zr *. r) -. (zi *. i);
    v.im.(k) <- (zr *. i) +. (zi *. r)
  done

let scale z v =
  let w = copy v in
  scale_inplace z w;
  w

let axpy ~alpha x y =
  if dim x <> dim y then invalid_arg "Vec.axpy: dimension mismatch";
  let ar = alpha.Complex.re and ai = alpha.Complex.im in
  for k = 0 to dim x - 1 do
    let r = x.re.(k) and i = x.im.(k) in
    y.re.(k) <- y.re.(k) +. (ar *. r) -. (ai *. i);
    y.im.(k) <- y.im.(k) +. (ar *. i) +. (ai *. r)
  done

let dot a b =
  if dim a <> dim b then invalid_arg "Vec.dot: dimension mismatch";
  let sr = ref 0. and si = ref 0. in
  for k = 0 to dim a - 1 do
    (* conj(a_k) * b_k *)
    sr := !sr +. (a.re.(k) *. b.re.(k)) +. (a.im.(k) *. b.im.(k));
    si := !si +. (a.re.(k) *. b.im.(k)) -. (a.im.(k) *. b.re.(k))
  done;
  { Complex.re = !sr; im = !si }

let norm v =
  let s = ref 0. in
  for k = 0 to dim v - 1 do
    s := !s +. (v.re.(k) *. v.re.(k)) +. (v.im.(k) *. v.im.(k))
  done;
  Float.sqrt !s

let normalize v =
  let n = norm v in
  if n <= 0. then invalid_arg "Vec.normalize: zero vector";
  scale (Cx.re (1. /. n)) v

let tensor a b =
  let da = dim a and db = dim b in
  let v = create (da * db) in
  for i = 0 to da - 1 do
    let ar = a.re.(i) and ai = a.im.(i) in
    for j = 0 to db - 1 do
      let k = (i * db) + j in
      v.re.(k) <- (ar *. b.re.(j)) -. (ai *. b.im.(j));
      v.im.(k) <- (ar *. b.im.(j)) +. (ai *. b.re.(j))
    done
  done;
  v

let tensor_list = function
  | [] -> invalid_arg "Vec.tensor_list: empty list"
  | v :: vs -> List.fold_left tensor v vs

let map f v = init (dim v) (fun k -> f (get v k))

let fold f acc v =
  let acc = ref acc in
  for k = 0 to dim v - 1 do
    acc := f !acc (get v k)
  done;
  !acc

let equal ?(eps = 1e-9) a b =
  dim a = dim b
  &&
  let ok = ref true in
  for k = 0 to dim a - 1 do
    if
      Float.abs (a.re.(k) -. b.re.(k)) > eps
      || Float.abs (a.im.(k) -. b.im.(k)) > eps
    then ok := false
  done;
  !ok

let pp fmt v =
  Format.fprintf fmt "[@[";
  for k = 0 to dim v - 1 do
    if k > 0 then Format.fprintf fmt ";@ ";
    Cx.pp fmt (get v k)
  done;
  Format.fprintf fmt "@]]"

let raw_re v = v.re
let raw_im v = v.im

let unsafe_of_raw re im =
  if Array.length re <> Array.length im then
    invalid_arg "Vec.unsafe_of_raw: length mismatch";
  { re; im }
