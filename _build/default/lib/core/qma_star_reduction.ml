type path_costs = { node_proofs : int array; edge_messages : int array }

let uniform ~r ~intermediate_proof ~end_proof ~edge_message =
  {
    node_proofs =
      Array.init (r + 1) (fun j ->
          if j = 0 || j = r then end_proof else intermediate_proof);
    edge_messages = Array.make r edge_message;
  }

let reduce pc ~cut =
  let r = Array.length pc.edge_messages in
  if cut < 0 || cut >= r then invalid_arg "Qma_star_reduction.reduce: bad cut";
  let left = ref 0 and right = ref 0 in
  Array.iteri
    (fun j c -> if j <= cut then left := !left + c else right := !right + c)
    pc.node_proofs;
  {
    Qdp_commcc.Qma_comm.proof_alice = !left;
    proof_bob = !right;
    communication = pc.edge_messages.(cut);
  }

let best_cut pc =
  let r = Array.length pc.edge_messages in
  let best = ref 0 and best_total = ref max_int in
  for cut = 0 to r - 1 do
    let c = reduce pc ~cut in
    let total = Qdp_commcc.Qma_comm.star_total c in
    if total < !best_total then begin
      best := cut;
      best_total := total
    end
  done;
  (!best, reduce pc ~cut:!best)

let theorem63_bound ~problem =
  Qdp_commcc.Discrepancy.qmacc_lower_bound_formula problem
