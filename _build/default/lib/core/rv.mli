(** The ranking verification protocol (Section 5.2, Algorithm 8,
    Theorem 29).

    [RV^{i,j}] asks whether terminal [i]'s input is the [j]-th largest
    among the [t] inputs, i.e. whether
    [#{k <> i : x_i >= x_k} = t - j] (Definition 9 writes the count as
    [t - j + 1] including the trivially-true self comparison).  The prover announces a
    direction bit per terminal [k] (">=" or "<") along the tree path
    from [u_i] to [u_k] — inconsistent bits on a path are caught
    deterministically — the nodes then run the [GT_{>=}] or [GT_<]
    protocol on that path, and the root checks the count of ">=" bits
    equals [t - j + 1]. *)

open Qdp_codes
open Qdp_network

type params = { n : int; seed : int; repetitions : int }

val make : ?repetitions:int -> seed:int -> n:int -> r:int -> unit -> params

(** [rv_value ~inputs ~i ~j] evaluates the predicate itself
    (Definition 9). *)
val rv_value : inputs:Gf2.t array -> i:int -> j:int -> bool

(** A prover strategy: claimed directions (entry [k]; [true] = ">=";
    entry [i] is ignored) and, for every terminal the prover lies
    about, the comparison-protocol attack is chosen optimally by the
    engine. *)
type prover =
  | Honest_directions
  | Claim of bool array

(** [honest_accept params g ~terminals ~inputs ~i ~j] is the exact
    acceptance with the honest prover (1 on yes instances, and 0 on no
    instances — the root's count check fires deterministically). *)
val honest_accept :
  params -> Graph.t -> terminals:int list -> inputs:Gf2.t array -> i:int -> j:int -> float

(** [best_attack_accept params g ~terminals ~inputs ~i ~j] is the best
    acceptance (with the [repetitions]-fold amplification applied per
    lying path) over direction claims with the correct count.  On yes
    instances this equals the honest acceptance. *)
val best_attack_accept :
  params -> Graph.t -> terminals:int list -> inputs:Gf2.t array -> i:int -> j:int -> float * string

(** [accept params g ~terminals ~inputs ~i ~j prover] evaluates a
    specific claim with [repetitions]-fold amplification of each
    per-path comparison protocol. *)
val accept :
  params ->
  Graph.t ->
  terminals:int list ->
  inputs:Gf2.t array ->
  i:int ->
  j:int ->
  prover ->
  float

(** [costs params tr ~t] accounts Theorem 29: [t - 1] parallel
    comparison protocols plus direction bits over the tree [tr]. *)
val costs : params -> Spanning_tree.t -> t:int -> Report.costs
