lib/core/gt.ml: Eq_path Fingerprint Float Gf2 List Printf Qdp_codes Qdp_commcc Qdp_fingerprint Qdp_linalg Qdp_log Report Sim Vec
