lib/core/eq_path.mli: Gf2 Qdp_codes Report
