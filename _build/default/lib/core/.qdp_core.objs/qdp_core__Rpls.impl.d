lib/core/rpls.ml: Array Float Gf2 Graph List Qdp_codes Qdp_network Report Runtime
