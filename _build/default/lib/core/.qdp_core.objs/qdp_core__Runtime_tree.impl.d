lib/core/runtime_tree.ml: Array Eq_tree Fingerprint Graph List Qdp_fingerprint Qdp_linalg Qdp_network Random Runtime Sim Spanning_tree States Vec
