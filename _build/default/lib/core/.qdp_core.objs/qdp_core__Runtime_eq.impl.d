lib/core/runtime_eq.ml: Fingerprint Graph Qdp_fingerprint Qdp_linalg Qdp_network Random Runtime Sim States Vec
