lib/core/runtime_dma.ml: Array Gf2 Graph List Qdp_codes Qdp_network Runtime String
