lib/core/variants.ml: Array Eq_path Fingerprint Float Gf2 List Printf Qdp_codes Qdp_fingerprint Report Sim
