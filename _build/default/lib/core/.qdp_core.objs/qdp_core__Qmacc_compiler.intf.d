lib/core/qmacc_compiler.mli: Lsd Qdp_commcc Qdp_linalg Qma_comm Report Vec
