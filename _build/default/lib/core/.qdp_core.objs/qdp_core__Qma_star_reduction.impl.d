lib/core/qma_star_reduction.ml: Array Qdp_commcc
