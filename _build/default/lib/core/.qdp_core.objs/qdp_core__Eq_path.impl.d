lib/core/eq_path.ml: Array Fingerprint Float Gf2 List Printf Qdp_codes Qdp_fingerprint Qdp_log Report Sim States
