lib/core/rpls.mli: Gf2 Qdp_codes Qdp_network Random Report
