lib/core/qmacc_compiler.ml: Array Eq_path Float List Lsd Printf Qdp_commcc Qdp_linalg Qma_comm Report Sim Vec
