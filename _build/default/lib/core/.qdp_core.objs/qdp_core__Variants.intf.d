lib/core/variants.mli: Gf2 Qdp_codes Report
