lib/core/qdp_log.ml: Logs
