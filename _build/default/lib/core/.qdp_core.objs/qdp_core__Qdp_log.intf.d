lib/core/qdp_log.mli: Logs
