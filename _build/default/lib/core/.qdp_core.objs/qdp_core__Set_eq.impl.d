lib/core/set_eq.ml: Array Complex Cx Eig Eq_path Fingerprint Float List Mat Printf Qdp_fingerprint Qdp_linalg Report Sim Vec
