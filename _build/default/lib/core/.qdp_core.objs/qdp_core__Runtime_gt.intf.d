lib/core/runtime_gt.mli: Gf2 Gt Qdp_codes Qdp_network Random Runtime Sim
