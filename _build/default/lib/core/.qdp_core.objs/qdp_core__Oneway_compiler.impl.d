lib/core/oneway_compiler.ml: Array Float Gf2 Graph List Oneway Printf Qdp_codes Qdp_commcc Qdp_network Report Sim Spanning_tree States
