lib/core/states.ml: Complex Cx Float Qdp_linalg Vec
