lib/core/gt.mli: Gf2 Qdp_codes Qdp_linalg Report Sim
