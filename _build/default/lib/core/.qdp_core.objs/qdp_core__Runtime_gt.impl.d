lib/core/runtime_gt.ml: Gf2 Graph Gt Qdp_codes Qdp_commcc Qdp_linalg Qdp_network Random Runtime Sim States Vec
