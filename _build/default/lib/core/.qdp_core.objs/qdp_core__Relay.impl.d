lib/core/relay.ml: Array Fingerprint Float Gf2 List Printf Qdp_codes Qdp_fingerprint Report Sim
