lib/core/exact.ml: Array Cx Eig Float Gates List Mat Printf Pure Qdp_linalg Qdp_quantum Random States Vec
