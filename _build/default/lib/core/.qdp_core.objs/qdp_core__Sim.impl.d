lib/core/sim.ml: Array Complex Cx Float Hashtbl List Oneway Qdp_commcc Qdp_linalg Qdp_network Qdp_quantum Random States
