lib/core/runtime_eq.mli: Gf2 Qdp_codes Qdp_network Random Runtime Sim
