lib/core/report.ml: Format String
