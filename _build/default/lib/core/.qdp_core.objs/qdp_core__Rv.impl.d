lib/core/rv.ml: Array Eq_path Float Gf2 Gt List Printf Qdp_codes Qdp_network Report Sim Spanning_tree String
