lib/core/states.mli: Qdp_linalg Vec
