lib/core/rv.mli: Gf2 Graph Qdp_codes Qdp_network Report Spanning_tree
