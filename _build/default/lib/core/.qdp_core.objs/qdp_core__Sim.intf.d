lib/core/sim.mli: Oneway Qdp_commcc Qdp_linalg Qdp_network Random
