lib/core/sep_sim.mli: Mat Qdp_linalg Random Vec
