lib/core/lower_bounds.mli: Gf2 Qdp_codes Random
