lib/core/eq_tree.ml: Array Eq_path Fingerprint Gf2 List Printf Qdp_codes Qdp_fingerprint Qdp_network Random Report Sim Spanning_tree States
