lib/core/runtime_tree.mli: Eq_tree Gf2 Graph Qdp_codes Qdp_network Random Runtime
