lib/core/lower_bounds.ml: Array Cx Fingerprint Float Gf2 Hashtbl Qdp_codes Qdp_fingerprint Qdp_linalg Random Sim String Vec
