lib/core/oneway_compiler.mli: Gf2 Graph Oneway Qdp_codes Qdp_commcc Qdp_network Report
