lib/core/dqma.mli: Eq_path Eq_tree Format Gf2 Graph Gt Qdp_codes Qdp_network Relay Report Rpls Runtime_dma Set_eq Sim Variants
