lib/core/sep_sim.ml: Array Complex Cx Eig Float Mat Qdp_linalg Random Vec
