lib/core/dqma.ml: Array Eq_path Eq_tree Float Format Gf2 Graph Gt List Printf Qdp_codes Qdp_network Random Relay Report Rpls Runtime_dma Set_eq Sim Variants
