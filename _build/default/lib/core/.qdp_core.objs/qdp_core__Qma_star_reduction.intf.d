lib/core/qma_star_reduction.mli: Qdp_commcc
