lib/core/relay.mli: Gf2 Qdp_codes Report Sim
