lib/core/runtime_dma.mli: Gf2 Qdp_codes Qdp_network Runtime
