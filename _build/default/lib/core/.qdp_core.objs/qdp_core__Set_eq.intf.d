lib/core/set_eq.mli: Gf2 Qdp_codes Qdp_linalg Report Sim Vec
