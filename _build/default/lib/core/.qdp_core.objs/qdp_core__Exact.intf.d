lib/core/exact.mli: Qdp_linalg Random Vec
