open Qdp_codes
open Qdp_network

type prover = Honest of Gf2.t | Assignment of Gf2.t array

type node_state = {
  proof : Gf2.t;
  mutable verdict : Runtime.verdict;
}

let run ~r x y prover =
  let g = Graph.path r in
  let proofs =
    match prover with
    | Honest z -> Array.make (r + 1) z
    | Assignment a ->
        if Array.length a <> r + 1 then
          invalid_arg "Runtime_dma: one proof string per node";
        a
  in
  let program =
    {
      Runtime.init =
        (fun id ->
          let proof = proofs.(id) in
          let verdict : Runtime.verdict =
            if id = 0 && not (Gf2.equal proof x) then Reject
            else if id = r && not (Gf2.equal proof y) then Reject
            else Accept
          in
          { proof; verdict });
      round =
        (fun ~round ~id state ~inbox ->
          match round with
          | 1 ->
              let out =
                List.map
                  (fun v -> (v, Gf2.to_string state.proof))
                  (Graph.neighbours g id)
              in
              (state, out)
          | 2 ->
              List.iter
                (fun (_, s) ->
                  if not (String.equal s (Gf2.to_string state.proof)) then
                    state.verdict <- Runtime.Reject)
                inbox;
              (state, [])
          | _ -> (state, []));
      finish = (fun ~id:_ state -> state.verdict);
    }
  in
  let verdicts, stats = Runtime.run g ~rounds:2 program in
  (Runtime.global_verdict verdicts = Runtime.Accept, stats)

let bits_per_node ~n = n
