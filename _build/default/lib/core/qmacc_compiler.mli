(** The compiler from QMA one-way communication protocols to dQMA
    protocols on a path (Section 7, Algorithm 10, Theorem 42), and the
    Theorem 46 / Proposition 47 pipeline that turns {e any} dQMA
    protocol into a dQMA^sep one by routing through the LSD problem.

    Algorithm 10: the prover hands [v_0] the [gamma]-qubit Merlin
    proof; [v_0] applies Alice's (purified) operation and launches the
    resulting message state down the symmetrize-and-SWAP-test chain;
    [v_r] applies Bob's measurement [M'].  In the concrete LSD
    instantiation Alice's operation is the projective check onto her
    subspace, so [v_0] itself can reject. *)

open Qdp_linalg
open Qdp_commcc

type params = { r : int; repetitions : int }

val make : ?repetitions:int -> r:int -> unit -> params

(** A prover strategy. [Honest] plays Merlin's optimal proof and loads
    every intermediate register with the honest forwarded message;
    [Proof psi] hands [v_0] an arbitrary proof and loads the
    intermediates with the message Alice's operation produces from it
    (the consistent product strategy — inconsistent registers only
    lower the SWAP-test acceptance). *)
type prover = Honest | Proof of Vec.t

(** [single_accept params proto xa xb prover] is the exact acceptance
    of one repetition of the compiled protocol. *)
val single_accept :
  params -> ('a, 'b) Qma_comm.oneway -> 'a -> 'b -> prover -> float

(** [accept] is the [repetitions]-fold power. *)
val accept :
  params -> ('a, 'b) Qma_comm.oneway -> 'a -> 'b -> prover -> float

(** [best_attack_accept params proto xa xb ~candidate_proofs] maximizes
    over the supplied Merlin proofs (e.g. the honest proofs of nearby
    yes instances). *)
val best_attack_accept :
  params ->
  ('a, 'b) Qma_comm.oneway ->
  'a ->
  'b ->
  candidate_proofs:(string * Vec.t) list ->
  float * string

(** [costs params proto] accounts Theorem 42:
    [c(v_0) = k gamma], intermediate [c(v_j) = 2 k (gamma + mu)],
    messages [k (gamma + mu)] per edge. *)
val costs : params -> ('a, 'b) Qma_comm.oneway -> Report.costs

(** {2 The Theorem 46 pipeline} *)

(** Costs of a dQMA protocol to be simulated: total proof plus the
    cheapest edge cut of its communication (the [C] of Theorem 46). *)
val pipeline_c : total_proof:int -> min_edge_message:int -> int

(** [sep_costs ~r ~c] is the Theorem 46 bound [r^2 c^2 log c] on the
    local proof size of the simulating dQMA^sep protocol (constant 1),
    via QMA* -> QMA (inequality (1)) -> LSD (Lemma 44) -> Algorithm
    10. *)
val sep_costs : r:int -> c:int -> float

(** [run_lsd_pipeline params ~ambient ~inst] executes the tail of the
    pipeline concretely: the LSD one-way protocol compiled onto the
    path, returning (honest acceptance, best-attack acceptance over
    the principal-vector proofs).  On close instances the first number
    is near 1; on far instances both are small. *)
val run_lsd_pipeline :
  params -> ambient:int -> inst:Lsd.instance -> float * float
