(** dQMA protocol variants discussed in Section 1.5 and the related
    work: a concrete dQCMA protocol (classical proofs, quantum
    verification) for EQ, and the LOCC conversion of Le Gall, Miyamoto
    and Nishimura (Lemma 20 / Corollary 21).

    The dQCMA protocol makes the open problem's trade-off measurable:
    with classical proofs the prover must commit to strings, each node
    regenerates fingerprints locally (so parallel repetition is free in
    {e proof} size — classical strings are reusable), but each node
    carries the full [n]-bit string: the [log n] proof advantage of
    dQMA is lost while the quantum {e communication} advantage
    remains. *)

open Qdp_codes

type params = { n : int; r : int; seed : int; repetitions : int }

val make : ?repetitions:int -> seed:int -> n:int -> r:int -> unit -> params

(** A dQCMA prover commits to one classical string per intermediate
    node. *)
type prover =
  | Honest_strings  (** every node receives [x] *)
  | Strings of Gf2.t array  (** length [r - 1] *)

(** [single_accept params x y prover] is the exact one-repetition
    acceptance. *)
val single_accept : params -> Gf2.t -> Gf2.t -> prover -> float

(** [accept params x y prover] — node [j] builds the fingerprint of
    its claimed string, forwards one copy right and SWAP tests the
    arriving register against a fresh local copy; [v_r] runs the EQ
    POVM.  Exact, with the [repetitions]-fold power applied (classical
    proofs are reused across repetitions). *)
val accept : params -> Gf2.t -> Gf2.t -> prover -> float

(** [best_attack_accept params x y] maximizes over all-[x], all-[y]
    and every single-switch string assignment. *)
val best_attack_accept : params -> Gf2.t -> Gf2.t -> float * string

(** [costs params] — classical proof bits are charged like qubits:
    [n] per intermediate node, independent of the repetition count;
    messages remain [k q] qubits per edge. *)
val costs : params -> Report.costs

(** {2 LOCC dQMA (Lemma 20 / Corollary 21)} *)

(** [locc_transform costs ~d_max] is the Lemma 20 cost transformation
    (constants 1): a dQMA protocol with local proof [s_c], local
    message [s_m] and total verification traffic [s_tm] becomes an
    LOCC dQMA protocol with local proof [s_c + d_max s_m s_tm] and
    local message [s_m s_tm], at [+gamma] soundness. *)
val locc_transform : Report.costs -> d_max:int -> Report.costs

(** [corollary21_local_proof ~d_max ~vertices ~r ~n] is Corollary 21's
    local proof bound [d_max |V| r^4 log^2 n] for EQ^t (constant 1). *)
val corollary21_local_proof : d_max:int -> vertices:int -> r:int -> n:int -> float
