open Qdp_linalg

type instance = { d : int; left : Vec.t; pairs : Mat.t array; final : Mat.t }

let swap_projector d =
  Mat.scale (Cx.re 0.5) (Mat.add (Mat.identity (d * d)) (Mat.swap_gate d))

(* symmetrization channel on a pair state *)
let symmetrize d rho =
  let s = Mat.swap_gate d in
  Mat.scale (Cx.re 0.5) (Mat.add rho (Mat.mul (Mat.mul s rho) s))

let check inst =
  let d = inst.d in
  if Vec.dim inst.left <> d then invalid_arg "Sep_sim: left dimension";
  if Mat.rows inst.final <> d || Mat.cols inst.final <> d then
    invalid_arg "Sep_sim: final dimension";
  Array.iter
    (fun rho ->
      if Mat.rows rho <> d * d || Mat.cols rho <> d * d then
        invalid_arg "Sep_sim: pair dimension")
    inst.pairs

(* Forward contraction step: given the boundary operator E on the
   arriving register and the node's (symmetrized) pair state rho on
   (kept, sent), produce the new boundary on the sent register:
   E'[s, s''] = sum_{a k a' k'} Pi[(a k),(a' k')] E[a', a] rho[(k' s),(k s'')]. *)
let forward_step d pi e rho =
  let out = Mat.create d d in
  for s = 0 to d - 1 do
    for s'' = 0 to d - 1 do
      let acc = ref Cx.zero in
      for a = 0 to d - 1 do
        for k = 0 to d - 1 do
          for a' = 0 to d - 1 do
            for k' = 0 to d - 1 do
              let p = Mat.get pi ((a * d) + k) ((a' * d) + k') in
              if p.Complex.re <> 0. || p.Complex.im <> 0. then
                acc :=
                  Cx.add !acc
                    (Cx.mul p
                       (Cx.mul (Mat.get e a' a)
                          (Mat.get rho ((k' * d) + s) ((k * d) + s''))))
            done
          done
        done
      done;
      Mat.set out s s'' !acc
    done
  done;
  out

(* Backward contraction step: given the effective POVM B on the sent
   register, pull it through the node to an effective POVM on the
   arriving register:
   B'[a, a'] = sum_{k k' s s'} Pi[(a k),(a' k')] B[s, s'] rho[(k' s'),(k s)]. *)
let backward_step d pi b rho =
  let out = Mat.create d d in
  for a = 0 to d - 1 do
    for a' = 0 to d - 1 do
      let acc = ref Cx.zero in
      for k = 0 to d - 1 do
        for k' = 0 to d - 1 do
          for s = 0 to d - 1 do
            for s' = 0 to d - 1 do
              let p = Mat.get pi ((a * d) + k) ((a' * d) + k') in
              if p.Complex.re <> 0. || p.Complex.im <> 0. then
                acc :=
                  Cx.add !acc
                    (Cx.mul p
                       (Cx.mul (Mat.get b s s')
                          (Mat.get rho ((k' * d) + s') ((k * d) + s))))
            done
          done
        done
      done;
      Mat.set out a a' !acc
    done
  done;
  out

let accept inst =
  check inst;
  let d = inst.d in
  let pi = swap_projector d in
  let e = ref (Mat.of_vec inst.left) in
  Array.iter
    (fun rho -> e := forward_step d pi !e (symmetrize d rho))
    inst.pairs;
  (Mat.trace (Mat.mul inst.final !e)).Complex.re

let product_instance ~d ~left ~states ~final =
  {
    d;
    left;
    pairs = Array.map (fun s -> Mat.of_vec (Vec.tensor s s)) states;
    final;
  }

(* The acceptance is tr[rho_j G_j] for the effective operator
   G[(k s),(k' s')] = sum_{a a'} Pi[(a k),(a' k')] E[a', a] B[s, s'];
   with the symmetrization channel folded in (self-adjoint), the
   optimal node proof is the top eigenvector of (G + S G S)/2. *)
let effective_operator d pi e b =
  let g = Mat.create (d * d) (d * d) in
  for k = 0 to d - 1 do
    for s = 0 to d - 1 do
      for k' = 0 to d - 1 do
        for s' = 0 to d - 1 do
          let acc = ref Cx.zero in
          for a = 0 to d - 1 do
            for a' = 0 to d - 1 do
              acc :=
                Cx.add !acc
                  (Cx.mul
                     (Mat.get pi ((a * d) + k) ((a' * d) + k'))
                     (Cx.mul (Mat.get e a' a) (Mat.get b s s')))
            done
          done;
          (* accept = sum rho[(k' s'),(k s)] G[(k s),(k' s')] *)
          Mat.set g ((k * d) + s) ((k' * d) + s') !acc
        done
      done
    done
  done;
  g

(* maximize <a (x) b| G |a (x) b> by alternating eigenproblems on the
   two halves *)
let best_product_pair st ~d g =
  let gaussian () =
    let u1 = Float.max 1e-12 (Random.State.float st 1.) in
    let u2 = Random.State.float st 1. in
    Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
  in
  let rand () =
    Vec.normalize (Vec.init d (fun _ -> Cx.make (gaussian ()) (gaussian ())))
  in
  let a = ref (rand ()) and b = ref (rand ()) in
  let top g_eff =
    let evals, evecs = Eig.hermitian g_eff in
    (evals.(d - 1), Vec.init d (fun i -> Mat.get evecs i (d - 1)))
  in
  let value = ref 0. in
  for _ = 1 to 8 do
    (* effective operator on a with b fixed *)
    let ga =
      Mat.init d d (fun k k' ->
          let acc = ref Cx.zero in
          for s = 0 to d - 1 do
            for s' = 0 to d - 1 do
              acc :=
                Cx.add !acc
                  (Cx.mul
                     (Cx.mul (Cx.conj (Vec.get !b s))
                        (Mat.get g ((k * d) + s) ((k' * d) + s')))
                     (Vec.get !b s'))
            done
          done;
          !acc)
    in
    let ga = Mat.scale (Cx.re 0.5) (Mat.add ga (Mat.adjoint ga)) in
    let _, va = top ga in
    a := va;
    let gb =
      Mat.init d d (fun s s' ->
          let acc = ref Cx.zero in
          for k = 0 to d - 1 do
            for k' = 0 to d - 1 do
              acc :=
                Cx.add !acc
                  (Cx.mul
                     (Cx.mul (Cx.conj (Vec.get !a k))
                        (Mat.get g ((k * d) + s) ((k' * d) + s')))
                     (Vec.get !a k'))
            done
          done;
          !acc)
    in
    let gb = Mat.scale (Cx.re 0.5) (Mat.add gb (Mat.adjoint gb)) in
    let lb, vb = top gb in
    b := vb;
    value := lb
  done;
  (Mat.of_vec (Vec.tensor !a !b), !value)

let optimize_generic update_node st ~d ~r ~left ~final ~sweeps =
  if r < 2 then invalid_arg "Sep_sim.optimize: r >= 2";
  let pi = swap_projector d in
  let gaussian () =
    let u1 = Float.max 1e-12 (Random.State.float st 1.) in
    let u2 = Random.State.float st 1. in
    Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
  in
  let random_pure () =
    let v =
      Vec.normalize
        (Vec.init (d * d) (fun _ -> Cx.make (gaussian ()) (gaussian ())))
    in
    Mat.of_vec v
  in
  let pairs = Array.init (r - 1) (fun _ -> random_pure ()) in
  for _ = 1 to sweeps do
    for j = 0 to r - 2 do
      let e = ref (Mat.of_vec left) in
      for i = 0 to j - 1 do
        e := forward_step d pi !e (symmetrize d pairs.(i))
      done;
      let b = ref final in
      for i = r - 2 downto j + 1 do
        b := backward_step d pi !b (symmetrize d pairs.(i))
      done;
      let g = effective_operator d pi !e !b in
      let s = Mat.swap_gate d in
      let g_sym =
        Mat.scale (Cx.re 0.5) (Mat.add g (Mat.mul (Mat.mul s g) s))
      in
      let g_herm =
        Mat.scale (Cx.re 0.5) (Mat.add g_sym (Mat.adjoint g_sym))
      in
      pairs.(j) <- update_node g_herm
    done
  done;
  let final_inst = { d; left; pairs; final } in
  (final_inst, accept final_inst)

let optimize st ~d ~r ~left ~final ~sweeps =
  let update g =
    let evals, evecs = Eig.hermitian g in
    ignore evals;
    let top = (d * d) - 1 in
    Mat.of_vec (Vec.init (d * d) (fun i -> Mat.get evecs i top))
  in
  optimize_generic update st ~d ~r ~left ~final ~sweeps

let optimize_product st ~d ~r ~left ~final ~sweeps =
  let update g = fst (best_product_pair st ~d g) in
  optimize_generic update st ~d ~r ~left ~final ~sweeps
