(** Executable versions of the paper's lower-bound arguments
    (Sections 4.2 and 8).

    Lower bounds do not run as protocols; they run as {e attacks}: a
    protocol whose resources sit below the bound is presented with the
    constructed fooling instance and measurably loses soundness.  This
    module implements the three constructions the paper's bounds rest
    on, plus the closed-form bounds for the Table 3 rows. *)

open Qdp_codes

(** {2 Lemma 23 / Proposition 24: the classical fooling-set splice}

    A 1-round dMA protocol on a path, abstracted by how the honest
    prover computes per-node proofs on fooling inputs [(x, x)] and how
    the nodes verify.  When the two middle nodes see at most
    [2 proof_bits < n] proof bits, two fooling inputs collide there and
    the spliced proof breaks soundness. *)

type dma_path_protocol = {
  dma_r : int;
  proof_bits : int;  (** per-node proof size in bits *)
  honest_proofs : Gf2.t -> string array;
      (** the honest prover's per-node proofs on the fooling input
          [(x, x)] *)
  dma_accepts : x:Gf2.t -> y:Gf2.t -> proofs:string array -> bool;
      (** one deterministic verification round: do all nodes accept? *)
}

(** [truncation_protocol ~n ~r ~c] is the natural dMA protocol for EQ
    with budget [c] bits per node: the prover writes the first
    [min c n] bits of [x] everywhere; neighbours compare, ends check
    their own strings.  Complete, and sound exactly when [c >= n]. *)
val truncation_protocol : n:int -> r:int -> c:int -> dma_path_protocol

(** [hash_protocol ~seed ~n ~r ~c] replaces truncation by a seeded
    [c]-bit hash — sound against random pairs but broken by the
    collision splice. *)
val hash_protocol : seed:int -> n:int -> r:int -> c:int -> dma_path_protocol

(** The output of a successful splice: two distinct fooling inputs
    whose middle proofs collide, and the spliced proof assignment. *)
type splice = {
  splice_x : Gf2.t;
  splice_y : Gf2.t;
  spliced_proofs : string array;
}

(** [fooling_splice proto ~n ~limit] searches fooling inputs
    [(k, k)] for [k < limit] for a middle-proof collision and returns
    the Lemma 23 splice, or [None] if all middle proofs are distinct
    (which requires [2 * proof_bits >= log2 limit]). *)
val fooling_splice : dma_path_protocol -> n:int -> limit:int -> splice option

(** [splice_breaks_soundness proto s] checks that the protocol accepts
    the spliced no-instance — the soundness violation itself. *)
val splice_breaks_soundness : dma_path_protocol -> splice -> bool

(** {2 Lemma 48 / Claim 49: packing states into few qubits} *)

(** [max_pairwise_overlap_random st ~qubits ~count] samples [count]
    Haar-ish random pure states on [qubits] qubits and returns the
    maximum pairwise overlap [|<a|b>|] — which provably approaches 1
    once [count >> 2^(2^qubits)]-ish, and empirically rises as
    [qubits] drops below [log2 (log2 count)] scale. *)
val max_pairwise_overlap_random :
  Random.State.t -> qubits:int -> count:int -> float

(** [fingerprint_family_max_overlap ~seed ~n] is the exact maximum
    overlap over all [2^n] fingerprint pairs of the standard family
    ([n <= 12]). *)
val fingerprint_family_max_overlap : seed:int -> n:int -> float

(** {2 Lemma 53 / Corollary 55: the proof-free-gap splice}

    In a 1-round protocol where nodes [gap] and [gap + 1] receive no
    proof, no information crosses the gap, so gluing the left marginal
    of an accepting [(x, x)] proof to the right marginal of an
    accepting [(y, y)] proof is accepted on the no-instance [(x, y)]
    with the product of the two completeness values. *)

(** [gap_splice_accept ~seed ~n ~r ~gap x y] evaluates exactly the
    acceptance of the spliced product proof on the gapped EQ chain
    ([1.0] whenever both halves are honest-complete), against
    [Problems.eq x y = false]. *)
val gap_splice_accept :
  seed:int -> n:int -> r:int -> gap:int -> Gf2.t -> Gf2.t -> float

(** {2 Table 3 closed forms} *)

(** [thm51_total_bound ~r ~n] is [r log2 n] — the dQMA^sep,sep total
    proof bound for EQ/GT. *)
val thm51_total_bound : r:int -> n:int -> float

(** [thm52_bound ~r ~n ~eps ~eps'] is
    [(log2 n)^{1/2 - eps} / r^{1 + eps'}]. *)
val thm52_bound : r:int -> n:int -> eps:float -> eps':float -> float

(** [cor55_bound ~r] is [r] — the total proof bound for any
    non-constant function. *)
val cor55_bound : r:int -> float

(** [thm56_bound ~n ~eps] is [(log2 n)^{1/4 - eps}]. *)
val thm56_bound : n:int -> eps:float -> float
