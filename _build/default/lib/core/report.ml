type costs = {
  local_proof_qubits : int;
  total_proof_qubits : int;
  local_message_qubits : int;
  total_message_qubits : int;
  rounds : int;
}

let zero =
  {
    local_proof_qubits = 0;
    total_proof_qubits = 0;
    local_message_qubits = 0;
    total_message_qubits = 0;
    rounds = 0;
  }

let pp_costs fmt c =
  Format.fprintf fmt
    "proof: local %d / total %d qubits; msg: local %d / total %d qubits; %d round(s)"
    c.local_proof_qubits c.total_proof_qubits c.local_message_qubits
    c.total_message_qubits c.rounds

type row = {
  label : string;
  params : string;
  costs : costs;
  completeness : float;
  soundness_error : float;
  paper_formula : string;
  paper_value : float;
}

let pp_header fmt () =
  Format.fprintf fmt "%-26s %-24s %10s %10s %8s %9s  %-28s %10s@\n" "protocol"
    "params" "loc.proof" "tot.proof" "compl." "snd.err" "paper bound" "value";
  Format.fprintf fmt "%s@\n" (String.make 132 '-')

let pp_row fmt r =
  Format.fprintf fmt "%-26s %-24s %10d %10d %8.4f %9.2e  %-28s %10.1f@\n"
    r.label r.params r.costs.local_proof_qubits r.costs.total_proof_qubits
    r.completeness r.soundness_error r.paper_formula r.paper_value

let ceil_log2 k =
  let rec bits acc v = if v <= 1 then acc else bits (acc + 1) ((v + 1) / 2) in
  bits 0 k
