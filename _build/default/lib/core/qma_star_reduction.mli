(** The node-splitting reduction from dQMA protocols to QMA*
    communication protocols (Section 8.2, Algorithm 11).

    Cutting the path between [v_i] and [v_{i+1}] and letting Alice
    simulate the left group and Bob the right turns any dQMA protocol
    into a QMA* protocol whose cost is the total proof size plus the
    traffic on the cut edge; minimizing over cuts gives Theorem 63's
    reduction, and combining with Klauck's discrepancy bounds gives the
    Table 3 rows for DISJ, IP and P_AND. *)

(** Per-node proof sizes and per-edge message sizes of a dQMA protocol
    on a path [v_0 .. v_r] ([edge j] joins [v_j] and [v_{j+1}]). *)
type path_costs = {
  node_proofs : int array;  (** length [r + 1] *)
  edge_messages : int array;  (** length [r] *)
}

(** [of_report r ~costs] expands a uniform {!Report.costs} into
    per-node / per-edge arrays (end nodes receive no proof when
    [local_proof_qubits] accounts only intermediates — the convention
    used by the protocol modules — so this takes explicit arrays
    instead; see {!uniform}). *)
val uniform : r:int -> intermediate_proof:int -> end_proof:int -> edge_message:int -> path_costs

(** [reduce pc ~cut] is the QMA* cost triple of the Algorithm 11
    reduction at the given cut edge: Alice's proof is the sum of the
    left group's proofs, Bob's the right's, and the communication is
    the cut edge's traffic. *)
val reduce : path_costs -> cut:int -> Qdp_commcc.Qma_comm.star_costs

(** [best_cut pc] minimizes the QMA* total over cuts and returns
    [(cut, costs)]. *)
val best_cut : path_costs -> int * Qdp_commcc.Qma_comm.star_costs

(** [theorem63_bound ~total ~problem] evaluates the Theorem 63 chain on
    a concrete problem: the reduction says any dQMA protocol of total
    proof+communication [total] yields a QMA* protocol of cost
    [<= total]; Klauck's bound then requires
    [total = Omega (sqrt (log sdisc1 f))].  Returns the concrete lower
    bound from {!Qdp_commcc.Discrepancy.qmacc_lower_bound_formula}
    (None when the problem has no registered bound). *)
val theorem63_bound : problem:Qdp_commcc.Problems.t -> float option
