(* Shared Logs source for the protocol engines; enable with
   Logs.Src.set_level (debug traces of the attack searches). *)
let src = Logs.Src.create "qdp.core" ~doc:"dQMA protocol engines"

module Log = (val Logs.src_log src : Logs.LOG)
