(** Shared {!Logs} source for the protocol engines.  Set its level to
    [Debug] to trace attack-library searches. *)

val src : Logs.src

module Log : Logs.LOG
