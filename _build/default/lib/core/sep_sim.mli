(** Exact acceptance engine for the dQMA^sep,sep proof class with
    {e within-node} entanglement: each intermediate node's two-register
    proof may be an arbitrary (mixed, entangled) state on
    [C^d (x) C^d], while different nodes' proofs remain in tensor
    product — precisely the proofs a prover restricted as in
    Definition 8 can send when we do not further restrict each node's
    local pair to a product.

    The local tests act on pairwise-disjoint register pairs that chain
    through each node's proof, so "all nodes accept" contracts as a 1-D
    tensor network: a boundary operator of dimension [d] is threaded
    through each node's pair state.  Everything here is exact; the
    register dimension [d] is meant to be small (toy fingerprints), as
    each step manipulates operators on [C^{d^3}].

    Together with {!Sim} (product pairs) and {!Exact} (global
    entanglement) this completes the measured hierarchy

    [best product <= best node-entangled <= best global-entangled],

    all three computable exactly on the same toy instance. *)

open Qdp_linalg

(** A chain instance: [v_0] sends the pure state [left]; node [j]'s
    proof is the density matrix [pairs.(j-1)] on [C^d (x) C^d]
    (register order: kept, sent); [v_r] measures the POVM element
    [final] on the arriving register. *)
type instance = {
  d : int;
  left : Vec.t;
  pairs : Mat.t array;
  final : Mat.t;  (** a [d x d] POVM element, [0 <= final <= I] *)
}

(** [accept inst] is the exact probability that all nodes accept,
    marginalized over the symmetrization coins.
    @raise Invalid_argument on dimension mismatches. *)
val accept : instance -> float

(** [product_instance ~d ~left ~states ~final] builds the instance
    with node [j] holding the pure product [s_j (x) s_j] — the {!Sim}
    proof class, used for cross-validation. *)
val product_instance :
  d:int -> left:Vec.t -> states:Vec.t array -> final:Mat.t -> instance

(** [optimize st ~d ~r ~left ~final ~sweeps] runs coordinate ascent
    over the node proofs: each pass fixes all but one node's pair
    state and replaces it by the top eigenvector of the effective
    acceptance operator (the acceptance is linear in each [rho_j]).
    Returns the optimized instance and its acceptance — a lower bound
    on the dQMA^sep soundness error that dominates every product
    attack. *)
val optimize :
  Random.State.t ->
  d:int ->
  r:int ->
  left:Vec.t ->
  final:Mat.t ->
  sweeps:int ->
  instance * float

(** [optimize_product st ~d ~r ~left ~final ~sweeps] is the same
    coordinate ascent restricted to pure {e product} pairs
    [a_j (x) b_j] (each half updated by an exact eigenproblem with the
    other half fixed) — the best attack in {!Sim}'s proof class,
    certifying how close the hand-written attack library (geodesic /
    step / constant) comes to the true product optimum. *)
val optimize_product :
  Random.State.t ->
  d:int ->
  r:int ->
  left:Vec.t ->
  final:Mat.t ->
  sweeps:int ->
  instance * float
