(** The compiler from one-way quantum communication protocols to dQMA
    protocols on general graphs (Section 6, Algorithm 9, Theorems 30
    and 32).

    For a function [f] with a one-way protocol of cost [s], the
    compiled protocol decides [forall_t f] on a network of radius [r]
    with [t] terminals using local proofs of size
    [O(t^2 r^2 s log(n + t + r))]: for every terminal [u_j] a spanning
    tree [T_j] rooted at [u_j] is built, the root's message state is
    flooded toward the leaves (each internal node receiving [delta + 1]
    prover copies, randomly permuting them, keeping one for a SWAP test
    against its parent's register and forwarding the rest), and each
    leaf runs Bob's measurement.  Messages flow from root to leaves —
    the reverse of the EQ protocol — because Bob's operation must run
    at every leaf. *)

open Qdp_codes
open Qdp_network
open Qdp_commcc

type params = {
  repetitions : int;  (** per-tree parallel repetitions, paper: [42 r^2] *)
  amplification : int;
      (** [O(log (n + t + r))] repetitions of the underlying one-way
          protocol (the [pi''] of Theorem 30) *)
}

(** [make ?repetitions ?amplification ~r ~t ~n ()] fills in the paper's
    choices. *)
val make : ?repetitions:int -> ?amplification:int -> r:int -> t:int -> n:int -> unit -> params

(** A product prover strategy for the compiled protocol. *)
type prover =
  | Honest  (** every register carries the respective root's message *)
  | Constant_input of Gf2.t
      (** every register carries the message of a fixed input [z] *)
  | Constant_of_terminal of int
      (** every register carries terminal [k]'s message, in all trees *)
  | Depth_geodesic of int
      (** registers interpolate (register-wise geodesics) from the
          root's message toward terminal [k]'s message as depth grows —
          the down-tree analogue of the path interpolation attack *)

(** [single_accept params proto g ~terminals ~inputs prover] is the
    exact acceptance of one repetition: the product over the [t]
    spanning trees of the down-tree acceptance. *)
val single_accept :
  params ->
  Oneway.t ->
  Graph.t ->
  terminals:int list ->
  inputs:Gf2.t array ->
  prover ->
  float

(** [accept] is the [repetitions]-fold power of {!single_accept}. *)
val accept :
  params ->
  Oneway.t ->
  Graph.t ->
  terminals:int list ->
  inputs:Gf2.t array ->
  prover ->
  float

(** [best_attack_accept params proto g ~terminals ~inputs] maximizes
    the single-repetition acceptance over the built-in prover
    library. *)
val best_attack_accept :
  params ->
  Oneway.t ->
  Graph.t ->
  terminals:int list ->
  inputs:Gf2.t array ->
  float * string

(** [costs params proto g ~terminals] accounts Theorem 30/32 over the
    actual trees: per tree and repetition, an internal node with
    [delta] children receives [(delta + 1) * amplification * s]
    qubits. *)
val costs : params -> Oneway.t -> Graph.t -> terminals:int list -> Report.costs

(** [paper_local_bound ~t ~r ~s ~n] is
    [t^2 r^2 s log2 (n + t + r)] with constant 1 (Theorem 32's shape). *)
val paper_local_bound : t:int -> r:int -> s:int -> n:int -> float
