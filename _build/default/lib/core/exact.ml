open Qdp_linalg
open Qdp_quantum

type config = { r : int; qubits : int }

let proof_qubits cfg = 2 * cfg.qubits * (cfg.r - 1)

let toy_state ~qubits k =
  let dim = 1 lsl qubits in
  let st = Random.State.make [| k; qubits; 0x707 |] in
  let gaussian () =
    let u1 = Float.max 1e-12 (Random.State.float st 1.) in
    let u2 = Random.State.float st 1. in
    Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
  in
  (* real amplitudes: fingerprint-like, so the geodesic interpolation
     attack is the natural product benchmark *)
  Vec.normalize (Vec.init dim (fun _ -> Cx.re (gaussian ())))

let layout cfg =
  let b = cfg.qubits in
  let regs = ref [ ("L", b) ] in
  for j = 1 to cfg.r - 1 do
    regs := !regs @ [ (Printf.sprintf "R%d0" j, b); (Printf.sprintf "R%d1" j, b) ]
  done;
  for j = 1 to cfg.r - 1 do
    regs := !regs @ [ (Printf.sprintf "C%d" j, 1) ]
  done;
  Pure.layout !regs

(* The pipeline is linear in the proof: build the final (unnormalized)
   global state for a given proof filling the intermediate registers. *)
let final_state cfg ~x_state ~y_state ~proof =
  let r = cfg.r in
  let lay = layout cfg in
  let coins = Vec.basis (1 lsl (r - 1)) 0 in
  let global = Vec.tensor x_state (Vec.tensor proof coins) in
  let s = ref (Pure.of_global lay global) in
  for j = 1 to r - 1 do
    let c = Printf.sprintf "C%d" j in
    s := Pure.apply_on !s [ c ] Gates.hadamard;
    s :=
      Pure.controlled_swap !s ~control:c (Printf.sprintf "R%d0" j)
        (Printf.sprintf "R%d1" j)
  done;
  (* SWAP test at node j compares the register arriving from the left
     with the kept one: pairs (L, R10), (R11, R20), ... *)
  s := Pure.project_sym !s [ "L"; "R10" ];
  for j = 1 to r - 2 do
    s :=
      Pure.project_sym !s
        [ Printf.sprintf "R%d1" j; Printf.sprintf "R%d0" (j + 1) ]
  done;
  (* v_r's POVM on the arriving register *)
  s :=
    Pure.apply_on !s
      [ Printf.sprintf "R%d1" (r - 1) ]
      (Mat.of_vec y_state);
  !s

let accept_prob cfg ~x_state ~y_state ~proof =
  if cfg.r < 2 then Cx.norm2 (Vec.dot y_state x_state)
  else Pure.norm2 (final_state cfg ~x_state ~y_state ~proof)

let product_proof cfg pairs =
  if Array.length pairs <> cfg.r - 1 then
    invalid_arg "Exact.product_proof: need r - 1 pairs";
  let parts =
    Array.to_list pairs
    |> List.concat_map (fun (a, b) -> [ a; b ])
  in
  Vec.tensor_list parts

let honest_proof cfg state =
  product_proof cfg (Array.init (cfg.r - 1) (fun _ -> (state, state)))

let optimal_entangled_attack cfg ~x_state ~y_state =
  if cfg.r < 2 then (Cx.norm2 (Vec.dot y_state x_state), Vec.basis 1 0)
  else begin
    let pdim = 1 lsl proof_qubits cfg in
    let outs =
      Array.init pdim (fun i ->
          Pure.global_vector
            (final_state cfg ~x_state ~y_state ~proof:(Vec.basis pdim i)))
    in
    let gram = Mat.init pdim pdim (fun i j -> Vec.dot outs.(i) outs.(j)) in
    let evals, evecs = Eig.hermitian gram in
    let top = evals.(pdim - 1) in
    let opt = Vec.init pdim (fun i -> Mat.get evecs i (pdim - 1)) in
    (Float.max 0. top, opt)
  end

type star_config = { t : int; star_qubits : int }

let star_layout cfg =
  let b = cfg.star_qubits in
  let regs =
    [ ("X", b) ]
    @ List.init (cfg.t - 1) (fun i -> (Printf.sprintf "L%d" (i + 1), b))
    @ [ ("R0", b); ("R1", b); ("C", 1) ]
  in
  Pure.layout regs

let star_final_state cfg ~root_state ~leaf_states ~proof =
  if Array.length leaf_states <> cfg.t - 1 then
    invalid_arg "Exact.star_accept_prob: need t - 1 leaf states";
  let lay = star_layout cfg in
  let global =
    Vec.tensor_list
      ([ root_state ] @ Array.to_list leaf_states @ [ proof; Vec.basis 2 0 ])
  in
  let s = ref (Pure.of_global lay global) in
  s := Pure.apply_on !s [ "C" ] Gates.hadamard;
  s := Pure.controlled_swap !s ~control:"C" "R0" "R1";
  (* internal node: permutation test on its kept register and all the
     leaf registers *)
  s :=
    Pure.project_sym !s
      ("R0" :: List.init (cfg.t - 1) (fun i -> Printf.sprintf "L%d" (i + 1)));
  (* root: SWAP test between its own state and the forwarded register *)
  s := Pure.project_sym !s [ "X"; "R1" ];
  !s

let star_accept_prob cfg ~root_state ~leaf_states ~proof =
  Pure.norm2 (star_final_state cfg ~root_state ~leaf_states ~proof)

let optimal_entangled_star_attack cfg ~root_state ~leaf_states =
  let pdim = 1 lsl (2 * cfg.star_qubits) in
  let outs =
    Array.init pdim (fun i ->
        Pure.global_vector
          (star_final_state cfg ~root_state ~leaf_states
             ~proof:(Vec.basis pdim i)))
  in
  let gram = Mat.init pdim pdim (fun i j -> Vec.dot outs.(i) outs.(j)) in
  let evals, evecs = Eig.hermitian gram in
  let top = evals.(pdim - 1) in
  (Float.max 0. top, Vec.init pdim (fun i -> Mat.get evecs i (pdim - 1)))

let optimal_split_attack st cfg ~x_state ~y_state ~cut_qubits ~sweeps =
  let pq = proof_qubits cfg in
  if cut_qubits <= 0 || cut_qubits >= pq then
    invalid_arg "Exact.optimal_split_attack: cut inside the proof";
  if cfg.r < 2 then Cx.norm2 (Vec.dot y_state x_state)
  else begin
    let pdim = 1 lsl pq in
    let d1 = 1 lsl cut_qubits and d2 = 1 lsl (pq - cut_qubits) in
    let outs =
      Array.init pdim (fun i ->
          Pure.global_vector
            (final_state cfg ~x_state ~y_state ~proof:(Vec.basis pdim i)))
    in
    let gram = Mat.init pdim pdim (fun i j -> Vec.dot outs.(i) outs.(j)) in
    let gaussian () =
      let u1 = Float.max 1e-12 (Random.State.float st 1.) in
      let u2 = Random.State.float st 1. in
      Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)
    in
    let xi1 =
      ref (Vec.normalize (Vec.init d1 (fun _ -> Cx.make (gaussian ()) (gaussian ()))))
    in
    let xi2 =
      ref (Vec.normalize (Vec.init d2 (fun _ -> Cx.make (gaussian ()) (gaussian ()))))
    in
    let top_eigvec g =
      let evals, evecs = Eig.hermitian g in
      let n = Mat.rows g in
      (evals.(n - 1), Vec.init n (fun i -> Mat.get evecs i (n - 1)))
    in
    let value = ref 0. in
    for _ = 1 to sweeps do
      (* optimize xi1 with xi2 fixed *)
      let g1 =
        Mat.init d1 d1 (fun i i' ->
            let acc = ref Cx.zero in
            for j = 0 to d2 - 1 do
              for j' = 0 to d2 - 1 do
                acc :=
                  Cx.add !acc
                    (Cx.mul
                       (Cx.mul (Cx.conj (Vec.get !xi2 j))
                          (Mat.get gram ((i * d2) + j) ((i' * d2) + j')))
                       (Vec.get !xi2 j'))
              done
            done;
            !acc)
      in
      let _, v1 = top_eigvec g1 in
      xi1 := v1;
      (* optimize xi2 with xi1 fixed *)
      let g2 =
        Mat.init d2 d2 (fun j j' ->
            let acc = ref Cx.zero in
            for i = 0 to d1 - 1 do
              for i' = 0 to d1 - 1 do
                acc :=
                  Cx.add !acc
                    (Cx.mul
                       (Cx.mul (Cx.conj (Vec.get !xi1 i))
                          (Mat.get gram ((i * d2) + j) ((i' * d2) + j')))
                       (Vec.get !xi1 i'))
              done
            done;
            !acc)
      in
      let lambda, v2 = top_eigvec g2 in
      xi2 := v2;
      value := Float.max 0. lambda
    done;
    !value
  end

let best_product_attack cfg ~x_state ~y_state =
  if cfg.r < 2 then Cx.norm2 (Vec.dot y_state x_state)
  else begin
    let pairs =
      Array.init (cfg.r - 1) (fun i ->
          let s =
            States.geodesic x_state y_state
              (float_of_int (i + 1) /. float_of_int cfg.r)
          in
          (s, s))
    in
    accept_prob cfg ~x_state ~y_state ~proof:(product_proof cfg pairs)
  end
