(** The dQMA protocol for [EQ^t_n] on general graphs (Section 3.3,
    Algorithm 5, Theorem 19).

    The network first agrees on the Section 3.3 spanning tree (checked
    by the Lemma 18 certificate); every non-terminal tree node receives
    two fingerprint registers, symmetrizes, forwards one to its parent
    and permutation-tests the kept one together with everything
    arriving from its children; the root tests its own fingerprint
    against its children's registers.

    Setting [use_permutation_test = false] reproduces the FGNP21
    baseline in which every node SWAP tests against one uniformly
    random child — the ablation behind the paper's improvement from
    [O(t r^2 log n)] to [O(r^2 log n)]. *)

open Qdp_codes
open Qdp_network

type params = {
  n : int;
  seed : int;
  repetitions : int;
  use_permutation_test : bool;
}

(** [make ?repetitions ?use_permutation_test ~seed ~n ~r ()] defaults
    to the paper's protocol with [Eq_path.paper_repetitions ~r]
    repetitions ([r] should be the tree height). *)
val make :
  ?repetitions:int ->
  ?use_permutation_test:bool ->
  seed:int ->
  n:int ->
  r:int ->
  unit ->
  params

type strategy =
  | Honest  (** every register is the fingerprint of terminal 1's input *)
  | Constant of Gf2.t
  | Depth_interpolate of int
      (** geodesic from the root terminal's fingerprint toward the
          fingerprint of the given terminal's input, parameterized by
          tree depth — the tree analogue of the path interpolation
          attack *)

(** [single_round_accept params g ~terminals ~inputs strategy] builds
    the Section 3.3 spanning tree of [g] and returns the exact
    acceptance probability of one repetition. *)
val single_round_accept :
  params -> Graph.t -> terminals:int list -> inputs:Gf2.t array -> strategy -> float

(** [accept params g ~terminals ~inputs strategy] is the
    [repetitions]-fold power. *)
val accept :
  params -> Graph.t -> terminals:int list -> inputs:Gf2.t array -> strategy -> float

(** [attack_library ~inputs] names the built-in cheating strategies:
    constant fingerprints of each input and depth interpolations toward
    each non-root terminal. *)
val attack_library : inputs:Gf2.t array -> (string * strategy) list

(** [best_attack_accept params g ~terminals ~inputs] maximizes the
    single-round acceptance over the built-in attack library. *)
val best_attack_accept :
  params -> Graph.t -> terminals:int list -> inputs:Gf2.t array -> float * string

(** [costs params tr] accounts Algorithm 5 over the given tree: every
    internal node receives [2 k] fingerprint registers, every non-root
    node forwards [k]; adds the Lemma 18 certificate bits (counted as
    qubits) to the local proof. *)
val costs : params -> Spanning_tree.t -> Report.costs

(** [tree_of params g ~terminals] exposes the spanning tree the
    protocol runs on. *)
val tree_of : Graph.t -> terminals:int list -> Spanning_tree.t
