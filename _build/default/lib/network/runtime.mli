(** Synchronous round-based message-passing runtime.

    Distributed verification protocols (Definition 5/6) run in a fixed
    number of synchronous rounds: in every round each node reads its
    inbox, updates local state and posts messages to neighbours; after
    the last round every node outputs accept or reject.  This engine
    executes such node programs on a {!Graph.t}, enforces that messages
    travel only along edges, and accounts per-edge traffic so protocol
    implementations can report their measured message complexity. *)

(** Per-node verdict after the final round. *)
type verdict = Accept | Reject

(** [global_verdict vs] is [Accept] iff every node accepts — the
    acceptance criterion of distributed verification. *)
val global_verdict : verdict array -> verdict

(** A node program over state ['s] and message payloads ['m].  The
    runtime calls [init] once, [round] once per round (with the inbox
    holding [(sender, payload)] pairs in sender order), and [finish]
    after the last round. *)
type ('s, 'm) program = {
  init : int -> 's;
  round : round:int -> id:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  finish : id:int -> 's -> verdict;
}

(** Traffic accounting for one execution. *)
type stats = {
  messages : int;  (** total messages delivered *)
  rounds_run : int;
  per_edge : ((int * int) * int) list;
      (** messages per undirected edge, edges as [(min, max)] *)
}

(** [run g ~rounds program] executes the program and returns per-node
    verdicts with traffic stats.
    @raise Invalid_argument if a node addresses a non-neighbour. *)
val run : Graph.t -> rounds:int -> ('s, 'm) program -> verdict array * stats

(** [run_accepts g ~rounds program] is [true] iff all nodes accept. *)
val run_accepts : Graph.t -> rounds:int -> ('s, 'm) program -> bool

(** [estimate_acceptance ~trials f] runs the randomized thunk [f]
    (typically a {!run_accepts} closure) [trials] times and returns the
    empirical acceptance frequency. *)
val estimate_acceptance : trials:int -> (unit -> bool) -> float
