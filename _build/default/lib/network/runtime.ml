type verdict = Accept | Reject

let global_verdict vs =
  if Array.for_all (fun v -> v = Accept) vs then Accept else Reject

type ('s, 'm) program = {
  init : int -> 's;
  round : round:int -> id:int -> 's -> inbox:(int * 'm) list -> 's * (int * 'm) list;
  finish : id:int -> 's -> verdict;
}

type stats = {
  messages : int;
  rounds_run : int;
  per_edge : ((int * int) * int) list;
}

let run g ~rounds program =
  let n = Graph.size g in
  let states = Array.init n program.init in
  let inboxes = Array.make n [] in
  let edge_count = Hashtbl.create 16 in
  let total = ref 0 in
  for r = 1 to rounds do
    let outboxes = Array.make n [] in
    for u = 0 to n - 1 do
      let inbox = List.sort (fun (a, _) (b, _) -> compare a b) inboxes.(u) in
      let state', out = program.round ~round:r ~id:u states.(u) ~inbox in
      states.(u) <- state';
      List.iter
        (fun (dest, _) ->
          if not (Graph.has_edge g u dest) then
            invalid_arg
              (Printf.sprintf "Runtime.run: node %d sent to non-neighbour %d" u
                 dest))
        out;
      outboxes.(u) <- out
    done;
    Array.fill inboxes 0 n [];
    Array.iteri
      (fun u out ->
        List.iter
          (fun (dest, payload) ->
            inboxes.(dest) <- (u, payload) :: inboxes.(dest);
            incr total;
            let e = (min u dest, max u dest) in
            let c = try Hashtbl.find edge_count e with Not_found -> 0 in
            Hashtbl.replace edge_count e (c + 1))
          out)
      outboxes
  done;
  let verdicts =
    Array.init n (fun u -> program.finish ~id:u states.(u))
  in
  let per_edge =
    List.sort compare
      (Hashtbl.fold (fun e c acc -> (e, c) :: acc) edge_count [])
  in
  (verdicts, { messages = !total; rounds_run = rounds; per_edge })

let run_accepts g ~rounds program =
  let verdicts, _ = run g ~rounds program in
  global_verdict verdicts = Accept

let estimate_acceptance ~trials f =
  let hits = ref 0 in
  for _ = 1 to trials do
    if f () then incr hits
  done;
  float_of_int !hits /. float_of_int trials
