type t = {
  size : int;
  root : int;
  host : int array;
  parent : int array; (* -1 at the root *)
  children : int list array;
  depth : int array;
  terminal_leaves : int array;
  terminal_of : int option array;
}

let bfs_parents g root =
  let n = Graph.size g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(root) <- true;
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          parent.(v) <- u;
          Queue.add v q
        end)
      (Graph.neighbours g u)
  done;
  if not (Array.for_all (fun b -> b) seen) then
    invalid_arg "Spanning_tree: disconnected graph";
  parent

let build_rooted_at g ~terminals ~root_terminal =
  let terms = Array.of_list terminals in
  let t = Array.length terms in
  if t < 2 then invalid_arg "Spanning_tree.build: need at least 2 terminals";
  let seen = Hashtbl.create t in
  Array.iter
    (fun u ->
      if Hashtbl.mem seen u then
        invalid_arg "Spanning_tree.build: duplicate terminal";
      Hashtbl.add seen u ())
    terms;
  if root_terminal < 0 || root_terminal >= t then
    invalid_arg "Spanning_tree.build_rooted_at: bad root index";
  let root_vertex = terms.(root_terminal) in
  let bparent = bfs_parents g root_vertex in
  (* Keep exactly the union of root-to-terminal BFS paths. *)
  let n = Graph.size g in
  let marked = Array.make n false in
  Array.iter
    (fun u ->
      let v = ref u in
      while not marked.(!v) do
        marked.(!v) <- true;
        if !v <> root_vertex then v := bparent.(!v)
      done)
    terms;
  (* Allocate tree nodes for marked vertices. *)
  let node_of_vertex = Array.make n (-1) in
  let hosts = ref [] and count = ref 0 in
  for v = 0 to n - 1 do
    if marked.(v) then begin
      node_of_vertex.(v) <- !count;
      hosts := v :: !hosts;
      incr count
    end
  done;
  let base = !count in
  let host = Array.make base 0 in
  List.iteri (fun i v -> host.(base - 1 - i) <- v) !hosts;
  let parent = Array.make base (-1) in
  for v = 0 to n - 1 do
    if marked.(v) && v <> root_vertex then
      parent.(node_of_vertex.(v)) <- node_of_vertex.(bparent.(v))
  done;
  let child_count = Array.make base 0 in
  Array.iter (fun p -> if p >= 0 then child_count.(p) <- child_count.(p) + 1) parent;
  (* Terminal-leaf rewrite: each non-root terminal that is internal
     gets a fresh leaf node hosted on the same vertex. *)
  let extra = ref [] and extra_count = ref 0 in
  let terminal_leaves = Array.make t (-1) in
  terminal_leaves.(root_terminal) <- node_of_vertex.(root_vertex);
  Array.iteri
    (fun i u ->
      if i <> root_terminal then begin
        let nd = node_of_vertex.(u) in
        if child_count.(nd) = 0 then terminal_leaves.(i) <- nd
        else begin
          let leaf = base + !extra_count in
          incr extra_count;
          extra := (leaf, u, nd) :: !extra;
          terminal_leaves.(i) <- leaf
        end
      end)
    terms;
  let size = base + !extra_count in
  let host_full = Array.make size 0 in
  Array.blit host 0 host_full 0 base;
  let parent_full = Array.make size (-1) in
  Array.blit parent 0 parent_full 0 base;
  List.iter
    (fun (leaf, u, nd) ->
      host_full.(leaf) <- u;
      parent_full.(leaf) <- nd)
    !extra;
  let children = Array.make size [] in
  Array.iteri
    (fun v p -> if p >= 0 then children.(p) <- v :: children.(p))
    parent_full;
  Array.iteri (fun v cs -> children.(v) <- List.sort compare cs) children;
  let root = node_of_vertex.(root_vertex) in
  let depth = Array.make size 0 in
  let rec set_depth v d =
    depth.(v) <- d;
    List.iter (fun c -> set_depth c (d + 1)) children.(v)
  in
  set_depth root 0;
  let terminal_of = Array.make size None in
  Array.iteri (fun i leaf -> terminal_of.(leaf) <- Some i) terminal_leaves;
  {
    size;
    root;
    host = host_full;
    parent = parent_full;
    children;
    depth;
    terminal_leaves;
    terminal_of;
  }

let build g ~terminals =
  let terms = Array.of_list terminals in
  let dists = Array.map (Graph.bfs_distances g) terms in
  let best = ref 0 and best_ecc = ref max_int in
  Array.iteri
    (fun j _ ->
      let e =
        Array.fold_left (fun acc u -> max acc dists.(j).(u)) 0 terms
      in
      if e < !best_ecc then begin
        best := j;
        best_ecc := e
      end)
    terms;
  build_rooted_at g ~terminals ~root_terminal:!best

let size tr = tr.size
let root tr = tr.root
let host tr v = tr.host.(v)
let parent tr v = if tr.parent.(v) < 0 then None else Some tr.parent.(v)
let children tr v = tr.children.(v)
let depth tr v = tr.depth.(v)
let height tr = Array.fold_left max 0 tr.depth
let terminal_leaves tr = Array.copy tr.terminal_leaves
let terminal_of tr v = tr.terminal_of.(v)

let path_to_root tr v =
  let rec go v acc =
    if tr.parent.(v) < 0 then List.rev (v :: acc)
    else go tr.parent.(v) (v :: acc)
  in
  go v []

let internal_nodes tr =
  List.filter
    (fun v -> tr.terminal_of.(v) = None)
    (List.init tr.size (fun v -> v))

type certificate = { cert_parent : int array; cert_dist : int array }

let certificate_of g ~root_vertex =
  let parent = bfs_parents g root_vertex in
  let dist = Graph.bfs_distances g root_vertex in
  { cert_parent = parent; cert_dist = dist }

let verify_certificate g cert =
  let n = Graph.size g in
  Array.init n (fun v ->
      let d = cert.cert_dist.(v) and p = cert.cert_parent.(v) in
      let local_ok =
        if p < 0 then d = 0
        else
          d >= 1
          && Graph.has_edge g v p
          && cert.cert_dist.(p) = d - 1
      in
      let neighbours_ok =
        List.for_all
          (fun w -> cert.cert_dist.(w) >= d - 1)
          (Graph.neighbours g v)
      in
      local_ok && neighbours_ok)

let certificate_bits g =
  let n = Graph.size g in
  let rec bits acc k = if k <= 1 then acc else bits (acc + 1) ((k + 1) / 2) in
  2 * bits 0 n

let to_dot tr =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph tree {\n  node [shape=box];\n";
  for v = 0 to tr.size - 1 do
    let label =
      match tr.terminal_of.(v) with
      | Some i -> Printf.sprintf "node %d\\nvertex %d\\nterminal %d" v tr.host.(v) (i + 1)
      | None -> Printf.sprintf "node %d\\nvertex %d" v tr.host.(v)
    in
    let style =
      if tr.terminal_of.(v) <> None then ", style=filled, fillcolor=lightblue"
      else ""
    in
    Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"%s];\n" v label style)
  done;
  Array.iteri
    (fun v p ->
      if p >= 0 then Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" p v))
    tr.parent;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
