(** Simple connected undirected graphs — the network topologies on
    which the distributed verification protocols run.

    Nodes are integers [0 .. size - 1].  The radius of the paper
    ([min_u max_v dist(u, v)]) and related metrics are computed by
    repeated BFS. *)

type t

(** [create n] is the edgeless graph on [n] nodes. *)
val create : int -> t

(** [add_edge g u v] inserts the undirected edge [{u, v}] (idempotent).
    @raise Invalid_argument on self-loops or out-of-range nodes. *)
val add_edge : t -> int -> int -> unit

(** [size g] is the number of nodes. *)
val size : t -> int

(** [neighbours g u] is the sorted adjacency list of [u]. *)
val neighbours : t -> int -> int list

(** [degree g u] is the number of neighbours. *)
val degree : t -> int -> int

(** [max_degree g] is the maximum degree. *)
val max_degree : t -> int

(** [has_edge g u v] tests adjacency. *)
val has_edge : t -> int -> int -> bool

(** [edges g] lists each undirected edge once, as [(u, v)] with
    [u < v]. *)
val edges : t -> (int * int) list

(** [bfs_distances g u] is the array of hop distances from [u]
    ([max_int] for unreachable nodes). *)
val bfs_distances : t -> int -> int array

(** [is_connected g] holds when every node is reachable from node 0. *)
val is_connected : t -> bool

(** [eccentricity g u] is [max_v dist(u, v)].
    @raise Invalid_argument on disconnected graphs. *)
val eccentricity : t -> int -> int

(** [radius g] is [min_u eccentricity u]; [diameter g] is the max. *)
val radius : t -> int

val diameter : t -> int

(** [center g] is a node of minimum eccentricity. *)
val center : t -> int

(** {2 Builders} *)

(** [path r] is the path [v_0 - v_1 - ... - v_r] on [r + 1] nodes. *)
val path : int -> t

(** [cycle n] is the [n]-cycle. *)
val cycle : int -> t

(** [star n] is the star with center 0 and [n] leaves. *)
val star : int -> t

(** [balanced_tree ~arity ~depth] is the complete [arity]-ary tree. *)
val balanced_tree : arity:int -> depth:int -> t

(** [grid ~w ~h] is the [w x h] grid graph. *)
val grid : w:int -> h:int -> t

(** [random_connected st ~n ~extra_edges] is a uniform random spanning
    tree (random attachment) plus [extra_edges] random chords. *)
val random_connected : Random.State.t -> n:int -> extra_edges:int -> t

(** [to_dot ?highlight g] renders Graphviz DOT source; vertices in
    [highlight] are drawn filled (used to mark terminals). *)
val to_dot : ?highlight:int list -> t -> string
