(** The spanning-tree scaffold of Section 3.3.

    Protocols with [t] terminals run over a tree [T] rooted at the most
    central terminal [u_1], with every other terminal a leaf, maximum
    degree at most [t], and depth at most [r + 1].  The construction
    follows the paper: BFS tree from [u_1], truncation below terminals
    that have no terminal successors, and the terminal-leaf rewrite
    (an internal terminal [u_i] is replaced by a relay node hosted on
    the same physical vertex, with [u_i] re-attached as a leaf child
    keeping the input).

    Tree nodes are therefore *virtual*: each carries the id of the
    physical graph vertex hosting it ({!host}); a physical vertex may
    host both a relay node and a terminal leaf. *)

type t

(** [build g ~terminals] runs the construction.  [terminals] must be
    distinct vertices of [g]; the first component of the result's
    {!terminal_leaves} corresponds to [List.nth terminals i].
    @raise Invalid_argument on fewer than 2 terminals or a disconnected
    graph. *)
val build : Graph.t -> terminals:int list -> t

(** [build_rooted_at g ~terminals ~root_terminal] forces a specific
    terminal (index into [terminals]) as root — used by the ranking
    verification protocol which roots at the ranked terminal. *)
val build_rooted_at : Graph.t -> terminals:int list -> root_terminal:int -> t

(** [size tr] is the number of (virtual) tree nodes. *)
val size : t -> int

(** [root tr] is the root tree node. *)
val root : t -> int

(** [host tr v] is the physical graph vertex hosting tree node [v]. *)
val host : t -> int -> int

(** [parent tr v] is [Some p] or [None] for the root. *)
val parent : t -> int -> int option

(** [children tr v] lists the children of [v]. *)
val children : t -> int -> int list

(** [depth tr v] is the hop distance from the root; [height tr] its
    maximum. *)
val depth : t -> int -> int

val height : t -> int

(** [terminal_leaves tr] maps terminal index [i] to its tree node: the
    root for the root terminal, a leaf otherwise. *)
val terminal_leaves : t -> int array

(** [terminal_of tr v] is [Some i] when tree node [v] carries terminal
    [i]'s input. *)
val terminal_of : t -> int -> int option

(** [path_to_root tr v] is the node list [v, parent v, ..., root]. *)
val path_to_root : t -> int -> int list

(** [internal_nodes tr] lists nodes that carry no input (neither the
    root terminal nor terminal leaves). *)
val internal_nodes : t -> int list

(** {2 Lemma 18: the deterministic tree certificate}

    The prover distributes, per physical vertex, its claimed parent
    and distance-to-root; honest assignments are accepted by every
    vertex and any inconsistent assignment is rejected by at least one
    vertex, deterministically.  [O(log |V|)] bits per vertex. *)

type certificate = { cert_parent : int array; cert_dist : int array }

(** [certificate_of g ~root_vertex] is the honest certificate: BFS
    parents and distances from [root_vertex]. *)
val certificate_of : Graph.t -> root_vertex:int -> certificate

(** [verify_certificate g cert] runs the local checks at every vertex
    and returns the per-vertex verdicts: vertex [v] accepts iff its
    claimed distance is 0 with no parent exactly when it claims to be
    the root, its parent is a neighbour with claimed distance one less,
    and no neighbour claims a distance smaller than [dist v - 1]. *)
val verify_certificate : Graph.t -> certificate -> bool array

(** [certificate_bits g] is the per-vertex certificate size in bits:
    [2 * ceil (log2 |V|)]. *)
val certificate_bits : Graph.t -> int

(** [to_dot tr] renders the (virtual) tree as Graphviz DOT source,
    labelling each node with its host vertex and marking terminals. *)
val to_dot : t -> string
