type t = { n : int; adj : (int, unit) Hashtbl.t array }

let create n =
  if n <= 0 then invalid_arg "Graph.create: need at least one node";
  { n; adj = Array.init n (fun _ -> Hashtbl.create 4) }

let check g u = if u < 0 || u >= g.n then invalid_arg "Graph: node out of range"

let add_edge g u v =
  check g u;
  check g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  Hashtbl.replace g.adj.(u) v ();
  Hashtbl.replace g.adj.(v) u ()

let size g = g.n

let neighbours g u =
  check g u;
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) g.adj.(u) [])

let degree g u =
  check g u;
  Hashtbl.length g.adj.(u)

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    if degree g u > !best then best := degree g u
  done;
  !best

let has_edge g u v =
  check g u;
  check g v;
  Hashtbl.mem g.adj.(u) v

let edges g =
  let acc = ref [] in
  for u = 0 to g.n - 1 do
    Hashtbl.iter (fun v () -> if u < v then acc := (u, v) :: !acc) g.adj.(u)
  done;
  List.sort compare !acc

let bfs_distances g src =
  check g src;
  let dist = Array.make g.n max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Hashtbl.iter
      (fun v () ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v q
        end)
      g.adj.(u)
  done;
  dist

let is_connected g = Array.for_all (fun d -> d < max_int) (bfs_distances g 0)

let eccentricity g u =
  let dist = bfs_distances g u in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Graph.eccentricity: disconnected"
      else max acc d)
    0 dist

let radius g =
  let best = ref max_int in
  for u = 0 to g.n - 1 do
    best := min !best (eccentricity g u)
  done;
  !best

let diameter g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    best := max !best (eccentricity g u)
  done;
  !best

let center g =
  let best = ref 0 and best_ecc = ref max_int in
  for u = 0 to g.n - 1 do
    let e = eccentricity g u in
    if e < !best_ecc then begin
      best := u;
      best_ecc := e
    end
  done;
  !best

let path r =
  let g = create (r + 1) in
  for i = 0 to r - 1 do
    add_edge g i (i + 1)
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: need n >= 3";
  let g = create n in
  for i = 0 to n - 1 do
    add_edge g i ((i + 1) mod n)
  done;
  g

let star n =
  let g = create (n + 1) in
  for i = 1 to n do
    add_edge g 0 i
  done;
  g

let balanced_tree ~arity ~depth =
  if arity < 1 || depth < 0 then invalid_arg "Graph.balanced_tree";
  (* nodes in BFS order: node k has children k*arity + 1 .. k*arity + arity *)
  let rec count_nodes level acc width =
    if level > depth then acc else count_nodes (level + 1) (acc + width) (width * arity)
  in
  let n = count_nodes 0 0 1 in
  let g = create n in
  for k = 0 to n - 1 do
    for c = 1 to arity do
      let child = (k * arity) + c in
      if child < n then add_edge g k child
    done
  done;
  g

let grid ~w ~h =
  if w < 1 || h < 1 then invalid_arg "Graph.grid";
  let g = create (w * h) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let id = (y * w) + x in
      if x + 1 < w then add_edge g id (id + 1);
      if y + 1 < h then add_edge g id (id + w)
    done
  done;
  g

let random_connected st ~n ~extra_edges =
  let g = create n in
  for v = 1 to n - 1 do
    add_edge g v (Random.State.int st v)
  done;
  let added = ref 0 and attempts = ref 0 in
  while !added < extra_edges && !attempts < 100 * (extra_edges + 1) do
    incr attempts;
    let u = Random.State.int st n and v = Random.State.int st n in
    if u <> v && not (has_edge g u v) then begin
      add_edge g u v;
      incr added
    end
  done;
  g

let to_dot ?(highlight = []) g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "graph network {\n  node [shape=circle];\n";
  for v = 0 to size g - 1 do
    if List.mem v highlight then
      Buffer.add_string buf
        (Printf.sprintf "  %d [style=filled, fillcolor=lightblue];\n" v)
  done;
  List.iter
    (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
