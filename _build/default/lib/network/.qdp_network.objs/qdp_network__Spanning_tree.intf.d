lib/network/spanning_tree.mli: Graph
