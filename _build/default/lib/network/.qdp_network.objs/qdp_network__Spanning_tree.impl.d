lib/network/spanning_tree.ml: Array Buffer Graph Hashtbl List Printf Queue
