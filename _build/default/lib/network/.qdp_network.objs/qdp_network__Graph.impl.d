lib/network/graph.ml: Array Buffer Hashtbl List Printf Queue Random
