lib/network/runtime.mli: Graph
