lib/network/runtime.ml: Array Graph Hashtbl List Printf
