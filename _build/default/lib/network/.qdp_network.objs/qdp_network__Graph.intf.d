lib/network/graph.mli: Random
