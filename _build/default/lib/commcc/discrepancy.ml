open Qdp_linalg
open Qdp_codes

let sign_matrix (p : Problems.t) =
  let n = p.Problems.n in
  if n > 8 then invalid_arg "Discrepancy.sign_matrix: n <= 8";
  let size = 1 lsl n in
  Array.init size (fun i ->
      let x = Gf2.of_int ~width:n i in
      Array.init size (fun j ->
          let y = Gf2.of_int ~width:n j in
          if p.Problems.f x y then 1. else -1.))

let spectral_norm m =
  let rows = Array.length m in
  let mmt =
    Array.init rows (fun i ->
        Array.init rows (fun j ->
            let s = ref 0. in
            for k = 0 to Array.length m.(0) - 1 do
              s := !s +. (m.(i).(k) *. m.(j).(k))
            done;
            !s))
  in
  let evals, _ = Eig.symmetric mmt in
  Float.sqrt (Float.max 0. evals.(rows - 1))

let spectral_discrepancy_bound p =
  let m = sign_matrix p in
  let size = float_of_int (Array.length m) in
  spectral_norm m *. size /. (size *. size)

let rectangle_search st ~trials p =
  let m = sign_matrix p in
  let size = Array.length m in
  let best = ref 0. in
  for _ = 1 to trials do
    let rows = Array.init size (fun _ -> Random.State.bool st) in
    let cols = Array.init size (fun _ -> Random.State.bool st) in
    let s = ref 0. in
    for i = 0 to size - 1 do
      if rows.(i) then
        for j = 0 to size - 1 do
          if cols.(j) then s := !s +. m.(i).(j)
        done
    done;
    let corr = Float.abs !s /. (float_of_int size *. float_of_int size) in
    if corr > !best then best := corr
  done;
  !best

let qmacc_lower_bound_formula (p : Problems.t) =
  let n = float_of_int p.Problems.n in
  match p.Problems.name with
  | "DISJ" | "P_AND" -> Some (Float.pow n (1. /. 3.))
  | "IP" -> Some (Float.sqrt n)
  | _ -> None

let sqrt_log_inv_disc p =
  let disc = Float.max 1e-300 (spectral_discrepancy_bound p) in
  Float.sqrt (Float.log (1. /. disc) /. Float.log 2.)
