open Qdp_linalg

type ('a, 'b) oneway = {
  name : string;
  proof_qubits : int;
  message_qubits : int;
  honest_proof : 'a -> 'b -> Vec.t;
  alice_accept : 'a -> Vec.t -> float;
  alice_message : 'a -> Vec.t -> Vec.t;
  bob_accept : 'b -> Vec.t -> float;
}

let cost p = p.proof_qubits + p.message_qubits

let accept_prob p xa xb proof =
  let pa = p.alice_accept xa proof in
  if pa <= 1e-15 then 0.
  else pa *. p.bob_accept xb (p.alice_message xa proof)

let honest_accept_prob p xa xb = accept_prob p xa xb (p.honest_proof xa xb)

let ceil_log2 d =
  let rec bits acc k = if k <= 1 then acc else bits (acc + 1) ((k + 1) / 2) in
  bits 0 d

let lsd_oneway ~ambient =
  let q = ceil_log2 ambient in
  {
    name = "LSD";
    proof_qubits = q;
    message_qubits = q;
    honest_proof =
      (fun va vb -> Lsd.honest_proof { Lsd.v1 = va; v2 = vb });
    alice_accept = (fun va psi -> Lsd.accept_prob_onto va psi);
    alice_message = (fun va psi -> Lsd.post_onto va psi);
    bob_accept = (fun vb psi -> Lsd.accept_prob_onto vb psi);
  }

type star_costs = { proof_alice : int; proof_bob : int; communication : int }

let star_total c = c.proof_alice + c.proof_bob + c.communication
let qma_of_star c = c.proof_alice + (2 * c.proof_bob) + c.communication
