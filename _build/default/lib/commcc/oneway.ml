open Qdp_linalg
open Qdp_codes
open Qdp_fingerprint

type bundle = Vec.t array

let bundle_overlap a b =
  if Array.length a <> Array.length b then
    invalid_arg "Oneway.bundle_overlap: bundle length mismatch";
  let acc = ref Cx.one in
  Array.iteri (fun i va -> acc := Cx.mul !acc (Vec.dot va b.(i))) a;
  !acc

let ceil_log2 d =
  let rec bits acc k = if k <= 1 then acc else bits (acc + 1) ((k + 1) / 2) in
  bits 0 d

let bundle_qubits b =
  Array.fold_left (fun acc v -> acc + ceil_log2 (Vec.dim v)) 0 b

type t = {
  name : string;
  problem : Problems.t;
  message_qubits : int;
  alice : Gf2.t -> bundle;
  accept_prob : Gf2.t -> bundle -> float;
}

let accept_on_inputs p x y = p.accept_prob y (p.alice x)

let eq ~seed ~n =
  let fp = Fingerprint.standard ~seed ~n in
  {
    name = "EQ-fingerprint";
    problem = Problems.eq n;
    message_qubits = Fingerprint.qubits fp;
    alice = (fun x -> [| Fingerprint.state fp x |]);
    accept_prob =
      (fun y bundle ->
        if Array.length bundle <> 1 then
          invalid_arg "Oneway.eq: expected a single register";
        Fingerprint.accept_prob fp y bundle.(0));
  }

(* P[X >= threshold] for X a sum of independent Bernoullis. *)
let poisson_binomial_tail probs threshold =
  let k = Array.length probs in
  let dp = Array.make (k + 1) 0. in
  dp.(0) <- 1.;
  Array.iteri
    (fun i p ->
      for c = i + 1 downto 1 do
        dp.(c) <- (dp.(c) *. (1. -. p)) +. (dp.(c - 1) *. p)
      done;
      dp.(0) <- dp.(0) *. (1. -. p))
    probs;
  let acc = ref 0. in
  for c = max 0 threshold to k do
    acc := !acc +. dp.(c)
  done;
  !acc

(* Fixed seeded permutation of [0 .. n-1]. *)
let seeded_permutation ~seed n =
  let st = Random.State.make [| seed; n; 0x9e3779b9 |] in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  perm

let block_bounds ~blocks ~n j =
  let lo = j * n / blocks and hi = (j + 1) * n / blocks in
  (lo, hi)

let ham ~seed ~n ~d =
  if d < 0 || d > n then invalid_arg "Oneway.ham: bad distance bound";
  let blocks = max 1 (min n (8 * d)) in
  let perm = seeded_permutation ~seed n in
  let block_fp =
    Array.init blocks (fun j ->
        let lo, hi = block_bounds ~blocks ~n j in
        Fingerprint.standard ~seed:(seed + (31 * (j + 1))) ~n:(max 1 (hi - lo)))
  in
  let block_of x j =
    let lo, hi = block_bounds ~blocks ~n j in
    let len = max 1 (hi - lo) in
    let b = Gf2.zero len in
    for i = lo to hi - 1 do
      if Gf2.get x perm.(i) then Gf2.set b (i - lo) true
    done;
    b
  in
  let threshold = blocks - d in
  let qubits =
    Array.fold_left (fun acc fp -> acc + Fingerprint.qubits fp) 0 block_fp
  in
  {
    name = Printf.sprintf "HAM<=%d-blocks" d;
    problem = Problems.ham ~d n;
    message_qubits = qubits;
    alice =
      (fun x -> Array.init blocks (fun j -> Fingerprint.state block_fp.(j) (block_of x j)));
    accept_prob =
      (fun y bundle ->
        if Array.length bundle <> blocks then
          invalid_arg "Oneway.ham: bundle size mismatch";
        let probs =
          Array.init blocks (fun j ->
              Fingerprint.accept_prob block_fp.(j) (block_of y j) bundle.(j))
        in
        poisson_binomial_tail probs threshold);
  }

let lz13_cost ~n ~d =
  let c' = 4 in
  max 1 (c' * max 1 d * ceil_log2 (max 2 n))

let split_copies k bundle =
  let total = Array.length bundle in
  if total mod k <> 0 then invalid_arg "Oneway.repeat: bundle not divisible";
  let per = total / k in
  Array.init k (fun i -> Array.sub bundle (i * per) per)

let repeat k p =
  if k < 1 then invalid_arg "Oneway.repeat: k >= 1";
  {
    name = Printf.sprintf "%s x%d(maj)" p.name k;
    problem = p.problem;
    message_qubits = k * p.message_qubits;
    alice = (fun x -> Array.concat (List.init k (fun _ -> p.alice x)));
    accept_prob =
      (fun y bundle ->
        let copies = split_copies k bundle in
        let probs = Array.map (fun c -> p.accept_prob y c) copies in
        poisson_binomial_tail probs ((k / 2) + 1));
  }

let repeat_and k p =
  if k < 1 then invalid_arg "Oneway.repeat_and: k >= 1";
  {
    name = Printf.sprintf "%s x%d(and)" p.name k;
    problem = p.problem;
    message_qubits = k * p.message_qubits;
    alice = (fun x -> Array.concat (List.init k (fun _ -> p.alice x)));
    accept_prob =
      (fun y bundle ->
        let copies = split_copies k bundle in
        Array.fold_left (fun acc c -> acc *. p.accept_prob y c) 1. copies);
  }

let thermometer ~resolution values =
  let n = Array.length values in
  let out = Gf2.zero (n * resolution) in
  Array.iteri
    (fun i v ->
      if v < -1. || v > 1. then invalid_arg "Oneway.thermometer: out of range";
      let level =
        int_of_float (Float.round ((v +. 1.) /. 2. *. float_of_int resolution))
      in
      let level = max 0 (min resolution level) in
      for k = 0 to level - 1 do
        Gf2.set out ((i * resolution) + k) true
      done)
    values;
  out

let hypercube_label ~bits v = Gf2.of_int ~width:bits v
