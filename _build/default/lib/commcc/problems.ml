open Qdp_codes

type t = { name : string; n : int; f : Gf2.t -> Gf2.t -> bool }

let eq n = { name = "EQ"; n; f = Gf2.equal }
let gt n = { name = "GT"; n; f = (fun x y -> Gf2.compare_big_endian x y > 0) }

let gt_ge n =
  { name = "GT>="; n; f = (fun x y -> Gf2.compare_big_endian x y >= 0) }

let gt_lt n =
  { name = "GT<"; n; f = (fun x y -> Gf2.compare_big_endian x y < 0) }

let gt_le n =
  { name = "GT<="; n; f = (fun x y -> Gf2.compare_big_endian x y <= 0) }

let ham ~d n =
  {
    name = Printf.sprintf "HAM<=%d" d;
    n;
    f = (fun x y -> Gf2.hamming_distance x y <= d);
  }

let disj n =
  {
    name = "DISJ";
    n;
    f =
      (fun x y ->
        let intersecting = ref false in
        Gf2.iteri (fun i b -> if b && Gf2.get y i then intersecting := true) x;
        not !intersecting);
  }

let ip n =
  { name = "IP"; n; f = (fun x y -> Gf2.dot x y) }

let pattern_and n =
  {
    name = "P_AND";
    n = 2 * n;
    f =
      (fun x yz ->
        if Gf2.length x <> 2 * n || Gf2.length yz <> 2 * n then
          invalid_arg "pattern_and: inputs must have length 2n";
        (* Bob's input packs y (first n bits) and z (last n bits);
           the selected string has x_{2i - y_i} (1-indexed per the
           paper) in position i, i.e. x.(2*i + (1 - y_i)) 0-indexed. *)
        let all = ref true in
        for i = 0 to n - 1 do
          let yi = if Gf2.get yz i then 1 else 0 in
          let zi = Gf2.get yz (n + i) in
          let sel = Gf2.get x ((2 * i) + (1 - yi)) in
          if not (sel <> zi) then all := false
        done;
        !all);
  }

let gt_witness x y =
  let n = Gf2.length x in
  let rec go i =
    if i >= n then None
    else
      match (Gf2.get x i, Gf2.get y i) with
      | true, false -> Some i
      | a, b when a = b -> go (i + 1)
      | _ -> None
  in
  go 0

let forall_t p inputs =
  let ok = ref true in
  Array.iteri
    (fun i xi ->
      Array.iteri (fun j xj -> if i <> j && not (p.f xi xj) then ok := false) inputs)
    inputs;
  !ok
