(** QMA communication protocols and their variants (Definitions 2-4):
    cost accounting plus a concrete executable QMA one-way protocol
    type instantiated by the LSD problem.

    The generic protocol record fixes the shape shared by the Theorem
    42 compiler and the Algorithm 11 reduction: Merlin hands Alice a
    proof, Alice runs a local check and forwards a state, Bob runs a
    local check. *)

open Qdp_linalg

(** A QMA one-way protocol with Alice-side input ['a] and Bob-side
    input ['b]. *)
type ('a, 'b) oneway = {
  name : string;
  proof_qubits : int;  (** gamma: Merlin -> Alice *)
  message_qubits : int;  (** mu: Alice -> Bob *)
  honest_proof : 'a -> 'b -> Vec.t;
      (** Merlin's optimal proof (he knows both inputs) *)
  alice_accept : 'a -> Vec.t -> float;  (** Alice's local check *)
  alice_message : 'a -> Vec.t -> Vec.t;
      (** the state Alice forwards conditioned on her check passing *)
  bob_accept : 'b -> Vec.t -> float;  (** Bob's local check *)
}

(** [cost p] is [QMAcc^1 = gamma + mu]. *)
val cost : ('a, 'b) oneway -> int

(** [accept_prob p xa xb proof] is the end-to-end acceptance on a given
    proof. *)
val accept_prob : ('a, 'b) oneway -> 'a -> 'b -> Vec.t -> float

(** [honest_accept_prob p xa xb] runs the honest proof. *)
val honest_accept_prob : ('a, 'b) oneway -> 'a -> 'b -> float

(** [lsd_oneway ~ambient] is the Lemma 45 protocol: both parties hold
    subspaces of [R^ambient]; cost [2 ceil (log2 ambient)]. *)
val lsd_oneway :
  ambient:int -> (Qdp_linalg.Subspace.t, Qdp_linalg.Subspace.t) oneway

(** {2 QMA* accounting (Definition 4 and inequality (1))} *)

type star_costs = {
  proof_alice : int;  (** gamma_1 *)
  proof_bob : int;  (** gamma_2 *)
  communication : int;  (** mu *)
}

(** [star_total c] is [QMAcc* = gamma_1 + gamma_2 + mu]. *)
val star_total : star_costs -> int

(** [qma_of_star c] is the inequality-(1) simulation cost
    [gamma_1 + 2 gamma_2 + mu] of turning a QMA* protocol into a plain
    QMA protocol (Alice receives both proofs and re-sends Bob's). *)
val qma_of_star : star_costs -> int
