(** The two-party Boolean functions studied in the paper, as executable
    predicates on bit vectors. *)

open Qdp_codes

(** A two-party problem: a name, the input length [n] (per party), and
    the predicate. *)
type t = { name : string; n : int; f : Gf2.t -> Gf2.t -> bool }

(** [eq n] is the equality function [EQ_n]. *)
val eq : int -> t

(** [gt n] is the greater-than function on big-endian [n]-bit
    integers: [GT (x, y) = 1] iff [x > y]. *)
val gt : int -> t

(** [gt_ge n], [gt_lt n], [gt_le n] are the [>=], [<], [<=] variants
    (Corollary 28). *)
val gt_ge : int -> t

val gt_lt : int -> t
val gt_le : int -> t

(** [ham ~d n] is [HAM_n^{<= d}]: 1 iff the Hamming distance is at most
    [d]. *)
val ham : d:int -> int -> t

(** [disj n] is set disjointness (Definition 17). *)
val disj : int -> t

(** [ip n] is the inner product mod 2 (Definition 18). *)
val ip : int -> t

(** [pattern_and n] is the pattern matrix [P_AND] of the AND function
    (Definition 19): Alice holds [x] of length [2 n], Bob holds
    [(y, z)] of length [n] each packed as [y ^ z] in a [2 n]-bit
    vector; the output is [AND (x(y) xor z)]. *)
val pattern_and : int -> t

(** [gt_witness x y] is [Some i] for the witnessing index of
    [GT (x, y) = 1] — the unique [i] with [x_i = 1], [y_i = 0] and
    [x\[i\] = y\[i\]] — and [None] when [x <= y].  This is the index an
    honest GT prover sends (Section 5.1). *)
val gt_witness : Gf2.t -> Gf2.t -> int option

(** [forall_t p inputs] is the multi-input lift [forall_t f] of
    Theorem 32: 1 iff [p.f x_i x_j] holds for all ordered pairs. *)
val forall_t : t -> Gf2.t array -> bool
