open Qdp_codes

let is_one_fooling_set (p : Problems.t) pairs =
  List.for_all (fun (x, y) -> p.Problems.f x y) pairs
  &&
  let arr = Array.of_list pairs in
  let ok = ref true in
  Array.iteri
    (fun i (x1, y1) ->
      Array.iteri
        (fun j (x2, y2) ->
          if i < j then
            if p.Problems.f x1 y2 && p.Problems.f x2 y1 then ok := false)
        arr)
    arr;
  !ok

let check_small n =
  if n > 20 then invalid_arg "Fooling: materializing 2^n pairs needs n <= 20"

let eq_fooling_pair n k =
  let x = Gf2.of_int ~width:n k in
  (x, Gf2.copy x)

let eq_fooling_set n =
  check_small n;
  List.init (1 lsl n) (eq_fooling_pair n)

let gt_fooling_pair n k =
  (Gf2.of_int ~width:n (k + 1), Gf2.of_int ~width:n k)

let gt_fooling_set n =
  check_small n;
  List.init ((1 lsl n) - 1) (gt_fooling_pair n)

let log2_fooling_size (p : Problems.t) =
  match p.Problems.name with
  | "EQ" -> Some (float_of_int p.Problems.n)
  | "GT" | "GT>=" | "GT<" | "GT<=" ->
      Some (Float.log ((Float.pow 2. (float_of_int p.Problems.n)) -. 1.) /. Float.log 2.)
  | _ -> None
