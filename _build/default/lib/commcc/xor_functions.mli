(** One-way protocol instances behind the Section 6.2 corollaries.

    Each is an exact reduction to the Hamming-distance protocol through
    an input re-encoding, so plugging them into the
    {!Qdp_core.Oneway_compiler} yields the dQMA protocols of
    Corollaries 35 (l1-graph distances), 37 (l1 distances of quantized
    vectors) and 39 (linear threshold functions of [x xor y]). *)

open Qdp_codes

(** [via_encoding ~name ~problem encode inner] lifts a one-way protocol
    through an input encoding: Alice and Bob apply [encode] before
    running [inner].  The cost is [inner]'s. *)
val via_encoding :
  name:string -> problem:Problems.t -> (Gf2.t -> Gf2.t) -> Oneway.t -> Oneway.t

(** [ltf ~seed ~weights ~theta] decides the linear threshold function
    [sum_i w_i (x_i xor y_i) <= theta] (Corollary 39 with non-negative
    integer weights): coordinate [i] is repeated [w_i] times, turning
    the weighted sum into a plain Hamming distance. *)
val ltf : seed:int -> weights:int array -> theta:int -> Oneway.t

(** [hypercube_distance ~seed ~bits ~d] decides
    [dist_H(u, v) <= d] on the [bits]-dimensional hypercube, whose path
    metric {e is} the Hamming distance of the vertex labels — the
    simplest [l_1]-graph of Corollary 35.  Inputs are labels as
    [bits]-bit vectors. *)
val hypercube_distance : seed:int -> bits:int -> d:int -> Oneway.t

(** [hamming_graph_distance ~seed ~coords ~alphabet ~d] decides the
    path distance on the Hamming graph [H(coords, alphabet)] (vertices:
    strings of [coords] symbols; edges: differ in one coordinate) —
    a 2-scale embedding into the hypercube by one-hot coordinate
    encoding (Lemma 33's scale embedding made concrete).  Inputs pack
    each coordinate as [ceil (log2 alphabet)] bits. *)
val hamming_graph_distance :
  seed:int -> coords:int -> alphabet:int -> d:int -> Oneway.t

(** [encode_hamming_vertex ~coords ~alphabet symbols] packs a Hamming
    graph vertex for {!hamming_graph_distance}. *)
val encode_hamming_vertex : coords:int -> alphabet:int -> int array -> Gf2.t

(** [l1_distance ~seed ~coords ~resolution ~d] decides
    [||x - y||_1 <= d] for vectors in [[-1,1]^coords] quantized at
    [resolution] levels per coordinate (Corollary 37), via the
    thermometer encoding: l1 distance [2 h / resolution] for Hamming
    distance [h].  Inputs are thermometer encodings
    (see {!Oneway.thermometer}); the distance bound [d] is in l1
    units. *)
val l1_distance : seed:int -> coords:int -> resolution:int -> d:float -> Oneway.t
