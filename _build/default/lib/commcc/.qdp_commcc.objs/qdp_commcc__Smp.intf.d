lib/commcc/smp.mli: Gf2 Oneway Problems Qdp_codes
