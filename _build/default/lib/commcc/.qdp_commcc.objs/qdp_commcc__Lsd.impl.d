lib/commcc/lsd.ml: Array Complex Cx Float Gf2 Hashtbl List Printf Qdp_codes Qdp_linalg Random Subspace Vec
