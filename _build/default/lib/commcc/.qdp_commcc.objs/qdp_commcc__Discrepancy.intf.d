lib/commcc/discrepancy.mli: Problems Random
