lib/commcc/qma_comm.mli: Qdp_linalg Vec
