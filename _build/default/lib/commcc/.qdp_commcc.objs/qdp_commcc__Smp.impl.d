lib/commcc/smp.ml: Array Fingerprint Gf2 List Oneway Printf Problems Qdp_codes Qdp_fingerprint Qdp_linalg
