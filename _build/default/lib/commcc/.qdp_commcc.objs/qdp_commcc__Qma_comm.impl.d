lib/commcc/qma_comm.ml: Lsd Qdp_linalg Vec
