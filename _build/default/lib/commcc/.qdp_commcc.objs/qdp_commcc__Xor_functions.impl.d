lib/commcc/xor_functions.ml: Array Float Gf2 Oneway Printf Problems Qdp_codes
