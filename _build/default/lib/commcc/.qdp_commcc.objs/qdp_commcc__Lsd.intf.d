lib/commcc/lsd.mli: Gf2 Qdp_codes Qdp_linalg Random Subspace Vec
