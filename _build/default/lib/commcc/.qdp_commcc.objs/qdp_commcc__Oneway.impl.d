lib/commcc/oneway.ml: Array Cx Fingerprint Float Gf2 List Printf Problems Qdp_codes Qdp_fingerprint Qdp_linalg Random Vec
