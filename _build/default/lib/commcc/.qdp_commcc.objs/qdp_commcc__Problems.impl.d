lib/commcc/problems.ml: Array Gf2 Printf Qdp_codes
