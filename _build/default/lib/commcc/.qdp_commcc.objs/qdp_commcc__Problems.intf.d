lib/commcc/problems.mli: Gf2 Qdp_codes
