lib/commcc/fooling.mli: Gf2 Problems Qdp_codes
