lib/commcc/xor_functions.mli: Gf2 Oneway Problems Qdp_codes
