lib/commcc/oneway.mli: Cx Gf2 Problems Qdp_codes Qdp_linalg Vec
