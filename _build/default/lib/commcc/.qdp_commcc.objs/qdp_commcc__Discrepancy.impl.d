lib/commcc/discrepancy.ml: Array Eig Float Gf2 Problems Qdp_codes Qdp_linalg Random
