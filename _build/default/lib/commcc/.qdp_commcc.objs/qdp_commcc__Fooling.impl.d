lib/commcc/fooling.ml: Array Float Gf2 List Problems Qdp_codes
