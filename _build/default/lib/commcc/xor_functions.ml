open Qdp_codes

let via_encoding ~name ~problem encode inner =
  {
    Oneway.name;
    problem;
    message_qubits = inner.Oneway.message_qubits;
    alice = (fun x -> inner.Oneway.alice (encode x));
    accept_prob = (fun y bundle -> inner.Oneway.accept_prob (encode y) bundle);
  }

let expand_weights weights x =
  let total = Array.fold_left ( + ) 0 weights in
  let out = Gf2.zero (max 1 total) in
  let pos = ref 0 in
  Array.iteri
    (fun i w ->
      for _ = 1 to w do
        if Gf2.get x i then Gf2.set out !pos true;
        incr pos
      done)
    weights;
  out

let ltf ~seed ~weights ~theta =
  Array.iter
    (fun w -> if w < 0 then invalid_arg "Xor_functions.ltf: negative weight")
    weights;
  let n = Array.length weights in
  let total = max 1 (Array.fold_left ( + ) 0 weights) in
  let inner = Oneway.ham ~seed ~n:total ~d:(min theta total) in
  let problem =
    {
      Problems.name = Printf.sprintf "LTF<=%d" theta;
      n;
      f =
        (fun x y ->
          let s = ref 0 in
          Array.iteri
            (fun i w -> if Gf2.get x i <> Gf2.get y i then s := !s + w)
            weights;
          !s <= theta);
    }
  in
  via_encoding
    ~name:(Printf.sprintf "LTF(theta=%d)" theta)
    ~problem (expand_weights weights) inner

let hypercube_distance ~seed ~bits ~d =
  let inner = Oneway.ham ~seed ~n:bits ~d in
  {
    inner with
    Oneway.name = Printf.sprintf "hypercube-dist<=%d" d;
    problem =
      {
        Problems.name = Printf.sprintf "HCUBE<=%d" d;
        n = bits;
        f = (fun u v -> Gf2.hamming_distance u v <= d);
      };
  }

let bits_per_symbol alphabet =
  let rec go acc k = if k <= 1 then max 1 acc else go (acc + 1) ((k + 1) / 2) in
  go 0 alphabet

let encode_hamming_vertex ~coords ~alphabet symbols =
  if Array.length symbols <> coords then
    invalid_arg "Xor_functions.encode_hamming_vertex: coordinate count";
  let b = bits_per_symbol alphabet in
  let out = Gf2.zero (coords * b) in
  Array.iteri
    (fun c s ->
      if s < 0 || s >= alphabet then
        invalid_arg "Xor_functions.encode_hamming_vertex: symbol range";
      for k = 0 to b - 1 do
        if (s lsr (b - 1 - k)) land 1 = 1 then Gf2.set out ((c * b) + k) true
      done)
    symbols;
  out

(* one-hot re-encoding: the Hamming graph distance (number of differing
   coordinates) becomes half the Hamming distance of the one-hot
   strings -- the 2-scale hypercube embedding of Lemma 33. *)
let one_hot ~coords ~alphabet packed =
  let b = bits_per_symbol alphabet in
  let out = Gf2.zero (coords * alphabet) in
  for c = 0 to coords - 1 do
    let s = ref 0 in
    for k = 0 to b - 1 do
      s := (!s lsl 1) lor (if Gf2.get packed ((c * b) + k) then 1 else 0)
    done;
    if !s < alphabet then Gf2.set out ((c * alphabet) + !s) true
  done;
  out

let hamming_graph_distance ~seed ~coords ~alphabet ~d =
  let b = bits_per_symbol alphabet in
  let inner = Oneway.ham ~seed ~n:(coords * alphabet) ~d:(2 * d) in
  let problem =
    {
      Problems.name = Printf.sprintf "HGRAPH<=%d" d;
      n = coords * b;
      f =
        (fun u v ->
          let diff = ref 0 in
          for c = 0 to coords - 1 do
            let differs = ref false in
            for k = 0 to b - 1 do
              if Gf2.get u ((c * b) + k) <> Gf2.get v ((c * b) + k) then
                differs := true
            done;
            if !differs then incr diff
          done;
          !diff <= d);
    }
  in
  via_encoding
    ~name:(Printf.sprintf "H(%d,%d)-dist<=%d" coords alphabet d)
    ~problem
    (one_hot ~coords ~alphabet)
    inner

let l1_distance ~seed ~coords ~resolution ~d =
  let hamming_bound =
    int_of_float (Float.floor (d *. float_of_int resolution /. 2.))
  in
  let n = coords * resolution in
  let inner = Oneway.ham ~seed ~n ~d:hamming_bound in
  {
    inner with
    Oneway.name = Printf.sprintf "l1-dist<=%.3f" d;
    problem =
      {
        Problems.name = Printf.sprintf "L1<=%.3f" d;
        n;
        f = (fun u v -> Gf2.hamming_distance u v <= hamming_bound);
      };
  }
