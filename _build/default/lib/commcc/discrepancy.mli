(** Discrepancy estimates for the QMA-communication lower bounds of
    Section 8.2.

    Klauck's bounds (Lemmas 57-60) are stated through the one-sided
    smooth discrepancy; computing that quantity exactly is itself hard,
    so — as recorded in DESIGN.md — we regenerate Table 3's lower-bound
    rows from (i) the paper's asymptotic formulas and (ii) numerically
    certified plain-discrepancy upper bounds on small instances, via
    the spectral inequality
    [disc_U(M) <= sqrt(|X| |Y|) * ||M|| / (|X| |Y|)]. *)

(** [sign_matrix p] is the [2^n x 2^n] +/-1 communication matrix of a
    problem ([n <= 8]). *)
val sign_matrix : Problems.t -> float array array

(** [spectral_norm m] is the largest singular value (via the symmetric
    eigensolver on [M M^T]). *)
val spectral_norm : float array array -> float

(** [spectral_discrepancy_bound p] is the spectral upper bound on the
    uniform-distribution discrepancy of the problem's sign matrix. *)
val spectral_discrepancy_bound : Problems.t -> float

(** [rectangle_search st ~trials p] samples random rectangles and
    returns the best (largest) normalized rectangle correlation found —
    an empirical lower bound on the uniform discrepancy. *)
val rectangle_search : Random.State.t -> trials:int -> Problems.t -> float

(** [qmacc_lower_bound_formula p] is the paper's Table 3 asymptotic
    lower bound on total dQMA proof + communication for the problem, as
    a function of [n] evaluated concretely: [n^{1/3}] for DISJ and
    P_AND, [n^{1/2}] for IP, and [None] for problems (like EQ) with
    constant-cost randomized protocols. *)
val qmacc_lower_bound_formula : Problems.t -> float option

(** [sqrt_log_inv_disc p] is [sqrt (log2 (1 / disc))] with the spectral
    bound standing in for the (one-sided smooth) discrepancy — the
    shape of Theorem 63's bound on a concrete small instance. *)
val sqrt_log_inv_disc : Problems.t -> float
