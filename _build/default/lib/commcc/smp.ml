open Qdp_codes
open Qdp_fingerprint

type t = {
  name : string;
  problem : Problems.t;
  total_qubits : int;
  alice : Gf2.t -> Oneway.bundle;
  bob : Gf2.t -> Oneway.bundle;
  referee : Oneway.bundle -> Oneway.bundle -> float;
}

let accept_on_inputs p x y = p.referee (p.alice x) (p.bob y)

let eq ~seed ~n =
  let fp = Fingerprint.standard ~seed ~n in
  let message x = [| Fingerprint.state fp x |] in
  {
    name = "EQ-SMP-fingerprint";
    problem = Problems.eq n;
    total_qubits = 2 * Fingerprint.qubits fp;
    alice = message;
    bob = message;
    referee =
      (fun ma mb ->
        (* the referee's SWAP test on the two single-register messages *)
        let ov = Qdp_linalg.Cx.norm2 (Oneway.bundle_overlap ma mb) in
        (1. +. ov) /. 2.);
  }

let to_oneway p =
  {
    Oneway.name = p.name ^ "->oneway";
    problem = p.problem;
    message_qubits = p.total_qubits;
    alice = p.alice;
    accept_prob = (fun y bundle -> p.referee bundle (p.bob y));
  }

let repeat_and k p =
  if k < 1 then invalid_arg "Smp.repeat_and: k >= 1";
  let split bundle =
    let total = Array.length bundle in
    let per = total / k in
    Array.init k (fun i -> Array.sub bundle (i * per) per)
  in
  {
    name = Printf.sprintf "%s x%d(and)" p.name k;
    problem = p.problem;
    total_qubits = k * p.total_qubits;
    alice = (fun x -> Array.concat (List.init k (fun _ -> p.alice x)));
    bob = (fun y -> Array.concat (List.init k (fun _ -> p.bob y)));
    referee =
      (fun ma mb ->
        let mas = split ma and mbs = split mb in
        let acc = ref 1. in
        Array.iteri (fun i a -> acc := !acc *. p.referee a mbs.(i)) mas;
        !acc);
  }
