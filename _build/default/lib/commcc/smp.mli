(** The simultaneous message passing (SMP) model of Section 2.2.1:
    Alice and Bob each send one quantum message to a referee, who
    outputs the function value.  [BQP||(f)] upper-bounds [BQP1(f)],
    and the Hamming-distance instances of Section 6 are all stated as
    SMP protocols in their sources (Yao03, LZ13, DM18). *)

open Qdp_codes

type t = {
  name : string;
  problem : Problems.t;
  total_qubits : int;  (** charged size of both messages *)
  alice : Gf2.t -> Oneway.bundle;
  bob : Gf2.t -> Oneway.bundle;
  referee : Oneway.bundle -> Oneway.bundle -> float;
      (** acceptance probability on the two received bundles *)
}

(** [accept_on_inputs p x y] runs the honest protocol. *)
val accept_on_inputs : t -> Gf2.t -> Gf2.t -> float

(** [eq ~seed ~n] is the quantum-fingerprint SMP protocol for EQ
    (Buhrman-Cleve-Watrous-de Wolf): the referee SWAP tests the two
    fingerprints; one-sided towards acceptance, error
    [(1 + (1 - delta)^2) / 2] on unequal inputs before repetition. *)
val eq : seed:int -> n:int -> t

(** [to_oneway p] realizes the simulation [BQP1(f) <= BQP||(f)] of
    Section 2.2.1: Bob plays the referee, preparing his own SMP
    message locally and running the referee's test on it together with
    the message received from Alice. *)
val to_oneway : t -> Oneway.t

(** [repeat_and k p] amplifies a one-sided SMP protocol by [k]
    independent copies, accepting only if all accept. *)
val repeat_and : int -> t -> t
