open Qdp_linalg
open Qdp_codes

type instance = { v1 : Subspace.t; v2 : Subspace.t }
type promise = Close | Far | Outside_promise

let close_bound = 0.1 *. Float.sqrt 2.
let far_bound = 0.9 *. Float.sqrt 2.
let delta inst = Subspace.distance inst.v1 inst.v2

let promise_of inst =
  let d = delta inst in
  if d <= close_bound then Close
  else if d >= far_bound then Far
  else Outside_promise

let ceil_log2 d =
  let rec bits acc k = if k <= 1 then acc else bits (acc + 1) ((k + 1) / 2) in
  bits 0 d

let qubits inst = ceil_log2 (Subspace.ambient inst.v1)

let gaussian st =
  let u1 = Float.max 1e-12 (Random.State.float st 1.) in
  let u2 = Random.State.float st 1. in
  Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2)

let random_unit st ambient =
  let v = Array.init ambient (fun _ -> gaussian st) in
  let n = Float.sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v) in
  Array.map (fun x -> x /. n) v

let random_close st ~ambient ~dim =
  let shared = random_unit st ambient in
  let eps = 0.05 in
  let perturbed =
    let g = random_unit st ambient in
    Array.mapi (fun i x -> x +. (eps *. g.(i))) shared
  in
  let fill k = List.init k (fun _ -> random_unit st ambient) in
  {
    v1 = Subspace.of_spanning (shared :: fill (dim - 1));
    v2 = Subspace.of_spanning (perturbed :: fill (dim - 1));
  }

let random_far st ~ambient ~dim =
  let rec go attempts =
    if attempts > 50 then
      failwith "Lsd.random_far: could not certify the far promise (ambient too small)";
    let make () =
      Subspace.of_spanning (List.init dim (fun _ -> random_unit st ambient))
    in
    let inst = { v1 = make (); v2 = make () } in
    if promise_of inst = Far then inst else go (attempts + 1)
  in
  go 0

(* Seeded random unit vector hash: the same key always produces the
   same vector, distinct keys produce (nearly orthogonal) independent
   vectors. *)
let hashed_unit ~seed ~ambient key =
  let st = Random.State.make [| seed; Hashtbl.hash key; ambient |] in
  random_unit st ambient

let of_eq_inputs ~seed ~ambient x y =
  let g v = hashed_unit ~seed ~ambient ("eq:" ^ Gf2.to_string v) in
  let inst =
    { v1 = Subspace.of_spanning [ g x ]; v2 = Subspace.of_spanning [ g y ] }
  in
  let expected = if Gf2.equal x y then Close else Far in
  if promise_of inst <> expected then
    failwith "Lsd.of_eq_inputs: promise not certified; increase ambient";
  inst

let of_gt_inputs ~seed ~ambient x y =
  let n = Gf2.length x in
  let gen side i prefix =
    hashed_unit ~seed ~ambient
      (Printf.sprintf "gt:%s:%d:%s" side i (Gf2.to_string prefix))
  in
  let a_vecs = ref [] and b_vecs = ref [] in
  for i = 0 to n - 1 do
    if Gf2.get x i then a_vecs := gen "w" i (Gf2.prefix x i) :: !a_vecs;
    if not (Gf2.get y i) then b_vecs := gen "w" i (Gf2.prefix y i) :: !b_vecs
  done;
  let pad side l =
    if l = [] then [ hashed_unit ~seed ~ambient ("gt:empty:" ^ side) ] else l
  in
  let inst =
    {
      v1 = Subspace.of_spanning (pad "a" !a_vecs);
      v2 = Subspace.of_spanning (pad "b" !b_vecs);
    }
  in
  let expected = if Gf2.compare_big_endian x y > 0 then Close else Far in
  if promise_of inst <> expected then
    failwith "Lsd.of_gt_inputs: promise not certified; increase ambient";
  inst

(* Project the real and imaginary parts of a complex state separately;
   the projector is a real matrix so this is exact. *)
let project_vec sub psi =
  let d = Vec.dim psi in
  let pre = Subspace.project sub (Array.copy (Vec.raw_re psi)) in
  let pim = Subspace.project sub (Array.copy (Vec.raw_im psi)) in
  let out = Vec.create d in
  for k = 0 to d - 1 do
    Vec.set out k { Complex.re = pre.(k); im = pim.(k) }
  done;
  out

let real_to_vec arr =
  Vec.init (Array.length arr) (fun k -> Cx.re arr.(k))

let honest_proof inst =
  let v1, _ = Subspace.closest_unit_vectors inst.v1 inst.v2 in
  real_to_vec v1

let accept_prob_onto sub psi =
  let p = project_vec sub psi in
  let n = Vec.norm p in
  n *. n

let post_onto sub psi =
  let p = project_vec sub psi in
  if Vec.norm p <= 1e-12 then invalid_arg "Lsd.post_onto: zero acceptance";
  Vec.normalize p

let alice_accept_prob inst psi = accept_prob_onto inst.v1 psi
let alice_post inst psi = post_onto inst.v1 psi
let bob_accept_prob inst psi = accept_prob_onto inst.v2 psi

let protocol_accept_prob inst psi =
  let p = project_vec inst.v2 (project_vec inst.v1 psi) in
  let n = Vec.norm p in
  n *. n

let best_proof_accept_prob inst =
  let cosines = Subspace.principal_cosines inst.v1 inst.v2 in
  let smax = Float.min 1. cosines.(0) in
  smax *. smax
