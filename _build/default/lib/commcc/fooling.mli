(** 1-fooling sets (Section 2.2.1) — the combinatorial engine of the
    classical lower bound (Lemma 23 / Proposition 24) and of the
    quantum state-counting bound (Proposition 50). *)

open Qdp_codes

(** [is_one_fooling_set p pairs] checks the definition: [f (x, y) = 1]
    on every pair, and for any two distinct pairs at least one cross
    application is 0.  Quadratic in the set size. *)
val is_one_fooling_set : Problems.t -> (Gf2.t * Gf2.t) list -> bool

(** [eq_fooling_set n] is the canonical size-[2^n] fooling set
    [{(x, x)}] for EQ — materialized only for [n <= 20]; use
    {!eq_fooling_pair} for sampling. *)
val eq_fooling_set : int -> (Gf2.t * Gf2.t) list

(** [eq_fooling_pair n k] is the [k]-th element [(x_k, x_k)]. *)
val eq_fooling_pair : int -> int -> Gf2.t * Gf2.t

(** [gt_fooling_set n] is the size-[2^n - 1] fooling set
    [{(x, x - 1) : x >= 1}] for GT ([n <= 20]). *)
val gt_fooling_set : int -> (Gf2.t * Gf2.t) list

(** [gt_fooling_pair n k] is [(k + 1, k)] as [n]-bit integers. *)
val gt_fooling_pair : int -> int -> Gf2.t * Gf2.t

(** [log2_fooling_size p] is [log2] of the size of the canonical
    fooling set we know for the problem, or [None] when the problem
    has no registered set.  EQ and GT report [~ n]. *)
val log2_fooling_size : Problems.t -> float option
