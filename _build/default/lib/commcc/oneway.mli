(** One-way quantum communication protocols, the raw material of the
    dQMA compilers (Theorems 30 and 32).

    A protocol is described by Alice's message — a {e bundle} of
    independent pure-state registers, so that a k-fold repeated
    protocol keeps per-copy states separate instead of materializing a
    [d^k]-dimensional tensor — and Bob's acceptance probability on a
    received bundle.  The charged cost {!message_qubits} is what the
    dQMA compiler accounts as [BQP1(f)].

    The Hamming-distance instance substitutes the LZ13 protocol (see
    DESIGN.md): inputs are permuted by a fixed seeded permutation and
    cut into [2 d] blocks; Alice sends one equality fingerprint per
    block ([O(d log n)] qubits) and Bob accepts when at least half the
    block fingerprints match his own.  Random placement separates
    [<= d] from [>= (1 + eps) d] mismatches with constant probability,
    amplified by {!repeat}. *)

open Qdp_linalg
open Qdp_codes

(** A bundle: the tensor product of listed registers, kept factored. *)
type bundle = Vec.t array

(** [bundle_overlap a b] is the inner product of the two product
    states: [prod_i <a_i|b_i>].
    @raise Invalid_argument on length or dimension mismatch. *)
val bundle_overlap : bundle -> bundle -> Cx.t

(** [bundle_qubits b] charges [ceil (log2 dim)] per register. *)
val bundle_qubits : bundle -> int

type t = {
  name : string;
  problem : Problems.t;
  message_qubits : int;  (** charged size of one message *)
  alice : Gf2.t -> bundle;  (** Alice's (pure) message on input [x] *)
  accept_prob : Gf2.t -> bundle -> float;
      (** Bob's acceptance probability on input [y] and a received
          bundle whose registers are independent pure states *)
}

(** [accept_on_inputs p x y] is the acceptance of the honest run. *)
val accept_on_inputs : t -> Gf2.t -> Gf2.t -> float

(** [eq ~seed ~n] is the fingerprint protocol for [EQ_n]: one-sided
    error, [O(log n)] qubits (Section 2.2.1's protocol [pi]). *)
val eq : seed:int -> n:int -> t

(** [ham ~seed ~n ~d] is the block-fingerprint protocol for
    [HAM_n^{<= d}] described above, of [O(d log n)] qubits. *)
val ham : seed:int -> n:int -> d:int -> t

(** [lz13_cost ~n ~d] is the paper-formula cost [c' d log n] the LZ13
    protocol would charge — reported alongside the simulated cost. *)
val lz13_cost : n:int -> d:int -> int

(** [repeat k p] runs [k] independent copies and takes a majority vote
    (strict majority accepts).  Message bundles concatenate; the cost
    multiplies by [k]. *)
val repeat : int -> t -> t

(** [repeat_and k p] runs [k] independent copies and accepts only if
    all accept — the error reduction used for one-sided protocols such
    as {!eq}. *)
val repeat_and : int -> t -> t

(** [thermometer ~resolution v] encodes a vector of floats in
    [[-1, 1]] into bits by thermometer (unary) code with the given
    resolution per coordinate, so that the l1 distance of two vectors
    is [hamming distance / resolution * 2] up to quantization — the
    reduction behind Corollary 37. *)
val thermometer : resolution:int -> float array -> Gf2.t

(** [hypercube_label ~bits v] is an [l_1]-graph vertex label (already a
    hypercube embedding): graph distance equals Hamming distance of
    labels, the reduction behind Corollary 35.  Provided as the
    identity packaging for documentation purposes. *)
val hypercube_label : bits:int -> int -> Gf2.t
