(** The Linear Subspace Distance problem (Raz–Shpilka), the complete
    problem for QMA communication protocols (Definition 16, Lemmas
    44/45 of the paper).

    An instance is a pair of subspaces of [R^m] promised to satisfy
    [Delta <= 0.1 sqrt 2] (close / yes) or [Delta >= 0.9 sqrt 2]
    (far / no).  The QMA one-way protocol of cost [O(log m)]: Merlin
    sends the unit vector of [V1] closest to [V2] as a [log m]-qubit
    state; Alice measures [{P_V1, I - P_V1}] and forwards on success;
    Bob measures [{P_V2, I - P_V2}].  On yes instances an honest proof
    passes with probability [>= 0.98]; on no instances every proof
    passes with probability at most [sigma_max^2 <= 0.0361]. *)

open Qdp_linalg
open Qdp_codes

type instance = { v1 : Subspace.t; v2 : Subspace.t }

type promise = Close | Far | Outside_promise

(** [promise_of inst] classifies by the actual distance. *)
val promise_of : instance -> promise

(** [delta inst] is [Subspace.distance v1 v2]. *)
val delta : instance -> float

(** [qubits inst] is the charged message/proof size
    [ceil (log2 ambient)]. *)
val qubits : instance -> int

(** [random_close st ~ambient ~dim] samples a yes instance (two
    [dim]-dimensional subspaces sharing a near-common direction). *)
val random_close : Random.State.t -> ambient:int -> dim:int -> instance

(** [random_far st ~ambient ~dim] samples a no instance (independent
    random subspaces; resampled until the far promise certifies,
    which requires [ambient >> dim^2]). *)
val random_far : Random.State.t -> ambient:int -> dim:int -> instance

(** [of_eq_inputs ~seed ~ambient x y] maps an EQ input pair to an LSD
    instance in the spirit of Lemma 44: [A_x = span (g x)],
    [B_y = span (g y)] for a seeded random unit-vector hash [g].
    [x = y] gives [Delta = 0]; [x <> y] gives [Delta ~ sqrt 2], checked
    against the far promise.
    @raise Failure if the promise fails to certify (ambient too
    small). *)
val of_eq_inputs : seed:int -> ambient:int -> Gf2.t -> Gf2.t -> instance

(** [of_gt_inputs ~seed ~ambient x y] maps a GT input pair:
    [A_x = span (g (i, x\[i\]) : x_i = 1)] and
    [B_y = span (g (i, y\[i\]) : y_i = 0)].  [GT (x, y) = 1] yields a
    shared generator and [Delta = 0]; otherwise the spans are
    independent and far.  Requires [ambient] on the order of
    [100 * n]. *)
val of_gt_inputs : seed:int -> ambient:int -> Gf2.t -> Gf2.t -> instance

(** {2 The QMA one-way protocol (Lemma 45)} *)

(** [honest_proof inst] is Merlin's state: the unit vector of [v1]
    closest to [v2], embedded as real amplitudes. *)
val honest_proof : instance -> Vec.t

(** [accept_prob_onto sub psi] is the acceptance probability of the
    projective measurement [{P_sub, I - P_sub}] on the (unit) state
    [psi] — the primitive both parties' checks are built from. *)
val accept_prob_onto : Subspace.t -> Vec.t -> float

(** [post_onto sub psi] is the renormalized post-measurement state.
    @raise Invalid_argument on (numerically) zero acceptance. *)
val post_onto : Subspace.t -> Vec.t -> Vec.t

(** [alice_accept_prob inst psi] is the probability Alice's projective
    check onto [v1] passes on the (unit) proof [psi]. *)
val alice_accept_prob : instance -> Vec.t -> float

(** [alice_post inst psi] is the renormalized post-check state Alice
    forwards.
    @raise Invalid_argument if the check passes with (numerically)
    zero probability. *)
val alice_post : instance -> Vec.t -> Vec.t

(** [bob_accept_prob inst psi] is Bob's projective check onto [v2]. *)
val bob_accept_prob : instance -> Vec.t -> float

(** [protocol_accept_prob inst psi] is the end-to-end acceptance
    [P(Alice passes) * P(Bob passes | forwarded state)]. *)
val protocol_accept_prob : instance -> Vec.t -> float

(** [best_proof_accept_prob inst] is the maximum of
    {!protocol_accept_prob} over all proofs — [sigma_max^2] with
    [sigma_max] the top principal cosine — realized by the top
    principal vector.  This is the quantity the soundness bound
    controls. *)
val best_proof_accept_prob : instance -> float
