(** Standard small unitaries used by the verification circuits. *)

open Qdp_linalg

(** [hadamard] is the 2x2 Hadamard gate. *)
val hadamard : Mat.t

(** [pauli_x], [pauli_y], [pauli_z] are the Pauli matrices. *)
val pauli_x : Mat.t

val pauli_y : Mat.t
val pauli_z : Mat.t

(** [phase theta] is [diag(1, e^{i theta})]. *)
val phase : float -> Mat.t

(** [rotation_y theta] is the real rotation
    [[cos(theta/2), -sin(theta/2)]; [sin(theta/2), cos(theta/2)]] —
    used to build interpolating cheating proofs. *)
val rotation_y : float -> Mat.t

(** [controlled u] is the block matrix [|0><0| (x) I + |1><1| (x) u]
    with the control as the more significant qubit. *)
val controlled : Mat.t -> Mat.t

(** [cnot] is [controlled pauli_x]. *)
val cnot : Mat.t

(** [cswap d] is the controlled swap of two [d]-dimensional systems,
    control first: [|0><0| (x) I + |1><1| (x) SWAP_d]. *)
val cswap : int -> Mat.t
