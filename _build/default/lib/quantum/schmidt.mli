(** Schmidt decomposition of bipartite pure states (Fact 2 of the
    paper), used in the Lemma 53 entangled-proof argument. *)

open Qdp_linalg

(** The decomposition [|psi> = sum_i c_i |a_i> |b_i>] with
    non-negative coefficients in descending order and orthonormal
    vectors on each side. *)
type t = {
  coefficients : float array;
  left_vectors : Vec.t array;  (** in [C^{d_a}] *)
  right_vectors : Vec.t array;  (** in [C^{d_b}] *)
}

(** [decompose ~d_a ~d_b psi] computes the decomposition of a unit
    state on [C^{d_a} (x) C^{d_b}].
    @raise Invalid_argument if [Vec.dim psi <> d_a * d_b]. *)
val decompose : d_a:int -> d_b:int -> Vec.t -> t

(** [reconstruct ~d_a ~d_b dec] rebuilds
    [sum_i c_i |a_i>|b_i>] — equal to the input up to global phase. *)
val reconstruct : d_a:int -> d_b:int -> t -> Vec.t

(** [schmidt_rank ?eps dec] is the number of coefficients above [eps]
    (default [1e-9]); 1 iff the state is a product state. *)
val schmidt_rank : ?eps:float -> t -> int

(** [entanglement_entropy dec] is the von Neumann entropy (base 2) of
    the reduced state, [- sum c_i^2 log2 c_i^2]. *)
val entanglement_entropy : t -> float
