(** The SWAP test (Algorithm 1 of the paper).

    The test on a bipartite state is equivalent to the projective
    measurement onto the symmetric subspace [H_S] of the two factors:
    the acceptance probability on a pure state
    [|psi> = alpha |psi_S> + beta |psi_A>] is [|alpha|^2] (Lemma 13),
    and on product inputs [(1 + |<a|b>|^2) / 2].  Both the closed-form
    and the explicit ancilla circuit are provided; tests check they
    agree. *)

open Qdp_linalg

(** [accept_prob_product a b] is [(1 + |<a|b>|^2) / 2] for unit
    vectors [a, b] of equal dimension. *)
val accept_prob_product : Vec.t -> Vec.t -> float

(** [accept_prob_pure psi] is [||Pi_sym psi||^2] for a pure state on
    [C^d (x) C^d] (dimension a perfect square). *)
val accept_prob_pure : Vec.t -> float

(** [accept_prob_density rho] is [tr (Pi_sym rho)] for a density
    matrix on [C^d (x) C^d]. *)
val accept_prob_density : Mat.t -> float

(** [post_accept_pure psi] is the renormalized post-measurement state
    [Pi_sym psi / ||...||] after acceptance.
    @raise Invalid_argument when the acceptance probability is
    (numerically) zero. *)
val post_accept_pure : Vec.t -> Vec.t

(** [circuit_accept_prob psi] runs Algorithm 1 literally: adjoins an
    ancilla qubit, applies Hadamard / controlled-SWAP / Hadamard, and
    returns the probability of measuring [|0>].  Agrees with
    {!accept_prob_pure} — used to validate the projector shortcut. *)
val circuit_accept_prob : Vec.t -> float
