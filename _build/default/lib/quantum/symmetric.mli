(** The symmetric group acting on [(C^d)^{(x) k}] and the symmetric
    subspace.

    The permutation test (Algorithm 2 in the paper) accepts a state
    [rho] with probability [tr (Pi_sym rho)] where [Pi_sym] is the
    projector onto the symmetric subspace — the weak-Schur-sampling
    outcome of the trivial irrep.  This module builds the permutation
    unitaries [U_pi] and [Pi_sym] explicitly for small [k] and [d]. *)

open Qdp_linalg

(** [permutations k] enumerates all [k!] permutations of [0..k-1], each
    given as an array [p] with [p.(i)] the image of [i]. *)
val permutations : int -> int array list

(** [compose p q] is the permutation [i -> p (q i)]. *)
val compose : int array -> int array -> int array

(** [inverse p] is the inverse permutation. *)
val inverse : int array -> int array

(** [u_pi ~d pi] is the unitary on [(C^d)^{(x) k}] with action
    [U_pi |i_1 .. i_k> = |i_{pi^{-1}(1)} .. i_{pi^{-1}(k)}>]. *)
val u_pi : d:int -> int array -> Mat.t

(** [projector ~d ~k] is [Pi_sym = (1/k!) sum_pi U_pi], the projector
    onto the symmetric subspace of [(C^d)^{(x) k}]. *)
val projector : d:int -> k:int -> Mat.t

(** [subspace_dimension ~d ~k] is [binom (d + k - 1) k], the dimension
    of the symmetric subspace. *)
val subspace_dimension : d:int -> k:int -> int

(** [apply_projector ~d ~k v] applies [Pi_sym] to a vector of dimension
    [d^k] without materializing the projector: averages [U_pi v] over
    all permutations. *)
val apply_projector : d:int -> k:int -> Vec.t -> Vec.t
