(** Exact state-vector simulator over named quantum registers.

    This is the reference simulator of the repository: a single global
    pure state over all proof registers of a protocol run, on which
    arbitrary (including entangled) proofs, controlled swaps,
    symmetric-subspace projections and measurements are exact.  It is
    limited to ~20 qubits total, which covers paths of length up to ~5
    with toy fingerprints — enough to validate the scalable
    product-proof simulator and to exercise dQMA soundness against
    entangled proofs.

    Registers are named; qubit 0 of the first register is the most
    significant bit of the basis-state index. *)

open Qdp_linalg

(** A register layout: an ordered list of named registers with widths
    in qubits. *)
type layout

type t

(** [layout regs] builds a layout.
    @raise Invalid_argument on duplicate names or non-positive
    widths. *)
val layout : (string * int) list -> layout

(** [layout_registers l] lists the (name, width) pairs in order. *)
val layout_registers : layout -> (string * int) list

(** [total_qubits l] is the sum of widths. *)
val total_qubits : layout -> int

(** [zero l] is [|0...0>]. *)
val zero : layout -> t

(** [product l states] initializes each named register with the given
    pure state (dimension [2^width]); unnamed registers start in
    [|0...0>].
    @raise Invalid_argument on dimension mismatch. *)
val product : layout -> (string * Vec.t) list -> t

(** [of_global l v] wraps a full state vector of dimension
    [2^(total_qubits l)] — used to install entangled proofs. *)
val of_global : layout -> Vec.t -> t

(** [get_layout s] / [dim s] / [global_vector s]. *)
val get_layout : t -> layout

val dim : t -> int
val global_vector : t -> Vec.t

(** [register_width s name] is the width of the named register.
    @raise Not_found if absent. *)
val register_width : t -> string -> int

(** [norm2 s] is the squared norm of the global state (1 for
    normalized states, less after an unnormalized projection). *)
val norm2 : t -> float

(** [normalize s] rescales to unit norm.
    @raise Invalid_argument on (numerically) zero states. *)
val normalize : t -> t

(** [inner a b] is the global inner product [<a|b>]. *)
val inner : t -> t -> Cx.t

(** [apply_on s names m] applies the operator [m] (of dimension
    [2^k x 2^k] where [k] is the summed width of [names]) to the
    concatenation of the named registers, identity elsewhere.  [m] need
    not be unitary (projectors are applied the same way). *)
val apply_on : t -> string list -> Mat.t -> t

(** [permute_registers s names pi] applies the permutation unitary
    [U_pi] to the listed equal-width registers:
    slot [l] of the result holds the previous contents of slot
    [pi^{-1} l]. *)
val permute_registers : t -> string array -> int array -> t

(** [swap_registers s a b] exchanges the contents of two equal-width
    registers. *)
val swap_registers : t -> string -> string -> t

(** [controlled_swap s ~control a b] applies a swap of [a] and [b]
    controlled on the 1-qubit register [control]. *)
val controlled_swap : t -> control:string -> string -> string -> t

(** [project_sym s names] applies the symmetric-subspace projector
    [(1/k!) sum_pi U_pi] over the listed equal-width registers,
    returning the (generally unnormalized) projected state.  Its
    squared norm is the permutation-test acceptance probability. *)
val project_sym : t -> string list -> t

(** [prob_of_outcome s name v] is the probability that measuring
    register [name] in the computational basis yields [v]. *)
val prob_of_outcome : t -> string -> int -> float

(** [measure st s name] samples a computational-basis outcome of the
    named register and returns it with the collapsed, renormalized
    state. *)
val measure : Random.State.t -> t -> string -> int * t

(** [reduced_density s names] is the reduced density matrix of the
    listed registers (partial trace over everything else), of dimension
    [2^k x 2^k]. *)
val reduced_density : t -> string list -> Mat.t
