open Qdp_linalg

type t = {
  coefficients : float array;
  left_vectors : Vec.t array;
  right_vectors : Vec.t array;
}

let decompose ~d_a ~d_b psi =
  if Vec.dim psi <> d_a * d_b then invalid_arg "Schmidt.decompose: dimension";
  (* amplitude matrix M with |psi> = sum_ij M_ij |i>|j> *)
  let m = Mat.init d_a d_b (fun i j -> Vec.get psi ((i * d_b) + j)) in
  let rho_a = Mat.mul m (Mat.adjoint m) in
  let evals, evecs = Eig.hermitian rho_a in
  (* descending order *)
  let order = Array.init d_a (fun i -> d_a - 1 - i) in
  let coefficients =
    Array.map (fun i -> Float.sqrt (Float.max 0. evals.(i))) order
  in
  let left_vectors =
    Array.map (fun i -> Vec.init d_a (fun row -> Mat.get evecs row i)) order
  in
  let right_vectors =
    Array.mapi
      (fun idx a ->
        let c = coefficients.(idx) in
        if c <= 1e-12 then Vec.basis d_b 0
        else begin
          let b = Vec.create d_b in
          for j = 0 to d_b - 1 do
            let acc = ref Cx.zero in
            for i = 0 to d_a - 1 do
              acc := Cx.add !acc (Cx.mul (Cx.conj (Vec.get a i)) (Mat.get m i j))
            done;
            Vec.set b j (Cx.scale (1. /. c) !acc)
          done;
          b
        end)
      left_vectors
  in
  { coefficients; left_vectors; right_vectors }

let reconstruct ~d_a ~d_b dec =
  let out = Vec.create (d_a * d_b) in
  Array.iteri
    (fun idx c ->
      if c > 1e-12 then begin
        let term = Vec.tensor dec.left_vectors.(idx) dec.right_vectors.(idx) in
        Vec.axpy ~alpha:(Cx.re c) term out
      end)
    dec.coefficients;
  out

let schmidt_rank ?(eps = 1e-9) dec =
  Array.fold_left (fun acc c -> if c > eps then acc + 1 else acc) 0
    dec.coefficients

let entanglement_entropy dec =
  Array.fold_left
    (fun acc c ->
      let p = c *. c in
      if p > 1e-15 then acc -. (p *. (Float.log p /. Float.log 2.)) else acc)
    0. dec.coefficients
