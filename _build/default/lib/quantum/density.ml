open Qdp_linalg

type t = { dims : int array; m : Mat.t }

let product_dims dims = Array.fold_left ( * ) 1 dims

let make ~dims m =
  let d = product_dims dims in
  if Mat.rows m <> d || Mat.cols m <> d then
    invalid_arg "Density.make: matrix/dims mismatch";
  { dims; m }

let of_pure ~dims v = make ~dims (Mat.of_vec v)
let dims rho = Array.copy rho.dims
let mat rho = rho.m
let dim rho = product_dims rho.dims

let maximally_mixed ~dims =
  let d = product_dims dims in
  make ~dims (Mat.scale (Cx.re (1. /. float_of_int d)) (Mat.identity d))

let tensor a b =
  { dims = Array.append a.dims b.dims; m = Mat.tensor a.m b.m }

(* Indices of the tensor product decompose in mixed radix given by
   [dims]; partial trace sums matched traced-out digits. *)
let partial_trace rho ~keep =
  let n = Array.length rho.dims in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Density.partial_trace: index")
    keep;
  let sorted = List.sort_uniq compare keep in
  if List.length sorted <> List.length keep then
    invalid_arg "Density.partial_trace: duplicate index";
  let keep_arr = Array.of_list keep in
  let traced =
    Array.of_list
      (List.filter (fun i -> not (List.mem i keep)) (List.init n (fun i -> i)))
  in
  let dims_keep = Array.map (fun i -> rho.dims.(i)) keep_arr in
  let dims_traced = Array.map (fun i -> rho.dims.(i)) traced in
  let dk = product_dims dims_keep and dt = product_dims dims_traced in
  (* strides of each factor in the full index *)
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * rho.dims.(i + 1)
  done;
  let compose_index digits_positions digits =
    let g = ref 0 in
    Array.iteri (fun t pos -> g := !g + (digits.(t) * strides.(pos))) digits_positions;
    !g
  in
  let digits_of value dims =
    let k = Array.length dims in
    let out = Array.make k 0 in
    let rest = ref value in
    for t = k - 1 downto 0 do
      out.(t) <- !rest mod dims.(t);
      rest := !rest / dims.(t)
    done;
    out
  in
  let out = Mat.create dk dk in
  for a = 0 to dk - 1 do
    let da = digits_of a dims_keep in
    for b = 0 to dk - 1 do
      let db = digits_of b dims_keep in
      let acc = ref Cx.zero in
      for tv = 0 to dt - 1 do
        let dtv = digits_of tv dims_traced in
        let ga = compose_index keep_arr da + compose_index traced dtv in
        let gb = compose_index keep_arr db + compose_index traced dtv in
        acc := Cx.add !acc (Mat.get rho.m ga gb)
      done;
      Mat.set out a b !acc
    done
  done;
  make ~dims:dims_keep out

let trace rho = (Mat.trace rho.m).Complex.re

let is_density ?(eps = 1e-8) rho =
  Mat.is_hermitian ~eps rho.m
  && Float.abs (trace rho -. 1.) <= eps
  &&
  let evals = Eig.eigenvalues_hermitian rho.m in
  Array.for_all (fun l -> l >= -.eps) evals

let expectation rho m = (Mat.trace (Mat.mul m rho.m)).Complex.re

let mix weighted =
  match weighted with
  | [] -> invalid_arg "Density.mix: empty list"
  | (p0, r0) :: rest ->
      let acc = ref (Mat.scale (Cx.re p0) r0.m) in
      List.iter
        (fun (p, r) ->
          if r.dims <> r0.dims then invalid_arg "Density.mix: dims mismatch";
          acc := Mat.add !acc (Mat.scale (Cx.re p) r.m))
        rest;
      { dims = r0.dims; m = !acc }
