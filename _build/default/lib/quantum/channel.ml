open Qdp_linalg

type t = { ops : Mat.t list }

let of_kraus ops =
  match ops with
  | [] -> invalid_arg "Channel.of_kraus: empty"
  | k :: rest ->
      List.iter
        (fun k' ->
          if Mat.rows k' <> Mat.rows k || Mat.cols k' <> Mat.cols k then
            invalid_arg "Channel.of_kraus: shape mismatch")
        rest;
      { ops }

let kraus ch = ch.ops

let is_trace_preserving ?(eps = 1e-8) ch =
  let d = Mat.cols (List.hd ch.ops) in
  let acc = ref (Mat.create d d) in
  List.iter (fun k -> acc := Mat.add !acc (Mat.mul (Mat.adjoint k) k)) ch.ops;
  Mat.equal ~eps !acc (Mat.identity d)

let apply ch rho =
  let d = Mat.rows (List.hd ch.ops) in
  let acc = ref (Mat.create d d) in
  List.iter
    (fun k -> acc := Mat.add !acc (Mat.mul (Mat.mul k rho) (Mat.adjoint k)))
    ch.ops;
  !acc

let unitary u = { ops = [ u ] }
let identity d = unitary (Mat.identity d)

let mix p a b =
  if p < 0. || p > 1. then invalid_arg "Channel.mix: probability";
  let scale w k = Mat.scale (Cx.re (Float.sqrt w)) k in
  {
    ops =
      List.map (scale p) a.ops @ List.map (scale (1. -. p)) b.ops;
  }

let symmetrization d = mix 0.5 (identity (d * d)) (unitary (Mat.swap_gate d))

let dephase d =
  {
    ops =
      List.init d (fun i ->
          Mat.init d d (fun r c -> if r = i && c = i then Cx.one else Cx.zero));
  }

let stinespring ch =
  let n = List.length ch.ops in
  let first = List.hd ch.ops in
  let d_out = Mat.rows first and d_in = Mat.cols first in
  let v = Mat.create (d_out * n) d_in in
  List.iteri
    (fun i k ->
      for r = 0 to d_out - 1 do
        for c = 0 to d_in - 1 do
          (* row index: output (x) environment, environment last *)
          Mat.set v ((r * n) + i) c (Mat.get k r c)
        done
      done)
    ch.ops;
  v

let compose a b = { ops = List.concat_map (fun ka -> List.map (Mat.mul ka) b.ops) a.ops }

let tensor a b =
  { ops = List.concat_map (fun ka -> List.map (Mat.tensor ka) b.ops) a.ops }
