open Qdp_linalg

let trace_norm m =
  if Mat.is_hermitian ~eps:1e-7 m then
    Array.fold_left (fun acc l -> acc +. Float.abs l) 0.
      (Eig.eigenvalues_hermitian m)
  else
    (* general case: singular values via eig of m^dagger m *)
    let mm = Mat.mul (Mat.adjoint m) m in
    Array.fold_left
      (fun acc l -> acc +. Float.sqrt (Float.max 0. l))
      0.
      (Eig.eigenvalues_hermitian mm)

let trace_distance rho sigma = 0.5 *. trace_norm (Mat.sub rho sigma)

let fidelity rho sigma =
  let sq = Eig.sqrt_psd rho in
  let inner = Mat.mul (Mat.mul sq sigma) sq in
  let evals = Eig.eigenvalues_hermitian inner in
  Array.fold_left (fun acc l -> acc +. Float.sqrt (Float.max 0. l)) 0. evals

let fidelity_pure a b = Cx.abs (Vec.dot a b)

let trace_distance_pure a b =
  let f = fidelity_pure a b in
  Float.sqrt (Float.max 0. (1. -. (f *. f)))

let fuchs_van_de_graaf rho sigma =
  let f = fidelity rho sigma in
  let d = trace_distance rho sigma in
  (1. -. f, d, Float.sqrt (Float.max 0. (1. -. (f *. f))))
