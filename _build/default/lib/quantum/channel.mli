(** Quantum channels (CPTP maps) in Kraus form.

    The soundness analyses lean on the contractivity of the trace
    distance under channels (Fact 4) and on modelling local operations
    (symmetrization, measurement-and-forward) as channels; this module
    provides the operational side, with the facts checked in the test
    suite. *)

open Qdp_linalg

type t

(** [of_kraus ops] builds a channel from Kraus operators (all the same
    shape [d_out x d_in]).
    @raise Invalid_argument on an empty list or mismatched shapes. *)
val of_kraus : Mat.t list -> t

(** [kraus ch] returns the operators. *)
val kraus : t -> Mat.t list

(** [is_trace_preserving ?eps ch] checks [sum K_i^dagger K_i = I]. *)
val is_trace_preserving : ?eps:float -> t -> bool

(** [apply ch rho] is [sum_i K_i rho K_i^dagger]. *)
val apply : t -> Mat.t -> Mat.t

(** [unitary u] is the channel [rho -> u rho u^dagger]. *)
val unitary : Mat.t -> t

(** [identity d] is the identity channel on [C^d]. *)
val identity : int -> t

(** [mix p a b] applies [a] with probability [p] and [b] otherwise. *)
val mix : float -> t -> t -> t

(** [symmetrization d] is the paper's symmetrization step on
    [C^d (x) C^d]: swap the factors with probability 1/2. *)
val symmetrization : int -> t

(** [dephase d] is full dephasing in the computational basis
    (measurement with forgotten outcome). *)
val dephase : int -> t

(** [stinespring ch] is the Stinespring dilation isometry
    [V = sum_i K_i (x) |i>_E] (environment last): applying the channel
    equals [tr_E (V rho V^dagger)] — the purification trick behind the
    Carol/Dave reformulation in Theorem 42's proof.  The returned
    matrix has shape [(d_out * n_kraus) x d_in]. *)
val stinespring : t -> Mat.t

(** [compose a b] is [a . b] (apply [b] first). *)
val compose : t -> t -> t

(** [tensor a b] acts as [a (x) b] on a bipartite system. *)
val tensor : t -> t -> t
