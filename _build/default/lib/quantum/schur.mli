(** Weak Schur sampling over [(C^d)^{(x) k}] (Section 3.1 context).

    Algorithm 2 measures the partition label [lambda] of the
    Schur-Weyl decomposition and accepts on the trivial partition
    [(k)].  This module implements the full label measurement: integer
    partitions of [k], their irreducible S_k characters via the
    Murnaghan-Nakayama rule, the central projectors
    [P_lambda = (d_lambda / k!) sum_pi chi_lambda(pi) U_pi], and the
    induced outcome distribution [tr (P_lambda rho)].  The permutation
    test of {!Permutation_test} is the [lambda = (k)] marginal. *)

open Qdp_linalg

(** A partition of [k], as a weakly decreasing positive list. *)
type partition = int list

(** [partitions k] lists all partitions of [k] in lexicographic-
    descending order, starting with [[k]] (the trivial irrep). *)
val partitions : int -> partition list

(** [cycle_type pi] is the partition given by the cycle lengths of the
    permutation (an array as in {!Symmetric}). *)
val cycle_type : int array -> partition

(** [character lambda mu] is the irreducible character
    [chi_lambda (mu)] of [S_k] at cycle type [mu], by the
    Murnaghan-Nakayama rule.
    @raise Invalid_argument if [lambda] and [mu] partition different
    integers. *)
val character : partition -> partition -> int

(** [dimension lambda] is [chi_lambda] at the identity — the irrep
    dimension (hook length formula cross-checks it in the tests). *)
val dimension : partition -> int

(** [hook_length_dimension lambda] computes the dimension by the hook
    length formula, independently of {!character}. *)
val hook_length_dimension : partition -> int

(** [projector ~d lambda] is [P_lambda] on [(C^d)^{(x) k}] where
    [k = sum lambda]. *)
val projector : d:int -> partition -> Mat.t

(** [outcome_distribution ~d ~k rho] is the list
    [(lambda, tr (P_lambda rho))] over all partitions — the full weak
    Schur sampling statistics; the probabilities sum to 1 for any
    state. *)
val outcome_distribution : d:int -> k:int -> Mat.t -> (partition * float) list

(** [pp_partition] prints e.g. [(3,1,1)]. *)
val pp_partition : Format.formatter -> partition -> unit
