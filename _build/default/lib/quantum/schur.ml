open Qdp_linalg

type partition = int list

let rec partitions_bounded k maxp =
  if k = 0 then [ [] ]
  else begin
    let parts = ref [] in
    for p = min maxp k downto 1 do
      List.iter
        (fun rest -> parts := (p :: rest) :: !parts)
        (partitions_bounded (k - p) p)
    done;
    List.rev !parts
  end

let partitions k = partitions_bounded k k

let cycle_type pi =
  let n = Array.length pi in
  let seen = Array.make n false in
  let cycles = ref [] in
  for start = 0 to n - 1 do
    if not seen.(start) then begin
      let len = ref 0 and v = ref start in
      while not seen.(!v) do
        seen.(!v) <- true;
        incr len;
        v := pi.(!v)
      done;
      cycles := !len :: !cycles
    end
  done;
  List.sort (fun a b -> compare b a) !cycles

(* Beta numbers (first-column hook lengths): for lambda with l parts,
   B = { lambda_i + l - 1 - i }.  Removing a length-t rim hook
   corresponds to replacing b in B by b - t (when b - t >= 0 and not
   already in B), with sign (-1)^(#elements strictly between). *)
let beta_of lambda =
  let l = List.length lambda in
  List.mapi (fun i li -> li + l - 1 - i) lambda

let partition_of_beta beta =
  let sorted = List.sort (fun a b -> compare b a) beta in
  let l = List.length sorted in
  List.filteri (fun _ x -> x > 0)
    (List.mapi (fun i b -> b - (l - 1 - i)) sorted)

(* Murnaghan-Nakayama recursion. *)
let rec character lambda mu =
  let ksum = List.fold_left ( + ) 0 in
  if ksum lambda <> ksum mu then
    invalid_arg "Schur.character: partition sizes differ";
  match mu with
  | [] -> if lambda = [] then 1 else 0
  | t :: mu_rest ->
      let beta = beta_of lambda in
      let total = ref 0 in
      List.iter
        (fun b ->
          if b >= t && not (List.mem (b - t) beta) then begin
            let between =
              List.length (List.filter (fun b' -> b' > b - t && b' < b) beta)
            in
            let sign = if between mod 2 = 0 then 1 else -1 in
            let beta' = (b - t) :: List.filter (fun b' -> b' <> b) beta in
            let lambda' = partition_of_beta beta' in
            total := !total + (sign * character lambda' mu_rest)
          end)
        beta;
      !total

let dimension lambda =
  let k = List.fold_left ( + ) 0 lambda in
  character lambda (List.init k (fun _ -> 1))

let hook_length_dimension lambda =
  let arr = Array.of_list lambda in
  let rows = Array.length arr in
  let col_height j =
    let h = ref 0 in
    Array.iter (fun li -> if li > j then incr h) arr;
    !h
  in
  let k = List.fold_left ( + ) 0 lambda in
  let fact n =
    let acc = ref 1 in
    for i = 2 to n do
      acc := !acc * i
    done;
    !acc
  in
  let hooks = ref 1 in
  for i = 0 to rows - 1 do
    for j = 0 to arr.(i) - 1 do
      let hook = arr.(i) - j + col_height j - i - 1 in
      hooks := !hooks * hook
    done
  done;
  fact k / !hooks

let projector ~d lambda =
  let k = List.fold_left ( + ) 0 lambda in
  let dim_rep = dimension lambda in
  let perms = Symmetric.permutations k in
  let fact = List.length perms in
  let total_dim =
    int_of_float (Float.round (Float.pow (float_of_int d) (float_of_int k)))
  in
  let acc = ref (Mat.create total_dim total_dim) in
  List.iter
    (fun pi ->
      let chi = character lambda (cycle_type pi) in
      if chi <> 0 then
        acc :=
          Mat.add !acc
            (Mat.scale (Cx.re (float_of_int (dim_rep * chi))) (Symmetric.u_pi ~d pi)))
    perms;
  Mat.scale (Cx.re (1. /. float_of_int fact)) !acc

let outcome_distribution ~d ~k rho =
  List.map
    (fun lambda ->
      let p = projector ~d lambda in
      (lambda, (Mat.trace (Mat.mul p rho)).Complex.re))
    (partitions k)

let pp_partition fmt lambda =
  Format.fprintf fmt "(%s)" (String.concat "," (List.map string_of_int lambda))
