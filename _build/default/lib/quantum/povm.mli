(** General POVMs: the measurement formalism behind the verifiers'
    final tests (the [{M_{y,0}, M_{y,1}}] of the one-way EQ protocol
    and the Bob measurements of Section 2.2). *)

open Qdp_linalg

type t

(** [make elements] builds a POVM from PSD elements.
    @raise Invalid_argument if the elements do not sum to the identity
    (within [1e-8]) or are not PSD Hermitian. *)
val make : Mat.t list -> t

(** [elements p] lists the effects. *)
val elements : t -> Mat.t list

(** [outcomes p] is the number of effects. *)
val outcomes : t -> int

(** [binary ~accept] is the two-outcome POVM
    [{accept, I - accept}] (outcome 0 accepts).
    @raise Invalid_argument unless [0 <= accept <= I]. *)
val binary : accept:Mat.t -> t

(** [projective basis] is the computational-style projective
    measurement onto the given orthonormal vectors. *)
val projective : Vec.t array -> t

(** [probabilities p rho] is the outcome distribution on a density
    matrix (clipped to non-negative and renormalized against rounding). *)
val probabilities : t -> Mat.t -> float array

(** [sample st p rho] draws an outcome and returns it with the
    (Lüders) post-measurement state
    [sqrt(M) rho sqrt(M) / tr(M rho)]. *)
val sample : Random.State.t -> t -> Mat.t -> int * Mat.t

(** [naimark p] is the Naimark dilation: an isometry
    [V : C^d -> C^d (x) C^m] ([m] the number of outcomes, environment
    last) such that measuring the environment projectively reproduces
    the POVM statistics: [p_i(rho) = tr((I (x) |i><i|) V rho V^+)].
    Built from the square roots of the effects. *)
val naimark : t -> Mat.t
