open Qdp_linalg

let permutations k =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: ys as l ->
        (x :: l) :: List.map (fun r -> y :: r) (insert_everywhere x ys)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: xs -> List.concat_map (insert_everywhere x) (perms xs)
  in
  List.map Array.of_list (perms (List.init k (fun i -> i)))

let compose p q = Array.init (Array.length p) (fun i -> p.(q.(i)))

let inverse p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun i pi -> inv.(pi) <- i) p;
  inv

(* Decompose a base-d index into k digits (most significant first),
   permute the digit positions, and reassemble. *)
let permute_index ~d ~k pi idx =
  let digits = Array.make k 0 in
  let rest = ref idx in
  for pos = k - 1 downto 0 do
    digits.(pos) <- !rest mod d;
    rest := !rest / d
  done;
  let inv = inverse pi in
  let out = ref 0 in
  for pos = 0 to k - 1 do
    out := (!out * d) + digits.(inv.(pos))
  done;
  !out

let u_pi ~d pi =
  let k = Array.length pi in
  let dim = int_of_float (Float.pow (float_of_int d) (float_of_int k)) in
  let m = Mat.create dim dim in
  for j = 0 to dim - 1 do
    Mat.set m (permute_index ~d ~k pi j) j Cx.one
  done;
  m

let projector ~d ~k =
  let perms = permutations k in
  let fact = List.length perms in
  let dim = int_of_float (Float.pow (float_of_int d) (float_of_int k)) in
  let m = Mat.create dim dim in
  List.iter
    (fun pi ->
      for j = 0 to dim - 1 do
        let i = permute_index ~d ~k pi j in
        Mat.set m i j (Cx.add (Mat.get m i j) (Cx.re (1. /. float_of_int fact)))
      done)
    perms;
  m

let subspace_dimension ~d ~k =
  (* binom (d + k - 1) k with exact integer arithmetic *)
  let n = d + k - 1 in
  let num = ref 1 and den = ref 1 in
  for i = 1 to k do
    num := !num * (n - k + i);
    den := !den * i
  done;
  !num / !den

let apply_projector ~d ~k v =
  let perms = permutations k in
  let fact = float_of_int (List.length perms) in
  let dim = Vec.dim v in
  let out = Vec.create dim in
  List.iter
    (fun pi ->
      for j = 0 to dim - 1 do
        let i = permute_index ~d ~k pi j in
        Vec.set out i (Cx.add (Vec.get out i) (Vec.get v j))
      done)
    perms;
  Vec.scale (Cx.re (1. /. fact)) out
