(** Density operators on tensor products of finite systems.

    A density value carries the list of factor dimensions alongside the
    matrix, which makes partial traces (the [tr_i] / [tr_{bar i}] of
    Section 2.1 of the paper) self-describing. *)

open Qdp_linalg

type t

(** [make ~dims m] wraps a matrix on the tensor product of systems with
    the given dimensions.
    @raise Invalid_argument unless [Mat.rows m = Mat.cols m = product dims]. *)
val make : dims:int array -> Mat.t -> t

(** [of_pure ~dims v] is [|v><v|]. *)
val of_pure : dims:int array -> Vec.t -> t

(** [dims rho] is the factor-dimension list. *)
val dims : t -> int array

(** [mat rho] is the underlying matrix. *)
val mat : t -> Mat.t

(** [dim rho] is the total dimension. *)
val dim : t -> int

(** [maximally_mixed ~dims] is [I / dim]. *)
val maximally_mixed : dims:int array -> t

(** [tensor a b] is the product state [a (x) b]. *)
val tensor : t -> t -> t

(** [partial_trace rho ~keep] traces out every factor whose index is
    not listed in [keep] (indices into [dims rho], kept in their
    original order).
    @raise Invalid_argument on out-of-range or duplicate indices. *)
val partial_trace : t -> keep:int list -> t

(** [trace rho] is the (real part of the) trace. *)
val trace : t -> float

(** [is_density ?eps rho] checks Hermiticity, unit trace and positive
    semidefiniteness of the matrix. *)
val is_density : ?eps:float -> t -> bool

(** [expectation rho m] is [Re (tr (m rho))] — the acceptance
    probability of the POVM element [m]. *)
val expectation : t -> Mat.t -> float

(** [mix weighted] is the convex combination [sum_i p_i rho_i].
    @raise Invalid_argument on an empty list or mismatched dims. *)
val mix : (float * t) list -> t
