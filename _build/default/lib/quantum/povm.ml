open Qdp_linalg

type t = { effects : Mat.t list; dim : int }

let psd ?(eps = 1e-8) m =
  Mat.is_hermitian ~eps m
  && Array.for_all (fun l -> l >= -.eps) (Eig.eigenvalues_hermitian m)

let make effects =
  match effects with
  | [] -> invalid_arg "Povm.make: empty"
  | first :: _ ->
      let dim = Mat.rows first in
      List.iter
        (fun m ->
          if Mat.rows m <> dim || Mat.cols m <> dim then
            invalid_arg "Povm.make: dimension mismatch";
          if not (psd m) then invalid_arg "Povm.make: element not PSD")
        effects;
      let total =
        List.fold_left Mat.add (Mat.create dim dim) effects
      in
      if not (Mat.equal ~eps:1e-8 total (Mat.identity dim)) then
        invalid_arg "Povm.make: elements do not sum to the identity";
      { effects; dim }

let elements p = p.effects
let outcomes p = List.length p.effects

let binary ~accept =
  let d = Mat.rows accept in
  make [ accept; Mat.sub (Mat.identity d) accept ]

let projective basis =
  make (Array.to_list (Array.map Mat.of_vec basis))

let probabilities p rho =
  let raw =
    List.map
      (fun m -> Float.max 0. (Mat.trace (Mat.mul m rho)).Complex.re)
      p.effects
  in
  let total = List.fold_left ( +. ) 0. raw in
  let norm = if total > 0. then total else 1. in
  Array.of_list (List.map (fun x -> x /. norm) raw)

let sample st p rho =
  let probs = probabilities p rho in
  let x = Random.State.float st 1. in
  let outcome = ref (Array.length probs - 1) in
  let acc = ref 0. in
  (try
     Array.iteri
       (fun i pr ->
         acc := !acc +. pr;
         if !acc >= x then begin
           outcome := i;
           raise Exit
         end)
       probs
   with Exit -> ());
  let m = List.nth p.effects !outcome in
  let root = Eig.sqrt_psd m in
  let post = Mat.mul (Mat.mul root rho) root in
  let tr = (Mat.trace post).Complex.re in
  let post =
    if tr > 1e-15 then Mat.scale (Cx.re (1. /. tr)) post else post
  in
  (!outcome, post)

let naimark p =
  let m = outcomes p in
  let d = p.dim in
  let roots = List.map Eig.sqrt_psd p.effects in
  (* V = sum_i sqrt(M_i) (x) |i>_E : rows indexed by (out, env) *)
  let v = Mat.create (d * m) d in
  List.iteri
    (fun i root ->
      for r = 0 to d - 1 do
        for c = 0 to d - 1 do
          Mat.set v ((r * m) + i) c (Mat.get root r c)
        done
      done)
    roots;
  v
