(** Distance measures between quantum states (Section 2.1 of the
    paper): trace distance, fidelity, and the Fuchs–van de Graaf
    relations that the soundness analyses rely on. *)

open Qdp_linalg

(** [trace_norm m] is [tr sqrt (m^dagger m)] — the sum of absolute
    eigenvalues for Hermitian [m]. *)
val trace_norm : Mat.t -> float

(** [trace_distance rho sigma] is [D(rho, sigma) = ||rho - sigma||_1 / 2].
    Both arguments must be same-dimension Hermitian matrices. *)
val trace_distance : Mat.t -> Mat.t -> float

(** [fidelity rho sigma] is [F(rho, sigma) = tr sqrt (sqrt rho sigma sqrt rho)]. *)
val fidelity : Mat.t -> Mat.t -> float

(** [fidelity_pure a b] is [|<a|b>|] — the fidelity of two pure
    states. *)
val fidelity_pure : Vec.t -> Vec.t -> float

(** [trace_distance_pure a b] is [sqrt (1 - |<a|b>|^2)]. *)
val trace_distance_pure : Vec.t -> Vec.t -> float

(** [fuchs_van_de_graaf rho sigma] returns
    [(1 - F, D, sqrt (1 - F^2))]; Fact 1 of the paper states the middle
    value always lies between the other two. *)
val fuchs_van_de_graaf : Mat.t -> Mat.t -> float * float * float
