(** The permutation test (Algorithm 2 of the paper).

    The generalization of the SWAP test to [k] systems: accept with
    probability [tr (Pi_sym rho)] where [Pi_sym] projects onto the
    symmetric subspace of [(C^d)^{(x) k}] (the trivial-irrep outcome of
    weak Schur sampling).  Lemma 15: on [|phi>^{(x) k}] it accepts with
    probability 1.  Lemma 16: acceptance [1 - eps] forces every pair of
    reduced states within trace distance [2 sqrt eps + eps]. *)

open Qdp_linalg

(** [accept_prob_pure ~d ~k psi] is [||Pi_sym psi||^2] for a pure state
    on [(C^d)^{(x) k}].
    @raise Invalid_argument unless [Vec.dim psi = d^k]. *)
val accept_prob_pure : d:int -> k:int -> Vec.t -> float

(** [accept_prob_density ~d ~k rho] is [tr (Pi_sym rho)]. *)
val accept_prob_density : d:int -> k:int -> Mat.t -> float

(** [accept_prob_product states] is the acceptance on the product of
    the listed (unit) states, computed via the permanent-style average
    [1/k! sum_pi prod_i <psi_i | psi_{pi i}>] — no [d^k]-dimensional
    object is materialized, so this scales to large [d]. *)
val accept_prob_product : Vec.t list -> float

(** [post_accept_pure ~d ~k psi] is the renormalized projection of
    [psi] onto the symmetric subspace. *)
val post_accept_pure : d:int -> k:int -> Vec.t -> Vec.t

(** [pairwise_distance_bound eps] is [2 sqrt eps + eps] — the Lemma 16
    bound on the trace distance of any two reduced states when the test
    rejects with probability [eps]. *)
val pairwise_distance_bound : float -> float
