lib/quantum/povm.mli: Mat Qdp_linalg Random Vec
