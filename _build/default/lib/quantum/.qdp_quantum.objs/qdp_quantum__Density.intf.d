lib/quantum/density.mli: Mat Qdp_linalg Vec
