lib/quantum/gates.ml: Cx Float Mat Qdp_linalg
