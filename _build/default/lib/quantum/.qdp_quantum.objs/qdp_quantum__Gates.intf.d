lib/quantum/gates.mli: Mat Qdp_linalg
