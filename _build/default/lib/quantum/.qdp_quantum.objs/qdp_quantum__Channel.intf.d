lib/quantum/channel.mli: Mat Qdp_linalg
