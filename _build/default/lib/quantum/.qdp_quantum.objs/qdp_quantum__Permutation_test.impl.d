lib/quantum/permutation_test.ml: Array Complex Cx Float List Mat Qdp_linalg Symmetric Vec
