lib/quantum/symmetric.ml: Array Cx Float List Mat Qdp_linalg Vec
