lib/quantum/schur.mli: Format Mat Qdp_linalg
