lib/quantum/density.ml: Array Complex Cx Eig Float List Mat Qdp_linalg
