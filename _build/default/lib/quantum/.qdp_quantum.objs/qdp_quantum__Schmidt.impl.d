lib/quantum/schmidt.ml: Array Cx Eig Float Mat Qdp_linalg Vec
