lib/quantum/channel.ml: Cx Float List Mat Qdp_linalg
