lib/quantum/pure.mli: Cx Mat Qdp_linalg Random Vec
