lib/quantum/povm.ml: Array Complex Cx Eig Float List Mat Qdp_linalg Random
