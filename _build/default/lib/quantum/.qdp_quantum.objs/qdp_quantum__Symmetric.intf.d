lib/quantum/symmetric.mli: Mat Qdp_linalg Vec
