lib/quantum/pure.ml: Array Complex Cx Hashtbl List Mat Printf Qdp_linalg Random String Symmetric Vec
