lib/quantum/schmidt.mli: Qdp_linalg Vec
