lib/quantum/swap_test.mli: Mat Qdp_linalg Vec
