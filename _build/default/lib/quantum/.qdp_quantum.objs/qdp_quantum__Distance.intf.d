lib/quantum/distance.mli: Mat Qdp_linalg Vec
