lib/quantum/schur.ml: Array Complex Cx Float Format List Mat Qdp_linalg String Symmetric
