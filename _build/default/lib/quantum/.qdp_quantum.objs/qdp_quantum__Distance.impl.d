lib/quantum/distance.ml: Array Cx Eig Float Mat Qdp_linalg Vec
