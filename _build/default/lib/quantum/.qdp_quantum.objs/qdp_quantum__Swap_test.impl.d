lib/quantum/swap_test.ml: Complex Cx Float Gates Mat Qdp_linalg Vec
