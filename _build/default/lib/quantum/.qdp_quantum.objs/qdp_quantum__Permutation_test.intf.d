lib/quantum/permutation_test.mli: Mat Qdp_linalg Vec
