open Qdp_linalg

let s = 1. /. Float.sqrt 2.

let hadamard =
  Mat.init 2 2 (fun i j -> Cx.re (if i = 1 && j = 1 then -.s else s))

let pauli_x = Mat.init 2 2 (fun i j -> if i <> j then Cx.one else Cx.zero)

let pauli_y =
  Mat.init 2 2 (fun i j ->
      if i = 0 && j = 1 then Cx.neg Cx.i
      else if i = 1 && j = 0 then Cx.i
      else Cx.zero)

let pauli_z =
  Mat.init 2 2 (fun i j ->
      if i <> j then Cx.zero else if i = 0 then Cx.one else Cx.re (-1.))

let phase theta =
  Mat.init 2 2 (fun i j ->
      if i <> j then Cx.zero else if i = 0 then Cx.one else Cx.exp_i theta)

let rotation_y theta =
  let c = Float.cos (theta /. 2.) and sn = Float.sin (theta /. 2.) in
  Mat.init 2 2 (fun i j ->
      Cx.re
        (match (i, j) with
        | 0, 0 -> c
        | 0, 1 -> -.sn
        | 1, 0 -> sn
        | _ -> c))

let controlled u =
  let d = Mat.rows u in
  Mat.init (2 * d) (2 * d) (fun i j ->
      if i < d && j < d then if i = j then Cx.one else Cx.zero
      else if i >= d && j >= d then Mat.get u (i - d) (j - d)
      else Cx.zero)

let cnot = controlled pauli_x
let cswap d = controlled (Mat.swap_gate d)
