(** Bit vectors over GF(2), packed into 62-bit words.

    These represent the inputs [x in {0,1}^n] of the distributed
    problems and the codewords of the fingerprinting codes. *)

type t

(** [zero n] is the all-zero vector of length [n]. *)
val zero : int -> t

(** [length v] is the number of bits. *)
val length : t -> int

(** [get v i] / [set v i b] access bit [i] ([0 <= i < length v]). *)
val get : t -> int -> bool

val set : t -> int -> bool -> unit

(** [copy v] is a fresh copy. *)
val copy : t -> t

(** [of_string s] parses a string of ['0']/['1'] characters.
    @raise Invalid_argument on other characters. *)
val of_string : string -> t

(** [to_string v] renders as ['0']/['1'] characters, index 0 first. *)
val to_string : t -> string

(** [of_int ~width k] is the big-endian binary expansion of [k] on
    [width] bits (bit 0 is the most significant), matching the paper's
    integer encoding for the greater-than problem. *)
val of_int : width:int -> int -> t

(** [to_int v] reads the big-endian value (lengths up to 62 bits). *)
val to_int : t -> int

(** [xor a b] is the bitwise sum.
    @raise Invalid_argument on length mismatch. *)
val xor : t -> t -> t

(** [dot a b] is the GF(2) inner product (parity of the AND). *)
val dot : t -> t -> bool

(** [weight v] is the Hamming weight. *)
val weight : t -> int

(** [hamming_distance a b] is [weight (xor a b)]. *)
val hamming_distance : t -> t -> int

(** [equal a b] is bitwise equality. *)
val equal : t -> t -> bool

(** [prefix v k] is the first [k] bits [v_0 .. v_{k-1}] (the [x\[i\]]
    notation of Section 5.1). *)
val prefix : t -> int -> t

(** [random st n] samples a uniform vector of length [n]. *)
val random : Random.State.t -> int -> t

(** [random_weight st n w] samples a uniform vector of length [n] and
    Hamming weight exactly [w]. *)
val random_weight : Random.State.t -> int -> int -> t

(** [iteri f v] applies [f i b] to every bit. *)
val iteri : (int -> bool -> unit) -> t -> unit

(** [compare_big_endian a b] orders equal-length vectors as big-endian
    integers (the order used by GT). *)
val compare_big_endian : t -> t -> int
