(* A code is stored as its generator rows: row i is the parity mask of
   codeword bit i, so encoding is m inner products over packed words. *)
type t = { n : int; m : int; rows : Gf2.t array }

let random ~seed ~n ~m =
  if n <= 0 || m < n then invalid_arg "Linear_code.random: need m >= n >= 1";
  let st = Random.State.make [| seed; n; m |] in
  (* Force the first n rows to the identity so the code is injective. *)
  let rows =
    Array.init m (fun i ->
        if i < n then (
          let row = Gf2.zero n in
          Gf2.set row i true;
          row)
        else Gf2.random st n)
  in
  { n; m; rows }

let identity n =
  {
    n;
    m = n;
    rows =
      Array.init n (fun i ->
          let row = Gf2.zero n in
          Gf2.set row i true;
          row);
  }

let repetition ~n ~times =
  if times < 1 then invalid_arg "Linear_code.repetition";
  {
    n;
    m = n * times;
    rows =
      Array.init (n * times) (fun i ->
          let row = Gf2.zero n in
          Gf2.set row (i / times) true;
          row);
  }

let message_length c = c.n
let block_length c = c.m

let encode c x =
  if Gf2.length x <> c.n then invalid_arg "Linear_code.encode: length";
  let out = Gf2.zero c.m in
  Array.iteri (fun i row -> if Gf2.dot row x then Gf2.set out i true) c.rows;
  out

let min_distance_exhaustive c =
  if c.n > 20 then invalid_arg "Linear_code.min_distance_exhaustive: n too large";
  let best = ref c.m in
  for k = 1 to (1 lsl c.n) - 1 do
    let x = Gf2.of_int ~width:c.n k in
    let w = Gf2.weight (encode c x) in
    if w < !best then best := w
  done;
  !best

let min_distance_sampled st ~trials c =
  let best = ref c.m in
  for _ = 1 to trials do
    let x = Gf2.random st c.n in
    if Gf2.weight x > 0 then begin
      let w = Gf2.weight (encode c x) in
      if w < !best then best := w
    end
  done;
  !best

let relative_distance_of d c = float_of_int d /. float_of_int c.m
