let word_bits = 62

type t = { len : int; words : int array }

let nwords len = (len + word_bits - 1) / word_bits
let zero len = { len; words = Array.make (max 1 (nwords len)) 0 }
let length v = v.len

let check_index v i =
  if i < 0 || i >= v.len then invalid_arg "Gf2: index out of range"

let get v i =
  check_index v i;
  (v.words.(i / word_bits) lsr (i mod word_bits)) land 1 = 1

let set v i b =
  check_index v i;
  let w = i / word_bits and o = i mod word_bits in
  if b then v.words.(w) <- v.words.(w) lor (1 lsl o)
  else v.words.(w) <- v.words.(w) land lnot (1 lsl o)

let copy v = { v with words = Array.copy v.words }

let of_string s =
  let v = zero (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set v i true
      | _ -> invalid_arg "Gf2.of_string: expected 0/1")
    s;
  v

let to_string v = String.init v.len (fun i -> if get v i then '1' else '0')

let of_int ~width k =
  let v = zero width in
  for i = 0 to width - 1 do
    if (k lsr (width - 1 - i)) land 1 = 1 then set v i true
  done;
  v

let to_int v =
  if v.len > 62 then invalid_arg "Gf2.to_int: too wide";
  let acc = ref 0 in
  for i = 0 to v.len - 1 do
    acc := (!acc lsl 1) lor (if get v i then 1 else 0)
  done;
  !acc

let xor a b =
  if a.len <> b.len then invalid_arg "Gf2.xor: length mismatch";
  { len = a.len; words = Array.mapi (fun i w -> w lxor b.words.(i)) a.words }

(* Kernighan's trick: one iteration per set bit. *)
let popcount_word w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let weight v = Array.fold_left (fun acc w -> acc + popcount_word w) 0 v.words

let dot a b =
  if a.len <> b.len then invalid_arg "Gf2.dot: length mismatch";
  let parity = ref 0 in
  Array.iteri
    (fun i w -> parity := !parity lxor (popcount_word (w land b.words.(i)) land 1))
    a.words;
  !parity = 1

let hamming_distance a b = weight (xor a b)

let equal a b =
  a.len = b.len && Array.for_all2 (fun x y -> x = y) a.words b.words

let prefix v k =
  if k < 0 || k > v.len then invalid_arg "Gf2.prefix: bad length";
  let out = zero k in
  for i = 0 to k - 1 do
    if get v i then set out i true
  done;
  out

let random st n =
  let v = zero n in
  for i = 0 to n - 1 do
    if Random.State.bool st then set v i true
  done;
  v

let random_weight st n w =
  if w < 0 || w > n then invalid_arg "Gf2.random_weight";
  let v = zero n in
  (* reservoir-style: choose w distinct positions *)
  let chosen = Array.init n (fun i -> i) in
  for i = 0 to n - 2 do
    let j = i + Random.State.int st (n - i) in
    let tmp = chosen.(i) in
    chosen.(i) <- chosen.(j);
    chosen.(j) <- tmp
  done;
  for k = 0 to w - 1 do
    set v chosen.(k) true
  done;
  v

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (get v i)
  done

let compare_big_endian a b =
  if a.len <> b.len then invalid_arg "Gf2.compare_big_endian: length mismatch";
  let rec go i =
    if i >= a.len then 0
    else
      match (get a i, get b i) with
      | true, false -> 1
      | false, true -> -1
      | _ -> go (i + 1)
  in
  go 0
