(** Binary linear codes for quantum fingerprinting.

    The BCWdW01 fingerprint of [x in {0,1}^n] is built from a code
    [E : {0,1}^n -> {0,1}^m] with constant rate and constant relative
    distance: two distinct inputs then have fingerprint overlap
    [1 - d_H(E x, E y) / m <= 1 - delta].  A uniformly random generator
    matrix achieves relative distance close to 1/2 - epsilon with high
    probability at rate below the GV bound; the constructor below is
    seeded so codes are reproducible. *)

type t

(** [random ~seed ~n ~m] samples an [m x n] generator matrix uniformly
    ([m >= n]; the usual choice is [m = c * n] for a constant [c]). *)
val random : seed:int -> n:int -> m:int -> t

(** [identity n] is the trivial code [E x = x] — distance 1, used only
    by toy exact-simulation instances. *)
val identity : int -> t

(** [repetition ~n ~times] repeats every bit [times] times: distance
    [times], length [n * times]. *)
val repetition : n:int -> times:int -> t

(** [message_length c] is [n]; [block_length c] is [m]. *)
val message_length : t -> int

val block_length : t -> int

(** [encode c x] is the codeword [E x].
    @raise Invalid_argument if [Gf2.length x <> message_length c]. *)
val encode : t -> Gf2.t -> Gf2.t

(** [min_distance_exhaustive c] enumerates all nonzero messages —
    exponential in [n], intended for [n <= 16]. *)
val min_distance_exhaustive : t -> int

(** [min_distance_sampled st ~trials c] is an upper-bound estimate of
    the minimum distance from random nonzero messages. *)
val min_distance_sampled : Random.State.t -> trials:int -> t -> int

(** [relative_distance_of d c] is [float d /. float (block_length c)]. *)
val relative_distance_of : int -> t -> float
