lib/codes/gf2.mli: Random
