lib/codes/gf2.ml: Array Random String
