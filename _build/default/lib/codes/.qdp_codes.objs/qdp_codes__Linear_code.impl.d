lib/codes/linear_code.ml: Array Gf2 Random
