lib/codes/linear_code.mli: Gf2 Random
