lib/fingerprint/fingerprint.ml: Cx Float Gf2 Linear_code Qdp_codes Qdp_linalg Vec
