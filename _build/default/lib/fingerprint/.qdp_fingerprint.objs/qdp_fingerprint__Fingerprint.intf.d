lib/fingerprint/fingerprint.mli: Gf2 Linear_code Qdp_codes Qdp_linalg Vec
