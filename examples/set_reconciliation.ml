(* Distributed set reconciliation audit via Set Equality (the
   Naor-Parter-Yogev problem; Section 1.4's GMN23a application).

   Two mirrors at the ends of a 6-hop path each hold a set of k
   64-bit content digests.  An untrusted coordinator certifies that
   the mirrors carry the same set — order-independent — using set
   fingerprints: superpositions of element fingerprints, costing the
   same registers as a single-string certificate.

   Run with: dune exec examples/set_reconciliation.exe *)

open Qdp_codes
open Qdp_core

let () =
  let rng = Random.State.make [| 90210 |] in
  let n = 64 and k = 5 and r = 6 in
  let params = Set_eq.make ~seed:11 ~n ~k ~r () in
  Printf.printf
    "set reconciliation: %d digests of %d bits, %d-hop path, amplify=%d\n\n" k n
    r params.Set_eq.amplify;

  let mirror_a = Array.init k (fun _ -> Gf2.random rng n) in
  (* same set, different order *)
  let mirror_b = Array.init k (fun i -> Gf2.copy mirror_a.((i + 2) mod k)) in
  Printf.printf "identical sets (different order): overlap %.6f\n"
    (Set_eq.set_overlap params mirror_a mirror_b);
  Printf.printf "  honest certificate accepted: %.6f\n\n"
    (Set_eq.accept params mirror_a mirror_b Strategy.All_left);

  (* one digest replaced *)
  let drifted = Array.map Gf2.copy mirror_a in
  drifted.(3) <- Gf2.random rng n;
  Printf.printf "one replaced digest: overlap %.6f\n"
    (Set_eq.set_overlap params mirror_a drifted);
  let single, name = Set_eq.best_attack_accept params mirror_a drifted in
  Printf.printf "  best attack (%s): single round %.6f\n" name single;
  Printf.printf "  amplified: %.3e  (drift exposed)\n\n"
    (Sim.repeat_accept params.Set_eq.repetitions single);

  (* completely different sets *)
  let other = Array.init k (fun _ -> Gf2.random rng n) in
  Printf.printf "disjoint sets: overlap %.6f\n"
    (Set_eq.set_overlap params mirror_a other);
  let single', name' = Set_eq.best_attack_accept params mirror_a other in
  Printf.printf "  best attack (%s): single round %.6f, amplified %.3e\n\n" name'
    single'
    (Sim.repeat_accept params.Set_eq.repetitions single');

  Format.printf "certificate cost: %a@." Report.pp_costs (Set_eq.costs params);
  Printf.printf
    "(a classical certificate would ship all %d digests = %d bits per node)\n"
    k (k * n)
