(* Quickstart: verify equality of two 64-bit strings held at the two
   ends of a 6-hop path, with an untrusted prover supplying quantum
   fingerprints to the intermediate nodes (Algorithm 3/4 of the paper).

   Run with: dune exec examples/quickstart.exe *)

open Qdp_codes
open Qdp_core

let () =
  let n = 64 and r = 6 in
  let rng = Random.State.make [| 2024 |] in
  let x = Gf2.random rng n in
  let y = Gf2.random rng n in

  (* Protocol parameters: the paper's repetition count k = O(r^2)
     drives the soundness error below 1/3. *)
  let params = Eq_path.make ~seed:7 ~n ~r () in
  Printf.printf "EQ on a path: n = %d bits, r = %d hops, k = %d repetitions\n"
    n r params.Eq_path.repetitions;
  let costs = Eq_path.costs params in
  Format.printf "costs: %a@." Report.pp_costs costs;
  Printf.printf "(a classical dMA protocol needs >= %d bits total -- Corollary 25)\n\n"
    ((r - 1) / 2 * (n - 1) / 2);

  (* Case 1: the strings are equal; the honest prover convinces
     everyone with certainty (perfect completeness). *)
  let p_equal = Eq_path.accept params x (Gf2.copy x) Strategy.Honest in
  Printf.printf "x = y, honest prover:      Pr[all accept] = %.6f\n" p_equal;

  (* Case 2: the strings differ; the best cheating prover we know is
     the geodesic interpolation, and repetition crushes it. *)
  let single, name = Eq_path.best_attack_accept params x y in
  Printf.printf "x <> y, best attack (%s):\n" name;
  Printf.printf "  single round:            Pr[all accept] = %.6f\n" single;
  Printf.printf "  paper bound (Lemma 17):  %.6f\n"
    (Eq_path.soundness_bound_single ~r);
  Printf.printf "  after k repetitions:     Pr[all accept] = %.3e\n\n"
    (Sim.repeat_accept params.Eq_path.repetitions single);

  (* The same protocol as a real message-passing execution on the
     network runtime: fingerprints travel as messages, SWAP tests are
     sampled, verdicts come back per node. *)
  let rt = { Runtime_eq.n; r; seed = 7; repetitions = 1 } in
  let st = Random.State.make [| 99 |] in
  let freq_equal =
    Runtime_eq.estimate_acceptance st ~trials:2000 rt x (Gf2.copy x) Strategy.All_left
  in
  let freq_diff =
    Runtime_eq.estimate_acceptance st ~trials:2000 rt x y Strategy.Geodesic
  in
  Printf.printf "message-passing execution (2000 sampled runs each):\n";
  Printf.printf "  x = y honest:  accepted %.3f of runs\n" freq_equal;
  Printf.printf "  x <> y attack: accepted %.3f of runs (closed form %.3f)\n"
    freq_diff
    (Eq_path.single_round_accept params x y Strategy.Geodesic)
