.PHONY: all build test check tables bench perf profile perf-diff model faults turns dist chaos serve load fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: what CI runs and what every PR must keep green.
check: build test

tables:
	dune exec bin/tables.exe all

bench:
	dune exec bench/main.exe

# Sequential-vs-parallel wall-clock per workload group; honors
# QDP_JOBS for the parallel column.  Writes BENCH_perf.json (and an
# empty-shell BENCH_calib.json; use `make profile` to populate it).
perf:
	dune exec bench/main.exe -- perf

# perf plus attribution: per-group flat profile / tree / domain
# busy-idle split on stderr, kernel calibration samples in
# BENCH_calib.json.
profile:
	dune exec bench/main.exe -- perf --profile

# Noise-aware gate between two perf artifacts, e.g.
# `make perf-diff OLD=BENCH_perf.base.json NEW=BENCH_perf.json`.
# Exits 1 on any regression over the threshold.
perf-diff:
	dune exec bin/qdp.exe -- perf diff $(OLD) $(NEW)

# Self-benchmark the dense kernels, fit the per-kernel seq/par cost
# model and write BENCH_model.json.  The fits drive dispatch when
# installed at startup (--model auto / QDP_MODEL); outputs are
# byte-identical either way.
model:
	dune exec bin/qdp.exe -- model --out BENCH_model.json

# Graceful-degradation sweep: writes BENCH_faults.json, exits non-zero
# on any soundness or monotonicity violation.
faults:
	dune exec bin/qdp.exe -- faults --seed 42

# Turn-reduction experiment on the interactive equality family:
# writes BENCH_turns.json (deterministic for a fixed seed at any
# QDP_JOBS value).
turns:
	dune exec bin/qdp.exe -- turns --seed 42

# Seq vs domains vs processes comparison on a fixed seeded workload:
# writes BENCH_dist.json (digests + chaos event accounting only, so
# it is byte-stable across reruns), wall-clock to stderr.
dist:
	dune exec bench/main.exe -- dist

# Chaos self-check: run the distributed workload under injected
# worker crashes/hangs/corruption and verify the result digest is
# byte-identical to the sequential baseline.  Exits 1 on divergence.
chaos:
	dune exec bin/qdp.exe -- dist chaos --trials 120

# Always-on verification daemon on a Unix-domain socket
# (/tmp/qdp-serve.sock); SIGTERM/Ctrl-C drains gracefully.
serve:
	dune exec bin/qdp.exe -- serve

# Paced load against a running daemon (`make serve` in another
# terminal): writes BENCH_serve.json and prints the verdict digest,
# which must equal `qdp load --direct`'s for the same seed.
load:
	dune exec bin/qdp.exe -- load --out BENCH_serve.json

# Requires the ocamlformat binary (not vendored); version pinned in
# .ocamlformat so results are reproducible wherever it is installed.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
