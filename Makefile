.PHONY: all build test check tables bench perf faults fmt clean

all: build

build:
	dune build

test:
	dune runtest

# Tier-1 gate: what CI runs and what every PR must keep green.
check: build test

tables:
	dune exec bin/tables.exe all

bench:
	dune exec bench/main.exe

# Sequential-vs-parallel wall-clock per workload group; honors
# QDP_JOBS for the parallel column.  Writes BENCH_perf.json.
perf:
	dune exec bench/main.exe -- perf

# Graceful-degradation sweep: writes BENCH_faults.json, exits non-zero
# on any soundness or monotonicity violation.
faults:
	dune exec bin/qdp.exe -- faults --seed 42

# Requires the ocamlformat binary (not vendored); version pinned in
# .ocamlformat so results are reproducible wherever it is installed.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
