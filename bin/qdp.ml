(* qdp — command-line driver for the dQMA protocols.

   Every protocol subcommand is generated from the registry
   (Qdp_core.Registry): one entry per protocol, no per-protocol
   dispatch here.

   Examples:
     qdp list
     qdp eq    -n 64 -r 8 -x 1010... -y 1010...
     qdp gt    -n 32 -r 6 --seed 3
     qdp eqt   -n 32 --topology star -t 5
     qdp xval  --protocol eq --trials 500
     qdp check *)

open Cmdliner
open Qdp_codes
open Qdp_core

let () = Protocols.init ()

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.Src.set_level Qdp_log.src (if verbose then Some Logs.Debug else None)

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace the attack searches.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable observability and write a JSON metrics snapshot (counters, \
           gauges, histograms) to $(docv) on exit.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable observability and write the span trace (one JSON object per \
           line) to $(docv) on exit.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel regions (default: $(b,QDP_JOBS) \
           or the machine's recommended domain count; 1 = fully sequential). \
           Results are byte-identical at every value.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable the scoped profiler and kernel calibration sampling; on \
           exit print the flat profile, the caller->callee attribution tree \
           and the per-domain busy/idle split to stderr.")

let calib_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "calib" ] ~docv:"FILE"
        ~doc:
          "Enable calibration sampling (implied by $(b,--profile)) and write \
           the per-kernel (MACs, seconds, words) samples to $(docv) on exit.")

let progress_arg =
  Arg.(
    value
    & opt ~vopt:(Some 1.) (some float) None
    & info [ "progress" ] ~docv:"SECONDS"
        ~doc:
          "Emit live progress heartbeats for long grids to stderr, at most \
           one per $(docv) (default 1; 0 = every tick).")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker processes for the sharded grids (default: $(b,QDP_WORKERS) \
           or 0 = in-process).  The coordinator supervises them — crash, \
           hang and corruption recovery with retry/backoff — and results \
           are byte-identical to $(b,--workers 0) at every value.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Deadline for one protocol execution and for one worker shard \
           (default: $(b,QDP_TIMEOUT) or 300 for executions, \
           $(b,QDP_DIST_TIMEOUT) or 30 for shards; <= 0 disables).  An \
           overrun execution rejects (timeout-as-reject); an overrun shard \
           is killed and reassigned.")

let chaos_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "chaos" ] ~docv:"P"
        ~doc:
          "Chaos injection probability (default: $(b,QDP_CHAOS) or 0).  \
           Each worker shard attempt crashes, hangs or corrupts its reply \
           with probability $(docv), at points seeded by \
           $(b,QDP_CHAOS_SEED) — results must stay byte-identical.")

let model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "model" ] ~docv:"MODE"
        ~doc:
          "Kernel cost model driving seq/par dispatch (default: \
           $(b,QDP_MODEL) or $(b,off)).  $(b,off) = static MAC cutoffs; \
           $(b,auto) = run the startup self-benchmark and install its fits; \
           any other value = load a recorded BENCH_calib.json history from \
           that path.  The model only picks which bit-identical path runs, \
           so results never depend on it.")

let progress_json_arg =
  Arg.(
    value & flag
    & info [ "progress-json" ]
        ~doc:
          "Format progress heartbeats as single-line JSON instead of human \
           text.")

(* Every subcommand shares the observability flags; bundle them so the
   terms stay readable. *)
type obs_opts = {
  jobs : int option;
  workers : int option;
  timeout : float option;
  chaos : float option;
  metrics : string option;
  trace : string option;
  profile : bool;
  calib : string option;
  progress : float option;
  progress_json : bool;
  model : string option;
}

let obs_term =
  let mk jobs workers timeout chaos metrics trace profile calib progress
      progress_json model =
    {
      jobs;
      workers;
      timeout;
      chaos;
      metrics;
      trace;
      profile;
      calib;
      progress;
      progress_json;
      model;
    }
  in
  Term.(
    const mk $ jobs_arg $ workers_arg $ timeout_arg $ chaos_arg $ metrics_arg
    $ trace_arg $ profile_arg $ calib_arg $ progress_arg $ progress_json_arg
    $ model_arg)

(* Run [f] under a root span and profile section named after the
   subcommand; enable the switches the flags ask for and dump the
   requested outputs afterwards (also on exceptions). *)
let with_obs ~cmd o f =
  Option.iter Qdp_par.set_jobs o.jobs;
  Option.iter Qdp_dist.set_workers o.workers;
  Option.iter
    (fun t ->
      Qdp_network.Runtime.set_deadline t;
      Qdp_dist.set_shard_timeout t)
    o.timeout;
  Option.iter Qdp_dist.set_chaos o.chaos;
  (* After the jobs budget is pinned: "auto" probes under the
     effective pool it will dispatch for. *)
  (match
     match o.model with Some m -> Some m | None -> Sys.getenv_opt "QDP_MODEL"
   with
  | None | Some "" | Some "off" -> ()
  | Some "auto" -> ignore (Qdp_linalg.Tune.autotune ())
  | Some path -> (
      match Qdp_model.load_file path with
      | Ok m -> Qdp_model.install m
      | Error msg ->
          Printf.eprintf
            "qdp: --model %s: %s (falling back to static dispatch)\n" path msg));
  if o.metrics <> None || o.trace <> None then Qdp_obs.set_enabled true;
  if o.profile || o.calib <> None then begin
    Qdp_obs.Prof.set_enabled true;
    Qdp_obs.Calib.set_enabled true
  end;
  (match o.progress with
  | Some interval ->
      Qdp_obs.Progress.configure ~interval_s:interval
        ~format:
          (if o.progress_json then Qdp_obs.Progress.Json
           else Qdp_obs.Progress.Human)
        ();
      Qdp_obs.Progress.set_enabled true
  | None -> ());
  (* A dump failure (bad path, full disk) should not mask a completed
     run with a [Finally_raised] backtrace. *)
  let dump what f file =
    try f file
    with Sys_error msg -> Printf.eprintf "qdp: cannot write %s: %s\n" what msg
  in
  let finish () =
    Option.iter
      (dump "metrics" @@ fun file ->
       Qdp_obs.Metrics.write_json file (Qdp_obs.Metrics.snapshot ()))
      o.metrics;
    Option.iter (dump "trace" Qdp_obs.Trace.write_jsonl) o.trace;
    Option.iter (dump "calibration" Qdp_obs.Calib.write_json) o.calib;
    if o.profile then Format.eprintf "%a@?" Qdp_obs.Prof.report ()
  in
  Fun.protect ~finally:finish (fun () ->
      Qdp_obs.Trace.with_span ("qdp." ^ cmd) @@ fun () ->
      Qdp_obs.Prof.section cmd f)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let n_arg =
  Arg.(
    value
    & opt int Registry.default_spec.Registry.n
    & info [ "n"; "bits" ] ~docv:"N" ~doc:"Input length in bits.")

let r_arg =
  Arg.(
    value
    & opt int Registry.default_spec.Registry.r
    & info [ "r"; "length" ] ~docv:"R" ~doc:"Path length / radius.")

let t_arg =
  Arg.(
    value
    & opt int Registry.default_spec.Registry.t
    & info [ "t"; "terminals" ] ~docv:"T"
        ~doc:"Number of terminals (elements per set for seteq).")

let d_arg =
  Arg.(
    value
    & opt int Registry.default_spec.Registry.d
    & info [ "d"; "distance" ] ~docv:"D"
        ~doc:"Hamming tolerance / RPLS parity checks.")

let reps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k"; "repetitions" ] ~docv:"K"
        ~doc:"Parallel repetitions (default: the paper's O(r^2) choice).")

let x_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "x"; "left" ] ~docv:"BITS"
        ~doc:"First input as a 0/1 string (default: drawn from --seed).")

let y_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "y"; "right" ] ~docv:"BITS"
        ~doc:"Second input as a 0/1 string (default: drawn from --seed).")

let topology_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("star", Registry.Star);
             ("path", Registry.Path);
             ("cycle", Registry.Cycle);
             ("grid", Registry.Grid);
           ])
        Registry.Star
    & info [ "topology" ] ~docv:"TOPO"
        ~doc:"Network topology: star, path, cycle or grid.")

let parse_input ~n = function
  | None -> None
  | Some bits ->
      let v = Gf2.of_string bits in
      if Gf2.length v <> n then failwith "inputs must have exactly --n bits";
      Some v

(* The one runner every protocol subcommand shares: build the spec
   from the flags, let the entry derive its yes/no demo instances, and
   report the uniform evaluation of both. *)
let run_entry entry verbose seed n r t d reps topo x y obs =
  setup_logs verbose;
  let info = Registry.info entry in
  with_obs ~cmd:info.Registry.info_id obs @@ fun () ->
  let spec =
    { Registry.seed; n; r; t; d; repetitions = reps; topology = topo }
  in
  let x = parse_input ~n x and y = parse_input ~n y in
  let name, yes_eval, no_eval, costs = Registry.evaluate_demo ?x ?y spec entry in
  Format.printf "%s [%a] — %s (%s)@." name Dqma.pp_model info.Registry.info_model
    info.Registry.info_summary info.Registry.info_reference;
  Format.printf "costs: %a@." Report.pp_costs costs;
  Format.printf "%a@." Dqma.pp_evaluation (name, yes_eval);
  Format.printf "%a@." Dqma.pp_evaluation (name, no_eval)

let entry_cmd entry =
  let info = Registry.info entry in
  Cmd.v
    (Cmd.info info.Registry.info_id
       ~doc:
         (Printf.sprintf "%s (%s)." info.Registry.info_summary
            info.Registry.info_reference))
    Term.(
      const (run_entry entry)
      $ verbose_arg $ seed_arg $ n_arg $ r_arg $ t_arg $ d_arg $ reps_arg
      $ topology_arg $ x_arg $ y_arg $ obs_term)

let list_cmd =
  let run () =
    Format.printf "%-7s %-22s %-11s %-5s %-9s %-7s %-6s %-18s %s@." "ID"
      "PROTOCOL" "MODEL" "TURNS" "BACKENDS" "FAULTS" "SUITE" "REFERENCE" "COST";
    List.iter
      (fun entry ->
        let i = Registry.info entry in
        Format.printf "%-7s %-22s %-11s %-5d %-9s %-7s %-6s %-18s %s@."
          i.Registry.info_id i.Registry.info_name
          (Format.asprintf "%a" Dqma.pp_model i.Registry.info_model)
          i.Registry.info_turns
          (if i.Registry.info_network then "both" else "analytic")
          (if i.Registry.info_fault_tolerant then "yes" else "-")
          (if i.Registry.info_conformance then "yes" else "-")
          i.Registry.info_reference i.Registry.info_cost)
      (Registry.all ())
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every registered protocol.")
    Term.(const run $ const ())

let check_cmd =
  let run seed obs =
    with_obs ~cmd:"check" obs @@ fun () ->
    let suite = Registry.demo_suite ~seed in
    let failures = ref 0 in
    List.iter
      (fun packed ->
        let name, e = Dqma.evaluate_packed packed in
        Format.printf "%a@." Dqma.pp_evaluation (name, e);
        if not e.Dqma.meets_spec then incr failures)
      suite;
    Format.printf "%d pairs evaluated, %d spec violations@." (List.length suite)
      !failures;
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Run the conformance suite over every protocol.")
    Term.(const run $ seed_arg $ obs_term)

let xval_cmd =
  let trials_arg =
    Arg.(
      value & opt int 400
      & info [ "trials" ] ~docv:"TRIALS"
          ~doc:"Network samples per strategy.")
  in
  let protocol_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"ID"
          ~doc:"Cross-validate a single protocol (default: all with a \
                network backend).")
  in
  let run seed n r t d reps topo trials protocol obs =
    with_obs ~cmd:"xval" obs @@ fun () ->
    let spec =
      { Registry.seed; n; r; t; d; repetitions = reps; topology = topo }
    in
    let entries =
      match protocol with
      | None -> Registry.all ()
      | Some id -> (
          match Registry.find id with
          | Some e -> [ e ]
          | None ->
              failwith
                (Printf.sprintf "unknown protocol %S; try: qdp list" id))
    in
    let st = Random.State.make [| seed; 7 |] in
    let checks = ref 0 and disagreements = ref 0 in
    List.iter
      (fun entry ->
        let i = Registry.info entry in
        match Registry.cross_validate_demo ~trials ~st spec entry with
        | None ->
            if protocol <> None then
              Format.printf "%-7s has no network backend@." i.Registry.info_id
        | Some results ->
            List.iter
              (fun (label, cs) ->
                List.iter
                  (fun c ->
                    incr checks;
                    if not c.Dqma.agree then incr disagreements;
                    Format.printf "%-7s %-3s %a@." i.Registry.info_id label
                      Dqma.pp_check c)
                  cs)
              results)
      entries;
    Format.printf "%d comparisons, %d disagreements@." !checks !disagreements;
    if !disagreements > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "xval"
       ~doc:
         "Differentially cross-validate the analytic engine against the \
          message-passing runtime.")
    Term.(
      const run $ seed_arg $ n_arg $ r_arg $ t_arg $ d_arg $ reps_arg
      $ topology_arg $ trials_arg $ protocol_arg $ obs_term)

let faults_cmd =
  let open Qdp_faults in
  let trials_arg =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~docv:"TRIALS"
          ~doc:"Monte-Carlo runs per (strategy, strength) point.")
  in
  let points_arg =
    Arg.(
      value & opt int 11
      & info [ "points" ] ~docv:"POINTS"
          ~doc:"Grid points between 0 and --max-strength.")
  in
  let max_strength_arg =
    Arg.(
      value & opt float 0.5
      & info [ "max-strength" ] ~docv:"P"
          ~doc:"Largest fault strength swept.")
  in
  let protocol_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "protocol" ] ~docv:"ID"
          ~doc:
            "Sweep only this protocol (repeatable; default: every \
             fault-tolerant entry).")
  in
  let kind_arg =
    let kind_conv = Arg.enum (List.map (fun k -> (Plan.name k, k)) Plan.all) in
    Arg.(
      value
      & opt_all kind_conv []
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Sweep only this fault kind (repeatable; default: every kind \
             applicable to the entry's link type).")
  in
  let recovery_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("reject-on-timeout", Plan.Reject_on_timeout);
               ("degraded-verdict", Plan.Degraded_verdict);
               ("retry", Plan.Retry 2);
             ])
          Plan.Reject_on_timeout
      & info [ "recovery" ] ~docv:"MODE"
          ~doc:
            "Recovery discipline: reject-on-timeout, degraded-verdict, or \
             retry (budget 2, triggered by detected faults only).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_faults.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the JSON decay curves.")
  in
  let turn_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "turn" ] ~docv:"TURN"
          ~doc:
            "Aim every fault plan at one 1-based entry of the protocol's \
             turn schedule; delivery-time faults then fire only inside \
             that turn (default: every turn).")
  in
  let run seed n r t d reps topo trials points max_strength protocols kinds
      recovery turn out obs =
    with_obs ~cmd:"faults" obs @@ fun () ->
    let spec =
      { Registry.seed; n; r; t; d; repetitions = reps; topology = topo }
    in
    let cfg =
      {
        Sweep.seed;
        trials;
        grid = Sweep.default_grid ~points ~max_strength ();
        recovery;
        protocols = (match protocols with [] -> None | ids -> Some ids);
        kinds = (match kinds with [] -> None | ks -> Some ks);
        turn;
        spec;
      }
    in
    let sw = Sweep.run cfg in
    Format.printf "@[<v>%a@]@." Sweep.pp_summary sw;
    Sweep.write_json out sw;
    Format.printf "decay curves written to %s@." out;
    if Sweep.violations sw > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Sweep fault strengths over every fault-tolerant protocol and \
          verify graceful degradation: soundness must never exceed the \
          noiseless bound (contractivity), completeness must decay \
          monotonically.")
    Term.(
      const run $ seed_arg $ n_arg $ r_arg $ t_arg $ d_arg $ reps_arg
      $ topology_arg $ trials_arg $ points_arg $ max_strength_arg
      $ protocol_arg $ kind_arg $ recovery_arg $ turn_arg $ out_arg $ obs_term)

(* qdp dist chaos — the supervised multi-process path under seeded
   fault injection, byte-compared against the in-process baseline.
   The chaos pass runs first: fork is only legal while the Qdp_par
   domain pool has never started, and the baseline may start it. *)
let dist_cmd =
  let open Qdp_faults in
  let chaos_default = 0.5 in
  let trials_arg =
    Arg.(
      value & opt int 200
      & info [ "trials" ] ~docv:"TRIALS"
          ~doc:"Network samples per cross-validation strategy.")
  in
  (* Deterministic fingerprint of the full sharded workload: every
     cross-validation check plus the fault-sweep JSON. *)
  let digest_workload ~seed ~trials =
    let spec = { Registry.default_spec with Registry.seed; n = 12; r = 3; t = 3 } in
    let st = Random.State.make [| seed; 7 |] in
    let buf = Buffer.create 4096 in
    List.iter
      (fun entry ->
        match Registry.cross_validate_demo ~trials ~st spec entry with
        | None -> ()
        | Some results ->
            let id = (Registry.info entry).Registry.info_id in
            List.iter
              (fun (label, cs) ->
                List.iter
                  (fun c ->
                    Buffer.add_string buf
                      (Printf.sprintf "%s %s %s %.17g %.17g %d %.17g %b\n" id
                         label c.Dqma.check_strategy c.Dqma.analytic
                         c.Dqma.sampled c.Dqma.trials c.Dqma.tolerance
                         c.Dqma.agree))
                  cs)
              results)
      (Registry.all ());
    let cfg =
      {
        Sweep.seed;
        trials = 60;
        grid = Sweep.default_grid ~points:4 ~max_strength:0.4 ();
        recovery = Plan.Reject_on_timeout;
        protocols = None;
        kinds = None;
        turn = None;
        spec;
      }
    in
    Buffer.add_string buf (Sweep.to_json (Sweep.run cfg));
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let counter snap name =
    match Qdp_obs.Metrics.find snap name with
    | Some (Qdp_obs.Metrics.Counter_v v) -> v
    | _ -> 0
  in
  let run seed trials obs =
    with_obs ~cmd:"dist-chaos" obs @@ fun () ->
    let workers = match obs.workers with Some w when w > 0 -> w | _ -> 4 in
    let p = match obs.chaos with Some p when p > 0. -> p | _ -> chaos_default in
    (* tight shard deadline so injected hangs resolve quickly *)
    if obs.timeout = None then Qdp_dist.set_shard_timeout 2.0;
    Qdp_obs.with_enabled true @@ fun () ->
    let before = Qdp_obs.Metrics.snapshot () in
    Qdp_dist.set_workers workers;
    Qdp_dist.set_chaos p;
    Qdp_dist.set_chaos_seed seed;
    Format.printf "chaos pass: %d workers, p=%g, seed %d ...@." workers p seed;
    let chaotic = digest_workload ~seed ~trials in
    let after = Qdp_obs.Metrics.snapshot () in
    Qdp_dist.set_workers 0;
    Qdp_dist.set_chaos 0.;
    Format.printf "baseline pass: in-process ...@.";
    let baseline = digest_workload ~seed ~trials in
    let d name = counter after name - counter before name in
    Format.printf
      "@[<v>recovery matrix (chaos pass):@,\
      \  crash   -> detected %4d  (waitpid/EOF)      retried or degraded@,\
      \  hang    -> detected %4d  (shard deadline)   killed + reassigned@,\
      \  corrupt -> detected %4d  (CRC/unmarshal)    killed + reassigned@,\
      \  recovery: %d shard retries, %d workers respawned, %d shards \
       degraded in-process@,\
      \  traffic:  %d shards dispatched, %d results accepted, %d duplicates, \
       %d fallbacks@]@."
      (d "dist.crashes") (d "dist.hangs") (d "dist.corrupt") (d "dist.retries")
      (d "dist.respawns") (d "dist.degraded") (d "dist.tasks")
      (d "dist.results") (d "dist.duplicates") (d "dist.fallbacks");
    Format.printf "baseline digest %s@,chaos    digest %s@." baseline chaotic;
    if chaotic <> baseline then begin
      Format.printf "MISMATCH: chaos run diverged from the baseline@.";
      exit 1
    end;
    Format.printf "byte-identical under chaos@."
  in
  let chaos_cmd =
    Cmd.v
      (Cmd.info "chaos"
         ~doc:
           "Run the sharded workloads (cross-validation + fault sweep) on \
            supervised worker processes with seeded crash/hang/corruption \
            injection, verify byte-identity against the in-process \
            baseline, and print the recovery matrix; exit 1 on divergence.")
      Term.(const run $ seed_arg $ trials_arg $ obs_term)
  in
  Cmd.group
    (Cmd.info "dist"
       ~doc:"Multi-process execution: supervision and chaos testing.")
    [ chaos_cmd ]

(* qdp turns — the turn-reduction experiment over the interactive
   equality family: acceptance and certificate size at 3, 2 and 1
   turns, analytic vs sampled, into BENCH_turns.json. *)
let turns_cmd =
  let trials_arg =
    Arg.(
      value & opt int 2000
      & info [ "trials" ] ~docv:"TRIALS"
          ~doc:"Monte-Carlo runs per (variant, side) cell.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_turns.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the JSON comparison.")
  in
  let run seed n r trials out obs =
    with_obs ~cmd:"turns" obs @@ fun () ->
    let t = Turns_exp.run ~seed ~n ~r ~trials () in
    Format.printf "@[<v>%a@]@." Turns_exp.pp t;
    Turns_exp.write_json out t;
    Format.printf "turn-reduction comparison written to %s@." out
  in
  Cmd.v
    (Cmd.info "turns"
       ~doc:
         "Compare the interactive equality family across turn counts \
          (arXiv:2210.01390 turn reduction): acceptance and soundness, \
          analytic vs sampled through the turn-based engine, against the \
          certificate-size blowup of the fewer-turn compilation.")
    Term.(const run $ seed_arg $ n_arg $ r_arg $ trials_arg $ out_arg $ obs_term)

(* qdp perf diff OLD NEW — the noise-aware comparator over the
   BENCH_perf / BENCH_calib / BENCH_obs artifacts; exit 1 on
   regression (the CI perf gate). *)
let perf_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD" ~doc:"Baseline artifact (JSON).")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW" ~doc:"Candidate artifact (JSON).")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float Qdp_obs.Perf_diff.default_config.Qdp_obs.Perf_diff.threshold
      & info [ "threshold" ] ~docv:"T"
          ~doc:
            "Default relative noise band: a metric regresses when new/old \
             exceeds 1 + $(docv) (and improves below 1 / (1 + $(docv))).")
  in
  let group_threshold_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string float) []
      & info [ "group-threshold" ] ~docv:"GROUP=T"
          ~doc:
            "Per-group threshold override (repeatable), e.g. \
             $(b,--group-threshold fault_sweep=0.5).")
  in
  let min_seconds_arg =
    Arg.(
      value
      & opt float
          Qdp_obs.Perf_diff.default_config.Qdp_obs.Perf_diff.min_seconds
      & info [ "min-seconds" ] ~docv:"S"
          ~doc:
            "Min-runtime floor: pairs where both sides measured less than \
             $(docv) seconds are reported but never flagged.")
  in
  let run old_file new_file threshold group_thresholds min_seconds =
    match
      ( Qdp_obs.Perf_diff.load old_file,
        Qdp_obs.Perf_diff.load new_file )
    with
    | exception Failure msg ->
        Printf.eprintf "qdp perf diff: %s\n" msg;
        exit 2
    | old_, new_ ->
        let cfg =
          { Qdp_obs.Perf_diff.threshold; group_thresholds; min_seconds }
        in
        let r = Qdp_obs.Perf_diff.diff cfg ~old_ ~new_ in
        Format.printf "%a@?" Qdp_obs.Perf_diff.pp_report r;
        (* No-slowdown self-check on the candidate: a parallel path
           losing to its own sequential baseline is a dispatch bug
           even when it is no worse than the OLD artifact. *)
        let slow = Qdp_obs.Perf_diff.slowdowns_of_file cfg new_file in
        List.iter
          (fun s ->
            Printf.printf
              "%-44s parallel %.6gs vs sequential %.6gs (%.3fx)  SLOWDOWN\n"
              s.Qdp_obs.Perf_diff.s_group s.Qdp_obs.Perf_diff.s_parallel
              s.Qdp_obs.Perf_diff.s_sequential s.Qdp_obs.Perf_diff.s_ratio)
          slow;
        let n = Qdp_obs.Perf_diff.regressions r in
        let ns = List.length slow in
        if n > 0 || ns > 0 then begin
          if n > 0 then
            Printf.eprintf "qdp perf diff: %d regression(s) over threshold\n" n;
          if ns > 0 then
            Printf.eprintf
              "qdp perf diff: %d group(s) where parallel loses to sequential\n"
              ns;
          exit 1
        end
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Compare two performance artifacts (BENCH_perf.json, \
            BENCH_calib.json or BENCH_obs.json) with per-group noise \
            thresholds and a min-runtime floor; exit 1 when any metric \
            regresses.")
      Term.(
        const run $ old_arg $ new_arg $ threshold_arg $ group_threshold_arg
        $ min_seconds_arg)
  in
  (* qdp perf shape FILE — print the key-path skeleton of a JSON
     artifact (sorted, values elided).  CI diffs the skeletons of two
     runs to pin an artifact's shape without pinning its measured
     values. *)
  let shape_cmd =
    let file_arg =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"FILE" ~doc:"JSON artifact.")
    in
    let run file =
      let contents =
        let ic = open_in_bin file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Qdp_obs.Json.parse contents with
      | exception Qdp_obs.Json.Parse_error msg ->
          Printf.eprintf "qdp perf shape: %s\n" msg;
          exit 2
      | j ->
          let tag = function
            | Qdp_obs.Json.Null -> "null"
            | Qdp_obs.Json.Bool _ -> "bool"
            | Qdp_obs.Json.Num _ -> "number"
            | Qdp_obs.Json.String _ -> "string"
            | Qdp_obs.Json.Arr _ -> "array"
            | Qdp_obs.Json.Obj _ -> "object"
          in
          let rec walk prefix j acc =
            match j with
            | Qdp_obs.Json.Obj kvs ->
                List.fold_left
                  (fun acc (k, v) -> walk (prefix ^ "." ^ k) v acc)
                  acc kvs
            | Qdp_obs.Json.Arr xs ->
                List.fold_left (fun acc v -> walk (prefix ^ "[]") v acc) acc xs
            | leaf -> (prefix ^ ": " ^ tag leaf) :: acc
          in
          List.iter print_endline (List.sort_uniq compare (walk "$" j []))
    in
    Cmd.v
      (Cmd.info "shape"
         ~doc:
           "Print the sorted key-path skeleton of a JSON artifact (values \
            elided) — diff two skeletons to check an artifact's shape is \
            stable across runs.")
      Term.(const run $ file_arg)
  in
  Cmd.group
    (Cmd.info "perf" ~doc:"Performance comparison and regression gating.")
    [ diff_cmd; shape_cmd ]

(* qdp model — run the kernel self-benchmark, print the fitted cost
   model and write the fixed-shape BENCH_model.json artifact. *)
let model_cmd =
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_model.json"
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the fitted model (fixed-shape JSON).")
  in
  let run out obs =
    with_obs ~cmd:"model" obs @@ fun () ->
    let m = Qdp_linalg.Tune.autotune () in
    Printf.printf "cost model (jobs = %d)\n" m.Qdp_model.m_jobs;
    Printf.printf "%-18s %14s %14s %16s %s\n" "kernel" "seq ns/MAC"
      "par ns/MAC" "crossover MACs" "samples";
    List.iter
      (fun k ->
        let ns = function
          | Some f -> Printf.sprintf "%.3f" (1e9 *. f.Qdp_model.f_b)
          | None -> "-"
        in
        let samples = function Some f -> f.Qdp_model.f_n | None -> 0 in
        let cross =
          match Qdp_model.kernel_crossover k with
          | Some c -> Printf.sprintf "%.3g" c
          | None -> "never"
        in
        Printf.printf "%-18s %14s %14s %16s %d+%d\n" k.Qdp_model.k_name
          (ns k.Qdp_model.k_seq) (ns k.Qdp_model.k_par) cross
          (samples k.Qdp_model.k_seq)
          (samples k.Qdp_model.k_par))
      m.Qdp_model.m_kernels;
    Qdp_model.write_json m out;
    Printf.printf "wrote %s\n" out
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "Self-benchmark the dense kernels, fit the per-kernel cost model \
          (seconds ~ a + b*MACs per dispatch path), print the fitted \
          crossovers and write BENCH_model.json.  The fits drive seq/par \
          dispatch when installed via $(b,--model auto) / $(b,QDP_MODEL); \
          outputs are byte-identical with or without them.")
    Term.(const run $ out_arg $ obs_term)

(* qdp serve — the always-on verification daemon. *)
let serve_default = Qdp_serve.Server.default_config

let socket_arg =
  Arg.(
    value
    & opt string serve_default.Qdp_serve.Server.socket_path
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

let serve_cmd =
  let queue_arg =
    Arg.(
      value
      & opt int serve_default.Qdp_serve.Server.queue_limit
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission control: requests queued beyond $(docv) get an \
             immediate structured overload reject.")
  in
  let cache_arg =
    Arg.(
      value
      & opt int serve_default.Qdp_serve.Server.cache_capacity
      & info [ "cache" ] ~docv:"N"
          ~doc:"Shared LRU response cache capacity (entries).")
  in
  let batch_arg =
    Arg.(
      value
      & opt int serve_default.Qdp_serve.Server.batch_max
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Max requests evaluated per event-loop iteration (duplicates \
             within a batch evaluate once).")
  in
  let sessions_arg =
    Arg.(
      value
      & opt int serve_default.Qdp_serve.Server.max_sessions
      & info [ "max-sessions" ] ~docv:"N" ~doc:"Max concurrent sessions.")
  in
  let run socket queue_limit cache batch sessions o =
    setup_logs false;
    with_obs ~cmd:"serve" o @@ fun () ->
    let config =
      {
        Qdp_serve.Server.socket_path = socket;
        queue_limit;
        cache_capacity = cache;
        batch_max = batch;
        max_sessions = sessions;
      }
    in
    Printf.eprintf "qdp serve: listening on %s (pid %d)\n%!" socket
      (Unix.getpid ());
    Qdp_serve.Server.run ~config ();
    Printf.eprintf "qdp serve: drained\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the always-on verification daemon: concurrent \
          evaluate-protocol requests over a Unix-domain socket, with a \
          shared LRU verdict cache, request batching, bounded-queue \
          admission control and graceful drain on SIGTERM.")
    Term.(
      const run $ socket_arg $ queue_arg $ cache_arg $ batch_arg
      $ sessions_arg $ obs_term)

(* qdp load — the load generator / determinism checker. *)
let load_cmd =
  let clients_arg =
    Arg.(
      value
      & opt int Qdp_serve.Load.default_config.Qdp_serve.Load.clients
      & info [ "clients" ] ~docv:"N"
          ~doc:"Concurrent client sessions (one in-flight request each).")
  in
  let rps_arg =
    Arg.(
      value
      & opt float Qdp_serve.Load.default_config.Qdp_serve.Load.rps
      & info [ "rps" ] ~docv:"R" ~doc:"Aggregate target request rate.")
  in
  let duration_arg =
    Arg.(
      value
      & opt float Qdp_serve.Load.default_config.Qdp_serve.Load.duration
      & info [ "duration" ] ~docv:"S" ~doc:"Seconds of paced sending.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the BENCH_serve.json report to $(docv).")
  in
  let direct_arg =
    Arg.(
      value & flag
      & info [ "direct" ]
          ~doc:
            "Skip the server: evaluate the same request mix in-process and \
             print its verdict digest.  A live run's digest must match — \
             the end-to-end determinism check.")
  in
  let run socket clients rps duration seed out direct o =
    setup_logs false;
    with_obs ~cmd:"load" o @@ fun () ->
    let config =
      { Qdp_serve.Load.socket; clients; rps; duration; seed }
    in
    if direct then
      Printf.printf "verdict_digest %s\n"
        (Qdp_serve.Load.direct_digest ~config ())
    else begin
      match Qdp_serve.Load.run ~config () with
      | exception Unix.Unix_error (e, _, _) ->
          Printf.eprintf "qdp load: cannot reach %s: %s\n" socket
            (Unix.error_message e);
          exit 2
      | r ->
          let json = Qdp_serve.Load.to_json r in
          (match out with
          | Some file ->
              let oc = open_out file in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () -> output_string oc json)
          | None -> ());
          Printf.printf
            "sent %d  replies %d  overload_rejects %d  errors %d\n"
            r.Qdp_serve.Load.lr_sent r.Qdp_serve.Load.lr_replies
            r.Qdp_serve.Load.lr_overloads r.Qdp_serve.Load.lr_errors;
          Printf.printf "throughput %.1f req/s  p50 %.4fs  p99 %.4fs\n"
            r.Qdp_serve.Load.lr_throughput_rps r.Qdp_serve.Load.lr_p50_s
            r.Qdp_serve.Load.lr_p99_s;
          Printf.printf "verdict_digest %s\n" r.Qdp_serve.Load.lr_digest;
          if r.Qdp_serve.Load.lr_replies + r.Qdp_serve.Load.lr_errors
             < r.Qdp_serve.Load.lr_sent - r.Qdp_serve.Load.lr_overloads
          then begin
            Printf.eprintf "qdp load: some requests never got a response\n";
            exit 1
          end
    end
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Drive a running $(b,qdp serve) daemon with paced concurrent \
          requests; report throughput, p50/p99 latency and a \
          scheduling-insensitive verdict digest (compare with \
          $(b,--direct) to check server determinism end to end).")
    Term.(
      const run $ socket_arg $ clients_arg $ rps_arg $ duration_arg
      $ seed_arg $ out_arg $ direct_arg $ obs_term)

let main =
  Cmd.group
    (Cmd.info "qdp" ~version:"1.0.0"
       ~doc:
         "Distributed quantum Merlin-Arthur protocols \
          (Hasegawa-Kundu-Nishimura, PODC 2024).")
    (List.map entry_cmd (Registry.all ())
    @ [
        list_cmd;
        check_cmd;
        xval_cmd;
        faults_cmd;
        dist_cmd;
        turns_cmd;
        perf_cmd;
        model_cmd;
        serve_cmd;
        load_cmd;
      ])

let () = exit (Cmd.eval main)
